// Hierarchy chaos scenario: the two-level daemon tree (root + two rack
// aggregators) serving the standard four-job mix with seeded fault
// injection on every leaf link, a scheduled brownout, and a mid-run
// aggregator kill-and-restart — and the mix must still land watt-for-
// watt on the fault-free in-memory CoordinationLoop::run_dynamic replay,
// with zero runtime-invariant violations under fatal enforcement. CI
// runs this seeded (PS_FAULT_SEED in {11, 29, 47}) under ASan/UBSan
// with --repeat until-fail:3.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/agent.hpp"
#include "net/aggregator.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::fault {
namespace {

using std::chrono::milliseconds;

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-hchaos-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;  // the default fixed seed; CI also runs 29 and 47
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

net::AggregatorOptions rack_options(const std::string& rack,
                                    const std::string& parent_path) {
  net::AggregatorOptions options;
  options.rack = rack;
  options.min_jobs = 2;
  options.tick_interval = milliseconds(10);
  options.reclaim_timeout = milliseconds(30'000);
  options.parent_connector =
      [parent_path]() -> std::unique_ptr<net::Transport> {
    try {
      return net::make_transport(net::connect_unix(parent_path));
    } catch (const Error&) {
      return nullptr;
    }
  };
  return options;
}

TEST(HierarchyChaosTest, FaultyTreeWithAggregatorCrashMatchesReplay) {
  const std::uint64_t seed = scenario_seed();
  RecordProperty("ps_fault_seed", static_cast<int>(seed));
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";

  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  const double budget = 16.0 * 230.0;  // 3680 W
  const std::size_t iterations = 20;   // 10 before the crash, 10 after

  std::vector<core::BudgetRevision> schedule(2);
  schedule[0].epoch = 1;
  schedule[0].budget_watts = 0.9 * budget;
  schedule[0].at_epoch = 1;
  schedule[1].epoch = 2;
  schedule[1].budget_watts = 0.7 * budget;  // the brownout
  schedule[1].at_epoch = 2;
  schedule[1].emergency = true;

  // Reference: the fault-free in-memory dynamic loop.
  Mix reference;
  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  static_cast<void>(
      loop.run_dynamic(reference_jobs, iterations, {}, schedule, nullptr,
                       nullptr));

  // The tree under chaos: every client <-> aggregator link runs a seeded
  // fault plan (drops, partial I/O, corruption, duplicates, delays); the
  // aggregator <-> root links stay clean — their failure mode is the
  // aggregator crash itself, injected between the halves.
  Mix tree;
  const std::string root_path = unique_path("root");
  const std::string rack_a_path = unique_path("rackA");
  const std::string rack_b_path = unique_path("rackB");

  net::DaemonOptions root_options;
  root_options.system_budget_watts = budget;
  root_options.node_tdp_watts = tree.cluster->node(0).tdp();
  root_options.uncappable_watts = tree.cluster->node(0).params().dram_watts;
  root_options.min_jobs = tree.jobs.size();
  root_options.tick_interval = milliseconds(20);
  root_options.budget_revisions = schedule;
  root_options.root_mode = true;
  root_options.reclaim_timeout = milliseconds(30'000);
  root_options.heartbeat_timeout = milliseconds(60'000);
  root_options.quarantine_errors = 100;
  net::PowerDaemon root(root_options);
  root.listen_unix(root_path);
  std::thread root_thread([&root] { root.run(); });

  const auto start_aggregator = [](net::AggregatorDaemon& aggregator,
                                   const std::string& path) {
    aggregator.listen_unix(path);
    return std::thread([&aggregator] { aggregator.run(); });
  };

  auto rack_a = std::make_unique<net::AggregatorDaemon>(
      rack_options("rackA", root_path));
  std::thread rack_a_thread = start_aggregator(*rack_a, rack_a_path);
  auto rack_b = std::make_unique<net::AggregatorDaemon>(
      rack_options("rackB", root_path));
  std::thread rack_b_thread = start_aggregator(*rack_b, rack_b_path);

  FaultSpec spec;
  spec.seed = seed;
  spec.max_faults = 10;
  spec.drop_probability = 0.05;
  spec.partial_probability = 0.12;
  spec.corrupt_probability = 0.05;
  spec.duplicate_probability = 0.05;
  spec.delay_probability = 0.10;
  const FaultPlan parent(spec);
  std::vector<std::shared_ptr<FaultPlan>> plans;
  for (std::size_t j = 0; j < tree.jobs.size(); ++j) {
    plans.push_back(std::make_shared<FaultPlan>(parent.fork(j + 1)));
  }

  net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);

  std::vector<std::unique_ptr<net::RuntimeClient>> clients;
  std::vector<std::unique_ptr<net::CoordinatedAgent>> agents;
  for (std::size_t j = 0; j < tree.jobs.size(); ++j) {
    const std::string& path = j < 2 ? rack_a_path : rack_b_path;
    net::RuntimeClient::TransportConnector connector =
        [path, plan = plans[j]] {
          return make_faulty_transport(
              net::make_transport(net::connect_unix(path)), plan);
        };
    clients.push_back(std::make_unique<net::RuntimeClient>(
        std::move(connector), client_options));
    agents.push_back(std::make_unique<net::CoordinatedAgent>(
        *tree.jobs[j], *clients[j]));
  }

  const auto run_half = [&agents] {
    std::vector<std::thread> workers;
    for (auto& agent : agents) {
      workers.emplace_back([&agent] {
        const net::AgentResult result = agent->run(10);
        EXPECT_EQ(result.iterations, 10u);
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  };

  run_half();
  const net::DaemonStats mid = root.stats();
  EXPECT_EQ(mid.rack_sessions, 2u);
  EXPECT_EQ(mid.budget_epoch, 1u);
  EXPECT_EQ(mid.budget_violations, 0u);

  // Kill rackB mid-run: its latches, stored policies, and root session
  // die with it. Its clients ride their reconnect backoff into the
  // restarted instance; the root keeps rackB's jobs in grace meanwhile.
  rack_b->stop();
  rack_b_thread.join();
  rack_b.reset();
  rack_b = std::make_unique<net::AggregatorDaemon>(
      rack_options("rackB", root_path));
  rack_b_thread = start_aggregator(*rack_b, rack_b_path);

  run_half();

  const net::DaemonStats after = root.stats();
  EXPECT_EQ(after.budget_epoch, 2u);
  EXPECT_DOUBLE_EQ(after.budget_watts, schedule[1].budget_watts);
  EXPECT_EQ(after.budget_violations, 0u);
  EXPECT_EQ(after.jobs_evicted, 0u);  // the crash stayed within grace

  rack_a->stop();
  rack_b->stop();
  rack_a_thread.join();
  rack_b_thread.join();
  root.stop();
  root_thread.join();
  std::remove(root_path.c_str());
  std::remove(rack_a_path.c_str());
  std::remove(rack_b_path.c_str());

  // Every leaf heard the brownout through its aggregator.
  for (const auto& client : clients) {
    ASSERT_TRUE(client->last_budget().has_value());
    EXPECT_EQ(client->last_budget()->epoch, 2u);
    EXPECT_DOUBLE_EQ(client->last_budget()->budget_watts,
                     schedule[1].budget_watts);
  }

  // The chaos must actually have fired.
  std::size_t injected = 0;
  for (const auto& plan : plans) {
    injected += plan->stats().injected();
  }
  EXPECT_GT(injected, 0u) << "fault plan never fired; scenario is vacuous";

  // Watt-for-watt equality with the fault-free in-memory replay.
  double allocated = 0.0;
  for (std::size_t j = 0; j < tree.jobs.size(); ++j) {
    for (std::size_t h = 0; h < tree.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(tree.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << "job " << tree.jobs[j]->name() << " host " << h << " (seed "
          << seed << ")";
      allocated += tree.jobs[j]->host_cap(h);
    }
  }
  EXPECT_LE(allocated, schedule[1].budget_watts + 0.5 * 16.0);

  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

}  // namespace
}  // namespace ps::fault
