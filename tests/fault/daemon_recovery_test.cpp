#include "net/daemon.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "core/endpoint.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/ps-recovery-" + tag + "-" + std::to_string(::getpid()) +
         suffix;
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

DaemonOptions daemon_options(const sim::Cluster& cluster, double budget,
                             std::size_t min_jobs) {
  DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = cluster.node(0).tdp();
  options.uncappable_watts = cluster.node(0).params().dram_watts;
  options.min_jobs = min_jobs;
  options.tick_interval = milliseconds(10);
  return options;
}

ClientOptions patient_client() {
  ClientOptions options;
  options.request_timeout = milliseconds(20'000);
  return options;
}

/// A connector over a one-shot pool of pre-adopted loopback sockets.
RuntimeClient::Connector pool_connector(std::deque<Socket>& pool) {
  return [&pool]() -> Socket {
    if (pool.empty()) {
      throw Error("loopback pool exhausted");
    }
    Socket socket = std::move(pool.front());
    pool.pop_front();
    return socket;
  };
}

core::SampleMessage raw_sample(const std::string& job, std::uint64_t seq,
                               std::size_t hosts) {
  core::SampleMessage sample;
  sample.sequence = seq;
  sample.job_name = job;
  sample.min_settable_cap_watts = 152.0;
  sample.host_observed_watts.assign(hosts, 160.0);
  sample.host_needed_watts.assign(hosts, 180.0);
  return sample;
}

/// A protocol-speaking test client over one raw loopback socket: no
/// backoff, no agent — full control of what goes on the wire and when.
struct RawClient {
  Socket socket;
  FrameDecoder decoder;

  void send_frame(const std::string& frame) {
    std::string_view rest = frame;
    while (!rest.empty()) {
      const IoResult result = socket.write_some(rest);
      ASSERT_NE(result.status, IoStatus::kClosed) << "daemon hung up";
      if (result.status == IoStatus::kOk) {
        rest.remove_prefix(result.bytes);
      } else {
        ASSERT_TRUE(socket.wait_writable(milliseconds(1'000)));
      }
    }
  }

  void send(const core::SampleMessage& sample) {
    send_frame(
        encode_frame(serialize(sample, core::WireFidelity::kExact)));
  }

  std::optional<core::PolicyMessage> read_policy(milliseconds timeout) {
    const auto deadline = steady_clock::now() + timeout;
    while (steady_clock::now() < deadline) {
      if (auto payload = decoder.next()) {
        return core::parse_policy_message(*payload);
      }
      if (!socket.wait_readable(milliseconds(50))) {
        continue;
      }
      char buffer[4096];
      const IoResult result = socket.read_some(buffer, sizeof(buffer));
      if (result.status == IoStatus::kClosed) {
        return std::nullopt;
      }
      if (result.status == IoStatus::kOk) {
        decoder.feed(std::string_view(buffer, result.bytes));
      }
    }
    return std::nullopt;
  }

  /// True once the daemon has closed this connection.
  bool closed_by_peer(milliseconds timeout) {
    const auto deadline = steady_clock::now() + timeout;
    while (steady_clock::now() < deadline) {
      if (!socket.wait_readable(milliseconds(50))) {
        continue;
      }
      char buffer[4096];
      const IoResult result = socket.read_some(buffer, sizeof(buffer));
      if (result.status == IoStatus::kClosed) {
        return true;
      }
    }
    return false;
  }
};

/// S2 regression: eviction returns a job's watts to the pool exactly once
/// — across the disconnect-grace path, repeated ticks, and a second
/// eviction of a re-registered record that never earned caps.
TEST(DaemonRecoveryTest, EvictionReclaimsWattsExactlyOnce) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts_a{&cluster.node(0), &cluster.node(1)};
  std::vector<hw::NodeModel*> hosts_b{&cluster.node(2), &cluster.node(3)};
  sim::JobSimulation job_a("a-stays", std::move(hosts_a), hungry_config());
  sim::JobSimulation job_b("b-leaves", std::move(hosts_b),
                           hungry_config());

  const double budget = 800.0;
  DaemonOptions options = daemon_options(cluster, budget, 2);
  options.reclaim_timeout = milliseconds(50);
  PowerDaemon daemon(options);
  std::thread serving([&daemon] { daemon.run(); });

  auto [client_a_end, daemon_a_end] = loopback_pair();
  auto [client_b_end, daemon_b_end] = loopback_pair();
  daemon.adopt(std::move(daemon_a_end));
  daemon.adopt(std::move(daemon_b_end));
  std::deque<Socket> pool_a;
  pool_a.push_back(std::move(client_a_end));
  std::deque<Socket> pool_b;
  pool_b.push_back(std::move(client_b_end));
  RuntimeClient client_a(pool_connector(pool_a), patient_client());
  auto client_b = std::make_unique<RuntimeClient>(pool_connector(pool_b),
                                                  patient_client());
  CoordinatedAgent agent_a(job_a, client_a);
  CoordinatedAgent agent_b(job_b, *client_b);

  std::thread side_b([&agent_b] { static_cast<void>(agent_b.run(5)); });
  const AgentResult both = agent_a.run(5);
  side_b.join();
  ASSERT_EQ(both.fallback_epochs, 0u);

  // The watts job b holds right now: its caps from the last round.
  const double b_watts = job_b.host_cap(0) + job_b.host_cap(1);
  ASSERT_GT(b_watts, 0.0);

  // Drop the client; the daemon sees EOF, runs out the 50 ms grace, and
  // then many more ticks pass — each a chance to double-count.
  client_b.reset();
  std::this_thread::sleep_for(milliseconds(400));

  DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.jobs_evicted, 1u);
  EXPECT_DOUBLE_EQ(stats.watts_reclaimed, b_watts);
  EXPECT_GT(stats.reclaim_seconds_total, 0.0);

  // A returning job that gets evicted again before it ever earns caps
  // must not return watts it never held.
  auto [retry_end, daemon_retry_end] = loopback_pair();
  daemon.adopt(std::move(daemon_retry_end));
  RawClient retry{std::move(retry_end), FrameDecoder{}};
  retry.send(raw_sample("b-leaves", 0, 2));
  std::this_thread::sleep_for(milliseconds(100));  // registered, no round
  retry.socket.close();
  std::this_thread::sleep_for(milliseconds(400));

  stats = daemon.stats();
  EXPECT_EQ(stats.jobs_evicted, 2u);
  EXPECT_DOUBLE_EQ(stats.watts_reclaimed, b_watts);  // unchanged

  // The freed watts fund the survivor's next rounds.
  const double cap_while_shared = job_a.host_cap(0);
  const AgentResult alone = agent_a.run(5);
  daemon.stop();
  serving.join();
  EXPECT_EQ(alone.fallback_epochs, 0u);
  EXPECT_GT(job_a.host_cap(0), cap_while_shared);
}

/// A half-open peer (connected, silent) holding a round hostage is
/// stall-evicted once the heartbeat window passes, and the round then
/// completes for the jobs still reporting.
TEST(DaemonRecoveryTest, StalledClientIsEvictedWhenHoldingTheRound) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts_a{&cluster.node(0), &cluster.node(1)};
  sim::JobSimulation job_a("a-alive", std::move(hosts_a), hungry_config());

  const double budget = 800.0;
  DaemonOptions options = daemon_options(cluster, budget, 2);
  options.heartbeat_timeout = milliseconds(150);
  options.reclaim_timeout = milliseconds(30'000);  // isolate the stall path
  PowerDaemon daemon(options);
  std::thread serving([&daemon] { daemon.run(); });

  auto [client_a_end, daemon_a_end] = loopback_pair();
  auto [client_b_end, daemon_b_end] = loopback_pair();
  daemon.adopt(std::move(daemon_a_end));
  daemon.adopt(std::move(daemon_b_end));

  // Job b bootstraps once (a real, accepted sample) and then goes mute
  // while keeping its connection open — the classic half-open peer.
  RawClient stalled{std::move(client_b_end), FrameDecoder{}};
  stalled.send(raw_sample("b-stalled", 0, 2));

  std::deque<Socket> pool_a;
  pool_a.push_back(std::move(client_a_end));
  RuntimeClient client_a(pool_connector(pool_a), patient_client());
  CoordinatedAgent agent_a(job_a, client_a);
  const AgentResult result = agent_a.run(10);

  // b's bootstrap share arrived (the launch round included it) ...
  const auto bootstrap = stalled.read_policy(milliseconds(2'000));
  ASSERT_TRUE(bootstrap.has_value());
  const double share = budget / 4.0;
  ASSERT_EQ(bootstrap->host_caps_watts.size(), 2u);
  EXPECT_DOUBLE_EQ(bootstrap->host_caps_watts[0], share);

  // ... but every later round completed without b: the stall eviction
  // freed its seat (and its bootstrap watts) instead of wedging job a.
  EXPECT_EQ(result.fallback_epochs, 0u);
  EXPECT_EQ(result.policies_applied, 1 + result.epochs);
  EXPECT_TRUE(stalled.closed_by_peer(milliseconds(2'000)));
  daemon.stop();
  serving.join();

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.jobs_evicted, 1u);
  EXPECT_DOUBLE_EQ(stats.watts_reclaimed, 2.0 * share);
  EXPECT_GT(job_a.host_cap(0), share);
}

/// Repeated protocol abuse quarantines the job: eviction plus a
/// registration ban that expires on schedule.
TEST(DaemonRecoveryTest, QuarantineBlocksARepeatOffenderThenExpires) {
  sim::Cluster cluster(1);
  DaemonOptions options = daemon_options(cluster, 400.0, 1);
  options.quarantine_errors = 2;
  options.quarantine_period = milliseconds(300);
  options.reclaim_timeout = milliseconds(30'000);  // record survives drops
  PowerDaemon daemon(options);
  std::thread serving([&daemon] { daemon.run(); });

  const auto connect_abuser = [&daemon]() -> RawClient {
    auto [client_end, daemon_end] = loopback_pair();
    daemon.adopt(std::move(daemon_end));
    return RawClient{std::move(client_end), FrameDecoder{}};
  };

  // Two rounds of: register validly, then send a frame whose payload is
  // not a message. Each costs one protocol error; the second crosses the
  // quarantine threshold and evicts the job.
  for (int round = 0; round < 2; ++round) {
    RawClient abuser = connect_abuser();
    abuser.send(raw_sample("abuser", 0, 1));
    ASSERT_TRUE(abuser.read_policy(milliseconds(2'000)).has_value())
        << "round " << round;
    abuser.send_frame(encode_frame("this is not a sample message"));
    ASSERT_TRUE(abuser.closed_by_peer(milliseconds(2'000)))
        << "round " << round;
  }
  DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.jobs_evicted, 1u);
  EXPECT_GT(stats.watts_reclaimed, 0.0);

  // Inside the ban: registration is refused outright — no reply, closed.
  RawClient banned = connect_abuser();
  banned.send(raw_sample("abuser", 0, 1));
  EXPECT_TRUE(banned.closed_by_peer(milliseconds(2'000)));
  stats = daemon.stats();
  EXPECT_EQ(stats.quarantine_rejections, 1u);

  // After the ban expires the job is welcome again.
  std::this_thread::sleep_for(milliseconds(350));
  RawClient reformed = connect_abuser();
  reformed.send(raw_sample("abuser", 0, 1));
  EXPECT_TRUE(reformed.read_policy(milliseconds(2'000)).has_value());
  daemon.stop();
  serving.join();
}

/// A retried sequence the daemon already answered gets the stored caps
/// resent — it must not start (or tear) an allocation round.
TEST(DaemonRecoveryTest, LostReplyIsResentNotReallocated) {
  sim::Cluster cluster(2);
  PowerDaemon daemon(daemon_options(cluster, 400.0, 1));
  std::thread serving([&daemon] { daemon.run(); });

  auto [client_end, daemon_end] = loopback_pair();
  daemon.adopt(std::move(daemon_end));
  RawClient client{std::move(client_end), FrameDecoder{}};

  client.send(raw_sample("solo", 0, 2));
  const auto first = client.read_policy(milliseconds(2'000));
  ASSERT_TRUE(first.has_value());

  // The reply "was lost": the client retries the same sequence.
  client.send(raw_sample("solo", 0, 2));
  const auto second = client.read_policy(milliseconds(2'000));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);  // identical caps, identical sequence
  daemon.stop();
  serving.join();

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.allocations, 1u);  // one round, not two
  EXPECT_EQ(stats.policies_resent, 1u);
  EXPECT_EQ(stats.samples_stale, 1u);
  EXPECT_EQ(stats.samples_received, 2u);
}

/// Acceptance criterion: a daemon restarted over its snapshot rehydrates
/// every job without re-running the launch barrier, and the coordinated
/// mix finishes on exactly the caps an uninterrupted in-memory
/// CoordinationLoop computes — watt for watt.
TEST(DaemonRecoveryTest, SnapshotRestartReconvergesWattForWatt) {
  const double budget = 4.0 * 180.0;
  const std::size_t iterations = 20;

  // Reference: the uninterrupted in-memory loop over an identical mix.
  sim::Cluster reference_cluster(4);
  std::vector<hw::NodeModel*> ref_a{&reference_cluster.node(0),
                                    &reference_cluster.node(1)};
  std::vector<hw::NodeModel*> ref_b{&reference_cluster.node(2),
                                    &reference_cluster.node(3)};
  sim::JobSimulation ref_job_a("a-hungry", std::move(ref_a),
                               hungry_config());
  sim::JobSimulation ref_job_b("b-wasteful", std::move(ref_b),
                               wasteful_config());
  std::vector<sim::JobSimulation*> reference_jobs{&ref_job_a, &ref_job_b};
  core::CoordinationLoop loop(budget);
  static_cast<void>(loop.run(reference_jobs, iterations));

  // Distributed: same mix, but the daemon dies and restarts halfway.
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts_a{&cluster.node(0), &cluster.node(1)};
  std::vector<hw::NodeModel*> hosts_b{&cluster.node(2), &cluster.node(3)};
  sim::JobSimulation job_a("a-hungry", std::move(hosts_a),
                           hungry_config());
  sim::JobSimulation job_b("b-wasteful", std::move(hosts_b),
                           wasteful_config());

  const std::string socket_path = unique_path("restart", ".sock");
  const std::string snapshot_path = unique_path("restart", ".snap");
  DaemonOptions options = daemon_options(cluster, budget, 2);
  options.snapshot_path = snapshot_path;

  ClientOptions client_options = patient_client();
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);
  RuntimeClient client_a([&socket_path] {
    return connect_unix(socket_path);
  }, client_options);
  RuntimeClient client_b([&socket_path] {
    return connect_unix(socket_path);
  }, client_options);
  CoordinatedAgent agent_a(job_a, client_a);
  CoordinatedAgent agent_b(job_b, client_b);

  const auto run_half = [&](PowerDaemon& daemon) {
    std::thread serving([&daemon] { daemon.run(); });
    std::thread side_b([&agent_b] {
      const AgentResult r = agent_b.run(10);
      EXPECT_EQ(r.fallback_epochs, 0u);
    });
    const AgentResult r = agent_a.run(10);
    EXPECT_EQ(r.fallback_epochs, 0u);
    side_b.join();
    daemon.stop();
    serving.join();
  };

  auto daemon = std::make_unique<PowerDaemon>(options);
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  EXPECT_GT(daemon->stats().snapshots_written, 0u);
  EXPECT_EQ(daemon->stats().launch_barriers, 1u);
  daemon.reset();  // the daemon dies; only the snapshot survives

  daemon = std::make_unique<PowerDaemon>(options);
  EXPECT_EQ(daemon->stats().jobs_restored, 2u);
  daemon->listen_unix(socket_path);
  run_half(*daemon);

  const DaemonStats stats = daemon->stats();
  // The proof the barrier never re-ran: both jobs were rehydrated, and
  // the restarted daemon crossed no launch barrier of its own.
  EXPECT_EQ(stats.launch_barriers, 0u);
  EXPECT_EQ(stats.sessions_rehydrated, 2u);
  EXPECT_EQ(stats.budget_violations, 0u);
  daemon.reset();
  std::remove(snapshot_path.c_str());

  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_DOUBLE_EQ(job_a.host_cap(h), ref_job_a.host_cap(h))
        << "job a host " << h;
    EXPECT_DOUBLE_EQ(job_b.host_cap(h), ref_job_b.host_cap(h))
        << "job b host " << h;
  }
}

}  // namespace
}  // namespace ps::net
