#include "sim/failures.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <utility>
#include <vector>

#include "core/coordination.hpp"
#include "sim/cluster.hpp"
#include "sim/job_sim.hpp"
#include "util/error.hpp"

namespace ps::sim {
namespace {

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

TEST(FailurePlanTest, SameParamsReplayTheSamePlan) {
  FailurePlanParams params;
  params.seed = 9;
  params.node_failures = 2;
  params.stragglers = 2;
  const std::array<std::size_t, 2> hosts{4, 4};
  const auto first = generate_failure_plan(params, hosts, 8);
  const auto second = generate_failure_plan(params, hosts, 8);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());

  params.seed = 10;
  EXPECT_NE(generate_failure_plan(params, hosts, 8), first);
}

TEST(FailurePlanTest, PlanRespectsStructuralConstraints) {
  FailurePlanParams params;
  params.seed = 5;
  params.node_failures = 10;  // more than the mix can absorb
  params.stragglers = 2;
  params.straggler_duration_epochs = 2;
  const std::array<std::size_t, 2> hosts{2, 3};
  const std::size_t epochs = 6;
  const auto plan = generate_failure_plan(params, hosts, epochs);

  std::set<std::pair<std::size_t, std::size_t>> killed;
  std::vector<std::size_t> kills_per_job(hosts.size(), 0);
  std::size_t previous_epoch = 0;
  for (const FailureEvent& event : plan) {
    EXPECT_GE(event.epoch, params.first_epoch);
    EXPECT_LT(event.epoch, epochs);
    EXPECT_GE(event.epoch, previous_epoch);  // sorted
    previous_epoch = event.epoch;
    ASSERT_LT(event.job, hosts.size());
    ASSERT_LT(event.host, hosts[event.job]);
    if (event.kind == FailureKind::kNodeFailure) {
      EXPECT_TRUE(killed.insert({event.job, event.host}).second)
          << "host killed twice";
      ++kills_per_job[event.job];
    } else if (event.kind == FailureKind::kStragglerOnset) {
      EXPECT_GE(event.severity, params.straggler_min_slowdown);
      EXPECT_LE(event.severity, params.straggler_max_slowdown);
      EXPECT_EQ(killed.count({event.job, event.host}), 0u)
          << "a dead host cannot straggle";
    }
  }
  // Every kill beyond last-survivor capacity was refused: (2-1) + (3-1).
  EXPECT_EQ(killed.size(), 3u);
  for (std::size_t j = 0; j < hosts.size(); ++j) {
    EXPECT_LT(kills_per_job[j], hosts[j]) << "job " << j << " orphaned";
  }
  // Each onset pairs with a recovery at +duration when inside the run.
  for (const FailureEvent& event : plan) {
    if (event.kind != FailureKind::kStragglerOnset) {
      continue;
    }
    const std::size_t expected = event.epoch +
                                 params.straggler_duration_epochs;
    bool found = false;
    for (const FailureEvent& other : plan) {
      found = found || (other.kind == FailureKind::kStragglerRecovery &&
                        other.job == event.job &&
                        other.host == event.host &&
                        other.epoch == expected);
    }
    EXPECT_EQ(found, expected < epochs);
  }
}

TEST(FailurePlanTest, RejectsInvalidParams) {
  FailurePlanParams params;
  const std::array<std::size_t, 1> hosts{4};
  EXPECT_THROW(
      static_cast<void>(generate_failure_plan(params, hosts, 1)), Error);
  EXPECT_THROW(static_cast<void>(generate_failure_plan(
                   params, std::span<const std::size_t>{}, 8)),
               Error);
  params.straggler_min_slowdown = 1.0;
  EXPECT_THROW(
      static_cast<void>(generate_failure_plan(params, hosts, 8)), Error);
}

TEST(JobSimulationFailureTest, FailedHostRunsNoWorkAndDrawsNoPower) {
  Cluster cluster(2);
  std::vector<hw::NodeModel*> hosts{&cluster.node(0), &cluster.node(1)};
  JobSimulation job("victim", std::move(hosts), hungry_config());
  job.set_host_cap(0, 180.0);
  job.set_host_cap(1, 180.0);

  job.set_host_failed(0, true);
  EXPECT_TRUE(job.host_failed(0));
  EXPECT_EQ(job.active_host_count(), 1u);
  const IterationResult result = job.run_iteration();
  EXPECT_EQ(result.hosts[0].busy_seconds, 0.0);
  EXPECT_EQ(result.hosts[0].energy_joules, 0.0);
  EXPECT_EQ(result.hosts[0].gflop, 0.0);
  EXPECT_GT(result.hosts[1].energy_joules, 0.0);
  EXPECT_EQ(result.critical_host_index, 1u);

  // The last live host is untouchable.
  EXPECT_THROW(job.set_host_failed(1, true), Error);
}

TEST(JobSimulationFailureTest, StragglerStretchesBusyTime) {
  Cluster cluster(2);
  std::vector<hw::NodeModel*> hosts{&cluster.node(0), &cluster.node(1)};
  JobSimulation job("slow", std::move(hosts), hungry_config());
  const IterationResult healthy = job.run_iteration();

  job.set_host_slowdown(0, 2.0);
  const IterationResult straggled = job.run_iteration();
  EXPECT_DOUBLE_EQ(straggled.hosts[0].busy_seconds,
                   2.0 * healthy.hosts[0].busy_seconds);

  job.set_host_slowdown(0, 1.0);
  const IterationResult recovered = job.run_iteration();
  EXPECT_DOUBLE_EQ(recovered.hosts[0].busy_seconds,
                   healthy.hosts[0].busy_seconds);
  EXPECT_THROW(job.set_host_slowdown(0, 0.5), Error);
}

/// The reclamation story end to end: a node dies mid-run, the policy
/// squeezes it to the settable floor, and the freed watts land on the
/// surviving (power-hungry) job — all inside the budget, with the
/// telemetry recording how long reclamation took.
TEST(CoordinationFailureTest, NodeFailureReclaimsWattsToSurvivors) {
  Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts_a{&cluster.node(0), &cluster.node(1)};
  std::vector<hw::NodeModel*> hosts_b{&cluster.node(2), &cluster.node(3)};
  JobSimulation job_a("a-wasteful", std::move(hosts_a), wasteful_config());
  JobSimulation job_b("b-hungry", std::move(hosts_b), hungry_config());
  std::vector<JobSimulation*> jobs{&job_a, &job_b};

  const double budget = 4.0 * 180.0;
  std::vector<FailureEvent> events(1);
  events[0].epoch = 1;
  events[0].kind = FailureKind::kNodeFailure;
  events[0].job = 0;
  events[0].host = 1;

  core::CoordinationLoop loop(budget);
  core::FailureTelemetry telemetry;
  const core::CoordinationResult result =
      loop.run_with_failures(jobs, 30, events, &telemetry);

  EXPECT_EQ(telemetry.events_applied, 1u);
  EXPECT_TRUE(telemetry.budget_violation_epochs.empty());
  ASSERT_EQ(telemetry.reclaims.size(), 1u);
  const core::ReclaimRecord& reclaim = telemetry.reclaims[0];
  EXPECT_EQ(reclaim.job, 0u);
  EXPECT_EQ(reclaim.host, 1u);
  EXPECT_TRUE(reclaim.reclaimed);
  EXPECT_GE(reclaim.reclaim_epoch, reclaim.event_epoch);
  EXPECT_GT(reclaim.watts_reclaimed, 0.0);
  EXPECT_GE(telemetry.mean_epochs_to_reclaim(), 0.0);

  // The dead host sits at the floor (policies park idle hosts within
  // half a watt of it); the hungry survivors got its watts.
  const double floor_cap = job_a.host(1).min_cap();
  EXPECT_LE(job_a.host_cap(1), floor_cap + 0.5);
  EXPECT_GT(job_b.host_cap(0), budget / 4.0);

  // Budget invariant after every epoch's reallocation.
  for (const core::EpochRecord& epoch : result.epochs) {
    EXPECT_LE(epoch.allocated_watts, budget + 0.5 * 4.0)
        << "epoch " << epoch.epoch;
  }
}

TEST(CoordinationFailureTest, StragglerStretchesEpochsUntilRecovery) {
  Cluster cluster(2);
  std::vector<hw::NodeModel*> hosts{&cluster.node(0), &cluster.node(1)};
  JobSimulation job("phased", std::move(hosts), hungry_config());
  std::vector<JobSimulation*> jobs{&job};

  std::vector<FailureEvent> events(2);
  events[0].epoch = 1;
  events[0].kind = FailureKind::kStragglerOnset;
  events[0].host = 0;
  events[0].severity = 2.5;
  events[1].epoch = 3;
  events[1].kind = FailureKind::kStragglerRecovery;
  events[1].host = 0;

  core::CoordinationLoop loop(2.0 * 180.0);
  core::FailureTelemetry telemetry;
  const core::CoordinationResult result =
      loop.run_with_failures(jobs, 25, events, &telemetry);

  EXPECT_EQ(telemetry.events_applied, 2u);
  ASSERT_GE(result.epochs.size(), 5u);
  // Straggled epochs run visibly longer than the healthy ones on either
  // side; after recovery the pace returns.
  EXPECT_GT(result.epochs[1].elapsed_seconds,
            1.5 * result.epochs[0].elapsed_seconds);
  EXPECT_LT(result.epochs[4].elapsed_seconds,
            result.epochs[1].elapsed_seconds);
  EXPECT_DOUBLE_EQ(job.host_slowdown(0), 1.0);
}

TEST(CoordinationFailureTest, EventlessRunMatchesPlainRun) {
  const auto build = [](Cluster& cluster) {
    std::vector<hw::NodeModel*> hosts_a{&cluster.node(0),
                                        &cluster.node(1)};
    std::vector<hw::NodeModel*> hosts_b{&cluster.node(2),
                                        &cluster.node(3)};
    return std::make_pair(
        JobSimulation("a-wasteful", std::move(hosts_a), wasteful_config()),
        JobSimulation("b-hungry", std::move(hosts_b), hungry_config()));
  };
  Cluster plain_cluster(4);
  auto [plain_a, plain_b] = build(plain_cluster);
  std::vector<JobSimulation*> plain_jobs{&plain_a, &plain_b};
  core::CoordinationLoop plain(720.0);
  static_cast<void>(plain.run(plain_jobs, 15));

  Cluster failure_cluster(4);
  auto [failure_a, failure_b] = build(failure_cluster);
  std::vector<JobSimulation*> failure_jobs{&failure_a, &failure_b};
  core::CoordinationLoop with_failures(720.0);
  core::FailureTelemetry telemetry;
  static_cast<void>(
      with_failures.run_with_failures(failure_jobs, 15, {}, &telemetry));

  EXPECT_EQ(telemetry.events_applied, 0u);
  EXPECT_TRUE(telemetry.reclaims.empty());
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_DOUBLE_EQ(failure_a.host_cap(h), plain_a.host_cap(h));
    EXPECT_DOUBLE_EQ(failure_b.host_cap(h), plain_b.host_cap(h));
  }
}

TEST(CoordinationFailureTest, RejectsOutOfRangeEvents) {
  Cluster cluster(2);
  std::vector<hw::NodeModel*> hosts{&cluster.node(0), &cluster.node(1)};
  JobSimulation job("only", std::move(hosts), hungry_config());
  std::vector<JobSimulation*> jobs{&job};
  core::CoordinationLoop loop(360.0);

  std::vector<FailureEvent> bad_job(1);
  bad_job[0].job = 5;
  EXPECT_THROW(
      static_cast<void>(loop.run_with_failures(jobs, 10, bad_job, nullptr)),
      Error);
  std::vector<FailureEvent> bad_host(1);
  bad_host[0].host = 9;
  EXPECT_THROW(static_cast<void>(
                   loop.run_with_failures(jobs, 10, bad_host, nullptr)),
               Error);
}

}  // namespace
}  // namespace ps::sim
