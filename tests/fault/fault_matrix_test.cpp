#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"

namespace ps::fault {
namespace {

using std::chrono::milliseconds;

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/ps-matrix-" + tag + "-" + std::to_string(::getpid()) +
         suffix;
}

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;  // the default fixed seed; CI also runs 29, 47 and a random
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

/// The standard four-job mix on its own 16-node cluster (job names sort
/// in construction order, so the daemon's name-ordered rounds match the
/// in-memory loop's job order).
struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

/// The tentpole acceptance matrix: one daemon, four clients whose
/// transports run a seeded fault plan (drops, partial I/O, corrupted
/// replies, duplicated frames, spurious would-blocks), plus a full
/// daemon crash-and-restart over its snapshot halfway through. The bar:
///   (a) the budget invariant holds every round (no round the daemon
///       served ever exceeded the facility budget), and
///   (b) the caps every host ends on equal the fault-free in-memory
///       core::CoordinationLoop's caps watt for watt.
/// The whole scenario replays from one seed (PS_FAULT_SEED).
TEST(FaultMatrixTest, SeededFaultsAndRestartConvergeWattForWatt) {
  const std::uint64_t seed = scenario_seed();
  RecordProperty("ps_fault_seed", static_cast<int>(seed));
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";

  const double budget = 16.0 * 180.0;
  const std::size_t iterations = 20;  // 10 before the crash, 10 after

  // Reference: the fault-free in-memory loop over an identical mix.
  Mix reference;
  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  static_cast<void>(loop.run(reference_jobs, iterations));

  // Distributed mix under fault injection.
  Mix distributed;
  const std::string socket_path = unique_path("faults", ".sock");
  const std::string snapshot_path = unique_path("faults", ".snap");
  net::DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = distributed.cluster->node(0).tdp();
  options.uncappable_watts =
      distributed.cluster->node(0).params().dram_watts;
  options.min_jobs = distributed.jobs.size();
  options.tick_interval = milliseconds(20);
  options.snapshot_path = snapshot_path;
  // Generous liveness windows: this scenario proves fault healing, not
  // eviction, so a client mid-reconnect must never lose its seat.
  options.reclaim_timeout = milliseconds(30'000);
  options.heartbeat_timeout = milliseconds(60'000);
  options.quarantine_errors = 100;

  // One scenario seed fans out into per-client plans; every client keeps
  // its plan across reconnects, so the injection budget spans the run.
  FaultSpec spec;
  spec.seed = seed;
  spec.max_faults = 10;
  spec.drop_probability = 0.05;
  spec.partial_probability = 0.12;
  spec.corrupt_probability = 0.05;
  spec.duplicate_probability = 0.05;
  spec.delay_probability = 0.10;
  const FaultPlan parent(spec);
  std::vector<std::shared_ptr<FaultPlan>> plans;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    plans.push_back(std::make_shared<FaultPlan>(parent.fork(j + 1)));
  }

  net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);

  std::vector<std::unique_ptr<net::RuntimeClient>> clients;
  std::vector<std::unique_ptr<net::CoordinatedAgent>> agents;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    net::RuntimeClient::TransportConnector connector =
        [&socket_path, plan = plans[j]] {
          return make_faulty_transport(
              net::make_transport(net::connect_unix(socket_path)), plan);
        };
    clients.push_back(std::make_unique<net::RuntimeClient>(
        std::move(connector), client_options));
    agents.push_back(std::make_unique<net::CoordinatedAgent>(
        *distributed.jobs[j], *clients[j]));
  }

  const auto run_half = [&](net::PowerDaemon& daemon) {
    std::thread serving([&daemon] { daemon.run(); });
    std::vector<std::thread> workers;
    for (auto& agent : agents) {
      workers.emplace_back([&agent] {
        const net::AgentResult result = agent->run(10);
        EXPECT_EQ(result.iterations, 10u);
        // Every epoch applied a daemon policy: faults delayed rounds but
        // never dropped one.
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    daemon.stop();
    serving.join();
  };

  auto daemon = std::make_unique<net::PowerDaemon>(options);
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  const net::DaemonStats before = daemon->stats();
  EXPECT_EQ(before.budget_violations, 0u);  // invariant held every round
  EXPECT_EQ(before.launch_barriers, 1u);
  EXPECT_GT(before.snapshots_written, 0u);
  daemon.reset();  // crash: in-memory state is gone, the snapshot is not

  daemon = std::make_unique<net::PowerDaemon>(options);
  EXPECT_EQ(daemon->stats().jobs_restored, distributed.jobs.size());
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  const net::DaemonStats after = daemon->stats();
  EXPECT_EQ(after.budget_violations, 0u);
  EXPECT_EQ(after.launch_barriers, 0u);  // the barrier never re-ran
  EXPECT_GE(after.sessions_rehydrated, distributed.jobs.size());
  daemon.reset();
  std::remove(snapshot_path.c_str());

  // The scenario must actually have exercised the machinery.
  std::size_t injected = 0;
  for (const auto& plan : plans) {
    injected += plan->stats().injected();
  }
  EXPECT_GT(injected, 0u) << "fault plan never fired; scenario is vacuous";

  // (b) Watt-for-watt equality with the fault-free reference: every
  // drop, corruption, duplicate, and the daemon crash healed without
  // perturbing the allocation by a single bit.
  double allocated = 0.0;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    for (std::size_t h = 0; h < distributed.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(distributed.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << "job " << distributed.jobs[j]->name() << " host " << h
          << " (seed " << seed << ")";
      allocated += distributed.jobs[j]->host_cap(h);
    }
  }
  // (a) and the final state agrees: the programmed caps fit the budget.
  EXPECT_LE(allocated, budget + 0.5 * 16.0);
}

}  // namespace
}  // namespace ps::fault
