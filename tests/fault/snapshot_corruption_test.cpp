// Satellite: the snapshot corruption matrix. Every proper prefix of a
// serialized snapshot (a torn write) and every single-byte flip (bit
// rot, a bad sector) must be refused — by parse_snapshot, by
// load_snapshot (degrading the restart to a cold start, never a crash),
// and by the HA codec when the same bytes arrive as replication payload.
#include "net/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "ha/replication.hpp"
#include "net/daemon.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

/// One snapshot per on-disk grammar version, so the matrix sweeps every
/// section the codec can emit.
DaemonSnapshot make_v2() {
  DaemonSnapshot snapshot;
  snapshot.system_budget_watts = 2880.0;
  snapshot.budget_epoch = 3;
  snapshot.launch_barrier_met = true;
  snapshot.allocations = 7;
  SnapshotJob job;
  job.name = "lulesh-512";
  job.sequence = 6;
  job.caps_watts = {181.25, 181.25};
  snapshot.jobs = {job};
  return snapshot;
}

DaemonSnapshot make_v3() {
  DaemonSnapshot snapshot = make_v2();
  snapshot.jobs[0].gpu_caps_watts = {140.5, 141.0};
  return snapshot;
}

DaemonSnapshot make_v4() {
  DaemonSnapshot snapshot = make_v2();
  snapshot.fence_epoch = 2;
  return snapshot;
}

// Both matrices stop one byte short of the end: the final byte is the
// trailing newline, and losing (or whitespace-mangling) it alone leaves
// every guarded byte intact — cosmetic, not corruption.
void expect_every_prefix_refused(const std::string& text,
                                 const char* version) {
  for (std::size_t length = 0; length + 1 < text.size(); ++length) {
    EXPECT_THROW(
        static_cast<void>(parse_snapshot(text.substr(0, length))),
        ps::Error)
        << version << " truncated to " << length << " bytes parsed";
  }
}

void expect_every_flip_refused(const std::string& text,
                               const char* version) {
  for (std::size_t index = 0; index + 1 < text.size(); ++index) {
    std::string corrupted = text;
    corrupted[index] =
        static_cast<char>(static_cast<unsigned char>(corrupted[index]) ^ 1u);
    EXPECT_THROW(static_cast<void>(parse_snapshot(corrupted)), ps::Error)
        << version << " with byte " << index << " flipped parsed";
  }
}

TEST(SnapshotCorruptionTest, EveryTruncationIsRefused) {
  expect_every_prefix_refused(serialize(make_v2()), "v2");
  expect_every_prefix_refused(serialize(make_v3()), "v3");
  expect_every_prefix_refused(serialize(make_v4()), "v4");
}

TEST(SnapshotCorruptionTest, EverySingleByteFlipIsRefused) {
  expect_every_flip_refused(serialize(make_v2()), "v2");
  expect_every_flip_refused(serialize(make_v3()), "v3");
  expect_every_flip_refused(serialize(make_v4()), "v4");
}

TEST(SnapshotCorruptionTest, CorruptFileDegradesTheDaemonToAColdStart) {
  const std::string path = "/tmp/ps-snapcorrupt-" +
                           std::to_string(::getpid()) + ".snap";
  std::string corrupted = serialize(make_v4());
  corrupted[corrupted.find("181.25")] = '9';
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << corrupted;
  }

  EXPECT_FALSE(load_snapshot(path).has_value());

  DaemonOptions options;
  options.system_budget_watts = 2880.0;
  options.snapshot_path = path;
  const PowerDaemon daemon(options);
  EXPECT_EQ(daemon.stats().jobs_restored, 0u);
  EXPECT_EQ(daemon.stats().fence_epoch, 0u);  // corrupt fence not adopted
  std::remove(path.c_str());
}

// The standby applies exactly the same refusal: a replication update
// whose embedded state fails validation never replaces replicated state.
TEST(SnapshotCorruptionTest, CorruptReplicationPayloadIsRefusedByTheHaCodec) {
  const DaemonSnapshot state = make_v4();
  const std::string clean = serialize(state);
  const std::string header = "powerstack-ha-update v1\nfence 2\nrounds 7\n"
                             "state\n";

  // The clean payload parses — the matrix below fails for corruption,
  // not because the harness assembled the frame wrong.
  ASSERT_EQ(ha::parse_state_update(header + clean).state, state);

  for (std::size_t index = 0; index + 1 < clean.size(); ++index) {
    std::string corrupted = clean;
    corrupted[index] =
        static_cast<char>(static_cast<unsigned char>(corrupted[index]) ^ 1u);
    EXPECT_THROW(
        static_cast<void>(ha::parse_state_update(header + corrupted)),
        ps::Error)
        << "update with state byte " << index << " flipped parsed";
  }
  for (std::size_t length = 0; length + 1 < clean.size(); ++length) {
    EXPECT_THROW(static_cast<void>(ha::parse_state_update(
                     header + clean.substr(0, length))),
                 ps::Error)
        << "update with state truncated to " << length << " bytes parsed";
  }
}

}  // namespace
}  // namespace ps::net
