#include "fault/faulty_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"

namespace ps::fault {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::shared_ptr<FaultPlan> plan_of(const FaultSpec& spec) {
  return std::make_shared<FaultPlan>(spec);
}

std::unique_ptr<net::Transport> faulty_end(net::Socket socket,
                                           std::shared_ptr<FaultPlan> plan) {
  return make_faulty_transport(net::make_transport(std::move(socket)),
                               std::move(plan));
}

void write_all(net::Transport& transport, std::string_view bytes) {
  const auto deadline = steady_clock::now() + milliseconds(2'000);
  while (!bytes.empty()) {
    ASSERT_LT(steady_clock::now(), deadline) << "write stalled";
    const net::IoResult result = transport.write_some(bytes);
    ASSERT_NE(result.status, net::IoStatus::kClosed);
    if (result.status == net::IoStatus::kOk) {
      bytes.remove_prefix(result.bytes);
    }
  }
}

void write_all(net::Socket& socket, std::string_view bytes) {
  while (!bytes.empty()) {
    const net::IoResult result = socket.write_some(bytes);
    ASSERT_EQ(result.status, net::IoStatus::kOk);
    bytes.remove_prefix(result.bytes);
  }
}

/// Reads until `count` frames decoded (or a 2 s deadline / EOF).
std::vector<std::string> read_frames(net::Socket& socket,
                                     std::size_t count) {
  net::FrameDecoder decoder;
  std::vector<std::string> frames;
  const auto deadline = steady_clock::now() + milliseconds(2'000);
  while (frames.size() < count && steady_clock::now() < deadline) {
    while (auto payload = decoder.next()) {
      frames.push_back(std::move(*payload));
    }
    if (frames.size() >= count) {
      break;
    }
    if (!socket.wait_readable(milliseconds(50))) {
      continue;
    }
    char buffer[4096];
    const net::IoResult result = socket.read_some(buffer, sizeof(buffer));
    if (result.status == net::IoStatus::kClosed) {
      break;
    }
    if (result.status == net::IoStatus::kOk) {
      decoder.feed(std::string_view(buffer, result.bytes));
    }
  }
  return frames;
}

TEST(FaultyTransportTest, QuietPlanPassesFramesThroughBothWays) {
  auto [near, far] = net::loopback_pair();
  FaultSpec spec;  // all probabilities zero: the plan never fires
  auto transport = faulty_end(std::move(near), plan_of(spec));

  const std::string outbound = net::encode_frame("sample payload");
  write_all(*transport, outbound);
  const auto received = read_frames(far, 1);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "sample payload");

  write_all(far, net::encode_frame("policy payload"));
  char buffer[4096];
  ASSERT_TRUE(transport->wait_readable(milliseconds(1'000)));
  const net::IoResult result = transport->read_some(buffer, sizeof(buffer));
  ASSERT_EQ(result.status, net::IoStatus::kOk);
  net::FrameDecoder decoder;
  decoder.feed(std::string_view(buffer, result.bytes));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "policy payload");
}

TEST(FaultyTransportTest, DropResetsTheConnectionUnderAWrite) {
  auto [near, far] = net::loopback_pair();
  FaultSpec spec;
  spec.drop_probability = 1.0;
  spec.max_faults = 1;
  auto transport = faulty_end(std::move(near), plan_of(spec));
  const net::IoResult result =
      transport->write_some(net::encode_frame("doomed"));
  EXPECT_EQ(result.status, net::IoStatus::kClosed);
  EXPECT_FALSE(transport->valid());
}

TEST(FaultyTransportTest, DropResetsTheConnectionUnderARead) {
  auto [near, far] = net::loopback_pair();
  write_all(far, net::encode_frame("never delivered"));
  FaultSpec spec;
  spec.drop_probability = 1.0;
  spec.max_faults = 1;
  auto transport = faulty_end(std::move(near), plan_of(spec));
  char buffer[64];
  const net::IoResult result = transport->read_some(buffer, sizeof(buffer));
  EXPECT_EQ(result.status, net::IoStatus::kClosed);
  EXPECT_FALSE(transport->valid());
}

TEST(FaultyTransportTest, DelaysReportWouldBlockBoundedly) {
  auto [near, far] = net::loopback_pair();
  const std::string frame = net::encode_frame("late but intact");
  write_all(far, frame);
  FaultSpec spec;
  spec.delay_probability = 1.0;
  spec.max_faults = 100;
  spec.max_consecutive_delays = 2;
  auto transport = faulty_end(std::move(near), plan_of(spec));

  char buffer[4096];
  EXPECT_EQ(transport->read_some(buffer, sizeof(buffer)).status,
            net::IoStatus::kWouldBlock);
  EXPECT_EQ(transport->read_some(buffer, sizeof(buffer)).status,
            net::IoStatus::kWouldBlock);
  // The bound forbids a third spurious would-block: data must now move.
  const net::IoResult result = transport->read_some(buffer, sizeof(buffer));
  ASSERT_EQ(result.status, net::IoStatus::kOk);
  EXPECT_GT(result.bytes, 0u);
}

TEST(FaultyTransportTest, PartialWriteMovesAtMostEightBytes) {
  auto [near, far] = net::loopback_pair();
  FaultSpec spec;
  spec.partial_probability = 1.0;
  spec.max_faults = 1;
  auto transport = faulty_end(std::move(near), plan_of(spec));

  const std::string frame =
      net::encode_frame(std::string(60, 'p'));  // well past one partial op
  const net::IoResult first = transport->write_some(frame);
  ASSERT_EQ(first.status, net::IoStatus::kOk);
  EXPECT_GE(first.bytes, 1u);
  EXPECT_LE(first.bytes, 8u);

  // The budget is spent; the remainder passes through and the frame is
  // reassembled intact on the far side.
  write_all(*transport, std::string_view(frame).substr(first.bytes));
  const auto received = read_frames(far, 1);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], std::string(60, 'p'));
}

TEST(FaultyTransportTest, CorruptionHitsOnePayloadByteAndCrcCatchesIt) {
  auto [near, far] = net::loopback_pair();
  const std::string payload(40, 'c');
  const std::string frame = net::encode_frame(payload);
  write_all(far, frame);

  FaultSpec spec;
  spec.corrupt_probability = 1.0;
  spec.max_faults = 1;
  auto transport = faulty_end(std::move(near), plan_of(spec));

  std::string received;
  const auto deadline = steady_clock::now() + milliseconds(2'000);
  while (received.size() < frame.size() &&
         steady_clock::now() < deadline) {
    ASSERT_TRUE(transport->wait_readable(milliseconds(200)));
    char buffer[4096];
    const net::IoResult result =
        transport->read_some(buffer, sizeof(buffer));
    ASSERT_EQ(result.status, net::IoStatus::kOk);
    received.append(buffer, result.bytes);
  }
  ASSERT_EQ(received.size(), frame.size());

  // Exactly one byte differs, and it is a payload byte — the length
  // prefix and CRC arrive untouched, so the decoder reaches the checksum
  // and must reject the frame there.
  std::vector<std::size_t> flipped;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (received[i] != frame[i]) {
      flipped.push_back(i);
    }
  }
  ASSERT_EQ(flipped.size(), 1u);
  EXPECT_GE(flipped[0], net::kFrameHeaderBytes);

  net::FrameDecoder decoder;
  decoder.feed(received);
  EXPECT_THROW(static_cast<void>(decoder.next()), Error);
}

TEST(FaultyTransportTest, DuplicateReplaysExactlyOneWholeFrame) {
  auto [near, far] = net::loopback_pair();
  FaultSpec spec;
  spec.duplicate_probability = 1.0;
  spec.max_faults = 1;
  auto transport = faulty_end(std::move(near), plan_of(spec));

  const std::string first = net::encode_frame("frame one");
  const std::string second = net::encode_frame("frame two");
  write_all(*transport, first);   // arms + completes the duplicate
  write_all(*transport, second);  // drains the injected copy first

  const auto received = read_frames(far, 3);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], "frame one");
  EXPECT_EQ(received[1], "frame one");
  EXPECT_EQ(received[2], "frame two");
}

TEST(FaultyTransportTest, SharedPlanBudgetSpansReconnects) {
  FaultSpec spec;
  spec.drop_probability = 1.0;
  spec.max_faults = 1;
  const auto plan = plan_of(spec);

  auto [first_near, first_far] = net::loopback_pair();
  auto first = faulty_end(std::move(first_near), plan);
  EXPECT_EQ(first->write_some(net::encode_frame("x")).status,
            net::IoStatus::kClosed);
  EXPECT_TRUE(plan->exhausted());

  // The "reconnected" transport wears the same plan: budget spent, the
  // wire is clean from here on.
  auto [second_near, second_far] = net::loopback_pair();
  auto second = faulty_end(std::move(second_near), plan);
  write_all(*second, net::encode_frame("healed"));
  const auto received = read_frames(second_far, 1);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "healed");
}

}  // namespace
}  // namespace ps::fault
