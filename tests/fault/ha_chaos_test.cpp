// The HA acceptance matrix (the tentpole bar for control-plane
// failover): a primary/standby daemon pair with replicated state, four
// clients on faulty transports, a scheduled 30% brownout — and either a
// mid-run primary kill or a replication partition that heals mid-run.
// Both scenarios must converge watt-for-watt with the in-memory
// run_dynamic replay, with the standby taking over within one lease,
// zero invariant violations under fatal enforcement, and no watt granted
// twice across the fencing boundary.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "fault/partition.hpp"
#include "ha/replicator.hpp"
#include "ha/standby.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"

namespace ps::fault {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/ps-hachaos-" + tag + "-" + std::to_string(::getpid()) +
         suffix;
}

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;  // the default fixed seed; CI also runs 29 and 47
}

bool eventually(const std::function<bool()>& predicate,
                int deadline_ms = 10'000) {
  const auto deadline = Clock::now() + milliseconds(deadline_ms);
  while (Clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(milliseconds(5));
  }
  return predicate();
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

/// The standard four-job mix on its own 16-node cluster (job names sort
/// in construction order, matching the daemon's name-ordered rounds).
struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

/// Everything the two scenarios share: the brownout schedule, the
/// fault-free in-memory reference, the faulty clients with an ordered
/// {primary, standby} endpoint list, and the HA pair wiring.
struct Scenario {
  static constexpr double kBudget = 16.0 * 230.0;  // 3680 W
  static constexpr milliseconds kLease{400};

  explicit Scenario(const std::string& tag)
      : seed(scenario_seed()),
        primary_path(unique_path(tag + "-primary", ".sock")),
        standby_path(unique_path(tag + "-standby", ".sock")),
        repl_path(unique_path(tag + "-repl", ".sock")) {
    std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";

    schedule.resize(2);
    schedule[0].epoch = 1;
    schedule[0].budget_watts = 0.9 * kBudget;
    schedule[0].at_epoch = 1;
    schedule[1].epoch = 2;
    schedule[1].budget_watts = 0.7 * kBudget;  // the brownout
    schedule[1].at_epoch = 2;
    schedule[1].emergency = true;

    // Reference: the fault-free in-memory dynamic loop over an identical
    // mix and the identical schedule.
    for (const auto& job : reference.jobs) {
      reference_jobs.push_back(job.get());
    }
    core::CoordinationLoop loop(kBudget);
    expected = loop.run_dynamic(reference_jobs, 20, {}, schedule, nullptr,
                                nullptr);

    // The daemon template both incarnations share. The primary adds the
    // replication seams on top; the standby template must stay free of
    // them (a promoted daemon serves solo).
    daemon_template.system_budget_watts = kBudget;
    daemon_template.node_tdp_watts = distributed.cluster->node(0).tdp();
    daemon_template.uncappable_watts =
        distributed.cluster->node(0).params().dram_watts;
    daemon_template.min_jobs = distributed.jobs.size();
    daemon_template.tick_interval = milliseconds(20);
    daemon_template.budget_revisions = schedule;
    // Generous liveness windows: the scenario proves failover, not
    // eviction.
    daemon_template.reclaim_timeout = milliseconds(30'000);
    daemon_template.heartbeat_timeout = milliseconds(60'000);
    daemon_template.quarantine_errors = 100;

    FaultSpec spec;
    spec.seed = seed;
    spec.max_faults = 10;
    spec.drop_probability = 0.05;
    spec.partial_probability = 0.12;
    spec.corrupt_probability = 0.05;
    spec.duplicate_probability = 0.05;
    spec.delay_probability = 0.10;
    const FaultPlan parent(spec);

    net::ClientOptions client_options;
    client_options.request_timeout = milliseconds(20'000);
    client_options.backoff_initial = milliseconds(5);
    client_options.backoff_max = milliseconds(50);
    client_options.connect_attempts_per_endpoint = 4;
    client_options.endpoint_probe_timeout = milliseconds(500);

    for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
      plans.push_back(std::make_shared<FaultPlan>(parent.fork(j + 1)));
      std::vector<net::RuntimeClient::TransportConnector> endpoints;
      for (const std::string* path : {&primary_path, &standby_path}) {
        endpoints.push_back([path = *path, plan = plans[j]] {
          return make_faulty_transport(
              net::make_transport(net::connect_unix(path)), plan);
        });
      }
      clients.push_back(std::make_unique<net::RuntimeClient>(
          std::move(endpoints), client_options));
      agents.push_back(std::make_unique<net::CoordinatedAgent>(
          *distributed.jobs[j], *clients[j]));
    }
  }

  /// Builds the HA pair. `repl_wrapper` decorates the standby's dial of
  /// the replication link (the partition scenario's seam).
  void start_ha_pair(
      const std::function<std::unique_ptr<net::Transport>(
          std::unique_ptr<net::Transport>)>& repl_wrapper = {}) {
    ha::ReplicatorOptions replicator_options;
    replicator_options.lease = kLease;
    replicator = std::make_unique<ha::Replicator>(replicator_options);
    replicator->listen_unix(repl_path);
    replicator->start();

    net::DaemonOptions primary_options = daemon_template;
    primary_options.replication_sink = replicator->sink();
    primary_options.fence_check = replicator->fence_check();
    primary = std::make_unique<net::PowerDaemon>(primary_options);
    primary->listen_unix(primary_path);
    primary_thread = std::thread([this] { primary->run(); });

    ha::StandbyOptions standby_options;
    standby_options.primary = [this, repl_wrapper] {
      auto transport = net::make_transport(net::connect_unix(repl_path));
      return repl_wrapper ? repl_wrapper(std::move(transport))
                          : std::move(transport);
    };
    standby_options.daemon = daemon_template;
    standby_options.lease = kLease;
    standby_options.dial_retry = milliseconds(25);
    standby_options.bind = [this](net::PowerDaemon& daemon) {
      daemon.listen_unix(standby_path);
    };
    standby = std::make_unique<ha::StandbyDaemon>(standby_options);
    standby_thread = std::thread([this] { standby->run(); });
  }

  /// Runs every agent for 10 coordination epochs (half the scenario).
  void run_half() {
    std::vector<std::thread> workers;
    for (auto& agent : agents) {
      workers.emplace_back([&agent] {
        const net::AgentResult result = agent->run(10);
        EXPECT_EQ(result.iterations, 10u);
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  void stop_standby() {
    if (standby != nullptr) {
      standby->stop();
    }
    if (standby_thread.joinable()) {
      standby_thread.join();
    }
  }

  /// The shared post-conditions: watt-for-watt convergence with the
  /// reference, the brownout budget respected on the socket path, every
  /// client ratcheted to the successor's fence.
  void expect_converged() {
    for (const auto& client : clients) {
      ASSERT_TRUE(client->last_budget().has_value());
      EXPECT_EQ(client->last_budget()->epoch, 2u);
      EXPECT_EQ(client->fence_epoch(), 1u);
      EXPECT_GE(client->stats().endpoint_rotations, 1u);
    }

    std::size_t injected = 0;
    for (const auto& plan : plans) {
      injected += plan->stats().injected();
    }
    EXPECT_GT(injected, 0u) << "fault plan never fired; scenario is vacuous";

    double allocated = 0.0;
    for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
      for (std::size_t h = 0; h < distributed.jobs[j]->host_count(); ++h) {
        EXPECT_DOUBLE_EQ(distributed.jobs[j]->host_cap(h),
                         reference_jobs[j]->host_cap(h))
            << "job " << distributed.jobs[j]->name() << " host " << h
            << " (seed " << seed << ")";
        allocated += distributed.jobs[j]->host_cap(h);
      }
    }
    EXPECT_LE(allocated, schedule[1].budget_watts + 0.5 * 16.0);
  }

  std::uint64_t seed;
  std::string primary_path;
  std::string standby_path;
  std::string repl_path;
  std::vector<core::BudgetRevision> schedule;
  Mix reference;
  Mix distributed;
  std::vector<sim::JobSimulation*> reference_jobs;
  core::CoordinationResult expected;
  net::DaemonOptions daemon_template;
  std::vector<std::shared_ptr<FaultPlan>> plans;
  std::vector<std::unique_ptr<net::RuntimeClient>> clients;
  std::vector<std::unique_ptr<net::CoordinatedAgent>> agents;
  std::unique_ptr<ha::Replicator> replicator;
  std::unique_ptr<net::PowerDaemon> primary;
  std::thread primary_thread;
  std::unique_ptr<ha::StandbyDaemon> standby;
  std::thread standby_thread;
};

/// Fatal-invariant guard for a whole scenario.
struct FatalInvariants {
  core::invariants::Mode previous = core::invariants::mode();
  FatalInvariants() {
    core::invariants::set_mode(core::invariants::Mode::kFatal);
    core::invariants::reset();
  }
  ~FatalInvariants() {
    core::invariants::reset();
    core::invariants::set_mode(previous);
  }
};

TEST(HaChaosTest, PrimaryKilledMidRunFailsOverWattForWatt) {
  const FatalInvariants guard;
  Scenario scenario("kill");
  scenario.start_ha_pair();

  scenario.run_half();
  const net::DaemonStats mid = scenario.primary->stats();
  EXPECT_EQ(mid.budget_epoch, 1u);  // the drift adopted, brownout pending
  EXPECT_GT(mid.replication_updates, 0u);
  // The standby replicated the first half before the kill.
  ASSERT_TRUE(eventually([&] { return scenario.standby->synced(); }));
  EXPECT_GE(scenario.standby->stats().rounds, 1u);
  EXPECT_FALSE(scenario.standby->promoted());

  // The kill: primary and its replicator vanish mid-run, in-memory state
  // and all. The replicated snapshot is now the only copy of the truth.
  scenario.primary->stop();
  scenario.primary_thread.join();
  scenario.primary.reset();
  scenario.replicator.reset();
  const auto killed_at = Clock::now();

  // The second half drives promotion (one silent lease) and failover;
  // the brownout revision is adopted by the *promoted standby* from the
  // same schedule, past the revision its replicated state already
  // recorded.
  scenario.run_half();

  EXPECT_TRUE(scenario.standby->promoted());
  EXPECT_EQ(scenario.standby->stats().fence_epoch, 1u);
  ASSERT_NE(scenario.standby->daemon(), nullptr);
  const net::DaemonStats after = scenario.standby->daemon()->stats();
  EXPECT_EQ(after.fence_epoch, 1u);
  EXPECT_EQ(after.jobs_restored, scenario.distributed.jobs.size());
  EXPECT_EQ(after.launch_barriers, 0u);  // barrier never re-ran
  EXPECT_EQ(after.budget_epoch, 2u);
  EXPECT_DOUBLE_EQ(after.budget_watts, scenario.schedule[1].budget_watts);
  EXPECT_EQ(after.budget_violations, 0u);
  scenario.stop_standby();

  // Takeover was bounded: the whole second half (promotion included)
  // finished, and promotion could not have fired before one full lease
  // of silence.
  EXPECT_GE(Clock::now() - killed_at, Scenario::kLease);

  scenario.expect_converged();
  EXPECT_EQ(core::invariants::stats().violations, 0u);
}

TEST(HaChaosTest, PartitionedPrimaryStaysFencedThroughTheHeal) {
  const FatalInvariants guard;
  Scenario scenario("partition");

  // The partition wears on the standby's replication dial: both
  // directions of the link drop while the primary itself stays up.
  auto partition = std::make_shared<PartitionControl>();
  FaultSpec quiet;
  quiet.max_faults = 0;
  auto quiet_plan = std::make_shared<FaultPlan>(quiet);
  scenario.start_ha_pair(
      [partition, quiet_plan](std::unique_ptr<net::Transport> inner) {
        return make_faulty_transport(std::move(inner), quiet_plan,
                                     partition);
      });

  scenario.run_half();
  ASSERT_TRUE(eventually([&] { return scenario.standby->synced(); }));
  ASSERT_TRUE(eventually([&] { return scenario.replicator->stats().engaged; }));
  EXPECT_FALSE(scenario.replicator->should_fence());

  // The partition: the primary is alive and reachable by clients, but
  // its standby can no longer hear it (or ack it). The primary must
  // fence itself within lease/2; the standby must promote within one
  // lease. For a window both exist — fencing is what keeps that window
  // from ever double-granting a watt.
  partition->isolate();
  ASSERT_TRUE(eventually([&] { return scenario.replicator->should_fence(); }));
  ASSERT_TRUE(eventually([&] { return scenario.standby->promoted(); }));
  const net::DaemonStats fenced = scenario.primary->stats();

  // Clients now face a live-but-fenced primary: their samples land, the
  // allocation round is refused, no reply comes, and the probe timeout
  // rotates them to the promoted standby.
  std::thread second_half([&scenario] { scenario.run_half(); });

  // Heal the partition mid-half, during the brownout epoch. The zombie
  // primary hears its standby's endpoint again — but a promoted standby
  // never acks, so the fence must hold forever.
  ASSERT_TRUE(eventually([&] {
    return scenario.standby->daemon() != nullptr &&
           scenario.standby->daemon()->stats().allocations >= 1;
  }));
  partition->heal();
  second_half.join();

  EXPECT_TRUE(scenario.replicator->should_fence())
      << "healed partition un-fenced a superseded primary";
  const net::DaemonStats zombie = scenario.primary->stats();
  EXPECT_GE(zombie.rounds_fenced, 1u);
  // Zero double-allocation across the fencing boundary: the fenced
  // primary never completed another round after its successor appeared.
  EXPECT_EQ(zombie.allocations, fenced.allocations);

  ASSERT_NE(scenario.standby->daemon(), nullptr);
  const net::DaemonStats after = scenario.standby->daemon()->stats();
  EXPECT_EQ(after.fence_epoch, 1u);
  EXPECT_EQ(after.budget_epoch, 2u);
  EXPECT_EQ(after.budget_violations, 0u);

  scenario.primary->stop();
  scenario.primary_thread.join();
  scenario.primary.reset();
  scenario.replicator.reset();
  scenario.stop_standby();

  scenario.expect_converged();
  EXPECT_EQ(core::invariants::stats().violations, 0u);
}

}  // namespace
}  // namespace ps::fault
