// The multi-tenant brownout acceptance scenario: a mixed-SLA job set
// whose summed TDP oversubscribes the post-brownout budget by >= 1.3x,
// served over seeded faulty transports through a daemon crash-and-
// restart — and the distributed mix must land watt-for-watt on the
// in-memory run_dynamic replay, shed strictly in class order under the
// brownout (best_effort to its floors first, latency_critical last),
// keep time-to-safe bounded to one control period, and trip zero
// invariants under fatal enforcement (including the multi-tenant
// conservation and no-inversion checks).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"
#include "sim/sla.hpp"

namespace ps::fault {
namespace {

using sim::SlaClass;
using std::chrono::milliseconds;

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/ps-mt-brownout-" + tag + "-" + std::to_string(::getpid()) +
         suffix;
}

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;  // the default fixed seed; CI also runs 29 and 47
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

struct TenantSpec {
  std::string name;
  kernel::WorkloadConfig workload;
  SlaClass sla_class;
};

/// The four-tenant mix: one latency_critical hog, one standard, two
/// best_effort (job names sort in construction order so the daemon's
/// name-ordered rounds match the in-memory loop's job order).
std::vector<TenantSpec> tenant_specs() {
  return {{"a-wasteful", wasteful_config(), SlaClass::kStandard},
          {"b-hungry", hungry_config(), SlaClass::kLatencyCritical},
          {"c-wasteful", wasteful_config(), SlaClass::kBestEffort},
          {"d-hungry", hungry_config(), SlaClass::kBestEffort}};
}

struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<TenantSpec> spec = tenant_specs();
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].name, std::move(hosts), spec[j].workload));
      jobs.back()->set_sla_class(spec[j].sla_class);
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

TEST(MultiTenantBrownoutTest, BrownoutShedsByClassAndMatchesReplay) {
  const std::uint64_t seed = scenario_seed();
  RecordProperty("ps_fault_seed", static_cast<int>(seed));
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";

  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  const double budget = 16.0 * 230.0;  // 3680 W
  const std::size_t iterations = 20;

  std::vector<core::BudgetRevision> schedule(2);
  schedule[0].epoch = 1;
  schedule[0].budget_watts = 0.9 * budget;  // 3312 W
  schedule[0].at_epoch = 1;
  schedule[1].epoch = 2;
  schedule[1].budget_watts = 0.7 * budget;  // 2576 W, the brownout
  schedule[1].at_epoch = 2;
  schedule[1].emergency = true;

  // Oversubscription bar: the admitted mix's worst-case draw must exceed
  // the post-brownout budget by >= 1.3x, so degradation (not admission)
  // is what keeps the lights on.
  Mix reference;
  const double worst_case_tdp =
      16.0 * reference.cluster->node(0).tdp();
  EXPECT_GE(worst_case_tdp, 1.3 * schedule[1].budget_watts);

  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  core::BudgetTelemetry telemetry;
  const core::CoordinationResult expected = loop.run_dynamic(
      reference_jobs, iterations, {}, schedule, nullptr, &telemetry);

  // Bounded time-to-safe: a budget drop leaves superseded caps in place
  // for at most one control period.
  EXPECT_EQ(telemetry.revisions_applied, 2u);
  EXPECT_FALSE(telemetry.excursions.in_excursion);
  double longest_period = 0.0;
  for (const core::EpochRecord& record : expected.epochs) {
    longest_period = std::max(longest_period, record.elapsed_seconds);
  }
  std::printf(
      "measured time-to-safe: last %.6f s, max %.6f s "
      "(one control period <= %.6f s)\n",
      telemetry.excursions.last_time_to_safe_seconds,
      telemetry.excursions.max_time_to_safe_seconds, longest_period);
  EXPECT_LE(telemetry.excursions.max_time_to_safe_seconds,
            longest_period + 1e-9);
  EXPECT_EQ(telemetry.emergency_clamps, 0u);  // schedule stays above floors
  EXPECT_DOUBLE_EQ(telemetry.final_budget_watts, schedule[1].budget_watts);

  // Class-ordered degradation on the reference trajectory: under the
  // brownout the headroom above the 16 floors (2576 - 2432 = 144 W) all
  // belongs to the latency_critical tenant. Both best_effort jobs and
  // the standard job sit on their floors (shed first); the
  // latency_critical job rides visibly above its floor (shed last).
  const std::vector<TenantSpec> spec = tenant_specs();
  for (std::size_t j = 0; j < reference_jobs.size(); ++j) {
    for (std::size_t h = 0; h < reference_jobs[j]->host_count(); ++h) {
      const double cap = reference_jobs[j]->host_cap(h);
      const double floor = reference_jobs[j]->host(h).min_cap();
      if (spec[j].sla_class == SlaClass::kLatencyCritical) {
        EXPECT_GT(cap, floor + 10.0)
            << "latency_critical tenant pinned to its floor";
      } else {
        EXPECT_LE(cap, floor + 0.5)
            << "job " << reference_jobs[j]->name() << " host " << h
            << " holds watts the starved latency_critical tenant needs";
      }
    }
  }

  // Distributed mix: same schedule, faulty transports, daemon crash.
  Mix distributed;
  const std::string socket_path = unique_path("sock", ".sock");
  const std::string snapshot_path = unique_path("snap", ".snap");
  net::DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = distributed.cluster->node(0).tdp();
  options.uncappable_watts =
      distributed.cluster->node(0).params().dram_watts;
  options.min_jobs = distributed.jobs.size();
  options.tick_interval = milliseconds(20);
  options.snapshot_path = snapshot_path;
  options.budget_revisions = schedule;
  options.reclaim_timeout = milliseconds(30'000);
  options.heartbeat_timeout = milliseconds(60'000);
  options.quarantine_errors = 100;

  FaultSpec fault_spec;
  fault_spec.seed = seed;
  fault_spec.max_faults = 10;
  fault_spec.drop_probability = 0.05;
  fault_spec.partial_probability = 0.12;
  fault_spec.corrupt_probability = 0.05;
  fault_spec.duplicate_probability = 0.05;
  fault_spec.delay_probability = 0.10;
  const FaultPlan parent(fault_spec);
  std::vector<std::shared_ptr<FaultPlan>> plans;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    plans.push_back(std::make_shared<FaultPlan>(parent.fork(j + 1)));
  }

  net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);

  std::vector<std::unique_ptr<net::RuntimeClient>> clients;
  std::vector<std::unique_ptr<net::CoordinatedAgent>> agents;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    net::RuntimeClient::TransportConnector connector =
        [&socket_path, plan = plans[j]] {
          return make_faulty_transport(
              net::make_transport(net::connect_unix(socket_path)), plan);
        };
    clients.push_back(std::make_unique<net::RuntimeClient>(
        std::move(connector), client_options));
    agents.push_back(std::make_unique<net::CoordinatedAgent>(
        *distributed.jobs[j], *clients[j]));
  }

  const auto run_half = [&](net::PowerDaemon& daemon) {
    std::thread serving([&daemon] { daemon.run(); });
    std::vector<std::thread> workers;
    for (auto& agent : agents) {
      workers.emplace_back([&agent] {
        const net::AgentResult result = agent->run(10);
        EXPECT_EQ(result.iterations, 10u);
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    daemon.stop();
    serving.join();
  };

  auto daemon = std::make_unique<net::PowerDaemon>(options);
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  const net::DaemonStats before = daemon->stats();
  EXPECT_EQ(before.budget_revisions_applied, 1u);
  EXPECT_EQ(before.budget_epoch, 1u);
  EXPECT_EQ(before.budget_violations, 0u);
  EXPECT_GT(before.snapshots_written, 0u);
  daemon.reset();  // crash: in-memory state is gone, the snapshot is not

  daemon = std::make_unique<net::PowerDaemon>(options);
  const net::DaemonStats restored = daemon->stats();
  EXPECT_EQ(restored.jobs_restored, distributed.jobs.size());
  EXPECT_EQ(restored.budget_epoch, 1u);
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  const net::DaemonStats after = daemon->stats();
  EXPECT_EQ(after.budget_violations, 0u);
  EXPECT_EQ(after.budget_epoch, 2u);
  EXPECT_DOUBLE_EQ(after.budget_watts, schedule[1].budget_watts);
  daemon.reset();
  std::remove(snapshot_path.c_str());
  std::remove(socket_path.c_str());

  std::size_t injected = 0;
  for (const auto& plan : plans) {
    injected += plan->stats().injected();
  }
  EXPECT_GT(injected, 0u) << "fault plan never fired; scenario is vacuous";

  // Watt-for-watt equality with the in-memory replay: the SLA classes
  // rode the wire (optional sla_class sample line), the daemon ran the
  // same degradation step, and the faults plus the crash healed without
  // perturbing the final allocation by a single bit.
  double allocated = 0.0;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    for (std::size_t h = 0; h < distributed.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(distributed.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << "job " << distributed.jobs[j]->name() << " host " << h
          << " (seed " << seed << ")";
      allocated += distributed.jobs[j]->host_cap(h);
    }
  }
  EXPECT_LE(allocated, schedule[1].budget_watts + 0.5 * 16.0);

  // Zero invariant violations — including the class-conservation and
  // no-inversion checks the degradation step runs — under fatal mode.
  EXPECT_GT(core::invariants::stats().checks, 0u);
  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

}  // namespace
}  // namespace ps::fault
