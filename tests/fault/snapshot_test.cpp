#include "net/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace ps::net {
namespace {

DaemonSnapshot example_snapshot() {
  DaemonSnapshot snapshot;
  snapshot.system_budget_watts = 2'880.0;
  snapshot.launch_barrier_met = true;
  snapshot.allocations = 7;
  SnapshotJob first;
  first.name = "lulesh-512";
  first.sequence = 6;
  // Deliberately non-terminating decimals: the format must round-trip
  // every double bit-for-bit, same as the wire.
  first.caps_watts = {543.0 / 7.0, 181.25, 200.0 / 3.0};
  SnapshotJob second;
  second.name = "amg-256";
  second.sequence = 5;
  second.caps_watts = {152.0, 190.625};
  snapshot.jobs = {first, second};
  return snapshot;
}

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-snapshot-" + tag + "-" + std::to_string(::getpid()) +
         ".snap";
}

TEST(SnapshotTest, SerializeParseRoundTripsExactly) {
  const DaemonSnapshot snapshot = example_snapshot();
  const DaemonSnapshot parsed = parse_snapshot(serialize(snapshot));
  EXPECT_EQ(parsed, snapshot);
}

TEST(SnapshotTest, AllocatedWattsSumsEveryJob) {
  const DaemonSnapshot snapshot = example_snapshot();
  double expected = 0.0;
  for (const SnapshotJob& job : snapshot.jobs) {
    for (const double cap : job.caps_watts) {
      expected += cap;
    }
  }
  EXPECT_DOUBLE_EQ(snapshot.allocated_watts(), expected);
}

TEST(SnapshotTest, ChecksumGuardsTheWholeBody) {
  std::string text = serialize(example_snapshot());
  // Flip one digit somewhere in a caps line: still a perfectly valid
  // grammar, so only the checksum can tell.
  const std::size_t pos = text.find("181.25");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '2';
  EXPECT_THROW(static_cast<void>(parse_snapshot(text)), Error);
}

TEST(SnapshotTest, RejectsTruncatedInput) {
  const std::string text = serialize(example_snapshot());
  // Drop the trailing checksum line — the shape a torn write leaves.
  const std::size_t cut = text.rfind("checksum");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_THROW(static_cast<void>(parse_snapshot(text.substr(0, cut))),
               Error);
  EXPECT_THROW(static_cast<void>(parse_snapshot("")), Error);
}

TEST(SnapshotTest, RejectsDuplicateJobNames) {
  DaemonSnapshot snapshot = example_snapshot();
  snapshot.jobs.push_back(snapshot.jobs.front());
  EXPECT_THROW(static_cast<void>(parse_snapshot(serialize(snapshot))),
               Error);
}

TEST(SnapshotTest, SaveLoadRoundTripsThroughDisk) {
  const std::string path = unique_path("roundtrip");
  const DaemonSnapshot snapshot = example_snapshot();
  save_snapshot(path, snapshot);
  const auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, snapshot);

  // Saving again replaces atomically — no stale content bleeds through.
  DaemonSnapshot updated = snapshot;
  updated.allocations = 8;
  save_snapshot(path, updated);
  const auto reloaded = load_snapshot(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->allocations, 8u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileLoadsAsColdStart) {
  EXPECT_EQ(load_snapshot(unique_path("missing")), std::nullopt);
}

TEST(SnapshotTest, CorruptFileLoadsAsColdStart) {
  const std::string path = unique_path("corrupt");
  {
    std::ofstream out(path);
    out << "powerstack-snapshot v1\nbudget garbage\n";
  }
  EXPECT_EQ(load_snapshot(path), std::nullopt);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ps::net
