#include "net/snapshot.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace ps::net {
namespace {

DaemonSnapshot example_snapshot() {
  DaemonSnapshot snapshot;
  snapshot.system_budget_watts = 2'880.0;
  snapshot.launch_barrier_met = true;
  snapshot.allocations = 7;
  SnapshotJob first;
  first.name = "lulesh-512";
  first.sequence = 6;
  // Deliberately non-terminating decimals: the format must round-trip
  // every double bit-for-bit, same as the wire.
  first.caps_watts = {543.0 / 7.0, 181.25, 200.0 / 3.0};
  SnapshotJob second;
  second.name = "amg-256";
  second.sequence = 5;
  second.caps_watts = {152.0, 190.625};
  snapshot.jobs = {first, second};
  return snapshot;
}

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-snapshot-" + tag + "-" + std::to_string(::getpid()) +
         ".snap";
}

TEST(SnapshotTest, SerializeParseRoundTripsExactly) {
  const DaemonSnapshot snapshot = example_snapshot();
  const DaemonSnapshot parsed = parse_snapshot(serialize(snapshot));
  EXPECT_EQ(parsed, snapshot);
}

TEST(SnapshotTest, AllocatedWattsSumsEveryJob) {
  const DaemonSnapshot snapshot = example_snapshot();
  double expected = 0.0;
  for (const SnapshotJob& job : snapshot.jobs) {
    for (const double cap : job.caps_watts) {
      expected += cap;
    }
  }
  EXPECT_DOUBLE_EQ(snapshot.allocated_watts(), expected);
}

TEST(SnapshotTest, ChecksumGuardsTheWholeBody) {
  std::string text = serialize(example_snapshot());
  // Flip one digit somewhere in a caps line: still a perfectly valid
  // grammar, so only the checksum can tell.
  const std::size_t pos = text.find("181.25");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '2';
  EXPECT_THROW(static_cast<void>(parse_snapshot(text)), Error);
}

TEST(SnapshotTest, RejectsTruncatedInput) {
  const std::string text = serialize(example_snapshot());
  // Drop the trailing checksum line — the shape a torn write leaves.
  const std::size_t cut = text.rfind("checksum");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_THROW(static_cast<void>(parse_snapshot(text.substr(0, cut))),
               Error);
  EXPECT_THROW(static_cast<void>(parse_snapshot("")), Error);
}

TEST(SnapshotTest, RejectsDuplicateJobNames) {
  DaemonSnapshot snapshot = example_snapshot();
  snapshot.jobs.push_back(snapshot.jobs.front());
  EXPECT_THROW(static_cast<void>(parse_snapshot(serialize(snapshot))),
               Error);
}

TEST(SnapshotTest, SaveLoadRoundTripsThroughDisk) {
  const std::string path = unique_path("roundtrip");
  const DaemonSnapshot snapshot = example_snapshot();
  save_snapshot(path, snapshot);
  const auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, snapshot);

  // Saving again replaces atomically — no stale content bleeds through.
  DaemonSnapshot updated = snapshot;
  updated.allocations = 8;
  save_snapshot(path, updated);
  const auto reloaded = load_snapshot(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->allocations, 8u);
  std::remove(path.c_str());
}

DaemonSnapshot hetero_snapshot() {
  DaemonSnapshot snapshot = example_snapshot();
  // lulesh gains a GPU domain; amg stays CPU-only — the mixed-cluster
  // shape that forces the v3 bare-gpu_caps line.
  snapshot.jobs[0].gpu_caps_watts = {800.0 / 7.0, 215.375, 290.0 / 3.0};
  return snapshot;
}

TEST(SnapshotTest, V3RoundTripsGpuCapsExactly) {
  const DaemonSnapshot snapshot = hetero_snapshot();
  const std::string text = serialize(snapshot);
  EXPECT_EQ(text.rfind("powerstack-snapshot v3\n", 0), 0u);
  const DaemonSnapshot parsed = parse_snapshot(text);
  EXPECT_EQ(parsed, snapshot);
  // allocated_watts() spans both domains.
  double expected = 0.0;
  for (const SnapshotJob& job : snapshot.jobs) {
    for (const double cap : job.caps_watts) {
      expected += cap;
    }
    for (const double cap : job.gpu_caps_watts) {
      expected += cap;
    }
  }
  EXPECT_DOUBLE_EQ(parsed.allocated_watts(), expected);
}

TEST(SnapshotTest, V3MixedClusterKeepsCpuOnlyJobsBare) {
  // Single-domain jobs of a mixed cluster write a bare `gpu_caps` line
  // so the per-job line count stays fixed — and parse back empty.
  const std::string text = serialize(hetero_snapshot());
  EXPECT_NE(text.find("\ngpu_caps\n"), std::string::npos);
  const DaemonSnapshot parsed = parse_snapshot(text);
  ASSERT_EQ(parsed.jobs.size(), 2u);
  EXPECT_FALSE(parsed.jobs[0].gpu_caps_watts.empty());
  EXPECT_TRUE(parsed.jobs[1].gpu_caps_watts.empty());
}

TEST(SnapshotTest, CpuOnlySnapshotStaysV2ByteCompatible) {
  // No GPU caps anywhere: the header stays v2 and no gpu_caps line is
  // emitted, so pre-hetero snapshot files are byte-identical.
  const std::string text = serialize(example_snapshot());
  EXPECT_EQ(text.rfind("powerstack-snapshot v2\n", 0), 0u);
  EXPECT_EQ(text.find("gpu_caps"), std::string::npos);
}

TEST(SnapshotTest, RejectsGpuCapsCountMismatch) {
  // serialize() is a plain writer; the parser owns the shape check.
  DaemonSnapshot snapshot = hetero_snapshot();
  snapshot.jobs[0].gpu_caps_watts.pop_back();
  EXPECT_THROW(static_cast<void>(parse_snapshot(serialize(snapshot))),
               Error);
}

TEST(SnapshotTest, ChecksumGuardsTheGpuLineToo) {
  std::string text = serialize(hetero_snapshot());
  const std::size_t pos = text.find("215.375");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '3';
  EXPECT_THROW(static_cast<void>(parse_snapshot(text)), Error);
}

TEST(SnapshotTest, MissingFileLoadsAsColdStart) {
  EXPECT_EQ(load_snapshot(unique_path("missing")), std::nullopt);
}

TEST(SnapshotTest, CorruptFileLoadsAsColdStart) {
  const std::string path = unique_path("corrupt");
  {
    std::ofstream out(path);
    out << "powerstack-snapshot v1\nbudget garbage\n";
  }
  EXPECT_EQ(load_snapshot(path), std::nullopt);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ps::net
