#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "util/error.hpp"

namespace ps::fault {
namespace {

/// Draws `ops` decisions, alternating read/write the way a request/reply
/// transport does.
std::vector<FaultKind> schedule_of(FaultPlan& plan, std::size_t ops) {
  std::vector<FaultKind> kinds;
  kinds.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    kinds.push_back(
        plan.next(i % 2 == 0 ? FaultOp::kWrite : FaultOp::kRead));
  }
  return kinds;
}

FaultSpec mixed_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.max_faults = 1'000;
  spec.drop_probability = 0.1;
  spec.partial_probability = 0.2;
  spec.corrupt_probability = 0.1;
  spec.duplicate_probability = 0.1;
  spec.delay_probability = 0.2;
  return spec;
}

TEST(FaultPlanTest, SameSpecReplaysTheSameSchedule) {
  FaultPlan first(mixed_spec(42));
  FaultPlan second(mixed_spec(42));
  EXPECT_EQ(schedule_of(first, 300), schedule_of(second, 300));
  EXPECT_EQ(first.stats().injected(), second.stats().injected());
  EXPECT_GT(first.stats().injected(), 0u);
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultPlan first(mixed_spec(1));
  FaultPlan second(mixed_spec(2));
  EXPECT_NE(schedule_of(first, 300), schedule_of(second, 300));
}

TEST(FaultPlanTest, WarmupOpsNeverFault) {
  FaultSpec spec;
  spec.warmup_ops = 25;
  spec.max_faults = 100;
  spec.drop_probability = 1.0;
  FaultPlan plan(spec);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(plan.next(FaultOp::kRead), FaultKind::kNone) << "op " << i;
  }
  EXPECT_EQ(plan.next(FaultOp::kRead), FaultKind::kDrop);
}

TEST(FaultPlanTest, BudgetExhaustionGoesPermanentlyQuiet) {
  FaultSpec spec;
  spec.max_faults = 3;
  spec.drop_probability = 1.0;
  FaultPlan plan(spec);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.next(FaultOp::kWrite), FaultKind::kDrop);
  }
  EXPECT_TRUE(plan.exhausted());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(plan.next(FaultOp::kWrite), FaultKind::kNone);
  }
  EXPECT_EQ(plan.stats().drops, 3u);
}

TEST(FaultPlanTest, ZeroBudgetNeverFires) {
  FaultSpec spec;
  spec.max_faults = 0;
  spec.drop_probability = 1.0;
  FaultPlan plan(spec);
  EXPECT_TRUE(plan.exhausted());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(plan.next(FaultOp::kRead), FaultKind::kNone);
  }
}

TEST(FaultPlanTest, ConsecutiveDelaysAreBounded) {
  FaultSpec spec;
  spec.max_faults = 1'000;
  spec.delay_probability = 1.0;
  spec.max_consecutive_delays = 2;
  FaultPlan plan(spec);
  std::size_t streak = 0;
  for (std::size_t i = 0; i < 120; ++i) {
    const FaultKind kind = plan.next(FaultOp::kRead);
    if (kind == FaultKind::kDelay) {
      ++streak;
      EXPECT_LE(streak, 2u) << "op " << i;
    } else {
      EXPECT_EQ(kind, FaultKind::kNone);
      streak = 0;
    }
  }
  EXPECT_GT(plan.stats().delays, 0u);
}

TEST(FaultPlanTest, CorruptOnReadsDuplicateOnWrites) {
  FaultSpec spec;
  spec.max_faults = 1'000;
  spec.corrupt_probability = 0.5;
  spec.duplicate_probability = 0.5;
  FaultPlan reads(spec);
  FaultPlan writes(spec);
  for (std::size_t i = 0; i < 100; ++i) {
    const FaultKind read_kind = reads.next(FaultOp::kRead);
    EXPECT_NE(read_kind, FaultKind::kDuplicateFrame);
    const FaultKind write_kind = writes.next(FaultOp::kWrite);
    EXPECT_NE(write_kind, FaultKind::kCorrupt);
  }
  EXPECT_GT(reads.stats().corruptions, 0u);
  EXPECT_GT(writes.stats().duplicates, 0u);
}

TEST(FaultPlanTest, ForkIsStablePerLabelAndIndependentAcrossLabels) {
  const FaultPlan parent(mixed_spec(7));
  FaultPlan child_a = parent.fork(1);
  FaultPlan child_a_again = parent.fork(1);
  FaultPlan child_b = parent.fork(2);
  const auto a = schedule_of(child_a, 200);
  EXPECT_EQ(a, schedule_of(child_a_again, 200));
  EXPECT_NE(a, schedule_of(child_b, 200));
}

TEST(FaultPlanTest, PartialBytesStaysInContract) {
  FaultPlan plan(mixed_spec(3));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(plan.partial_bytes(1), 1u);
    const std::size_t bytes = plan.partial_bytes(100);
    EXPECT_GE(bytes, 1u);
    EXPECT_LE(bytes, 8u);
  }
}

TEST(FaultPlanTest, CorruptOffsetStaysInContract) {
  FaultPlan plan(mixed_spec(4));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_LT(plan.corrupt_offset(5), 5u);
    EXPECT_EQ(plan.corrupt_offset(1), 0u);
  }
}

TEST(FaultPlanTest, RejectsInvalidProbabilities) {
  FaultSpec negative;
  negative.drop_probability = -0.1;
  EXPECT_THROW(FaultPlan{negative}, Error);

  FaultSpec oversized;
  oversized.corrupt_probability = 1.5;
  EXPECT_THROW(FaultPlan{oversized}, Error);

  FaultSpec sum;
  sum.drop_probability = 0.7;
  sum.partial_probability = 0.7;
  EXPECT_THROW(FaultPlan{sum}, Error);
}

/// S5 hook: the CI fault job exports PS_FAULT_SEED (three fixed seeds and
/// one random one per run); any seed must produce a replayable schedule,
/// and the seed in effect is logged so a failing run can be replayed.
TEST(FaultPlanTest, EnvironmentSeedReplays) {
  std::uint64_t seed = 11;
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    seed = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  RecordProperty("ps_fault_seed", static_cast<int>(seed));
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";
  FaultPlan first(mixed_spec(seed));
  FaultPlan second(mixed_spec(seed));
  EXPECT_EQ(schedule_of(first, 500), schedule_of(second, 500));
}

}  // namespace
}  // namespace ps::fault
