#include "fault/partition.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace ps::fault {
namespace {

using std::chrono::milliseconds;

/// A plan that never fires: partitions are the only fault under test.
std::shared_ptr<FaultPlan> quiet_plan() {
  FaultSpec spec;
  spec.max_faults = 0;
  return std::make_shared<FaultPlan>(spec);
}

TEST(PartitionControlTest, DirectionsAreIndependent) {
  PartitionControl control;
  EXPECT_FALSE(control.inbound_blocked());
  EXPECT_FALSE(control.outbound_blocked());

  control.block_inbound();
  EXPECT_TRUE(control.inbound_blocked());
  EXPECT_FALSE(control.outbound_blocked());

  control.heal();
  control.block_outbound();
  EXPECT_FALSE(control.inbound_blocked());
  EXPECT_TRUE(control.outbound_blocked());

  control.isolate();
  EXPECT_TRUE(control.inbound_blocked());
  EXPECT_TRUE(control.outbound_blocked());
  control.heal();
  EXPECT_FALSE(control.inbound_blocked());
  EXPECT_FALSE(control.outbound_blocked());
}

TEST(PartitionControlTest, ScheduledWindowAutoHeals) {
  PartitionControl control;
  control.isolate_for(milliseconds(40));
  EXPECT_TRUE(control.inbound_blocked());
  EXPECT_TRUE(control.outbound_blocked());
  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_FALSE(control.inbound_blocked());
  EXPECT_FALSE(control.outbound_blocked());
}

TEST(PartitionControlTest, HealCancelsScheduledWindows) {
  PartitionControl control;
  control.block_inbound_for(milliseconds(10'000));
  EXPECT_TRUE(control.inbound_blocked());
  control.heal();
  EXPECT_FALSE(control.inbound_blocked());
}

TEST(FaultyTransportPartitionTest, OutboundBlockRefusesWrites) {
  auto [near, far] = net::loopback_pair();
  auto control = std::make_shared<PartitionControl>();
  FaultyTransport transport(net::make_transport(std::move(near)),
                            quiet_plan(), control);

  control->block_outbound();
  const net::IoResult blocked = transport.write_some("hello");
  EXPECT_EQ(blocked.status, net::IoStatus::kWouldBlock);
  EXPECT_EQ(blocked.bytes, 0u);
  EXPECT_GE(control->blocked_writes(), 1u);

  control->heal();
  const net::IoResult ok = transport.write_some("hello");
  EXPECT_EQ(ok.status, net::IoStatus::kOk);
  EXPECT_EQ(ok.bytes, 5u);
}

TEST(FaultyTransportPartitionTest, InboundBlockHoldsBytesUntilHeal) {
  auto [near, far] = net::loopback_pair();
  auto control = std::make_shared<PartitionControl>();
  FaultyTransport transport(net::make_transport(std::move(near)),
                            quiet_plan(), control);

  // The peer ships a complete frame while the link is down.
  const std::string frame = net::encode_frame("payload-under-partition");
  control->block_inbound();
  ASSERT_EQ(far.write_some(frame).status, net::IoStatus::kOk);
  std::this_thread::sleep_for(milliseconds(20));  // let the bytes land

  char buffer[256];
  const net::IoResult blocked = transport.read_some(buffer, sizeof(buffer));
  EXPECT_EQ(blocked.status, net::IoStatus::kWouldBlock);
  EXPECT_GE(control->blocked_reads(), 1u);

  // Healing delivers the held bytes — nothing was lost, exactly like a
  // switch flushing its queues.
  control->heal();
  net::FrameDecoder decoder;
  for (;;) {
    const net::IoResult r = transport.read_some(buffer, sizeof(buffer));
    if (r.status != net::IoStatus::kOk) {
      break;
    }
    decoder.feed(std::string_view(buffer, r.bytes));
  }
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "payload-under-partition");
}

TEST(FaultyTransportPartitionTest, WaitReadableObservesAMidWaitHeal) {
  auto [near, far] = net::loopback_pair();
  auto control = std::make_shared<PartitionControl>();
  FaultyTransport transport(net::make_transport(std::move(near)),
                            quiet_plan(), control);

  control->block_inbound();
  ASSERT_EQ(far.write_some("abc").status, net::IoStatus::kOk);

  std::thread healer([&control] {
    std::this_thread::sleep_for(milliseconds(30));
    control->heal();
  });
  // The wait naps through the blocked window and returns true once the
  // heal exposes the held bytes — well before the full timeout.
  const auto started = std::chrono::steady_clock::now();
  EXPECT_TRUE(transport.wait_readable(milliseconds(2'000)));
  const auto waited = std::chrono::steady_clock::now() - started;
  EXPECT_LT(waited, milliseconds(1'000));
  healer.join();

  char buffer[16];
  const net::IoResult r = transport.read_some(buffer, sizeof(buffer));
  ASSERT_EQ(r.status, net::IoStatus::kOk);
  EXPECT_EQ(std::string_view(buffer, r.bytes), "abc");
}

TEST(FaultyTransportPartitionTest, BlockedWaitTimesOut) {
  auto [near, far] = net::loopback_pair();
  auto control = std::make_shared<PartitionControl>();
  FaultyTransport transport(net::make_transport(std::move(near)),
                            quiet_plan(), control);
  control->block_inbound();
  ASSERT_EQ(far.write_some("abc").status, net::IoStatus::kOk);
  EXPECT_FALSE(transport.wait_readable(milliseconds(30)));
}

}  // namespace
}  // namespace ps::fault
