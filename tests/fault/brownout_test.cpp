// The brownout acceptance scenario (the tentpole bar for the dynamic-
// budget subsystem): a seeded budget schedule with a 30% mid-run drop,
// served over faulty transports, through a daemon crash-and-restart over
// its snapshot — and the distributed mix must land watt-for-watt on the
// in-memory CoordinationLoop::run_dynamic replay of the same schedule,
// with every budget excursion bounded to one control period and zero
// runtime-invariant violations under fatal enforcement.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"

namespace ps::fault {
namespace {

using std::chrono::milliseconds;

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/ps-brownout-" + tag + "-" + std::to_string(::getpid()) +
         suffix;
}

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;  // the default fixed seed; CI also runs 29 and 47
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

/// The standard four-job mix on its own 16-node cluster (job names sort
/// in construction order, so the daemon's name-ordered rounds match the
/// in-memory loop's job order).
struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

TEST(BrownoutTest, ScheduledBrownoutOverFaultsMatchesInMemoryReplay) {
  const std::uint64_t seed = scenario_seed();
  RecordProperty("ps_fault_seed", static_cast<int>(seed));
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";

  // Runtime invariants are fatal for the whole scenario — any Σcaps,
  // cap-bound, or epoch-monotonicity violation aborts the test.
  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  // 16 nodes at 152 W floor each: the 30% drop must stay above 2432 W
  // for the policies to keep fitting the budget.
  const double budget = 16.0 * 230.0;  // 3680 W
  const std::size_t iterations = 20;   // 10 before the crash, 10 after

  // The budget schedule: a drift down at epoch 1 (pre-crash), then the
  // 30% brownout at epoch 2 — adopted by the *restarted* daemon from the
  // same schedule, past the revision its snapshot already recorded.
  std::vector<core::BudgetRevision> schedule(2);
  schedule[0].epoch = 1;
  schedule[0].budget_watts = 0.9 * budget;  // 3312 W
  schedule[0].at_epoch = 1;
  schedule[1].epoch = 2;
  schedule[1].budget_watts = 0.7 * budget;  // 2576 W, the brownout
  schedule[1].at_epoch = 2;
  schedule[1].emergency = true;

  // Reference: the fault-free in-memory dynamic loop over an identical
  // mix and the identical schedule.
  Mix reference;
  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  core::BudgetTelemetry telemetry;
  const core::CoordinationResult expected = loop.run_dynamic(
      reference_jobs, iterations, {}, schedule, nullptr, &telemetry);

  // (b) Bounded time-to-safe on the reference trajectory: each budget
  // drop leaves the superseded caps programmed for at most one control
  // period; the RM step at that epoch's end reprograms under the new
  // budget and closes the excursion.
  EXPECT_EQ(telemetry.revisions_applied, 2u);
  EXPECT_GE(telemetry.excursion_epochs.size(), 1u);
  EXPECT_FALSE(telemetry.excursions.in_excursion);
  EXPECT_EQ(telemetry.excursions.excursions,
            telemetry.excursion_epochs.size());
  double longest_period = 0.0;
  for (const core::EpochRecord& record : expected.epochs) {
    longest_period = std::max(longest_period, record.elapsed_seconds);
  }
  std::printf(
      "measured time-to-safe: last %.6f s, max %.6f s "
      "(one control period <= %.6f s)\n",
      telemetry.excursions.last_time_to_safe_seconds,
      telemetry.excursions.max_time_to_safe_seconds, longest_period);
  EXPECT_GT(telemetry.excursions.max_time_to_safe_seconds, 0.0);
  EXPECT_LE(telemetry.excursions.max_time_to_safe_seconds,
            longest_period + 1e-9);
  EXPECT_EQ(telemetry.emergency_clamps, 0u);  // schedule stays above floors
  EXPECT_DOUBLE_EQ(telemetry.final_budget_watts, schedule[1].budget_watts);
  EXPECT_EQ(telemetry.final_budget_epoch, 2u);

  // Distributed mix: same schedule handed to the daemon, transports
  // running a seeded fault plan, crash-and-restart in the middle.
  Mix distributed;
  const std::string socket_path = unique_path("sock", ".sock");
  const std::string snapshot_path = unique_path("snap", ".snap");
  net::DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = distributed.cluster->node(0).tdp();
  options.uncappable_watts =
      distributed.cluster->node(0).params().dram_watts;
  options.min_jobs = distributed.jobs.size();
  options.tick_interval = milliseconds(20);
  options.snapshot_path = snapshot_path;
  options.budget_revisions = schedule;
  // Generous liveness windows: the scenario proves fault healing, not
  // eviction.
  options.reclaim_timeout = milliseconds(30'000);
  options.heartbeat_timeout = milliseconds(60'000);
  options.quarantine_errors = 100;

  FaultSpec spec;
  spec.seed = seed;
  spec.max_faults = 10;
  spec.drop_probability = 0.05;
  spec.partial_probability = 0.12;
  spec.corrupt_probability = 0.05;
  spec.duplicate_probability = 0.05;
  spec.delay_probability = 0.10;
  const FaultPlan parent(spec);
  std::vector<std::shared_ptr<FaultPlan>> plans;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    plans.push_back(std::make_shared<FaultPlan>(parent.fork(j + 1)));
  }

  net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);

  std::vector<std::unique_ptr<net::RuntimeClient>> clients;
  std::vector<std::unique_ptr<net::CoordinatedAgent>> agents;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    net::RuntimeClient::TransportConnector connector =
        [&socket_path, plan = plans[j]] {
          return make_faulty_transport(
              net::make_transport(net::connect_unix(socket_path)), plan);
        };
    clients.push_back(std::make_unique<net::RuntimeClient>(
        std::move(connector), client_options));
    agents.push_back(std::make_unique<net::CoordinatedAgent>(
        *distributed.jobs[j], *clients[j]));
  }

  const auto run_half = [&](net::PowerDaemon& daemon) {
    std::thread serving([&daemon] { daemon.run(); });
    std::vector<std::thread> workers;
    for (auto& agent : agents) {
      workers.emplace_back([&agent] {
        const net::AgentResult result = agent->run(10);
        EXPECT_EQ(result.iterations, 10u);
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    daemon.stop();
    serving.join();
  };

  auto daemon = std::make_unique<net::PowerDaemon>(options);
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  const net::DaemonStats before = daemon->stats();
  // The first half consumed sample sequences up to 2: exactly the
  // epoch-1 drift has been adopted when the crash hits.
  EXPECT_EQ(before.budget_revisions_applied, 1u);
  EXPECT_EQ(before.budget_epoch, 1u);
  EXPECT_DOUBLE_EQ(before.budget_watts, schedule[0].budget_watts);
  EXPECT_EQ(before.budget_violations, 0u);
  EXPECT_GT(before.snapshots_written, 0u);
  daemon.reset();  // crash: in-memory state is gone, the snapshot is not

  daemon = std::make_unique<net::PowerDaemon>(options);
  const net::DaemonStats restored = daemon->stats();
  EXPECT_EQ(restored.jobs_restored, distributed.jobs.size());
  // The snapshot restored the revised budget — not the configured one —
  // and the already-adopted schedule entry will not replay.
  EXPECT_EQ(restored.budget_epoch, 1u);
  EXPECT_DOUBLE_EQ(restored.budget_watts, schedule[0].budget_watts);
  daemon->listen_unix(socket_path);
  run_half(*daemon);
  const net::DaemonStats after = daemon->stats();
  EXPECT_EQ(after.budget_violations, 0u);
  EXPECT_EQ(after.budget_revisions_applied, 1u);  // only the brownout
  EXPECT_EQ(after.budget_revisions_stale, 0u);
  EXPECT_EQ(after.budget_epoch, 2u);
  EXPECT_DOUBLE_EQ(after.budget_watts, schedule[1].budget_watts);
  EXPECT_GE(after.budget_pushes, distributed.jobs.size());
  daemon.reset();
  std::remove(snapshot_path.c_str());
  std::remove(socket_path.c_str());

  // Every client heard the brownout push and rejected nothing it should
  // have applied.
  for (const auto& client : clients) {
    ASSERT_TRUE(client->last_budget().has_value());
    EXPECT_EQ(client->last_budget()->epoch, 2u);
    EXPECT_DOUBLE_EQ(client->last_budget()->budget_watts,
                     schedule[1].budget_watts);
  }

  // The scenario must actually have exercised the fault machinery.
  std::size_t injected = 0;
  for (const auto& plan : plans) {
    injected += plan->stats().injected();
  }
  EXPECT_GT(injected, 0u) << "fault plan never fired; scenario is vacuous";

  // (a) Watt-for-watt equality with the in-memory dynamic replay: the
  // budget trajectory, the faults, and the daemon crash all healed
  // without perturbing the final allocation by a single bit.
  double allocated = 0.0;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    for (std::size_t h = 0; h < distributed.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(distributed.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << "job " << distributed.jobs[j]->name() << " host " << h
          << " (seed " << seed << ")";
      allocated += distributed.jobs[j]->host_cap(h);
    }
  }
  // (b) on the socket path too: the final programmed power fits the
  // revised (brownout) budget with RAPL quantization slack only.
  EXPECT_LE(allocated, schedule[1].budget_watts + 0.5 * 16.0);

  // (c) Zero invariant violations across both paths, under fatal mode.
  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

}  // namespace
}  // namespace ps::fault
