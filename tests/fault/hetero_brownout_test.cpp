// Brownout on a heterogeneous (CPU+GPU) cluster: a GPU-heavy mix under
// HeteroAdaptive takes a 25% budget drop mid-run. The emergency clamp and
// the re-allocation must floor-preserve *per domain* — no package cap
// below the RAPL floor, no device cap below the GPU settable minimum —
// with runtime invariants fatal throughout.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "sim/cluster.hpp"

namespace ps::fault {
namespace {

kernel::WorkloadConfig gpu_heavy_config() {
  kernel::WorkloadConfig config;
  config.intensity = 4.0;
  config.gigabytes_per_iteration = 1.0;
  config.gpu_gigabytes_per_iteration = 60.0;
  config.gpu_intensity = 40.0;
  return config;
}

kernel::WorkloadConfig cpu_heavy_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  config.gpu_gigabytes_per_iteration = 4.0;
  return config;
}

struct HeteroMix {
  explicit HeteroMix(std::size_t hosts_per_job = 4) {
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * 2);
    std::vector<hw::NodeModel*> a;
    std::vector<hw::NodeModel*> b;
    for (std::size_t h = 0; h < hosts_per_job; ++h) {
      cluster->node(h).attach_gpu();
      cluster->node(h + hosts_per_job).attach_gpu();
      a.push_back(&cluster->node(h));
      b.push_back(&cluster->node(h + hosts_per_job));
    }
    jobs.push_back(std::make_unique<sim::JobSimulation>(
        "a-gpu-heavy", std::move(a), gpu_heavy_config()));
    jobs.push_back(std::make_unique<sim::JobSimulation>(
        "b-cpu-heavy", std::move(b), cpu_heavy_config()));
    ptrs = {jobs[0].get(), jobs[1].get()};
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
  std::vector<sim::JobSimulation*> ptrs;
};

TEST(HeteroBrownoutTest, BrownoutFloorPreservesBothDomains) {
  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  HeteroMix mix;
  const std::size_t hosts = 8;
  // Two-domain floor: 8 x (152 + 100) = 2016 W. Start with comfortable
  // headroom; the brownout squeezes to ~204 W above the floor, so both
  // domains stay servable and every epoch must keep fitting the budget.
  const double budget = hosts * 370.0;  // 2960 W
  std::vector<core::BudgetRevision> schedule(1);
  schedule[0].epoch = 1;
  schedule[0].budget_watts = 0.75 * budget;  // 2220 W, the brownout
  schedule[0].at_epoch = 2;
  schedule[0].emergency = true;

  core::CoordinationOptions options;
  options.policy = core::PolicyKind::kHeteroAdaptive;
  core::CoordinationLoop loop(budget, options);
  core::BudgetTelemetry telemetry;
  const core::CoordinationResult result = loop.run_dynamic(
      mix.ptrs, 30, {}, schedule, nullptr, &telemetry);

  EXPECT_EQ(telemetry.revisions_applied, 1u);
  EXPECT_DOUBLE_EQ(telemetry.final_budget_watts,
                   schedule[0].budget_watts);
  // The bounded excursion closed: the superseded caps ran for at most
  // one control period past the revision.
  EXPECT_FALSE(telemetry.excursions.in_excursion);
  EXPECT_EQ(telemetry.emergency_clamps, 0u);  // stays above the floors

  // Per-domain floor preservation after the squeeze: no package cap
  // below the RAPL floor, no device cap below the GPU minimum.
  double allocated = 0.0;
  std::size_t limits = 0;
  for (auto* job : mix.ptrs) {
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      EXPECT_GE(job->host_cap(h), job->host(h).min_cap() - 1e-9);
      allocated += job->host_cap(h);
      ++limits;
      if (job->host_has_gpu_phase(h)) {
        EXPECT_GE(job->host_gpu_cap(h), job->host_gpu_min_cap(h) - 1e-9);
        EXPECT_LE(job->host_gpu_cap(h), job->host_gpu_tdp(h) + 1e-9);
        allocated += job->host_gpu_cap(h);
        ++limits;
      }
    }
  }
  // Two-domain watt conservation against the revised budget (1/8 W
  // quantization slack per programmable limit).
  EXPECT_LE(allocated,
            schedule[0].budget_watts + 0.5 * static_cast<double>(limits));

  // The GPU-heavy job kept a meaningful device allocation through the
  // brownout — the squeeze did not collapse the second domain.
  EXPECT_GT(mix.ptrs[0]->host_gpu_cap(0),
            mix.ptrs[0]->host_gpu_min_cap(0));

  EXPECT_GT(result.total_gflop, 0.0);
  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

TEST(HeteroBrownoutTest, NodeFailureReclaimsBothDomains) {
  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  HeteroMix mix;
  // Tight budget (well below the mix's total demand, above the 2016 W
  // two-domain floor sum): every watt the dead host surrenders is taken
  // by a survivor, so the reclaim drives it exactly to the floors. With
  // surplus in the pool the weighted fill would park a few watts on the
  // dead host again — same contract as the single-domain reclaim tests.
  const double budget = 8.0 * 300.0;
  core::CoordinationOptions options;
  options.policy = core::PolicyKind::kHeteroAdaptive;
  core::CoordinationLoop loop(budget, options);

  sim::FailureEvent failure;
  failure.epoch = 2;
  failure.kind = sim::FailureKind::kNodeFailure;
  failure.job = 0;
  failure.host = 1;
  const std::vector<sim::FailureEvent> events = {failure};

  core::FailureTelemetry telemetry;
  static_cast<void>(
      loop.run_dynamic(mix.ptrs, 30, events, {}, &telemetry, nullptr));

  // The dead host was squeezed to the floor in *both* domains — watts
  // above either floor returned to the pool.
  ASSERT_EQ(telemetry.reclaims.size(), 1u);
  EXPECT_TRUE(telemetry.reclaims[0].reclaimed);
  EXPECT_NEAR(mix.ptrs[0]->host_cap(1),
              mix.ptrs[0]->host(1).min_cap(), 0.5);
  EXPECT_NEAR(mix.ptrs[0]->host_gpu_cap(1),
              mix.ptrs[0]->host_gpu_min_cap(1), 0.5);
  // The reclaim accounting covers the GPU watts too: more than the CPU
  // domain alone could surrender from its steady-state cap.
  EXPECT_GT(telemetry.reclaims[0].watts_reclaimed, 0.0);

  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

}  // namespace
}  // namespace ps::fault
