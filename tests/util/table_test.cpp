#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace ps::util {
namespace {

TEST(FormatFixedTest, RendersRequestedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table;
  table.add_column("name", Align::kLeft);
  table.add_column("value", Align::kRight, 1);
  table.begin_row();
  table.add_cell("alpha");
  table.add_number(1.25);
  table.begin_row();
  table.add_cell("b");
  table.add_number(10.0);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha  "), std::string::npos);
  EXPECT_NE(text.find("  1.2"), std::string::npos);
  EXPECT_NE(text.find(" 10.0"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(TextTableTest, PercentCellsUseColumnPrecision) {
  TextTable table;
  table.add_column("pct", Align::kRight, 1);
  table.begin_row();
  table.add_percent(0.0734);
  EXPECT_NE(table.to_string().find("7.3%"), std::string::npos);
}

TEST(TextTableTest, RejectsRowsBeforeColumns) {
  TextTable table;
  EXPECT_THROW(table.begin_row(), InvalidState);
}

TEST(TextTableTest, RejectsColumnsAfterRows) {
  TextTable table;
  table.add_column("a");
  table.begin_row();
  table.add_cell("1");
  EXPECT_THROW(table.add_column("b"), InvalidState);
}

TEST(TextTableTest, RejectsOverfullRow) {
  TextTable table;
  table.add_column("a");
  table.begin_row();
  table.add_cell("1");
  EXPECT_THROW(table.add_cell("2"), InvalidState);
}

TEST(TextTableTest, RejectsIncompleteRowOnPrint) {
  TextTable table;
  table.add_column("a");
  table.add_column("b");
  table.begin_row();
  table.add_cell("1");
  std::ostringstream out;
  EXPECT_THROW(table.print(out), InvalidState);
}

TEST(TextTableTest, RejectsNewRowWhilePreviousIncomplete) {
  TextTable table;
  table.add_column("a");
  table.add_column("b");
  table.begin_row();
  table.add_cell("1");
  EXPECT_THROW(table.begin_row(), InvalidState);
}

TEST(TextTableTest, CountsRowsAndColumns) {
  TextTable table;
  table.add_column("a");
  table.add_column("b");
  EXPECT_EQ(table.column_count(), 2u);
  table.begin_row();
  table.add_cell("1");
  table.add_cell("2");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(CsvWriterTest, WritesPlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, EmptyCellsPreserved) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"", "x", ""});
  EXPECT_EQ(out.str(), ",x,\n");
}

}  // namespace
}  // namespace ps::util
