#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ps::util {
namespace {

/// Redirects the logger to a local stream for the test's lifetime.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = Logger::level();
    Logger::set_stream(&captured_);
  }
  void TearDown() override {
    Logger::set_stream(nullptr);
    Logger::set_level(previous_level_);
  }

  std::ostringstream captured_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, MessagesBelowLevelAreSuppressed) {
  Logger::set_level(LogLevel::kWarn);
  log_info("test", "should not appear");
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LoggingTest, MessagesAtLevelAreEmitted) {
  Logger::set_level(LogLevel::kInfo);
  log_info("test", "value=", 42);
  const std::string text = captured_.str();
  EXPECT_NE(text.find("[INFO]"), std::string::npos);
  EXPECT_NE(text.find("test:"), std::string::npos);
  EXPECT_NE(text.find("value=42"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  log_error("test", "even errors");
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LoggingTest, ConcatenatesMixedTypes) {
  Logger::set_level(LogLevel::kDebug);
  log_debug("mod", "a=", 1, " b=", 2.5, " c=", "str");
  EXPECT_NE(captured_.str().find("a=1 b=2.5 c=str"), std::string::npos);
}

TEST_F(LoggingTest, WarnAndErrorCarryLevelTags) {
  Logger::set_level(LogLevel::kDebug);
  log_warn("m", "w");
  log_error("m", "e");
  const std::string text = captured_.str();
  EXPECT_NE(text.find("[WARN]"), std::string::npos);
  EXPECT_NE(text.find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace ps::util
