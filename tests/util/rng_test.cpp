#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ps::util {
namespace {

TEST(SplitMix64Test, ProducesKnownReferenceSequence) {
  // Reference values for seed 0 from the published SplitMix64 algorithm.
  SplitMix64 gen(0);
  EXPECT_EQ(gen.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(gen.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(gen.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng rng(13);
  EXPECT_THROW(static_cast<void>(rng.uniform(2.0, 1.0)), InvalidArgument);
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(17);
  std::array<int, 5> counts{};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_index(counts.size())];
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), draws / 5.0, draws * 0.01);
  }
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(17);
  EXPECT_THROW(static_cast<void>(rng.uniform_index(0)), InvalidArgument);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalScalesMeanAndSigma) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, NormalRejectsNegativeSigma) {
  Rng rng(23);
  EXPECT_THROW(static_cast<void>(rng.normal(0.0, -1.0)), InvalidArgument);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(std::span<int>(values));
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(31);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(std::span<int>(values));
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[static_cast<std::size_t>(i)] != i) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 50);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng parent1(37);
  Rng parent2(37);
  Rng child1 = parent1.fork(5);
  Rng child2 = parent2.fork(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.next(), child2.next());
  }
  Rng parent3(37);
  Rng other = parent3.fork(6);
  EXPECT_NE(parent1.fork(6).next(), child1.next());
  static_cast<void>(other);
}

TEST(GaussianMixtureTest, RespectsComponentMeans) {
  Rng rng(41);
  const std::vector<GaussianComponent> components = {
      {1.0, -5.0, 0.1}, {1.0, 5.0, 0.1}};
  const std::vector<double> samples =
      sample_gaussian_mixture(rng, components, 10000);
  ASSERT_EQ(samples.size(), 10000u);
  int low = 0;
  int high = 0;
  for (double s : samples) {
    if (s < 0.0) {
      ++low;
    } else {
      ++high;
    }
  }
  EXPECT_NEAR(low, high, 400);
}

TEST(GaussianMixtureTest, RejectsEmptyComponents) {
  Rng rng(43);
  EXPECT_THROW(
      static_cast<void>(sample_gaussian_mixture(rng, {}, 10)),
      InvalidArgument);
}

TEST(GaussianMixtureTest, RejectsNonPositiveWeight) {
  Rng rng(43);
  const std::vector<GaussianComponent> components = {{0.0, 0.0, 1.0}};
  EXPECT_THROW(
      static_cast<void>(sample_gaussian_mixture(rng, components, 10)),
      InvalidArgument);
}

}  // namespace
}  // namespace ps::util
