#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::util {
namespace {

TEST(RunningStatsTest, MeanOfKnownValues) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(RunningStatsTest, VarianceMatchesTextbook) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  // Population variance is 4; sample variance is 4 * 8/7.
  EXPECT_NEAR(stats.variance(), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MinMaxTracked) {
  RunningStats stats;
  for (double v : {3.0, -1.0, 7.0, 2.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
}

TEST(RunningStatsTest, EmptyAccessorsThrow) {
  const RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_THROW(static_cast<void>(stats.mean()), InvalidState);
  EXPECT_THROW(static_cast<void>(stats.min()), InvalidState);
  EXPECT_THROW(static_cast<void>(stats.max()), InvalidState);
}

TEST(RunningStatsTest, VarianceNeedsTwoSamples) {
  RunningStats stats;
  stats.add(1.0);
  EXPECT_THROW(static_cast<void>(stats.variance()), InvalidState);
}

TEST(RunningStatsTest, MergeMatchesBulkAccumulation) {
  Rng rng(3);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StatsTest, MedianOddAndEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(StatsTest, QuantileInterpolatesLinearly) {
  const std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 10.0);
}

TEST(StatsTest, QuantileRejectsOutOfRange) {
  const std::vector<double> values = {1.0};
  EXPECT_THROW(static_cast<void>(quantile(values, -0.1)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(quantile(values, 1.1)), InvalidArgument);
}

TEST(StatsTest, MeanOfEmptyThrows) {
  EXPECT_THROW(static_cast<void>(mean({})), InvalidArgument);
}

TEST(TCriticalTest, MatchesTableEntries) {
  EXPECT_NEAR(t_critical95(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical95(10), 2.228, 1e-9);
  EXPECT_NEAR(t_critical95(99), 1.984, 1e-9);
  EXPECT_NEAR(t_critical95(100000), 1.960, 1e-9);
}

TEST(TCriticalTest, InterpolatesBetweenEntries) {
  const double t11 = t_critical95(11);
  EXPECT_GT(t11, t_critical95(12));
  EXPECT_LT(t11, t_critical95(10));
}

TEST(TCriticalTest, MonotoneDecreasingInDof) {
  double previous = t_critical95(1);
  for (std::size_t dof : {2u, 5u, 20u, 60u, 120u, 500u, 2000u}) {
    const double current = t_critical95(dof);
    EXPECT_LT(current, previous) << "dof=" << dof;
    previous = current;
  }
}

TEST(ConfidenceIntervalTest, CoversTrueMeanOnGaussianData) {
  Rng rng(5);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> samples;
    for (int i = 0; i < 30; ++i) {
      samples.push_back(rng.normal(10.0, 3.0));
    }
    const ConfidenceInterval ci = confidence_interval95(samples);
    if (ci.lo() <= 10.0 && 10.0 <= ci.hi()) {
      ++covered;
    }
  }
  // 95% nominal coverage; allow generous slack for 200 trials.
  EXPECT_GE(covered, 180);
}

TEST(ConfidenceIntervalTest, WidthShrinksWithSampleSize) {
  Rng rng(7);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.normal(0.0, 1.0);
    if (i < 20) {
      small.push_back(v);
    }
    large.push_back(v);
  }
  EXPECT_GT(confidence_interval95(small).half_width,
            confidence_interval95(large).half_width);
}

TEST(BootstrapTest, AgreesWithTIntervalOnGaussianData) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(rng.normal(5.0, 1.0));
  }
  Rng boot_rng(13);
  const ConfidenceInterval boot = bootstrap_ci95(samples, boot_rng, 1000);
  const ConfidenceInterval t = confidence_interval95(samples);
  EXPECT_NEAR(boot.mean, t.mean, 0.05);
  EXPECT_NEAR(boot.half_width, t.half_width, 0.06);
}

TEST(BootstrapTest, DeterministicGivenRng) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  Rng rng1(17);
  Rng rng2(17);
  const ConfidenceInterval a = bootstrap_ci95(samples, rng1, 500);
  const ConfidenceInterval b = bootstrap_ci95(samples, rng2, 500);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.half_width, b.half_width);
}

TEST(PermutationTest, DetectsRealDifferences) {
  Rng data_rng(21);
  std::vector<double> shifted;
  for (int i = 0; i < 50; ++i) {
    shifted.push_back(data_rng.normal(0.5, 0.3));
  }
  Rng rng(23);
  EXPECT_LT(permutation_pvalue(shifted, rng), 0.01);
}

TEST(PermutationTest, NullDifferencesAreNotSignificant) {
  Rng data_rng(25);
  std::vector<double> centered;
  for (int i = 0; i < 50; ++i) {
    centered.push_back(data_rng.normal(0.0, 1.0));
  }
  Rng rng(27);
  EXPECT_GT(permutation_pvalue(centered, rng), 0.05);
}

TEST(PermutationTest, DegenerateAndInvalidInputs) {
  Rng rng(29);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_DOUBLE_EQ(permutation_pvalue(zeros, rng), 1.0);
  EXPECT_THROW(static_cast<void>(permutation_pvalue({}, rng)),
               InvalidArgument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(static_cast<void>(permutation_pvalue(one, rng, 0)),
               InvalidArgument);
}

TEST(PermutationTest, DeterministicGivenRng) {
  const std::vector<double> values = {0.1, 0.2, -0.05, 0.3, 0.15, 0.02};
  Rng rng1(31);
  Rng rng2(31);
  EXPECT_DOUBLE_EQ(permutation_pvalue(values, rng1),
                   permutation_pvalue(values, rng2));
}

TEST(HistogramTest, BinsValuesAndClampsOutliers) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);   // bin 0
  hist.add(9.5);   // bin 4
  hist.add(-3.0);  // clamped to bin 0
  hist.add(42.0);  // clamped to bin 4
  hist.add(5.0);   // bin 2
  EXPECT_EQ(hist.bins[0], 2u);
  EXPECT_EQ(hist.bins[2], 1u);
  EXPECT_EQ(hist.bins[4], 2u);
  EXPECT_EQ(hist.total(), 5u);
}

TEST(HistogramTest, BinCentersAreMidpoints) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(hist.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.bin_center(4), 9.0);
  EXPECT_THROW(static_cast<void>(hist.bin_center(5)), InvalidArgument);
}

TEST(HistogramTest, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace ps::util
