#include "util/kmeans.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::util {
namespace {

TEST(KMeansTest, SeparatedClustersRecovered) {
  std::vector<double> values;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    values.push_back(rng.normal(1.0, 0.05));
  }
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.normal(5.0, 0.05));
  }
  for (int i = 0; i < 50; ++i) {
    values.push_back(rng.normal(9.0, 0.05));
  }
  const KMeansResult result = kmeans_1d(values, 3);
  EXPECT_EQ(result.cluster_sizes[0], 100u);
  EXPECT_EQ(result.cluster_sizes[1], 200u);
  EXPECT_EQ(result.cluster_sizes[2], 50u);
  EXPECT_NEAR(result.centroids[0], 1.0, 0.05);
  EXPECT_NEAR(result.centroids[1], 5.0, 0.05);
  EXPECT_NEAR(result.centroids[2], 9.0, 0.05);
}

TEST(KMeansTest, CentroidsSortedAscending) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(rng.uniform(0.0, 100.0));
  }
  const KMeansResult result = kmeans_1d(values, 4);
  for (std::size_t c = 1; c < result.centroids.size(); ++c) {
    EXPECT_LT(result.centroids[c - 1], result.centroids[c]);
  }
}

TEST(KMeansTest, AssignmentsMatchNearestCentroid) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.uniform(0.0, 10.0));
  }
  const KMeansResult result = kmeans_1d(values, 3);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t assigned = result.assignments[i];
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      EXPECT_LE(std::abs(values[i] - result.centroids[assigned]),
                std::abs(values[i] - result.centroids[c]) + 1e-9);
    }
  }
}

TEST(KMeansTest, SingleClusterIsTheMean) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const KMeansResult result = kmeans_1d(values, 1);
  EXPECT_NEAR(result.centroids[0], 2.5, 1e-12);
  EXPECT_EQ(result.cluster_sizes[0], 4u);
}

TEST(KMeansTest, KEqualsNSeparatesEveryPoint) {
  const std::vector<double> values = {1.0, 5.0, 9.0};
  const KMeansResult result = kmeans_1d(values, 3);
  EXPECT_EQ(result.cluster_sizes[0], 1u);
  EXPECT_EQ(result.cluster_sizes[1], 1u);
  EXPECT_EQ(result.cluster_sizes[2], 1u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicAcrossCalls) {
  Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.uniform(0.0, 1.0));
  }
  const KMeansResult a = kmeans_1d(values, 3);
  const KMeansResult b = kmeans_1d(values, 3);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(rng.uniform(0.0, 10.0));
  }
  const double inertia2 = kmeans_1d(values, 2).inertia;
  const double inertia5 = kmeans_1d(values, 5).inertia;
  EXPECT_LT(inertia5, inertia2);
}

TEST(KMeansTest, RejectsInvalidArguments) {
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW(static_cast<void>(kmeans_1d(values, 0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(kmeans_1d(values, 3)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(kmeans_1d(values, 1, 0)), InvalidArgument);
}

TEST(KMeansTest, ClusterSizesSumToInputSize) {
  Rng rng(6);
  std::vector<double> values;
  for (int i = 0; i < 123; ++i) {
    values.push_back(rng.uniform(0.0, 1.0));
  }
  const KMeansResult result = kmeans_1d(values, 3);
  std::size_t total = 0;
  for (std::size_t size : result.cluster_sizes) {
    total += size;
  }
  EXPECT_EQ(total, values.size());
}

}  // namespace
}  // namespace ps::util
