#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::util {
namespace {

ArgParser make_parser() {
  ArgParser parser;
  parser.add_flag("--quick", "reduced scale")
      .add_option("--nodes", "100", "nodes per job")
      .add_option("--rate", "1.5", "arrivals per hour");
  return parser;
}

void parse(ArgParser& parser, std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, DefaultsApplyWhenUnset) {
  ArgParser parser = make_parser();
  parse(parser, {});
  EXPECT_FALSE(parser.flag("--quick"));
  EXPECT_EQ(parser.option("--nodes"), "100");
  EXPECT_DOUBLE_EQ(parser.option_double("--rate"), 1.5);
  EXPECT_EQ(parser.option_size("--nodes"), 100u);
}

TEST(ArgParserTest, ParsesFlagsAndValues) {
  ArgParser parser = make_parser();
  parse(parser, {"--quick", "--nodes", "12", "--rate", "0.25"});
  EXPECT_TRUE(parser.flag("--quick"));
  EXPECT_EQ(parser.option_size("--nodes"), 12u);
  EXPECT_DOUBLE_EQ(parser.option_double("--rate"), 0.25);
}

TEST(ArgParserTest, CollectsPositionalArguments) {
  ArgParser parser = make_parser();
  parse(parser, {"characterize", "--nodes", "4", "extra"});
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "characterize");
  EXPECT_EQ(parser.positional()[1], "extra");
}

TEST(ArgParserTest, UnknownOptionRejected) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--bogus"}), ps::InvalidArgument);
}

TEST(ArgParserTest, MissingValueRejected) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--nodes"}), ps::InvalidArgument);
}

TEST(ArgParserTest, TypeMismatchesRejected) {
  ArgParser parser = make_parser();
  parse(parser, {"--nodes", "many"});
  EXPECT_THROW(static_cast<void>(parser.option_size("--nodes")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parser.option("--quick")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parser.flag("--nodes")),
               ps::InvalidArgument);
}

TEST(ArgParserTest, ReparseResetsState) {
  ArgParser parser = make_parser();
  parse(parser, {"--quick", "--nodes", "8"});
  parse(parser, {});
  EXPECT_FALSE(parser.flag("--quick"));
  EXPECT_EQ(parser.option_size("--nodes"), 100u);
  EXPECT_TRUE(parser.positional().empty());
}

TEST(ArgParserTest, ProvidedDistinguishesExplicitFromDefault) {
  ArgParser parser = make_parser();
  parse(parser, {"--nodes", "100"});
  // Explicitly passing the default value still counts as provided.
  EXPECT_TRUE(parser.provided("--nodes"));
  EXPECT_FALSE(parser.provided("--rate"));
  EXPECT_THROW(static_cast<void>(parser.provided("--bogus")),
               ps::InvalidArgument);
  parse(parser, {});
  EXPECT_FALSE(parser.provided("--nodes"));
}

TEST(ArgParserTest, DuplicateDeclarationRejected) {
  ArgParser parser;
  parser.add_flag("--x", "");
  EXPECT_THROW(parser.add_option("--x", "1", ""), ps::InvalidArgument);
  EXPECT_THROW(parser.add_flag("no-dashes", ""), ps::InvalidArgument);
}

TEST(ArgParserTest, HelpListsEveryOption) {
  const ArgParser parser = make_parser();
  const std::string help = parser.help();
  EXPECT_NE(help.find("--quick"), std::string::npos);
  EXPECT_NE(help.find("--nodes <value=100>"), std::string::npos);
  EXPECT_NE(help.find("arrivals per hour"), std::string::npos);
}

}  // namespace
}  // namespace ps::util
