#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ps {
namespace {

TEST(ErrorTest, RequireThrowsWithContext) {
  try {
    PS_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "PS_REQUIRE did not throw";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, RequirePassesSilently) {
  EXPECT_NO_THROW(PS_REQUIRE(true, "fine"));
}

TEST(ErrorTest, CheckStateThrowsInvalidState) {
  EXPECT_THROW(PS_CHECK_STATE(false, "bad state"), InvalidState);
  EXPECT_NO_THROW(PS_CHECK_STATE(true, "ok"));
}

TEST(ErrorTest, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw InvalidArgument("x"); }, Error);
  EXPECT_THROW(
      { throw InvalidState("x"); }, Error);
  EXPECT_THROW(
      { throw NotFound("x"); }, Error);
}

TEST(ErrorTest, ErrorIsARuntimeError) {
  EXPECT_THROW(
      { throw NotFound("missing"); }, std::runtime_error);
}

}  // namespace
}  // namespace ps
