#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ps::util {
namespace {

TEST(SplitTest, SplitsOnDelimiter) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto fields = split(",x,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(JoinTest, JoinsWithSeparator) {
  const std::vector<std::string> pieces = {"a", "b", "c"};
  EXPECT_EQ(join(pieces, ", "), "a, b, c");
}

TEST(JoinTest, EmptyInputYieldsEmptyString) {
  EXPECT_EQ(join({}, ","), "");
}

TEST(TrimTest, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWithTest, ChecksPrefixes) {
  EXPECT_TRUE(starts_with("powerstack", "power"));
  EXPECT_FALSE(starts_with("power", "powerstack"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(IEqualsTest, CaseInsensitiveComparison) {
  EXPECT_TRUE(iequals("MixedAdaptive", "mixedadaptive"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(FormatWattsTest, PicksSiPrefix) {
  EXPECT_EQ(format_watts(214.0), "214.0 W");
  EXPECT_EQ(format_watts(167000.0), "167.0 kW");
  EXPECT_EQ(format_watts(1350000.0, 2), "1.35 MW");
}

TEST(FormatSecondsTest, PicksUnit) {
  EXPECT_EQ(format_seconds(1.5), "1.50 s");
  EXPECT_EQ(format_seconds(0.0123), "12.30 ms");
  EXPECT_EQ(format_seconds(0.0), "0.00 s");
}

}  // namespace
}  // namespace ps::util
