#include "kernel/arithmetic_kernel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::kernel {
namespace {

KernelOptions small_options() {
  KernelOptions options;
  options.threads = 2;
  options.elements_per_thread = 1 << 12;
  options.iterations = 3;
  options.config.intensity = 1.0;
  return options;
}

TEST(FmaPerElementTest, MatchesIntensityDefinition) {
  // 16 bytes moved per element, 2 FLOPs per FMA: FLOPs/byte = fma / 8.
  EXPECT_DOUBLE_EQ(fma_per_element(1.0), 8.0);
  EXPECT_DOUBLE_EQ(fma_per_element(0.25), 2.0);
  EXPECT_DOUBLE_EQ(fma_per_element(0.0), 0.0);
}

TEST(ArithmeticKernelTest, RunsAndReportsWork) {
  const KernelReport report = run_arithmetic_kernel(small_options());
  EXPECT_GT(report.elapsed_seconds, 0.0);
  EXPECT_GT(report.total_gflop, 0.0);
  EXPECT_GT(report.achieved_gflops, 0.0);
  EXPECT_EQ(report.threads.size(), 2u);
  EXPECT_EQ(report.iterations, 3u);
}

TEST(ArithmeticKernelTest, GflopMatchesConfiguredIntensity) {
  KernelOptions options = small_options();
  options.config.intensity = 2.0;
  const KernelReport report = run_arithmetic_kernel(options);
  // Every thread sweeps elements once per iteration: flops =
  // fma/elem * 2 * elements * iterations * threads.
  const double expected = fma_per_element(2.0) * 2.0 *
                          static_cast<double>(options.elements_per_thread) *
                          3.0 * 2.0 / 1e9;
  EXPECT_NEAR(report.total_gflop, expected, expected * 1e-9);
}

TEST(ArithmeticKernelTest, ZeroIntensityDoesNoFlops) {
  KernelOptions options = small_options();
  options.config.intensity = 0.0;
  const KernelReport report = run_arithmetic_kernel(options);
  EXPECT_DOUBLE_EQ(report.total_gflop, 0.0);
  EXPECT_GT(report.total_gigabytes, 0.0);
}

TEST(ArithmeticKernelTest, WaitingRanksAreMarked) {
  KernelOptions options = small_options();
  options.threads = 4;
  options.config.waiting_fraction = 0.5;
  options.config.imbalance = 3.0;
  const KernelReport report = run_arithmetic_kernel(options);
  int waiting = 0;
  for (const auto& thread : report.threads) {
    if (thread.waiting_rank) {
      ++waiting;
    }
  }
  EXPECT_EQ(waiting, 2);
}

TEST(ArithmeticKernelTest, WaitingRanksDoLessWorkAndWaitMore) {
  KernelOptions options = small_options();
  options.threads = 4;
  options.iterations = 20;
  options.elements_per_thread = 1 << 14;
  options.config.waiting_fraction = 0.5;
  options.config.imbalance = 3.0;
  const KernelReport report = run_arithmetic_kernel(options);
  double waiting_gflop = 0.0;
  double critical_gflop = 0.0;
  double waiting_wait = 0.0;
  double critical_wait = 0.0;
  for (const auto& thread : report.threads) {
    if (thread.waiting_rank) {
      waiting_gflop += thread.gflop;
      waiting_wait += thread.wait_seconds;
    } else {
      critical_gflop += thread.gflop;
      critical_wait += thread.wait_seconds;
    }
  }
  EXPECT_NEAR(critical_gflop, 3.0 * waiting_gflop, waiting_gflop * 0.01);
  // With 3x imbalance, waiting ranks spend far longer at the barrier;
  // allow scheduler-noise slack when the test host is oversubscribed.
  EXPECT_GT(waiting_wait, critical_wait * 0.8);
}

TEST(ArithmeticKernelTest, SlackFractionPositiveWithImbalance) {
  KernelOptions options = small_options();
  options.threads = 4;
  options.iterations = 10;
  options.elements_per_thread = 1 << 14;
  options.config.waiting_fraction = 0.5;
  options.config.imbalance = 3.0;
  const KernelReport report = run_arithmetic_kernel(options);
  EXPECT_GT(report.waiting_slack_fraction(), 0.05);
}

TEST(ArithmeticKernelTest, SlackFractionZeroWhenBalanced) {
  const KernelReport report = run_arithmetic_kernel(small_options());
  EXPECT_DOUBLE_EQ(report.waiting_slack_fraction(), 0.0);
}

TEST(ArithmeticKernelTest, AllVectorWidthsRun) {
  for (hw::VectorWidth width :
       {hw::VectorWidth::kScalar, hw::VectorWidth::kXmm128,
        hw::VectorWidth::kYmm256}) {
    KernelOptions options = small_options();
    options.config.vector_width = width;
    const KernelReport report = run_arithmetic_kernel(options);
    EXPECT_GT(report.total_gflop, 0.0) << hw::to_string(width);
  }
}

TEST(ArithmeticKernelTest, FractionalIntensityHandled) {
  KernelOptions options = small_options();
  options.config.intensity = 0.25;  // 2 FMA per element
  const KernelReport report = run_arithmetic_kernel(options);
  const double expected = 2.0 * 2.0 *
                          static_cast<double>(options.elements_per_thread) *
                          3.0 * 2.0 / 1e9;
  EXPECT_NEAR(report.total_gflop, expected, expected * 0.01);
}

TEST(ArithmeticKernelTest, AtLeastOneCriticalRankRemains) {
  KernelOptions options = small_options();
  options.threads = 4;
  options.config.waiting_fraction = 0.99;
  options.config.imbalance = 2.0;
  const KernelReport report = run_arithmetic_kernel(options);
  int critical = 0;
  for (const auto& thread : report.threads) {
    if (!thread.waiting_rank) {
      ++critical;
    }
  }
  EXPECT_GE(critical, 1);
}

TEST(ArithmeticKernelTest, InvalidOptionsRejected) {
  KernelOptions options = small_options();
  options.threads = 0;
  EXPECT_THROW(static_cast<void>(run_arithmetic_kernel(options)),
               ps::InvalidArgument);
  options = small_options();
  options.iterations = 0;
  EXPECT_THROW(static_cast<void>(run_arithmetic_kernel(options)),
               ps::InvalidArgument);
  options = small_options();
  options.elements_per_thread = 4;
  EXPECT_THROW(static_cast<void>(run_arithmetic_kernel(options)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::kernel
