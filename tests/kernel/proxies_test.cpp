#include "kernel/proxies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hw/node.hpp"
#include "util/error.hpp"

namespace ps::kernel {
namespace {

TEST(ProxiesTest, CatalogueIsValidAndUniquelyNamed) {
  std::set<std::string_view> names;
  for (const WorkloadProxy& proxy : workload_proxies()) {
    EXPECT_NO_THROW(proxy.config.validate()) << proxy.name;
    EXPECT_FALSE(proxy.stands_for.empty()) << proxy.name;
    EXPECT_TRUE(names.insert(proxy.name).second)
        << "duplicate proxy " << proxy.name;
  }
  EXPECT_GE(workload_proxies().size(), 6u);
}

TEST(ProxiesTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(proxy_by_name("STREAM").name, "stream");
  EXPECT_EQ(proxy_by_name("dgemm").stands_for, "HPL / DGEMM");
  EXPECT_THROW(static_cast<void>(proxy_by_name("lulesh")), ps::NotFound);
}

TEST(ProxiesTest, StreamIsMemoryBoundDgemmIsComputeBound) {
  const hw::NodeModel node(0, 1.0);
  const auto profile = [&](std::string_view name) {
    const WorkloadConfig& config = proxy_by_name(name).config;
    return node.preview_compute(1.0, config.intensity,
                                config.vector_width, node.tdp());
  };
  const hw::PhaseResult stream = profile("stream");
  EXPECT_DOUBLE_EQ(stream.mem_utilization, 1.0);
  EXPECT_LT(stream.cpu_utilization, 0.2);
  const hw::PhaseResult dgemm = profile("dgemm");
  EXPECT_DOUBLE_EQ(dgemm.cpu_utilization, 1.0);
  EXPECT_LT(dgemm.mem_utilization, 0.5);
}

TEST(ProxiesTest, GraphHasTheMostHarvestableSlack) {
  // The graph proxy (heavy imbalance + waiting) must have the largest
  // gap between waiting-host and critical-host demand.
  const WorkloadConfig& graph = proxy_by_name("graph").config;
  EXPECT_GE(graph.waiting_fraction, 0.5);
  EXPECT_GE(graph.imbalance, 3.0);
  const WorkloadConfig& stream = proxy_by_name("stream").config;
  EXPECT_DOUBLE_EQ(stream.waiting_fraction, 0.0);
}

TEST(ProxiesTest, StencilSitsNearTheRidge) {
  const hw::NodeModel node(0, 1.0);
  const double ridge = node.roofline().ridge_intensity(
      hw::VectorWidth::kYmm256, 2.6);
  const WorkloadConfig& stencil = proxy_by_name("stencil").config;
  EXPECT_GT(stencil.intensity, ridge * 0.5);
  EXPECT_LT(stencil.intensity, ridge * 2.0);
}

}  // namespace
}  // namespace ps::kernel
