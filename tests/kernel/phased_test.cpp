#include "kernel/phased.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::kernel {
namespace {

PhasedWorkload two_phase() {
  PhasedWorkload workload;
  workload.name = "two";
  WorkloadPhase a;
  a.config.intensity = 0.25;
  a.iterations = 3;
  WorkloadPhase b;
  b.config.intensity = 16.0;
  b.iterations = 2;
  workload.phases = {a, b};
  return workload;
}

TEST(PhasedWorkloadTest, TotalIterationsSumsPhases) {
  EXPECT_EQ(two_phase().total_iterations(), 5u);
}

TEST(PhasedWorkloadTest, PhaseAtWalksTheSchedule) {
  const PhasedWorkload workload = two_phase();
  EXPECT_DOUBLE_EQ(workload.phase_at(0).config.intensity, 0.25);
  EXPECT_DOUBLE_EQ(workload.phase_at(2).config.intensity, 0.25);
  EXPECT_DOUBLE_EQ(workload.phase_at(3).config.intensity, 16.0);
  EXPECT_DOUBLE_EQ(workload.phase_at(4).config.intensity, 16.0);
}

TEST(PhasedWorkloadTest, PhaseAtWrapsAround) {
  const PhasedWorkload workload = two_phase();
  EXPECT_DOUBLE_EQ(workload.phase_at(5).config.intensity, 0.25);
  EXPECT_DOUBLE_EQ(workload.phase_at(8).config.intensity, 16.0);
  EXPECT_DOUBLE_EQ(workload.phase_at(100).config.intensity, 0.25);
}

TEST(PhasedWorkloadTest, ValidationCatchesBadPhases) {
  PhasedWorkload empty;
  EXPECT_THROW(empty.validate(), ps::InvalidArgument);
  PhasedWorkload zero = two_phase();
  zero.phases[1].iterations = 0;
  EXPECT_THROW(zero.validate(), ps::InvalidArgument);
  PhasedWorkload bad_config = two_phase();
  bad_config.phases[0].config.imbalance = 0.0;
  EXPECT_THROW(bad_config.validate(), ps::InvalidArgument);
}

TEST(PhasedWorkloadTest, ExampleIsValidAndTwoPhased) {
  const PhasedWorkload example = PhasedWorkload::example();
  EXPECT_NO_THROW(example.validate());
  EXPECT_EQ(example.phases.size(), 2u);
  EXPECT_LT(example.phases[0].config.intensity,
            example.phases[1].config.intensity);
}

}  // namespace
}  // namespace ps::kernel
