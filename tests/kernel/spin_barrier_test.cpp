#include "kernel/spin_barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace ps::kernel {
namespace {

TEST(SpinBarrierTest, SingleParticipantNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 100; ++i) {
    barrier.arrive_and_wait();
  }
  SUCCEED();
}

TEST(SpinBarrierTest, RejectsZeroParticipants) {
  EXPECT_THROW(SpinBarrier(0), ps::InvalidArgument);
}

TEST(SpinBarrierTest, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kIterations = 200;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread of this phase has incremented.
        if (phase_counter.load() < (i + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(phase_counter.load(), kIterations * static_cast<int>(kThreads));
}

TEST(SpinBarrierTest, ReusableAcrossManyGenerations) {
  constexpr std::size_t kThreads = 2;
  SpinBarrier barrier(kThreads);
  std::atomic<int> total{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        barrier.arrive_and_wait();
      }
      total.fetch_add(1);
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(total.load(), 2);
}

TEST(SpinBarrierTest, ReportsParticipantCount) {
  SpinBarrier barrier(7);
  EXPECT_EQ(barrier.participants(), 7u);
}

}  // namespace
}  // namespace ps::kernel
