#include "kernel/workload.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::kernel {
namespace {

TEST(WorkloadTest, DefaultConfigIsValid) {
  const WorkloadConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(WorkloadTest, NameEncodesAllFields) {
  WorkloadConfig config;
  config.intensity = 8.0;
  config.vector_width = hw::VectorWidth::kYmm256;
  config.waiting_fraction = 0.5;
  config.imbalance = 2.0;
  EXPECT_EQ(config.name(), "ymm-i8-w50-x2");
}

TEST(WorkloadTest, NameRendersFractionalIntensity) {
  WorkloadConfig config;
  config.intensity = 0.25;
  config.vector_width = hw::VectorWidth::kXmm128;
  EXPECT_EQ(config.name(), "xmm-i0.25-w0-x1");
}

TEST(WorkloadTest, DescriptionMatchesTableTwoWording) {
  WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.75;
  config.imbalance = 3.0;
  EXPECT_EQ(config.description(),
            "16 FLOPs/byte, 75% waiting ranks, 3x imbalance, ymm");
  WorkloadConfig balanced;
  balanced.intensity = 32.0;
  EXPECT_EQ(balanced.description(), "32 FLOPs/byte, no waiting ranks, ymm");
}

TEST(WorkloadTest, CriticalGigabytesScalesWithImbalance) {
  WorkloadConfig config;
  config.gigabytes_per_iteration = 2.0;
  config.imbalance = 3.0;
  config.waiting_fraction = 0.5;
  EXPECT_DOUBLE_EQ(critical_gigabytes(config), 6.0);
}

TEST(WorkloadTest, InvalidFieldsRejected) {
  WorkloadConfig config;
  config.intensity = -1.0;
  EXPECT_THROW(config.validate(), ps::InvalidArgument);
  config = {};
  config.waiting_fraction = 1.0;
  EXPECT_THROW(config.validate(), ps::InvalidArgument);
  config = {};
  config.imbalance = 0.5;
  EXPECT_THROW(config.validate(), ps::InvalidArgument);
  config = {};
  config.gigabytes_per_iteration = 0.0;
  EXPECT_THROW(config.validate(), ps::InvalidArgument);
}

TEST(WorkloadTest, EqualityComparesAllFields) {
  WorkloadConfig a;
  WorkloadConfig b;
  EXPECT_EQ(a, b);
  b.intensity = 2.0;
  EXPECT_NE(a, b);
}

TEST(ParseWorkloadTest, RoundTripsNames) {
  const WorkloadConfig configs[] = {
      [] {
        WorkloadConfig c;
        c.intensity = 8.0;
        c.waiting_fraction = 0.5;
        c.imbalance = 2.0;
        return c;
      }(),
      [] {
        WorkloadConfig c;
        c.intensity = 0.25;
        c.vector_width = hw::VectorWidth::kXmm128;
        return c;
      }(),
      [] {
        WorkloadConfig c;
        c.intensity = 0.0;
        c.vector_width = hw::VectorWidth::kScalar;
        return c;
      }(),
  };
  for (const WorkloadConfig& config : configs) {
    const WorkloadConfig parsed = parse_workload(config.name());
    EXPECT_EQ(parsed, config) << config.name();
  }
}

TEST(ParseWorkloadTest, ParsesExplicitName) {
  const WorkloadConfig config = parse_workload("ymm-i16-w75-x3");
  EXPECT_DOUBLE_EQ(config.intensity, 16.0);
  EXPECT_DOUBLE_EQ(config.waiting_fraction, 0.75);
  EXPECT_DOUBLE_EQ(config.imbalance, 3.0);
  EXPECT_EQ(config.vector_width, hw::VectorWidth::kYmm256);
}

TEST(ParseWorkloadTest, RejectsMalformedNames) {
  EXPECT_THROW(static_cast<void>(parse_workload("")), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_workload("ymm-i8-w50")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_workload("zmm-i8-w50-x2")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_workload("ymm-8-w50-x2")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_workload("ymm-iq-w50-x2")),
               ps::InvalidArgument);
  // Validation still applies: waiting fraction must stay below 1.
  EXPECT_THROW(static_cast<void>(parse_workload("ymm-i8-w100-x2")),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::kernel
