#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "hw/quartz_spec.hpp"
#include "util/error.hpp"
#include "util/kmeans.hpp"
#include "util/rng.hpp"

namespace ps::sim {
namespace {

TEST(ClusterTest, HomogeneousClusterHasUnitEta) {
  Cluster cluster(10);
  EXPECT_EQ(cluster.size(), 10u);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_DOUBLE_EQ(cluster.node(i).eta(), 1.0);
    EXPECT_EQ(cluster.node(i).id(), static_cast<hw::NodeId>(i));
  }
}

TEST(ClusterTest, VariationClusterMatchesModelSize) {
  util::Rng rng(1);
  Cluster cluster(hw::VariationModel::quartz_default(), rng);
  EXPECT_EQ(cluster.size(), 2000u);
}

TEST(ClusterTest, NodeIndexOutOfRangeThrows) {
  Cluster cluster(3);
  EXPECT_THROW(static_cast<void>(cluster.node(3)), ps::InvalidArgument);
}

TEST(ClusterTest, Fig6FrequenciesFormThreeClusters) {
  util::Rng rng(7);
  Cluster cluster(hw::VariationModel::quartz_default(), rng);
  const double cap =
      2.0 * 70.0 + hw::QuartzSpec::kDramPowerPerNodeW;
  const std::vector<double> frequencies = cluster.achieved_frequencies(cap);
  const util::KMeansResult bins = util::kmeans_1d(frequencies, 3);
  // Paper Fig. 6: 522 / 918 / 560 nodes at ~1.65 / 1.80 / 1.95 GHz.
  EXPECT_NEAR(static_cast<double>(bins.cluster_sizes[0]), 522.0, 30.0);
  EXPECT_NEAR(static_cast<double>(bins.cluster_sizes[1]), 918.0, 40.0);
  EXPECT_NEAR(static_cast<double>(bins.cluster_sizes[2]), 560.0, 30.0);
  EXPECT_NEAR(bins.centroids[0], 1.65, 0.05);
  EXPECT_NEAR(bins.centroids[1], 1.80, 0.05);
  EXPECT_NEAR(bins.centroids[2], 1.95, 0.05);
}

TEST(ClusterTest, MediumClusterMembersAreMediumEta) {
  util::Rng rng(7);
  Cluster cluster(hw::VariationModel::quartz_default(), rng);
  const double cap = 2.0 * 70.0 + hw::QuartzSpec::kDramPowerPerNodeW;
  const std::vector<std::size_t> medium =
      cluster.frequency_cluster_members(cap, 3, 1);
  EXPECT_NEAR(static_cast<double>(medium.size()), 918.0, 40.0);
  for (std::size_t index : medium) {
    EXPECT_NEAR(cluster.node(index).eta(), 1.004, 0.1);
  }
}

TEST(ClusterTest, ClusterSelectorValidated) {
  Cluster cluster(10);
  EXPECT_THROW(
      static_cast<void>(cluster.frequency_cluster_members(200.0, 3, 3)),
      ps::InvalidArgument);
}

TEST(ClusterTest, UncapAllRestoresTdp) {
  Cluster cluster(4);
  cluster.node(0).set_power_cap(170.0);
  cluster.node(3).set_power_cap(180.0);
  cluster.uncap_all();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_DOUBLE_EQ(cluster.node(i).power_cap(), cluster.node(i).tdp());
  }
}

TEST(ClusterTest, ZeroNodesRejected) {
  EXPECT_THROW(Cluster(0), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::sim
