// Edge behavior of the facility trace: the partial-day moving-average
// window, degenerate fraction_above thresholds, and determinism of the
// generator under forked RNG streams.
#include <gtest/gtest.h>

#include "sim/facility_trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::sim {
namespace {

FacilityTrace short_trace(std::uint64_t seed) {
  FacilityTraceParams params;
  params.days = 3;
  params.samples_per_day = 8;
  util::Rng rng(seed);
  return generate_facility_trace(params, rng);
}

TEST(FacilityTraceEdgeTest, PartialDayMovingAverageUsesShortWindow) {
  const FacilityTrace trace = short_trace(3);
  const std::size_t day = trace.params.samples_per_day;
  // Before one full day of samples the window is everything seen so far.
  EXPECT_DOUBLE_EQ(trace.moving_average_mw[0], trace.instantaneous_mw[0]);
  for (std::size_t s = 1; s < day; ++s) {
    double sum = 0.0;
    for (std::size_t i = 0; i <= s; ++i) {
      sum += trace.instantaneous_mw[i];
    }
    EXPECT_NEAR(trace.moving_average_mw[s],
                sum / static_cast<double>(s + 1), 1e-12)
        << "sample " << s;
  }
}

TEST(FacilityTraceEdgeTest, FullWindowIsExactlyTheTrailingDay) {
  const FacilityTrace trace = short_trace(5);
  const std::size_t day = trace.params.samples_per_day;
  for (std::size_t s = day; s < trace.instantaneous_mw.size(); ++s) {
    double sum = 0.0;
    for (std::size_t i = s + 1 - day; i <= s; ++i) {
      sum += trace.instantaneous_mw[i];
    }
    EXPECT_NEAR(trace.moving_average_mw[s],
                sum / static_cast<double>(day), 1e-12)
        << "sample " << s;
  }
}

TEST(FacilityTraceEdgeTest, FractionAboveDegenerateThresholds) {
  const FacilityTrace trace = short_trace(7);
  // Every sample lives in [floor, rating]; thresholds outside that band
  // are all-or-nothing.
  EXPECT_DOUBLE_EQ(trace.fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.fraction_above(trace.params.floor_mw - 1e-9),
                   1.0);
  EXPECT_DOUBLE_EQ(trace.fraction_above(trace.params.peak_rating_mw), 0.0);
  // Strictly-above semantics: the peak itself does not count.
  EXPECT_DOUBLE_EQ(trace.fraction_above(trace.peak_mw()), 0.0);
  EXPECT_GT(trace.fraction_above(trace.peak_mw() - 1e-12), 0.0);
}

TEST(FacilityTraceEdgeTest, EmptyTraceFractionAboveThrows) {
  const FacilityTrace empty;
  EXPECT_THROW(static_cast<void>(empty.fraction_above(0.5)), InvalidState);
}

TEST(FacilityTraceEdgeTest, DeterministicAcrossForkedStreams) {
  // Two children forked with the same label see identical streams even
  // after the parents diverge — the property the sweep executor and the
  // budget-signal builders rely on to replay a scenario.
  util::Rng parent_a(99);
  util::Rng parent_b(99);
  static_cast<void>(parent_b.next());  // parents out of phase
  util::Rng child_a = parent_a.fork(17);
  util::Rng child_b = parent_a.fork(17);
  FacilityTraceParams params;
  params.days = 2;
  const FacilityTrace first = generate_facility_trace(params, child_a);
  const FacilityTrace second = generate_facility_trace(params, child_b);
  ASSERT_EQ(first.instantaneous_mw.size(), second.instantaneous_mw.size());
  for (std::size_t s = 0; s < first.instantaneous_mw.size(); ++s) {
    EXPECT_DOUBLE_EQ(first.instantaneous_mw[s], second.instantaneous_mw[s]);
  }
  // A different label is a genuinely different stream.
  util::Rng other = parent_a.fork(18);
  const FacilityTrace third = generate_facility_trace(params, other);
  bool any_difference = false;
  for (std::size_t s = 0; s < first.instantaneous_mw.size(); ++s) {
    any_difference = any_difference ||
                     first.instantaneous_mw[s] != third.instantaneous_mw[s];
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ps::sim
