#include "sim/job_sim.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::sim {
namespace {

std::vector<hw::NodeModel*> hosts_of(Cluster& cluster, std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

kernel::WorkloadConfig imbalanced_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 2.0;
  return config;
}

TEST(JobSimTest, WaitingHostCountRoundsFraction) {
  Cluster cluster(10);
  JobSimulation job("j", hosts_of(cluster, 10), imbalanced_config());
  EXPECT_EQ(job.waiting_host_count(), 5u);
  EXPECT_TRUE(job.is_waiting_host(0));
  EXPECT_TRUE(job.is_waiting_host(4));
  EXPECT_FALSE(job.is_waiting_host(5));
}

TEST(JobSimTest, BalancedJobHasNoWaitingHosts) {
  Cluster cluster(4);
  JobSimulation job("j", hosts_of(cluster, 4), kernel::WorkloadConfig{});
  EXPECT_EQ(job.waiting_host_count(), 0u);
}

TEST(JobSimTest, AlwaysKeepsOneCriticalHost) {
  Cluster cluster(4);
  kernel::WorkloadConfig config;
  config.waiting_fraction = 0.99;
  config.imbalance = 2.0;
  JobSimulation job("j", hosts_of(cluster, 4), config);
  EXPECT_LT(job.waiting_host_count(), 4u);
}

TEST(JobSimTest, HostGigabytesReflectRole) {
  Cluster cluster(4);
  kernel::WorkloadConfig config = imbalanced_config();
  config.gigabytes_per_iteration = 2.0;
  JobSimulation job("j", hosts_of(cluster, 4), config);
  EXPECT_DOUBLE_EQ(job.host_gigabytes(0), 2.0);  // waiting
  EXPECT_DOUBLE_EQ(job.host_gigabytes(3), 4.0);  // critical (2x)
}

TEST(JobSimTest, IterationTimeSetByCriticalPath) {
  Cluster cluster(4);
  JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  const IterationResult result = job.run_iteration();
  EXPECT_FALSE(result.hosts[result.critical_host_index].waiting_host);
  for (const auto& host : result.hosts) {
    EXPECT_LE(host.busy_seconds, result.iteration_seconds + 1e-12);
    EXPECT_NEAR(host.busy_seconds + host.poll_seconds,
                result.iteration_seconds, 1e-12);
  }
}

TEST(JobSimTest, WaitingHostsPollHalfTheIteration) {
  Cluster cluster(4);
  JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  const IterationResult result = job.run_iteration();
  for (std::size_t i = 0; i < 4; ++i) {
    if (result.hosts[i].waiting_host) {
      // Critical path does 2x the work, so waiting hosts poll ~half.
      EXPECT_NEAR(result.hosts[i].poll_seconds / result.iteration_seconds,
                  0.5, 0.05);
    }
  }
}

TEST(JobSimTest, EnergyAggregatesAcrossHosts) {
  Cluster cluster(3);
  JobSimulation job("j", hosts_of(cluster, 3), kernel::WorkloadConfig{});
  const IterationResult result = job.run_iteration();
  double expected = 0.0;
  for (const auto& host : result.hosts) {
    expected += host.energy_joules;
  }
  EXPECT_NEAR(result.total_energy_joules, expected, 1e-9);
  EXPECT_GT(result.average_node_power_watts, 100.0);
}

TEST(JobSimTest, TotalsAccumulateOverIterations) {
  Cluster cluster(2);
  JobSimulation job("j", hosts_of(cluster, 2), kernel::WorkloadConfig{});
  double elapsed = 0.0;
  double energy = 0.0;
  for (int i = 0; i < 5; ++i) {
    const IterationResult result = job.run_iteration();
    elapsed += result.iteration_seconds;
    energy += result.total_energy_joules;
  }
  EXPECT_EQ(job.totals().iterations, 5u);
  EXPECT_NEAR(job.totals().elapsed_seconds, elapsed, 1e-9);
  EXPECT_NEAR(job.totals().energy_joules, energy, 1e-9);
  job.reset_totals();
  EXPECT_EQ(job.totals().iterations, 0u);
}

TEST(JobSimTest, CapsChangeIterationBehavior) {
  Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;  // compute-bound: caps matter
  JobSimulation job("j", hosts_of(cluster, 2), config);
  const double fast = job.run_iteration().iteration_seconds;
  job.set_host_cap(0, 170.0);
  job.set_host_cap(1, 170.0);
  const double slow = job.run_iteration().iteration_seconds;
  EXPECT_GT(slow, fast * 1.05);
}

TEST(JobSimTest, TotalAllocatedPowerSumsCaps) {
  Cluster cluster(3);
  JobSimulation job("j", hosts_of(cluster, 3), kernel::WorkloadConfig{});
  job.set_host_cap(0, 200.0);
  job.set_host_cap(1, 180.0);
  job.set_host_cap(2, 160.0);
  EXPECT_NEAR(job.total_allocated_power(), 540.0, 1.0);
}

TEST(JobSimTest, NoiseChangesIterationsButPreservesScale) {
  Cluster cluster(2);
  NoiseParams noise{0.01};
  JobSimulation job("j", hosts_of(cluster, 2), kernel::WorkloadConfig{},
                    noise, util::Rng(99));
  const double t1 = job.run_iteration().iteration_seconds;
  const double t2 = job.run_iteration().iteration_seconds;
  EXPECT_NE(t1, t2);
  EXPECT_NEAR(t1, t2, t1 * 0.1);
}

TEST(JobSimTest, NoiselessIsDeterministic) {
  Cluster cluster(2);
  JobSimulation job("j", hosts_of(cluster, 2), kernel::WorkloadConfig{});
  const double t1 = job.run_iteration().iteration_seconds;
  const double t2 = job.run_iteration().iteration_seconds;
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(JobSimTest, GflopCountsOnlyUsefulWork) {
  Cluster cluster(4);
  kernel::WorkloadConfig config = imbalanced_config();
  JobSimulation job("j", hosts_of(cluster, 4), config);
  const IterationResult result = job.run_iteration();
  for (const auto& host : result.hosts) {
    EXPECT_GT(host.gflop, 0.0);
  }
  // Critical hosts do 2x the flops of waiting hosts.
  EXPECT_NEAR(result.hosts[3].gflop, 2.0 * result.hosts[0].gflop,
              result.hosts[0].gflop * 0.01);
}


/// Bit-identical equality between two iteration results — the SoA pass
/// must reproduce the scalar loop exactly, so EXPECT_EQ on doubles is
/// deliberate.
void expect_same_iteration(const IterationResult& a,
                           const IterationResult& b) {
  EXPECT_EQ(a.iteration_seconds, b.iteration_seconds);
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.total_gflop, b.total_gflop);
  EXPECT_EQ(a.average_node_power_watts, b.average_node_power_watts);
  EXPECT_EQ(a.critical_host_index, b.critical_host_index);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].node, b.hosts[i].node);
    EXPECT_EQ(a.hosts[i].waiting_host, b.hosts[i].waiting_host);
    EXPECT_EQ(a.hosts[i].busy_seconds, b.hosts[i].busy_seconds);
    EXPECT_EQ(a.hosts[i].poll_seconds, b.hosts[i].poll_seconds);
    EXPECT_EQ(a.hosts[i].energy_joules, b.hosts[i].energy_joules);
    EXPECT_EQ(a.hosts[i].gflop, b.hosts[i].gflop);
    EXPECT_EQ(a.hosts[i].frequency_ghz, b.hosts[i].frequency_ghz);
    EXPECT_EQ(a.hosts[i].average_power_watts,
              b.hosts[i].average_power_watts);
  }
}

TEST(JobSimSoaTest, SoaAndScalarPathsAreBitIdentical) {
  // Two identical worlds, one forced onto the scalar path, driven
  // through cap changes, noise, a straggler, and a failed host.
  Cluster soa_cluster(8);
  Cluster scalar_cluster(8);
  kernel::WorkloadConfig config = imbalanced_config();
  config.gigabytes_per_iteration = 1.5;
  const NoiseParams noise{0.01};
  JobSimulation soa("j", hosts_of(soa_cluster, 8), config, noise,
                    util::Rng(7));
  JobSimulation scalar("j", hosts_of(scalar_cluster, 8), config, noise,
                       util::Rng(7));
  scalar.set_scalar_iteration(true);
  EXPECT_FALSE(soa.scalar_iteration());
  EXPECT_TRUE(scalar.scalar_iteration());

  const auto step_both = [&] {
    expect_same_iteration(soa.run_iteration(), scalar.run_iteration());
  };
  for (int i = 0; i < 4; ++i) {
    step_both();
  }
  for (std::size_t h = 0; h < 8; ++h) {
    soa.set_host_cap(h, 150.0 + 5.0 * static_cast<double>(h));
    scalar.set_host_cap(h, 150.0 + 5.0 * static_cast<double>(h));
  }
  step_both();
  soa.set_host_slowdown(2, 1.5);
  scalar.set_host_slowdown(2, 1.5);
  step_both();
  soa.set_host_failed(5, true);
  scalar.set_host_failed(5, true);
  for (int i = 0; i < 4; ++i) {
    step_both();
  }
  EXPECT_EQ(soa.totals().elapsed_seconds, scalar.totals().elapsed_seconds);
  EXPECT_EQ(soa.totals().energy_joules, scalar.totals().energy_joules);
  EXPECT_EQ(soa.totals().gflop, scalar.totals().gflop);
}

TEST(JobSimSoaTest, SoaMatchesScalarWithSolveCacheDisabled) {
  // Three-way agreement: SoA + memoized solves == scalar + cold solves.
  Cluster fast_cluster(6);
  Cluster slow_cluster(6);
  kernel::WorkloadConfig config = imbalanced_config();
  const NoiseParams noise{0.004};
  JobSimulation fast("j", hosts_of(fast_cluster, 6), config, noise,
                     util::Rng(11));
  JobSimulation slow("j", hosts_of(slow_cluster, 6), config, noise,
                     util::Rng(11));
  slow.set_scalar_iteration(true);
  for (std::size_t h = 0; h < 6; ++h) {
    slow_cluster.node(h).set_solve_cache_enabled(false);
  }
  for (int i = 0; i < 6; ++i) {
    expect_same_iteration(fast.run_iteration(), slow.run_iteration());
  }
}

TEST(JobSimTest, InvalidConstructionRejected) {
  Cluster cluster(2);
  EXPECT_THROW(
      JobSimulation("j", {}, kernel::WorkloadConfig{}),
      ps::InvalidArgument);
  EXPECT_THROW(JobSimulation("j", {nullptr}, kernel::WorkloadConfig{}),
               ps::InvalidArgument);
  kernel::WorkloadConfig bad;
  bad.imbalance = 0.0;
  EXPECT_THROW(JobSimulation("j", hosts_of(cluster, 2), bad),
               ps::InvalidArgument);
}

TEST(JobSimTest, JobTotalsDerivedMetrics) {
  JobTotals totals;
  totals.iterations = 10;
  totals.elapsed_seconds = 2.0;
  totals.energy_joules = 800.0;
  totals.gflop = 400.0;
  EXPECT_DOUBLE_EQ(totals.average_power_watts(2), 200.0);
  EXPECT_DOUBLE_EQ(totals.gflops_per_watt(2), 0.5);
  EXPECT_DOUBLE_EQ(totals.energy_delay_product(), 1600.0);
  EXPECT_DOUBLE_EQ(JobTotals{}.average_power_watts(2), 0.0);
}

}  // namespace
}  // namespace ps::sim
