#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/job_sim.hpp"
#include "util/error.hpp"

namespace ps::sim {
namespace {

kernel::WorkloadConfig gpu_workload() {
  kernel::WorkloadConfig config;
  config.intensity = 4.0;
  config.gigabytes_per_iteration = 1.0;
  config.gpu_gigabytes_per_iteration = 60.0;
  config.gpu_intensity = 40.0;
  return config;
}

struct HeteroRig {
  HeteroRig() : cluster(2) {
    cluster.node(0).attach_gpu();
    cluster.node(1).attach_gpu();
    job = std::make_unique<JobSimulation>(
        "hetero", std::vector<hw::NodeModel*>{&cluster.node(0),
                                              &cluster.node(1)},
        gpu_workload());
  }
  Cluster cluster;
  std::unique_ptr<JobSimulation> job;
};

TEST(JobSimGpuTest, GpuDomainIsVisibleOnlyWithDevicesAndOffload) {
  Cluster cluster(2);
  cluster.node(0).attach_gpu();
  // GPU devices but a CPU-only workload: no GPU domain.
  kernel::WorkloadConfig cpu_only;
  JobSimulation cpu_job(
      "cpu", std::vector<hw::NodeModel*>{&cluster.node(0)}, cpu_only);
  EXPECT_FALSE(cpu_job.has_gpu_domain());
  EXPECT_FALSE(cpu_job.host_has_gpu_phase(0));

  // Offloaded workload on a host without devices: still no GPU phase.
  JobSimulation bare_job(
      "bare", std::vector<hw::NodeModel*>{&cluster.node(1)},
      gpu_workload());
  EXPECT_FALSE(bare_job.has_gpu_domain());
  EXPECT_FALSE(bare_job.host_has_gpu_phase(0));

  HeteroRig rig;
  EXPECT_TRUE(rig.job->has_gpu_domain());
  EXPECT_TRUE(rig.job->host_has_gpu_phase(0));
  EXPECT_TRUE(rig.job->host_has_gpu_phase(1));
}

TEST(JobSimGpuTest, GpuCapProgrammingMirrorsTheDevice) {
  HeteroRig rig;
  EXPECT_DOUBLE_EQ(rig.job->host_gpu_cap(0), rig.job->host_gpu_tdp(0));
  rig.job->set_host_gpu_cap(0, 200.0);
  EXPECT_DOUBLE_EQ(rig.job->host_gpu_cap(0), 200.0);
  EXPECT_DOUBLE_EQ(rig.cluster.node(0).gpu(0).power_cap(), 200.0);
  // Out-of-range requests land on the settable bounds.
  rig.job->set_host_gpu_cap(0, 1.0);
  EXPECT_DOUBLE_EQ(rig.job->host_gpu_cap(0), rig.job->host_gpu_min_cap(0));
}

TEST(JobSimGpuTest, GpuCapStretchesAGpuBoundIteration) {
  HeteroRig rig;
  const IterationResult uncapped = rig.job->run_iteration();
  ASSERT_EQ(uncapped.hosts.size(), 2u);
  EXPECT_GT(uncapped.hosts[0].gpu_busy_seconds, 0.0);
  EXPECT_GT(uncapped.hosts[0].gpu_energy_joules, 0.0);
  EXPECT_GT(uncapped.hosts[0].gpu_average_power_watts, 0.0);
  EXPECT_GT(uncapped.hosts[0].gpu_clock_ghz, 0.0);

  for (std::size_t h = 0; h < rig.job->host_count(); ++h) {
    rig.job->set_host_gpu_cap(h, rig.job->host_gpu_min_cap(h));
  }
  const IterationResult capped = rig.job->run_iteration();
  // The offloaded kernel is compute-bound: the device cap throttles its
  // clock and the iteration critical path stretches.
  EXPECT_GT(capped.iteration_seconds, uncapped.iteration_seconds);
  EXPECT_LT(capped.hosts[0].gpu_clock_ghz,
            uncapped.hosts[0].gpu_clock_ghz);
}

TEST(JobSimGpuTest, PreviewMatchesTheProgrammedCapRun) {
  HeteroRig rig;
  const double preview = rig.job->preview_gpu_seconds(0, 150.0);
  rig.job->set_host_gpu_cap(0, 150.0);
  const IterationResult result = rig.job->run_iteration();
  EXPECT_NEAR(result.hosts[0].gpu_busy_seconds, preview,
              preview * 0.05);
  // Previews are pure: the programmed cap did not move.
  EXPECT_DOUBLE_EQ(rig.job->host_gpu_cap(0), 150.0);
}

TEST(JobSimGpuTest, GpuEnergyAndFlopsFoldIntoJobTotals) {
  HeteroRig rig;
  const IterationResult iteration = rig.job->run_iteration();
  double host_energy = 0.0;
  double gpu_energy = 0.0;
  for (const HostIterationResult& host : iteration.hosts) {
    host_energy += host.energy_joules;
    gpu_energy += host.gpu_energy_joules;
    // The per-host totals already include the GPU share.
    EXPECT_GE(host.energy_joules, host.gpu_energy_joules);
    EXPECT_GE(host.gflop, host.gpu_gflop);
  }
  EXPECT_GT(gpu_energy, 0.0);
  EXPECT_NEAR(iteration.total_energy_joules, host_energy, 1e-6);
  EXPECT_NEAR(rig.job->totals().energy_joules, host_energy, 1e-6);
}

TEST(JobSimGpuTest, GpuAccessorsRejectGpuLessHosts) {
  Cluster cluster(1);
  JobSimulation job("bare",
                    std::vector<hw::NodeModel*>{&cluster.node(0)},
                    gpu_workload());
  EXPECT_THROW(job.set_host_gpu_cap(0, 200.0), ps::Error);
  EXPECT_THROW(static_cast<void>(job.preview_gpu_seconds(0, 200.0)),
               ps::Error);
}

}  // namespace
}  // namespace ps::sim
