#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace ps::sim {
namespace {

TEST(TraceRecorderTest, UnboundedKeepsEverything) {
  TraceRecorder trace({"a", "b"});
  for (int i = 0; i < 100; ++i) {
    const double values[] = {static_cast<double>(i),
                             static_cast<double>(i * 2)};
    trace.append(static_cast<double>(i), values);
  }
  EXPECT_EQ(trace.size(), 100u);
  EXPECT_EQ(trace.total_appended(), 100u);
  EXPECT_DOUBLE_EQ(trace.timestamp(0), 0.0);
  EXPECT_DOUBLE_EQ(trace.value(99, 1), 198.0);
}

TEST(TraceRecorderTest, RingBufferEvictsOldestFirst) {
  TraceRecorder trace({"x"}, 3);
  for (int i = 0; i < 5; ++i) {
    const double value = static_cast<double>(i);
    trace.append(value, {&value, 1});
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.total_appended(), 5u);
  // Rows 2, 3, 4 remain, oldest first.
  EXPECT_DOUBLE_EQ(trace.value(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(trace.value(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(trace.value(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(trace.timestamp(0), 2.0);
}

TEST(TraceRecorderTest, ColumnStatsOverHeldRows) {
  TraceRecorder trace({"x"}, 2);
  for (double value : {10.0, 20.0, 30.0}) {
    trace.append(value, {&value, 1});
  }
  const util::RunningStats stats = trace.column_stats(0);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 25.0);  // 20 and 30 remain
}

TEST(TraceRecorderTest, CsvHasHeaderAndRows) {
  TraceRecorder trace({"power", "cap"});
  const double row1[] = {200.0, 210.0};
  const double row2[] = {205.0, 210.0};
  trace.append(0.1, row1);
  trace.append(0.2, row2);
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("timestamp,power,cap"), std::string::npos);
  EXPECT_NE(csv.find("0.100000,200.000000,210.000000"), std::string::npos);
  EXPECT_NE(csv.find("0.200000,205.000000,210.000000"), std::string::npos);
}

TEST(TraceRecorderTest, ClearResetsHeldRows) {
  TraceRecorder trace({"x"});
  const double value = 1.0;
  trace.append(0.0, {&value, 1});
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_THROW(static_cast<void>(trace.value(0, 0)), ps::InvalidArgument);
}

TEST(TraceRecorderTest, RejectsNonFiniteSamplesWithoutMutating) {
  TraceRecorder trace({"x"});
  const double good = 1.0;
  trace.append(0.0, {&good, 1});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(trace.append(1.0, {&nan, 1}), ps::InvalidArgument);
  EXPECT_THROW(trace.append(1.0, {&inf, 1}), ps::InvalidArgument);
  EXPECT_THROW(trace.append(nan, {&good, 1}), ps::InvalidArgument);
  EXPECT_THROW(trace.append(-inf, {&good, 1}), ps::InvalidArgument);
  // The rejected rows left no trace: state is exactly one good row, and
  // the aggregates stay finite.
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.total_appended(), 1u);
  EXPECT_DOUBLE_EQ(trace.column_stats(0).mean(), 1.0);
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

TEST(TraceRecorderTest, EmptyTraceHasEmptyStatsAndHeaderOnlyCsv) {
  TraceRecorder trace({"x", "y"});
  const util::RunningStats stats = trace.column_stats(1);
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str(), "timestamp,x,y\n");
}

TEST(TraceRecorderTest, ValidatesShapes) {
  EXPECT_THROW(TraceRecorder({}), ps::InvalidArgument);
  EXPECT_THROW(TraceRecorder({""}), ps::InvalidArgument);
  TraceRecorder trace({"a", "b"});
  const double one = 1.0;
  EXPECT_THROW(trace.append(0.0, {&one, 1}), ps::InvalidArgument);
  const double row[] = {1.0, 2.0};
  trace.append(0.0, row);
  EXPECT_THROW(static_cast<void>(trace.value(0, 2)), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(trace.column_stats(2)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::sim
