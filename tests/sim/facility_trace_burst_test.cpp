// Flash-crowd pulses on the facility trace: zero bursts must leave the
// legacy trace byte-identical; configured bursts add demand without ever
// breaking the floor/rating clamps.
#include "sim/facility_trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::sim {
namespace {

TEST(FacilityTraceBurstTest, ZeroBurstsKeepTheLegacyTraceIdentical) {
  util::Rng legacy_rng(7);
  util::Rng burst_rng(7);
  const FacilityTrace legacy =
      generate_facility_trace(FacilityTraceParams{}, legacy_rng);
  FacilityTraceParams params;  // burst_count defaults to 0.
  params.burst_amplitude_mw = 0.4;
  const FacilityTrace with_knob = generate_facility_trace(params, burst_rng);
  ASSERT_EQ(with_knob.instantaneous_mw, legacy.instantaneous_mw);
}

TEST(FacilityTraceBurstTest, BurstsOnlyEverAddPower) {
  // Reference: same burst count at zero amplitude. The centers consume
  // the same rng draws, so the churn stream is identical and the pulses
  // are the *only* difference between the two traces.
  FacilityTraceParams params;
  params.days = 30;
  params.burst_count = 4;
  params.burst_amplitude_mw = 0.0;
  params.burst_duration_days = 0.5;
  util::Rng base_rng(11);
  const FacilityTrace base = generate_facility_trace(params, base_rng);

  FacilityTraceParams crowd = params;
  crowd.burst_amplitude_mw = 0.3;
  util::Rng crowd_rng(11);
  const FacilityTrace burst = generate_facility_trace(crowd, crowd_rng);

  ASSERT_EQ(burst.instantaneous_mw.size(), base.instantaneous_mw.size());
  double base_total = 0.0;
  double burst_total = 0.0;
  for (std::size_t s = 0; s < base.instantaneous_mw.size(); ++s) {
    base_total += base.instantaneous_mw[s];
    burst_total += burst.instantaneous_mw[s];
    EXPECT_GE(burst.instantaneous_mw[s], base.instantaneous_mw[s] - 1e-12);
    EXPECT_LE(burst.instantaneous_mw[s], crowd.peak_rating_mw + 1e-12);
  }
  EXPECT_GT(burst_total, base_total);
}

TEST(FacilityTraceBurstTest, MalformedBurstParamsRejected) {
  util::Rng rng(3);
  FacilityTraceParams params;
  params.burst_count = 1;
  params.burst_amplitude_mw = -0.1;
  EXPECT_THROW(static_cast<void>(generate_facility_trace(params, rng)),
               ps::InvalidArgument);
  params.burst_amplitude_mw = 0.2;
  params.burst_duration_days = 0.0;
  EXPECT_THROW(static_cast<void>(generate_facility_trace(params, rng)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::sim
