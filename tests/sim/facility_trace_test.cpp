#include "sim/facility_trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ps::sim {
namespace {

FacilityTrace make_trace(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return generate_facility_trace(FacilityTraceParams{}, rng);
}

TEST(FacilityTraceTest, SampleCountMatchesParams) {
  const FacilityTrace trace = make_trace();
  EXPECT_EQ(trace.instantaneous_mw.size(), 280u * 24u);
  EXPECT_EQ(trace.moving_average_mw.size(), trace.instantaneous_mw.size());
}

TEST(FacilityTraceTest, NeverExceedsPeakRating) {
  const FacilityTrace trace = make_trace();
  EXPECT_LE(trace.peak_mw(), trace.params.peak_rating_mw + 1e-12);
}

TEST(FacilityTraceTest, NeverBelowFloor) {
  const FacilityTrace trace = make_trace();
  for (double sample : trace.instantaneous_mw) {
    EXPECT_GE(sample, trace.params.floor_mw - 1e-12);
  }
}

TEST(FacilityTraceTest, MeanNearConfiguredMean) {
  // Fig. 1: Quartz is rated 1.35 MW but averages ~0.83 MW.
  const FacilityTrace trace = make_trace();
  EXPECT_NEAR(trace.mean_mw(), trace.params.mean_power_mw, 0.08);
}

TEST(FacilityTraceTest, SubstantialHeadroomBelowRating) {
  const FacilityTrace trace = make_trace();
  // The under-utilization motivating the paper: average well below peak.
  EXPECT_LT(trace.mean_mw(), 0.75 * trace.params.peak_rating_mw);
}

TEST(FacilityTraceTest, MovingAverageSmootherThanInstantaneous) {
  const FacilityTrace trace = make_trace();
  double raw_variation = 0.0;
  double smooth_variation = 0.0;
  for (std::size_t s = 1; s < trace.instantaneous_mw.size(); ++s) {
    raw_variation +=
        std::abs(trace.instantaneous_mw[s] - trace.instantaneous_mw[s - 1]);
    smooth_variation +=
        std::abs(trace.moving_average_mw[s] - trace.moving_average_mw[s - 1]);
  }
  EXPECT_LT(smooth_variation, raw_variation * 0.5);
}

TEST(FacilityTraceTest, FractionAboveIsMonotone) {
  const FacilityTrace trace = make_trace();
  EXPECT_GE(trace.fraction_above(0.5), trace.fraction_above(1.0));
  EXPECT_DOUBLE_EQ(trace.fraction_above(trace.params.peak_rating_mw), 0.0);
}

TEST(FacilityTraceTest, DeterministicGivenSeed) {
  const FacilityTrace a = make_trace(9);
  const FacilityTrace b = make_trace(9);
  EXPECT_EQ(a.instantaneous_mw, b.instantaneous_mw);
}

TEST(FacilityTraceTest, WeekendsDrawLess) {
  const FacilityTrace trace = make_trace();
  util::RunningStats weekday;
  util::RunningStats weekend;
  const std::size_t per_day = trace.params.samples_per_day;
  for (std::size_t s = 0; s < trace.instantaneous_mw.size(); ++s) {
    const int day = static_cast<int>(s / per_day) % 7;
    (day >= 5 ? weekend : weekday).add(trace.instantaneous_mw[s]);
  }
  EXPECT_GT(weekday.mean(), weekend.mean());
}

TEST(FacilityTraceTest, InvalidParamsRejected) {
  util::Rng rng(1);
  FacilityTraceParams params;
  params.days = 0;
  EXPECT_THROW(static_cast<void>(generate_facility_trace(params, rng)),
               ps::InvalidArgument);
  params = {};
  params.mean_power_mw = 2.0;  // above rating
  EXPECT_THROW(static_cast<void>(generate_facility_trace(params, rng)),
               ps::InvalidArgument);
  params = {};
  params.floor_mw = 1.0;  // above mean
  EXPECT_THROW(static_cast<void>(generate_facility_trace(params, rng)),
               ps::InvalidArgument);
}

TEST(FacilityTraceTest, EmptyTraceAccessorsThrow) {
  FacilityTrace empty;
  EXPECT_THROW(static_cast<void>(empty.peak_mw()), ps::InvalidState);
  EXPECT_THROW(static_cast<void>(empty.mean_mw()), ps::InvalidState);
  EXPECT_THROW(static_cast<void>(empty.fraction_above(1.0)),
               ps::InvalidState);
}

}  // namespace
}  // namespace ps::sim
