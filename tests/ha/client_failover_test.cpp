// RuntimeClient failover policy: ordered endpoint lists, bounded
// per-endpoint connect caps with jittered rotation, the mid-exchange
// probe timeout, and the fencing-epoch ratchet that rejects a zombie
// primary's caps. The single-endpoint regression pins PR-1 behavior: a
// 1-element list is byte-for-byte the old client.
#include "net/client.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "core/endpoint.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/error.hpp"

namespace ps::ha {
namespace {

using std::chrono::milliseconds;

core::SampleMessage make_sample(std::uint64_t sequence) {
  core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = "job-a";
  sample.min_settable_cap_watts = 100.0;
  sample.host_observed_watts = {150.0, 160.0};
  sample.host_needed_watts = {140.0, 155.0};
  return sample;
}

net::ClientOptions fast_options() {
  net::ClientOptions options;
  options.request_timeout = milliseconds(500);
  options.backoff_initial = milliseconds(2);
  options.backoff_max = milliseconds(16);
  options.backoff_jitter = 0.0;
  return options;
}

/// Answers one framed sample on `server` with caps stamped `fence`.
void serve_one_exchange(net::Socket& server, std::uint64_t fence) {
  net::FrameDecoder decoder;
  char buffer[4096];
  for (;;) {
    if (auto payload = decoder.next()) {
      const core::SampleMessage sample =
          core::parse_sample_message(*payload);
      core::PolicyMessage policy;
      policy.job_name = sample.job_name;
      policy.sequence = sample.sequence;
      policy.host_caps_watts = {180.0, 190.0};
      policy.fence_epoch = fence;
      static_cast<void>(server.write_some(net::encode_frame(
          core::serialize(policy, core::WireFidelity::kExact))));
      return;
    }
    ASSERT_TRUE(server.wait_readable(milliseconds(2'000)));
    const net::IoResult result = server.read_some(buffer, sizeof(buffer));
    ASSERT_EQ(result.status, net::IoStatus::kOk);
    decoder.feed(std::string_view(buffer, result.bytes));
  }
}

/// A connector backed by a queue of pre-connected sockets; dials throw
/// once the queue is empty.
net::RuntimeClient::TransportConnector queue_connector(
    std::shared_ptr<std::deque<net::Socket>> queue) {
  return [queue]() -> std::unique_ptr<net::Transport> {
    if (queue->empty()) {
      throw Error("endpoint is gone");
    }
    net::Socket socket = std::move(queue->front());
    queue->pop_front();
    return net::make_transport(std::move(socket));
  };
}

// Satellite regression: a 1-element endpoint list must be exactly the
// PR-1 single-endpoint client — same dial count, same terminal
// daemon_lost latch, no rotations, no probe machinery.
TEST(ClientFailoverTest, OneElementListMatchesSingleEndpointClient) {
  net::ClientOptions options = fast_options();
  options.max_connect_attempts_per_outage = 5;

  std::size_t single_dials = 0;
  net::RuntimeClient single(
      net::RuntimeClient::TransportConnector(
          [&single_dials]() -> std::unique_ptr<net::Transport> {
            ++single_dials;
            throw Error("unreachable");
          }),
      options);
  std::size_t list_dials = 0;
  std::vector<net::RuntimeClient::TransportConnector> connectors;
  connectors.push_back([&list_dials]() -> std::unique_ptr<net::Transport> {
    ++list_dials;
    throw Error("unreachable");
  });
  net::RuntimeClient listed(std::move(connectors), options);

  EXPECT_FALSE(single.exchange(make_sample(1)).has_value());
  EXPECT_FALSE(listed.exchange(make_sample(1)).has_value());

  EXPECT_EQ(single_dials, list_dials);
  EXPECT_TRUE(single.daemon_lost());
  EXPECT_TRUE(listed.daemon_lost());
  EXPECT_EQ(listed.endpoint_count(), 1u);
  EXPECT_EQ(listed.endpoint_index(), 0u);
  EXPECT_EQ(single.stats().connect_attempts, listed.stats().connect_attempts);
  EXPECT_EQ(single.stats().connect_failures, listed.stats().connect_failures);
  EXPECT_EQ(single.stats().outages, listed.stats().outages);
  EXPECT_EQ(listed.stats().endpoint_rotations, 0u);
  EXPECT_EQ(listed.stats().probe_timeouts, 0u);
  EXPECT_EQ(single.current_backoff(), listed.current_backoff());
}

TEST(ClientFailoverTest, RotatesToTheStandbyAfterThePerEndpointCap) {
  auto [client_end, server_end] = net::loopback_pair();
  auto standby_queue = std::make_shared<std::deque<net::Socket>>();
  standby_queue->push_back(std::move(client_end));

  net::ClientOptions options = fast_options();
  options.connect_attempts_per_endpoint = 3;
  std::size_t primary_dials = 0;
  std::vector<net::RuntimeClient::TransportConnector> connectors;
  connectors.push_back([&primary_dials]() -> std::unique_ptr<net::Transport> {
    ++primary_dials;
    throw Error("primary is down");
  });
  connectors.push_back(queue_connector(standby_queue));
  net::RuntimeClient client(std::move(connectors), options);

  net::Socket server = std::move(server_end);
  std::thread responder(
      [&server] { serve_one_exchange(server, /*fence=*/0); });
  const auto policy = client.exchange(make_sample(1));
  responder.join();

  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->sequence, 1u);
  EXPECT_EQ(primary_dials, 3u);  // exactly the per-endpoint budget
  EXPECT_EQ(client.stats().endpoint_rotations, 1u);
  EXPECT_EQ(client.endpoint_index(), 1u);
  EXPECT_FALSE(client.daemon_lost());
}

TEST(ClientFailoverTest, FenceRatchetRejectsZombieCaps) {
  auto [promoted_client_end, promoted_server_end] = net::loopback_pair();
  auto [zombie_client_end, zombie_server_end] = net::loopback_pair();
  auto promoted_queue = std::make_shared<std::deque<net::Socket>>();
  promoted_queue->push_back(std::move(promoted_client_end));
  auto zombie_queue = std::make_shared<std::deque<net::Socket>>();
  zombie_queue->push_back(std::move(zombie_client_end));

  net::ClientOptions options = fast_options();
  options.request_timeout = milliseconds(250);
  options.connect_attempts_per_endpoint = 1;
  std::vector<net::RuntimeClient::TransportConnector> connectors;
  connectors.push_back(queue_connector(promoted_queue));
  connectors.push_back(queue_connector(zombie_queue));
  net::RuntimeClient client(std::move(connectors), options);

  // Exchange 1 lands on the promoted daemon: the client ratchets to its
  // fence and remembers the caps.
  {
    net::Socket server = std::move(promoted_server_end);
    std::thread responder(
        [&server] { serve_one_exchange(server, /*fence=*/2); });
    const auto policy = client.exchange(make_sample(1));
    responder.join();
    ASSERT_TRUE(policy.has_value());
    EXPECT_EQ(client.fence_epoch(), 2u);
  }  // the promoted daemon's connection closes here

  // Exchange 2 can only reach the zombie (fence 1): its caps must be
  // rejected — not applied — and the ratchet must hold.
  net::Socket zombie = std::move(zombie_server_end);
  std::thread zombie_responder(
      [&zombie] { serve_one_exchange(zombie, /*fence=*/1); });
  const auto policy = client.exchange(make_sample(2));
  zombie_responder.join();

  EXPECT_FALSE(policy.has_value());
  EXPECT_GE(client.stats().stale_fence_caps, 1u);
  EXPECT_EQ(client.fence_epoch(), 2u);
  ASSERT_TRUE(client.last_known_policy().has_value());
  EXPECT_EQ(client.last_known_policy()->sequence, 1u);  // fence-2 caps kept
}

TEST(ClientFailoverTest, ProbeTimeoutAbandonsASilentEndpointMidExchange) {
  auto [silent_client_end, silent_server_end] = net::loopback_pair();
  auto [live_client_end, live_server_end] = net::loopback_pair();
  auto silent_queue = std::make_shared<std::deque<net::Socket>>();
  silent_queue->push_back(std::move(silent_client_end));
  auto live_queue = std::make_shared<std::deque<net::Socket>>();
  live_queue->push_back(std::move(live_client_end));

  net::ClientOptions options = fast_options();
  options.request_timeout = milliseconds(2'000);
  options.endpoint_probe_timeout = milliseconds(60);
  std::vector<net::RuntimeClient::TransportConnector> connectors;
  connectors.push_back(queue_connector(silent_queue));
  connectors.push_back(queue_connector(live_queue));
  net::RuntimeClient client(std::move(connectors), options);

  // The silent endpoint accepts the sample and never answers — a fenced
  // zombie. The exchange must abandon it after the probe window and
  // finish on the live endpoint, all inside one exchange() call.
  net::Socket silent = std::move(silent_server_end);
  net::Socket live = std::move(live_server_end);
  std::thread responder(
      [&live] { serve_one_exchange(live, /*fence=*/1); });
  const auto policy = client.exchange(make_sample(1));
  responder.join();

  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->sequence, 1u);
  EXPECT_EQ(client.stats().probe_timeouts, 1u);
  EXPECT_GE(client.stats().endpoint_rotations, 1u);
  EXPECT_EQ(client.fence_epoch(), 1u);
}

TEST(ClientFailoverTest, RejectsAnEmptyEndpointList) {
  EXPECT_THROW(
      net::RuntimeClient(std::vector<net::RuntimeClient::TransportConnector>{},
                         fast_options()),
      ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::ha
