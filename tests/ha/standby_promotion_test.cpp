// Replicator fencing and StandbyDaemon promotion: the lease protocol
// between a primary's Replicator and its standby — engagement, the
// lease/2 fence window, deterministic promotion after a full silent
// lease, the never-promote-unsynced rule, and the standby's refusal of
// stale-fence or corrupted updates.
#include "ha/replicator.hpp"
#include "ha/standby.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/endpoint.hpp"
#include "ha/replication.hpp"
#include "net/client.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "util/error.hpp"

namespace ps::ha {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/ps-ha-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

net::DaemonSnapshot make_state(std::uint64_t fence) {
  net::DaemonSnapshot state;
  state.system_budget_watts = 3680.0;
  state.budget_epoch = 0;
  state.fence_epoch = fence;
  state.launch_barrier_met = true;
  state.allocations = 17;
  net::SnapshotJob a;
  a.name = "a-wasteful";
  a.sequence = 17;
  a.caps_watts = {215.5, 216.25};
  net::SnapshotJob b;
  b.name = "b-hungry";
  b.sequence = 17;
  b.caps_watts = {230.0, 230.0};
  state.jobs = {a, b};
  return state;
}

/// Polls `predicate` until it holds or `deadline_ms` elapses.
bool eventually(const std::function<bool()>& predicate,
                int deadline_ms = 5'000) {
  const auto deadline = Clock::now() + milliseconds(deadline_ms);
  while (Clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(milliseconds(5));
  }
  return predicate();
}

/// A hand-rolled standby endpoint for driving the Replicator directly.
struct FakeStandby {
  net::Socket socket;
  net::FrameDecoder decoder;

  explicit FakeStandby(std::uint16_t port) : socket(net::connect_tcp(port)) {}

  void send(const std::string& payload) {
    const std::string frame = net::encode_frame(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const net::IoResult r =
          socket.write_some(std::string_view(frame).substr(sent));
      if (r.status == net::IoStatus::kOk) {
        sent += r.bytes;
        continue;
      }
      ASSERT_NE(r.status, net::IoStatus::kClosed);
      ASSERT_TRUE(socket.wait_writable(milliseconds(1'000)));
    }
  }

  /// Next complete frame, or nullopt after `deadline_ms`.
  std::optional<std::string> next_frame(int deadline_ms = 2'000) {
    const auto deadline = Clock::now() + milliseconds(deadline_ms);
    char buffer[4096];
    for (;;) {
      if (auto payload = decoder.next()) {
        return payload;
      }
      const auto remaining =
          std::chrono::duration_cast<milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0 || !socket.wait_readable(remaining)) {
        return std::nullopt;
      }
      const net::IoResult r = socket.read_some(buffer, sizeof(buffer));
      if (r.status == net::IoStatus::kClosed) {
        return std::nullopt;
      }
      if (r.status == net::IoStatus::kOk) {
        decoder.feed(std::string_view(buffer, r.bytes));
      }
    }
  }
};

TEST(ReplicatorTest, FencingEngagesOnFirstAckAndReleasesWhenAcksResume) {
  ReplicatorOptions options;
  options.lease = milliseconds(160);
  Replicator replicator(options);
  replicator.listen_tcp(0);
  replicator.start();
  replicator.publish(make_state(0));

  // Before any standby exists the primary must never fence itself.
  std::this_thread::sleep_for(milliseconds(200));
  EXPECT_FALSE(replicator.should_fence());
  EXPECT_FALSE(replicator.stats().engaged);

  FakeStandby standby(replicator.tcp_port());
  standby.send(serialize(HaSyncRequest{0}));
  const auto update_payload = standby.next_frame();
  ASSERT_TRUE(update_payload.has_value());
  ASSERT_EQ(ha_message_kind(*update_payload), HaMessageKind::kUpdate);
  const HaStateUpdate update = parse_state_update(*update_payload);
  EXPECT_EQ(update.rounds, 17u);

  standby.send(serialize(HaAck{update.rounds}));
  ASSERT_TRUE(eventually(
      [&] { return replicator.stats().acks_received >= 1; }));
  EXPECT_TRUE(replicator.stats().engaged);
  EXPECT_FALSE(replicator.should_fence());

  // Silence past lease/2: the primary assumes a successor may exist.
  ASSERT_TRUE(eventually([&] { return replicator.should_fence(); }, 2'000));

  // Acks resume (a healed partition): the fence releases.
  while (auto payload = standby.next_frame(50)) {
    // Drain queued heartbeats so the ack below is the freshest traffic.
  }
  standby.send(serialize(HaAck{update.rounds}));
  ASSERT_TRUE(eventually([&] { return !replicator.should_fence(); }, 2'000));
  EXPECT_EQ(replicator.stats().last_ack_rounds, 17u);
  replicator.stop();
}

TEST(StandbyDaemonTest, PromotesAfterALeaseOfSilenceAndServesReplicatedCaps) {
  ReplicatorOptions replicator_options;
  replicator_options.lease = milliseconds(150);
  auto replicator = std::make_unique<Replicator>(replicator_options);
  replicator->listen_tcp(0);
  replicator->start();
  replicator->publish(make_state(0));
  const std::uint16_t repl_port = replicator->tcp_port();

  const std::string standby_path = unique_socket_path("promote");
  StandbyOptions options;
  options.primary = [repl_port] {
    return net::make_transport(net::connect_tcp(repl_port));
  };
  options.daemon.system_budget_watts = 3680.0;
  options.daemon.min_jobs = 2;
  options.daemon.tick_interval = milliseconds(20);
  options.lease = milliseconds(150);
  options.dial_retry = milliseconds(10);
  options.bind = [&standby_path](net::PowerDaemon& daemon) {
    daemon.listen_unix(standby_path);
  };
  StandbyDaemon standby(options);
  std::thread runner([&standby] { standby.run(); });

  ASSERT_TRUE(eventually([&] { return standby.synced(); }));
  EXPECT_FALSE(standby.promoted());
  EXPECT_EQ(standby.stats().rounds, 17u);

  // Kill the primary's replicator: one lease later the standby serves.
  replicator.reset();
  ASSERT_TRUE(eventually([&] { return standby.promoted(); }));
  EXPECT_EQ(standby.stats().fence_epoch, 1u);

  // A failed-over client asking for an already-answered sequence gets the
  // replicated caps back, stamped with the successor's fence.
  net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(2'000);
  net::RuntimeClient client(
      net::RuntimeClient::Connector(
          [&standby_path] { return net::connect_unix(standby_path); }),
      client_options);
  core::SampleMessage sample;
  sample.sequence = 17;
  sample.job_name = "a-wasteful";
  sample.min_settable_cap_watts = 100.0;
  sample.host_observed_watts = {150.0, 160.0};
  sample.host_needed_watts = {140.0, 155.0};
  const auto policy = client.exchange(sample);
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->sequence, 17u);
  EXPECT_EQ(policy->fence_epoch, 1u);
  EXPECT_EQ(policy->host_caps_watts, (std::vector<double>{215.5, 216.25}));
  EXPECT_EQ(client.fence_epoch(), 1u);

  ASSERT_NE(standby.daemon(), nullptr);
  EXPECT_EQ(standby.daemon()->stats().fence_epoch, 1u);
  EXPECT_EQ(standby.daemon()->stats().jobs_restored, 2u);
  EXPECT_EQ(standby.daemon()->stats().launch_barriers, 0u);

  standby.stop();
  runner.join();
}

TEST(StandbyDaemonTest, UnsyncedStandbyNeverPromotes) {
  StandbyOptions options;
  options.primary = []() -> std::unique_ptr<net::Transport> {
    throw Error("primary never existed");
  };
  options.daemon.system_budget_watts = 1000.0;
  options.lease = milliseconds(80);
  options.dial_retry = milliseconds(10);
  StandbyDaemon standby(options);
  std::thread runner([&standby] { standby.run(); });

  std::this_thread::sleep_for(milliseconds(320));  // four silent leases
  EXPECT_FALSE(standby.promoted());
  EXPECT_FALSE(standby.synced());
  EXPECT_GE(standby.stats().dial_failures, 1u);

  standby.stop();
  runner.join();
}

TEST(StandbyDaemonTest, RejectsStaleFenceAndCorruptUpdates) {
  std::uint16_t port = 0;
  net::Listener listener = net::listen_tcp(0, &port);

  StandbyOptions options;
  options.primary = [port] {
    return net::make_transport(net::connect_tcp(port));
  };
  options.daemon.system_budget_watts = 3680.0;
  options.lease = milliseconds(10'000);  // promotion out of the picture
  options.dial_retry = milliseconds(10);
  StandbyDaemon standby(options);
  std::thread runner([&standby] { standby.run(); });

  ASSERT_TRUE(listener.valid());
  std::optional<net::Socket> accepted;
  ASSERT_TRUE(eventually([&] {
    accepted = listener.accept();
    return accepted.has_value();
  }));
  net::Socket primary = std::move(*accepted);

  auto send = [&primary](const std::string& payload) {
    const std::string frame = net::encode_frame(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const net::IoResult r =
          primary.write_some(std::string_view(frame).substr(sent));
      if (r.status == net::IoStatus::kOk) {
        sent += r.bytes;
        continue;
      }
      ASSERT_NE(r.status, net::IoStatus::kClosed);
      ASSERT_TRUE(primary.wait_writable(milliseconds(1'000)));
    }
  };

  // A fence-2 update syncs the standby.
  HaStateUpdate fresh;
  fresh.state = make_state(2);
  fresh.fence_epoch = 2;
  fresh.rounds = fresh.state.allocations;
  send(serialize(fresh));
  ASSERT_TRUE(eventually([&] { return standby.synced(); }));
  EXPECT_EQ(standby.stats().fence_epoch, 2u);
  EXPECT_EQ(standby.stats().updates_applied, 1u);

  // A fence-1 update is a zombie's state: refused, nothing rolls back.
  HaStateUpdate stale;
  stale.state = make_state(1);
  stale.fence_epoch = 1;
  stale.rounds = stale.state.allocations;
  send(serialize(stale));
  ASSERT_TRUE(
      eventually([&] { return standby.stats().updates_rejected >= 1; }));
  EXPECT_EQ(standby.stats().fence_epoch, 2u);
  EXPECT_EQ(standby.stats().updates_applied, 1u);

  // A corrupted embedded snapshot (checksum mismatch) is refused too.
  HaStateUpdate corrupt;
  corrupt.state = make_state(2);
  corrupt.fence_epoch = 2;
  corrupt.rounds = corrupt.state.allocations;
  std::string payload = serialize(corrupt);
  const std::size_t pos = payload.find("215.5");
  ASSERT_NE(pos, std::string::npos);
  payload[pos] = '9';
  send(payload);
  ASSERT_TRUE(
      eventually([&] { return standby.stats().updates_rejected >= 2; }));
  EXPECT_EQ(standby.stats().updates_applied, 1u);
  EXPECT_EQ(standby.stats().rounds, 17u);

  standby.stop();
  runner.join();
}

}  // namespace
}  // namespace ps::ha
