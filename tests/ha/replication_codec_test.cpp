#include "ha/replication.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/endpoint.hpp"
#include "util/error.hpp"

namespace ps::ha {
namespace {

net::DaemonSnapshot make_state(std::uint64_t fence) {
  net::DaemonSnapshot state;
  state.system_budget_watts = 3680.0;
  state.budget_epoch = 2;
  state.fence_epoch = fence;
  state.launch_barrier_met = true;
  state.allocations = 17;
  net::SnapshotJob a;
  a.name = "a-wasteful";
  a.sequence = 17;
  a.caps_watts = {215.5, 216.25};
  net::SnapshotJob b;
  b.name = "b-hungry";
  b.sequence = 17;
  b.caps_watts = {230.0, 230.0};
  state.jobs = {a, b};
  return state;
}

TEST(ReplicationCodecTest, KindDispatchReadsTheFirstLine) {
  EXPECT_EQ(ha_message_kind(serialize(HaSyncRequest{3})),
            HaMessageKind::kSync);
  EXPECT_EQ(ha_message_kind(serialize(HaHeartbeat{1, 9})),
            HaMessageKind::kHeartbeat);
  EXPECT_EQ(ha_message_kind(serialize(HaAck{9})), HaMessageKind::kAck);
  HaStateUpdate update;
  update.state = make_state(0);
  update.rounds = update.state.allocations;
  EXPECT_EQ(ha_message_kind(serialize(update)), HaMessageKind::kUpdate);
  EXPECT_EQ(ha_message_kind("powerstack-snapshot v2\n"),
            HaMessageKind::kUnknown);
  EXPECT_EQ(ha_message_kind(""), HaMessageKind::kUnknown);
}

TEST(ReplicationCodecTest, SyncHeartbeatAckRoundTrip) {
  const HaSyncRequest sync = parse_sync_request(serialize(HaSyncRequest{7}));
  EXPECT_EQ(sync.fence_epoch, 7u);

  const HaHeartbeat heartbeat =
      parse_heartbeat(serialize(HaHeartbeat{2, 41}));
  EXPECT_EQ(heartbeat.fence_epoch, 2u);
  EXPECT_EQ(heartbeat.rounds, 41u);

  const HaAck ack = parse_ack(serialize(HaAck{41}));
  EXPECT_EQ(ack.rounds, 41u);
}

TEST(ReplicationCodecTest, StateUpdateRoundTripsAtFenceZeroAndBeyond) {
  for (const std::uint64_t fence : {std::uint64_t{0}, std::uint64_t{3}}) {
    HaStateUpdate update;
    update.state = make_state(fence);
    update.fence_epoch = fence;
    update.rounds = update.state.allocations;
    const HaStateUpdate parsed = parse_state_update(serialize(update));
    EXPECT_EQ(parsed.fence_epoch, fence);
    EXPECT_EQ(parsed.rounds, 17u);
    EXPECT_EQ(parsed.state.fence_epoch, fence);
    EXPECT_DOUBLE_EQ(parsed.state.system_budget_watts, 3680.0);
    EXPECT_EQ(parsed.state.budget_epoch, 2u);
    ASSERT_EQ(parsed.state.jobs.size(), 2u);
    EXPECT_EQ(parsed.state.jobs[0].name, "a-wasteful");
    EXPECT_EQ(parsed.state.jobs[0].caps_watts,
              (std::vector<double>{215.5, 216.25}));
  }
}

TEST(ReplicationCodecTest, UpdateRejectsFenceDisagreeingWithItsState) {
  // Header claims fence 7 over a fence-3 snapshot: assembled wrong, not
  // merely corrupted — the receiver must refuse it.
  std::string payload = "powerstack-ha-update v1\nfence 7\nrounds 17\n";
  payload += "state\n";
  payload += net::serialize(make_state(3));
  EXPECT_THROW(static_cast<void>(parse_state_update(payload)), ps::Error);
}

TEST(ReplicationCodecTest, UpdateRejectsRoundsDisagreeingWithItsState) {
  std::string payload = "powerstack-ha-update v1\nfence 3\nrounds 99\n";
  payload += "state\n";
  payload += net::serialize(make_state(3));
  EXPECT_THROW(static_cast<void>(parse_state_update(payload)), ps::Error);
}

TEST(ReplicationCodecTest, UpdateRejectsCorruptedEmbeddedState) {
  HaStateUpdate update;
  update.state = make_state(3);
  update.fence_epoch = 3;
  update.rounds = update.state.allocations;
  std::string payload = serialize(update);
  // Flip one caps digit inside the embedded snapshot: its checksum line
  // no longer matches and the whole update is refused.
  const std::size_t pos = payload.find("215.5");
  ASSERT_NE(pos, std::string::npos);
  payload[pos] = '9';
  EXPECT_THROW(static_cast<void>(parse_state_update(payload)), ps::Error);
}

TEST(ReplicationCodecTest, TruncatedMessagesThrow) {
  EXPECT_THROW(static_cast<void>(parse_sync_request("powerstack-ha-sync v1")),
               ps::Error);
  EXPECT_THROW(
      static_cast<void>(parse_heartbeat("powerstack-ha-heartbeat v1\n")),
      ps::Error);
  EXPECT_THROW(static_cast<void>(parse_ack("powerstack-ha-ack v1\n")),
               ps::Error);
  EXPECT_THROW(static_cast<void>(parse_state_update(
                   "powerstack-ha-update v1\nfence 1\nrounds 1\n")),
               ps::Error);
  // A sync parser fed an ack (and vice versa) refuses too.
  EXPECT_THROW(static_cast<void>(parse_sync_request(serialize(HaAck{1}))),
               ps::Error);
}

// The byte-identity guarantee for single-daemon deployments: a fence of
// zero must leave both the wire protocol and the snapshot codec exactly
// as they were before HA existed.
TEST(ReplicationCodecTest, FenceZeroKeepsLegacyBytes) {
  core::PolicyMessage policy;
  policy.sequence = 4;
  policy.job_name = "job-a";
  policy.host_caps_watts = {200.0, 210.0};
  const std::string wire =
      core::serialize(policy, core::WireFidelity::kExact);
  EXPECT_EQ(wire.find("fence"), std::string::npos);

  policy.fence_epoch = 2;
  const std::string fenced =
      core::serialize(policy, core::WireFidelity::kExact);
  EXPECT_NE(fenced.find("fence 2\n"), std::string::npos);
  const core::PolicyMessage parsed = core::parse_policy_message(fenced);
  EXPECT_EQ(parsed.fence_epoch, 2u);

  net::DaemonSnapshot state = make_state(0);
  const std::string snapshot = net::serialize(state);
  EXPECT_EQ(snapshot.rfind("powerstack-snapshot v2", 0), 0u);
  EXPECT_EQ(snapshot.find("fence"), std::string::npos);

  state.fence_epoch = 1;
  const std::string fenced_snapshot = net::serialize(state);
  EXPECT_EQ(fenced_snapshot.rfind("powerstack-snapshot v4", 0), 0u);
  EXPECT_NE(fenced_snapshot.find("fence 1\n"), std::string::npos);
}

}  // namespace
}  // namespace ps::ha
