#include "hw/gpu_model.hpp"

#include <gtest/gtest.h>

#include "hw/node.hpp"

namespace ps::hw {
namespace {

TEST(GpuModelTest, CapClampsAndQuantizesLikeRapl) {
  GpuModel gpu;
  EXPECT_DOUBLE_EQ(gpu.power_cap(), gpu.tdp());  // Boots uncapped.
  EXPECT_DOUBLE_EQ(gpu.set_power_cap(200.0), 200.0);
  // 1/8 W quantization (round to the nearest unit), same granularity as
  // the package RAPL units.
  EXPECT_DOUBLE_EQ(gpu.set_power_cap(200.07), 200.125);
  EXPECT_DOUBLE_EQ(gpu.set_power_cap(200.03), 200.0);
  EXPECT_DOUBLE_EQ(gpu.set_power_cap(200.125), 200.125);
  // Clamped to the settable [min_cap, TDP] range.
  EXPECT_DOUBLE_EQ(gpu.set_power_cap(10.0), gpu.min_cap());
  EXPECT_DOUBLE_EQ(gpu.set_power_cap(1e6), gpu.tdp());
}

TEST(GpuModelTest, PowerModelRespectsIdleFloorAndOccupancy) {
  GpuModel gpu;
  const GpuPowerParams& p = gpu.params().power;
  // No kernel: only the leakage floor is drawn.
  EXPECT_DOUBLE_EQ(gpu.power(p.max_clock_ghz, 0.0), p.idle_watts);
  // Full clock, full occupancy: idle + max dynamic.
  EXPECT_DOUBLE_EQ(gpu.power(p.max_clock_ghz, 1.0),
                   p.idle_watts + p.max_dynamic_watts);
  // Dynamic power scales linearly with occupancy.
  EXPECT_DOUBLE_EQ(gpu.power(p.max_clock_ghz, 0.5),
                   p.idle_watts + 0.5 * p.max_dynamic_watts);
  // Lower clock draws less; the curve is monotone.
  EXPECT_LT(gpu.power(1.0, 1.0), gpu.power(1.2, 1.0));
}

TEST(GpuModelTest, ClockAtCapInvertsThePowerModel) {
  GpuModel gpu;
  const GpuPowerParams& p = gpu.params().power;
  // Uncapped: full boost clock.
  EXPECT_DOUBLE_EQ(gpu.clock_at_cap(gpu.tdp(), 1.0), p.max_clock_ghz);
  // A mid-range cap lands between the floor and boost clocks, and the
  // inversion is exact: power(clock_at_cap(c)) == c.
  const double cap = 180.0;
  const double clock = gpu.clock_at_cap(cap, 1.0);
  EXPECT_GT(clock, p.min_clock_ghz);
  EXPECT_LT(clock, p.max_clock_ghz);
  EXPECT_NEAR(gpu.power(clock, 1.0), cap, 1e-9);
  // The device cannot run below its floor clock: once the cap leaves no
  // dynamic budget above the leakage floor, the clock pins at the
  // minimum and the cap is simply not met.
  EXPECT_DOUBLE_EQ(gpu.clock_at_cap(p.idle_watts, 1.0), p.min_clock_ghz);
  EXPECT_DOUBLE_EQ(gpu.clock_at_cap(10.0, 1.0), p.min_clock_ghz);
  EXPECT_GT(gpu.clock_at_cap(gpu.min_cap(), 1.0), p.min_clock_ghz);
  // At partial occupancy the same cap affords a higher clock.
  EXPECT_GT(gpu.clock_at_cap(cap, 0.5), clock);
}

TEST(GpuModelTest, RooflineSeparatesComputeAndMemoryBoundKernels) {
  GpuModel gpu;
  // High intensity: compute-bound, so halving the cap (and the clock)
  // stretches the phase.
  const GpuPhaseResult fast =
      gpu.preview_compute(50.0, 40.0, 1.0, gpu.tdp());
  const GpuPhaseResult slow =
      gpu.preview_compute(50.0, 40.0, 1.0, 150.0);
  EXPECT_TRUE(fast.compute_bound);
  EXPECT_GT(slow.seconds, fast.seconds);
  EXPECT_LT(slow.clock_ghz, fast.clock_ghz);

  // Low intensity: memory-bound. Bandwidth holds until the clock drops
  // below the bandwidth floor, so a mild cap costs (almost) no time.
  const GpuPhaseResult mem_fast =
      gpu.preview_compute(50.0, 0.5, 1.0, gpu.tdp());
  const GpuPhaseResult mem_mild =
      gpu.preview_compute(50.0, 0.5, 1.0, 280.0);
  EXPECT_FALSE(mem_fast.compute_bound);
  EXPECT_NEAR(mem_mild.seconds, mem_fast.seconds, 1e-9);
}

TEST(GpuModelTest, EnergyCounterIsMonotoneAcrossRunAndIdle) {
  GpuModel gpu;
  EXPECT_DOUBLE_EQ(gpu.read_energy_joules(), 0.0);
  const GpuPhaseResult phase = gpu.run_compute(10.0, 8.0, 0.9);
  EXPECT_GT(phase.energy_joules, 0.0);
  EXPECT_DOUBLE_EQ(gpu.read_energy_joules(), phase.energy_joules);
  EXPECT_DOUBLE_EQ(gpu.last_occupancy(), 0.9);
  // Idle still burns the leakage floor; the counter never goes backward.
  gpu.run_idle(2.0);
  EXPECT_NEAR(gpu.read_energy_joules(),
              phase.energy_joules + 2.0 * gpu.idle_watts(), 1e-9);
}

TEST(GpuModelTest, NodeAttachesGpusAsSecondDomain) {
  NodeModel node(0, 1.0);
  EXPECT_EQ(node.gpu_count(), 0u);
  GpuModel& gpu = node.attach_gpu();
  EXPECT_EQ(node.gpu_count(), 1u);
  EXPECT_DOUBLE_EQ(node.gpu(0).tdp(), gpu.tdp());
  // The GPU limit domain is independent of the package RAPL domains:
  // capping one leaves the other untouched.
  const double node_cap = node.power_cap();
  gpu.set_power_cap(150.0);
  EXPECT_DOUBLE_EQ(node.power_cap(), node_cap);
}

}  // namespace
}  // namespace ps::hw
