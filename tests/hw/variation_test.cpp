#include "hw/variation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/kmeans.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ps::hw {
namespace {

TEST(VariationTest, QuartzDefaultHas2000Nodes) {
  const VariationModel model = VariationModel::quartz_default();
  EXPECT_EQ(model.total_count(), 2000u);
  ASSERT_EQ(model.components().size(), 3u);
  EXPECT_EQ(model.components()[0].count, 522u);
  EXPECT_EQ(model.components()[1].count, 918u);
  EXPECT_EQ(model.components()[2].count, 560u);
}

TEST(VariationTest, GeneratesOneEtaPerNode) {
  const VariationModel model = VariationModel::quartz_default();
  util::Rng rng(1);
  const std::vector<double> etas = model.generate(rng);
  EXPECT_EQ(etas.size(), 2000u);
  for (double eta : etas) {
    EXPECT_GT(eta, 0.0);
  }
}

TEST(VariationTest, EtasAreShuffledAcrossComponents) {
  const VariationModel model = VariationModel::quartz_default();
  util::Rng rng(2);
  const std::vector<double> etas = model.generate(rng);
  // If unshuffled, the first 522 would all be the high-eta component
  // (mean 1.304). Count how many of the first 522 look like it.
  int high_eta = 0;
  for (std::size_t i = 0; i < 522; ++i) {
    if (etas[i] > 1.15) {
      ++high_eta;
    }
  }
  EXPECT_LT(high_eta, 400);
  EXPECT_GT(high_eta, 60);
}

TEST(VariationTest, ComponentMeansRecoverable) {
  const VariationModel model = VariationModel::quartz_default();
  util::Rng rng(3);
  std::vector<double> etas = model.generate(rng);
  const util::KMeansResult clusters = util::kmeans_1d(etas, 3);
  // Cluster centroids (ascending) should match component means
  // (descending eta = ascending frequency, so compare sorted).
  EXPECT_NEAR(clusters.centroids[0], 0.791, 0.02);
  EXPECT_NEAR(clusters.centroids[1], 1.004, 0.02);
  EXPECT_NEAR(clusters.centroids[2], 1.304, 0.02);
}

TEST(VariationTest, DeterministicGivenSeed) {
  const VariationModel model = VariationModel::quartz_default();
  util::Rng rng1(7);
  util::Rng rng2(7);
  EXPECT_EQ(model.generate(rng1), model.generate(rng2));
}

TEST(VariationTest, CustomComponentsRespected) {
  const VariationModel model({{10, 2.0, 0.0}});
  util::Rng rng(1);
  const std::vector<double> etas = model.generate(rng);
  ASSERT_EQ(etas.size(), 10u);
  for (double eta : etas) {
    EXPECT_DOUBLE_EQ(eta, 2.0);
  }
}

TEST(VariationTest, EtasClampedPositive) {
  // A pathological component whose distribution dips below zero.
  const VariationModel model({{100, 0.01, 1.0}});
  util::Rng rng(5);
  for (double eta : model.generate(rng)) {
    EXPECT_GE(eta, 0.05);
  }
}

TEST(VariationTest, InvalidComponentsRejected) {
  EXPECT_THROW(VariationModel({}), ps::InvalidArgument);
  EXPECT_THROW(VariationModel({{0, 1.0, 0.1}}), ps::InvalidArgument);
  EXPECT_THROW(VariationModel({{10, -1.0, 0.1}}), ps::InvalidArgument);
  EXPECT_THROW(VariationModel({{10, 1.0, -0.1}}), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::hw
