#include <gtest/gtest.h>

#include "hw/msr.hpp"
#include "util/error.hpp"

namespace ps::hw {
namespace {

TEST(MsrAllowlistTest, ParsesAddressMaskPairs) {
  const auto entries = parse_msr_allowlist(
      "0x606 0x0\n"
      "0x610 0x00FFFFFFFFFFFFFF\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].address, 0x606u);
  EXPECT_EQ(entries[0].write_mask, 0u);
  EXPECT_EQ(entries[1].address, 0x610u);
  EXPECT_EQ(entries[1].write_mask, 0x00ffffffffffffffULL);
}

TEST(MsrAllowlistTest, IgnoresCommentsAndBlankLines) {
  const auto entries = parse_msr_allowlist(
      "# msr-safe allowlist\n"
      "\n"
      "0x611 0x0   # MSR_PKG_ENERGY_STATUS\n"
      "   \n"
      "# trailing comment\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].address, 0x611u);
}

TEST(MsrAllowlistTest, AcceptsDecimalAddresses) {
  const auto entries = parse_msr_allowlist("1542 7\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].address, 1542u);
  EXPECT_EQ(entries[0].write_mask, 7u);
}

TEST(MsrAllowlistTest, EmptyInputGivesEmptyList) {
  EXPECT_TRUE(parse_msr_allowlist("").empty());
  EXPECT_TRUE(parse_msr_allowlist("# only comments\n").empty());
}

TEST(MsrAllowlistTest, RejectsMalformedLines) {
  EXPECT_THROW(static_cast<void>(parse_msr_allowlist("0x606\n")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_msr_allowlist("0x606 0x0 extra\n")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_msr_allowlist("hello world\n")),
               ps::InvalidArgument);
}

TEST(MsrAllowlistTest, RejectsDuplicateAddresses) {
  EXPECT_THROW(
      static_cast<void>(parse_msr_allowlist("0x606 0x0\n0x606 0x1\n")),
      ps::InvalidArgument);
}

TEST(MsrAllowlistTest, ParsedListDrivesAnMsrFile) {
  MsrFile msrs(parse_msr_allowlist("0x610 0xFFFF\n0x611 0x0\n"));
  EXPECT_TRUE(msrs.is_writable(0x610));
  EXPECT_FALSE(msrs.is_writable(0x611));
  EXPECT_TRUE(msrs.is_readable(0x611));
  EXPECT_FALSE(msrs.is_readable(0x606));
  msrs.write(0x610, 0x1234);
  EXPECT_EQ(msrs.read(0x610), 0x1234u);
}

}  // namespace
}  // namespace ps::hw
