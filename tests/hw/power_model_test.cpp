#include "hw/power_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::hw {
namespace {

TEST(PowerModelTest, PowerAtMaxFrequencyIsIdlePlusDynamic) {
  const SocketPowerModel model{SocketPowerParams{}};
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(model.power(p.max_frequency_ghz, 1.0, 1.0),
                   p.idle_watts + p.max_dynamic_watts);
}

TEST(PowerModelTest, PowerAtZeroActivityIsIdle) {
  const SocketPowerModel model{SocketPowerParams{}};
  EXPECT_DOUBLE_EQ(model.power(2.0, 0.0, 1.0),
                   model.params().idle_watts);
}

TEST(PowerModelTest, PowerIsMonotoneInFrequency) {
  const SocketPowerModel model{SocketPowerParams{}};
  double previous = 0.0;
  for (double f = 1.2; f <= 2.6; f += 0.1) {
    const double power = model.power(f, 1.0, 1.0);
    EXPECT_GT(power, previous);
    previous = power;
  }
}

TEST(PowerModelTest, PowerScalesWithEta) {
  const SocketPowerModel model{SocketPowerParams{}};
  const double nominal = model.power(2.0, 1.0, 1.0);
  const double leaky = model.power(2.0, 1.0, 1.3);
  const double efficient = model.power(2.0, 1.0, 0.8);
  EXPECT_GT(leaky, nominal);
  EXPECT_LT(efficient, nominal);
}

TEST(PowerModelTest, FrequencyClampedToRange) {
  const SocketPowerModel model{SocketPowerParams{}};
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(model.power(10.0, 1.0, 1.0),
                   model.power(p.max_frequency_ghz, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(model.power(0.1, 1.0, 1.0),
                   model.power(p.min_frequency_ghz, 1.0, 1.0));
}

TEST(PowerModelTest, FrequencyAtCapInvertsPower) {
  const SocketPowerModel model{SocketPowerParams{}};
  for (double cap : {70.0, 85.0, 100.0}) {
    const double f = model.frequency_at_cap(cap, 1.0, 1.0);
    EXPECT_NEAR(model.power(f, 1.0, 1.0), cap, 1e-9) << "cap=" << cap;
  }
}

TEST(PowerModelTest, GenerousCapYieldsMaxFrequency) {
  const SocketPowerModel model{SocketPowerParams{}};
  EXPECT_DOUBLE_EQ(model.frequency_at_cap(500.0, 1.0, 1.0),
                   model.params().max_frequency_ghz);
}

TEST(PowerModelTest, ImpossibleCapYieldsMinFrequency) {
  const SocketPowerModel model{SocketPowerParams{}};
  EXPECT_DOUBLE_EQ(model.frequency_at_cap(10.0, 1.0, 1.0),
                   model.params().min_frequency_ghz);
}

TEST(PowerModelTest, ZeroActivityIsUnconstrained) {
  const SocketPowerModel model{SocketPowerParams{}};
  EXPECT_DOUBLE_EQ(model.frequency_at_cap(60.0, 0.0, 1.0),
                   model.params().max_frequency_ghz);
}

TEST(PowerModelTest, LeakyPartsRunSlowerUnderSameCap) {
  const SocketPowerModel model{SocketPowerParams{}};
  const double f_nominal = model.frequency_at_cap(70.0, 1.0, 1.0);
  const double f_leaky = model.frequency_at_cap(70.0, 1.0, 1.3);
  EXPECT_LT(f_leaky, f_nominal);
}

TEST(PowerModelTest, PowerAtCapNeverExceedsCapInRange) {
  const SocketPowerModel model{SocketPowerParams{}};
  const auto& p = model.params();
  const double floor_power = model.power(p.min_frequency_ghz, 1.0, 1.0);
  for (double cap = floor_power; cap <= 130.0; cap += 2.5) {
    EXPECT_LE(model.power_at_cap(cap, 1.0, 1.0), cap + 1e-9);
  }
}

TEST(PowerModelTest, Fig6Calibration70WattCapGives1p8GHz) {
  // The paper's Fig. 6: medium-cluster nodes achieve ~1.8 GHz under a
  // 70 W package cap running the most power-hungry configuration.
  const SocketPowerModel model{SocketPowerParams{}};
  EXPECT_NEAR(model.frequency_at_cap(70.0, 1.0, 1.0), 1.8, 0.02);
}

TEST(PowerModelTest, ActivityOutOfRangeThrows) {
  const SocketPowerModel model{SocketPowerParams{}};
  EXPECT_THROW(static_cast<void>(model.power(2.0, -0.1, 1.0)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(model.power(2.0, 1.1, 1.0)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(model.frequency_at_cap(70.0, 2.0, 1.0)),
               ps::InvalidArgument);
}

TEST(PowerModelTest, BadParamsRejected) {
  SocketPowerParams params;
  params.idle_watts = -1.0;
  EXPECT_THROW(SocketPowerModel{params}, ps::InvalidArgument);
  params = {};
  params.min_frequency_ghz = 3.0;  // above max
  EXPECT_THROW(SocketPowerModel{params}, ps::InvalidArgument);
  params = {};
  params.exponent = 0.5;
  EXPECT_THROW(SocketPowerModel{params}, ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::hw
