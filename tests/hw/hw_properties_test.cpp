// Property-style sweeps over the hardware model: invariants that must
// hold across the whole (intensity x width x cap x eta) space the
// experiments explore.
#include <gtest/gtest.h>

#include <tuple>

#include "hw/node.hpp"

namespace ps::hw {
namespace {

class NodePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<double, VectorWidth, double>> {};

TEST_P(NodePropertyTest, PowerNeverExceedsCap) {
  const auto [intensity, width, eta] = GetParam();
  NodeModel node(0, eta);
  for (double cap = node.min_cap(); cap <= node.tdp(); cap += 8.0) {
    const PhaseResult result =
        node.preview_compute(1.0, intensity, width, cap);
    EXPECT_LE(result.power_watts, cap + 1e-6)
        << "cap=" << cap;
  }
}

TEST_P(NodePropertyTest, TimeMonotoneNonIncreasingInCap) {
  const auto [intensity, width, eta] = GetParam();
  NodeModel node(0, eta);
  double previous_seconds = 1e300;
  for (double cap = node.min_cap(); cap <= node.tdp(); cap += 4.0) {
    const PhaseResult result =
        node.preview_compute(1.0, intensity, width, cap);
    EXPECT_LE(result.seconds, previous_seconds * (1.0 + 1e-9))
        << "cap=" << cap;
    previous_seconds = result.seconds;
  }
}

TEST_P(NodePropertyTest, FrequencyMonotoneNonDecreasingInCap) {
  const auto [intensity, width, eta] = GetParam();
  NodeModel node(0, eta);
  double previous_frequency = 0.0;
  for (double cap = node.min_cap(); cap <= node.tdp(); cap += 4.0) {
    const PhaseResult result =
        node.preview_compute(1.0, intensity, width, cap);
    EXPECT_GE(result.frequency_ghz, previous_frequency - 1e-9)
        << "cap=" << cap;
    previous_frequency = result.frequency_ghz;
  }
}

TEST_P(NodePropertyTest, EnergyEqualsPowerTimesTime) {
  const auto [intensity, width, eta] = GetParam();
  NodeModel node(0, eta);
  for (double cap : {node.min_cap(), 190.0, node.tdp()}) {
    const PhaseResult result =
        node.preview_compute(2.0, intensity, width, cap);
    EXPECT_NEAR(result.energy_joules,
                result.power_watts * result.seconds, 1e-9);
  }
}

TEST_P(NodePropertyTest, UtilizationsDescribeARooflineState) {
  const auto [intensity, width, eta] = GetParam();
  NodeModel node(0, eta);
  for (double cap : {node.min_cap(), 180.0, node.tdp()}) {
    const PhaseResult result =
        node.preview_compute(1.0, intensity, width, cap);
    EXPECT_GE(result.cpu_utilization, 0.0);
    EXPECT_LE(result.cpu_utilization, 1.0 + 1e-9);
    EXPECT_GE(result.mem_utilization, 0.0);
    EXPECT_LE(result.mem_utilization, 1.0 + 1e-9);
    // One of the two pipelines is always the bottleneck.
    EXPECT_GE(std::max(result.cpu_utilization, result.mem_utilization),
              1.0 - 1e-9);
  }
}

TEST_P(NodePropertyTest, MoreWorkTakesProportionallyLonger) {
  const auto [intensity, width, eta] = GetParam();
  NodeModel node(0, eta);
  const PhaseResult one =
      node.preview_compute(1.0, intensity, width, 200.0);
  const PhaseResult three =
      node.preview_compute(3.0, intensity, width, 200.0);
  EXPECT_NEAR(three.seconds, 3.0 * one.seconds, one.seconds * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    IntensityWidthEta, NodePropertyTest,
    ::testing::Combine(
        ::testing::Values(0.0, 0.25, 2.0, 8.0, 32.0),
        ::testing::Values(VectorWidth::kScalar, VectorWidth::kXmm128,
                          VectorWidth::kYmm256),
        ::testing::Values(0.79, 1.0, 1.3)),
    [](const auto& info) {
      std::string name = "I";
      name += std::to_string(
          static_cast<int>(std::get<0>(info.param) * 100.0));
      name += "_";
      name += to_string(std::get<1>(info.param));
      name += "_eta";
      name += std::to_string(
          static_cast<int>(std::get<2>(info.param) * 100.0));
      return name;
    });

}  // namespace
}  // namespace ps::hw
