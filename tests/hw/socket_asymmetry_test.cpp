// Heterogeneous packages: the two sockets of one node leak differently,
// and the cap-split policy decides who pays for it.
#include <gtest/gtest.h>

#include "hw/node.hpp"
#include "util/error.hpp"

namespace ps::hw {
namespace {

NodeParams split_params(CapSplitPolicy policy) {
  NodeParams params;
  params.cap_split = policy;
  return params;
}

TEST(SocketAsymmetryTest, EtaAccessorsExposeBothPackages) {
  NodeModel node(0, 0.9, 1.2);
  EXPECT_DOUBLE_EQ(node.eta_of(0), 0.9);
  EXPECT_DOUBLE_EQ(node.eta_of(1), 1.2);
  EXPECT_DOUBLE_EQ(node.eta(), 1.05);
  EXPECT_THROW(static_cast<void>(node.eta_of(2)), ps::InvalidArgument);
  EXPECT_THROW(NodeModel(0, 0.0, 1.0), ps::InvalidArgument);
}

TEST(SocketAsymmetryTest, SymmetricNodeUnaffectedByPolicy) {
  NodeModel even(0, 1.0, 1.0, split_params(CapSplitPolicy::kEven));
  NodeModel aware(1, 1.0, 1.0,
                  split_params(CapSplitPolicy::kEfficiencyAware));
  even.set_power_cap(190.0);
  aware.set_power_cap(190.0);
  EXPECT_DOUBLE_EQ(even.package(0).power_limit(),
                   aware.package(0).power_limit());
  const PhaseResult a =
      even.preview_compute(1.0, 8.0, VectorWidth::kYmm256, 190.0);
  const PhaseResult b =
      aware.preview_compute(1.0, 8.0, VectorWidth::kYmm256, 190.0);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(SocketAsymmetryTest, LeakyPackagePacesAnEvenSplit) {
  NodeModel uniform(0, 1.0, 1.0, split_params(CapSplitPolicy::kEven));
  NodeModel skewed(1, 0.85, 1.15, split_params(CapSplitPolicy::kEven));
  // Same mean eta, same node cap: the skewed node is slower because its
  // leaky package throttles first under the even split.
  const PhaseResult u =
      uniform.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 190.0);
  const PhaseResult s =
      skewed.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 190.0);
  EXPECT_GT(s.seconds, u.seconds * 1.02);
  EXPECT_LT(s.frequency_ghz, u.frequency_ghz - 0.05);
}

TEST(SocketAsymmetryTest, EfficiencyAwareSplitRecoversThePace) {
  NodeModel even(0, 0.85, 1.15, split_params(CapSplitPolicy::kEven));
  NodeModel aware(1, 0.85, 1.15,
                  split_params(CapSplitPolicy::kEfficiencyAware));
  const PhaseResult slow =
      even.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 190.0);
  const PhaseResult fast =
      aware.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 190.0);
  EXPECT_LT(fast.seconds, slow.seconds * 0.99);
  EXPECT_GT(fast.frequency_ghz, slow.frequency_ghz);
}

TEST(SocketAsymmetryTest, AwareSplitGivesLeakyPackageMoreBudget) {
  NodeModel node(0, 0.85, 1.15,
                 split_params(CapSplitPolicy::kEfficiencyAware));
  node.set_power_cap(190.0);
  // eta1 > eta0 => package 1 needs more watts for the same frequency.
  EXPECT_GT(node.package(1).power_limit(),
            node.package(0).power_limit() + 5.0);
  // The split still sums to the package share of the node cap.
  EXPECT_NEAR(node.package(0).power_limit() +
                  node.package(1).power_limit(),
              190.0 - node.params().dram_watts, 0.5);
}

TEST(SocketAsymmetryTest, SplitRespectsFirmwareClamps) {
  // Extreme skew: the computed split would dip below the package floor;
  // firmware clamps it back and the node cap overshoots slightly, as on
  // real hardware.
  NodeModel node(0, 0.3, 2.5,
                 split_params(CapSplitPolicy::kEfficiencyAware));
  const double applied = node.set_power_cap(155.0);
  EXPECT_GE(node.package(0).power_limit(), 68.0 - 1e-9);
  EXPECT_GE(applied, 155.0 - 1e-9);
}

TEST(SocketAsymmetryTest, PowerStillRespectsTheNodeCap) {
  NodeModel node(0, 0.85, 1.15,
                 split_params(CapSplitPolicy::kEfficiencyAware));
  for (double cap : {160.0, 190.0, 220.0}) {
    node.set_power_cap(cap);
    const PhaseResult result =
        node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
    EXPECT_LE(result.power_watts, cap + 1.0) << "cap=" << cap;
  }
}

}  // namespace
}  // namespace ps::hw
