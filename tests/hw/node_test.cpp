#include "hw/node.hpp"

#include <gtest/gtest.h>

#include "hw/quartz_spec.hpp"
#include "util/error.hpp"

namespace ps::hw {
namespace {

NodeModel make_node(double eta = 1.0) { return NodeModel(0, eta); }

TEST(NodeTest, CapLimitsMatchQuartzSpec) {
  NodeModel node = make_node();
  EXPECT_DOUBLE_EQ(node.tdp(), 2.0 * QuartzSpec::kTdpPerSocketW +
                                   QuartzSpec::kDramPowerPerNodeW);
  EXPECT_DOUBLE_EQ(node.min_cap(), 2.0 * QuartzSpec::kMinRaplPerSocketW +
                                       QuartzSpec::kDramPowerPerNodeW);
}

TEST(NodeTest, SetCapSplitsAcrossPackages) {
  NodeModel node = make_node();
  node.set_power_cap(216.0);
  // (216 - 16 dram) / 2 = 100 per package.
  EXPECT_DOUBLE_EQ(node.package(0).power_limit(), 100.0);
  EXPECT_DOUBLE_EQ(node.package(1).power_limit(), 100.0);
  EXPECT_DOUBLE_EQ(node.power_cap(), 216.0);
}

TEST(NodeTest, CapBelowFloorClampsUp) {
  NodeModel node = make_node();
  node.set_power_cap(100.0);
  EXPECT_DOUBLE_EQ(node.power_cap(), node.min_cap());
}

TEST(NodeTest, UncappedComputeRunsAtMaxFrequency) {
  NodeModel node = make_node();
  node.set_power_cap(node.tdp());
  const PhaseResult result =
      node.run_compute(1.0, 0.25, VectorWidth::kYmm256);
  EXPECT_DOUBLE_EQ(result.frequency_ghz,
                   node.params().power.max_frequency_ghz);
}

TEST(NodeTest, PowerDrawRespectsCap) {
  NodeModel node = make_node();
  for (double cap : {160.0, 180.0, 200.0, 220.0}) {
    node.set_power_cap(cap);
    const PhaseResult result =
        node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
    EXPECT_LE(result.power_watts, cap + 0.5) << "cap=" << cap;
  }
}

TEST(NodeTest, TighterCapSlowsComputeBoundWork) {
  NodeModel node = make_node();
  const PhaseResult fast =
      node.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 230.0);
  const PhaseResult slow =
      node.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 170.0);
  EXPECT_GT(slow.seconds, fast.seconds);
  EXPECT_LT(slow.frequency_ghz, fast.frequency_ghz);
}

TEST(NodeTest, TighterCapBarelySlowsMemoryBoundWork) {
  NodeModel node = make_node();
  const PhaseResult fast =
      node.preview_compute(1.0, 0.25, VectorWidth::kYmm256, 230.0);
  const PhaseResult slow =
      node.preview_compute(1.0, 0.25, VectorWidth::kYmm256, 170.0);
  const double slowdown = slow.seconds / fast.seconds - 1.0;
  EXPECT_GT(slowdown, 0.0);
  EXPECT_LT(slowdown, 0.10);  // bandwidth floor keeps the hit small
}

TEST(NodeTest, Fig4CalibrationUncappedPowerBand) {
  // Paper Fig. 4: uncapped node power spans ~209-232 W across the
  // intensity sweep, peaking in the mid-intensity range.
  NodeModel node = make_node();
  double peak_power = 0.0;
  double peak_intensity = 0.0;
  for (double intensity : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const PhaseResult result = node.preview_compute(
        1.0, intensity, VectorWidth::kYmm256, node.tdp());
    EXPECT_GE(result.power_watts, 205.0) << "I=" << intensity;
    EXPECT_LE(result.power_watts, 235.0) << "I=" << intensity;
    if (result.power_watts > peak_power) {
      peak_power = result.power_watts;
      peak_intensity = intensity;
    }
  }
  EXPECT_GE(peak_intensity, 4.0);
  EXPECT_LE(peak_intensity, 16.0);
}

TEST(NodeTest, EnergyEqualsPowerTimesTime) {
  NodeModel node = make_node();
  node.set_power_cap(200.0);
  const PhaseResult result =
      node.run_compute(2.0, 4.0, VectorWidth::kYmm256);
  EXPECT_NEAR(result.energy_joules, result.power_watts * result.seconds,
              1e-9);
}

TEST(NodeTest, RaplCountersTrackConsumedEnergy) {
  NodeModel node = make_node();
  node.set_power_cap(node.tdp());
  double expected = 0.0;
  for (int i = 0; i < 10; ++i) {
    expected += node.run_compute(1.0, 8.0, VectorWidth::kYmm256)
                    .energy_joules;
    expected += node.run_poll(0.01).energy_joules;
  }
  EXPECT_NEAR(node.read_energy_joules(), expected, 0.01);
}

TEST(NodeTest, PollPowerBelowCapAndAboveIdle) {
  NodeModel node = make_node();
  const double idle_floor = 2.0 * node.params().power.idle_watts +
                            node.params().dram_watts;
  for (double cap : {160.0, 200.0, 240.0}) {
    const double power = node.poll_power(cap);
    EXPECT_LE(power, cap + 0.5);
    EXPECT_GT(power, idle_floor);
  }
}

TEST(NodeTest, PollDrawsNearStreamingPowerWhenUncapped) {
  NodeModel node = make_node();
  const double poll = node.poll_power(node.tdp());
  const PhaseResult stream =
      node.preview_compute(1.0, 0.25, VectorWidth::kYmm256, node.tdp());
  EXPECT_NEAR(poll, stream.power_watts, 6.0);
}

TEST(NodeTest, LeakyNodeSlowerUnderSameCap) {
  NodeModel nominal(0, 1.0);
  NodeModel leaky(1, 1.3);
  const PhaseResult a =
      nominal.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 180.0);
  const PhaseResult b =
      leaky.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 180.0);
  EXPECT_GT(a.frequency_ghz, b.frequency_ghz);
}

TEST(NodeTest, PreviewDoesNotMutateState) {
  NodeModel node = make_node();
  node.set_power_cap(200.0);
  static_cast<void>(
      node.preview_compute(1.0, 8.0, VectorWidth::kYmm256, 160.0));
  EXPECT_DOUBLE_EQ(node.power_cap(), 200.0);
  EXPECT_NEAR(node.read_energy_joules(), 0.0, 1e-9);
}

TEST(NodeTest, InvalidInputsThrow) {
  NodeModel node = make_node();
  EXPECT_THROW(node.set_power_cap(0.0), ps::InvalidArgument);
  EXPECT_THROW(node.set_power_cap(10.0), ps::InvalidArgument);  // < dram
  EXPECT_THROW(node.run_poll(-1.0), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(node.preview_compute(
                   1.0, 1.0, VectorWidth::kYmm256, 5.0)),
               ps::InvalidArgument);
  EXPECT_THROW(NodeModel(0, 0.0), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(node.package(2)), ps::InvalidArgument);
}


void expect_same_phase(const PhaseResult& a, const PhaseResult& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.frequency_ghz, b.frequency_ghz);
  EXPECT_EQ(a.power_watts, b.power_watts);
  EXPECT_EQ(a.gflops, b.gflops);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.cpu_utilization, b.cpu_utilization);
  EXPECT_EQ(a.mem_utilization, b.mem_utilization);
}

TEST(NodeSolveCacheTest, CachedAndUncachedRunsAreBitIdentical) {
  // Twin nodes, one with the solve memo disabled: any divergence means
  // the cache served a stale or differently-rounded solution.
  NodeModel cached = make_node();
  NodeModel uncached = make_node();
  uncached.set_solve_cache_enabled(false);
  const double caps[] = {240.0, 190.0, 190.0, 150.0, 240.0, 190.0};
  for (const double cap : caps) {
    cached.set_power_cap(cap);
    uncached.set_power_cap(cap);
    for (int repeat = 0; repeat < 3; ++repeat) {
      expect_same_phase(cached.run_compute(1.0, 8.0, VectorWidth::kYmm256),
                        uncached.run_compute(1.0, 8.0, VectorWidth::kYmm256));
      expect_same_phase(cached.run_poll(0.25), uncached.run_poll(0.25));
    }
  }
  EXPECT_EQ(cached.read_energy_joules(), uncached.read_energy_joules());
}

TEST(NodeSolveCacheTest, CacheMissesOnPhaseShapeChange) {
  NodeModel node = make_node();
  node.set_power_cap(190.0);
  const PhaseResult wide = node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
  const PhaseResult narrow = node.run_compute(1.0, 8.0, VectorWidth::kXmm128);
  EXPECT_NE(wide.seconds, narrow.seconds);
  // Returning to the first shape re-solves (single-entry cache) but must
  // land on the exact same solution.
  expect_same_phase(wide, node.run_compute(1.0, 8.0, VectorWidth::kYmm256));
}

TEST(NodeSolveCacheTest, CacheInvalidatesOnCapAndFrequencyChanges) {
  NodeModel node = make_node();
  node.set_power_cap(240.0);
  const PhaseResult uncapped = node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
  node.set_power_cap(160.0);
  const PhaseResult capped = node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
  EXPECT_GT(capped.seconds, uncapped.seconds);
  node.set_frequency_cap(1.5);
  const PhaseResult dvfs = node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
  EXPECT_LE(dvfs.frequency_ghz, 1.5 + 1e-12);
  EXPECT_GT(dvfs.seconds, capped.seconds);
}

TEST(NodeSolveCacheTest, OutOfBandPackageWriteMissesTheCache) {
  // PlatformIO programs package limits directly, bypassing
  // set_power_cap. The memo key samples the live registers, so the next
  // solve must see the new limit instead of serving the stale solution.
  NodeModel node = make_node();
  node.set_power_cap(240.0);
  static_cast<void>(node.run_compute(1.0, 8.0, VectorWidth::kYmm256));
  node.package(0).set_power_limit(70.0);
  node.package(1).set_power_limit(70.0);
  NodeModel fresh = make_node();
  fresh.set_power_cap(240.0);
  fresh.package(0).set_power_limit(70.0);
  fresh.package(1).set_power_limit(70.0);
  expect_same_phase(node.run_compute(1.0, 8.0, VectorWidth::kYmm256),
                    fresh.run_compute(1.0, 8.0, VectorWidth::kYmm256));
}

TEST(NodeSolveCacheTest, RunComputeEqualsSolutionPlusAccrue) {
  NodeModel split = make_node();
  NodeModel fused = make_node();
  split.set_power_cap(190.0);
  fused.set_power_cap(190.0);
  const PhaseResult solution =
      split.compute_solution(1.0, 8.0, VectorWidth::kYmm256);
  split.accrue_phase(solution);
  expect_same_phase(solution,
                    fused.run_compute(1.0, 8.0, VectorWidth::kYmm256));
  EXPECT_EQ(split.read_energy_joules(), fused.read_energy_joules());
}

TEST(NodeSolveCacheTest, PollMemoScalesEnergyPerCall) {
  NodeModel cached = make_node();
  NodeModel uncached = make_node();
  uncached.set_solve_cache_enabled(false);
  cached.set_power_cap(170.0);
  uncached.set_power_cap(170.0);
  for (const double seconds : {0.5, 0.125, 0.0, 2.0}) {
    const PhaseResult a = cached.run_poll(seconds);
    const PhaseResult b = uncached.run_poll(seconds);
    expect_same_phase(a, b);
    EXPECT_EQ(a.energy_joules, a.power_watts * seconds);
  }
  EXPECT_EQ(cached.read_energy_joules(), uncached.read_energy_joules());
}

TEST(NodeTest, FixedPointSolutionIsSelfConsistent) {
  NodeModel node = make_node();
  const PhaseResult result =
      node.preview_compute(1.0, 8.0, VectorWidth::kYmm256, 190.0);
  // Utilizations must describe a valid roofline state.
  EXPECT_LE(result.cpu_utilization, 1.0);
  EXPECT_LE(result.mem_utilization, 1.0);
  EXPECT_GE(std::max(result.cpu_utilization, result.mem_utilization),
            1.0 - 1e-9);
}

}  // namespace
}  // namespace ps::hw
