#include "hw/node.hpp"

#include <gtest/gtest.h>

#include "hw/quartz_spec.hpp"
#include "util/error.hpp"

namespace ps::hw {
namespace {

NodeModel make_node(double eta = 1.0) { return NodeModel(0, eta); }

TEST(NodeTest, CapLimitsMatchQuartzSpec) {
  NodeModel node = make_node();
  EXPECT_DOUBLE_EQ(node.tdp(), 2.0 * QuartzSpec::kTdpPerSocketW +
                                   QuartzSpec::kDramPowerPerNodeW);
  EXPECT_DOUBLE_EQ(node.min_cap(), 2.0 * QuartzSpec::kMinRaplPerSocketW +
                                       QuartzSpec::kDramPowerPerNodeW);
}

TEST(NodeTest, SetCapSplitsAcrossPackages) {
  NodeModel node = make_node();
  node.set_power_cap(216.0);
  // (216 - 16 dram) / 2 = 100 per package.
  EXPECT_DOUBLE_EQ(node.package(0).power_limit(), 100.0);
  EXPECT_DOUBLE_EQ(node.package(1).power_limit(), 100.0);
  EXPECT_DOUBLE_EQ(node.power_cap(), 216.0);
}

TEST(NodeTest, CapBelowFloorClampsUp) {
  NodeModel node = make_node();
  node.set_power_cap(100.0);
  EXPECT_DOUBLE_EQ(node.power_cap(), node.min_cap());
}

TEST(NodeTest, UncappedComputeRunsAtMaxFrequency) {
  NodeModel node = make_node();
  node.set_power_cap(node.tdp());
  const PhaseResult result =
      node.run_compute(1.0, 0.25, VectorWidth::kYmm256);
  EXPECT_DOUBLE_EQ(result.frequency_ghz,
                   node.params().power.max_frequency_ghz);
}

TEST(NodeTest, PowerDrawRespectsCap) {
  NodeModel node = make_node();
  for (double cap : {160.0, 180.0, 200.0, 220.0}) {
    node.set_power_cap(cap);
    const PhaseResult result =
        node.run_compute(1.0, 8.0, VectorWidth::kYmm256);
    EXPECT_LE(result.power_watts, cap + 0.5) << "cap=" << cap;
  }
}

TEST(NodeTest, TighterCapSlowsComputeBoundWork) {
  NodeModel node = make_node();
  const PhaseResult fast =
      node.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 230.0);
  const PhaseResult slow =
      node.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 170.0);
  EXPECT_GT(slow.seconds, fast.seconds);
  EXPECT_LT(slow.frequency_ghz, fast.frequency_ghz);
}

TEST(NodeTest, TighterCapBarelySlowsMemoryBoundWork) {
  NodeModel node = make_node();
  const PhaseResult fast =
      node.preview_compute(1.0, 0.25, VectorWidth::kYmm256, 230.0);
  const PhaseResult slow =
      node.preview_compute(1.0, 0.25, VectorWidth::kYmm256, 170.0);
  const double slowdown = slow.seconds / fast.seconds - 1.0;
  EXPECT_GT(slowdown, 0.0);
  EXPECT_LT(slowdown, 0.10);  // bandwidth floor keeps the hit small
}

TEST(NodeTest, Fig4CalibrationUncappedPowerBand) {
  // Paper Fig. 4: uncapped node power spans ~209-232 W across the
  // intensity sweep, peaking in the mid-intensity range.
  NodeModel node = make_node();
  double peak_power = 0.0;
  double peak_intensity = 0.0;
  for (double intensity : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const PhaseResult result = node.preview_compute(
        1.0, intensity, VectorWidth::kYmm256, node.tdp());
    EXPECT_GE(result.power_watts, 205.0) << "I=" << intensity;
    EXPECT_LE(result.power_watts, 235.0) << "I=" << intensity;
    if (result.power_watts > peak_power) {
      peak_power = result.power_watts;
      peak_intensity = intensity;
    }
  }
  EXPECT_GE(peak_intensity, 4.0);
  EXPECT_LE(peak_intensity, 16.0);
}

TEST(NodeTest, EnergyEqualsPowerTimesTime) {
  NodeModel node = make_node();
  node.set_power_cap(200.0);
  const PhaseResult result =
      node.run_compute(2.0, 4.0, VectorWidth::kYmm256);
  EXPECT_NEAR(result.energy_joules, result.power_watts * result.seconds,
              1e-9);
}

TEST(NodeTest, RaplCountersTrackConsumedEnergy) {
  NodeModel node = make_node();
  node.set_power_cap(node.tdp());
  double expected = 0.0;
  for (int i = 0; i < 10; ++i) {
    expected += node.run_compute(1.0, 8.0, VectorWidth::kYmm256)
                    .energy_joules;
    expected += node.run_poll(0.01).energy_joules;
  }
  EXPECT_NEAR(node.read_energy_joules(), expected, 0.01);
}

TEST(NodeTest, PollPowerBelowCapAndAboveIdle) {
  NodeModel node = make_node();
  const double idle_floor = 2.0 * node.params().power.idle_watts +
                            node.params().dram_watts;
  for (double cap : {160.0, 200.0, 240.0}) {
    const double power = node.poll_power(cap);
    EXPECT_LE(power, cap + 0.5);
    EXPECT_GT(power, idle_floor);
  }
}

TEST(NodeTest, PollDrawsNearStreamingPowerWhenUncapped) {
  NodeModel node = make_node();
  const double poll = node.poll_power(node.tdp());
  const PhaseResult stream =
      node.preview_compute(1.0, 0.25, VectorWidth::kYmm256, node.tdp());
  EXPECT_NEAR(poll, stream.power_watts, 6.0);
}

TEST(NodeTest, LeakyNodeSlowerUnderSameCap) {
  NodeModel nominal(0, 1.0);
  NodeModel leaky(1, 1.3);
  const PhaseResult a =
      nominal.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 180.0);
  const PhaseResult b =
      leaky.preview_compute(1.0, 32.0, VectorWidth::kYmm256, 180.0);
  EXPECT_GT(a.frequency_ghz, b.frequency_ghz);
}

TEST(NodeTest, PreviewDoesNotMutateState) {
  NodeModel node = make_node();
  node.set_power_cap(200.0);
  static_cast<void>(
      node.preview_compute(1.0, 8.0, VectorWidth::kYmm256, 160.0));
  EXPECT_DOUBLE_EQ(node.power_cap(), 200.0);
  EXPECT_NEAR(node.read_energy_joules(), 0.0, 1e-9);
}

TEST(NodeTest, InvalidInputsThrow) {
  NodeModel node = make_node();
  EXPECT_THROW(node.set_power_cap(0.0), ps::InvalidArgument);
  EXPECT_THROW(node.set_power_cap(10.0), ps::InvalidArgument);  // < dram
  EXPECT_THROW(node.run_poll(-1.0), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(node.preview_compute(
                   1.0, 1.0, VectorWidth::kYmm256, 5.0)),
               ps::InvalidArgument);
  EXPECT_THROW(NodeModel(0, 0.0), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(node.package(2)), ps::InvalidArgument);
}

TEST(NodeTest, FixedPointSolutionIsSelfConsistent) {
  NodeModel node = make_node();
  const PhaseResult result =
      node.preview_compute(1.0, 8.0, VectorWidth::kYmm256, 190.0);
  // Utilizations must describe a valid roofline state.
  EXPECT_LE(result.cpu_utilization, 1.0);
  EXPECT_LE(result.mem_utilization, 1.0);
  EXPECT_GE(std::max(result.cpu_utilization, result.mem_utilization),
            1.0 - 1e-9);
}

}  // namespace
}  // namespace ps::hw
