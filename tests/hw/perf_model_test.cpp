#include "hw/perf_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::hw {
namespace {

TEST(VectorWidthTest, FlopsPerCycleDoublesWithWidth) {
  EXPECT_DOUBLE_EQ(flops_per_cycle(VectorWidth::kScalar), 4.0);
  EXPECT_DOUBLE_EQ(flops_per_cycle(VectorWidth::kXmm128), 8.0);
  EXPECT_DOUBLE_EQ(flops_per_cycle(VectorWidth::kYmm256), 16.0);
}

TEST(VectorWidthTest, NamesAreStable) {
  EXPECT_EQ(to_string(VectorWidth::kScalar), "scalar");
  EXPECT_EQ(to_string(VectorWidth::kXmm128), "xmm");
  EXPECT_EQ(to_string(VectorWidth::kYmm256), "ymm");
}

TEST(RooflineTest, PeakScalesLinearlyWithFrequency) {
  const RooflineModel model{RooflineParams{}};
  const double p1 = model.peak_gflops(VectorWidth::kYmm256, 1.3);
  const double p2 = model.peak_gflops(VectorWidth::kYmm256, 2.6);
  EXPECT_NEAR(p2, 2.0 * p1, 1e-9);
}

TEST(RooflineTest, PeakMatchesCoreCount) {
  RooflineParams params;
  params.active_cores = 34;
  const RooflineModel model{params};
  EXPECT_DOUBLE_EQ(model.peak_gflops(VectorWidth::kYmm256, 2.6),
                   34.0 * 16.0 * 2.6);
}

TEST(RooflineTest, BandwidthWeaklyFrequencyDependent) {
  const RooflineModel model{RooflineParams{}};
  const double full = model.memory_bandwidth_gbs(2.6);
  const double slow = model.memory_bandwidth_gbs(1.3);
  EXPECT_DOUBLE_EQ(full, model.params().memory_bandwidth_gbs);
  // At half frequency the floor guarantees at least 70% + half the rest.
  EXPECT_NEAR(slow / full, 0.7 + 0.3 * 0.5, 1e-9);
}

TEST(RooflineTest, RidgeIntensitySeparatesRegimes) {
  const RooflineModel model{RooflineParams{}};
  const double ridge = model.ridge_intensity(VectorWidth::kYmm256, 2.6);
  const PhaseProfile below =
      model.profile(1.0, ridge * 0.5, VectorWidth::kYmm256, 2.6);
  const PhaseProfile above =
      model.profile(1.0, ridge * 2.0, VectorWidth::kYmm256, 2.6);
  EXPECT_DOUBLE_EQ(below.mem_utilization, 1.0);
  EXPECT_LT(below.cpu_utilization, 1.0);
  EXPECT_DOUBLE_EQ(above.cpu_utilization, 1.0);
  EXPECT_LT(above.mem_utilization, 1.0);
}

TEST(RooflineTest, MemoryBoundTimeIndependentOfIntensity) {
  const RooflineModel model{RooflineParams{}};
  const PhaseProfile a = model.profile(2.0, 0.25, VectorWidth::kYmm256, 2.6);
  const PhaseProfile b = model.profile(2.0, 0.5, VectorWidth::kYmm256, 2.6);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_GT(b.gflops, a.gflops);
}

TEST(RooflineTest, ComputeBoundTimeScalesWithIntensity) {
  const RooflineModel model{RooflineParams{}};
  const double ridge = model.ridge_intensity(VectorWidth::kYmm256, 2.6);
  const PhaseProfile a =
      model.profile(1.0, ridge * 2.0, VectorWidth::kYmm256, 2.6);
  const PhaseProfile b =
      model.profile(1.0, ridge * 4.0, VectorWidth::kYmm256, 2.6);
  EXPECT_NEAR(b.seconds, 2.0 * a.seconds, 1e-9);
}

TEST(RooflineTest, ZeroIntensityIsPureStreaming) {
  const RooflineModel model{RooflineParams{}};
  const PhaseProfile profile =
      model.profile(3.0, 0.0, VectorWidth::kYmm256, 2.6);
  EXPECT_DOUBLE_EQ(profile.cpu_utilization, 0.0);
  EXPECT_DOUBLE_EQ(profile.mem_utilization, 1.0);
  EXPECT_DOUBLE_EQ(profile.gflops, 0.0);
  EXPECT_NEAR(profile.seconds,
              3.0 / model.params().memory_bandwidth_gbs, 1e-12);
}

TEST(RooflineTest, NarrowerVectorsLowerTheRidge) {
  const RooflineModel model{RooflineParams{}};
  EXPECT_LT(model.ridge_intensity(VectorWidth::kScalar, 2.6),
            model.ridge_intensity(VectorWidth::kXmm128, 2.6));
  EXPECT_LT(model.ridge_intensity(VectorWidth::kXmm128, 2.6),
            model.ridge_intensity(VectorWidth::kYmm256, 2.6));
}

TEST(RooflineTest, AchievedGflopsNeverExceedsEnvelope) {
  const RooflineModel model{RooflineParams{}};
  for (double intensity : {0.1, 1.0, 5.0, 10.0, 20.0, 40.0}) {
    for (double f : {1.2, 1.8, 2.6}) {
      const PhaseProfile profile =
          model.profile(1.0, intensity, VectorWidth::kYmm256, f);
      const double envelope =
          std::min(intensity * model.memory_bandwidth_gbs(f),
                   model.peak_gflops(VectorWidth::kYmm256, f));
      EXPECT_LE(profile.gflops, envelope + 1e-9)
          << "I=" << intensity << " f=" << f;
    }
  }
}

TEST(RooflineTest, InvalidInputsThrow) {
  const RooflineModel model{RooflineParams{}};
  EXPECT_THROW(
      static_cast<void>(model.profile(0.0, 1.0, VectorWidth::kYmm256, 2.0)),
      ps::InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(model.profile(1.0, -1.0, VectorWidth::kYmm256, 2.0)),
      ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(model.peak_gflops(VectorWidth::kYmm256, 0.0)),
               ps::InvalidArgument);
}

TEST(ActivityModelTest, SaturatedPipelinesGiveFullActivity) {
  const ActivityModel model;
  EXPECT_NEAR(model.compute_activity(1.0, 1.0, VectorWidth::kYmm256), 1.0,
              0.01);
}

TEST(ActivityModelTest, ActivityPeaksNearRidge) {
  const ActivityModel model;
  const double low = model.compute_activity(0.02, 1.0, VectorWidth::kYmm256);
  const double ridge = model.compute_activity(1.0, 1.0, VectorWidth::kYmm256);
  const double high = model.compute_activity(1.0, 0.3, VectorWidth::kYmm256);
  EXPECT_GT(ridge, low);
  EXPECT_GT(ridge, high);
}

TEST(ActivityModelTest, NarrowVectorsDrawLessCpuPower) {
  const ActivityModel model;
  const double ymm = model.compute_activity(1.0, 0.5, VectorWidth::kYmm256);
  const double xmm = model.compute_activity(1.0, 0.5, VectorWidth::kXmm128);
  const double scalar =
      model.compute_activity(1.0, 0.5, VectorWidth::kScalar);
  EXPECT_GT(ymm, xmm);
  EXPECT_GT(xmm, scalar);
}

TEST(ActivityModelTest, PollActivityNearStreamingActivity) {
  // Fig. 4: uncapped power is largely insensitive to the waiting-rank
  // fraction, so busy-polling must draw close to streaming power.
  const ActivityModel model;
  const double streaming =
      model.compute_activity(0.02, 1.0, VectorWidth::kYmm256);
  EXPECT_NEAR(model.poll_activity, streaming, 0.02);
}

TEST(ActivityModelTest, UtilizationOutOfRangeThrows) {
  const ActivityModel model;
  EXPECT_THROW(static_cast<void>(
                   model.compute_activity(1.5, 0.0, VectorWidth::kYmm256)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(
                   model.compute_activity(0.0, -0.5, VectorWidth::kYmm256)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::hw
