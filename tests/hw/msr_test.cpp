#include "hw/msr.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::hw {
namespace {

TEST(MsrFileTest, DefaultAllowlistExposesRaplRegisters) {
  const MsrFile msrs;
  EXPECT_TRUE(msrs.is_readable(msr::kRaplPowerUnit));
  EXPECT_TRUE(msrs.is_readable(msr::kPkgPowerLimit));
  EXPECT_TRUE(msrs.is_readable(msr::kPkgEnergyStatus));
  EXPECT_TRUE(msrs.is_readable(msr::kPkgPowerInfo));
}

TEST(MsrFileTest, OnlyPowerLimitIsWritable) {
  const MsrFile msrs;
  EXPECT_TRUE(msrs.is_writable(msr::kPkgPowerLimit));
  EXPECT_FALSE(msrs.is_writable(msr::kRaplPowerUnit));
  EXPECT_FALSE(msrs.is_writable(msr::kPkgEnergyStatus));
  EXPECT_FALSE(msrs.is_writable(msr::kPkgPowerInfo));
}

TEST(MsrFileTest, ReadOfUnlistedRegisterThrows) {
  const MsrFile msrs;
  EXPECT_THROW(static_cast<void>(msrs.read(0x1a0)), NotFound);
}

TEST(MsrFileTest, WriteOfReadOnlyRegisterThrows) {
  MsrFile msrs;
  EXPECT_THROW(msrs.write(msr::kPkgEnergyStatus, 1), NotFound);
}

TEST(MsrFileTest, WriteOfUnlistedRegisterThrows) {
  MsrFile msrs;
  EXPECT_THROW(msrs.write(0x1a0, 1), NotFound);
}

TEST(MsrFileTest, WriteMaskProtectsReservedBits) {
  MsrFile msrs({{0x100, 0x00ffULL}});
  msrs.hw_store(0x100, 0xab00ULL);
  msrs.write(0x100, 0xffffULL);
  // Only the low byte is writable; the high byte keeps its value.
  EXPECT_EQ(msrs.read(0x100), 0xabffULL);
}

TEST(MsrFileTest, HwBackdoorBypassesAllowlist) {
  MsrFile msrs;
  msrs.hw_store(0x1a0, 0xdeadULL);
  EXPECT_EQ(msrs.hw_load(0x1a0), 0xdeadULL);
  // Still not software-readable.
  EXPECT_THROW(static_cast<void>(msrs.read(0x1a0)), NotFound);
}

TEST(MsrFileTest, UnwrittenRegisterReadsZero) {
  const MsrFile msrs;
  EXPECT_EQ(msrs.hw_load(msr::kPkgEnergyStatus), 0u);
}

}  // namespace
}  // namespace ps::hw
