#include "hw/rapl.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::hw {
namespace {

constexpr double kTdp = 120.0;
constexpr double kMin = 68.0;

TEST(RaplTest, InitialLimitIsTdp) {
  RaplPackageDomain rapl(kTdp, kMin);
  EXPECT_DOUBLE_EQ(rapl.power_limit(), kTdp);
}

TEST(RaplTest, UnitsMatchBroadwellEncoding) {
  RaplPackageDomain rapl(kTdp, kMin);
  EXPECT_DOUBLE_EQ(rapl.power_unit_watts(), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(rapl.energy_unit_joules(), 1.0 / 16384.0);
}

TEST(RaplTest, SetLimitQuantizesToPowerUnits) {
  RaplPackageDomain rapl(kTdp, kMin);
  const double applied = rapl.set_power_limit(100.07);
  // Nearest 1/8 W step.
  EXPECT_DOUBLE_EQ(applied, 100.125);
  EXPECT_DOUBLE_EQ(rapl.power_limit(), 100.125);
}

TEST(RaplTest, LimitClampsToFirmwareRange) {
  RaplPackageDomain rapl(kTdp, kMin);
  EXPECT_DOUBLE_EQ(rapl.set_power_limit(10.0), kMin);
  EXPECT_DOUBLE_EQ(rapl.set_power_limit(1000.0), 1.5 * kTdp);
}

TEST(RaplTest, RejectsNonFiniteLimit) {
  RaplPackageDomain rapl(kTdp, kMin);
  EXPECT_THROW(static_cast<void>(rapl.set_power_limit(
                   std::numeric_limits<double>::quiet_NaN())),
               ps::InvalidArgument);
}

TEST(RaplTest, RejectsBadConstruction) {
  EXPECT_THROW(RaplPackageDomain(0.0, 1.0), ps::InvalidArgument);
  EXPECT_THROW(RaplPackageDomain(100.0, 0.0), ps::InvalidArgument);
  EXPECT_THROW(RaplPackageDomain(100.0, 120.0), ps::InvalidArgument);
}

TEST(RaplTest, EnergyAccumulatesThroughCounter) {
  RaplPackageDomain rapl(kTdp, kMin);
  rapl.accumulate_energy(100.0);
  EXPECT_NEAR(rapl.read_energy_joules(), 100.0, 1e-3);
  rapl.accumulate_energy(50.0);
  EXPECT_NEAR(rapl.read_energy_joules(), 150.0, 1e-3);
}

TEST(RaplTest, SubUnitEnergyIsNotLost) {
  RaplPackageDomain rapl(kTdp, kMin);
  // Each increment is far below one counter LSB (61 uJ).
  for (int i = 0; i < 100000; ++i) {
    rapl.accumulate_energy(1e-5);
  }
  EXPECT_NEAR(rapl.read_energy_joules(), 1.0, 1e-3);
}

TEST(RaplTest, CounterWrapsAt32Bits) {
  RaplPackageDomain rapl(kTdp, kMin);
  // 2^32 energy units is ~262 kJ; accumulate more than that.
  const double wrap_joules =
      4294967296.0 * rapl.energy_unit_joules();
  rapl.accumulate_energy(wrap_joules * 0.75);
  EXPECT_NEAR(rapl.read_energy_joules(), wrap_joules * 0.75, 1.0);
  rapl.accumulate_energy(wrap_joules * 0.5);  // wraps the raw counter
  // Software reconstruction across the wrap stays monotone.
  EXPECT_NEAR(rapl.read_energy_joules(), wrap_joules * 1.25, 1.0);
}

TEST(RaplTest, NegativeEnergyRejected) {
  RaplPackageDomain rapl(kTdp, kMin);
  EXPECT_THROW(rapl.accumulate_energy(-1.0), ps::InvalidArgument);
}

TEST(RaplTest, PowerInfoEncodesTdpAndMin) {
  RaplPackageDomain rapl(kTdp, kMin);
  const std::uint64_t info = rapl.msr_file().read(msr::kPkgPowerInfo);
  const double unit = rapl.power_unit_watts();
  EXPECT_DOUBLE_EQ(static_cast<double>(info & 0x7fff) * unit, kTdp);
  EXPECT_DOUBLE_EQ(static_cast<double>((info >> 16) & 0x7fff) * unit, kMin);
}

TEST(RaplTest, LimitSurvivesMsrRoundTrip) {
  RaplPackageDomain rapl(kTdp, kMin);
  rapl.set_power_limit(90.0);
  const std::uint64_t raw = rapl.msr_file().read(msr::kPkgPowerLimit);
  EXPECT_EQ(raw & 0x7fffULL,
            static_cast<std::uint64_t>(90.0 / rapl.power_unit_watts()));
  EXPECT_NE(raw & (1ULL << 15), 0u);  // enable bit
  EXPECT_NE(raw & (1ULL << 16), 0u);  // clamp bit
}

}  // namespace
}  // namespace ps::hw
