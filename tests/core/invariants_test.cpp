#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::core::invariants {
namespace {

/// Restores the global invariant mode and counters around each test —
/// the registry is process-wide and other suites in this binary use it.
class InvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_mode_ = mode();
    set_mode(Mode::kCount);
    reset();
  }
  void TearDown() override {
    reset();
    set_mode(previous_mode_);
  }

 private:
  Mode previous_mode_ = Mode::kCount;
};

TEST_F(InvariantsTest, CountingModeRecordsWithoutThrowing) {
  check(true, "fine");
  check(false, "tripped once");
  const Stats after = stats();
  EXPECT_EQ(after.checks, 2u);
  EXPECT_EQ(after.violations, 1u);
  EXPECT_EQ(last_violation(), "tripped once");
}

TEST_F(InvariantsTest, FatalModeThrowsInvalidState) {
  set_mode(Mode::kFatal);
  check(true, "fine");
  EXPECT_THROW(check(false, "boom"), InvalidState);
  EXPECT_EQ(stats().violations, 1u);  // counted even when it throws
}

TEST_F(InvariantsTest, ResetClearsCountersAndMessage) {
  check(false, "stale");
  reset();
  EXPECT_EQ(stats().checks, 0u);
  EXPECT_EQ(stats().violations, 0u);
  EXPECT_EQ(last_violation(), "");
}

TEST_F(InvariantsTest, CapsFitBudgetUsesRaplTolerance) {
  // 4 hosts: tolerance is 2 W. 801 W on an 800 W budget passes; 803 W
  // trips.
  check_caps_fit_budget(801.0, 800.0, 4, "test");
  EXPECT_EQ(stats().violations, 0u);
  check_caps_fit_budget(803.0, 800.0, 4, "test");
  EXPECT_EQ(stats().violations, 1u);
  EXPECT_NE(last_violation().find("test"), std::string::npos);
}

TEST_F(InvariantsTest, CapBoundsChecksBothSides) {
  check_cap_bounds(200.0, 150.0, 256.0, 0.5, "test");
  EXPECT_EQ(stats().violations, 0u);
  check_cap_bounds(149.0, 150.0, 256.0, 0.5, "below-floor");
  EXPECT_EQ(stats().violations, 1u);
  check_cap_bounds(257.0, 150.0, 256.0, 0.5, "above-tdp");
  EXPECT_EQ(stats().violations, 2u);
  // Tolerance gives each side slack.
  check_cap_bounds(149.6, 150.0, 256.0, 0.5, "within-slack");
  check_cap_bounds(256.4, 150.0, 256.0, 0.5, "within-slack");
  EXPECT_EQ(stats().violations, 2u);
}

TEST_F(InvariantsTest, EpochMonotoneRequiresStrictAdvance) {
  check_epoch_monotone(3, 4, "test");
  EXPECT_EQ(stats().violations, 0u);
  check_epoch_monotone(4, 4, "equal");
  EXPECT_EQ(stats().violations, 1u);
  check_epoch_monotone(4, 2, "backwards");
  EXPECT_EQ(stats().violations, 2u);
}

TEST_F(InvariantsTest, WattConservationHoldsWithinTolerance) {
  check_watts_conserved(1'000.0, 300.0, 700.0, 0.5, "test");
  EXPECT_EQ(stats().violations, 0u);
  check_watts_conserved(1'000.0, 300.0, 650.0, 0.5, "lost-watts");
  EXPECT_EQ(stats().violations, 1u);
}

}  // namespace
}  // namespace ps::core::invariants
