// Golden-allocation regression tests: for one fixed, hand-analyzable
// context, every policy's exact output is pinned. Any change to the
// allocation algorithms must consciously update these numbers.
#include <gtest/gtest.h>

#include "context_builder.hpp"
#include "core/policies.hpp"

namespace ps::core {
namespace {

using testing::make_context;
using testing::make_job;

/// 2 jobs x 2 hosts. Job 0: imbalanced (one waiting host at the floor,
/// one critical); job 1: memory-bound balanced. Budget: 190 W/host.
PolicyContext golden_context() {
  return make_context(4.0 * 190.0,
                      {make_job({214.0, 222.0}, {152.0, 220.0}),
                       make_job({205.0, 205.0}, {186.0, 186.0})});
}

TEST(GoldenAllocationTest, Precharacterized) {
  const rm::PowerAllocation allocation =
      PrecharacterizedPolicy{}.allocate(golden_context());
  // Each job capped at its hungriest node's monitor power.
  EXPECT_NEAR(allocation.job_host_caps[0][0], 222.0, 1e-9);
  EXPECT_NEAR(allocation.job_host_caps[0][1], 222.0, 1e-9);
  EXPECT_NEAR(allocation.job_host_caps[1][0], 205.0, 1e-9);
  EXPECT_NEAR(allocation.total_watts(), 854.0, 1e-9);
}

TEST(GoldenAllocationTest, StaticCaps) {
  const rm::PowerAllocation allocation =
      StaticCapsPolicy{}.allocate(golden_context());
  // Share 190; neither job's monitor max (222, 205) is below it.
  EXPECT_NEAR(allocation.job_host_caps[0][0], 190.0, 1e-9);
  EXPECT_NEAR(allocation.job_host_caps[1][1], 190.0, 1e-9);
  EXPECT_NEAR(allocation.total_watts(), 760.0, 1e-9);
}

TEST(GoldenAllocationTest, MinimizeWaste) {
  const rm::PowerAllocation allocation =
      MinimizeWastePolicy{}.allocate(golden_context());
  // Demand 214+222+205+205 = 846 > 760: proportional scale 760/846.
  const double scale = 760.0 / 846.0;
  EXPECT_NEAR(allocation.job_host_caps[0][0], 214.0 * scale, 1e-6);
  EXPECT_NEAR(allocation.job_host_caps[0][1], 222.0 * scale, 1e-6);
  EXPECT_NEAR(allocation.job_host_caps[1][0], 205.0 * scale, 1e-6);
  EXPECT_NEAR(allocation.total_watts(), 760.0, 1e-6);
}

TEST(GoldenAllocationTest, JobAdaptive) {
  const rm::PowerAllocation allocation =
      JobAdaptivePolicy{}.allocate(golden_context());
  // Job 0 budget 380: needed 152+220 = 372, remainder 8 split by package
  // headroom (152-136=16 vs 220-136=84): +1.28 and +6.72.
  EXPECT_NEAR(allocation.job_host_caps[0][0], 153.28, 0.01);
  EXPECT_NEAR(allocation.job_host_caps[0][1], 226.72, 0.01);
  // Job 1 budget 380: needed 186+186 = 372, remainder split evenly
  // (equal weights 50): +4 each.
  EXPECT_NEAR(allocation.job_host_caps[1][0], 190.0, 0.01);
  EXPECT_NEAR(allocation.job_host_caps[1][1], 190.0, 0.01);
}

TEST(GoldenAllocationTest, MixedAdaptive) {
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{}.allocate(golden_context());
  // Step 1: all at 190. Step 2: trim host 0 to 152 (+38 pool), hosts
  // 2,3 to 186 (+4 each) => pool 46. Step 3: host 1 needs 220, gets 30
  // of the pool => 220; pool 16 left. Step 4: weights (assigned - 136):
  // 16, 84, 50, 50 => total 200; shares 1.28, 6.72, 4, 4.
  EXPECT_NEAR(allocation.job_host_caps[0][0], 152.0 + 16.0 * 16.0 / 200.0,
              0.01);
  EXPECT_NEAR(allocation.job_host_caps[0][1], 220.0 + 16.0 * 84.0 / 200.0,
              0.01);
  EXPECT_NEAR(allocation.job_host_caps[1][0], 186.0 + 16.0 * 50.0 / 200.0,
              0.01);
  EXPECT_NEAR(allocation.job_host_caps[1][1], 186.0 + 16.0 * 50.0 / 200.0,
              0.01);
  EXPECT_NEAR(allocation.total_watts(), 760.0, 0.01);
}

TEST(GoldenAllocationTest, MixedAdaptiveSharesWhereJobAdaptiveCannot) {
  // The defining difference, pinned numerically. Job 1 is *starving*
  // (both hosts need 220 > the 190 share); job 0's waiting host frees
  // 38 W that only MixedAdaptive can move across the job boundary.
  const PolicyContext context = make_context(
      4.0 * 190.0, {make_job({214.0, 222.0}, {152.0, 220.0}),
                    make_job({228.0, 228.0}, {220.0, 220.0})});
  const rm::PowerAllocation job_adaptive =
      JobAdaptivePolicy{}.allocate(context);
  // JobAdaptive: job 1's budget is pinned at 380 (its needed total 440
  // scales by 380/440 back to 190 per host).
  EXPECT_NEAR(job_adaptive.job_total_watts(1), 380.0, 0.01);
  EXPECT_NEAR(job_adaptive.job_host_caps[1][0], 190.0, 0.01);

  const rm::PowerAllocation mixed = MixedAdaptivePolicy{}.allocate(context);
  // MixedAdaptive: host 0 trims to 152 (pool 38); the three hungry hosts
  // (needed 220, at 190) each take pool/3 toward needed => 202.67 each.
  EXPECT_NEAR(mixed.job_host_caps[0][0], 152.0, 0.01);
  EXPECT_NEAR(mixed.job_host_caps[0][1], 190.0 + 38.0 / 3.0, 0.01);
  EXPECT_NEAR(mixed.job_host_caps[1][0], 190.0 + 38.0 / 3.0, 0.01);
  EXPECT_NEAR(mixed.job_total_watts(1), 380.0 + 2.0 * 38.0 / 3.0, 0.01);
  EXPECT_GT(mixed.job_total_watts(1), job_adaptive.job_total_watts(1));
}

}  // namespace
}  // namespace ps::core
