#include "core/policies.hpp"

#include <gtest/gtest.h>

#include "context_builder.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

using testing::make_context;
using testing::make_job;

TEST(PolicyRegistryTest, MakesAllFivePolicies) {
  const std::vector<PolicyKind> kinds = all_policy_kinds();
  ASSERT_EQ(kinds.size(), 5u);
  for (PolicyKind kind : kinds) {
    const auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), to_string(kind));
  }
}

TEST(PolicyRegistryTest, AwarenessMatrixMatchesPaper) {
  EXPECT_FALSE(make_policy(PolicyKind::kPrecharacterized)->is_system_aware());
  EXPECT_FALSE(
      make_policy(PolicyKind::kPrecharacterized)->is_application_aware());
  EXPECT_TRUE(make_policy(PolicyKind::kStaticCaps)->is_system_aware());
  EXPECT_FALSE(make_policy(PolicyKind::kStaticCaps)->is_application_aware());
  EXPECT_TRUE(make_policy(PolicyKind::kMinimizeWaste)->is_system_aware());
  EXPECT_FALSE(
      make_policy(PolicyKind::kMinimizeWaste)->is_application_aware());
  EXPECT_FALSE(make_policy(PolicyKind::kJobAdaptive)->is_system_aware());
  EXPECT_TRUE(make_policy(PolicyKind::kJobAdaptive)->is_application_aware());
  EXPECT_TRUE(make_policy(PolicyKind::kMixedAdaptive)->is_system_aware());
  EXPECT_TRUE(
      make_policy(PolicyKind::kMixedAdaptive)->is_application_aware());
}

TEST(PrecharacterizedTest, CapsEachJobAtItsHungriestNode) {
  const PolicyContext context = make_context(
      1000.0, {make_job(2, 214.0, 190.0), make_job(2, 228.0, 220.0)});
  const rm::PowerAllocation allocation =
      PrecharacterizedPolicy{}.allocate(context);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 214.0);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][1], 214.0);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[1][0], 228.0);
}

TEST(PrecharacterizedTest, IgnoresTheBudget) {
  // Two jobs of 2 hosts at ~214/228 W against a 500 W budget: exceeds it.
  const PolicyContext context = make_context(
      500.0, {make_job(2, 214.0, 190.0), make_job(2, 228.0, 220.0)});
  const rm::PowerAllocation allocation =
      PrecharacterizedPolicy{}.allocate(context);
  EXPECT_GT(allocation.total_watts(), 500.0);
}

TEST(StaticCapsTest, UniformShareCappedAtJobMax) {
  const PolicyContext context = make_context(
      4 * 220.0, {make_job(2, 205.0, 190.0), make_job(2, 230.0, 220.0)});
  const rm::PowerAllocation allocation = StaticCapsPolicy{}.allocate(context);
  // Share is 220; job 0 clips at its monitor max 205.
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 205.0);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[1][0], 220.0);
  EXPECT_TRUE(allocation.within_budget(context.system_budget_watts));
}

TEST(StaticCapsTest, ShareBelowFloorClampsUp) {
  const PolicyContext context =
      make_context(4 * 100.0, {make_job(4, 214.0, 190.0)});
  const rm::PowerAllocation allocation = StaticCapsPolicy{}.allocate(context);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 152.0);
}

TEST(MinimizeWasteTest, SurplusBudgetCapsAtObservedDemand) {
  const PolicyContext context = make_context(
      4 * 250.0, {make_job(2, 205.0, 180.0), make_job(2, 230.0, 225.0)});
  const rm::PowerAllocation allocation =
      MinimizeWastePolicy{}.allocate(context);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 205.0);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[1][0], 230.0);
  // The rest of the budget is deliberately unallocated.
  EXPECT_LT(allocation.total_watts(), context.system_budget_watts);
}

TEST(MinimizeWasteTest, ShortageScalesProportionallyToDemand) {
  const PolicyContext context = make_context(
      4 * 200.0, {make_job(2, 210.0, 180.0), make_job(2, 230.0, 225.0)});
  const rm::PowerAllocation allocation =
      MinimizeWastePolicy{}.allocate(context);
  const double ratio0 = allocation.job_host_caps[0][0] / 210.0;
  const double ratio1 = allocation.job_host_caps[1][0] / 230.0;
  EXPECT_NEAR(ratio0, ratio1, 1e-9);
  EXPECT_NEAR(allocation.total_watts(), 800.0, 0.5);
}

TEST(MinimizeWasteTest, LowDemandJobsFundHighDemandJobs) {
  const PolicyContext context = make_context(
      4 * 200.0, {make_job(2, 180.0, 170.0), make_job(2, 230.0, 225.0)});
  const rm::PowerAllocation allocation =
      MinimizeWastePolicy{}.allocate(context);
  // Low-power job gets less than the uniform share; high-power gets more.
  EXPECT_LT(allocation.job_host_caps[0][0], 200.0);
  EXPECT_GT(allocation.job_host_caps[1][0], 200.0);
}

TEST(MinimizeWasteTest, FlooredHostsTriggerRescale) {
  // One job's proportional share lands below the floor; the budget it
  // cannot give up must come from somewhere without breaking the total.
  const PolicyContext context = make_context(
      4 * 170.0, {make_job(2, 155.0, 152.0), make_job(2, 230.0, 225.0)});
  const rm::PowerAllocation allocation =
      MinimizeWastePolicy{}.allocate(context);
  EXPECT_GE(allocation.job_host_caps[0][0], 152.0);
  EXPECT_LE(allocation.total_watts(), context.system_budget_watts + 0.5);
}

TEST(JobAdaptiveTest, DistributesNeededWithinJobBudget) {
  // One job: 2 waiting hosts (need 152) + 2 critical (need 220),
  // job budget = 4 * 190 = 760 > needed 744: all get needed, remainder
  // weighted toward the hosts with headroom.
  const PolicyContext context = make_context(
      4 * 190.0,
      {make_job({214.0, 214.0, 214.0, 214.0}, {152.0, 152.0, 220.0, 220.0})});
  const rm::PowerAllocation allocation =
      JobAdaptivePolicy{}.allocate(context);
  EXPECT_GE(allocation.job_host_caps[0][2], 220.0);
  EXPECT_GE(allocation.job_host_caps[0][0], 152.0);
  EXPECT_LE(allocation.total_watts(), 760.0 + 0.5);
}

TEST(JobAdaptiveTest, ViolationScalesDownProportionally) {
  const PolicyContext context = make_context(
      2 * 190.0, {make_job({230.0, 230.0}, {200.0, 220.0})});
  const rm::PowerAllocation allocation =
      JobAdaptivePolicy{}.allocate(context);
  const double scale0 = allocation.job_host_caps[0][0] / 200.0;
  const double scale1 = allocation.job_host_caps[0][1] / 220.0;
  EXPECT_NEAR(scale0, scale1, 1e-9);
  EXPECT_NEAR(allocation.total_watts(), 380.0, 0.5);
}

TEST(JobAdaptiveTest, FloorAwareScalingStaysWithinBudget) {
  // Waiting hosts already at the floor cannot be scaled down; critical
  // hosts must absorb the whole reduction.
  const PolicyContext context = make_context(
      4 * 160.0,
      {make_job({214.0, 214.0, 214.0, 214.0}, {152.0, 152.0, 220.0, 220.0})});
  const rm::PowerAllocation allocation =
      JobAdaptivePolicy{}.allocate(context);
  EXPECT_LE(allocation.total_watts(), 640.0 + 0.5);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 152.0);
  EXPECT_LT(allocation.job_host_caps[0][2], 220.0);
}

TEST(JobAdaptiveTest, NoCrossJobSharing) {
  // Job 0 needs almost nothing; job 1 is starving. JobAdaptive cannot
  // move job 0's surplus to job 1.
  const PolicyContext context = make_context(
      4 * 190.0,
      {make_job(2, 214.0, 152.0), make_job(2, 230.0, 230.0)});
  const rm::PowerAllocation allocation =
      JobAdaptivePolicy{}.allocate(context);
  // Job 1 is stuck at its own uniform budget of 2 * 190.
  EXPECT_LE(allocation.job_total_watts(1), 2 * 190.0 + 0.5);
}

TEST(MixedAdaptiveTest, SharesAcrossJobs) {
  // Same setup as JobAdaptiveTest.NoCrossJobSharing: MixedAdaptive moves
  // job 0's surplus into job 1.
  const PolicyContext context = make_context(
      4 * 190.0,
      {make_job(2, 214.0, 152.0), make_job(2, 230.0, 230.0)});
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{}.allocate(context);
  EXPECT_GT(allocation.job_total_watts(1), 2 * 190.0 + 10.0);
  EXPECT_LE(allocation.total_watts(),
            context.system_budget_watts + 0.5);
}

TEST(MixedAdaptiveTest, Step2TrimsToNeeded) {
  const PolicyContext context =
      make_context(2 * 220.0, {make_job(2, 214.0, 180.0)});
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{}.allocate(context);
  // Needed 180 + surplus weighted by (180 - 136) pushes caps above 180
  // but the sum stays within budget.
  EXPECT_GE(allocation.job_host_caps[0][0], 180.0);
  EXPECT_LE(allocation.total_watts(), 440.0 + 0.5);
}

TEST(MixedAdaptiveTest, Step3RefillsUnderProvisionedHosts) {
  // Share 180 < needed 220 for job 1; job 0 deallocates 180-152=28/host.
  const PolicyContext context = make_context(
      4 * 180.0,
      {make_job(2, 214.0, 152.0), make_job(2, 230.0, 220.0)});
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{}.allocate(context);
  EXPECT_NEAR(allocation.job_host_caps[0][0], 152.0, 1e-6);
  // Job 1 hosts got refilled toward 220: 180 + 28 = 208 each.
  EXPECT_NEAR(allocation.job_host_caps[1][0], 208.0, 0.5);
}

TEST(MixedAdaptiveTest, Step4SurplusFollowsHeadroomWeights) {
  // Everyone's needs met with surplus left; hosts further above the
  // package floor get proportionally more.
  const PolicyContext context = make_context(
      4 * 230.0,
      {make_job(2, 214.0, 160.0), make_job(2, 230.0, 220.0)});
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{}.allocate(context);
  const double gain0 = allocation.job_host_caps[0][0] - 160.0;
  const double gain1 = allocation.job_host_caps[1][0] - 220.0;
  // Weights: 160-136=24 vs 220-136=84 (before TDP clamping).
  EXPECT_GT(gain1, gain0);
}

TEST(MixedAdaptiveTest, AblationFlagsDisableSteps) {
  const PolicyContext context = make_context(
      4 * 180.0,
      {make_job(2, 214.0, 152.0), make_job(2, 230.0, 220.0)});
  MixedAdaptiveOptions options;
  options.redistribute_deallocated = false;
  options.distribute_surplus = false;
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{options}.allocate(context);
  // Without steps 3 and 4, job 1 hosts stay at the uniform share.
  EXPECT_NEAR(allocation.job_host_caps[1][0], 180.0, 1e-6);
}

TEST(PolicyContextTest, ValidationCatchesBadInputs) {
  PolicyContext context = make_context(100.0, {make_job(2, 214.0, 190.0)});
  context.system_budget_watts = 0.0;
  EXPECT_THROW(context.validate(), ps::InvalidArgument);
  context = make_context(100.0, {});
  EXPECT_THROW(context.validate(), ps::InvalidArgument);
  context = make_context(100.0, {make_job(2, 214.0, 190.0)});
  context.jobs[0].monitor.host_average_power_watts.pop_back();
  EXPECT_THROW(context.validate(), ps::InvalidArgument);
  context = make_context(100.0, {make_job(2, 214.0, 190.0, 500.0)});
  EXPECT_THROW(context.validate(), ps::InvalidArgument);
}

TEST(PolicyContextTest, PerJobTdpOverridesContextFallback) {
  PolicyContext context = make_context(
      1000.0, {make_job(1, 500.0, 190.0), make_job(1, 500.0, 190.0)});
  context.jobs[0].node_tdp_watts = 200.0;  // job 1 stays at 0 = unknown
  EXPECT_DOUBLE_EQ(context.job_tdp_watts(0), 200.0);
  EXPECT_DOUBLE_EQ(context.job_tdp_watts(1), context.node_tdp_watts);
  EXPECT_THROW(static_cast<void>(context.job_tdp_watts(2)),
               ps::InvalidArgument);
  context.jobs[0].node_tdp_watts = -1.0;
  EXPECT_THROW(context.validate(), ps::InvalidArgument);
  // A per-job TDP below the job's settable floor is inconsistent.
  context.jobs[0].node_tdp_watts = 100.0;
  EXPECT_THROW(context.validate(), ps::InvalidArgument);
}

// Regression for the heterogeneous-cluster case: the old code clamped
// every job at one cluster-wide TDP, so a low-TDP job could be granted
// more than its hardware can apply (and a high-TDP job could be starved
// down to the low part's ceiling).
TEST(PolicyContextTest, HeterogeneousTdpClampsEachJobAtItsOwnCeiling) {
  PolicyContext context = make_context(
      2 * 400.0, {make_job(1, 500.0, 190.0, 100.0),
                  make_job(1, 500.0, 190.0, 100.0)});
  context.jobs[0].node_tdp_watts = 200.0;
  context.jobs[1].node_tdp_watts = 300.0;
  const rm::PowerAllocation allocation = StaticCapsPolicy{}.allocate(context);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 200.0);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[1][0], 300.0);
  // Order-swap invariance: the clamp follows the job, not its index.
  std::swap(context.jobs[0], context.jobs[1]);
  const rm::PowerAllocation swapped = StaticCapsPolicy{}.allocate(context);
  EXPECT_DOUBLE_EQ(swapped.job_host_caps[0][0], 300.0);
  EXPECT_DOUBLE_EQ(swapped.job_host_caps[1][0], 200.0);
}

TEST(PrecharacterizedTest, HeterogeneousTdpClampsHungryJob) {
  PolicyContext context =
      make_context(1000.0, {make_job(1, 500.0, 190.0, 100.0)});
  context.jobs[0].node_tdp_watts = 220.0;
  const rm::PowerAllocation allocation =
      PrecharacterizedPolicy{}.allocate(context);
  // Observed 500 W demand clamps at the job's own 220 W ceiling, not the
  // context-wide 256 W.
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][0], 220.0);
}

TEST(PolicyContextTest, UniformShareDividesBudget) {
  const PolicyContext context = make_context(
      900.0, {make_job(2, 214.0, 190.0), make_job(1, 214.0, 190.0)});
  EXPECT_EQ(context.total_hosts(), 3u);
  EXPECT_DOUBLE_EQ(context.uniform_share_watts(), 300.0);
}

}  // namespace
}  // namespace ps::core
