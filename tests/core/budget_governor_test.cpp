#include "core/budget_governor.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/facility_trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::core {
namespace {

TEST(BudgetGovernorTest, HysteresisSwallowsSmallMoves) {
  BudgetGovernorOptions options;
  options.hysteresis_watts = 10.0;
  BudgetGovernor governor(1'000.0, options);
  EXPECT_FALSE(governor.observe(1'005.0, 0).has_value());
  EXPECT_FALSE(governor.observe(992.0, 1).has_value());
  EXPECT_FALSE(governor.observe(1'010.0, 2).has_value());  // exactly at
  EXPECT_DOUBLE_EQ(governor.budget_watts(), 1'000.0);
  EXPECT_EQ(governor.epoch(), 0u);
}

TEST(BudgetGovernorTest, RevisionCarriesStrictlyMonotoneEpochs) {
  BudgetGovernor governor(1'000.0);
  const auto first = governor.observe(900.0, 3);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(first->at_epoch, 3u);
  EXPECT_DOUBLE_EQ(first->budget_watts, 900.0);
  const auto second = governor.observe(1'100.0, 7);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_DOUBLE_EQ(governor.budget_watts(), 1'100.0);
}

TEST(BudgetGovernorTest, RaiseIsRampLimitedUntilItReachesTheSignal) {
  BudgetGovernorOptions options;
  options.max_raise_watts = 50.0;
  BudgetGovernor governor(1'000.0, options);
  const auto step1 = governor.observe(1'200.0, 0);
  ASSERT_TRUE(step1.has_value());
  EXPECT_DOUBLE_EQ(step1->budget_watts, 1'050.0);
  // The signal holds still; the governor keeps stepping toward it.
  const auto step2 = governor.observe(1'200.0, 1);
  ASSERT_TRUE(step2.has_value());
  EXPECT_DOUBLE_EQ(step2->budget_watts, 1'100.0);
  EXPECT_FALSE(step2->emergency);
}

TEST(BudgetGovernorTest, LowerRampLimitsWhenConfigured) {
  BudgetGovernorOptions options;
  options.max_lower_watts = 30.0;
  BudgetGovernor governor(1'000.0, options);
  const auto revision = governor.observe(800.0, 0);
  ASSERT_TRUE(revision.has_value());
  EXPECT_DOUBLE_EQ(revision->budget_watts, 970.0);
}

TEST(BudgetGovernorTest, LargeDropIsMarkedEmergency) {
  BudgetGovernorOptions options;
  options.emergency_drop_fraction = 0.15;
  BudgetGovernor governor(1'000.0, options);
  const auto drift = governor.observe(900.0, 0);  // 10%: a drift
  ASSERT_TRUE(drift.has_value());
  EXPECT_FALSE(drift->emergency);
  const auto brownout = governor.observe(600.0, 1);  // 33%: a brownout
  ASSERT_TRUE(brownout.has_value());
  EXPECT_TRUE(brownout->emergency);
}

TEST(BudgetGovernorTest, NeverRevisesBelowTheFloor) {
  BudgetGovernorOptions options;
  options.floor_watts = 500.0;
  BudgetGovernor governor(1'000.0, options);
  const auto revision = governor.observe(100.0, 0);
  ASSERT_TRUE(revision.has_value());
  EXPECT_DOUBLE_EQ(revision->budget_watts, 500.0);
  // Already pinned to the floor: a deeper signal changes nothing.
  EXPECT_FALSE(governor.observe(50.0, 1).has_value());
}

TEST(BudgetGovernorTest, RejectsInvalidConstruction) {
  EXPECT_THROW(BudgetGovernor(0.0), InvalidArgument);
  BudgetGovernorOptions bad_floor;
  bad_floor.floor_watts = 2'000.0;
  EXPECT_THROW(BudgetGovernor(1'000.0, bad_floor), InvalidArgument);
  BudgetGovernorOptions bad_fraction;
  bad_fraction.emergency_drop_fraction = 0.0;
  EXPECT_THROW(BudgetGovernor(1'000.0, bad_fraction), InvalidArgument);
}

TEST(BudgetGovernorTest, RejectsNonFiniteSignal) {
  BudgetGovernor governor(1'000.0);
  EXPECT_THROW(static_cast<void>(governor.observe(
                   std::numeric_limits<double>::quiet_NaN(), 0)),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(governor.observe(-1.0, 0)),
               InvalidArgument);
}

TEST(BudgetScheduleTest, ScheduleIsSortedWithStrictEpochs) {
  util::Rng rng(21);
  std::vector<double> signal;
  for (std::size_t i = 0; i < 64; ++i) {
    signal.push_back(1'400.0 + rng.normal(0.0, 150.0));
  }
  const std::vector<BudgetRevision> schedule =
      make_budget_schedule(1'500.0, signal, {});
  ASSERT_FALSE(schedule.empty());
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LT(schedule[i - 1].at_epoch, schedule[i].at_epoch);
    EXPECT_LT(schedule[i - 1].epoch, schedule[i].epoch);
  }
  for (const BudgetRevision& revision : schedule) {
    EXPECT_GT(revision.budget_watts, 0.0);
  }
}

TEST(BudgetSignalTest, TraceSignalIsClusterShareOfHeadroom) {
  sim::FacilityTraceParams params;
  params.days = 4;
  util::Rng rng(5);
  const sim::FacilityTrace trace = sim::generate_facility_trace(params, rng);
  const double share = 0.002;
  const std::vector<double> signal =
      budget_signal_from_trace(trace, share, 16, 100.0);
  ASSERT_EQ(signal.size(), 16u);
  // First sample maps to the first trace sample exactly.
  const double expected =
      share * (params.peak_rating_mw - trace.instantaneous_mw.front()) * 1e6;
  EXPECT_DOUBLE_EQ(signal.front(), std::max(100.0, expected));
  for (const double watts : signal) {
    EXPECT_GE(watts, 100.0);
    // Headroom never exceeds the full rating.
    EXPECT_LE(watts, share * params.peak_rating_mw * 1e6);
  }
}

TEST(BudgetSignalTest, SignalRespectsFloorUnderSaturatedTrace) {
  sim::FacilityTraceParams params;
  params.days = 2;
  util::Rng rng(9);
  sim::FacilityTrace trace = sim::generate_facility_trace(params, rng);
  // Force the facility to its rating: headroom is zero everywhere.
  for (double& mw : trace.instantaneous_mw) {
    mw = params.peak_rating_mw;
  }
  const std::vector<double> signal =
      budget_signal_from_trace(trace, 0.01, 8, 250.0);
  for (const double watts : signal) {
    EXPECT_DOUBLE_EQ(watts, 250.0);
  }
}

TEST(BudgetSignalTest, RejectsDegenerateArguments) {
  sim::FacilityTraceParams params;
  params.days = 1;
  util::Rng rng(1);
  const sim::FacilityTrace trace = sim::generate_facility_trace(params, rng);
  EXPECT_THROW(static_cast<void>(
                   budget_signal_from_trace(trace, 0.0, 8, 100.0)),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(
                   budget_signal_from_trace(trace, 1.5, 8, 100.0)),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(
                   budget_signal_from_trace(trace, 0.5, 0, 100.0)),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(
                   budget_signal_from_trace(trace, 0.5, 8, 0.0)),
               InvalidArgument);
  const sim::FacilityTrace empty;
  EXPECT_THROW(static_cast<void>(
                   budget_signal_from_trace(empty, 0.5, 8, 100.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace ps::core
