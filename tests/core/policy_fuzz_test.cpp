// Randomized-context fuzzing of the policy allocators: 100 seeded random
// scenarios x 5 policies, checking the invariants no allocation may
// violate regardless of input shape.
#include <gtest/gtest.h>

#include "context_builder.hpp"
#include "core/policies.hpp"
#include "util/rng.hpp"

namespace ps::core {
namespace {

using testing::make_job;

PolicyContext random_context(util::Rng& rng) {
  PolicyContext context;
  context.node_tdp_watts = 256.0;
  context.uncappable_watts = 16.0;
  const std::size_t jobs = 1 + rng.uniform_index(6);
  std::size_t total_hosts = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::size_t hosts = 1 + rng.uniform_index(12);
    total_hosts += hosts;
    std::vector<double> monitor;
    std::vector<double> needed;
    for (std::size_t h = 0; h < hosts; ++h) {
      const double draw = rng.uniform(200.0, 232.0);
      monitor.push_back(draw);
      needed.push_back(rng.uniform(152.0, draw + 8.0));
    }
    context.jobs.push_back(make_job(monitor, needed));
  }
  // Budgets from deep shortage to lavish surplus.
  context.system_budget_watts =
      static_cast<double>(total_hosts) * rng.uniform(140.0, 270.0);
  return context;
}

TEST(PolicyFuzzTest, InvariantsHoldOnRandomScenarios) {
  util::Rng rng(0xf022);
  for (int scenario = 0; scenario < 100; ++scenario) {
    const PolicyContext context = random_context(rng);
    const double floor_total =
        152.0 * static_cast<double>(context.total_hosts());
    for (PolicyKind kind : all_policy_kinds()) {
      const auto policy = make_policy(kind);
      const rm::PowerAllocation allocation = policy->allocate(context);

      // Shape.
      ASSERT_EQ(allocation.job_host_caps.size(), context.jobs.size())
          << to_string(kind) << " scenario " << scenario;
      for (std::size_t j = 0; j < context.jobs.size(); ++j) {
        ASSERT_EQ(allocation.job_host_caps[j].size(),
                  context.jobs[j].host_count);
      }
      // Hardware bounds.
      for (const auto& job : allocation.job_host_caps) {
        for (double cap : job) {
          EXPECT_GE(cap, 152.0 - 1e-6)
              << to_string(kind) << " scenario " << scenario;
          EXPECT_LE(cap, context.node_tdp_watts + 1e-6)
              << to_string(kind) << " scenario " << scenario;
        }
      }
      // Budget compliance for system-aware policies whenever the floor
      // permits it.
      if (policy->is_system_aware() &&
          context.system_budget_watts >= floor_total) {
        EXPECT_LE(allocation.total_watts(),
                  context.system_budget_watts + 1.0)
            << to_string(kind) << " scenario " << scenario;
      }
      // Determinism.
      const rm::PowerAllocation again = policy->allocate(context);
      EXPECT_EQ(allocation.job_host_caps, again.job_host_caps)
          << to_string(kind) << " scenario " << scenario;
    }
  }
}

TEST(PolicyFuzzTest, ApplicationAwarePoliciesNeverStarveNeedyHosts) {
  // With surplus budget, JobAdaptive and MixedAdaptive never allocate a
  // host less than its needed power.
  util::Rng rng(0xf023);
  for (int scenario = 0; scenario < 50; ++scenario) {
    PolicyContext context = random_context(rng);
    context.system_budget_watts =
        260.0 * static_cast<double>(context.total_hosts());
    for (PolicyKind kind :
         {PolicyKind::kJobAdaptive, PolicyKind::kMixedAdaptive}) {
      const rm::PowerAllocation allocation =
          make_policy(kind)->allocate(context);
      for (std::size_t j = 0; j < context.jobs.size(); ++j) {
        for (std::size_t h = 0; h < context.jobs[j].host_count; ++h) {
          const double needed = std::clamp(
              context.jobs[j].balancer.host_needed_power_watts[h], 152.0,
              context.node_tdp_watts);
          EXPECT_GE(allocation.job_host_caps[j][h], needed - 1e-6)
              << to_string(kind) << " scenario " << scenario;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ps::core
