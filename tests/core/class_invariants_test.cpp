// Multi-tenant invariants: per-class budget conservation (degradation
// re-divides watts, never mints them) and no class inversion (a lower
// class never holds discretionary watts a starved higher class needs).
#include <gtest/gtest.h>

#include <vector>

#include "core/invariants.hpp"
#include "util/error.hpp"

namespace ps::core::invariants {
namespace {

class ClassInvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_mode(Mode::kFatal);
  }
  void TearDown() override {
    set_mode(Mode::kCount);
    reset();
  }
};

ClassAllocationView view(std::size_t rank, double allocated, double floor,
                         double guaranteed, double tolerance = 0.5) {
  ClassAllocationView v;
  v.rank = rank;
  v.allocated_watts = allocated;
  v.floor_watts = floor;
  v.guaranteed_watts = guaranteed;
  v.tolerance_watts = tolerance;
  return v;
}

TEST_F(ClassInvariantsTest, ConservationHoldsWhenSumsMatch) {
  const std::vector<ClassAllocationView> jobs = {
      view(2, 220.0, 152.0, 220.0), view(0, 180.0, 152.0, 220.0)};
  EXPECT_NO_THROW(check_class_budget_conserved(jobs, 400.0, 400.0, "test"));
  EXPECT_EQ(stats().violations, 0u);
}

TEST_F(ClassInvariantsTest, ConservationTripsOnMintedWatts) {
  // The class sums claim 30 W more than the programmed total: minted.
  const std::vector<ClassAllocationView> jobs = {
      view(2, 230.0, 152.0, 220.0), view(0, 200.0, 152.0, 220.0)};
  EXPECT_THROW(check_class_budget_conserved(jobs, 400.0, 400.0, "test"),
               ps::InvalidState);
  EXPECT_EQ(stats().violations, 1u);
  EXPECT_NE(last_violation().find("test"), std::string::npos);
}

TEST_F(ClassInvariantsTest, ConservationTripsWhenTotalExceedsBudget) {
  const std::vector<ClassAllocationView> jobs = {
      view(2, 300.0, 152.0, 300.0), view(0, 300.0, 152.0, 300.0)};
  EXPECT_THROW(check_class_budget_conserved(jobs, 600.0, 400.0, "test"),
               ps::InvalidState);
}

TEST_F(ClassInvariantsTest, FloorsMayExceedTheBudget) {
  // Floors are physical: when they alone exceed the budget, programming
  // the floors is correct, not a violation.
  const std::vector<ClassAllocationView> jobs = {
      view(2, 152.0, 152.0, 220.0), view(0, 152.0, 152.0, 220.0)};
  EXPECT_NO_THROW(check_class_budget_conserved(jobs, 304.0, 200.0, "test"));
  EXPECT_EQ(stats().violations, 0u);
}

TEST_F(ClassInvariantsTest, NoInversionWhenGuaranteesAreMet) {
  const std::vector<ClassAllocationView> jobs = {
      view(2, 220.0, 152.0, 220.0), view(0, 219.0, 152.0, 220.0)};
  EXPECT_NO_THROW(check_no_class_inversion(jobs, "test"));
  EXPECT_EQ(stats().violations, 0u);
}

TEST_F(ClassInvariantsTest, StarvedHighClassWithLowClassAtFloorIsLegal) {
  const std::vector<ClassAllocationView> jobs = {
      view(2, 180.0, 152.0, 220.0), view(0, 152.0, 152.0, 220.0)};
  EXPECT_NO_THROW(check_no_class_inversion(jobs, "test"));
}

TEST_F(ClassInvariantsTest, InversionTripsWhenLowClassHoldsDiscretionary) {
  // The rank-2 job is starved (180 < 220) while the rank-0 job sits
  // 28 W above its floor: those watts belong to the higher class.
  const std::vector<ClassAllocationView> jobs = {
      view(2, 180.0, 152.0, 220.0), view(0, 180.0, 152.0, 220.0)};
  EXPECT_THROW(check_no_class_inversion(jobs, "test"), ps::InvalidState);
  EXPECT_NE(last_violation().find("inversion"), std::string::npos);
}

TEST_F(ClassInvariantsTest, EqualRankJobsNeverInvertEachOther) {
  // Proportional sharing within one class starves both a little; no
  // cross-class relationship exists, so nothing trips.
  const std::vector<ClassAllocationView> jobs = {
      view(1, 180.0, 152.0, 220.0), view(1, 200.0, 152.0, 220.0)};
  EXPECT_NO_THROW(check_no_class_inversion(jobs, "test"));
  EXPECT_EQ(stats().violations, 0u);
}

TEST_F(ClassInvariantsTest, CountModeRecordsInsteadOfThrowing) {
  set_mode(Mode::kCount);
  const std::vector<ClassAllocationView> jobs = {
      view(2, 180.0, 152.0, 220.0), view(0, 180.0, 152.0, 220.0)};
  EXPECT_NO_THROW(check_no_class_inversion(jobs, "test"));
  EXPECT_EQ(stats().violations, 1u);
}

}  // namespace
}  // namespace ps::core::invariants
