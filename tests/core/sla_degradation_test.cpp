// The shared degradation step every consumer (loop, daemon, facility)
// runs on a policy output: identity for single-class contexts, class-
// ordered shedding for mixed ones, and the class invariants checked on
// whatever it returns.
#include "core/degradation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/invariants.hpp"
#include "core/policy.hpp"
#include "sim/sla.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

using sim::SlaClass;

runtime::JobCharacterization job(SlaClass sla_class, std::size_t hosts,
                                 double needed_watts) {
  runtime::JobCharacterization characterization;
  characterization.sla_class = sla_class;
  characterization.host_count = hosts;
  characterization.min_settable_cap_watts = 152.0;
  characterization.balancer.host_needed_power_watts.assign(hosts,
                                                           needed_watts);
  return characterization;
}

PolicyContext context_with(std::vector<runtime::JobCharacterization> jobs,
                           double budget_watts) {
  PolicyContext context;
  context.system_budget_watts = budget_watts;
  context.jobs = std::move(jobs);
  return context;
}

TEST(ApplySlaDegradationTest, SingleClassContextIsBitIdentical) {
  // Even a wildly over-budget allocation passes through untouched when
  // every job shares one class: degradation is a multi-tenant concept,
  // and legacy single-tenant paths must not change by a bit.
  const PolicyContext context = context_with(
      {job(SlaClass::kStandard, 1, 220.0), job(SlaClass::kStandard, 1, 220.0)},
      100.0);
  rm::PowerAllocation allocation;
  allocation.job_host_caps = {{230.0}, {240.0}};
  const rm::PowerAllocation out =
      apply_sla_degradation(context, allocation, 100.0, "test");
  ASSERT_EQ(out.job_host_caps, allocation.job_host_caps);
}

TEST(ApplySlaDegradationTest, MixedClassesShedBestEffortFirst) {
  const PolicyContext context = context_with(
      {job(SlaClass::kLatencyCritical, 1, 220.0),
       job(SlaClass::kBestEffort, 1, 220.0)},
      400.0);
  rm::PowerAllocation allocation;
  allocation.job_host_caps = {{220.0}, {220.0}};
  // Budget 400: floors 304, the 96 W left funds latency_critical's need
  // above floor (68) in full; best_effort gets the remaining 28.
  const rm::PowerAllocation out =
      apply_sla_degradation(context, allocation, 400.0, "test");
  EXPECT_DOUBLE_EQ(out.job_host_caps[0][0], 220.0);
  EXPECT_DOUBLE_EQ(out.job_host_caps[1][0], 180.0);
}

TEST(ApplySlaDegradationTest, JobCountMismatchRejected) {
  const PolicyContext context =
      context_with({job(SlaClass::kStandard, 1, 200.0)}, 400.0);
  rm::PowerAllocation allocation;
  allocation.job_host_caps = {{200.0}, {200.0}};
  EXPECT_THROW(static_cast<void>(
                   apply_sla_degradation(context, allocation, 400.0, "test")),
               ps::InvalidArgument);
}

TEST(ApplySlaDegradationTest, ClassInvariantsRunCleanOnTheOutput) {
  invariants::reset();
  invariants::set_mode(invariants::Mode::kFatal);
  const PolicyContext context = context_with(
      {job(SlaClass::kLatencyCritical, 2, 240.0),
       job(SlaClass::kStandard, 1, 240.0),
       job(SlaClass::kBestEffort, 1, 240.0)},
      700.0);
  rm::PowerAllocation allocation;
  allocation.job_host_caps = {{240.0, 240.0}, {240.0}, {240.0}};
  for (const double budget : {100.0, 650.0, 700.0, 900.0, 2000.0}) {
    EXPECT_NO_THROW(static_cast<void>(
        apply_sla_degradation(context, allocation, budget, "test")));
  }
  const invariants::Stats stats = invariants::stats();
  EXPECT_GT(stats.checks, 0u);
  EXPECT_EQ(stats.violations, 0u);
  invariants::set_mode(invariants::Mode::kCount);
  invariants::reset();
}

TEST(ApplySlaDegradationTest, HasMultipleSlaClassesDetectsMixes) {
  EXPECT_FALSE(has_multiple_sla_classes(context_with(
      {job(SlaClass::kBestEffort, 1, 200.0),
       job(SlaClass::kBestEffort, 1, 200.0)},
      400.0)));
  EXPECT_TRUE(has_multiple_sla_classes(context_with(
      {job(SlaClass::kBestEffort, 1, 200.0),
       job(SlaClass::kStandard, 1, 200.0)},
      400.0)));
}

}  // namespace
}  // namespace ps::core
