// CoordinationLoop::run_dynamic: budget revisions replayed against the
// in-memory protocol — adoption at epoch boundaries, the one-control-
// period excursion bound, the emergency clamp, and the always-on runtime
// invariants.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

/// Two-job, eight-host scenario (one power-wasteful, one power-hungry),
/// rebuilt per call so independent runs start from identical state.
struct Scenario {
  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
  std::vector<sim::JobSimulation*> pointers;

  Scenario() {
    cluster = std::make_unique<sim::Cluster>(8);
    kernel::WorkloadConfig wasteful;
    wasteful.intensity = 8.0;
    wasteful.waiting_fraction = 0.5;
    wasteful.imbalance = 3.0;
    kernel::WorkloadConfig hungry;
    hungry.intensity = 32.0;
    std::vector<hw::NodeModel*> hosts_a;
    std::vector<hw::NodeModel*> hosts_b;
    for (std::size_t i = 0; i < 4; ++i) {
      hosts_a.push_back(&cluster->node(i));
      hosts_b.push_back(&cluster->node(i + 4));
    }
    jobs.push_back(
        std::make_unique<sim::JobSimulation>("wasteful", hosts_a, wasteful));
    jobs.push_back(
        std::make_unique<sim::JobSimulation>("hungry", hosts_b, hungry));
    pointers = {jobs[0].get(), jobs[1].get()};
  }

  [[nodiscard]] double floors_watts() const {
    double floors = 0.0;
    for (const auto& job : jobs) {
      for (std::size_t h = 0; h < job->host_count(); ++h) {
        floors += job->host(h).min_cap();
      }
    }
    return floors;
  }
};

/// Runs with invariants fatal (the CI contract) and restores the global
/// mode/counters afterwards.
class DynamicCoordinationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_mode_ = invariants::mode();
    invariants::set_mode(invariants::Mode::kFatal);
    invariants::reset();
  }
  void TearDown() override {
    invariants::reset();
    invariants::set_mode(previous_mode_);
  }

  invariants::Mode previous_mode_ = invariants::Mode::kCount;
};

constexpr double kBudget = 1'700.0;

TEST_F(DynamicCoordinationTest, NoRevisionsMatchesPlainRun) {
  Scenario a;
  Scenario b;
  CoordinationLoop plain(kBudget);
  CoordinationLoop dynamic(kBudget);
  const CoordinationResult expected = plain.run(a.pointers, 30);
  BudgetTelemetry telemetry;
  const CoordinationResult actual =
      dynamic.run_dynamic(b.pointers, 30, {}, {}, nullptr, &telemetry);
  ASSERT_EQ(actual.epochs.size(), expected.epochs.size());
  for (std::size_t e = 0; e < actual.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(actual.epochs[e].allocated_watts,
                     expected.epochs[e].allocated_watts);
    EXPECT_DOUBLE_EQ(actual.epochs[e].budget_watts, kBudget);
    EXPECT_EQ(actual.epochs[e].budget_epoch, 0u);
    EXPECT_FALSE(actual.epochs[e].emergency_clamped);
  }
  EXPECT_EQ(telemetry.revisions_applied, 0u);
  EXPECT_EQ(telemetry.excursion_epochs.size(), 0u);
  EXPECT_DOUBLE_EQ(telemetry.final_budget_watts, kBudget);
  EXPECT_EQ(invariants::stats().violations, 0u);
}

TEST_F(DynamicCoordinationTest, RevisionAdoptedAtItsEpochStart) {
  Scenario scenario;
  const double revised =
      std::max(scenario.floors_watts() + 60.0, 0.75 * kBudget);
  CoordinationLoop loop(kBudget);
  BudgetRevision revision;
  revision.epoch = 1;
  revision.budget_watts = revised;
  revision.at_epoch = 2;
  BudgetTelemetry telemetry;
  const CoordinationResult result = loop.run_dynamic(
      scenario.pointers, 40, {}, {&revision, 1}, nullptr, &telemetry);
  ASSERT_GE(result.epochs.size(), 4u);
  for (const EpochRecord& record : result.epochs) {
    if (record.epoch < 2) {
      EXPECT_DOUBLE_EQ(record.budget_watts, kBudget);
      EXPECT_EQ(record.budget_epoch, 0u);
    } else {
      EXPECT_DOUBLE_EQ(record.budget_watts, revised);
      EXPECT_EQ(record.budget_epoch, 1u);
    }
  }
  EXPECT_EQ(telemetry.revisions_applied, 1u);
  EXPECT_EQ(telemetry.revisions_stale, 0u);
  EXPECT_DOUBLE_EQ(telemetry.final_budget_watts, revised);
  EXPECT_EQ(telemetry.final_budget_epoch, 1u);
  EXPECT_DOUBLE_EQ(loop.budget_watts(), revised);
  EXPECT_EQ(invariants::stats().violations, 0u);
}

TEST_F(DynamicCoordinationTest, BrownoutExcursionIsBoundedToOnePeriod) {
  Scenario scenario;
  // A 30%-class drop, but never below the settable floors (the policy
  // must be able to fit the revised budget at the next RM step).
  const double revised =
      std::max(scenario.floors_watts() + 60.0, 0.70 * kBudget);
  CoordinationLoop loop(kBudget);
  BudgetRevision revision;
  revision.epoch = 1;
  revision.budget_watts = revised;
  revision.at_epoch = 3;
  BudgetTelemetry telemetry;
  const CoordinationResult result = loop.run_dynamic(
      scenario.pointers, 40, {}, {&revision, 1}, nullptr, &telemetry);
  ASSERT_GE(result.epochs.size(), 5u);
  // Exactly the revision epoch runs on the superseded caps; the RM step
  // at its end reprograms under the revised budget.
  ASSERT_EQ(telemetry.excursion_epochs.size(), 1u);
  EXPECT_EQ(telemetry.excursion_epochs[0], 3u);
  EXPECT_EQ(telemetry.excursions.excursions, 1u);
  EXPECT_FALSE(telemetry.excursions.in_excursion);
  EXPECT_DOUBLE_EQ(telemetry.excursions.last_time_to_safe_seconds,
                   result.epochs[3].elapsed_seconds);
  EXPECT_DOUBLE_EQ(telemetry.excursions.max_time_to_safe_seconds,
                   telemetry.excursions.last_time_to_safe_seconds);
  EXPECT_GT(telemetry.excursions.over_budget_watt_seconds, 0.0);
  // Bounded time-to-safe, stated with the measured value for the log.
  std::printf("measured time-to-safe: %.6f s (one control period: %.6f s)\n",
              telemetry.excursions.last_time_to_safe_seconds,
              result.epochs[3].elapsed_seconds);
  EXPECT_LE(telemetry.excursions.last_time_to_safe_seconds,
            result.epochs[3].elapsed_seconds);
  EXPECT_EQ(invariants::stats().violations, 0u);
}

TEST_F(DynamicCoordinationTest, StaleRevisionIsRejectedAndCounted) {
  // A duplicated renegotiation epoch (replayed message): the second copy
  // must not move the budget. Epoch-monotonicity is itself an invariant,
  // so this scenario runs in counting mode, as a production site would.
  invariants::set_mode(invariants::Mode::kCount);
  Scenario scenario;
  const double revised =
      std::max(scenario.floors_watts() + 60.0, 0.8 * kBudget);
  std::vector<BudgetRevision> revisions(2);
  revisions[0].epoch = 1;
  revisions[0].budget_watts = revised;
  revisions[0].at_epoch = 1;
  revisions[1].epoch = 1;  // the replay
  revisions[1].budget_watts = 0.5 * kBudget;
  revisions[1].at_epoch = 2;
  CoordinationLoop loop(kBudget);
  BudgetTelemetry telemetry;
  const CoordinationResult result = loop.run_dynamic(
      scenario.pointers, 30, {}, revisions, nullptr, &telemetry);
  EXPECT_EQ(telemetry.revisions_applied, 1u);
  EXPECT_EQ(telemetry.revisions_stale, 1u);
  EXPECT_DOUBLE_EQ(loop.budget_watts(), revised);
  EXPECT_DOUBLE_EQ(result.epochs.back().budget_watts, revised);
  // The monotonicity invariant recorded the replay.
  EXPECT_GE(invariants::stats().violations, 1u);
}

TEST_F(DynamicCoordinationTest, UnsortedRevisionsRejected) {
  Scenario scenario;
  std::vector<BudgetRevision> revisions(2);
  revisions[0].epoch = 1;
  revisions[0].budget_watts = 1'500.0;
  revisions[0].at_epoch = 4;
  revisions[1].epoch = 2;
  revisions[1].budget_watts = 1'400.0;
  revisions[1].at_epoch = 2;
  CoordinationLoop loop(kBudget);
  EXPECT_THROW(static_cast<void>(loop.run_dynamic(scenario.pointers, 20, {},
                                                  revisions, nullptr,
                                                  nullptr)),
               InvalidArgument);
}

TEST_F(DynamicCoordinationTest, DeepBrownoutTakesTheEmergencyClamp) {
  Scenario scenario;
  // Below the settable floors: no policy output can fit, so the RM step
  // falls back to the shape-preserving clamp and the caps land on the
  // floors (never below — the floor wins over the budget).
  const double revised = 0.9 * scenario.floors_watts();
  CoordinationLoop loop(kBudget);
  BudgetRevision revision;
  revision.epoch = 1;
  revision.budget_watts = revised;
  revision.at_epoch = 2;
  BudgetTelemetry telemetry;
  const CoordinationResult result = loop.run_dynamic(
      scenario.pointers, 40, {}, {&revision, 1}, nullptr, &telemetry);
  EXPECT_GE(telemetry.emergency_clamps, 1u);
  bool clamped_epoch_seen = false;
  for (const EpochRecord& record : result.epochs) {
    clamped_epoch_seen = clamped_epoch_seen || record.emergency_clamped;
  }
  EXPECT_TRUE(clamped_epoch_seen);
  // Caps parked at the floors still exceed the budget: the excursion
  // never closes, and the telemetry says so honestly.
  EXPECT_TRUE(telemetry.excursions.in_excursion);
  double floors = scenario.floors_watts();
  EXPECT_NEAR(result.epochs.back().allocated_watts, floors, 0.5 * 8);
  // max(budget, floors) guards the caps-fit invariant: zero violations.
  EXPECT_EQ(invariants::stats().violations, 0u);
}

TEST_F(DynamicCoordinationTest, ComposesWithNodeFailures) {
  Scenario scenario;
  const double revised =
      std::max(scenario.floors_watts() + 60.0, 0.8 * kBudget);
  sim::FailureEvent failure;
  failure.kind = sim::FailureKind::kNodeFailure;
  failure.epoch = 1;
  failure.job = 0;
  failure.host = 1;
  BudgetRevision revision;
  revision.epoch = 1;
  revision.budget_watts = revised;
  revision.at_epoch = 3;
  CoordinationLoop loop(kBudget);
  FailureTelemetry failures;
  BudgetTelemetry budgets;
  const CoordinationResult result =
      loop.run_dynamic(scenario.pointers, 50, {&failure, 1}, {&revision, 1},
                       &failures, &budgets);
  EXPECT_EQ(failures.events_applied, 1u);
  ASSERT_EQ(failures.reclaims.size(), 1u);
  EXPECT_TRUE(failures.reclaims[0].reclaimed);
  EXPECT_EQ(budgets.revisions_applied, 1u);
  EXPECT_DOUBLE_EQ(result.epochs.back().budget_watts, revised);
  EXPECT_EQ(invariants::stats().violations, 0u);
}

}  // namespace
}  // namespace ps::core
