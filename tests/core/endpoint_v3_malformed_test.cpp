#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/endpoint.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

struct MalformedCase {
  const char* name;
  const char* text;
};

// Every way the v3 (two-domain) wire framing has been seen to go wrong:
// truncated domain sections, duplicated domain tags, out-of-range GPU
// watt fields, and v1/v3 cross-version confusion. The companion file
// endpoint_malformed_test.cpp covers the single-domain grammar.
const std::vector<MalformedCase>& malformed_v3_samples() {
  static const std::vector<MalformedCase> cases = {
      {"v3_header_without_gpu_section",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"v3_truncated_after_gpu_tdp",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"},
      {"v3_truncated_gpu_needed",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120\n"},
      {"duplicate_gpu_observed_tag",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_observed 130\n"},
      {"duplicate_gpu_limit_tag",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_min_cap 110\n"
       "gpu_observed 120\ngpu_needed 130\n"},
      {"v1_header_with_gpu_section",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed 130\n"},
      {"nan_gpu_min_cap",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap nan\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed 130\n"},
      {"negative_gpu_observed",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed -120\ngpu_needed 130\n"},
      {"inf_gpu_needed",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed inf\n"},
      {"gpu_min_above_gpu_tdp",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 400\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed 130\n"},
      {"zero_gpu_min_cap",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 0\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed 130\n"},
      {"gpu_vector_shorter_than_cpu",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180 190\nneeded 170 175\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed 130 140\n"},
      {"gpu_vector_longer_than_cpu",
       "powerstack-sample v3\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120 125\ngpu_needed 130 135\n"},
      {"unknown_version_v4",
       "powerstack-sample v4\nsequence 1\njob x\nmin_cap 152\n"
       "observed 180\nneeded 170\ngpu_min_cap 100\ngpu_tdp 300\n"
       "gpu_observed 120\ngpu_needed 130\n"},
  };
  return cases;
}

const std::vector<MalformedCase>& malformed_v3_policies() {
  static const std::vector<MalformedCase> cases = {
      {"v3_header_without_gpu_caps",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180\n"},
      {"v1_header_with_gpu_caps",
       "powerstack-policy v1\nsequence 1\njob x\ncaps 180\n"
       "gpu_caps 150\n"},
      {"duplicate_gpu_caps_tag",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180\n"
       "gpu_caps 150\ngpu_caps 160\n"},
      {"nan_gpu_cap",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180\n"
       "gpu_caps nan\n"},
      {"negative_gpu_cap",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180\n"
       "gpu_caps -150\n"},
      {"inf_gpu_cap",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180 190\n"
       "gpu_caps 150 inf\n"},
      {"gpu_caps_count_mismatch",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180 190\n"
       "gpu_caps 150\n"},
      {"empty_gpu_caps",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180\ngpu_caps\n"},
      {"gpu_caps_before_caps",
       "powerstack-policy v3\nsequence 1\njob x\ngpu_caps 150\n"
       "caps 180\n"},
      {"zero_budget_epoch_after_gpu_caps",
       "powerstack-policy v3\nsequence 1\njob x\ncaps 180\n"
       "gpu_caps 150\nbudget_epoch 0\n"},
      {"unknown_version_v2",
       "powerstack-policy v2\nsequence 1\njob x\ncaps 180\n"
       "gpu_caps 150\n"},
  };
  return cases;
}

TEST(EndpointV3MalformedTest, SampleParserRejectsEveryCase) {
  for (const MalformedCase& test : malformed_v3_samples()) {
    EXPECT_THROW(static_cast<void>(parse_sample_message(test.text)),
                 ps::Error)
        << "case '" << test.name << "' parsed without error";
  }
}

TEST(EndpointV3MalformedTest, PolicyParserRejectsEveryCase) {
  for (const MalformedCase& test : malformed_v3_policies()) {
    EXPECT_THROW(static_cast<void>(parse_policy_message(test.text)),
                 ps::Error)
        << "case '" << test.name << "' parsed without error";
  }
}

TEST(EndpointV3MalformedTest, SingleDomainMessagesStayV1ByteIdentical) {
  // The versioning contract: a message with no GPU domain serializes to
  // exactly the bytes a pre-GPU build produced.
  SampleMessage sample;
  sample.sequence = 7;
  sample.job_name = "legacy";
  sample.min_settable_cap_watts = 152.0;
  sample.host_observed_watts = {214.0};
  sample.host_needed_watts = {193.1};
  EXPECT_EQ(serialize(sample),
            "powerstack-sample v1\nsequence 7\njob legacy\n"
            "min_cap 152.000\nobserved 214.000\nneeded 193.100\n");

  PolicyMessage policy;
  policy.sequence = 7;
  policy.job_name = "legacy";
  policy.host_caps_watts = {180.0};
  EXPECT_EQ(serialize(policy),
            "powerstack-policy v1\nsequence 7\njob legacy\ncaps 180.000\n");
}

TEST(EndpointV3MalformedTest, V3RoundTripsBitForBit) {
  SampleMessage sample;
  sample.sequence = 41;
  sample.job_name = "hetero";
  sample.min_settable_cap_watts = 152.0 + 1.0 / 3.0;
  sample.host_observed_watts = {214.0001220703125, 0.1 + 0.2};
  sample.host_needed_watts = {193.09999999999999, 7.0 / 9.0};
  sample.gpu_min_cap_watts = 100.0 + 1.0 / 7.0;
  sample.gpu_tdp_watts = 300.0;
  sample.host_gpu_observed_watts = {120.5, 0.0};
  sample.host_gpu_needed_watts = {250.0 / 3.0, 0.0};
  const std::string wire = serialize(sample, WireFidelity::kExact);
  EXPECT_EQ(wire.substr(0, wire.find('\n')), "powerstack-sample v3");
  EXPECT_EQ(parse_sample_message(wire), sample);  // == on doubles: exact

  PolicyMessage policy;
  policy.sequence = 42;
  policy.job_name = "hetero";
  policy.host_caps_watts = {180.0 + 1.0 / 7.0, 152.0};
  policy.host_gpu_caps_watts = {206.375, 100.0};
  policy.budget_epoch = 3;
  EXPECT_EQ(parse_policy_message(serialize(policy, WireFidelity::kExact)),
            policy);
}

TEST(EndpointV3MalformedTest, CrossVersionParseKeepsDomainsSeparate) {
  // A v1 message parsed by the v3-aware parser reports no GPU domain.
  const SampleMessage v1_sample = parse_sample_message(
      "powerstack-sample v1\nsequence 1\njob x\nmin_cap 152\n"
      "observed 180\nneeded 170\n");
  EXPECT_FALSE(v1_sample.has_gpu_domain());
  EXPECT_TRUE(v1_sample.host_gpu_observed_watts.empty());

  const PolicyMessage v1_policy = parse_policy_message(
      "powerstack-policy v1\nsequence 1\njob x\ncaps 180\n"
      "budget_epoch 5\n");
  EXPECT_FALSE(v1_policy.has_gpu_domain());
  EXPECT_EQ(v1_policy.budget_epoch, 5u);

  // budget_epoch still rides last on the v3 grammar.
  const PolicyMessage v3_policy = parse_policy_message(
      "powerstack-policy v3\nsequence 1\njob x\ncaps 180\n"
      "gpu_caps 150\nbudget_epoch 5\n");
  EXPECT_TRUE(v3_policy.has_gpu_domain());
  EXPECT_EQ(v3_policy.budget_epoch, 5u);
  ASSERT_EQ(v3_policy.host_gpu_caps_watts.size(), 1u);
  EXPECT_EQ(v3_policy.host_gpu_caps_watts[0], 150.0);
}

}  // namespace
}  // namespace ps::core
