#include "core/budget.hpp"

#include <gtest/gtest.h>

#include "context_builder.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

using testing::make_job;

TEST(BudgetLevelTest, NamesAndOrder) {
  const std::vector<BudgetLevel> levels = all_budget_levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(to_string(levels[0]), "min");
  EXPECT_EQ(to_string(levels[1]), "ideal");
  EXPECT_EQ(to_string(levels[2]), "max");
}

TEST(BudgetTest, AtSelectsTheRightField) {
  PowerBudgets budgets{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(budgets.at(BudgetLevel::kMin), 1.0);
  EXPECT_DOUBLE_EQ(budgets.at(BudgetLevel::kIdeal), 2.0);
  EXPECT_DOUBLE_EQ(budgets.at(BudgetLevel::kMax), 3.0);
}

TEST(BudgetSelectionTest, FollowsTableThreeDefinitions) {
  const std::vector<runtime::JobCharacterization> jobs = {
      make_job(10, 214.0, 186.0),  // memory-bound balanced
      make_job(10, 228.0, 219.0),  // near the ridge
  };
  const PowerBudgets budgets = select_budgets(jobs);
  // min: smallest per-node needed power x all hosts x 1.025 margin.
  EXPECT_NEAR(budgets.min_watts, 186.0 * 20.0 * 1.025, 1e-6);
  // ideal: sum of needed power.
  EXPECT_NEAR(budgets.ideal_watts, 10.0 * 186.0 + 10.0 * 219.0, 1e-6);
  // max: hungriest uncapped node x all hosts.
  EXPECT_NEAR(budgets.max_watts, 228.0 * 20.0, 1e-6);
}

TEST(BudgetSelectionTest, OrderedMinIdealMax) {
  const std::vector<runtime::JobCharacterization> jobs = {
      make_job(5, 214.0, 152.0), make_job(5, 230.0, 222.0)};
  const PowerBudgets budgets = select_budgets(jobs);
  EXPECT_LT(budgets.min_watts, budgets.ideal_watts);
  EXPECT_LT(budgets.ideal_watts, budgets.max_watts);
}

TEST(BudgetSelectionTest, PerHostHeterogeneityUsesExtremes) {
  const std::vector<runtime::JobCharacterization> jobs = {
      make_job({210.0, 225.0}, {155.0, 220.0}),
  };
  const PowerBudgets budgets = select_budgets(jobs);
  EXPECT_NEAR(budgets.min_watts, 155.0 * 2.0 * 1.025, 1e-6);
  EXPECT_NEAR(budgets.max_watts, 225.0 * 2.0, 1e-6);
  EXPECT_NEAR(budgets.ideal_watts, 375.0, 1e-6);
}

TEST(BudgetSelectionTest, EmptyJobsRejected) {
  EXPECT_THROW(static_cast<void>(select_budgets({})), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::core
