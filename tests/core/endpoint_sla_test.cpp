// Wire discipline of the multi-tenant sla_class extension: the class
// rides as an optional trailing line, present only in its non-standard
// form — every single-tenant sample keeps its pre-SLA bytes.
#include <gtest/gtest.h>

#include <string>

#include "core/endpoint.hpp"
#include "sim/cluster.hpp"
#include "sim/sla.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

SampleMessage sample_message() {
  SampleMessage message;
  message.sequence = 7;
  message.job_name = "lulesh-512";
  message.min_settable_cap_watts = 152.0;
  message.host_observed_watts = {214.125, 220.0};
  message.host_needed_watts = {152.0, 195.75};
  return message;
}

constexpr const char* kLegacySampleWire =
    "powerstack-sample v1\nsequence 1\njob x\nmin_cap 152\n"
    "observed 200\nneeded 180\n";

TEST(EndpointSlaTest, NonStandardClassRoundTrips) {
  for (const sim::SlaClass sla_class :
       {sim::SlaClass::kLatencyCritical, sim::SlaClass::kBestEffort}) {
    SampleMessage original = sample_message();
    original.sla_class = sla_class;
    const std::string wire = serialize(original);
    EXPECT_NE(wire.find(std::string("sla_class ") +
                        std::string(sim::to_string(sla_class))),
              std::string::npos);
    EXPECT_EQ(parse_sample_message(wire), original);
  }
}

TEST(EndpointSlaTest, StandardClassKeepsThePreSlaBytes) {
  // The default class must not appear on the wire at all: a pre-SLA
  // reader parses the bytes, and a pre-SLA writer's bytes parse here.
  const std::string wire = serialize(sample_message());
  EXPECT_EQ(wire.find("sla_class"), std::string::npos);
  const SampleMessage parsed = parse_sample_message(kLegacySampleWire);
  EXPECT_EQ(parsed.sla_class, sim::SlaClass::kStandard);
}

TEST(EndpointSlaTest, ExplicitStandardLineRejected) {
  // "standard" serializes as the line's absence; an explicit form is a
  // writer bug and must not parse (one wire form per message).
  EXPECT_THROW(static_cast<void>(parse_sample_message(
                   std::string(kLegacySampleWire) + "sla_class standard\n")),
               ps::InvalidArgument);
}

TEST(EndpointSlaTest, UnknownClassNameRejected) {
  EXPECT_THROW(static_cast<void>(parse_sample_message(
                   std::string(kLegacySampleWire) + "sla_class gold\n")),
               ps::InvalidArgument);
}

TEST(EndpointSlaTest, MisplacedOrRepeatedTrailerRejected) {
  EXPECT_THROW(static_cast<void>(parse_sample_message(
                   std::string(kLegacySampleWire) +
                   "sla_class best_effort\nsla_class best_effort\n")),
               ps::InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(parse_sample_message(
          std::string(kLegacySampleWire) + "budget_epoch 3\n")),
      ps::InvalidArgument);
}

TEST(EndpointSlaTest, MakeSampleAndContextCarryTheClass) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("be-job", {&cluster.node(0), &cluster.node(1)},
                         kernel::WorkloadConfig{});
  job.set_sla_class(sim::SlaClass::kBestEffort);
  const SampleMessage sample = make_sample(job, 1);
  EXPECT_EQ(sample.sla_class, sim::SlaClass::kBestEffort);
  const PolicyContext context = context_from_samples(
      1000.0, cluster.node(0).tdp(), cluster.node(0).params().dram_watts,
      {sample});
  ASSERT_EQ(context.jobs.size(), 1u);
  EXPECT_EQ(context.jobs[0].sla_class, sim::SlaClass::kBestEffort);
}

}  // namespace
}  // namespace ps::core
