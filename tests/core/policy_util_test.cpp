#include "core/policy_util.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "context_builder.hpp"
#include "util/error.hpp"

namespace ps::core::detail {
namespace {

using core::testing::make_context;
using core::testing::make_job;

HostArrays arrays_for(double budget_per_host) {
  const PolicyContext context = make_context(
      budget_per_host * 4.0,
      {make_job({214.0, 222.0}, {152.0, 219.0}),
       make_job(2, 205.0, 186.0)});
  return HostArrays::from_context(context);
}

TEST(HostArraysTest, FlattensJobsWithOffsets) {
  const HostArrays arrays = arrays_for(190.0);
  EXPECT_EQ(arrays.host_count(), 4u);
  EXPECT_EQ(arrays.job_count(), 2u);
  EXPECT_EQ(arrays.offsets, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(arrays.monitor[0], 214.0);
  EXPECT_DOUBLE_EQ(arrays.monitor[2], 205.0);
  EXPECT_DOUBLE_EQ(arrays.needed[1], 219.0);
  EXPECT_DOUBLE_EQ(arrays.min_cap[0], 152.0);
  // Weight reference sits one DRAM plane below the settable floor.
  EXPECT_DOUBLE_EQ(arrays.weight_ref[0], 136.0);
  EXPECT_DOUBLE_EQ(arrays.tdp[0], 256.0);
}

TEST(HostArraysTest, NeededClampedToHardwareRange) {
  const PolicyContext context = make_context(
      800.0, {make_job({214.0}, {500.0}), make_job({214.0}, {10.0})});
  const HostArrays arrays = HostArrays::from_context(context);
  EXPECT_DOUBLE_EQ(arrays.needed[0], 256.0);  // clamped to TDP
  EXPECT_DOUBLE_EQ(arrays.needed[1], 152.0);  // clamped to floor
}

TEST(HostArraysTest, ToAllocationPreservesShape) {
  HostArrays arrays = arrays_for(190.0);
  std::iota(arrays.assigned.begin(), arrays.assigned.end(), 100.0);
  const rm::PowerAllocation allocation = arrays.to_allocation();
  ASSERT_EQ(allocation.job_host_caps.size(), 2u);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[0][1], 101.0);
  EXPECT_DOUBLE_EQ(allocation.job_host_caps[1][0], 102.0);
}

TEST(WeightedFillTest, DistributesByHeadroomWeights) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {160.0, 200.0, 160.0, 200.0};
  const std::vector<std::size_t> hosts = {0, 1};
  // Weights: 160-136=24 and 200-136=64.
  const double leftover =
      weighted_headroom_fill(arrays, hosts, arrays.tdp, 44.0);
  EXPECT_NEAR(leftover, 0.0, 1e-9);
  EXPECT_NEAR(arrays.assigned[0], 160.0 + 44.0 * 24.0 / 88.0, 1e-9);
  EXPECT_NEAR(arrays.assigned[1], 200.0 + 44.0 * 64.0 / 88.0, 1e-9);
  // Hosts not in the list are untouched.
  EXPECT_DOUBLE_EQ(arrays.assigned[2], 160.0);
}

TEST(WeightedFillTest, SinglePassDropsUndeliverableWatts) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {250.0, 152.0, 152.0, 152.0};
  const std::vector<std::size_t> hosts = {0, 1};
  // Host 0 has weight 114 but only 6 W of headroom to TDP; host 1 has
  // weight 16. A single pass strands most of host 0's share.
  const double leftover =
      weighted_headroom_fill(arrays, hosts, arrays.tdp, 100.0);
  EXPECT_DOUBLE_EQ(arrays.assigned[0], 256.0);
  EXPECT_GT(leftover, 50.0);
}

TEST(WeightedFillTest, ExtraRoundsReSpreadTheLeftover) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {250.0, 152.0, 152.0, 152.0};
  const std::vector<std::size_t> hosts = {0, 1};
  const double leftover =
      weighted_headroom_fill(arrays, hosts, arrays.tdp, 100.0, 16);
  EXPECT_DOUBLE_EQ(arrays.assigned[0], 256.0);
  EXPECT_NEAR(leftover, 0.0, 1e-6);
  EXPECT_NEAR(arrays.assigned[1], 152.0 + 94.0, 1e-6);
}

TEST(WeightedFillTest, AllAtFloorMeansNoWeights) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {136.0, 136.0, 136.0, 136.0};
  const std::vector<std::size_t> hosts = {0, 1, 2, 3};
  const double leftover =
      weighted_headroom_fill(arrays, hosts, arrays.tdp, 50.0);
  EXPECT_DOUBLE_EQ(leftover, 50.0);
}

TEST(UniformFillTest, FillsToTargetsEvenly) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {150.0, 200.0, 150.0, 210.0};
  const std::vector<double> target = {170.0, 200.0, 160.0, 210.0};
  const double leftover = uniform_fill_to_target(arrays, target, 20.0);
  // Hosts 0 and 2 are hungry; each is offered 10, host 2 takes only 10
  // up to its target... host 2 needs 10, host 0 needs 20.
  EXPECT_NEAR(leftover, 0.0, 1e-9);
  EXPECT_NEAR(arrays.assigned[0] + arrays.assigned[2], 320.0, 1e-9);
  EXPECT_LE(arrays.assigned[0], 170.0 + 1e-9);
  EXPECT_LE(arrays.assigned[2], 160.0 + 1e-9);
}

TEST(UniformFillTest, RepeatsUntilPoolEmptyOrSatisfied) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {150.0, 150.0, 150.0, 150.0};
  const std::vector<double> target = {155.0, 160.0, 200.0, 200.0};
  const double leftover = uniform_fill_to_target(arrays, target, 40.0);
  EXPECT_NEAR(leftover, 0.0, 1e-9);
  // Everyone below target got topped up; the 40 W pool fully placed.
  double placed = 0.0;
  for (double assigned : arrays.assigned) {
    placed += assigned;
  }
  EXPECT_NEAR(placed, 600.0 + 40.0, 1e-9);
  EXPECT_NEAR(arrays.assigned[0], 155.0, 1e-9);
}

TEST(UniformFillTest, SurplusBeyondTargetsIsReturned) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {150.0, 150.0, 150.0, 150.0};
  const std::vector<double> target = {152.0, 152.0, 152.0, 152.0};
  const double leftover = uniform_fill_to_target(arrays, target, 100.0);
  EXPECT_NEAR(leftover, 92.0, 1e-9);
}

TEST(FillValidationTest, RejectsBadInputs) {
  HostArrays arrays = arrays_for(190.0);
  arrays.assigned = {150.0, 150.0, 150.0, 150.0};
  const std::vector<std::size_t> hosts = {0};
  const std::vector<double> short_upper = {200.0};
  EXPECT_THROW(static_cast<void>(weighted_headroom_fill(
                   arrays, hosts, short_upper, 10.0)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(weighted_headroom_fill(
                   arrays, hosts, arrays.tdp, -1.0)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(weighted_headroom_fill(
                   arrays, hosts, arrays.tdp, 10.0, 0)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(
                   uniform_fill_to_target(arrays, short_upper, 10.0)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::core::detail
