#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/endpoint.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

struct MalformedCase {
  const char* name;
  const char* text;
};

// The batched rack-aggregate frames are the only messages whose grammar
// carries *counts* (jobs, per-block line counts), so a torn or hostile
// frame can lie about how much follows. Every case here must be rejected
// before the parser walks past the end of the frame. Companion files:
// endpoint_malformed_test.cpp (v1 grammar), endpoint_v3_malformed_test.cpp
// (two-domain grammar).
const std::vector<MalformedCase>& malformed_rack_samples() {
  static const std::vector<MalformedCase> cases = {
      {"empty", ""},
      {"wrong_header",
       "powerstack-rack-sample v2\nrack r0\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"flat_sample_header",
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"missing_rack_line",
       "powerstack-rack-sample v1\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"rack_name_with_space",
       "powerstack-rack-sample v1\nrack r 0\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"empty_rack_name",
       "powerstack-rack-sample v1\nrack \nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"zero_jobs",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 0\n"},
      {"jobs_count_exceeds_blocks",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 2\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"jobs_count_below_blocks",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob b\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      // The torn-frame family: the block's declared line count walks past
      // the bytes that actually arrived.
      {"torn_block_short_one_line",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\n"},
      {"torn_block_count_overruns_frame",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 7\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      // Hostile counts: a huge or zero count must fail fast, not allocate
      // or walk the buffer.
      {"hostile_huge_block_count",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\n"
       "sample 4294967295\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"zero_block_count",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 0\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"block_count_short_splits_message",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 3\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      // Job-order discipline: the aggregate must be name-ordered and
      // duplicate-free, or the root's name-keyed round order would not
      // match the aggregate's.
      {"duplicate_job_names",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 2\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"out_of_order_job_names",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 2\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob b\nmin_cap 152\n"
       "observed 180\nneeded 170\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      // The round header must agree with the newest embedded sequence.
      {"round_below_max_sequence",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 2\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"round_above_max_sequence",
       "powerstack-rack-sample v1\nrack r0\nround 3\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 2\njob a\nmin_cap 152\n"
       "observed 180\nneeded 170\n"},
      {"corrupt_embedded_sample",
       "powerstack-rack-sample v1\nrack r0\nround 1\njobs 1\nsample 6\n"
       "powerstack-sample v1\nsequence 1\njob a\nmin_cap nan\n"
       "observed 180\nneeded 170\n"},
  };
  return cases;
}

const std::vector<MalformedCase>& malformed_rack_policies() {
  static const std::vector<MalformedCase> cases = {
      {"wrong_header",
       "powerstack-rack-policy v2\nrack r0\nround 1\nrack_budget 180\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"missing_rack_budget",
       "powerstack-rack-policy v1\nrack r0\nround 1\njobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"zero_rack_budget",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget 0\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"nan_rack_budget",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget nan\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"negative_rack_budget",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget -180\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      // The grant's self-consistency check: the advertised rack budget
      // must equal the sum of the caps it carries.
      {"rack_budget_disagrees_with_caps",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget 200\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"torn_policy_block",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget 180\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\n"},
      {"hostile_huge_policy_count",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget 180\n"
       "jobs 1\npolicy 18446744073709551615\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"duplicate_policy_job",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget 360\n"
       "jobs 2\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"round_mismatch",
       "powerstack-rack-policy v1\nrack r0\nround 2\nrack_budget 180\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\n"},
      {"trailing_garbage",
       "powerstack-rack-policy v1\nrack r0\nround 1\nrack_budget 180\n"
       "jobs 1\npolicy 4\n"
       "powerstack-policy v1\nsequence 1\njob a\ncaps 180\ngarbage\n"},
  };
  return cases;
}

TEST(EndpointRackMalformedTest, RackSampleParserRejectsEveryCase) {
  for (const MalformedCase& test : malformed_rack_samples()) {
    EXPECT_THROW(static_cast<void>(parse_rack_sample_message(test.text)),
                 ps::Error)
        << "case '" << test.name << "' parsed without error";
  }
}

TEST(EndpointRackMalformedTest, RackPolicyParserRejectsEveryCase) {
  for (const MalformedCase& test : malformed_rack_policies()) {
    EXPECT_THROW(static_cast<void>(parse_rack_policy_message(test.text)),
                 ps::Error)
        << "case '" << test.name << "' parsed without error";
  }
}

TEST(EndpointRackMalformedTest, RackSampleRoundTripsBitForBit) {
  RackSampleMessage message;
  message.rack = "rack7";
  SampleMessage a;
  a.sequence = 11;
  a.job_name = "a-wasteful";
  a.min_settable_cap_watts = 152.0 + 1.0 / 3.0;
  a.host_observed_watts = {214.0001220703125, 0.1 + 0.2};
  a.host_needed_watts = {193.09999999999999, 7.0 / 9.0};
  SampleMessage b;
  b.sequence = 12;
  b.job_name = "b-hungry";
  b.min_settable_cap_watts = 152.0;
  b.host_observed_watts = {230.0};
  b.host_needed_watts = {250.0 / 3.0};
  b.gpu_min_cap_watts = 100.0 + 1.0 / 7.0;
  b.gpu_tdp_watts = 300.0;
  b.host_gpu_observed_watts = {120.5};
  b.host_gpu_needed_watts = {250.0 / 3.0};
  message.samples = {a, b};
  message.round = 12;  // max embedded sequence

  const std::string wire = serialize(message, WireFidelity::kExact);
  EXPECT_EQ(wire_message_kind(wire), WireMessageKind::kRackSample);
  EXPECT_EQ(parse_rack_sample_message(wire), message);  // exact doubles
}

TEST(EndpointRackMalformedTest, RackPolicyRoundTripsBitForBit) {
  RackPolicyMessage message;
  message.rack = "rack7";
  PolicyMessage a;
  a.sequence = 11;
  a.job_name = "a-wasteful";
  a.host_caps_watts = {180.0 + 1.0 / 7.0, 152.0};
  a.budget_epoch = 3;
  a.fence_epoch = 2;
  PolicyMessage b;
  b.sequence = 12;
  b.job_name = "b-hungry";
  b.host_caps_watts = {206.375};
  b.host_gpu_caps_watts = {100.0 + 2.0 / 3.0};
  b.budget_epoch = 3;
  message.policies = {a, b};
  message.round = 12;
  for (const PolicyMessage& policy : message.policies) {
    for (const double cap : policy.host_caps_watts) {
      message.rack_budget_watts += cap;
    }
    for (const double cap : policy.host_gpu_caps_watts) {
      message.rack_budget_watts += cap;
    }
  }

  const std::string wire = serialize(message, WireFidelity::kExact);
  EXPECT_EQ(wire_message_kind(wire), WireMessageKind::kRackPolicy);
  EXPECT_EQ(parse_rack_policy_message(wire), message);
}

TEST(EndpointRackMalformedTest, DisplayFidelityStaysSelfConsistent) {
  // kDisplay rounds each cap to 3 decimals; the serialized rack_budget
  // must still agree with the serialized caps within the parser's
  // rounding tolerance, or a display-fidelity frame could never parse.
  RackPolicyMessage message;
  message.rack = "r0";
  PolicyMessage policy;
  policy.sequence = 1;
  policy.job_name = "a";
  policy.host_caps_watts = {100.0 / 3.0, 200.0 / 7.0, 50.0 / 9.0};
  message.policies = {policy};
  message.round = 1;
  for (const double cap : policy.host_caps_watts) {
    message.rack_budget_watts += cap;
  }
  const RackPolicyMessage parsed =
      parse_rack_policy_message(serialize(message));
  EXPECT_EQ(parsed.rack, "r0");
  ASSERT_EQ(parsed.policies.size(), 1u);
  EXPECT_NEAR(parsed.rack_budget_watts, message.rack_budget_watts, 2e-3);
}

}  // namespace
}  // namespace ps::core
