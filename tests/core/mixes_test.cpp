#include "core/mixes.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace ps::core {
namespace {

TEST(MixesTest, AllSixMixesExist) {
  const std::vector<WorkloadMix> mixes = all_paper_mixes(10);
  ASSERT_EQ(mixes.size(), 6u);
  std::set<std::string> names;
  for (const auto& mix : mixes) {
    names.insert(mix.name);
  }
  EXPECT_TRUE(names.count("NeedUsedPower"));
  EXPECT_TRUE(names.count("HighImbalance"));
  EXPECT_TRUE(names.count("WastefulPower"));
  EXPECT_TRUE(names.count("LowPower"));
  EXPECT_TRUE(names.count("HighPower"));
  EXPECT_TRUE(names.count("RandomLarge"));
}

TEST(MixesTest, EveryMixSpans900NodesAtPaperScale) {
  for (MixKind kind : all_mix_kinds()) {
    const WorkloadMix mix = make_mix(kind, 100);
    EXPECT_EQ(mix.total_nodes(), 900u) << mix.name;
  }
}

TEST(MixesTest, NineJobsExceptHighImbalance) {
  for (MixKind kind : all_mix_kinds()) {
    const WorkloadMix mix = make_mix(kind, 10);
    if (kind == MixKind::kHighImbalance) {
      EXPECT_EQ(mix.jobs.size(), 1u);
      EXPECT_EQ(mix.jobs[0].node_count, 90u);
    } else {
      EXPECT_EQ(mix.jobs.size(), 9u) << mix.name;
    }
  }
}

TEST(MixesTest, AllWorkloadsValidate) {
  for (MixKind kind : all_mix_kinds()) {
    for (const auto& job : make_mix(kind, 10).jobs) {
      EXPECT_NO_THROW(job.validate()) << job.name;
    }
  }
}

TEST(MixesTest, JobNamesAreUniqueWithinMix) {
  for (MixKind kind : all_mix_kinds()) {
    const WorkloadMix mix = make_mix(kind, 10);
    std::set<std::string> names;
    for (const auto& job : mix.jobs) {
      EXPECT_TRUE(names.insert(job.name).second)
          << "duplicate job name " << job.name << " in " << mix.name;
    }
  }
}

TEST(MixesTest, NeedUsedPowerIsBalanced) {
  for (const auto& job : make_mix(MixKind::kNeedUsedPower, 10).jobs) {
    EXPECT_DOUBLE_EQ(job.workload.waiting_fraction, 0.0) << job.name;
    EXPECT_DOUBLE_EQ(job.workload.imbalance, 1.0) << job.name;
  }
}

TEST(MixesTest, HighImbalanceIsSingleImbalancedJob) {
  const WorkloadMix mix = make_mix(MixKind::kHighImbalance, 10);
  ASSERT_EQ(mix.jobs.size(), 1u);
  EXPECT_GT(mix.jobs[0].workload.imbalance, 1.0);
  EXPECT_GT(mix.jobs[0].workload.waiting_fraction, 0.0);
}

TEST(MixesTest, WastefulPowerMixesImbalancedAndComputeJobs) {
  const WorkloadMix mix = make_mix(MixKind::kWastefulPower, 10);
  int imbalanced = 0;
  int balanced = 0;
  for (const auto& job : mix.jobs) {
    (job.workload.waiting_fraction > 0.0 ? imbalanced : balanced) += 1;
  }
  EXPECT_GE(imbalanced, 4);
  EXPECT_GE(balanced, 2);
}

TEST(MixesTest, LowPowerUsesNarrowVectors) {
  int narrow = 0;
  for (const auto& job : make_mix(MixKind::kLowPower, 10).jobs) {
    EXPECT_LE(job.workload.intensity, 1.0) << job.name;
    if (job.workload.vector_width != hw::VectorWidth::kYmm256) {
      ++narrow;
    }
  }
  EXPECT_GE(narrow, 6);
}

TEST(MixesTest, HighPowerSitsNearTheRidge) {
  for (const auto& job : make_mix(MixKind::kHighPower, 10).jobs) {
    EXPECT_GE(job.workload.intensity, 4.0) << job.name;
    EXPECT_LE(job.workload.intensity, 16.0) << job.name;
  }
}

TEST(MixesTest, RandomLargeDeterministicPerSeed) {
  const WorkloadMix a = make_mix(MixKind::kRandomLarge, 10, 99);
  const WorkloadMix b = make_mix(MixKind::kRandomLarge, 10, 99);
  const WorkloadMix c = make_mix(MixKind::kRandomLarge, 10, 100);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].workload, b.jobs[j].workload);
  }
  bool any_different = false;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    if (!(a.jobs[j].workload == c.jobs[j].workload)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(MixesTest, HeatmapGridIsEightByseven) {
  const auto grid = heatmap_grid(hw::VectorWidth::kYmm256);
  EXPECT_EQ(grid.size(), 8u * 7u);
  // First row: intensity 0.25 across all columns.
  for (std::size_t c = 0; c < 7; ++c) {
    EXPECT_DOUBLE_EQ(grid[c].intensity, 0.25);
  }
  // Column 0 is balanced; others pair waiting% with imbalance.
  EXPECT_DOUBLE_EQ(grid[0].waiting_fraction, 0.0);
  EXPECT_DOUBLE_EQ(grid[1].waiting_fraction, 0.25);
  EXPECT_DOUBLE_EQ(grid[1].imbalance, 2.0);
  EXPECT_DOUBLE_EQ(grid[6].waiting_fraction, 0.75);
  EXPECT_DOUBLE_EQ(grid[6].imbalance, 3.0);
}

TEST(MixesTest, ZeroNodesPerJobRejected) {
  EXPECT_THROW(static_cast<void>(make_mix(MixKind::kLowPower, 0)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::core
