#include <gtest/gtest.h>

#include "core/endpoint.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

SampleMessage sample_with_sequence(std::uint64_t sequence,
                                   double observed = 200.0) {
  SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = "seq-job";
  sample.min_settable_cap_watts = 100.0;
  sample.host_observed_watts = {observed};
  sample.host_needed_watts = {observed};
  return sample;
}

TEST(SampleLatchTest, FirstSampleIsAcceptedAndFresh) {
  SampleLatch latch;
  EXPECT_FALSE(latch.latest().has_value());
  EXPECT_FALSE(latch.has_fresh());
  EXPECT_TRUE(latch.offer(sample_with_sequence(0)));
  EXPECT_TRUE(latch.has_fresh());
  EXPECT_EQ(latch.latest()->sequence, 0u);
}

TEST(SampleLatchTest, NewestSequenceWins) {
  SampleLatch latch;
  EXPECT_TRUE(latch.offer(sample_with_sequence(1, 210.0)));
  EXPECT_TRUE(latch.offer(sample_with_sequence(5, 230.0)));
  EXPECT_EQ(latch.latest()->sequence, 5u);
  EXPECT_EQ(latch.latest()->host_observed_watts[0], 230.0);
}

TEST(SampleLatchTest, StaleAndOutOfOrderSamplesAreIgnored) {
  SampleLatch latch;
  EXPECT_TRUE(latch.offer(sample_with_sequence(5, 230.0)));
  static_cast<void>(latch.consume());
  // An older sequence arriving late must neither replace the held sample
  // nor mark it fresh again.
  EXPECT_FALSE(latch.offer(sample_with_sequence(3, 999.0)));
  EXPECT_FALSE(latch.has_fresh());
  EXPECT_EQ(latch.latest()->sequence, 5u);
  EXPECT_EQ(latch.latest()->host_observed_watts[0], 230.0);
}

TEST(SampleLatchTest, DuplicateSequenceIsIdempotent) {
  SampleLatch latch;
  EXPECT_TRUE(latch.offer(sample_with_sequence(7, 220.0)));
  static_cast<void>(latch.consume());
  // A retransmit of the same sequence (e.g. a client that resent after a
  // timeout) changes nothing: same payload kept, no spurious freshness.
  EXPECT_FALSE(latch.offer(sample_with_sequence(7, 555.0)));
  EXPECT_FALSE(latch.has_fresh());
  EXPECT_EQ(latch.latest()->host_observed_watts[0], 220.0);
}

TEST(SampleLatchTest, ConsumeClearsFreshnessButKeepsTheSample) {
  SampleLatch latch;
  EXPECT_TRUE(latch.offer(sample_with_sequence(2)));
  const SampleMessage& consumed = latch.consume();
  EXPECT_EQ(consumed.sequence, 2u);
  EXPECT_FALSE(latch.has_fresh());
  // The latest sample remains queryable for the next allocation round.
  ASSERT_TRUE(latch.latest().has_value());
  EXPECT_EQ(latch.latest()->sequence, 2u);
  // A newer sample re-arms freshness.
  EXPECT_TRUE(latch.offer(sample_with_sequence(3)));
  EXPECT_TRUE(latch.has_fresh());
}

TEST(SampleLatchTest, ConsumeWithoutSampleThrows) {
  SampleLatch latch;
  EXPECT_THROW(static_cast<void>(latch.consume()), ps::InvalidState);
}

}  // namespace
}  // namespace ps::core
