#include "core/endpoint.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

SampleMessage sample_message() {
  SampleMessage message;
  message.sequence = 7;
  message.job_name = "lulesh-512";
  message.min_settable_cap_watts = 152.0;
  message.host_observed_watts = {214.125, 220.0};
  message.host_needed_watts = {152.0, 195.75};
  return message;
}

TEST(EndpointTest, SampleMessageRoundTrips) {
  const SampleMessage original = sample_message();
  const SampleMessage parsed = parse_sample_message(serialize(original));
  EXPECT_EQ(parsed, original);
}

TEST(EndpointTest, PolicyMessageRoundTrips) {
  PolicyMessage original;
  original.sequence = 9;
  original.job_name = "lulesh-512";
  original.host_caps_watts = {180.5, 219.0, 152.0};
  const PolicyMessage parsed = parse_policy_message(serialize(original));
  EXPECT_EQ(parsed, original);
}

TEST(EndpointTest, WireFormatIsVersionedAndReadable) {
  const std::string wire = serialize(sample_message());
  EXPECT_NE(wire.find("powerstack-sample v1"), std::string::npos);
  EXPECT_NE(wire.find("sequence 7"), std::string::npos);
  EXPECT_NE(wire.find("job lulesh-512"), std::string::npos);
  EXPECT_NE(wire.find("observed 214.125 220.000"), std::string::npos);
}

TEST(EndpointTest, QueuesDeliverInOrder) {
  Endpoint endpoint;
  EXPECT_FALSE(endpoint.receive_sample().has_value());
  SampleMessage first = sample_message();
  SampleMessage second = sample_message();
  second.sequence = 8;
  endpoint.post_sample(first);
  endpoint.post_sample(second);
  EXPECT_EQ(endpoint.pending_samples(), 2u);
  EXPECT_EQ(endpoint.receive_sample()->sequence, 7u);
  EXPECT_EQ(endpoint.receive_sample()->sequence, 8u);
  EXPECT_FALSE(endpoint.receive_sample().has_value());
}

TEST(EndpointTest, MalformedMessagesRejected) {
  EXPECT_THROW(static_cast<void>(parse_sample_message("")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_sample_message(
                   "powerstack-sample v2\nsequence 1\njob x\nmin_cap 1\n"
                   "observed 1\nneeded 1\n")),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(parse_policy_message(
                   "powerstack-policy v1\nsequence 1\njob x\n")),
               ps::InvalidArgument);
  // Host-count mismatch between observed and needed.
  EXPECT_THROW(static_cast<void>(parse_sample_message(
                   "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
                   "observed 1 2\nneeded 1\n")),
               ps::InvalidArgument);
}

TEST(EndpointTest, ProtocolCarriesTheFullCoordinationExchange) {
  // Runtime side: two jobs measure themselves into samples.
  sim::Cluster cluster(8);
  kernel::WorkloadConfig wasteful;
  wasteful.intensity = 8.0;
  wasteful.waiting_fraction = 0.5;
  wasteful.imbalance = 3.0;
  kernel::WorkloadConfig hungry;
  hungry.intensity = 32.0;
  std::vector<hw::NodeModel*> a;
  std::vector<hw::NodeModel*> b;
  for (std::size_t i = 0; i < 4; ++i) {
    a.push_back(&cluster.node(i));
    b.push_back(&cluster.node(i + 4));
  }
  sim::JobSimulation job_a("wasteful", a, wasteful);
  sim::JobSimulation job_b("hungry", b, hungry);

  Endpoint endpoint;
  endpoint.post_sample(make_sample(job_a, 1));
  endpoint.post_sample(make_sample(job_b, 1));

  // RM side: receives samples off the wire, allocates, replies.
  std::vector<SampleMessage> samples;
  while (auto sample = endpoint.receive_sample()) {
    samples.push_back(std::move(*sample));
  }
  ASSERT_EQ(samples.size(), 2u);
  const double budget = 8.0 * 195.0;
  const PolicyContext context = context_from_samples(
      budget, cluster.node(0).tdp(),
      cluster.node(0).params().dram_watts, samples);
  const rm::PowerAllocation allocation =
      MixedAdaptivePolicy{}.allocate(context);
  for (const PolicyMessage& message :
       make_policy_messages(allocation, samples, 2)) {
    endpoint.post_policy(message);
  }

  // Runtime side: applies the received policies.
  std::size_t applied = 0;
  while (auto policy = endpoint.receive_policy()) {
    sim::JobSimulation& job =
        policy->job_name == "wasteful" ? job_a : job_b;
    apply_policy_message(job, *policy);
    ++applied;
  }
  EXPECT_EQ(applied, 2u);

  // The whole exchange went through the serialized wire, and the caps
  // landed: waiting hosts near the floor, hungry job funded above share.
  EXPECT_LT(job_a.host_cap(0), 160.0);
  EXPECT_GT(job_b.host_cap(0), 196.0);
  const double total =
      job_a.total_allocated_power() + job_b.total_allocated_power();
  EXPECT_LE(total, budget + 8.0 * 0.5);
}

TEST(EndpointTest, ApplyValidatesAddressing) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("right", {&cluster.node(0), &cluster.node(1)},
                         kernel::WorkloadConfig{});
  PolicyMessage message;
  message.job_name = "wrong";
  message.host_caps_watts = {200.0, 200.0};
  EXPECT_THROW(apply_policy_message(job, message), ps::InvalidArgument);
  message.job_name = "right";
  message.host_caps_watts = {200.0};
  EXPECT_THROW(apply_policy_message(job, message), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::core
