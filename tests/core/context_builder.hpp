#pragma once

#include <vector>

#include "core/policy.hpp"

namespace ps::core::testing {

/// Builds a synthetic job characterization without running a simulation.
/// `monitor` and `needed` are per-host (uniform across the job's hosts
/// unless explicit vectors are given).
inline runtime::JobCharacterization make_job(std::size_t hosts,
                                             double monitor_watts,
                                             double needed_watts,
                                             double min_cap = 152.0) {
  runtime::JobCharacterization job;
  job.host_count = hosts;
  job.min_settable_cap_watts = min_cap;
  job.monitor.host_average_power_watts.assign(hosts, monitor_watts);
  job.monitor.average_node_power_watts = monitor_watts;
  job.monitor.max_host_power_watts = monitor_watts;
  job.monitor.min_host_power_watts = monitor_watts;
  job.balancer.host_needed_power_watts.assign(hosts, needed_watts);
  job.balancer.host_average_power_watts.assign(hosts, needed_watts);
  job.balancer.average_node_power_watts = needed_watts;
  job.balancer.max_host_needed_watts = needed_watts;
  job.balancer.min_host_needed_watts = needed_watts;
  return job;
}

/// A job with explicit per-host values (e.g. waiting vs critical hosts).
inline runtime::JobCharacterization make_job(
    std::vector<double> monitor_watts, std::vector<double> needed_watts,
    double min_cap = 152.0) {
  runtime::JobCharacterization job;
  job.host_count = monitor_watts.size();
  job.min_settable_cap_watts = min_cap;
  job.monitor.host_average_power_watts = monitor_watts;
  job.balancer.host_needed_power_watts = needed_watts;
  job.balancer.host_average_power_watts = needed_watts;
  double monitor_max = monitor_watts.front();
  double monitor_min = monitor_watts.front();
  for (double w : monitor_watts) {
    monitor_max = std::max(monitor_max, w);
    monitor_min = std::min(monitor_min, w);
  }
  job.monitor.max_host_power_watts = monitor_max;
  job.monitor.min_host_power_watts = monitor_min;
  double needed_max = needed_watts.front();
  double needed_min = needed_watts.front();
  for (double w : needed_watts) {
    needed_max = std::max(needed_max, w);
    needed_min = std::min(needed_min, w);
  }
  job.balancer.max_host_needed_watts = needed_max;
  job.balancer.min_host_needed_watts = needed_min;
  return job;
}

inline PolicyContext make_context(
    double budget, std::vector<runtime::JobCharacterization> jobs) {
  PolicyContext context;
  context.system_budget_watts = budget;
  context.node_tdp_watts = 256.0;
  context.uncappable_watts = 16.0;
  context.jobs = std::move(jobs);
  return context;
}

}  // namespace ps::core::testing
