#include <gtest/gtest.h>

#include <numeric>

#include "context_builder.hpp"
#include "core/policies.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

using testing::make_context;
using testing::make_job;

// Gives a CPU-only characterization a GPU domain: per-host observed and
// needed GPU power with the default device limits.
runtime::JobCharacterization with_gpu(runtime::JobCharacterization job,
                                      double gpu_observed,
                                      double gpu_needed,
                                      double gpu_min = 100.0,
                                      double gpu_tdp = 300.0) {
  job.host_gpu_observed_watts.assign(job.host_count, gpu_observed);
  job.host_gpu_needed_watts.assign(job.host_count, gpu_needed);
  job.gpu_min_cap_watts = gpu_min;
  job.gpu_tdp_watts = gpu_tdp;
  return job;
}

double sum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

TEST(HeteroPolicyTest, CpuOnlyContextDelegatesToMixedAdaptiveExactly) {
  const PolicyContext context = make_context(
      800.0, {make_job(2, 214.0, 190.0), make_job(2, 180.0, 160.0)});
  const rm::PowerAllocation hetero =
      HeteroAdaptivePolicy{}.allocate(context);
  const rm::PowerAllocation mixed =
      MixedAdaptivePolicy{}.allocate(context);
  ASSERT_EQ(hetero.job_host_caps.size(), mixed.job_host_caps.size());
  for (std::size_t j = 0; j < mixed.job_host_caps.size(); ++j) {
    EXPECT_EQ(hetero.job_host_caps[j], mixed.job_host_caps[j]);
  }
  EXPECT_FALSE(hetero.has_gpu_caps());
}

TEST(HeteroPolicyTest, ShiftsWattsTowardTheStarvedGpuDomain) {
  // One 2-host job. CPU phase needs only the floor; the GPU phase wants
  // everything it can get. Per-host share is 350 W across both domains.
  PolicyContext context = make_context(
      700.0, {with_gpu(make_job(2, 170.0, 152.0), 170.0, 290.0)});
  const rm::PowerAllocation allocation =
      HeteroAdaptivePolicy{}.allocate(context);
  ASSERT_EQ(allocation.job_host_caps.size(), 1u);
  ASSERT_EQ(allocation.job_gpu_caps(0).size(), 2u);
  for (std::size_t h = 0; h < 2; ++h) {
    // CPU squeezed to its needed power (the floor), GPU lifted well above
    // a naive 50/50 split of the share.
    EXPECT_NEAR(allocation.job_host_caps[0][h], 152.0, 1.0);
    EXPECT_GT(allocation.job_gpu_caps(0)[h], 190.0);
  }
  EXPECT_LE(allocation.total_watts(), 700.0 + 0.5);
}

TEST(HeteroPolicyTest, ShiftsWattsTowardTheStarvedCpuDomain) {
  // The mirror image: GPU needs only its floor, CPU is the bottleneck.
  PolicyContext context = make_context(
      700.0, {with_gpu(make_job(2, 240.0, 250.0), 110.0, 100.0)});
  const rm::PowerAllocation allocation =
      HeteroAdaptivePolicy{}.allocate(context);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_NEAR(allocation.job_gpu_caps(0)[h], 100.0, 1.0);
    EXPECT_GT(allocation.job_host_caps[0][h], 220.0);
  }
  EXPECT_LE(allocation.total_watts(), 700.0 + 0.5);
}

TEST(HeteroPolicyTest, RespectsPerDomainBoundsUnderPressure) {
  // Budget barely above the two-domain floor: every cap must still land
  // inside its own domain's settable range.
  PolicyContext context = make_context(
      2.0 * (152.0 + 100.0) + 10.0,
      {with_gpu(make_job(2, 240.0, 250.0), 250.0, 290.0)});
  const rm::PowerAllocation allocation =
      HeteroAdaptivePolicy{}.allocate(context);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_GE(allocation.job_host_caps[0][h], 152.0);
    EXPECT_LE(allocation.job_host_caps[0][h], 256.0);
    EXPECT_GE(allocation.job_gpu_caps(0)[h], 100.0);
    EXPECT_LE(allocation.job_gpu_caps(0)[h], 300.0);
  }
  EXPECT_LE(allocation.total_watts(), context.system_budget_watts + 0.5);
}

TEST(HeteroPolicyTest, MixedClusterKeepsCpuOnlyJobsSingleDomain) {
  // One hetero job and one CPU-only job under a shared budget: the
  // CPU-only job must come back without a GPU cap vector.
  PolicyContext context = make_context(
      1000.0, {with_gpu(make_job(2, 170.0, 152.0), 170.0, 290.0),
               make_job(2, 214.0, 190.0)});
  const rm::PowerAllocation allocation =
      HeteroAdaptivePolicy{}.allocate(context);
  ASSERT_EQ(allocation.job_host_caps.size(), 2u);
  EXPECT_EQ(allocation.job_gpu_caps(0).size(), 2u);
  EXPECT_TRUE(allocation.job_gpu_caps(1).empty());
  // Watt conservation across both domains and both jobs.
  EXPECT_LE(allocation.total_watts(), 1000.0 + 0.5);
  EXPECT_NEAR(allocation.total_watts(),
              sum(allocation.job_host_caps[0]) +
                  sum(allocation.job_host_caps[1]) +
                  sum(allocation.job_gpu_caps(0)),
              1e-9);
}

TEST(HeteroPolicyTest, SurplusLandsInBothDomainsUpToTdp) {
  // Budget above the sum of all needs: the surplus spreads by headroom
  // weight and no domain exceeds its TDP.
  PolicyContext context = make_context(
      1200.0, {with_gpu(make_job(2, 200.0, 180.0), 200.0, 200.0)});
  const rm::PowerAllocation allocation =
      HeteroAdaptivePolicy{}.allocate(context);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_GT(allocation.job_host_caps[0][h], 180.0);
    EXPECT_LE(allocation.job_host_caps[0][h], 256.0);
    EXPECT_GT(allocation.job_gpu_caps(0)[h], 200.0);
    EXPECT_LE(allocation.job_gpu_caps(0)[h], 300.0);
  }
}

TEST(HeteroPolicyTest, ValidationRejectsInconsistentGpuCharacterization) {
  // GPU vectors that disagree with the host count.
  PolicyContext bad_count = make_context(
      700.0, {with_gpu(make_job(2, 170.0, 152.0), 170.0, 290.0)});
  bad_count.jobs[0].host_gpu_needed_watts.pop_back();
  bad_count.jobs[0].host_gpu_observed_watts.pop_back();
  EXPECT_THROW(
      static_cast<void>(HeteroAdaptivePolicy{}.allocate(bad_count)),
      ps::Error);

  // GPU min cap above the GPU TDP.
  PolicyContext bad_range = make_context(
      700.0,
      {with_gpu(make_job(2, 170.0, 152.0), 170.0, 290.0, 400.0, 300.0)});
  EXPECT_THROW(
      static_cast<void>(HeteroAdaptivePolicy{}.allocate(bad_range)),
      ps::Error);
}

}  // namespace
}  // namespace ps::core
