#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/endpoint.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

struct MalformedCase {
  const char* name;
  const char* text;
};

// Every way an untrusted byte stream has been seen to go wrong: truncated
// messages, missing or misspelled keys, non-numeric, negative and
// non-finite watt fields, and vectors that disagree on host count.
const std::vector<MalformedCase>& malformed_samples() {
  static const std::vector<MalformedCase> cases = {
      {"empty", ""},
      {"whitespace_only", " \n \n"},
      {"wrong_header",
       "powerstack-policy v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1\nneeded 1\n"},
      {"future_version",
       "powerstack-sample v2\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1\nneeded 1\n"},
      {"truncated_after_job", "powerstack-sample v1\nsequence 1\njob x\n"},
      {"truncated_after_observed",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\nobserved 1\n"},
      {"trailing_junk_line",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1\nneeded 1\nextra line\n"},
      {"non_numeric_sequence",
       "powerstack-sample v1\nsequence abc\njob x\nmin_cap 1\n"
       "observed 1\nneeded 1\n"},
      {"sequence_trailing_garbage",
       "powerstack-sample v1\nsequence 1z\njob x\nmin_cap 1\n"
       "observed 1\nneeded 1\n"},
      {"negative_sequence",
       "powerstack-sample v1\nsequence -4\njob x\nmin_cap 1\n"
       "observed 1\nneeded 1\n"},
      {"empty_job_name",
       "powerstack-sample v1\nsequence 1\njob  \nmin_cap 1\n"
       "observed 1\nneeded 1\n"},
      {"non_numeric_min_cap",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap watts\n"
       "observed 1\nneeded 1\n"},
      {"negative_min_cap",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap -5\n"
       "observed 1\nneeded 1\n"},
      {"non_numeric_watt",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1 two\nneeded 1 2\n"},
      {"watt_trailing_garbage",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1 2.5W\nneeded 1 2\n"},
      {"negative_watt",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1 -2\nneeded 1 2\n"},
      {"nan_watt",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1 nan\nneeded 1 2\n"},
      {"inf_watt",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed inf\nneeded 1\n"},
      {"vector_length_mismatch",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed 1 2 3\nneeded 1 2\n"},
      {"empty_vectors",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observed\nneeded\n"},
      {"misspelled_key",
       "powerstack-sample v1\nsequence 1\njob x\nmin_cap 1\n"
       "observd 1\nneeded 1\n"},
  };
  return cases;
}

const std::vector<MalformedCase>& malformed_policies() {
  static const std::vector<MalformedCase> cases = {
      {"empty", ""},
      {"wrong_header",
       "powerstack-sample v1\nsequence 1\njob x\ncaps 1\n"},
      {"future_version",
       "powerstack-policy v9\nsequence 1\njob x\ncaps 1\n"},
      {"truncated", "powerstack-policy v1\nsequence 1\njob x\n"},
      {"trailing_junk_line",
       "powerstack-policy v1\nsequence 1\njob x\ncaps 1\nmore\n"},
      {"non_numeric_sequence",
       "powerstack-policy v1\nsequence ??\njob x\ncaps 1\n"},
      {"empty_job_name", "powerstack-policy v1\nsequence 1\njob \ncaps 1\n"},
      {"non_numeric_cap",
       "powerstack-policy v1\nsequence 1\njob x\ncaps 1 full\n"},
      {"negative_cap",
       "powerstack-policy v1\nsequence 1\njob x\ncaps -180\n"},
      {"nan_cap", "powerstack-policy v1\nsequence 1\njob x\ncaps nan\n"},
      {"inf_cap",
       "powerstack-policy v1\nsequence 1\njob x\ncaps 180 inf\n"},
      {"empty_caps", "powerstack-policy v1\nsequence 1\njob x\ncaps\n"},
      {"misspelled_key",
       "powerstack-policy v1\nsequence 1\njob x\ncap 180\n"},
  };
  return cases;
}

TEST(EndpointMalformedTest, SampleParserRejectsEveryCase) {
  for (const MalformedCase& test : malformed_samples()) {
    EXPECT_THROW(static_cast<void>(parse_sample_message(test.text)),
                 ps::Error)
        << "case '" << test.name << "' parsed without error";
  }
}

TEST(EndpointMalformedTest, PolicyParserRejectsEveryCase) {
  for (const MalformedCase& test : malformed_policies()) {
    EXPECT_THROW(static_cast<void>(parse_policy_message(test.text)),
                 ps::Error)
        << "case '" << test.name << "' parsed without error";
  }
}

TEST(EndpointMalformedTest, ExactFidelitySurvivesTheWireBitForBit) {
  SampleMessage sample;
  sample.sequence = 41;
  sample.job_name = "precision";
  sample.min_settable_cap_watts = 152.0 + 1.0 / 3.0;
  sample.host_observed_watts = {214.0001220703125, 1e-3, 0.1 + 0.2};
  sample.host_needed_watts = {193.09999999999999, 2.5e2, 7.0 / 9.0};
  const SampleMessage round_tripped =
      parse_sample_message(serialize(sample, WireFidelity::kExact));
  ASSERT_EQ(round_tripped.host_observed_watts.size(), 3u);
  EXPECT_EQ(round_tripped, sample);  // == on doubles: bit-for-bit

  PolicyMessage policy;
  policy.sequence = 42;
  policy.job_name = "precision";
  policy.host_caps_watts = {180.0 + 1.0 / 7.0, 219.12345678901234};
  EXPECT_EQ(parse_policy_message(serialize(policy, WireFidelity::kExact)),
            policy);
}

TEST(EndpointMalformedTest, DisplayFidelityStaysMilliwattRounded) {
  SampleMessage sample;
  sample.sequence = 1;
  sample.job_name = "display";
  sample.min_settable_cap_watts = 152.0;
  sample.host_observed_watts = {214.125};
  sample.host_needed_watts = {152.0 + 1.0 / 3.0};
  const std::string wire = serialize(sample);
  EXPECT_NE(wire.find("observed 214.125"), std::string::npos);
  EXPECT_NE(wire.find("needed 152.333"), std::string::npos);
}

}  // namespace
}  // namespace ps::core
