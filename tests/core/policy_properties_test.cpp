// Property-style sweeps over (policy x budget) combinations, checking the
// invariants every allocation must satisfy regardless of inputs.
#include <gtest/gtest.h>

#include <tuple>

#include "context_builder.hpp"
#include "core/policies.hpp"

namespace ps::core {
namespace {

using testing::make_context;
using testing::make_job;

/// A heterogeneous scenario exercising floors, imbalance, and headroom.
PolicyContext scenario(double budget_per_host) {
  return make_context(
      budget_per_host * 8.0,
      {
          make_job({214.0, 214.0, 222.0, 222.0},
                   {152.0, 152.0, 219.0, 219.0}),  // imbalanced job
          make_job(2, 205.0, 186.0),               // memory-bound job
          make_job(2, 228.0, 219.0),               // compute-bound job
      });
}

class PolicyPropertyTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, double>> {};

TEST_P(PolicyPropertyTest, CapsWithinHardwareRange) {
  const auto [kind, budget_per_host] = GetParam();
  const PolicyContext context = scenario(budget_per_host);
  const rm::PowerAllocation allocation =
      make_policy(kind)->allocate(context);
  for (const auto& job : allocation.job_host_caps) {
    for (double cap : job) {
      EXPECT_GE(cap, 152.0 - 1e-9);
      EXPECT_LE(cap, context.node_tdp_watts + 1e-9);
    }
  }
}

TEST_P(PolicyPropertyTest, AllocationShapeMatchesJobs) {
  const auto [kind, budget_per_host] = GetParam();
  const PolicyContext context = scenario(budget_per_host);
  const rm::PowerAllocation allocation =
      make_policy(kind)->allocate(context);
  ASSERT_EQ(allocation.job_host_caps.size(), context.jobs.size());
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    EXPECT_EQ(allocation.job_host_caps[j].size(),
              context.jobs[j].host_count);
  }
}

TEST_P(PolicyPropertyTest, SystemAwarePoliciesRespectBudget) {
  const auto [kind, budget_per_host] = GetParam();
  const PolicyContext context = scenario(budget_per_host);
  const auto policy = make_policy(kind);
  const rm::PowerAllocation allocation = policy->allocate(context);
  const double floor_total = 152.0 * 8.0;
  if (policy->is_system_aware() &&
      context.system_budget_watts >= floor_total) {
    EXPECT_TRUE(allocation.within_budget(context.system_budget_watts, 1.0))
        << to_string(kind) << " over budget: " << allocation.total_watts()
        << " > " << context.system_budget_watts;
  }
}

TEST_P(PolicyPropertyTest, JobAdaptiveRespectsPerJobBudgets) {
  const auto [kind, budget_per_host] = GetParam();
  if (kind != PolicyKind::kJobAdaptive) {
    GTEST_SKIP();
  }
  const PolicyContext context = scenario(budget_per_host);
  const rm::PowerAllocation allocation =
      make_policy(kind)->allocate(context);
  const double share = context.uniform_share_watts();
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    const double job_budget =
        share * static_cast<double>(context.jobs[j].host_count);
    const double floor = 152.0 * static_cast<double>(
                                     context.jobs[j].host_count);
    EXPECT_LE(allocation.job_total_watts(j),
              std::max(job_budget, floor) + 0.5)
        << "job " << j;
  }
}

TEST_P(PolicyPropertyTest, DeterministicAllocation) {
  const auto [kind, budget_per_host] = GetParam();
  const PolicyContext context = scenario(budget_per_host);
  const auto policy = make_policy(kind);
  const rm::PowerAllocation a = policy->allocate(context);
  const rm::PowerAllocation b = policy->allocate(context);
  EXPECT_EQ(a.job_host_caps, b.job_host_caps);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllBudgets, PolicyPropertyTest,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kPrecharacterized,
                          PolicyKind::kStaticCaps,
                          PolicyKind::kMinimizeWaste,
                          PolicyKind::kJobAdaptive,
                          PolicyKind::kMixedAdaptive),
        // Per-host budgets spanning below-floor to above-TDP.
        ::testing::Values(140.0, 156.0, 170.0, 190.0, 210.0, 233.0, 260.0)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "W";
    });

/// Below the all-floor budget, every system-aware policy degenerates to
/// the same configuration as StaticCaps (paper Section V-C).
class FloorDegenerationTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(FloorDegenerationTest, BelowMinAllPoliciesMatchStaticCaps) {
  const PolicyContext context = scenario(150.0);  // below the 152 W floor
  const rm::PowerAllocation base =
      StaticCapsPolicy{}.allocate(context);
  const rm::PowerAllocation allocation =
      make_policy(GetParam())->allocate(context);
  for (std::size_t j = 0; j < base.job_host_caps.size(); ++j) {
    for (std::size_t h = 0; h < base.job_host_caps[j].size(); ++h) {
      EXPECT_NEAR(allocation.job_host_caps[j][h],
                  base.job_host_caps[j][h], 1e-6)
          << "job " << j << " host " << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SystemAwarePolicies, FloorDegenerationTest,
                         ::testing::Values(PolicyKind::kStaticCaps,
                                           PolicyKind::kMinimizeWaste,
                                           PolicyKind::kJobAdaptive,
                                           PolicyKind::kMixedAdaptive),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

/// Above the max budget, every policy allocates at least as much as
/// Precharacterized would (paper Section V-C), so no workload is
/// behaviorally constrained.
class GenerousBudgetTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(GenerousBudgetTest, AboveMaxNobodyIsConstrained) {
  const PolicyContext context = scenario(250.0);  // above max monitor 228
  const rm::PowerAllocation allocation =
      make_policy(GetParam())->allocate(context);
  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    for (std::size_t h = 0; h < context.jobs[j].host_count; ++h) {
      // The cap never dips below the balancer-characterized needed power,
      // so performance is preserved.
      EXPECT_GE(allocation.job_host_caps[j][h],
                context.jobs[j].balancer.host_needed_power_watts[h] - 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GenerousBudgetTest,
                         ::testing::Values(PolicyKind::kPrecharacterized,
                                           PolicyKind::kStaticCaps,
                                           PolicyKind::kMinimizeWaste,
                                           PolicyKind::kJobAdaptive,
                                           PolicyKind::kMixedAdaptive),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace ps::core
