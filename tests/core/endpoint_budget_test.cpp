// Wire form of the dynamic-budget protocol: BudgetMessage round-trips,
// the epoch-tagged PolicyMessage extension, byte-compatibility with the
// v1 grammar, and header-only dispatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/endpoint.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

TEST(BudgetWireTest, RoundTripsExactlyAtExactFidelity) {
  BudgetMessage message;
  message.epoch = 42;
  message.budget_watts = 2'877.3341077281243;  // not representable short
  message.emergency = true;
  const BudgetMessage parsed =
      parse_budget_message(serialize(message, WireFidelity::kExact));
  EXPECT_EQ(parsed, message);
  // The bit pattern survives, not an approximation.
  EXPECT_EQ(parsed.budget_watts, message.budget_watts);
}

TEST(BudgetWireTest, DisplayFidelityIsStillValidWire) {
  BudgetMessage message;
  message.epoch = 1;
  message.budget_watts = 1'234.5;
  const BudgetMessage parsed = parse_budget_message(serialize(message));
  EXPECT_EQ(parsed.epoch, 1u);
  EXPECT_FALSE(parsed.emergency);
  EXPECT_NEAR(parsed.budget_watts, 1'234.5, 1e-3);
}

TEST(BudgetWireTest, EmergencyFlagRoundTrips) {
  BudgetMessage calm;
  calm.epoch = 2;
  calm.budget_watts = 900.0;
  EXPECT_FALSE(parse_budget_message(serialize(calm)).emergency);
  calm.emergency = true;
  EXPECT_TRUE(parse_budget_message(serialize(calm)).emergency);
}

TEST(BudgetWireTest, MalformedMessagesRejected) {
  const std::vector<const char*> malformed = {
      "",
      "powerstack-sample v1\nepoch 1\nbudget 900\nemergency 0\n",
      "powerstack-budget v2\nepoch 1\nbudget 900\nemergency 0\n",
      "powerstack-budget v1\nepoch 1\nbudget 900\n",  // truncated
      "powerstack-budget v1\nepoch 0\nbudget 900\nemergency 0\n",
      "powerstack-budget v1\nepoch -3\nbudget 900\nemergency 0\n",
      "powerstack-budget v1\nepoch two\nbudget 900\nemergency 0\n",
      "powerstack-budget v1\nepoch 1\nbudget 0\nemergency 0\n",
      "powerstack-budget v1\nepoch 1\nbudget -900\nemergency 0\n",
      "powerstack-budget v1\nepoch 1\nbudget nan\nemergency 0\n",
      "powerstack-budget v1\nepoch 1\nbudget 900W\nemergency 0\n",
      "powerstack-budget v1\nepoch 1\nbudget 900\nemergency 2\n",
      "powerstack-budget v1\nepoch 1\nbudget 900\nemergency 0\njunk\n",
      "powerstack-budget v1\nepoch 1\nwatts 900\nemergency 0\n",
  };
  for (const char* text : malformed) {
    EXPECT_THROW(static_cast<void>(parse_budget_message(text)),
                 InvalidArgument)
        << "accepted: " << text;
  }
}

TEST(BudgetWireTest, KindIsJudgedByHeaderAlone) {
  EXPECT_EQ(wire_message_kind("powerstack-budget v1\nepoch 1\n"),
            WireMessageKind::kBudget);
  EXPECT_EQ(wire_message_kind("powerstack-budget v1"),  // no newline yet
            WireMessageKind::kBudget);
  EXPECT_EQ(wire_message_kind("powerstack-sample v1\n..."),
            WireMessageKind::kSample);
  EXPECT_EQ(wire_message_kind("powerstack-policy v1\n..."),
            WireMessageKind::kPolicy);
  EXPECT_EQ(wire_message_kind("powerstack-budget v2\n..."),
            WireMessageKind::kUnknown);
  EXPECT_EQ(wire_message_kind(""), WireMessageKind::kUnknown);
}

TEST(PolicyEpochWireTest, EpochZeroSerializesAsTheV1ByteForm) {
  // Byte-for-byte the pre-dynamic-budget grammar: a peer that has never
  // heard of budget epochs parses this unchanged.
  PolicyMessage message;
  message.sequence = 7;
  message.job_name = "lulesh";
  message.host_caps_watts = {180.0, 190.0};
  const std::string wire = serialize(message);
  EXPECT_EQ(wire.find("budget_epoch"), std::string::npos);
  const PolicyMessage parsed = parse_policy_message(wire);
  EXPECT_EQ(parsed.budget_epoch, 0u);
  EXPECT_EQ(parsed, message);
}

TEST(PolicyEpochWireTest, NonZeroEpochGainsAFifthLineAndRoundTrips) {
  PolicyMessage message;
  message.sequence = 9;
  message.job_name = "lulesh";
  message.host_caps_watts = {181.25, 190.5};
  message.budget_epoch = 4;
  const std::string wire = serialize(message, WireFidelity::kExact);
  EXPECT_NE(wire.find("budget_epoch 4"), std::string::npos);
  EXPECT_EQ(parse_policy_message(wire), message);
}

TEST(PolicyEpochWireTest, ExplicitEpochZeroLineRejected) {
  // The fifth line exists only to announce a revision; epoch 0 must use
  // the v1 four-line form, so an explicit zero is a protocol error.
  EXPECT_THROW(
      static_cast<void>(parse_policy_message(
          "powerstack-policy v1\nsequence 1\njob x\ncaps 100\n"
          "budget_epoch 0\n")),
      InvalidArgument);
}

}  // namespace
}  // namespace ps::core
