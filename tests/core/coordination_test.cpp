#include "core/coordination.hpp"

#include <gtest/gtest.h>

#include "core/budget.hpp"
#include "core/policies.hpp"
#include "rm/power_manager.hpp"
#include "runtime/characterization.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::core {
namespace {

class CoordinationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<sim::Cluster>(8);
    kernel::WorkloadConfig wasteful;
    wasteful.intensity = 8.0;
    wasteful.waiting_fraction = 0.5;
    wasteful.imbalance = 3.0;
    kernel::WorkloadConfig hungry;
    hungry.intensity = 32.0;
    std::vector<hw::NodeModel*> hosts_a;
    std::vector<hw::NodeModel*> hosts_b;
    for (std::size_t i = 0; i < 4; ++i) {
      hosts_a.push_back(&cluster_->node(i));
      hosts_b.push_back(&cluster_->node(i + 4));
    }
    jobs_.push_back(std::make_unique<sim::JobSimulation>(
        "wasteful", hosts_a, wasteful));
    jobs_.push_back(std::make_unique<sim::JobSimulation>(
        "hungry", hosts_b, hungry));
    job_ptrs_ = {jobs_[0].get(), jobs_[1].get()};
  }

  double ideal_budget() {
    std::vector<runtime::JobCharacterization> characterizations;
    for (auto& job : jobs_) {
      characterizations.push_back(runtime::characterize_job(*job, 4));
      job->reset_totals();
    }
    budget_cache_ = select_budgets(characterizations);
    characterizations_ = std::move(characterizations);
    return budget_cache_.ideal_watts;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs_;
  std::vector<sim::JobSimulation*> job_ptrs_;
  std::vector<runtime::JobCharacterization> characterizations_;
  PowerBudgets budget_cache_;
};

TEST_F(CoordinationTest, ConvergesFromUniformStart) {
  const double budget = ideal_budget();
  CoordinationLoop loop(budget);
  const CoordinationResult result = loop.run(job_ptrs_, 40);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.convergence_epoch, 4u);
  EXPECT_FALSE(result.epochs.empty());
  // Late epochs move caps (almost) not at all.
  EXPECT_LT(result.epochs.back().max_cap_change_watts, 1.0);
}

TEST_F(CoordinationTest, StaysWithinBudget) {
  const double budget = ideal_budget();
  CoordinationLoop loop(budget);
  const CoordinationResult result = loop.run(job_ptrs_, 20);
  for (const auto& epoch : result.epochs) {
    EXPECT_LE(epoch.allocated_watts, budget + 8.0 * 0.5);
  }
}

TEST_F(CoordinationTest, ConvergesToThePrecharacterizedAllocation) {
  const double budget = ideal_budget();
  // Offline route: pre-characterized MixedAdaptive allocation.
  PolicyContext context;
  context.system_budget_watts = budget;
  context.node_tdp_watts = cluster_->node(0).tdp();
  context.jobs = characterizations_;
  const rm::PowerAllocation offline =
      MixedAdaptivePolicy{}.allocate(context);

  // Online route: coordination loop from a uniform start.
  CoordinationLoop loop(budget);
  static_cast<void>(loop.run(job_ptrs_, 40));

  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    for (std::size_t h = 0; h < jobs_[j]->host_count(); ++h) {
      EXPECT_NEAR(jobs_[j]->host_cap(h), offline.job_host_caps[j][h], 8.0)
          << "job " << j << " host " << h;
    }
  }
}

TEST_F(CoordinationTest, OnlineBeatsUniformStaticCaps) {
  const double budget = ideal_budget();
  // Uniform static baseline.
  const double share = budget / 8.0;
  for (auto* job : job_ptrs_) {
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      job->set_host_cap(h, share);
    }
    job->reset_totals();
  }
  double static_elapsed = 0.0;
  for (auto* job : job_ptrs_) {
    for (int i = 0; i < 30; ++i) {
      static_elapsed += job->run_iteration().iteration_seconds;
    }
  }

  for (auto* job : job_ptrs_) {
    job->reset_totals();
  }
  CoordinationLoop loop(budget);
  const CoordinationResult result = loop.run(job_ptrs_, 30);
  double online_elapsed = 0.0;
  for (auto* job : job_ptrs_) {
    online_elapsed += job->totals().elapsed_seconds;
  }
  static_cast<void>(result);
  EXPECT_LT(online_elapsed, static_elapsed);
}

TEST_F(CoordinationTest, ReconvergesAfterPhaseChange) {
  const double budget = ideal_budget();
  CoordinationLoop loop(budget);
  static_cast<void>(loop.run(job_ptrs_, 30));
  const double wasteful_cap_before = jobs_[0]->host_cap(0);

  // The wasteful job's phase flips to balanced compute: its waiting
  // hosts suddenly need full power.
  kernel::WorkloadConfig balanced;
  balanced.intensity = 32.0;
  jobs_[0]->set_workload(balanced);
  const CoordinationResult after = loop.run(job_ptrs_, 30);
  EXPECT_TRUE(after.converged);
  // The formerly floored waiting host is re-funded.
  EXPECT_GT(jobs_[0]->host_cap(0), wasteful_cap_before + 10.0);
}

TEST_F(CoordinationTest, EpochTelemetryIsPopulated) {
  const double budget = ideal_budget();
  CoordinationOptions options;
  options.epoch_iterations = 4;
  CoordinationLoop loop(budget, options);
  const CoordinationResult result = loop.run(job_ptrs_, 10);
  ASSERT_EQ(result.epochs.size(), 3u);  // 4 + 4 + 2
  for (const auto& epoch : result.epochs) {
    EXPECT_GT(epoch.elapsed_seconds, 0.0);
    EXPECT_GT(epoch.energy_joules, 0.0);
    EXPECT_GT(epoch.system_power_watts, 0.0);
  }
  EXPECT_GT(result.total_gflop, 0.0);
  EXPECT_GT(result.gflops_per_watt(), 0.0);
}

TEST_F(CoordinationTest, InvalidInputsRejected) {
  EXPECT_THROW(CoordinationLoop(0.0), ps::InvalidArgument);
  CoordinationOptions bad;
  bad.epoch_iterations = 0;
  EXPECT_THROW(CoordinationLoop(1000.0, bad), ps::InvalidArgument);
  CoordinationLoop loop(1000.0);
  EXPECT_THROW(static_cast<void>(loop.run({}, 5)), ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(loop.run(job_ptrs_, 0)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::core
