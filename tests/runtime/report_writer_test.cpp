#include "runtime/report_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "sim/cluster.hpp"

namespace ps::runtime {
namespace {

JobReport sample_report() {
  static sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.waiting_fraction = 0.5;
  config.imbalance = 2.0;
  sim::JobSimulation job("sample", {&cluster.node(0), &cluster.node(1)},
                         config);
  MonitorAgent agent;
  return Controller(4).run(job, agent);
}

TEST(ReportWriterTest, TextReportContainsHeaderAndHosts) {
  const std::string text = to_text_report(sample_report());
  EXPECT_NE(text.find("powerstack job report"), std::string::npos);
  EXPECT_NE(text.find("Job: sample"), std::string::npos);
  EXPECT_NE(text.find("Agent: monitor"), std::string::npos);
  EXPECT_NE(text.find("Host: node-0"), std::string::npos);
  EXPECT_NE(text.find("Host: node-1"), std::string::npos);
  EXPECT_NE(text.find("(waiting ranks)"), std::string::npos);
  EXPECT_NE(text.find("barrier wait"), std::string::npos);
}

TEST(ReportWriterTest, HostCsvHasHeaderAndOneRowPerHost) {
  std::ostringstream out;
  write_host_csv(out, sample_report());
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 3u);  // header + 2 hosts
  EXPECT_NE(csv.find("job,node,waiting_host"), std::string::npos);
  EXPECT_NE(csv.find("sample,0,1"), std::string::npos);
  EXPECT_NE(csv.find("sample,1,0"), std::string::npos);
}

TEST(ReportWriterTest, TraceCsvHasOneRowPerIteration) {
  std::ostringstream out;
  write_trace_csv(out, sample_report());
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 5u);  // header + 4 iterations
  EXPECT_NE(csv.find("iteration,seconds,energy_joules"), std::string::npos);
}

TEST(ReportWriterTest, PhaseStartsRendered) {
  JobReport report;
  report.job_name = "p";
  report.iterations = 2;
  report.phase_starts = {0, 5};
  const std::string text = to_text_report(report);
  EXPECT_NE(text.find("Phase starts at iterations: 0 5"),
            std::string::npos);
}

}  // namespace
}  // namespace ps::runtime
