#include "runtime/controller.hpp"

#include <gtest/gtest.h>

#include "runtime/basic_agents.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

TEST(ControllerTest, ReportCoversRequestedIterations) {
  sim::Cluster cluster(3);
  sim::JobSimulation job("myjob", hosts_of(cluster, 3),
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  const Controller controller(7);
  const JobReport report = controller.run(job, agent);
  EXPECT_EQ(report.iterations, 7u);
  EXPECT_EQ(report.iteration_seconds.size(), 7u);
  EXPECT_EQ(report.iteration_energy_joules.size(), 7u);
  EXPECT_EQ(report.hosts.size(), 3u);
  EXPECT_EQ(report.job_name, "myjob");
  EXPECT_EQ(report.agent_name, "monitor");
}

TEST(ControllerTest, WarmupExcludedFromMeasurement) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  const Controller controller(5, 3);
  const JobReport report = controller.run(job, agent);
  EXPECT_EQ(report.iterations, 5u);
  // The job itself saw warmup + measured iterations.
  EXPECT_EQ(job.totals().iterations, 8u);
}

TEST(ControllerTest, ElapsedIsSumOfIterationTimes) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  const JobReport report = Controller(4).run(job, agent);
  double sum = 0.0;
  for (double t : report.iteration_seconds) {
    sum += t;
  }
  EXPECT_NEAR(report.elapsed_seconds, sum, 1e-9);
}

TEST(ControllerTest, HostReportsAreConsistent) {
  sim::Cluster cluster(3);
  kernel::WorkloadConfig config;
  config.waiting_fraction = 0.34;
  config.imbalance = 2.0;
  sim::JobSimulation job("j", hosts_of(cluster, 3), config);
  MonitorAgent agent;
  const JobReport report = Controller(5).run(job, agent);
  double host_energy = 0.0;
  for (const auto& host : report.hosts) {
    host_energy += host.energy_joules;
    EXPECT_NEAR(host.busy_seconds + host.poll_seconds,
                report.elapsed_seconds, 1e-9);
    EXPECT_GT(host.average_power_watts, 0.0);
    EXPECT_GE(host.max_power_watts, host.average_power_watts - 1e-9);
    EXPECT_DOUBLE_EQ(host.final_cap_watts, job.host_cap(0));
  }
  EXPECT_NEAR(host_energy, report.total_energy_joules, 1e-6);
  EXPECT_TRUE(report.hosts[0].waiting_host);
  EXPECT_FALSE(report.hosts[2].waiting_host);
}

TEST(ControllerTest, DerivedMetricsBehave) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  const JobReport report = Controller(3).run(job, agent);
  EXPECT_GT(report.average_node_power_watts(), 100.0);
  EXPECT_LT(report.average_node_power_watts(), 260.0);
  EXPECT_GE(report.max_host_average_power_watts(),
            report.min_host_average_power_watts());
  EXPECT_GT(report.achieved_gflops(), 0.0);
  EXPECT_GT(report.gflops_per_watt(), 0.0);
  EXPECT_GT(report.energy_delay_product(), 0.0);
}

TEST(ControllerTest, ZeroIterationsRejected) {
  EXPECT_THROW(Controller(0), ps::InvalidArgument);
}

TEST(JobReportTest, EmptyReportAccessorsThrow) {
  const JobReport report;
  EXPECT_THROW(static_cast<void>(report.max_host_average_power_watts()),
               ps::InvalidState);
  EXPECT_THROW(static_cast<void>(report.min_host_average_power_watts()),
               ps::InvalidState);
  EXPECT_DOUBLE_EQ(report.average_node_power_watts(), 0.0);
  EXPECT_DOUBLE_EQ(report.achieved_gflops(), 0.0);
  EXPECT_DOUBLE_EQ(report.gflops_per_watt(), 0.0);
}

}  // namespace
}  // namespace ps::runtime
