#include <gtest/gtest.h>

#include "kernel/phased.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

kernel::PhasedWorkload two_phase() {
  kernel::PhasedWorkload workload;
  workload.name = "two";
  kernel::WorkloadPhase stream;
  stream.config.intensity = 0.25;
  stream.iterations = 3;
  kernel::WorkloadPhase solve;
  solve.config.intensity = 32.0;
  solve.iterations = 3;
  workload.phases = {stream, solve};
  return workload;
}

TEST(PhasedControllerTest, RecordsPhaseBoundaries) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", {&cluster.node(0), &cluster.node(1)},
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  const JobReport report =
      Controller(12).run_phases(job, agent, two_phase());
  // Iterations 0-2 stream, 3-5 solve, 6-8 stream, 9-11 solve.
  ASSERT_EQ(report.phase_starts.size(), 4u);
  EXPECT_EQ(report.phase_starts[0], 0u);
  EXPECT_EQ(report.phase_starts[1], 3u);
  EXPECT_EQ(report.phase_starts[2], 6u);
  EXPECT_EQ(report.phase_starts[3], 9u);
}

TEST(PhasedControllerTest, PhasesChangeIterationTimes) {
  sim::Cluster cluster(2);
  cluster.node(0).set_power_cap(170.0);
  cluster.node(1).set_power_cap(170.0);
  sim::JobSimulation job("j", {&cluster.node(0), &cluster.node(1)},
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  const JobReport report =
      Controller(6).run_phases(job, agent, two_phase());
  // Under a tight cap, the compute phase (I=32) is much slower than the
  // streaming phase (I=0.25).
  EXPECT_GT(report.iteration_seconds[3], report.iteration_seconds[0] * 1.5);
}

TEST(PhasedControllerTest, WarmupConsumesScheduleIterations) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", {&cluster.node(0), &cluster.node(1)},
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  // 3 warmup iterations swallow the whole first (stream) phase: the
  // measured window starts at global iteration 3 = the solve phase.
  const JobReport report =
      Controller(3, 3).run_phases(job, agent, two_phase());
  ASSERT_FALSE(report.phase_starts.empty());
  EXPECT_EQ(report.phase_starts[0], 0u);
  EXPECT_DOUBLE_EQ(job.workload().intensity, 32.0);
}

TEST(PhasedControllerTest, SetWorkloadReassignsRoles) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job("j", hosts, kernel::WorkloadConfig{});
  EXPECT_EQ(job.waiting_host_count(), 0u);
  kernel::WorkloadConfig imbalanced;
  imbalanced.waiting_fraction = 0.5;
  imbalanced.imbalance = 2.0;
  job.set_workload(imbalanced);
  EXPECT_EQ(job.waiting_host_count(), 2u);
  kernel::WorkloadConfig bad;
  bad.imbalance = 0.0;
  EXPECT_THROW(job.set_workload(bad), ps::InvalidArgument);
  // The failed switch leaves the previous workload intact.
  EXPECT_EQ(job.waiting_host_count(), 2u);
}

TEST(PhasedControllerTest, InvalidScheduleRejected) {
  sim::Cluster cluster(1);
  sim::JobSimulation job("j", {&cluster.node(0)},
                         kernel::WorkloadConfig{});
  MonitorAgent agent;
  kernel::PhasedWorkload empty;
  EXPECT_THROW(
      static_cast<void>(Controller(2).run_phases(job, agent, empty)),
      ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
