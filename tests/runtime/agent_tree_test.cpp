#include "runtime/agent_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "runtime/controller.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

TEST(TreeTopologyTest, SingleLeafIsJustTheRoot) {
  const TreeTopology tree = TreeTopology::balanced(1, 2);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_TRUE(tree.nodes()[0].is_leaf());
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_EQ(tree.leaf_node(0), 0u);
}

TEST(TreeTopologyTest, BinaryTreeOverEightLeaves) {
  const TreeTopology tree = TreeTopology::balanced(8, 2);
  // 8 leaves + 4 + 2 + 1 internal = 15 nodes, depth 3.
  EXPECT_EQ(tree.nodes().size(), 15u);
  EXPECT_EQ(tree.depth(), 3u);
  EXPECT_EQ(tree.nodes()[tree.root()].leaf_count, 8u);
  EXPECT_EQ(tree.nodes()[tree.root()].children.size(), 2u);
}

TEST(TreeTopologyTest, LeafRangesPartitionTheHosts) {
  for (std::size_t leaves : {1u, 2u, 7u, 16u, 33u, 100u}) {
    for (std::size_t fan_out : {2u, 4u, 8u}) {
      const TreeTopology tree = TreeTopology::balanced(leaves, fan_out);
      for (const TreeNode& node : tree.nodes()) {
        if (!node.is_leaf()) {
          std::size_t covered = 0;
          std::size_t cursor = node.first_leaf;
          EXPECT_LE(node.children.size(), fan_out);
          for (std::size_t child : node.children) {
            EXPECT_EQ(tree.nodes()[child].first_leaf, cursor);
            cursor += tree.nodes()[child].leaf_count;
            covered += tree.nodes()[child].leaf_count;
          }
          EXPECT_EQ(covered, node.leaf_count);
        } else {
          EXPECT_EQ(node.leaf_count, 1u);
        }
      }
    }
  }
}

TEST(TreeTopologyTest, DepthIsLogarithmic) {
  const TreeTopology tree = TreeTopology::balanced(900, 8);
  // ceil(log8(900)) = 4.
  EXPECT_LE(tree.depth(), 4u);
  EXPECT_GE(tree.depth(), 3u);
}

TEST(TreeTopologyTest, LeafNodeFindsTheRightLeaf) {
  const TreeTopology tree = TreeTopology::balanced(13, 3);
  for (std::size_t leaf = 0; leaf < 13; ++leaf) {
    const std::size_t index = tree.leaf_node(leaf);
    EXPECT_TRUE(tree.nodes()[index].is_leaf());
    EXPECT_EQ(tree.nodes()[index].first_leaf, leaf);
  }
  EXPECT_THROW(static_cast<void>(tree.leaf_node(13)), ps::InvalidArgument);
}

TEST(TreeTopologyTest, AggregateSumMatchesDirectSum) {
  const TreeTopology tree = TreeTopology::balanced(10, 3);
  std::vector<double> values(10);
  std::iota(values.begin(), values.end(), 1.0);  // 1..10
  const std::vector<double> sums = tree.aggregate_sum(values);
  EXPECT_DOUBLE_EQ(sums[tree.root()], 55.0);
  const std::vector<double> maxes = tree.aggregate_max(values);
  EXPECT_DOUBLE_EQ(maxes[tree.root()], 10.0);
}

TEST(TreeTopologyTest, AggregateValidatesLeafCount) {
  const TreeTopology tree = TreeTopology::balanced(4, 2);
  EXPECT_THROW(static_cast<void>(tree.aggregate_sum({1.0, 2.0})),
               ps::InvalidArgument);
}

TEST(TreeTopologyTest, InvalidShapesRejected) {
  EXPECT_THROW(static_cast<void>(TreeTopology::balanced(0, 2)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(TreeTopology::balanced(4, 1)),
               ps::InvalidArgument);
}

kernel::WorkloadConfig imbalanced_config() {
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

TEST(TreeBalancerTest, StaysWithinBudget) {
  sim::Cluster cluster(16);
  sim::JobSimulation job("j", hosts_of(cluster, 16), imbalanced_config());
  const double budget = 16.0 * 195.0;
  TreeBalancerAgent agent(budget);
  static_cast<void>(Controller(3, 2).run(job, agent));
  EXPECT_TRUE(agent.balanced());
  EXPECT_LE(job.total_allocated_power(), budget + 16.0 * 0.5);
}

TEST(TreeBalancerTest, WaitingHostsTrimmedCriticalFunded) {
  sim::Cluster cluster(16);
  sim::JobSimulation job("j", hosts_of(cluster, 16), imbalanced_config());
  TreeBalancerAgent agent(16.0 * 200.0);
  static_cast<void>(Controller(3, 2).run(job, agent));
  EXPECT_LT(job.host_cap(0), 170.0);    // waiting host
  EXPECT_GT(job.host_cap(15), 200.0);   // critical host
}

TEST(TreeBalancerTest, MatchesFlatBalancerWithinTolerance) {
  const double budget = 16.0 * 195.0;

  sim::Cluster flat_cluster(16);
  sim::JobSimulation flat_job("flat", hosts_of(flat_cluster, 16),
                              imbalanced_config());
  PowerBalancerAgent flat(budget);
  const JobReport flat_report = Controller(10, 2).run(flat_job, flat);

  sim::Cluster tree_cluster(16);
  sim::JobSimulation tree_job("tree", hosts_of(tree_cluster, 16),
                              imbalanced_config());
  TreeBalancerAgent tree(budget);
  const JobReport tree_report = Controller(10, 2).run(tree_job, tree);

  // The hierarchical solution reaches within a few percent of the flat
  // (global) optimum.
  EXPECT_LT(tree_report.elapsed_seconds,
            flat_report.elapsed_seconds * 1.05);
}

TEST(TreeBalancerTest, BeatsUniformDistribution) {
  const double budget = 16.0 * 190.0;
  sim::Cluster cluster(16);
  sim::JobSimulation job("j", hosts_of(cluster, 16), imbalanced_config());

  for (std::size_t h = 0; h < 16; ++h) {
    job.set_host_cap(h, 190.0);
  }
  const double uniform_time = job.run_iteration().iteration_seconds;

  TreeBalancerAgent agent(budget);
  static_cast<void>(Controller(3, 2).run(job, agent));
  const double tree_time = job.run_iteration().iteration_seconds;
  EXPECT_LT(tree_time, uniform_time * 0.95);
}

TEST(TreeBalancerTest, InvalidOptionsRejected) {
  EXPECT_THROW(TreeBalancerAgent(0.0), ps::InvalidArgument);
  TreeBalancerOptions bad;
  bad.fan_out = 1;
  EXPECT_THROW(TreeBalancerAgent(100.0, bad), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
