#include "runtime/basic_agents.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

TEST(MonitorAgentTest, LeavesCapsUntouched) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  job.set_host_cap(0, 200.0);
  job.set_host_cap(1, 180.0);
  MonitorAgent agent;
  agent.setup(job);
  agent.adjust(job);
  EXPECT_NEAR(job.host_cap(0), 200.0, 0.5);
  EXPECT_NEAR(job.host_cap(1), 180.0, 0.5);
  EXPECT_EQ(agent.name(), "monitor");
}

TEST(PowerGovernorTest, AppliesUniformCaps) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4),
                         kernel::WorkloadConfig{});
  PowerGovernorAgent agent(800.0);
  agent.setup(job);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(job.host_cap(i), 200.0, 0.5);
  }
  EXPECT_EQ(agent.name(), "power_governor");
  EXPECT_DOUBLE_EQ(agent.job_budget(), 800.0);
}

TEST(PowerGovernorTest, BudgetBelowFloorClampsUp) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  PowerGovernorAgent agent(100.0);  // 50 W per host, below the floor
  agent.setup(job);
  EXPECT_DOUBLE_EQ(job.host_cap(0), cluster.node(0).min_cap());
}

TEST(PowerGovernorTest, RejectsNonPositiveBudget) {
  EXPECT_THROW(PowerGovernorAgent(0.0), ps::InvalidArgument);
  EXPECT_THROW(PowerGovernorAgent(-5.0), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
