#include "runtime/agent_registry.hpp"

#include <gtest/gtest.h>

#include "runtime/controller.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

TEST(AgentRegistryTest, MakesEveryAgentKind) {
  for (AgentKind kind : all_agent_kinds()) {
    const auto agent = make_agent(kind, 800.0);
    ASSERT_NE(agent, nullptr) << to_string(kind);
    EXPECT_EQ(agent->name(), to_string(kind));
  }
}

TEST(AgentRegistryTest, LooksUpByNameCaseInsensitively) {
  EXPECT_EQ(agent_kind_from_name("power_balancer"),
            AgentKind::kPowerBalancer);
  EXPECT_EQ(agent_kind_from_name("Tree_Balancer"),
            AgentKind::kTreeBalancer);
  EXPECT_THROW(static_cast<void>(agent_kind_from_name("bogus")),
               ps::NotFound);
}

TEST(AgentRegistryTest, EveryAgentDrivesAJob) {
  for (AgentKind kind : all_agent_kinds()) {
    sim::Cluster cluster(4);
    kernel::WorkloadConfig config;
    config.intensity = 16.0;
    config.waiting_fraction = 0.5;
    config.imbalance = 2.0;
    std::vector<hw::NodeModel*> hosts;
    for (std::size_t i = 0; i < 4; ++i) {
      hosts.push_back(&cluster.node(i));
    }
    sim::JobSimulation job("j", std::move(hosts), config);
    const auto agent = make_agent(kind, 4.0 * 195.0);
    const JobReport report = Controller(4, 2).run(job, *agent);
    EXPECT_EQ(report.iterations, 4u) << to_string(kind);
    EXPECT_GT(report.total_energy_joules, 0.0) << to_string(kind);
  }
}

TEST(AgentRegistryTest, BudgetValidatedForBudgetDrivenAgents) {
  EXPECT_THROW(
      static_cast<void>(make_agent(AgentKind::kPowerBalancer, 0.0)),
      ps::InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(make_agent(AgentKind::kPowerGovernor, -1.0)),
      ps::InvalidArgument);
  // Monitor ignores the budget entirely.
  EXPECT_NO_THROW(
      static_cast<void>(make_agent(AgentKind::kMonitor, 0.0)));
}

}  // namespace
}  // namespace ps::runtime
