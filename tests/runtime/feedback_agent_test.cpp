#include "runtime/feedback_agent.hpp"

#include <gtest/gtest.h>

#include "runtime/controller.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

kernel::WorkloadConfig imbalanced_config() {
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

TEST(FeedbackAgentTest, StaysWithinBudgetWhileShifting) {
  sim::Cluster cluster(8);
  sim::JobSimulation job("j", hosts_of(cluster, 8), imbalanced_config());
  const double budget = 8.0 * 195.0;
  FeedbackPowerAgent agent(budget);
  static_cast<void>(Controller(30, 1).run(job, agent));
  EXPECT_LE(job.total_allocated_power(), budget + 8.0 * 0.5);
}

TEST(FeedbackAgentTest, ConvergesTowardBalancedDistribution) {
  sim::Cluster cluster(8);
  sim::JobSimulation job("j", hosts_of(cluster, 8), imbalanced_config());
  const double budget = 8.0 * 195.0;
  FeedbackPowerAgent agent(budget);
  static_cast<void>(Controller(60, 1).run(job, agent));
  // Waiting hosts trimmed toward the floor, critical hosts funded.
  EXPECT_LT(job.host_cap(0), 170.0);
  EXPECT_GT(job.host_cap(7), 210.0);
  // The controller settles: late steps are small.
  EXPECT_LT(agent.last_step_watts(), 2.0);
}

TEST(FeedbackAgentTest, ReachesNearModelDrivenPerformance) {
  const double budget = 8.0 * 195.0;

  sim::Cluster model_cluster(8);
  sim::JobSimulation model_job("m", hosts_of(model_cluster, 8),
                               imbalanced_config());
  PowerBalancerAgent model_agent(budget);
  static_cast<void>(Controller(5, 2).run(model_job, model_agent));
  const double model_time = model_job.run_iteration().iteration_seconds;

  sim::Cluster feedback_cluster(8);
  sim::JobSimulation feedback_job("f", hosts_of(feedback_cluster, 8),
                                  imbalanced_config());
  FeedbackPowerAgent feedback_agent(budget);
  static_cast<void>(Controller(60, 1).run(feedback_job, feedback_agent));
  const double feedback_time =
      feedback_job.run_iteration().iteration_seconds;

  EXPECT_LT(feedback_time, model_time * 1.06);
}

TEST(FeedbackAgentTest, StepLimitBoundsPerIterationMoves) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  FeedbackOptions options;
  options.max_step_watts = 3.0;
  FeedbackPowerAgent agent(4.0 * 195.0, options);
  agent.setup(job);
  const sim::IterationResult result = job.run_iteration();
  agent.observe(job, result);
  agent.adjust(job);
  EXPECT_LE(agent.last_step_watts(), 3.0 + 1e-9);
}

TEST(FeedbackAgentTest, BalancedJobIsLeftAlone) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4),
                         kernel::WorkloadConfig{});
  FeedbackPowerAgent agent(4.0 * 200.0);
  static_cast<void>(Controller(10, 1).run(job, agent));
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_NEAR(job.host_cap(h), 200.0, 2.0);
  }
}

TEST(FeedbackAgentTest, InvalidOptionsRejected) {
  EXPECT_THROW(FeedbackPowerAgent(0.0), ps::InvalidArgument);
  FeedbackOptions bad;
  bad.gain = 0.0;
  EXPECT_THROW(FeedbackPowerAgent(100.0, bad), ps::InvalidArgument);
  bad = {};
  bad.max_step_watts = 0.0;
  EXPECT_THROW(FeedbackPowerAgent(100.0, bad), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
