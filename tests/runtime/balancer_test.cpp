#include "runtime/power_balancer_agent.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "runtime/controller.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

kernel::WorkloadConfig imbalanced_config(double waiting = 0.5,
                                         double imbalance = 3.0,
                                         double intensity = 16.0) {
  kernel::WorkloadConfig config;
  config.intensity = intensity;
  config.waiting_fraction = waiting;
  config.imbalance = imbalance;
  return config;
}

TEST(MinCapForTimeTest, LooseTargetGivesFloor) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  const double cap = min_cap_for_time(job, 0, 1e9);
  EXPECT_DOUBLE_EQ(cap, cluster.node(0).min_cap());
}

TEST(MinCapForTimeTest, ImpossibleTargetGivesTdp) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  const double cap = min_cap_for_time(job, 0, 1e-9);
  EXPECT_DOUBLE_EQ(cap, cluster.node(0).tdp());
}

TEST(MinCapForTimeTest, ResultMeetsTheTarget) {
  sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  sim::JobSimulation job("j", hosts_of(cluster, 2), config);
  const double uncapped =
      host_busy_seconds(job, 0, cluster.node(0).tdp());
  const double target = uncapped * 1.10;
  const double cap = min_cap_for_time(job, 0, target);
  EXPECT_LE(host_busy_seconds(job, 0, cap), target * (1.0 + 1e-6));
  // And it is genuinely minimal: a watt less misses the target.
  EXPECT_GT(host_busy_seconds(job, 0, cap - 1.0), target * (1.0 - 1e-3));
}

TEST(BalancePowerTest, CapsSumWithinBudget) {
  sim::Cluster cluster(8);
  sim::JobSimulation job("j", hosts_of(cluster, 8), imbalanced_config());
  const double budget = 8.0 * 200.0;
  const std::vector<double> caps = balance_power(job, budget);
  const double total = std::accumulate(caps.begin(), caps.end(), 0.0);
  EXPECT_LE(total, budget + 1.0);
}

TEST(BalancePowerTest, WaitingHostsGetLessThanCriticalHosts) {
  sim::Cluster cluster(8);
  sim::JobSimulation job("j", hosts_of(cluster, 8), imbalanced_config());
  const std::vector<double> caps = balance_power(job, 8.0 * 220.0);
  for (std::size_t i = 0; i < 8; ++i) {
    if (job.is_waiting_host(i)) {
      EXPECT_LT(caps[i], caps[7] - 20.0) << "host " << i;
    }
  }
}

TEST(BalancePowerTest, GenerousBudgetTrimsWaitingHostsToFloor) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4),
                         imbalanced_config(0.5, 3.0));
  double tdp_budget = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    tdp_budget += cluster.node(i).tdp();
  }
  const std::vector<double> caps = balance_power(job, tdp_budget);
  // 3x imbalance leaves so much slack the waiting hosts hit the floor.
  EXPECT_NEAR(caps[0], cluster.node(0).min_cap(), 1.0);
  EXPECT_NEAR(caps[1], cluster.node(1).min_cap(), 1.0);
}

TEST(BalancePowerTest, ImprovesIterationTimeOverUniform) {
  sim::Cluster cluster(8);
  sim::JobSimulation job("j", hosts_of(cluster, 8), imbalanced_config());
  const double budget = 8.0 * 190.0;

  // Uniform caps baseline.
  for (std::size_t i = 0; i < 8; ++i) {
    job.set_host_cap(i, 190.0);
  }
  const double uniform_time = job.run_iteration().iteration_seconds;

  const std::vector<double> caps = balance_power(job, budget);
  for (std::size_t i = 0; i < 8; ++i) {
    job.set_host_cap(i, caps[i]);
  }
  const double balanced_time = job.run_iteration().iteration_seconds;
  EXPECT_LT(balanced_time, uniform_time * 0.97);
}

TEST(BalancePowerTest, BudgetBelowFloorRunsAtFloor) {
  sim::Cluster cluster(3);
  sim::JobSimulation job("j", hosts_of(cluster, 3),
                         kernel::WorkloadConfig{});
  const std::vector<double> caps = balance_power(job, 10.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(caps[i], cluster.node(i).min_cap());
  }
}

TEST(BalancePowerTest, ToleratedSlowdownTrimsMemoryBoundHosts) {
  sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 0.25;  // memory-bound
  sim::JobSimulation job("j", hosts_of(cluster, 2), config);
  double tdp_budget = 2.0 * cluster.node(0).tdp();
  const std::vector<double> caps = balance_power(job, tdp_budget);
  // Even with budget to spare, the balancer trades its tolerated 3.5%
  // slowdown for a real power cut on memory-bound hosts.
  const double uncapped_draw =
      cluster.node(0)
          .preview_compute(2.0, 0.25, hw::VectorWidth::kYmm256,
                           cluster.node(0).tdp())
          .power_watts;
  EXPECT_LT(caps[0], uncapped_draw - 10.0);
}

TEST(PowerBalancerAgentTest, StartsUniformThenRebalances) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  PowerBalancerAgent agent(4.0 * 200.0);
  agent.setup(job);
  EXPECT_NEAR(job.host_cap(0), 200.0, 0.5);
  EXPECT_FALSE(agent.balanced());

  // First adjust without an observation is a no-op.
  agent.adjust(job);
  EXPECT_FALSE(agent.balanced());

  const sim::IterationResult result = job.run_iteration();
  agent.observe(job, result);
  agent.adjust(job);
  EXPECT_TRUE(agent.balanced());
  EXPECT_LT(job.host_cap(0), 200.0);  // waiting host trimmed
  ASSERT_EQ(agent.steady_caps().size(), 4u);
}

TEST(PowerBalancerAgentTest, SteadyCapsStayPutAfterConvergence) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  PowerBalancerAgent agent(4.0 * 200.0);
  Controller controller(5, 2);
  static_cast<void>(controller.run(job, agent));
  const std::vector<double> caps = agent.steady_caps();
  agent.adjust(job);  // further adjusts are no-ops
  EXPECT_EQ(agent.steady_caps(), caps);
}

TEST(PowerBalancerAgentTest, RejectsNonPositiveBudget) {
  EXPECT_THROW(PowerBalancerAgent(0.0), ps::InvalidArgument);
}

TEST(MinCapForTimeTest, RejectsNonPositiveTarget) {
  sim::Cluster cluster(1);
  sim::JobSimulation job("j", hosts_of(cluster, 1),
                         kernel::WorkloadConfig{});
  EXPECT_THROW(static_cast<void>(min_cap_for_time(job, 0, 0.0)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
