#include "runtime/characterization_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

JobCharacterization sample(double monitor0 = 214.0) {
  JobCharacterization data;
  data.host_count = 3;
  data.min_settable_cap_watts = 152.0;
  data.monitor.host_average_power_watts = {monitor0, 220.0, 228.0};
  data.monitor.max_host_power_watts = 228.0;
  data.monitor.min_host_power_watts = monitor0;
  data.balancer.host_needed_power_watts = {152.0, 190.0, 219.0};
  data.balancer.max_host_needed_watts = 219.0;
  data.balancer.min_host_needed_watts = 152.0;
  return data;
}

TEST(CharacterizationIoTest, WritesHeaderAndHostRows) {
  std::ostringstream out;
  write_characterization_csv(out, "jobA", sample());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("job,host,monitor_watts,needed_watts,min_cap_watts"),
            std::string::npos);
  EXPECT_NE(csv.find("jobA,0,214.000,152.000,152.000"), std::string::npos);
  EXPECT_NE(csv.find("jobA,2,228.000,219.000,152.000"), std::string::npos);
}

TEST(CharacterizationIoTest, StoreRoundTrips) {
  CharacterizationStore store;
  store.put("alpha", sample(209.0));
  store.put("beta", sample(214.0));
  std::ostringstream out;
  write_store_csv(out, store, {"alpha", "beta"});

  const CharacterizationStore loaded = read_store_csv(out.str());
  EXPECT_EQ(loaded.size(), 2u);
  const JobCharacterization& alpha = loaded.get("alpha");
  EXPECT_EQ(alpha.host_count, 3u);
  EXPECT_NEAR(alpha.monitor.host_average_power_watts[0], 209.0, 1e-3);
  EXPECT_NEAR(alpha.balancer.host_needed_power_watts[2], 219.0, 1e-3);
  EXPECT_NEAR(alpha.min_settable_cap_watts, 152.0, 1e-3);
  // Aggregates recomputed on load.
  EXPECT_NEAR(alpha.monitor.max_host_power_watts, 228.0, 1e-3);
  EXPECT_NEAR(alpha.balancer.min_host_needed_watts, 152.0, 1e-3);
  EXPECT_NEAR(alpha.total_needed_power(), 152.0 + 190.0 + 219.0, 1e-2);
}

TEST(CharacterizationIoTest, RealCharacterizationRoundTrips) {
  sim::Cluster cluster(3);
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  sim::JobSimulation job("real", {&cluster.node(0), &cluster.node(1),
                                  &cluster.node(2)}, config);
  const JobCharacterization original = characterize_job(job, 3);
  std::ostringstream out;
  write_characterization_csv(out, "real", original);
  const CharacterizationStore loaded = read_store_csv(out.str());
  const JobCharacterization& parsed = loaded.get("real");
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_NEAR(parsed.monitor.host_average_power_watts[h],
                original.monitor.host_average_power_watts[h], 0.01);
    EXPECT_NEAR(parsed.balancer.host_needed_power_watts[h],
                original.balancer.host_needed_power_watts[h], 0.01);
  }
}

TEST(CharacterizationIoTest, MalformedRowsRejected) {
  EXPECT_THROW(static_cast<void>(read_store_csv("a,b,c\n")),
               ps::InvalidArgument);
  EXPECT_THROW(
      static_cast<void>(read_store_csv("jobA,0,not_a_number,1,2\n")),
      ps::InvalidArgument);
  // Host numbering must be dense and ordered.
  EXPECT_THROW(static_cast<void>(
                   read_store_csv("jobA,1,214.0,152.0,152.0\n")),
               ps::InvalidArgument);
}

TEST(CharacterizationIoTest, EmptyInputGivesEmptyStore) {
  EXPECT_EQ(read_store_csv("").size(), 0u);
}

}  // namespace
}  // namespace ps::runtime
