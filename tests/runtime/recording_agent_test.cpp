#include "runtime/recording_agent.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "runtime/controller.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

TEST(RecordingAgentTest, RecordsOneRowPerIteration) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", {&cluster.node(0), &cluster.node(1)},
                         kernel::WorkloadConfig{});
  RecordingAgent agent;
  static_cast<void>(Controller(7).run(job, agent));
  const sim::TraceRecorder& trace = agent.trace();
  EXPECT_EQ(trace.size(), 7u);
  // Columns: iteration_seconds + 2 powers + 2 caps.
  EXPECT_EQ(trace.column_count(), 5u);
  EXPECT_EQ(trace.columns()[0], "iteration_seconds");
  EXPECT_EQ(trace.columns()[1], "power_0");
  EXPECT_EQ(trace.columns()[3], "cap_0");
}

TEST(RecordingAgentTest, TimestampsAccumulateSimulatedTime) {
  sim::Cluster cluster(1);
  sim::JobSimulation job("j", {&cluster.node(0)},
                         kernel::WorkloadConfig{});
  RecordingAgent agent;
  static_cast<void>(Controller(3).run(job, agent));
  const sim::TraceRecorder& trace = agent.trace();
  EXPECT_GT(trace.timestamp(0), 0.0);
  EXPECT_LT(trace.timestamp(0), trace.timestamp(1));
  EXPECT_LT(trace.timestamp(1), trace.timestamp(2));
  // Timestamp of row i is the cumulative sum of iteration times.
  double expected = 0.0;
  for (std::size_t row = 0; row < 3; ++row) {
    expected += trace.value(row, 0);
    EXPECT_NEAR(trace.timestamp(row), expected, 1e-12);
  }
}

TEST(RecordingAgentTest, ComposesWithAnInnerAgent) {
  sim::Cluster cluster(4);
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job("j", hosts, config);
  PowerBalancerAgent balancer(4.0 * 200.0);
  RecordingAgent agent(&balancer);
  static_cast<void>(Controller(5, 2).run(job, agent));
  EXPECT_TRUE(balancer.balanced());
  const sim::TraceRecorder& trace = agent.trace();
  // The recorded caps reflect the balancer's rebalanced distribution:
  // waiting host (column 1+4=5) below critical host (column 1+4+3=8).
  const std::size_t last = trace.size() - 1;
  EXPECT_LT(trace.value(last, 5), trace.value(last, 8) - 20.0);
}

TEST(RecordingAgentTest, BoundedCapacityKeepsRecentRows) {
  sim::Cluster cluster(1);
  sim::JobSimulation job("j", {&cluster.node(0)},
                         kernel::WorkloadConfig{});
  RecordingAgent agent(nullptr, 4);
  static_cast<void>(Controller(10).run(job, agent));
  EXPECT_EQ(agent.trace().size(), 4u);
  EXPECT_EQ(agent.trace().total_appended(), 10u);
}

TEST(RecordingAgentTest, TraceBeforeSetupThrows) {
  RecordingAgent agent;
  EXPECT_THROW(static_cast<void>(agent.trace()), ps::InvalidState);
}

TEST(RecordingAgentTest, RejectsDegenerateIterationResults) {
  sim::Cluster cluster(1);
  sim::JobSimulation job("j", {&cluster.node(0)},
                         kernel::WorkloadConfig{});
  RecordingAgent agent;
  agent.setup(job);
  sim::IterationResult good;
  good.iteration_seconds = 0.5;
  good.hosts.resize(1);
  good.hosts[0].average_power_watts = 180.0;
  agent.observe(job, good);

  sim::IterationResult bad = good;
  bad.iteration_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(agent.observe(job, bad), ps::InvalidArgument);
  bad.iteration_seconds = -1.0;
  EXPECT_THROW(agent.observe(job, bad), ps::InvalidArgument);
  bad.iteration_seconds = 0.5;
  bad.hosts.clear();  // host count mismatch
  EXPECT_THROW(agent.observe(job, bad), ps::InvalidArgument);

  // The rejected results never advanced the simulated clock: the next
  // good observation lands at exactly two good iterations.
  agent.observe(job, good);
  ASSERT_EQ(agent.trace().size(), 2u);
  EXPECT_NEAR(agent.trace().timestamp(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace ps::runtime
