#include "runtime/energy_efficient_agent.hpp"

#include <gtest/gtest.h>

#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

TEST(FrequencyCapTest, CapsEffectiveFrequency) {
  hw::NodeModel node(0, 1.0);
  node.set_frequency_cap(1.8);
  const hw::PhaseResult result =
      node.run_compute(1.0, 32.0, hw::VectorWidth::kYmm256);
  EXPECT_DOUBLE_EQ(result.frequency_ghz, 1.8);
}

TEST(FrequencyCapTest, LowerFrequencyLowersPower) {
  hw::NodeModel node(0, 1.0);
  const hw::PhaseResult full =
      node.preview_compute(1.0, 0.25, hw::VectorWidth::kYmm256,
                           node.tdp(), 2.6);
  const hw::PhaseResult slow =
      node.preview_compute(1.0, 0.25, hw::VectorWidth::kYmm256,
                           node.tdp(), 1.8);
  EXPECT_LT(slow.power_watts, full.power_watts - 20.0);
  // Memory-bound: the slowdown is bounded by the bandwidth floor.
  EXPECT_LT(slow.seconds / full.seconds, 1.12);
}

TEST(FrequencyCapTest, ClampsAndValidates) {
  hw::NodeModel node(0, 1.0);
  EXPECT_DOUBLE_EQ(node.set_frequency_cap(0.5), 1.2);
  EXPECT_DOUBLE_EQ(node.set_frequency_cap(9.0), 2.6);
  EXPECT_THROW(static_cast<void>(node.set_frequency_cap(-1.0)),
               ps::InvalidArgument);
}

TEST(MinFrequencyForTimeTest, LooseTargetGivesFmin) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  EXPECT_DOUBLE_EQ(min_frequency_for_time(job, 0, 1e9), 1.2);
}

TEST(MinFrequencyForTimeTest, TightTargetGivesFmax) {
  sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  sim::JobSimulation job("j", hosts_of(cluster, 2), config);
  EXPECT_DOUBLE_EQ(min_frequency_for_time(job, 0, 1e-9), 2.6);
}

TEST(MinFrequencyForTimeTest, ChosenFrequencyMeetsTarget) {
  sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  sim::JobSimulation job("j", hosts_of(cluster, 2), config);
  const double uncapped =
      job.host(0)
          .preview_compute(2.0, 32.0, hw::VectorWidth::kYmm256,
                           job.host(0).tdp(), 2.6)
          .seconds;
  const double target = uncapped * 1.15;
  const double f = min_frequency_for_time(job, 0, target);
  const double busy =
      job.host(0)
          .preview_compute(2.0, 32.0, hw::VectorWidth::kYmm256,
                           job.host(0).tdp(), f)
          .seconds;
  EXPECT_LE(busy, target * 1.0001);
  EXPECT_LT(f, 2.6);
}

TEST(EnergyEfficientAgentTest, TunesAfterFirstObservation) {
  sim::Cluster cluster(4);
  kernel::WorkloadConfig config;
  config.intensity = 0.25;  // memory-bound: big DVFS headroom
  sim::JobSimulation job("j", hosts_of(cluster, 4), config);
  EnergyEfficientAgent agent;
  Controller controller(5, 2);
  const JobReport report = controller.run(job, agent);
  EXPECT_TRUE(agent.tuned());
  ASSERT_EQ(agent.steady_frequencies().size(), 4u);
  for (double f : agent.steady_frequencies()) {
    EXPECT_LT(f, 2.6);  // memory-bound hosts get slowed
  }
  EXPECT_GT(report.total_energy_joules, 0.0);
}

TEST(EnergyEfficientAgentTest, SavesEnergyWithinTolerance) {
  sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 0.25;
  // Reference run at full frequency.
  sim::JobSimulation reference("r", hosts_of(cluster, 2), config);
  MonitorAgent monitor;
  const JobReport base = Controller(10).run(reference, monitor);

  sim::Cluster cluster2(2);
  sim::JobSimulation tuned("t", hosts_of(cluster2, 2), config);
  EnergyEfficientAgent agent;
  const JobReport efficient = Controller(10, 2).run(tuned, agent);

  EXPECT_LT(efficient.total_energy_joules,
            base.total_energy_joules * 0.92);
  EXPECT_LT(efficient.elapsed_seconds, base.elapsed_seconds * 1.06);
}

TEST(EnergyEfficientAgentTest, LeavesComputeBoundHostsFast) {
  sim::Cluster cluster(2);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;  // compute-bound: slowing costs time
  sim::JobSimulation job("j", hosts_of(cluster, 2), config);
  EnergyEfficientAgent agent;
  static_cast<void>(Controller(4, 2).run(job, agent));
  for (double f : agent.steady_frequencies()) {
    EXPECT_GT(f, 2.4);
  }
}

TEST(EnergyEfficientAgentTest, SlowsWaitingHostsHard) {
  sim::Cluster cluster(4);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  sim::JobSimulation job("j", hosts_of(cluster, 4), config);
  EnergyEfficientAgent agent;
  static_cast<void>(Controller(4, 2).run(job, agent));
  // Waiting hosts (indices 0,1) need only a third of the speed.
  EXPECT_LT(agent.steady_frequencies()[0], 1.5);
  EXPECT_GT(agent.steady_frequencies()[3], 2.4);
}

TEST(EnergyEfficientAgentTest, OptionsValidated) {
  EnergyEfficientOptions bad;
  bad.performance_tolerance = -0.1;
  EXPECT_THROW(EnergyEfficientAgent{bad}, ps::InvalidArgument);
  bad = {};
  bad.frequency_step_ghz = 0.0;
  EXPECT_THROW(EnergyEfficientAgent{bad}, ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
