#include "runtime/characterization.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

kernel::WorkloadConfig imbalanced_config() {
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

TEST(MonitorCharacterizationTest, ReportsUncappedPower) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4),
                         kernel::WorkloadConfig{});
  job.set_host_cap(0, 170.0);  // stale cap; characterization must uncap
  const MonitorCharacterization mc = characterize_monitor(job, 5);
  EXPECT_EQ(mc.host_average_power_watts.size(), 4u);
  // Uncapped default workload draws ~214 W (Fig. 4 band).
  EXPECT_NEAR(mc.average_node_power_watts, 214.0, 10.0);
  EXPECT_GE(mc.max_host_power_watts, mc.min_host_power_watts);
  EXPECT_GT(mc.iteration_seconds, 0.0);
}

TEST(MonitorCharacterizationTest, ImbalanceInsensitiveUncappedPower) {
  // Fig. 4's key observation: uncapped power barely moves with the
  // waiting-rank fraction, because polling draws near-streaming power.
  sim::Cluster cluster(4);
  kernel::WorkloadConfig balanced;
  balanced.intensity = 16.0;
  sim::JobSimulation job_balanced("b", hosts_of(cluster, 4), balanced);
  const double p_balanced =
      characterize_monitor(job_balanced, 4).average_node_power_watts;

  sim::JobSimulation job_imbalanced("i", hosts_of(cluster, 4),
                                    imbalanced_config());
  const double p_imbalanced =
      characterize_monitor(job_imbalanced, 4).average_node_power_watts;
  EXPECT_NEAR(p_imbalanced, p_balanced, p_balanced * 0.04);
}

TEST(BalancerCharacterizationTest, NeededPowerBelowMonitorPower) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  const MonitorCharacterization mc = characterize_monitor(job, 4);
  sim::JobSimulation job2("j2", hosts_of(cluster, 4), imbalanced_config());
  const BalancerCharacterization bc = characterize_balancer(job2, 4);
  EXPECT_LT(bc.average_node_power_watts, mc.average_node_power_watts);
  EXPECT_EQ(bc.host_needed_power_watts.size(), 4u);
  EXPECT_LE(bc.min_host_needed_watts, bc.max_host_needed_watts);
}

TEST(BalancerCharacterizationTest, WaitingHostsNeedTheFloor) {
  sim::Cluster cluster(4);
  sim::JobSimulation job("j", hosts_of(cluster, 4), imbalanced_config());
  const BalancerCharacterization bc = characterize_balancer(job, 4);
  // 3x imbalance leaves the two waiting hosts with enormous slack.
  EXPECT_NEAR(bc.host_needed_power_watts[0], cluster.node(0).min_cap(),
              1.0);
  EXPECT_NEAR(bc.host_needed_power_watts[1], cluster.node(1).min_cap(),
              1.0);
  EXPECT_GT(bc.host_needed_power_watts[3], 190.0);
}

TEST(BalancerCharacterizationTest, DefaultBudgetIsTdp) {
  sim::Cluster cluster(2);
  sim::JobSimulation job("j", hosts_of(cluster, 2),
                         kernel::WorkloadConfig{});
  // Must not throw and must produce caps within [floor, tdp].
  const BalancerCharacterization bc = characterize_balancer(job, 3);
  for (double cap : bc.host_needed_power_watts) {
    EXPECT_GE(cap, cluster.node(0).min_cap() - 1e-9);
    EXPECT_LE(cap, cluster.node(0).tdp() + 1e-9);
  }
}

TEST(JobCharacterizationTest, CombinesBothAndRestoresCaps) {
  sim::Cluster cluster(3);
  sim::JobSimulation job("j", hosts_of(cluster, 3), imbalanced_config());
  const JobCharacterization jc = characterize_job(job, 4);
  EXPECT_EQ(jc.host_count, 3u);
  EXPECT_DOUBLE_EQ(jc.min_settable_cap_watts, cluster.node(0).min_cap());
  EXPECT_EQ(jc.monitor.host_average_power_watts.size(), 3u);
  EXPECT_EQ(jc.balancer.host_needed_power_watts.size(), 3u);
  // Caps are reset to TDP afterwards.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(job.host_cap(i), cluster.node(i).tdp());
  }
  EXPECT_GT(jc.total_monitor_power(), jc.total_needed_power());
}

TEST(JobCharacterizationTest, RecordsLowestHostTdp) {
  // Heterogeneous hosts: the job-wide settable ceiling is the lowest
  // host TDP, just as min_settable_cap_watts is the highest floor.
  hw::NodeParams low;
  low.tdp_per_socket_watts = 100.0;
  hw::NodeModel fast(0, 1.0);
  hw::NodeModel slow(1, 1.0, low);
  std::vector<hw::NodeModel*> hosts = {&fast, &slow};
  sim::JobSimulation job("hetero", hosts, kernel::WorkloadConfig{});
  const JobCharacterization jc = characterize_job(job, 3);
  EXPECT_DOUBLE_EQ(jc.node_tdp_watts, slow.tdp());
  EXPECT_LT(jc.node_tdp_watts, fast.tdp());
}

TEST(CharacterizationStoreTest, PutGetContains) {
  CharacterizationStore store;
  EXPECT_FALSE(store.contains("a"));
  JobCharacterization jc;
  jc.host_count = 5;
  store.put("a", jc);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_EQ(store.get("a").host_count, 5u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_THROW(static_cast<void>(store.get("missing")), ps::NotFound);
}

TEST(CharacterizationStoreTest, PutOverwrites) {
  CharacterizationStore store;
  JobCharacterization jc;
  jc.host_count = 1;
  store.put("a", jc);
  jc.host_count = 2;
  store.put("a", jc);
  EXPECT_EQ(store.get("a").host_count, 2u);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace ps::runtime
