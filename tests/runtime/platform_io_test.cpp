#include "runtime/platform_io.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::runtime {
namespace {

class PlatformIOTest : public ::testing::Test {
 protected:
  PlatformIOTest() : cluster_(3), pio_({&cluster_.node(0), &cluster_.node(1),
                                        &cluster_.node(2)}) {}
  sim::Cluster cluster_;
  PlatformIO pio_;
};

TEST_F(PlatformIOTest, DomainSizes) {
  EXPECT_EQ(pio_.domain_size(Domain::kBoard), 1u);
  EXPECT_EQ(pio_.domain_size(Domain::kNode), 3u);
  EXPECT_EQ(pio_.domain_size(Domain::kPackage), 6u);
  EXPECT_EQ(pio_.node_count(), 3u);
}

TEST_F(PlatformIOTest, DomainNames) {
  EXPECT_EQ(to_string(Domain::kBoard), "board");
  EXPECT_EQ(to_string(Domain::kNode), "node");
  EXPECT_EQ(to_string(Domain::kPackage), "package");
}

TEST_F(PlatformIOTest, SignalAndControlCatalogs) {
  EXPECT_TRUE(PlatformIO::is_valid_signal("ENERGY"));
  EXPECT_TRUE(PlatformIO::is_valid_signal("POWER_CAP"));
  EXPECT_FALSE(PlatformIO::is_valid_signal("NOT_A_SIGNAL"));
  EXPECT_TRUE(PlatformIO::is_valid_control("FREQUENCY_CAP"));
  EXPECT_FALSE(PlatformIO::is_valid_control("ENERGY"));
  EXPECT_TRUE(PlatformIO::is_valid_signal("GPU_ENERGY"));
  EXPECT_TRUE(PlatformIO::is_valid_signal("GPU_OCCUPANCY"));
  EXPECT_TRUE(PlatformIO::is_valid_control("GPU_POWER_CAP"));
  EXPECT_EQ(PlatformIO::signal_names().size(), 12u);
  EXPECT_EQ(PlatformIO::control_names().size(), 3u);
}

TEST_F(PlatformIOTest, NodeSignalsReflectHardware) {
  cluster_.node(1).set_power_cap(200.0);
  EXPECT_NEAR(pio_.read_signal("POWER_CAP", Domain::kNode, 1), 200.0, 0.5);
  EXPECT_DOUBLE_EQ(pio_.read_signal("POWER_CAP_MAX", Domain::kNode, 0),
                   cluster_.node(0).tdp());
  EXPECT_DOUBLE_EQ(pio_.read_signal("POWER_CAP_MIN", Domain::kNode, 0),
                   cluster_.node(0).min_cap());
  EXPECT_DOUBLE_EQ(pio_.read_signal("FREQUENCY_MAX", Domain::kNode, 0),
                   2.6);
  EXPECT_DOUBLE_EQ(pio_.read_signal("FREQUENCY_MIN", Domain::kNode, 0),
                   1.2);
}

TEST_F(PlatformIOTest, BoardAggregatesSumAndAverage) {
  cluster_.uncap_all();
  const double board_cap =
      pio_.read_signal("POWER_CAP", Domain::kBoard, 0);
  EXPECT_NEAR(board_cap, 3.0 * cluster_.node(0).tdp(), 1.0);
  // Frequencies average rather than sum.
  EXPECT_DOUBLE_EQ(pio_.read_signal("FREQUENCY_MAX", Domain::kBoard, 0),
                   2.6);
}

TEST_F(PlatformIOTest, EnergyAccumulatesThroughSignals) {
  EXPECT_NEAR(pio_.read_signal("ENERGY", Domain::kBoard, 0), 0.0, 1e-6);
  const hw::PhaseResult phase =
      cluster_.node(0).run_compute(1.0, 8.0, hw::VectorWidth::kYmm256);
  EXPECT_NEAR(pio_.read_signal("ENERGY", Domain::kNode, 0),
              phase.energy_joules, 0.01);
  EXPECT_NEAR(pio_.read_signal("ENERGY", Domain::kBoard, 0),
              phase.energy_joules, 0.01);
}

TEST_F(PlatformIOTest, PackageDomainIndexing) {
  cluster_.node(2).set_power_cap(216.0);  // 100 W per package
  EXPECT_DOUBLE_EQ(pio_.read_signal("POWER_CAP", Domain::kPackage, 4),
                   100.0);
  EXPECT_DOUBLE_EQ(pio_.read_signal("POWER_CAP", Domain::kPackage, 5),
                   100.0);
  EXPECT_DOUBLE_EQ(pio_.read_signal("POWER_CAP_MAX", Domain::kPackage, 0),
                   120.0);
}

TEST_F(PlatformIOTest, PackageFrequencyIsDomainMismatch) {
  EXPECT_THROW(
      static_cast<void>(
          pio_.read_signal("FREQUENCY_CAP", Domain::kPackage, 0)),
      ps::InvalidArgument);
}

TEST_F(PlatformIOTest, WritePowerCapNodeAndPackage) {
  const double applied =
      pio_.write_control("POWER_CAP", Domain::kNode, 0, 180.0);
  EXPECT_NEAR(applied, 180.0, 0.5);
  EXPECT_NEAR(cluster_.node(0).power_cap(), 180.0, 0.5);
  const double pkg =
      pio_.write_control("POWER_CAP", Domain::kPackage, 3, 90.0);
  EXPECT_DOUBLE_EQ(pkg, 90.0);
  EXPECT_DOUBLE_EQ(cluster_.node(1).package(1).power_limit(), 90.0);
}

TEST_F(PlatformIOTest, BoardWriteFansOut) {
  static_cast<void>(
      pio_.write_control("POWER_CAP", Domain::kBoard, 0, 190.0));
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_NEAR(cluster_.node(n).power_cap(), 190.0, 0.5);
  }
}

TEST_F(PlatformIOTest, FrequencyCapControlClamps) {
  const double applied =
      pio_.write_control("FREQUENCY_CAP", Domain::kNode, 0, 1.9);
  EXPECT_DOUBLE_EQ(applied, 1.9);
  EXPECT_DOUBLE_EQ(pio_.read_signal("FREQUENCY_CAP", Domain::kNode, 0),
                   1.9);
  EXPECT_DOUBLE_EQ(
      pio_.write_control("FREQUENCY_CAP", Domain::kNode, 0, 99.0), 2.6);
  EXPECT_THROW(static_cast<void>(pio_.write_control(
                   "FREQUENCY_CAP", Domain::kPackage, 0, 2.0)),
               ps::InvalidArgument);
}

TEST_F(PlatformIOTest, ErrorsOnUnknownNamesAndBadIndices) {
  EXPECT_THROW(
      static_cast<void>(pio_.read_signal("BOGUS", Domain::kNode, 0)),
      ps::NotFound);
  EXPECT_THROW(static_cast<void>(
                   pio_.write_control("BOGUS", Domain::kNode, 0, 1.0)),
               ps::NotFound);
  EXPECT_THROW(
      static_cast<void>(pio_.read_signal("ENERGY", Domain::kNode, 3)),
      ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(pio_.write_control(
                   "POWER_CAP", Domain::kPackage, 6, 90.0)),
               ps::InvalidArgument);
}

TEST(PlatformIOConstructionTest, RejectsEmptyOrNullNodes) {
  EXPECT_THROW(PlatformIO(std::vector<hw::NodeModel*>{}),
               ps::InvalidArgument);
  EXPECT_THROW(PlatformIO(std::vector<hw::NodeModel*>{nullptr}),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::runtime
