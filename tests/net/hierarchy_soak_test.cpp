// CI-bounded hierarchy soak: one root + 8 rack aggregators driven by
// hundreds of lightweight scripted clients (raw sockets + the frame
// codec — no thread-per-client, no RuntimeClient machinery), exactly the
// shape bench/ext_hierarchy_scale runs at 10k. Asserts round completion
// through the whole tree, zero watt leakage across a mass disconnect
// (watts reclaimed == the dead jobs' last granted caps, to the double),
// and sane per-level round-latency histograms from src/obs.
//
// PS_HIER_SOAK_CLIENTS overrides the client count (multiple of 8) for
// manual larger runs; the default stays CI-sized.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/endpoint.hpp"
#include "core/invariants.hpp"
#include "net/aggregator.hpp"
#include "net/daemon.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr std::size_t kRacks = 8;

std::size_t soak_clients() {
  if (const char* env = std::getenv("PS_HIER_SOAK_CLIENTS")) {
    const std::size_t requested = std::strtoull(env, nullptr, 10);
    if (requested >= kRacks) {
      return requested - requested % kRacks;
    }
  }
  return 256;
}

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-soak-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

std::string job_name(std::size_t index) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "job-%04zu", index);
  return buffer;
}

core::SampleMessage make_sample(const std::string& job,
                                std::uint64_t sequence) {
  core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = job;
  sample.min_settable_cap_watts = 80.0;
  sample.host_observed_watts = {205.0};
  sample.host_needed_watts = {225.0};
  return sample;
}

/// One scripted client: a connected socket, its decoder, and the last
/// caps it was granted. All I/O is driven by the test thread.
struct ScriptedClient {
  Socket socket;
  FrameDecoder decoder;
  std::string job;
  double last_caps_sum = 0.0;
};

void send_payload(Socket& socket, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::string_view rest = frame;
  while (!rest.empty()) {
    const IoResult result = socket.write_some(rest);
    if (result.status == IoStatus::kOk) {
      rest.remove_prefix(result.bytes);
      continue;
    }
    ASSERT_EQ(result.status, IoStatus::kWouldBlock) << "peer closed";
    ASSERT_TRUE(socket.wait_writable(milliseconds(5000)));
  }
}

std::optional<std::string> read_payload(Socket& socket, FrameDecoder& decoder,
                                        milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  while (true) {
    if (std::optional<std::string> frame = decoder.next()) {
      return frame;
    }
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        deadline - steady_clock::now());
    if (remaining <= milliseconds(0) ||
        !socket.wait_readable(remaining)) {
      return std::nullopt;
    }
    char buffer[8192];
    const IoResult result = socket.read_some(buffer, sizeof(buffer));
    if (result.status == IoStatus::kClosed) {
      return std::nullopt;
    }
    if (result.status == IoStatus::kOk) {
      decoder.feed({buffer, result.bytes});
    }
  }
}

TEST(HierarchySoakTest, TreeSurvivesScaleAndMassDisconnectWithoutLeaking) {
  const std::size_t total_clients = soak_clients();
  const std::size_t per_rack = total_clients / kRacks;
  const std::size_t rounds = 3;
  const double budget = static_cast<double>(total_clients) * 210.0;

  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  obs::MetricsRegistry root_metrics;
  obs::MetricsRegistry rack_metrics;  // shared by all 8 aggregators

  DaemonOptions root_options;
  root_options.system_budget_watts = budget;
  root_options.node_tdp_watts = 256.0;
  root_options.uncappable_watts = 16.0;
  root_options.min_jobs = total_clients;
  root_options.tick_interval = milliseconds(10);
  root_options.reclaim_timeout = milliseconds(60'000);
  root_options.heartbeat_timeout = milliseconds(200);
  root_options.root_mode = true;
  root_options.obs.metrics = &root_metrics;
  PowerDaemon root(root_options);
  const std::string root_path = unique_path("root");
  root.listen_unix(root_path);
  std::thread root_thread([&root] { root.run(); });

  std::vector<std::unique_ptr<AggregatorDaemon>> aggregators;
  std::vector<std::thread> aggregator_threads;
  std::vector<std::string> rack_paths;
  for (std::size_t r = 0; r < kRacks; ++r) {
    AggregatorOptions options;
    options.rack = "rack" + std::to_string(r);
    options.min_jobs = per_rack;
    options.tick_interval = milliseconds(10);
    options.reclaim_timeout = milliseconds(60'000);
    options.parent_connector = [root_path]() -> std::unique_ptr<Transport> {
      try {
        return make_transport(connect_unix(root_path));
      } catch (const Error&) {
        return nullptr;
      }
    };
    options.obs.metrics = &rack_metrics;
    aggregators.push_back(std::make_unique<AggregatorDaemon>(options));
    rack_paths.push_back(unique_path("rack" + std::to_string(r)));
    aggregators.back()->listen_unix(rack_paths.back());
    aggregator_threads.emplace_back(
        [&aggregator = *aggregators.back()] { aggregator.run(); });
  }

  // Client i lives on rack i / per_rack; names are zero-padded so the
  // root's name-keyed round order is the construction order.
  std::vector<ScriptedClient> clients(total_clients);
  for (std::size_t i = 0; i < total_clients; ++i) {
    clients[i].job = job_name(i);
    clients[i].socket = connect_unix(rack_paths[i / per_rack]);
  }

  const auto drive_round = [&](std::size_t first, std::size_t count,
                               std::uint64_t sequence,
                               milliseconds reply_timeout) {
    for (std::size_t i = first; i < first + count; ++i) {
      send_payload(clients[i].socket,
                   serialize(make_sample(clients[i].job, sequence),
                             core::WireFidelity::kExact));
    }
    for (std::size_t i = first; i < first + count; ++i) {
      const std::optional<std::string> reply = read_payload(
          clients[i].socket, clients[i].decoder, reply_timeout);
      ASSERT_TRUE(reply.has_value())
          << clients[i].job << " got no reply to sequence " << sequence;
      const core::PolicyMessage policy = core::parse_policy_message(*reply);
      ASSERT_EQ(policy.job_name, clients[i].job);
      ASSERT_EQ(policy.sequence, sequence);
      clients[i].last_caps_sum = 0.0;
      for (const double cap : policy.host_caps_watts) {
        clients[i].last_caps_sum += cap;
      }
    }
  };

  // Phase 1: every client completes `rounds` full tree round-trips.
  for (std::uint64_t sequence = 0; sequence < rounds; ++sequence) {
    drive_round(0, total_clients, sequence, milliseconds(30'000));
  }

  {
    const DaemonStats mid = root.stats();
    EXPECT_EQ(mid.rack_sessions, kRacks);
    EXPECT_GE(mid.allocations, rounds);
    EXPECT_EQ(mid.budget_violations, 0u);
    EXPECT_EQ(mid.jobs_evicted, 0u);
    double granted = 0.0;
    for (const ScriptedClient& client : clients) {
      granted += client.last_caps_sum;
    }
    EXPECT_LE(granted, budget + 1e-6);
  }

  // Phase 2: mass disconnect — racks 1..7 (7/8 of the fleet) vanish at
  // once. Rack 0 keeps sampling; its fresh samples are what lets the
  // root's heartbeat scan prove the silent jobs dead. Every dead job's
  // watts must come back, each exactly once.
  double dead_caps_sum = 0.0;
  for (std::size_t i = per_rack; i < total_clients; ++i) {
    dead_caps_sum += clients[i].last_caps_sum;
    clients[i].socket.close();
  }

  drive_round(0, per_rack, rounds, milliseconds(30'000));

  const std::size_t dead_jobs = total_clients - per_rack;
  const auto deadline = steady_clock::now() + milliseconds(30'000);
  while (root.stats().jobs_evicted < dead_jobs &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  const DaemonStats after = root.stats();
  ASSERT_EQ(after.jobs_evicted, dead_jobs);
  // The leak check: reclaimed == the sum of the caps the dead jobs held,
  // bit-for-bit as their clients last read them off the wire.
  EXPECT_DOUBLE_EQ(after.watts_reclaimed, dead_caps_sum);
  EXPECT_EQ(after.budget_violations, 0u);

  // The freed watts are re-allocatable: one more rack-0 round and the
  // survivors' grant grows (each host was demand-bound before).
  drive_round(0, per_rack, rounds + 1, milliseconds(30'000));
  double surviving = 0.0;
  for (std::size_t i = 0; i < per_rack; ++i) {
    surviving += clients[i].last_caps_sum;
  }
  EXPECT_LE(surviving, budget + 1e-6);
  EXPECT_GT(surviving, 0.0);

  for (std::size_t i = 0; i < per_rack; ++i) {
    clients[i].socket.close();
  }
  for (auto& aggregator : aggregators) {
    aggregator->stop();
  }
  for (std::thread& thread : aggregator_threads) {
    thread.join();
  }
  root.stop();
  root_thread.join();
  std::remove(root_path.c_str());
  for (const std::string& path : rack_paths) {
    std::remove(path.c_str());
  }

  // Per-level round-latency histograms (the src/obs satellite): the root
  // observed every completed allocation round; the aggregators observed
  // every forward->grant round-trip. Quantiles must be well-formed and
  // inside the instrumented bucket range.
  const obs::MetricsSnapshot root_snap = root_metrics.snapshot();
  bool found_root_latency = false;
  for (const auto& [name, histogram] : root_snap.histograms) {
    if (name == "net.daemon.round_seconds") {
      found_root_latency = true;
      EXPECT_GE(histogram.total(), rounds);
      EXPECT_EQ(histogram.invalid, 0u);
      const double p50 = obs::histogram_quantile(histogram, 0.50);
      const double p99 = obs::histogram_quantile(histogram, 0.99);
      EXPECT_GT(p50, 0.0);
      EXPECT_LE(p50, p99);
      EXPECT_LE(p99, 5.0);  // the top instrumented bucket edge
      std::cout << "[ root round latency ] p50=" << p50 << "s p99=" << p99
                << "s over " << histogram.total() << " rounds\n";
    }
  }
  EXPECT_TRUE(found_root_latency);

  const obs::MetricsSnapshot rack_snap = rack_metrics.snapshot();
  bool found_rack_latency = false;
  for (const auto& [name, histogram] : rack_snap.histograms) {
    if (name == "net.aggregator.round_seconds") {
      found_rack_latency = true;
      // 8 aggregators x >= `rounds` grants each (shared registry sums).
      EXPECT_GE(histogram.total(), kRacks * rounds);
      EXPECT_EQ(histogram.invalid, 0u);
      const double p99 = obs::histogram_quantile(histogram, 0.99);
      EXPECT_GT(p99, 0.0);
      EXPECT_LE(p99, 5.0);
    }
  }
  EXPECT_TRUE(found_rack_latency);

  // Fan-out gauges reflect the tree's shape.
  for (const auto& [name, value] : root_snap.gauges) {
    if (name == "net.daemon.racks") {
      EXPECT_GT(value, 0.0);
    }
  }

  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

}  // namespace
}  // namespace ps::net
