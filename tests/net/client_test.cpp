#include "net/client.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

core::SampleMessage make_sample(std::uint64_t sequence) {
  core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = "job-a";
  sample.min_settable_cap_watts = 100.0;
  sample.host_observed_watts = {150.0, 160.0};
  sample.host_needed_watts = {140.0, 155.0};
  return sample;
}

/// Serves one exchange on `server`: reads until a framed sample arrives,
/// then replies with a policy for it (optionally preceded by a stale one).
void serve_one_exchange(Socket& server, bool send_stale_first) {
  FrameDecoder decoder;
  char buffer[4096];
  for (;;) {
    if (auto payload = decoder.next()) {
      const core::SampleMessage sample = core::parse_sample_message(*payload);
      core::PolicyMessage policy;
      policy.job_name = sample.job_name;
      policy.host_caps_watts = {180.0, 190.0};
      if (send_stale_first && sample.sequence > 0) {
        policy.sequence = sample.sequence - 1;
        static_cast<void>(server.write_some(encode_frame(
            serialize(policy, core::WireFidelity::kExact))));
      }
      policy.sequence = sample.sequence;
      static_cast<void>(server.write_some(
          encode_frame(serialize(policy, core::WireFidelity::kExact))));
      return;
    }
    ASSERT_TRUE(server.wait_readable(milliseconds(2000)));
    const IoResult result = server.read_some(buffer, sizeof(buffer));
    ASSERT_EQ(result.status, IoStatus::kOk);
    decoder.feed(std::string_view(buffer, result.bytes));
  }
}

ClientOptions fast_options() {
  ClientOptions options;
  options.request_timeout = milliseconds(150);
  options.backoff_initial = milliseconds(2);
  options.backoff_max = milliseconds(16);
  options.backoff_jitter = 0.0;
  return options;
}

TEST(RuntimeClientTest, BackoffDoublesUpToTheCap) {
  RuntimeClient client([]() -> Socket { throw Error("unreachable"); },
                       fast_options());
  EXPECT_EQ(client.current_backoff(), milliseconds(2));
  EXPECT_FALSE(client.exchange(make_sample(1)).has_value());
  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.exchanges, 1u);
  EXPECT_EQ(stats.exchange_failures, 1u);
  EXPECT_GT(stats.connect_attempts, 1u);
  EXPECT_EQ(stats.connect_failures, stats.connect_attempts);
  // 150 ms of failing attempts walks the schedule 2 -> 4 -> 8 -> 16.
  EXPECT_EQ(client.current_backoff(), milliseconds(16));
  EXPECT_FALSE(client.connected());
}

TEST(RuntimeClientTest, ExchangeDeliversPolicyAndResetsBackoff) {
  auto [client_end, server_end] = loopback_pair();
  std::deque<Socket> endpoints;
  endpoints.push_back(std::move(client_end));
  RuntimeClient client(
      [&endpoints]() -> Socket {
        if (endpoints.empty()) {
          throw Error("no more connections");
        }
        Socket socket = std::move(endpoints.front());
        endpoints.pop_front();
        return socket;
      },
      fast_options());

  Socket server = std::move(server_end);
  std::thread responder(
      [&server] { serve_one_exchange(server, /*send_stale_first=*/false); });
  const auto policy = client.exchange(make_sample(3));
  responder.join();
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->sequence, 3u);
  EXPECT_EQ(policy->job_name, "job-a");
  EXPECT_EQ(policy->host_caps_watts, (std::vector<double>{180.0, 190.0}));
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.current_backoff(), milliseconds(2));
  ASSERT_TRUE(client.last_known_policy().has_value());
  EXPECT_EQ(*client.last_known_policy(), *policy);
}

TEST(RuntimeClientTest, StaleRepliesAreDrainedNotReturned) {
  auto [client_end, server_end] = loopback_pair();
  std::deque<Socket> endpoints;
  endpoints.push_back(std::move(client_end));
  RuntimeClient client(
      [&endpoints]() -> Socket {
        if (endpoints.empty()) {
          throw Error("no more connections");
        }
        Socket socket = std::move(endpoints.front());
        endpoints.pop_front();
        return socket;
      },
      fast_options());

  Socket server = std::move(server_end);
  std::thread responder(
      [&server] { serve_one_exchange(server, /*send_stale_first=*/true); });
  const auto policy = client.exchange(make_sample(5));
  responder.join();
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->sequence, 5u);
  EXPECT_EQ(client.stats().stale_replies, 1u);
}

TEST(RuntimeClientTest, LastKnownPolicySurvivesDeadServer) {
  auto [client_end, server_end] = loopback_pair();
  std::deque<Socket> endpoints;
  endpoints.push_back(std::move(client_end));
  RuntimeClient client(
      [&endpoints]() -> Socket {
        if (endpoints.empty()) {
          throw Error("server is gone");
        }
        Socket socket = std::move(endpoints.front());
        endpoints.pop_front();
        return socket;
      },
      fast_options());

  {
    Socket server = std::move(server_end);
    std::thread responder([&server] {
      serve_one_exchange(server, /*send_stale_first=*/false);
    });
    ASSERT_TRUE(client.exchange(make_sample(1)).has_value());
    responder.join();
  }  // server socket closes here

  // The daemon died: the exchange fails, the old caps remain available.
  EXPECT_FALSE(client.exchange(make_sample(2)).has_value());
  ASSERT_TRUE(client.last_known_policy().has_value());
  EXPECT_EQ(client.last_known_policy()->sequence, 1u);
  EXPECT_GT(client.stats().connect_failures, 0u);
}

TEST(RuntimeClientTest, OutageCapLatchesDaemonLost) {
  ClientOptions options = fast_options();
  options.max_connect_attempts_per_outage = 5;
  std::size_t dials = 0;
  RuntimeClient client(
      [&dials]() -> Socket {
        ++dials;
        throw Error("unreachable");
      },
      options);

  EXPECT_FALSE(client.exchange(make_sample(1)).has_value());
  EXPECT_TRUE(client.daemon_lost());
  EXPECT_EQ(dials, 5u);
  EXPECT_EQ(client.stats().outages, 1u);

  // Terminal: subsequent exchanges fail fast without dialing at all.
  EXPECT_FALSE(client.exchange(make_sample(2)).has_value());
  EXPECT_EQ(dials, 5u);
  EXPECT_EQ(client.stats().exchanges, 2u);
  EXPECT_EQ(client.stats().exchange_failures, 2u);

  // Re-arming restores dialing (and the outage budget).
  client.reset_daemon_lost();
  EXPECT_FALSE(client.daemon_lost());
  EXPECT_FALSE(client.exchange(make_sample(3)).has_value());
  EXPECT_TRUE(client.daemon_lost());
  EXPECT_EQ(dials, 10u);
  EXPECT_EQ(client.stats().outages, 2u);
}

TEST(RuntimeClientTest, SuccessfulConnectEndsTheOutage) {
  ClientOptions options = fast_options();
  options.max_connect_attempts_per_outage = 4;
  std::size_t dials = 0;
  RuntimeClient client(
      [&dials]() -> Socket {
        ++dials;
        if (dials % 3 != 0) {
          throw Error("unreachable");  // two failures, then a connect
        }
        auto [client_end, server_end] = loopback_pair();
        server_end.close();  // peer hangs up immediately
        return std::move(client_end);
      },
      options);

  // Each exchange burns a few attempts but always reconnects before the
  // cap, so the terminal state is never reached.
  EXPECT_FALSE(client.exchange(make_sample(1)).has_value());
  EXPECT_FALSE(client.exchange(make_sample(2)).has_value());
  EXPECT_FALSE(client.daemon_lost());
  EXPECT_GE(client.stats().outages, 1u);
}

TEST(RuntimeClientTest, RejectsInvalidOptions) {
  const auto connector = []() -> Socket { throw Error("x"); };
  EXPECT_THROW(RuntimeClient(RuntimeClient::Connector{}),
               ps::InvalidArgument);
  ClientOptions bad = fast_options();
  bad.request_timeout = milliseconds(0);
  EXPECT_THROW(RuntimeClient(connector, bad), ps::InvalidArgument);
  bad = fast_options();
  bad.backoff_max = milliseconds(1);  // below backoff_initial
  EXPECT_THROW(RuntimeClient(connector, bad), ps::InvalidArgument);
  bad = fast_options();
  bad.backoff_jitter = 1.0;
  EXPECT_THROW(RuntimeClient(connector, bad), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::net
