#include "net/framing.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ps::net {
namespace {

TEST(FramingTest, RoundTripsOneFrame) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("hello"));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, PreservesMessageBoundaries) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("first") + encode_frame("") +
               encode_frame("third\nwith newline"));
  EXPECT_EQ(decoder.next(), "first");
  EXPECT_EQ(decoder.next(), "");
  EXPECT_EQ(decoder.next(), "third\nwith newline");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FramingTest, ReassemblesByteAtATime) {
  const std::string wire = encode_frame("reassembled payload");
  FrameDecoder decoder;
  std::string out;
  for (const char byte : wire) {
    decoder.feed(std::string_view(&byte, 1));
    if (auto payload = decoder.next()) {
      out = *payload;
    }
  }
  EXPECT_EQ(out, "reassembled payload");
}

TEST(FramingTest, IncompleteFrameStaysBuffered) {
  const std::string wire = encode_frame("pending");
  FrameDecoder decoder;
  decoder.feed(std::string_view(wire).substr(0, wire.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_GT(decoder.buffered_bytes(), 0u);
  decoder.feed(std::string_view(wire).substr(wire.size() - 1));
  EXPECT_EQ(decoder.next(), "pending");
}

TEST(FramingTest, RejectsOversizedFrame) {
  // A length prefix far beyond kMaxFrameBytes: decoding must throw
  // rather than attempt the allocation.
  FrameDecoder decoder;
  decoder.feed(std::string_view("\xFF\xFF\xFF\xFF", 4));
  EXPECT_THROW(static_cast<void>(decoder.next()), ps::Error);
}

TEST(FramingTest, RejectsOversizedEncode) {
  EXPECT_THROW(static_cast<void>(
                   encode_frame(std::string(kMaxFrameBytes + 1, 'x'))),
               ps::Error);
}

TEST(FramingTest, ChecksumRoundTrips) {
  // Known-answer test: CRC-32 ("IEEE") of "123456789" is 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(FramingTest, RejectsCorruptedPayload) {
  // Flip one payload byte: the line grammar downstream might still parse
  // (a changed digit is a validly different number), so the framing layer
  // must be the one to notice.
  std::string wire = encode_frame("observed 214.125 220.000");
  wire[kFrameHeaderBytes + 10] ^= 0x01;
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW(static_cast<void>(decoder.next()), ps::Error);
}

TEST(FramingTest, RejectsCorruptedChecksumByte) {
  std::string wire = encode_frame("payload");
  wire[5] ^= 0xFF;  // a CRC byte, not the length
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW(static_cast<void>(decoder.next()), ps::Error);
}

TEST(FramingTest, TornFrameOneByteAtATimeNeverMisframes) {
  // A hostile or lossy peer dribbles the stream one byte at a time; the
  // decoder must never emit a partial payload and must produce exactly
  // the frames that were sent, in order.
  const std::string wire = encode_frame("first") + encode_frame("") +
                           encode_frame(std::string(1000, 'z'));
  FrameDecoder decoder;
  std::vector<std::string> frames;
  for (const char byte : wire) {
    decoder.feed(std::string_view(&byte, 1));
    while (auto payload = decoder.next()) {
      frames.push_back(*payload);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "first");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], std::string(1000, 'z'));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, CorruptedLengthPrefixesRejectCleanly) {
  // Table of hostile length prefixes. Anything above the cap must throw;
  // anything at or below it must simply wait for more bytes without
  // allocating the claimed length up front.
  const std::uint32_t hostile[] = {0xFFFFFFFFu, 0x80000000u,
                                   (16u << 20) + 1u};
  for (const std::uint32_t length : hostile) {
    FrameDecoder decoder;
    std::string prefix;
    prefix.push_back(static_cast<char>((length >> 24) & 0xff));
    prefix.push_back(static_cast<char>((length >> 16) & 0xff));
    prefix.push_back(static_cast<char>((length >> 8) & 0xff));
    prefix.push_back(static_cast<char>(length & 0xff));
    decoder.feed(prefix);
    EXPECT_THROW(static_cast<void>(decoder.next()), ps::Error)
        << "length " << length;
  }
}

TEST(FramingTest, HostileMaxLengthHeaderDoesNotPreallocate) {
  // A header claiming exactly the 16 MiB cap is legal, but the decoder
  // must buffer only the bytes actually received — a few header bytes —
  // not reserve the claimed 16 MiB (no OOM amplification from a 8-byte
  // write).
  FrameDecoder decoder;
  std::string header;
  const std::uint32_t length = 16u << 20;
  header.push_back(static_cast<char>((length >> 24) & 0xff));
  header.push_back(static_cast<char>((length >> 16) & 0xff));
  header.push_back(static_cast<char>((length >> 8) & 0xff));
  header.push_back(static_cast<char>(length & 0xff));
  header.append(4, '\0');  // an arbitrary CRC — never checked until complete
  decoder.feed(header);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), kFrameHeaderBytes);

  // Dribble a little payload: buffered bytes must track exactly what was
  // fed, proving there is no speculative allocation of the claimed size.
  decoder.feed(std::string(128, 'a'));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), kFrameHeaderBytes + 128);
}

TEST(FramingTest, GarbageAfterValidFrameIsDetected) {
  // A valid frame followed by a stream whose next "header" is random
  // garbage: either the length is hostile (throw) or the eventual CRC
  // check fails — garbage can never silently become a frame.
  FrameDecoder decoder;
  decoder.feed(encode_frame("good"));
  EXPECT_EQ(decoder.next(), "good");
  decoder.feed(std::string_view("\x00\x00\x00\x04"
                                "\x12\x34\x56\x78"
                                "oops",
                                16));
  EXPECT_THROW(static_cast<void>(decoder.next()), ps::Error);
}

}  // namespace
}  // namespace ps::net
