#include "net/framing.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace ps::net {
namespace {

TEST(FramingTest, RoundTripsOneFrame) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("hello"));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, PreservesMessageBoundaries) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("first") + encode_frame("") +
               encode_frame("third\nwith newline"));
  EXPECT_EQ(decoder.next(), "first");
  EXPECT_EQ(decoder.next(), "");
  EXPECT_EQ(decoder.next(), "third\nwith newline");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FramingTest, ReassemblesByteAtATime) {
  const std::string wire = encode_frame("reassembled payload");
  FrameDecoder decoder;
  std::string out;
  for (const char byte : wire) {
    decoder.feed(std::string_view(&byte, 1));
    if (auto payload = decoder.next()) {
      out = *payload;
    }
  }
  EXPECT_EQ(out, "reassembled payload");
}

TEST(FramingTest, IncompleteFrameStaysBuffered) {
  const std::string wire = encode_frame("pending");
  FrameDecoder decoder;
  decoder.feed(std::string_view(wire).substr(0, wire.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_GT(decoder.buffered_bytes(), 0u);
  decoder.feed(std::string_view(wire).substr(wire.size() - 1));
  EXPECT_EQ(decoder.next(), "pending");
}

TEST(FramingTest, RejectsOversizedFrame) {
  // A length prefix far beyond kMaxFrameBytes: decoding must throw
  // rather than attempt the allocation.
  FrameDecoder decoder;
  decoder.feed(std::string_view("\xFF\xFF\xFF\xFF", 4));
  EXPECT_THROW(static_cast<void>(decoder.next()), ps::Error);
}

TEST(FramingTest, RejectsOversizedEncode) {
  EXPECT_THROW(static_cast<void>(
                   encode_frame(std::string(kMaxFrameBytes + 1, 'x'))),
               ps::Error);
}

}  // namespace
}  // namespace ps::net
