#include "net/daemon.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/ps-daemon-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

/// A four-job mix on its own 16-node cluster. Job names sort in the
/// construction order, so the in-memory loop and the daemon (which orders
/// sessions by job name) see the same job sequence.
struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

DaemonOptions daemon_options(const sim::Cluster& cluster, double budget,
                             std::size_t min_jobs) {
  DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = cluster.node(0).tdp();
  options.uncappable_watts = cluster.node(0).params().dram_watts;
  options.min_jobs = min_jobs;
  options.tick_interval = milliseconds(20);
  return options;
}

ClientOptions patient_client() {
  ClientOptions options;
  options.request_timeout = milliseconds(20'000);
  return options;
}

/// The acceptance bar for the whole subsystem: four concurrent clients,
/// real Unix sockets, framed wire messages — and the caps every host ends
/// up with are bit-for-bit the caps the in-memory CoordinationLoop
/// programs for the identical mix. Byte transport adds no drift because
/// the exact wire fidelity round-trips every double.
TEST(DaemonIntegrationTest, MatchesInMemoryCoordinationWattForWatt) {
  const double budget = 16.0 * 180.0;
  const std::size_t iterations = 20;

  // Reference: the in-memory loop over one mix.
  Mix reference;
  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  static_cast<void>(loop.run(reference_jobs, iterations));

  // Distributed: an identical mix, one daemon, four threaded agents.
  Mix distributed;
  const std::string path = unique_socket_path("equality");
  PowerDaemon daemon(daemon_options(*distributed.cluster, budget,
                                    distributed.jobs.size()));
  daemon.listen_unix(path);
  std::thread serving([&daemon] { daemon.run(); });

  std::vector<AgentResult> results(distributed.jobs.size());
  std::vector<std::thread> agents;
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    agents.emplace_back([&, j] {
      RuntimeClient client([&path] { return connect_unix(path); },
                           patient_client());
      CoordinatedAgent agent(*distributed.jobs[j], client);
      results[j] = agent.run(iterations);
    });
  }
  for (std::thread& agent : agents) {
    agent.join();
  }
  daemon.stop();
  serving.join();

  // Every round was served: the launch bootstrap plus one per epoch.
  for (const AgentResult& result : results) {
    EXPECT_EQ(result.iterations, iterations);
    EXPECT_EQ(result.policies_applied, 1 + result.epochs);
    EXPECT_EQ(result.fallback_epochs, 0u);
  }
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.sessions_accepted, distributed.jobs.size());
  EXPECT_EQ(stats.allocations, 1 + iterations / 5);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.budget_violations, 0u);

  // The tentpole claim: exact equality, not approximate agreement.
  for (std::size_t j = 0; j < distributed.jobs.size(); ++j) {
    for (std::size_t h = 0; h < distributed.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(distributed.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << "job " << distributed.jobs[j]->name() << " host " << h;
    }
  }
}

/// Daemon death mid-run: the job keeps computing on its last-known caps,
/// the client backs off exponentially, and a restarted daemon picks the
/// session back up at the job's current sequence number.
TEST(DaemonIntegrationTest, KilledDaemonFallbackAndReconnect) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t h = 0; h < 4; ++h) {
    hosts.push_back(&cluster.node(h));
  }
  sim::JobSimulation job("solo", std::move(hosts), hungry_config());
  const double budget = 4.0 * 180.0;
  const std::string path = unique_socket_path("killed");

  ClientOptions options;
  options.request_timeout = milliseconds(400);
  options.backoff_initial = milliseconds(5);
  options.backoff_max = milliseconds(40);
  RuntimeClient client([&path] { return connect_unix(path); }, options);
  CoordinatedAgent agent(job, client);

  // Phase 1: coordinated epochs against a live daemon.
  auto daemon = std::make_unique<PowerDaemon>(
      daemon_options(cluster, budget, 1));
  daemon->listen_unix(path);
  std::thread serving([&daemon] { daemon->run(); });
  const AgentResult live = agent.run(10);
  EXPECT_EQ(live.policies_applied, 1 + live.epochs);
  EXPECT_EQ(live.fallback_epochs, 0u);

  // Kill the daemon: sessions close, the socket file disappears.
  daemon->stop();
  serving.join();
  daemon.reset();

  std::vector<double> caps_at_death(job.host_count());
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    caps_at_death[h] = job.host_cap(h);
  }

  // Phase 2: every exchange fails; the job must keep its last caps and
  // the client must walk its backoff schedule to the cap.
  const AgentResult orphaned = agent.run(10);
  EXPECT_EQ(orphaned.policies_applied, 0u);
  EXPECT_EQ(orphaned.fallback_epochs, orphaned.epochs);
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    EXPECT_DOUBLE_EQ(job.host_cap(h), caps_at_death[h]) << "host " << h;
  }
  ASSERT_TRUE(client.last_known_policy().has_value());
  EXPECT_GT(client.stats().connect_failures, 0u);
  EXPECT_EQ(client.current_backoff(), options.backoff_max);

  // Phase 3: a fresh daemon on the same path; the client reconnects and
  // coordination resumes at the job's continued sequence numbers.
  daemon = std::make_unique<PowerDaemon>(
      daemon_options(cluster, budget, 1));
  daemon->listen_unix(path);
  std::thread revived([&daemon] { daemon->run(); });
  const AgentResult resumed = agent.run(10);
  daemon->stop();
  revived.join();
  EXPECT_EQ(resumed.policies_applied, resumed.epochs);
  EXPECT_EQ(resumed.fallback_epochs, 0u);
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_GT(agent.sequence(), 4u);
}

/// Loopback transport + departure: when a job disconnects, the next
/// allocation round spreads the freed watts over the remaining jobs.
TEST(DaemonIntegrationTest, DisconnectReturnsWattsToThePool) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts_a{&cluster.node(0), &cluster.node(1)};
  std::vector<hw::NodeModel*> hosts_b{&cluster.node(2), &cluster.node(3)};
  sim::JobSimulation job_a("a-stays", std::move(hosts_a), hungry_config());
  sim::JobSimulation job_b("b-leaves", std::move(hosts_b), hungry_config());

  const double budget = 800.0;
  PowerDaemon daemon(daemon_options(cluster, budget, 2));
  std::thread serving([&daemon] { daemon.run(); });

  auto [client_a_end, daemon_a_end] = loopback_pair();
  auto [client_b_end, daemon_b_end] = loopback_pair();
  daemon.adopt(std::move(daemon_a_end));
  daemon.adopt(std::move(daemon_b_end));

  std::deque<Socket> pool_a;
  pool_a.push_back(std::move(client_a_end));
  RuntimeClient client_a(
      [&pool_a]() -> Socket {
        if (pool_a.empty()) {
          throw Error("loopback exhausted");
        }
        Socket socket = std::move(pool_a.front());
        pool_a.pop_front();
        return socket;
      },
      patient_client());
  std::deque<Socket> pool_b;
  pool_b.push_back(std::move(client_b_end));
  RuntimeClient client_b(
      [&pool_b]() -> Socket {
        if (pool_b.empty()) {
          throw Error("loopback exhausted");
        }
        Socket socket = std::move(pool_b.front());
        pool_b.pop_front();
        return socket;
      },
      patient_client());

  CoordinatedAgent agent_a(job_a, client_a);
  CoordinatedAgent agent_b(job_b, client_b);

  // Both jobs run one coordinated round (barrier: both must report).
  std::thread side_b([&agent_b] {
    static_cast<void>(agent_b.run(5));
  });
  const AgentResult both = agent_a.run(5);
  side_b.join();
  EXPECT_EQ(both.fallback_epochs, 0u);
  // Two identical compute-hungry jobs: each host holds the uniform share.
  const double cap_while_shared = job_a.host_cap(0);
  EXPECT_LE(cap_while_shared, budget / 4.0 + 0.5);

  // Job b departs; its watts must fund the remaining job's next round.
  // (drop the client; the daemon sees EOF and closes the session)
  { RuntimeClient parting = std::move(client_b); }
  const AgentResult alone = agent_a.run(5);
  daemon.stop();
  serving.join();

  EXPECT_EQ(alone.fallback_epochs, 0u);
  EXPECT_GT(job_a.host_cap(0), cap_while_shared);
  const DaemonStats stats = daemon.stats();
  EXPECT_GE(stats.sessions_closed, 1u);
}

/// The same protocol over TCP: one agent against an ephemeral port.
TEST(DaemonIntegrationTest, ServesOverTcp) {
  sim::Cluster cluster(2);
  std::vector<hw::NodeModel*> hosts{&cluster.node(0), &cluster.node(1)};
  sim::JobSimulation job("tcp-job", std::move(hosts), wasteful_config());

  PowerDaemon daemon(daemon_options(cluster, 2.0 * 180.0, 1));
  daemon.listen_tcp(0);
  const std::uint16_t port = daemon.tcp_port();
  ASSERT_GT(port, 0);
  std::thread serving([&daemon] { daemon.run(); });

  RuntimeClient client([port] { return connect_tcp(port); },
                       patient_client());
  CoordinatedAgent agent(job, client);
  const AgentResult result = agent.run(10);
  daemon.stop();
  serving.join();

  EXPECT_EQ(result.policies_applied, 1 + result.epochs);
  EXPECT_EQ(result.fallback_epochs, 0u);
  EXPECT_GT(daemon.stats().policies_sent, 0u);
}

}  // namespace
}  // namespace ps::net
