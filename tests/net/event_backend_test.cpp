// Backend parity for the EventLoop seam: every behaviour the daemon
// stack relies on must be identical under poll(2) and epoll(7). The
// fixture is parameterized over EventBackend, so each TEST_P below runs
// twice; the full daemon/fault/HA suites get the same coverage in CI via
// a PS_EVENT_BACKEND=poll re-run of this binary.
#include <gtest/gtest.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "sim/cluster.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

class EventBackendTest : public ::testing::TestWithParam<EventBackend> {};

TEST_P(EventBackendTest, ConstructionHonoursRequestedBackend) {
  EventLoop loop(GetParam());
#ifdef __linux__
  // On Linux both backends must be real: epoll never silently degrades
  // where epoll_create1 works (this box just created one if asked).
  EXPECT_EQ(loop.backend(), GetParam());
#else
  EXPECT_EQ(loop.backend(), EventBackend::kPoll);
#endif
  EXPECT_NE(to_string(loop.backend()), nullptr);
}

TEST_P(EventBackendTest, DispatchesReadableFd) {
  EventLoop loop(GetParam());
  auto [a, b] = loopback_pair();
  int fired = 0;
  loop.add_fd(a.fd(), POLLIN, [&](short revents) {
    EXPECT_NE(revents & POLLIN, 0);
    ++fired;
    char sink[16];
    static_cast<void>(a.read_some(sink, sizeof(sink)));
  });

  EXPECT_TRUE(loop.run_once(milliseconds(10)));
  EXPECT_EQ(fired, 0);

  static_cast<void>(b.write_some("x"));
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_EQ(fired, 1);
}

TEST_P(EventBackendTest, SetEventsSwitchesInterestToWritable) {
  // Exercises the interest-set modification path (EPOLL_CTL_MOD on the
  // epoll backend): a fd watched for POLLIN flips to POLLOUT and the
  // next cycle reports writability, not the still-unread byte.
  EventLoop loop(GetParam());
  auto [a, b] = loopback_pair();
  static_cast<void>(b.write_some("x"));
  short seen = 0;
  loop.add_fd(a.fd(), POLLIN, [&](short revents) { seen = revents; });
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_NE(seen & POLLIN, 0);

  seen = 0;
  loop.set_events(a.fd(), POLLOUT);
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_NE(seen & POLLOUT, 0);
  EXPECT_EQ(seen & POLLIN, 0);  // no longer subscribed to readability
}

TEST_P(EventBackendTest, CallbackMayRemoveItselfAndReAdd) {
  EventLoop loop(GetParam());
  auto [a, b] = loopback_pair();
  int fired = 0;
  loop.add_fd(a.fd(), POLLIN, [&](short) {
    ++fired;
    char sink[16];
    static_cast<void>(a.read_some(sink, sizeof(sink)));
    loop.remove_fd(a.fd());
  });
  static_cast<void>(b.write_some("x"));
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.watched_fds(), 0u);

  // Re-registering the same fd must work on both backends (the epoll
  // interest set forgets the fd on remove; EEXIST handling must not be
  // needed here, but a stale entry would surface as a spurious fire).
  loop.add_fd(a.fd(), POLLIN, [&](short) {
    ++fired;
    char sink[16];
    static_cast<void>(a.read_some(sink, sizeof(sink)));
  });
  EXPECT_TRUE(loop.run_once(milliseconds(10)));
  EXPECT_EQ(fired, 1);  // nothing pending: no spurious dispatch
  static_cast<void>(b.write_some("y"));
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_EQ(fired, 2);
}

TEST_P(EventBackendTest, PeerCloseReportsReadableOrHup) {
  EventLoop loop(GetParam());
  auto [a, b] = loopback_pair();
  short seen = 0;
  loop.add_fd(a.fd(), POLLIN, [&](short revents) { seen = revents; });
  b.close();
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  // Level-triggered epoll translates EPOLLHUP/EPOLLIN back into poll
  // bits; either is an acceptable close signal for the session layer,
  // which reads to EOF in both cases.
  EXPECT_NE(seen & (POLLIN | POLLHUP), 0);
}

TEST_P(EventBackendTest, StopFromAnotherThreadWakesBlockedWait) {
  EventLoop loop(GetParam());
  std::thread stopper([&loop] {
    std::this_thread::sleep_for(milliseconds(20));
    loop.stop();
  });
  const auto start = std::chrono::steady_clock::now();
  loop.run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_TRUE(loop.stopped());
  EXPECT_LT(elapsed, milliseconds(5000));
}

TEST_P(EventBackendTest, TickFiresOnSchedule) {
  EventLoop loop(GetParam());
  int ticks = 0;
  loop.set_tick(milliseconds(5), [&] { ++ticks; });
  const auto start = std::chrono::steady_clock::now();
  while (ticks < 3 &&
         std::chrono::steady_clock::now() - start < milliseconds(2000)) {
    ASSERT_TRUE(loop.run_once(milliseconds(-1)));
  }
  EXPECT_GE(ticks, 3);
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

struct Mix {
  Mix() {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()}, {"b-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(2 * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts = {&cluster->node(j * 2),
                                           &cluster->node(j * 2 + 1)};
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

TEST_P(EventBackendTest, DaemonRoundsMatchInMemoryCoordination) {
  // The end-to-end check: a daemon serving two clients over the selected
  // backend lands on exactly the caps the in-memory loop computes. Any
  // backend-dependent reordering or dropped readiness edge would break
  // the watt-for-watt equality.
  const double budget = 4.0 * 210.0;
  const std::size_t iterations = 6;

  Mix reference;
  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  loop.run(reference_jobs, iterations);

  Mix mix;
  DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = mix.cluster->node(0).tdp();
  options.uncappable_watts = mix.cluster->node(0).params().dram_watts;
  options.min_jobs = mix.jobs.size();
  options.tick_interval = milliseconds(20);
  options.event_backend = GetParam();
  PowerDaemon daemon(options);
  const std::string socket_path = "/tmp/ps-backend-" +
                                  std::string(to_string(GetParam())) + "-" +
                                  std::to_string(::getpid()) + ".sock";
  daemon.listen_unix(socket_path);
  std::thread serving([&daemon] { daemon.run(); });

  ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);

  std::vector<std::unique_ptr<RuntimeClient>> clients;
  std::vector<std::thread> workers;
  for (auto& job : mix.jobs) {
    RuntimeClient::Connector connector = [socket_path] {
      return connect_unix(socket_path);
    };
    clients.push_back(std::make_unique<RuntimeClient>(std::move(connector),
                                                      client_options));
    workers.emplace_back([&job, &client = *clients.back(), iterations] {
      CoordinatedAgent agent(*job, client);
      const AgentResult result = agent.run(iterations);
      EXPECT_EQ(result.iterations, iterations);
      EXPECT_EQ(result.fallback_epochs, 0u);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  daemon.stop();
  serving.join();
  std::remove(socket_path.c_str());

  for (std::size_t j = 0; j < mix.jobs.size(); ++j) {
    for (std::size_t h = 0; h < mix.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(mix.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << to_string(GetParam()) << ": job " << mix.jobs[j]->name()
          << " host " << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, EventBackendTest,
                         ::testing::Values(EventBackend::kPoll,
                                           EventBackend::kEpoll),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(EventBackendDefaultTest, EnvironmentVariableSelectsBackend) {
  // default_event_backend() is read at construction; exercise both
  // spellings and restore the previous environment afterwards.
  const char* previous = std::getenv("PS_EVENT_BACKEND");
  const std::string saved = previous != nullptr ? previous : "";

  ::setenv("PS_EVENT_BACKEND", "poll", 1);
  EXPECT_EQ(default_event_backend(), EventBackend::kPoll);
  ::setenv("PS_EVENT_BACKEND", "epoll", 1);
  EXPECT_EQ(default_event_backend(), EventBackend::kEpoll);

  if (previous != nullptr) {
    ::setenv("PS_EVENT_BACKEND", saved.c_str(), 1);
  } else {
    ::unsetenv("PS_EVENT_BACKEND");
  }
}

}  // namespace
}  // namespace ps::net
