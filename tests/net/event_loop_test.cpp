#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <poll.h>

#include <chrono>
#include <thread>

#include "net/socket.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

TEST(EventLoopTest, DispatchesReadableFd) {
  EventLoop loop;
  auto [a, b] = loopback_pair();
  int fired = 0;
  loop.add_fd(a.fd(), POLLIN, [&](short revents) {
    EXPECT_NE(revents & POLLIN, 0);
    ++fired;
    char sink[16];
    static_cast<void>(a.read_some(sink, sizeof(sink)));
  });

  // Nothing pending: a bounded cycle returns without dispatching.
  EXPECT_TRUE(loop.run_once(milliseconds(10)));
  EXPECT_EQ(fired, 0);

  static_cast<void>(b.write_some("x"));
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CallbackMayRemoveItself) {
  EventLoop loop;
  auto [a, b] = loopback_pair();
  int fired = 0;
  loop.add_fd(a.fd(), POLLIN, [&](short) {
    ++fired;
    loop.remove_fd(a.fd());
  });
  static_cast<void>(b.write_some("xx"));
  EXPECT_TRUE(loop.run_once(milliseconds(1000)));
  EXPECT_EQ(loop.watched_fds(), 0u);
  // The byte is still unread, but the fd is no longer watched.
  EXPECT_TRUE(loop.run_once(milliseconds(10)));
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, TickFiresOnSchedule) {
  EventLoop loop;
  int ticks = 0;
  loop.set_tick(milliseconds(5), [&] { ++ticks; });
  const auto start = std::chrono::steady_clock::now();
  while (ticks < 3 &&
         std::chrono::steady_clock::now() - start < milliseconds(2000)) {
    ASSERT_TRUE(loop.run_once(milliseconds(-1)));
  }
  EXPECT_GE(ticks, 3);
}

TEST(EventLoopTest, StopFromAnotherThreadWakesBlockedPoll) {
  EventLoop loop;
  std::thread stopper([&loop] {
    std::this_thread::sleep_for(milliseconds(20));
    loop.stop();
  });
  // No fds, no tick: this poll would block forever without the wake-up.
  const auto start = std::chrono::steady_clock::now();
  loop.run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_TRUE(loop.stopped());
  EXPECT_LT(elapsed, milliseconds(5000));
  EXPECT_FALSE(loop.run_once(milliseconds(0)));
}

TEST(EventLoopTest, RejectsInvalidRegistrations) {
  EventLoop loop;
  EXPECT_THROW(loop.add_fd(-1, POLLIN, [](short) {}), ps::InvalidArgument);
  EXPECT_THROW(loop.add_fd(0, POLLIN, nullptr), ps::InvalidArgument);
  EXPECT_THROW(loop.set_events(99, POLLIN), ps::InvalidArgument);
  EXPECT_THROW(loop.set_tick(milliseconds(0), [] {}), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::net
