// Hierarchy acceptance scenario (the tentpole bar for the two-level
// daemon tree): one root daemon + two per-rack aggregators + four
// clients must converge watt-for-watt with BOTH the flat PowerDaemon
// serving the same mix directly AND the in-memory
// CoordinationLoop::run_dynamic replay — across a scheduled brownout
// revision and a mid-run aggregator crash/restart, with runtime
// invariants fatal throughout.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/coordination.hpp"
#include "core/invariants.hpp"
#include "net/agent.hpp"
#include "net/aggregator.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-hier-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;  // the default fixed seed; CI also runs 29 and 47
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

/// The standard four-job mix on its own 16-node cluster (names sort in
/// construction order, so every execution allocates in the same order).
struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

AggregatorOptions rack_options(const std::string& rack,
                               const std::string& parent_path) {
  AggregatorOptions options;
  options.rack = rack;
  options.min_jobs = 2;
  options.tick_interval = milliseconds(10);
  options.reclaim_timeout = milliseconds(30'000);
  options.parent_connector = [parent_path]() -> std::unique_ptr<Transport> {
    try {
      return make_transport(connect_unix(parent_path));
    } catch (const Error&) {
      return nullptr;  // root briefly unreachable: retried on a tick
    }
  };
  return options;
}

TEST(HierarchyEquivalenceTest, TreeMatchesFlatDaemonAndInMemoryReplay) {
  const std::uint64_t seed = scenario_seed();
  RecordProperty("ps_fault_seed", static_cast<int>(seed));
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";

  const core::invariants::Mode previous_mode = core::invariants::mode();
  core::invariants::set_mode(core::invariants::Mode::kFatal);
  core::invariants::reset();

  const double budget = 16.0 * 230.0;  // 3680 W
  const std::size_t iterations = 20;   // 10 before the crash, 10 after

  // The budget trajectory every execution must follow: a drift down at
  // epoch 1, then the 30% brownout at epoch 2 (after the crash).
  std::vector<core::BudgetRevision> schedule(2);
  schedule[0].epoch = 1;
  schedule[0].budget_watts = 0.9 * budget;
  schedule[0].at_epoch = 1;
  schedule[1].epoch = 2;
  schedule[1].budget_watts = 0.7 * budget;
  schedule[1].at_epoch = 2;
  schedule[1].emergency = true;

  // Reference 1: the in-memory dynamic loop.
  Mix reference;
  std::vector<sim::JobSimulation*> reference_jobs;
  for (const auto& job : reference.jobs) {
    reference_jobs.push_back(job.get());
  }
  core::CoordinationLoop loop(budget);
  loop.run_dynamic(reference_jobs, iterations, {}, schedule, nullptr,
                   nullptr);

  const auto daemon_options = [&](const Mix& mix, bool root_mode) {
    DaemonOptions options;
    options.system_budget_watts = budget;
    options.node_tdp_watts = mix.cluster->node(0).tdp();
    options.uncappable_watts = mix.cluster->node(0).params().dram_watts;
    options.min_jobs = mix.jobs.size();
    options.tick_interval = milliseconds(20);
    options.budget_revisions = schedule;
    options.root_mode = root_mode;
    options.reclaim_timeout = milliseconds(30'000);
    options.heartbeat_timeout = milliseconds(60'000);
    return options;
  };

  ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(50);

  // Reference 2: the flat daemon, all four clients direct.
  Mix flat;
  {
    const std::string socket_path = unique_path("flat");
    PowerDaemon daemon(daemon_options(flat, /*root_mode=*/false));
    daemon.listen_unix(socket_path);
    std::thread serving([&daemon] { daemon.run(); });
    std::vector<std::unique_ptr<RuntimeClient>> clients;
    std::vector<std::thread> workers;
    for (auto& job : flat.jobs) {
      RuntimeClient::Connector connector = [socket_path] {
        return connect_unix(socket_path);
      };
      clients.push_back(std::make_unique<RuntimeClient>(std::move(connector),
                                                        client_options));
      workers.emplace_back([&job, &client = *clients.back(), iterations] {
        CoordinatedAgent agent(*job, client);
        const AgentResult result = agent.run(iterations);
        EXPECT_EQ(result.iterations, iterations);
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    daemon.stop();
    serving.join();
    std::remove(socket_path.c_str());
  }

  // The tree: root + two rack aggregators (two jobs each), with rackA
  // crashed and restarted between the halves.
  Mix tree;
  const std::string root_path = unique_path("root");
  const std::string rack_a_path = unique_path("rackA");
  const std::string rack_b_path = unique_path("rackB");

  PowerDaemon root(daemon_options(tree, /*root_mode=*/true));
  root.listen_unix(root_path);
  std::thread root_thread([&root] { root.run(); });

  const auto start_aggregator = [](AggregatorDaemon& aggregator,
                                   const std::string& path) {
    aggregator.listen_unix(path);
    return std::thread([&aggregator] { aggregator.run(); });
  };

  auto rack_a =
      std::make_unique<AggregatorDaemon>(rack_options("rackA", root_path));
  std::thread rack_a_thread = start_aggregator(*rack_a, rack_a_path);
  AggregatorDaemon rack_b(rack_options("rackB", root_path));
  std::thread rack_b_thread = start_aggregator(rack_b, rack_b_path);

  // Jobs 0,1 -> rackA; jobs 2,3 -> rackB. Clients only ever know their
  // rack's endpoint — the tree topology is invisible to the runtime.
  std::vector<std::unique_ptr<RuntimeClient>> clients;
  std::vector<std::unique_ptr<CoordinatedAgent>> agents;
  for (std::size_t j = 0; j < tree.jobs.size(); ++j) {
    const std::string& path = j < 2 ? rack_a_path : rack_b_path;
    RuntimeClient::Connector connector = [path] {
      return connect_unix(path);
    };
    clients.push_back(std::make_unique<RuntimeClient>(std::move(connector),
                                                      client_options));
    agents.push_back(
        std::make_unique<CoordinatedAgent>(*tree.jobs[j], *clients[j]));
  }

  const auto run_half = [&agents] {
    std::vector<std::thread> workers;
    for (auto& agent : agents) {
      workers.emplace_back([&agent] {
        const AgentResult result = agent->run(10);
        EXPECT_EQ(result.iterations, 10u);
        EXPECT_EQ(result.fallback_epochs, 0u);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  };

  run_half();
  const DaemonStats mid = root.stats();
  EXPECT_EQ(mid.rack_sessions, 2u);
  EXPECT_GT(mid.rack_frames_received, 0u);
  EXPECT_GT(mid.rack_policies_sent, 0u);
  EXPECT_EQ(mid.budget_epoch, 1u);  // the drift adopted, brownout pending
  EXPECT_EQ(mid.budget_violations, 0u);

  // Crash rackA: its in-memory latches and stored policies are gone; its
  // clients reconnect to the restarted instance, which re-registers with
  // the root on a fresh session without disturbing rackB.
  rack_a->stop();
  rack_a_thread.join();
  const AggregatorStats crashed = rack_a->stats();
  EXPECT_GT(crashed.rounds_forwarded, 0u);
  EXPECT_GT(crashed.policies_fanned_out, 0u);
  rack_a.reset();

  rack_a =
      std::make_unique<AggregatorDaemon>(rack_options("rackA", root_path));
  rack_a_thread = start_aggregator(*rack_a, rack_a_path);

  run_half();

  const DaemonStats after = root.stats();
  EXPECT_EQ(after.budget_epoch, 2u);  // the brownout arrived post-crash
  EXPECT_DOUBLE_EQ(after.budget_watts, schedule[1].budget_watts);
  EXPECT_EQ(after.budget_violations, 0u);
  EXPECT_EQ(after.jobs_evicted, 0u);  // the crash stayed within grace

  rack_a->stop();
  rack_b.stop();
  rack_a_thread.join();
  rack_b_thread.join();
  root.stop();
  root_thread.join();
  std::remove(root_path.c_str());
  std::remove(rack_a_path.c_str());
  std::remove(rack_b_path.c_str());

  // Budget-epoch propagation: every leaf heard the brownout through its
  // aggregator.
  for (const auto& client : clients) {
    ASSERT_TRUE(client->last_budget().has_value());
    EXPECT_EQ(client->last_budget()->epoch, 2u);
    EXPECT_DOUBLE_EQ(client->last_budget()->budget_watts,
                     schedule[1].budget_watts);
  }

  // Watt-for-watt equality across all three executions: the tree, the
  // flat daemon, and the in-memory replay end on bit-identical caps.
  for (std::size_t j = 0; j < tree.jobs.size(); ++j) {
    for (std::size_t h = 0; h < tree.jobs[j]->host_count(); ++h) {
      EXPECT_DOUBLE_EQ(tree.jobs[j]->host_cap(h),
                       reference_jobs[j]->host_cap(h))
          << "tree vs in-memory: job " << tree.jobs[j]->name() << " host "
          << h << " (seed " << seed << ")";
      EXPECT_DOUBLE_EQ(tree.jobs[j]->host_cap(h), flat.jobs[j]->host_cap(h))
          << "tree vs flat: job " << tree.jobs[j]->name() << " host " << h
          << " (seed " << seed << ")";
    }
  }

  EXPECT_EQ(core::invariants::stats().violations, 0u);
  core::invariants::reset();
  core::invariants::set_mode(previous_mode);
}

}  // namespace
}  // namespace ps::net
