#include "net/socket.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>

#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/ps-net-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

/// Pumps `payload` across a connected pair and reads it back.
void expect_echo(Socket& from, Socket& to, const std::string& payload) {
  std::string_view rest = payload;
  while (!rest.empty()) {
    const IoResult sent = from.write_some(rest);
    if (sent.status == IoStatus::kWouldBlock) {
      ASSERT_TRUE(from.wait_writable(milliseconds(1000)));
      continue;
    }
    ASSERT_EQ(sent.status, IoStatus::kOk);
    rest.remove_prefix(sent.bytes);
  }
  std::string received;
  char buffer[4096];
  while (received.size() < payload.size()) {
    const IoResult got = to.read_some(buffer, sizeof(buffer));
    if (got.status == IoStatus::kWouldBlock) {
      ASSERT_TRUE(to.wait_readable(milliseconds(1000)));
      continue;
    }
    ASSERT_EQ(got.status, IoStatus::kOk);
    received.append(buffer, got.bytes);
  }
  EXPECT_EQ(received, payload);
}

TEST(TransportTest, UnixSocketCarriesBytesBothWays) {
  const std::string path = unique_socket_path("unix");
  Listener listener = listen_unix(path);
  Socket client = connect_unix(path);
  ASSERT_TRUE(listener.fd() >= 0);
  ASSERT_TRUE(listener.valid());
  std::optional<Socket> server;
  for (int i = 0; i < 100 && !server; ++i) {
    server = listener.accept();
  }
  ASSERT_TRUE(server.has_value());
  expect_echo(client, *server, "sample up");
  expect_echo(*server, client, "policy down");
}

TEST(TransportTest, UnixListenerReplacesStaleSocketFile) {
  const std::string path = unique_socket_path("stale");
  {
    Listener first = listen_unix(path);
  }  // destructor unlinks
  Listener second = listen_unix(path);
  EXPECT_TRUE(second.valid());
}

TEST(TransportTest, TcpEphemeralPortRoundTrips) {
  std::uint16_t port = 0;
  Listener listener = listen_tcp(0, &port);
  ASSERT_GT(port, 0);
  Socket client = connect_tcp(port);
  std::optional<Socket> server;
  for (int i = 0; i < 100 && !server; ++i) {
    server = listener.accept();
  }
  ASSERT_TRUE(server.has_value());
  // A payload large enough to exercise partial writes on most kernels.
  expect_echo(client, *server, std::string(1u << 20, 'w'));
}

TEST(TransportTest, LoopbackPairIsConnected) {
  auto [a, b] = loopback_pair();
  expect_echo(a, b, "in-process");
  expect_echo(b, a, "both ways");
}

TEST(TransportTest, ReadReportsPeerClose) {
  auto [a, b] = loopback_pair();
  b.close();
  char buffer[8];
  ASSERT_TRUE(a.wait_readable(milliseconds(1000)));
  EXPECT_EQ(a.read_some(buffer, sizeof(buffer)).status, IoStatus::kClosed);
}

TEST(TransportTest, ConnectToMissingEndpointThrows) {
  EXPECT_THROW(static_cast<void>(
                   connect_unix(unique_socket_path("nonexistent"))),
               ps::Error);
}

}  // namespace
}  // namespace ps::net
