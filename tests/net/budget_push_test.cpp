// Dynamic budgets over the socket protocol: BudgetMessage pushes advance
// the client's session epoch, stale-tagged caps are rejected, the epoch
// contract resets per connection (the daemon resyncs on registration),
// and a snapshot-restored daemon keeps its revised budget.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/endpoint.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/ps-budget-" + tag + "-" + std::to_string(::getpid()) +
         suffix;
}

core::SampleMessage make_sample(std::uint64_t sequence) {
  core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = "job-a";
  sample.min_settable_cap_watts = 100.0;
  sample.host_observed_watts = {150.0, 160.0};
  sample.host_needed_watts = {140.0, 155.0};
  return sample;
}

void write_frame(Socket& server, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(server.write_some(frame).bytes, frame.size());
}

/// Reads framed bytes off `server` until one full sample arrives.
core::SampleMessage read_sample(Socket& server) {
  FrameDecoder decoder;
  char buffer[4096];
  for (;;) {
    if (auto payload = decoder.next()) {
      return core::parse_sample_message(*payload);
    }
    EXPECT_TRUE(server.wait_readable(milliseconds(2'000)));
    const IoResult result = server.read_some(buffer, sizeof(buffer));
    EXPECT_EQ(result.status, IoStatus::kOk);
    decoder.feed(std::string_view(buffer, result.bytes));
  }
}

ClientOptions fast_options() {
  ClientOptions options;
  options.request_timeout = milliseconds(2'000);
  options.backoff_initial = milliseconds(2);
  options.backoff_max = milliseconds(16);
  options.backoff_jitter = 0.0;
  return options;
}

RuntimeClient::Connector pool_connector(std::deque<Socket>& pool) {
  return [&pool]() -> Socket {
    if (pool.empty()) {
      throw Error("no more connections");
    }
    Socket socket = std::move(pool.front());
    pool.pop_front();
    return socket;
  };
}

TEST(BudgetPushTest, BudgetMessageAdvancesTheSessionEpoch) {
  auto [client_end, server_end] = loopback_pair();
  std::deque<Socket> pool;
  pool.push_back(std::move(client_end));
  RuntimeClient client(pool_connector(pool), fast_options());
  Socket server = std::move(server_end);

  std::thread responder([&server] {
    const core::SampleMessage sample = read_sample(server);
    core::BudgetMessage budget;
    budget.epoch = 2;
    budget.budget_watts = 640.0;
    budget.emergency = true;
    write_frame(server, serialize(budget, core::WireFidelity::kExact));
    core::PolicyMessage policy;
    policy.sequence = sample.sequence;
    policy.job_name = sample.job_name;
    policy.host_caps_watts = {180.0, 190.0};
    policy.budget_epoch = 2;
    write_frame(server, serialize(policy, core::WireFidelity::kExact));
  });
  const auto policy = client.exchange(make_sample(3));
  responder.join();
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->budget_epoch, 2u);
  EXPECT_EQ(client.session_budget_epoch(), 2u);
  ASSERT_TRUE(client.last_budget().has_value());
  EXPECT_EQ(client.last_budget()->epoch, 2u);
  EXPECT_DOUBLE_EQ(client.last_budget()->budget_watts, 640.0);
  EXPECT_TRUE(client.last_budget()->emergency);
  EXPECT_EQ(client.stats().budget_revisions, 1u);
  EXPECT_EQ(client.stats().stale_epoch_caps, 0u);
}

TEST(BudgetPushTest, CapsTaggedWithASupersededEpochAreRejected) {
  auto [client_end, server_end] = loopback_pair();
  std::deque<Socket> pool;
  pool.push_back(std::move(client_end));
  RuntimeClient client(pool_connector(pool), fast_options());
  Socket server = std::move(server_end);

  std::thread responder([&server] {
    const core::SampleMessage sample = read_sample(server);
    core::BudgetMessage budget;
    budget.epoch = 3;
    budget.budget_watts = 500.0;
    write_frame(server, serialize(budget, core::WireFidelity::kExact));
    // Caps computed under budget epoch 1 — revoked; they would overspend
    // the epoch-3 budget. The client must drain, not apply, them.
    core::PolicyMessage stale;
    stale.sequence = sample.sequence;
    stale.job_name = sample.job_name;
    stale.host_caps_watts = {300.0, 300.0};
    stale.budget_epoch = 1;
    write_frame(server, serialize(stale, core::WireFidelity::kExact));
    core::PolicyMessage good;
    good.sequence = sample.sequence;
    good.job_name = sample.job_name;
    good.host_caps_watts = {240.0, 250.0};
    good.budget_epoch = 3;
    write_frame(server, serialize(good, core::WireFidelity::kExact));
  });
  const auto policy = client.exchange(make_sample(5));
  responder.join();
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->budget_epoch, 3u);
  EXPECT_EQ(policy->host_caps_watts,
            (std::vector<double>{240.0, 250.0}));
  EXPECT_EQ(client.stats().stale_epoch_caps, 1u);
}

TEST(BudgetPushTest, DuplicateBudgetPushIsStaleNotARevision) {
  auto [client_end, server_end] = loopback_pair();
  std::deque<Socket> pool;
  pool.push_back(std::move(client_end));
  RuntimeClient client(pool_connector(pool), fast_options());
  Socket server = std::move(server_end);

  std::thread responder([&server] {
    const core::SampleMessage sample = read_sample(server);
    core::BudgetMessage budget;
    budget.epoch = 4;
    budget.budget_watts = 700.0;
    write_frame(server, serialize(budget, core::WireFidelity::kExact));
    write_frame(server, serialize(budget, core::WireFidelity::kExact));
    core::PolicyMessage policy;
    policy.sequence = sample.sequence;
    policy.job_name = sample.job_name;
    policy.host_caps_watts = {200.0, 200.0};
    policy.budget_epoch = 4;
    write_frame(server, serialize(policy, core::WireFidelity::kExact));
  });
  ASSERT_TRUE(client.exchange(make_sample(1)).has_value());
  responder.join();
  EXPECT_EQ(client.stats().budget_revisions, 1u);
  EXPECT_EQ(client.stats().budget_pushes_stale, 1u);
}

TEST(BudgetPushTest, SessionEpochResetsPerConnection) {
  auto [first_client_end, first_server_end] = loopback_pair();
  auto [second_client_end, second_server_end] = loopback_pair();
  std::deque<Socket> pool;
  pool.push_back(std::move(first_client_end));
  pool.push_back(std::move(second_client_end));
  RuntimeClient client(pool_connector(pool), fast_options());

  {
    Socket server = std::move(first_server_end);
    std::thread responder([&server] {
      const core::SampleMessage sample = read_sample(server);
      core::BudgetMessage budget;
      budget.epoch = 5;
      budget.budget_watts = 800.0;
      write_frame(server, serialize(budget, core::WireFidelity::kExact));
      core::PolicyMessage policy;
      policy.sequence = sample.sequence;
      policy.job_name = sample.job_name;
      policy.host_caps_watts = {190.0, 190.0};
      policy.budget_epoch = 5;
      write_frame(server, serialize(policy, core::WireFidelity::kExact));
    });
    ASSERT_TRUE(client.exchange(make_sample(1)).has_value());
    responder.join();
    EXPECT_EQ(client.session_budget_epoch(), 5u);
  }  // the first connection's server end closes here

  // On the next connection the daemon is the epoch authority again: an
  // epoch-1 tag must be accepted, not compared against the old session.
  Socket server = std::move(second_server_end);
  std::thread responder([&server] {
    const core::SampleMessage sample = read_sample(server);
    core::PolicyMessage policy;
    policy.sequence = sample.sequence;
    policy.job_name = sample.job_name;
    policy.host_caps_watts = {150.0, 150.0};
    policy.budget_epoch = 1;
    write_frame(server, serialize(policy, core::WireFidelity::kExact));
  });
  const auto policy = client.exchange(make_sample(2));
  responder.join();
  ASSERT_TRUE(policy.has_value());
  EXPECT_EQ(policy->budget_epoch, 1u);
  EXPECT_EQ(client.session_budget_epoch(), 1u);
  EXPECT_EQ(client.stats().stale_epoch_caps, 0u);
  // The archival last_budget survives the reconnect regardless.
  ASSERT_TRUE(client.last_budget().has_value());
  EXPECT_EQ(client.last_budget()->epoch, 5u);
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

DaemonOptions daemon_options(const sim::Cluster& cluster, double budget) {
  DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = cluster.node(0).tdp();
  options.uncappable_watts = cluster.node(0).params().dram_watts;
  options.min_jobs = 1;
  options.tick_interval = milliseconds(20);
  return options;
}

TEST(BudgetPushTest, ReviseBudgetReachesALiveClientAndItsCaps) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t h = 0; h < 4; ++h) {
    hosts.push_back(&cluster.node(h));
  }
  sim::JobSimulation job("solo", std::move(hosts), hungry_config());
  const double budget = 4.0 * 200.0;
  const std::string path = unique_path("revise", ".sock");

  PowerDaemon daemon(daemon_options(cluster, budget));
  daemon.listen_unix(path);
  std::thread serving([&daemon] { daemon.run(); });

  ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  RuntimeClient client([&path] { return connect_unix(path); },
                       client_options);
  CoordinatedAgent agent(job, client);
  static_cast<void>(agent.run(10));  // converge under the original budget

  core::BudgetRevision revision;
  revision.epoch = 1;
  revision.budget_watts = 4.0 * 170.0;  // a 15% drop, above the floors
  revision.emergency = false;
  daemon.revise_budget(revision);
  static_cast<void>(agent.run(10));  // run under the revised budget
  daemon.stop();
  serving.join();
  std::remove(path.c_str());

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.budget_revisions_applied, 1u);
  EXPECT_EQ(stats.budget_epoch, 1u);
  EXPECT_DOUBLE_EQ(stats.budget_watts, revision.budget_watts);
  EXPECT_GE(stats.budget_pushes, 1u);
  EXPECT_EQ(stats.budget_violations, 0u);

  ASSERT_TRUE(client.last_budget().has_value());
  EXPECT_EQ(client.last_budget()->epoch, 1u);
  EXPECT_DOUBLE_EQ(client.last_budget()->budget_watts,
                   revision.budget_watts);
  EXPECT_GE(client.stats().budget_revisions, 1u);
  EXPECT_EQ(client.stats().stale_epoch_caps, 0u);

  // The programmed caps fit the revised budget (RAPL slack only).
  double programmed = 0.0;
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    programmed += job.host_cap(h);
  }
  EXPECT_LE(programmed, revision.budget_watts + 0.5 * 4.0);
}

TEST(BudgetPushTest, SnapshotRestartKeepsTheRevisedBudget) {
  sim::Cluster cluster(2);
  std::vector<hw::NodeModel*> hosts{&cluster.node(0), &cluster.node(1)};
  sim::JobSimulation job("solo", std::move(hosts), hungry_config());
  const double budget = 2.0 * 220.0;
  const std::string path = unique_path("snapshot", ".sock");
  const std::string snapshot = unique_path("snapshot", ".snap");

  DaemonOptions options = daemon_options(cluster, budget);
  options.snapshot_path = snapshot;

  core::BudgetRevision revision;
  revision.epoch = 3;  // epochs may skip: only monotonicity matters
  revision.budget_watts = 2.0 * 180.0;

  ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(40);
  RuntimeClient client([&path] { return connect_unix(path); },
                       client_options);
  CoordinatedAgent agent(job, client);

  {
    auto daemon = std::make_unique<PowerDaemon>(options);
    daemon->listen_unix(path);
    std::thread serving([&daemon] { daemon->run(); });
    static_cast<void>(agent.run(10));
    daemon->revise_budget(revision);
    static_cast<void>(agent.run(10));
    daemon->stop();
    serving.join();
    EXPECT_EQ(daemon->stats().budget_epoch, 3u);
  }  // crash: in-memory state gone, the snapshot is not

  // The restored daemon enforces the revised budget, not the configured
  // one — a restart cannot resurrect a superseded budget.
  auto daemon = std::make_unique<PowerDaemon>(options);
  EXPECT_GE(daemon->stats().jobs_restored, 1u);
  EXPECT_EQ(daemon->stats().budget_epoch, 3u);
  EXPECT_DOUBLE_EQ(daemon->stats().budget_watts, revision.budget_watts);
  daemon->listen_unix(path);
  std::thread serving([&daemon] { daemon->run(); });
  const AgentResult resumed = agent.run(10);
  daemon->stop();
  serving.join();
  std::remove(path.c_str());
  std::remove(snapshot.c_str());

  EXPECT_EQ(resumed.fallback_epochs, 0u);
  double programmed = 0.0;
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    programmed += job.host_cap(h);
  }
  EXPECT_LE(programmed, revision.budget_watts + 0.5 * 2.0);
}

}  // namespace
}  // namespace ps::net
