// Satellite: quarantine bookkeeping stays O(1) under unbounded client
// churn. A thousand distinct misbehaving job identities each earn a
// quarantine; the record of them must never exceed the configured bound,
// with insertions past it dropping the entry closest to expiry.
#include "net/daemon.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/endpoint.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;

TEST(QuarantineSoakTest, EntriesStayBoundedAcrossAThousandChurnedClients) {
  const std::string path = "/tmp/ps-quarantine-soak-" +
                           std::to_string(::getpid()) + ".sock";
  DaemonOptions options;
  options.system_budget_watts = 1000.0;
  // Barrier never met: the soak isolates registration + quarantine, no
  // allocation rounds run.
  options.min_jobs = 1u << 20;
  options.tick_interval = milliseconds(20);
  options.quarantine_errors = 1;
  options.quarantine_period = milliseconds(60'000);
  options.max_quarantine_entries = 32;
  PowerDaemon daemon(options);
  daemon.listen_unix(path);
  std::thread server([&daemon] { daemon.run(); });

  constexpr std::size_t kClients = 1'000;
  for (std::size_t i = 0; i < kClients; ++i) {
    Socket socket = connect_unix(path);

    core::SampleMessage sample;
    sample.sequence = 1;
    sample.job_name = "churn-" + std::to_string(i);
    sample.min_settable_cap_watts = 50.0;
    sample.host_observed_watts = {100.0};
    sample.host_needed_watts = {90.0};
    std::string bytes =
        encode_frame(core::serialize(sample, core::WireFidelity::kExact));
    // A well-framed but unparseable payload: one protocol error, which at
    // quarantine_errors=1 evicts and quarantines this identity.
    bytes += encode_frame("not a powerstack message");

    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const IoResult r =
          socket.write_some(std::string_view(bytes).substr(sent));
      if (r.status == IoStatus::kOk) {
        sent += r.bytes;
        continue;
      }
      ASSERT_NE(r.status, IoStatus::kClosed) << "client " << i;
      ASSERT_TRUE(socket.wait_writable(milliseconds(5'000)));
    }

    // The daemon closes the session when it quarantines: waiting for the
    // close keeps the churn sequential without a single sleep.
    char buffer[256];
    for (;;) {
      const IoResult r = socket.read_some(buffer, sizeof(buffer));
      if (r.status == IoStatus::kClosed) {
        break;
      }
      if (r.status == IoStatus::kWouldBlock) {
        ASSERT_TRUE(socket.wait_readable(milliseconds(5'000)))
            << "daemon never closed on client " << i;
      }
    }
  }

  const DaemonStats stats = daemon.stats();
  daemon.stop();
  server.join();

  EXPECT_EQ(stats.quarantines, kClients);
  EXPECT_EQ(stats.jobs_evicted, kClients);
  EXPECT_LE(stats.quarantine_entries, 32u);
  EXPECT_GE(stats.quarantine_entries, 1u);
  // Everything past the bound was dropped, not accumulated.
  EXPECT_EQ(stats.quarantine_entries_dropped,
            kClients - stats.quarantine_entries);
  EXPECT_EQ(stats.protocol_errors, kClients);
}

}  // namespace
}  // namespace ps::net
