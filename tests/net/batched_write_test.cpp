// Regression coverage for the disconnect-during-batched-write audit: a
// session that dies while the round's coalesced frames are being flushed
// must have its watts reclaimed exactly once — not zero times (a leak
// that starves every later round) and not twice (a phantom surplus the
// next allocation would overspend). Also covers the rack-session variant
// of the same audit: evicting one job bound through a rack session must
// unbind that job without closing the rack session the surviving jobs
// still depend on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/endpoint.hpp"
#include "net/daemon.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace ps::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-batch-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

/// Server-side decorator that watches the inbound bytes for a marker job
/// name; once the marker has been seen and the shared kill switch is on,
/// every write to that peer reports a closed pipe. This is exactly the
/// shape of the production failure: the peer died between the allocation
/// computing its caps and the batch flush writing them.
class VictimTransport final : public Transport {
 public:
  VictimTransport(std::unique_ptr<Transport> inner, std::string marker,
                  std::atomic<bool>& fail_writes)
      : inner_(std::move(inner)),
        marker_(std::move(marker)),
        fail_writes_(fail_writes) {}

  [[nodiscard]] int fd() const noexcept override { return inner_->fd(); }
  [[nodiscard]] bool valid() const noexcept override {
    return inner_->valid();
  }
  void close() noexcept override { inner_->close(); }

  IoResult read_some(char* out, std::size_t max_bytes) override {
    const IoResult result = inner_->read_some(out, max_bytes);
    if (result.status == IoStatus::kOk && !is_victim_) {
      seen_.append(out, result.bytes);
      if (seen_.find(marker_) != std::string::npos) {
        is_victim_ = true;
        seen_.clear();
      }
    }
    return result;
  }

  IoResult write_some(std::string_view bytes) override {
    if (is_victim_ && fail_writes_.load(std::memory_order_acquire)) {
      return {IoStatus::kClosed, 0};
    }
    return inner_->write_some(bytes);
  }

  [[nodiscard]] bool wait_readable(milliseconds timeout) override {
    return inner_->wait_readable(timeout);
  }
  [[nodiscard]] bool wait_writable(milliseconds timeout) override {
    return inner_->wait_writable(timeout);
  }

 private:
  std::unique_ptr<Transport> inner_;
  std::string marker_;
  std::atomic<bool>& fail_writes_;
  bool is_victim_ = false;
  std::string seen_;
};

/// Minimal scripted client: raw socket + frame codec, no RuntimeClient
/// retry machinery — the test controls every byte.
void send_payload(Socket& socket, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::string_view rest = frame;
  while (!rest.empty()) {
    const IoResult result = socket.write_some(rest);
    if (result.status == IoStatus::kOk) {
      rest.remove_prefix(result.bytes);
      continue;
    }
    ASSERT_EQ(result.status, IoStatus::kWouldBlock) << "peer closed";
    ASSERT_TRUE(socket.wait_writable(milliseconds(2000)));
  }
}

std::optional<std::string> read_payload(Socket& socket, FrameDecoder& decoder,
                                        milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  while (true) {
    if (std::optional<std::string> frame = decoder.next()) {
      return frame;
    }
    const auto remaining = std::chrono::duration_cast<milliseconds>(
        deadline - steady_clock::now());
    if (remaining <= milliseconds(0) ||
        !socket.wait_readable(remaining)) {
      return std::nullopt;
    }
    char buffer[4096];
    const IoResult result = socket.read_some(buffer, sizeof(buffer));
    if (result.status == IoStatus::kClosed) {
      return std::nullopt;
    }
    if (result.status == IoStatus::kOk) {
      decoder.feed({buffer, result.bytes});
    }
  }
}

core::SampleMessage make_sample(const std::string& job,
                                std::uint64_t sequence) {
  core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = job;
  sample.min_settable_cap_watts = 80.0;
  sample.host_observed_watts = {200.0, 200.0};
  sample.host_needed_watts = {240.0, 240.0};
  return sample;
}

bool wait_for(const std::function<bool()>& predicate, milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(milliseconds(5));
  }
  return predicate();
}

TEST(BatchedWriteTest, DisconnectDuringBatchedFlushReclaimsWattsExactlyOnce) {
  const double budget = 4.0 * 210.0;  // 840 W over 4 hosts
  std::atomic<bool> fail_victim_writes{false};

  DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = 256.0;
  options.uncappable_watts = 16.0;
  options.min_jobs = 2;
  options.tick_interval = milliseconds(10);
  options.reclaim_timeout = milliseconds(100);
  options.heartbeat_timeout = milliseconds(60'000);
  options.transport_wrapper =
      [&fail_victim_writes](std::unique_ptr<Transport> inner) {
        return std::make_unique<VictimTransport>(
            std::move(inner), "job a-victim", fail_victim_writes);
      };
  PowerDaemon daemon(options);
  const std::string socket_path = unique_path("flush");
  daemon.listen_unix(socket_path);
  std::thread serving([&daemon] { daemon.run(); });

  // The victim's connection is doomed before it registers: its first
  // (and only) outbound frame is the bootstrap policy the batch flush
  // writes — so the session dies with that frame queued, after the
  // allocation already stored its caps.
  fail_victim_writes.store(true, std::memory_order_release);

  Socket victim = connect_unix(socket_path);
  FrameDecoder victim_decoder;
  send_payload(victim, serialize(make_sample("a-victim", 0),
                                 core::WireFidelity::kExact));

  Socket survivor = connect_unix(socket_path);
  FrameDecoder survivor_decoder;
  send_payload(survivor, serialize(make_sample("b-survivor", 0),
                                   core::WireFidelity::kExact));

  // The survivor's bootstrap reply proves the round completed even
  // though the batch flush lost a peer mid-write.
  std::optional<std::string> reply =
      read_payload(survivor, survivor_decoder, milliseconds(5000));
  ASSERT_TRUE(reply.has_value());
  const core::PolicyMessage bootstrap = core::parse_policy_message(*reply);
  EXPECT_EQ(bootstrap.job_name, "b-survivor");
  ASSERT_EQ(bootstrap.host_caps_watts.size(), 2u);
  // Uniform launch share: budget / total hosts, per host.
  EXPECT_DOUBLE_EQ(bootstrap.host_caps_watts[0], budget / 4.0);
  EXPECT_DOUBLE_EQ(bootstrap.host_caps_watts[1], budget / 4.0);

  // The dead flush must have closed the victim's session immediately —
  // not left it half-alive until the idle scan.
  ASSERT_TRUE(wait_for(
      [&daemon] { return daemon.stats().sessions_closed >= 1; },
      milliseconds(5000)));
  EXPECT_EQ(daemon.stats().jobs_evicted, 0u);  // grace is running

  // Grace expiry: the victim's seat is reclaimed, worth exactly its
  // stored bootstrap share (2 hosts x 210 W), exactly once.
  ASSERT_TRUE(wait_for(
      [&daemon] { return daemon.stats().jobs_evicted == 1; },
      milliseconds(5000)));
  const DaemonStats at_eviction = daemon.stats();
  EXPECT_DOUBLE_EQ(at_eviction.watts_reclaimed, 2.0 * (budget / 4.0));

  // Exactly once: ticks keep running, nothing reclaims the same watts
  // again (the double-free would show up right here).
  std::this_thread::sleep_for(milliseconds(200));
  const DaemonStats later = daemon.stats();
  EXPECT_EQ(later.jobs_evicted, 1u);
  EXPECT_DOUBLE_EQ(later.watts_reclaimed, at_eviction.watts_reclaimed);

  // The freed watts are usable: the survivor's next round may now
  // exceed its old uniform share, and never the budget.
  send_payload(survivor, serialize(make_sample("b-survivor", 1),
                                   core::WireFidelity::kExact));
  reply = read_payload(survivor, survivor_decoder, milliseconds(5000));
  ASSERT_TRUE(reply.has_value());
  const core::PolicyMessage after = core::parse_policy_message(*reply);
  EXPECT_EQ(after.sequence, 1u);
  double total = 0.0;
  for (const double cap : after.host_caps_watts) {
    total += cap;
  }
  EXPECT_GT(total, 2.0 * (budget / 4.0));
  EXPECT_LE(total, budget + 1e-6);

  victim.close();
  survivor.close();
  daemon.stop();
  serving.join();
  std::remove(socket_path.c_str());
}

TEST(BatchedWriteTest, RackJobEvictionUnbindsWithoutClosingRackSession) {
  // The rack-session variant of the audit: one aggregator session
  // carries jobs a and b. When b stalls past the heartbeat, evicting it
  // must surgically unbind b from the rack session — closing the shared
  // session would take the healthy job down with it (the original bug).
  const double budget = 4.0 * 210.0;

  DaemonOptions options;
  options.system_budget_watts = budget;
  options.node_tdp_watts = 256.0;
  options.uncappable_watts = 16.0;
  options.min_jobs = 2;
  options.tick_interval = milliseconds(10);
  options.reclaim_timeout = milliseconds(60'000);  // no disconnect here
  options.heartbeat_timeout = milliseconds(100);
  options.root_mode = true;
  PowerDaemon root(options);
  const std::string socket_path = unique_path("rack");
  root.listen_unix(socket_path);
  std::thread serving([&root] { root.run(); });

  Socket rack = connect_unix(socket_path);
  FrameDecoder decoder;

  // Round 0: both jobs bootstrap through one batched rack frame.
  core::RackSampleMessage round0;
  round0.rack = "r0";
  round0.round = 0;
  round0.samples = {make_sample("a-alive", 0), make_sample("b-stalled", 0)};
  send_payload(rack, serialize(round0, core::WireFidelity::kExact));

  std::optional<std::string> reply =
      read_payload(rack, decoder, milliseconds(5000));
  ASSERT_TRUE(reply.has_value());
  const core::RackPolicyMessage bootstrap =
      core::parse_rack_policy_message(*reply);
  ASSERT_EQ(bootstrap.policies.size(), 2u);
  EXPECT_DOUBLE_EQ(bootstrap.rack_budget_watts, budget);

  // b goes silent; a keeps sampling through the same rack session. Its
  // fresh samples wait on b until the heartbeat scan evicts b.
  std::uint64_t sequence = 1;
  const auto deadline = steady_clock::now() + milliseconds(5000);
  while (root.stats().jobs_evicted == 0 && steady_clock::now() < deadline) {
    core::RackSampleMessage frame;
    frame.rack = "r0";
    frame.round = sequence;
    frame.samples = {make_sample("a-alive", sequence)};
    send_payload(rack, serialize(frame, core::WireFidelity::kExact));
    ++sequence;
    std::this_thread::sleep_for(milliseconds(20));
  }
  const DaemonStats after_eviction = root.stats();
  ASSERT_EQ(after_eviction.jobs_evicted, 1u);
  // b held its bootstrap share; the eviction returned it, once.
  EXPECT_DOUBLE_EQ(after_eviction.watts_reclaimed, 2.0 * (budget / 4.0));
  // The audited property: the shared rack session survived the eviction.
  EXPECT_EQ(after_eviction.rack_sessions, 1u);
  EXPECT_EQ(after_eviction.sessions_closed, 0u);

  // And it still works: the next a-only frame completes a round whose
  // batched reply names only the surviving job.
  core::RackSampleMessage frame;
  frame.rack = "r0";
  frame.round = sequence;
  frame.samples = {make_sample("a-alive", sequence)};
  send_payload(rack, serialize(frame, core::WireFidelity::kExact));

  core::RackPolicyMessage final_policy;
  const auto read_deadline = steady_clock::now() + milliseconds(5000);
  while (steady_clock::now() < read_deadline) {
    reply = read_payload(rack, decoder, milliseconds(1000));
    if (!reply.has_value()) {
      continue;
    }
    final_policy = core::parse_rack_policy_message(*reply);
    if (final_policy.policies.size() == 1) {
      break;
    }
  }
  ASSERT_EQ(final_policy.policies.size(), 1u);
  EXPECT_EQ(final_policy.policies[0].job_name, "a-alive");
  double total = 0.0;
  for (const double cap : final_policy.policies[0].host_caps_watts) {
    total += cap;
  }
  EXPECT_DOUBLE_EQ(final_policy.rack_budget_watts, total);
  EXPECT_LE(total, budget + 1e-6);

  rack.close();
  root.stop();
  serving.join();
  std::remove(socket_path.c_str());
}

}  // namespace
}  // namespace ps::net
