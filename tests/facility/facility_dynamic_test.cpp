// Dynamic budgets at facility scale: a per-step budget signal drives the
// governor, revisions reallocate the running jobs, and the excursion
// telemetry accounts for every step the committed caps out-lived a
// shrinking budget. Fixed-budget runs must be bit-for-bit unaffected.
#include "facility/facility_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/invariants.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

JobTraceOptions small_trace_options() {
  JobTraceOptions options;
  options.horizon_hours = 24.0;
  options.arrivals_per_hour = 1.0;
  options.min_nodes = 2;
  options.max_nodes = 6;
  options.min_duration_hours = 0.5;
  options.max_duration_hours = 4.0;
  return options;
}

FacilityOptions dynamic_facility_options(double budget) {
  FacilityOptions options;
  options.step_hours = 0.25;
  options.horizon_hours = 48.0;
  options.system_budget_watts = budget;
  options.policy = core::PolicyKind::kStaticCaps;
  options.characterization_iterations = 2;
  return options;
}

/// The facility path runs under fatal invariants, like CI does.
class FacilityDynamicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_mode_ = core::invariants::mode();
    core::invariants::set_mode(core::invariants::Mode::kFatal);
    core::invariants::reset();
  }
  void TearDown() override {
    core::invariants::reset();
    core::invariants::set_mode(previous_mode_);
  }

  core::invariants::Mode previous_mode_ = core::invariants::Mode::kCount;
};

TEST_F(FacilityDynamicTest, FixedBudgetRunReportsAConstantBudget) {
  sim::Cluster cluster(12);
  util::Rng rng(5);
  const auto trace = generate_job_trace(rng, small_trace_options());
  const double budget = 12.0 * 200.0;
  FacilityManager manager(cluster, dynamic_facility_options(budget));
  const FacilityResult result = manager.run(trace);
  ASSERT_EQ(result.budget_watts.size(), result.power_watts.size());
  for (const double watts : result.budget_watts) {
    EXPECT_DOUBLE_EQ(watts, budget);
  }
  EXPECT_EQ(result.budget_revisions, 0u);
  EXPECT_EQ(result.emergency_clamps, 0u);
  EXPECT_EQ(result.final_budget_epoch, 0u);
  EXPECT_EQ(result.excursions.excursions, 0u);
  EXPECT_EQ(core::invariants::stats().violations, 0u);
}

TEST_F(FacilityDynamicTest, BudgetSignalDrivesGovernorRevisions) {
  sim::Cluster cluster(12);
  util::Rng rng(5);
  const auto trace = generate_job_trace(rng, small_trace_options());
  const double budget = 12.0 * 200.0;
  const double floor = 12.0 * cluster.node(0).min_cap();
  const double revised = std::max(0.8 * budget, floor + 50.0);

  FacilityOptions options = dynamic_facility_options(budget);
  // A step signal: hold the configured budget for 60 steps, then a
  // sustained drop; steps past the end hold the last value.
  options.budget_signal_watts.assign(60, budget);
  options.budget_signal_watts.push_back(revised);
  options.governor.floor_watts = floor;
  FacilityManager manager(cluster, options);
  const FacilityResult result = manager.run(trace);

  ASSERT_EQ(result.budget_watts.size(), result.power_watts.size());
  EXPECT_GE(result.budget_revisions, 1u);
  EXPECT_GE(result.final_budget_epoch, 1u);
  // Before the drop the budget holds; after it, every step reports the
  // revised value (the signal holds its last sample).
  EXPECT_DOUBLE_EQ(result.budget_watts.front(), budget);
  EXPECT_DOUBLE_EQ(result.budget_watts.back(), revised);
  bool saw_revised = false;
  for (const double watts : result.budget_watts) {
    EXPECT_TRUE(watts == budget || watts == revised);
    saw_revised = saw_revised || watts == revised;
  }
  EXPECT_TRUE(saw_revised);
  EXPECT_EQ(core::invariants::stats().violations, 0u);
}

TEST_F(FacilityDynamicTest, RejectsANonPositiveSignalSample) {
  sim::Cluster cluster(4);
  FacilityOptions options = dynamic_facility_options(4.0 * 200.0);
  options.budget_signal_watts = {800.0, 0.0};
  EXPECT_THROW(FacilityManager(cluster, options), InvalidArgument);
}

TEST_F(FacilityDynamicTest, HysteresisKeepsANoisySignalQuiet) {
  sim::Cluster cluster(12);
  util::Rng rng(7);
  const auto trace = generate_job_trace(rng, small_trace_options());
  const double budget = 12.0 * 200.0;
  FacilityOptions options = dynamic_facility_options(budget);
  // Metering jitter far below the hysteresis band: no revisions at all.
  util::Rng noise(11);
  for (std::size_t s = 0; s < 64; ++s) {
    options.budget_signal_watts.push_back(
        budget + noise.uniform(-3.0, 3.0));
  }
  options.governor.floor_watts = 12.0 * cluster.node(0).min_cap();
  FacilityManager manager(cluster, options);
  const FacilityResult result = manager.run(trace);
  EXPECT_EQ(result.budget_revisions, 0u);
  for (const double watts : result.budget_watts) {
    EXPECT_DOUBLE_EQ(watts, budget);
  }
  EXPECT_EQ(core::invariants::stats().violations, 0u);
}

}  // namespace
}  // namespace ps::facility
