#include <gtest/gtest.h>

#include "facility/facility_manager.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

std::vector<FacilityJobSpec> traffic(std::uint64_t seed = 0xdead) {
  util::Rng rng(seed);
  JobTraceOptions options;
  options.horizon_hours = 48.0;
  options.arrivals_per_hour = 1.0;
  options.min_nodes = 2;
  options.max_nodes = 6;
  options.min_duration_hours = 1.0;
  options.max_duration_hours = 6.0;
  return generate_job_trace(rng, options);
}

FacilityOptions with_failures(double mtbf_hours) {
  FacilityOptions options;
  options.step_hours = 0.25;
  options.horizon_hours = 96.0;
  options.characterization_iterations = 2;
  options.node_mtbf_hours = mtbf_hours;
  options.repair_hours = 2.0;
  return options;
}

TEST(FacilityFailureTest, ZeroMtbfMeansNoFailures) {
  sim::Cluster cluster(12);
  FacilityManager manager(cluster, with_failures(0.0));
  const FacilityResult result = manager.run(traffic());
  EXPECT_EQ(result.node_failures, 0u);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.restarts, 0u);
  }
}

TEST(FacilityFailureTest, FailuresOccurAndJobsStillComplete) {
  sim::Cluster cluster(12);
  // Node MTBF of 100 h across ~12 nodes over 96 h: several failures are
  // near-certain.
  FacilityManager manager(cluster, with_failures(100.0));
  const FacilityResult result = manager.run(traffic());
  EXPECT_GT(result.node_failures, 0u);
  std::size_t restarted = 0;
  for (const auto& job : result.jobs) {
    restarted += job.restarts;
  }
  EXPECT_EQ(restarted, result.node_failures);
  // The facility keeps operating: most jobs still finish.
  EXPECT_GT(result.completed_jobs, result.jobs.size() / 2);
  // Restarted-and-finished jobs have causal records.
  for (const auto& job : result.jobs) {
    if (job.restarts > 0 && job.finished()) {
      EXPECT_GT(job.finish_hours, job.start_hours);
    }
  }
}

TEST(FacilityFailureTest, FailuresReduceThroughput) {
  const auto trace = traffic(0xfee1);
  sim::Cluster healthy_cluster(12);
  FacilityManager healthy(healthy_cluster, with_failures(0.0));
  const FacilityResult no_failures = healthy.run(trace);

  sim::Cluster flaky_cluster(12);
  FacilityManager flaky(flaky_cluster, with_failures(60.0));
  const FacilityResult with_flakes = flaky.run(trace);

  EXPECT_GT(with_flakes.node_failures, 1u);
  EXPECT_LE(with_flakes.completed_jobs, no_failures.completed_jobs);
}

TEST(FacilityFailureTest, DeterministicGivenSeed) {
  const auto trace = traffic();
  sim::Cluster cluster_a(12);
  sim::Cluster cluster_b(12);
  FacilityManager a(cluster_a, with_failures(300.0));
  FacilityManager b(cluster_b, with_failures(300.0));
  EXPECT_EQ(a.run(trace).node_failures, b.run(trace).node_failures);
}

TEST(FacilityFailureTest, OptionsValidated) {
  sim::Cluster cluster(4);
  FacilityOptions bad = with_failures(0.0);
  bad.node_mtbf_hours = -1.0;
  EXPECT_THROW(FacilityManager(cluster, bad), ps::InvalidArgument);
  bad = with_failures(0.0);
  bad.repair_hours = 0.0;
  EXPECT_THROW(FacilityManager(cluster, bad), ps::InvalidArgument);
}

TEST(FacilityFailureTest, CheckpointingLimitsTheDamage) {
  const auto trace = traffic(0xc4ec);
  sim::Cluster scratch_cluster(12);
  FacilityOptions no_checkpoint = with_failures(80.0);
  FacilityManager scratch(scratch_cluster, no_checkpoint);
  const FacilityResult from_scratch = scratch.run(trace);

  sim::Cluster ckpt_cluster(12);
  FacilityOptions with_checkpoint = with_failures(80.0);
  with_checkpoint.checkpoint_interval_hours = 0.5;
  FacilityManager checkpointed(ckpt_cluster, with_checkpoint);
  const FacilityResult resumed = checkpointed.run(trace);

  // Same failure process (same seed/trace); restarting from checkpoints
  // can only help throughput.
  EXPECT_GT(resumed.node_failures, 0u);
  EXPECT_GE(resumed.completed_jobs, from_scratch.completed_jobs);
}

TEST(FacilityFailureTest, CheckpointIntervalValidated) {
  sim::Cluster cluster(4);
  FacilityOptions bad = with_failures(0.0);
  bad.checkpoint_interval_hours = -1.0;
  EXPECT_THROW(FacilityManager(cluster, bad), ps::InvalidArgument);
}

TEST(SchedulerQuarantineTest, QuarantineRemovesAndRestoreReturns) {
  rm::Scheduler scheduler(4);
  EXPECT_EQ(scheduler.free_node_count(), 4u);
  scheduler.quarantine(2);
  EXPECT_EQ(scheduler.free_node_count(), 3u);
  EXPECT_EQ(scheduler.quarantined_count(), 1u);
  // A 4-node job no longer fits.
  rm::JobRequest request;
  request.name = "wide";
  request.node_count = 4;
  scheduler.submit(request);
  EXPECT_TRUE(scheduler.start_pending().empty());
  scheduler.restore(2);
  EXPECT_EQ(scheduler.start_pending().size(), 1u);
  // Errors: busy/unknown nodes cannot be quarantined or restored.
  EXPECT_THROW(scheduler.quarantine(0), ps::InvalidArgument);
  EXPECT_THROW(scheduler.restore(3), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::facility
