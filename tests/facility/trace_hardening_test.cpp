// Degenerate-parameter semantics of generate_job_trace, table-driven:
// "no demand" is a valid empty trace, malformed knobs throw, and the
// multi-tenant / time-varying extensions leave the legacy rng stream
// untouched when disabled.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "facility/facility_manager.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TraceHardeningTest, MalformedOptionsThrow) {
  struct Case {
    std::string name;
    std::function<void(JobTraceOptions&)> mutate;
  };
  const std::vector<Case> cases = {
      {"negative arrival rate",
       [](JobTraceOptions& o) { o.arrivals_per_hour = -1.0; }},
      {"NaN arrival rate",
       [](JobTraceOptions& o) { o.arrivals_per_hour = kNan; }},
      {"infinite arrival rate",
       [](JobTraceOptions& o) { o.arrivals_per_hour = kInf; }},
      {"negative horizon",
       [](JobTraceOptions& o) { o.horizon_hours = -24.0; }},
      {"NaN horizon", [](JobTraceOptions& o) { o.horizon_hours = kNan; }},
      {"zero min nodes", [](JobTraceOptions& o) { o.min_nodes = 0; }},
      {"inverted node range",
       [](JobTraceOptions& o) {
         o.min_nodes = 10;
         o.max_nodes = 5;
       }},
      {"zero-duration jobs",
       [](JobTraceOptions& o) { o.min_duration_hours = 0.0; }},
      {"negative duration",
       [](JobTraceOptions& o) { o.min_duration_hours = -1.0; }},
      {"inverted duration range",
       [](JobTraceOptions& o) {
         o.min_duration_hours = 4.0;
         o.max_duration_hours = 2.0;
       }},
      {"NaN duration",
       [](JobTraceOptions& o) { o.max_duration_hours = kNan; }},
      {"zero iteration time",
       [](JobTraceOptions& o) { o.nominal_iteration_seconds = 0.0; }},
      {"negative class fraction",
       [](JobTraceOptions& o) { o.best_effort_fraction = -0.1; }},
      {"class fractions above one",
       [](JobTraceOptions& o) {
         o.latency_critical_fraction = 0.6;
         o.best_effort_fraction = 0.6;
       }},
      {"negative diurnal amplitude",
       [](JobTraceOptions& o) { o.diurnal_amplitude = -0.2; }},
      {"diurnal amplitude above one",
       [](JobTraceOptions& o) { o.diurnal_amplitude = 1.5; }},
      {"negative burst multiplier",
       [](JobTraceOptions& o) { o.burst_rate_multiplier = -2.0; }},
      {"zero burst duration",
       [](JobTraceOptions& o) {
         o.burst_count = 1;
         o.burst_duration_hours = 0.0;
       }},
  };
  for (const Case& test_case : cases) {
    util::Rng rng(1);
    JobTraceOptions options;
    test_case.mutate(options);
    EXPECT_THROW(static_cast<void>(generate_job_trace(rng, options)),
                 ps::InvalidArgument)
        << test_case.name;
  }
}

TEST(TraceHardeningTest, NoDemandIsAValidEmptyTrace) {
  util::Rng rng(1);
  JobTraceOptions zero_rate;
  zero_rate.arrivals_per_hour = 0.0;
  EXPECT_TRUE(generate_job_trace(rng, zero_rate).empty());
  JobTraceOptions zero_horizon;
  zero_horizon.horizon_hours = 0.0;
  EXPECT_TRUE(generate_job_trace(rng, zero_horizon).empty());
}

TEST(TraceHardeningTest, DisabledExtensionsKeepTheLegacyStream) {
  // The class-mix and flash-crowd knobs must not consume rng draws when
  // off: a pre-SLA caller's trace stays identical job for job.
  util::Rng legacy_rng(42);
  const std::vector<FacilityJobSpec> legacy =
      generate_job_trace(legacy_rng, JobTraceOptions{});

  util::Rng knob_rng(42);
  JobTraceOptions knobs;
  knobs.burst_count = 5;               // No multiplier: bursts are inert.
  knobs.burst_rate_multiplier = 0.0;
  const std::vector<FacilityJobSpec> with_knobs =
      generate_job_trace(knob_rng, knobs);

  ASSERT_EQ(with_knobs.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_knobs[i].arrival_hours, legacy[i].arrival_hours);
    EXPECT_EQ(with_knobs[i].request.node_count,
              legacy[i].request.node_count);
    EXPECT_EQ(with_knobs[i].iterations, legacy[i].iterations);
    EXPECT_EQ(with_knobs[i].request.sla_class, sim::SlaClass::kStandard);
  }
}

TEST(TraceHardeningTest, ClassFractionsShapeTheMix) {
  util::Rng rng(7);
  JobTraceOptions options;
  options.horizon_hours = 24.0;
  options.arrivals_per_hour = 60.0;
  options.latency_critical_fraction = 0.3;
  options.best_effort_fraction = 0.5;
  const std::vector<FacilityJobSpec> trace =
      generate_job_trace(rng, options);
  ASSERT_GT(trace.size(), 800u);
  std::size_t latency_critical = 0;
  std::size_t best_effort = 0;
  for (const FacilityJobSpec& spec : trace) {
    latency_critical +=
        spec.request.sla_class == sim::SlaClass::kLatencyCritical;
    best_effort += spec.request.sla_class == sim::SlaClass::kBestEffort;
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(latency_critical) / n, 0.3, 0.06);
  EXPECT_NEAR(static_cast<double>(best_effort) / n, 0.5, 0.06);
}

TEST(TraceHardeningTest, DiurnalAmplitudeConcentratesArrivalsAtNoon) {
  util::Rng rng(3);
  JobTraceOptions options;
  options.horizon_hours = 24.0 * 10.0;
  options.arrivals_per_hour = 20.0;
  options.diurnal_amplitude = 1.0;  // Midnight rate 0, noon rate 2x.
  const std::vector<FacilityJobSpec> trace =
      generate_job_trace(rng, options);
  ASSERT_GT(trace.size(), 1000u);
  std::size_t day = 0;
  std::size_t night = 0;
  for (const FacilityJobSpec& spec : trace) {
    const double hour_of_day = std::fmod(spec.arrival_hours, 24.0);
    (hour_of_day >= 6.0 && hour_of_day < 18.0 ? day : night) += 1;
  }
  // With full modulation the noon-centered half-day carries the large
  // majority of arrivals (analytically ~82%).
  EXPECT_GT(static_cast<double>(day),
            2.5 * static_cast<double>(night));
}

TEST(TraceHardeningTest, FlashCrowdsAddArrivalsAndStayDeterministic) {
  JobTraceOptions options;
  options.horizon_hours = 100.0;
  options.arrivals_per_hour = 5.0;
  options.burst_count = 3;
  options.burst_rate_multiplier = 10.0;
  options.burst_duration_hours = 4.0;
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const std::vector<FacilityJobSpec> first =
      generate_job_trace(rng_a, options);
  const std::vector<FacilityJobSpec> second =
      generate_job_trace(rng_b, options);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].arrival_hours, second[i].arrival_hours);
  }
  // Arrivals are time-ordered, inside the horizon, and each carries the
  // SLA bookkeeping the facility run needs.
  double last = 0.0;
  for (const FacilityJobSpec& spec : first) {
    EXPECT_GE(spec.arrival_hours, last);
    EXPECT_LT(spec.arrival_hours, options.horizon_hours);
    EXPECT_GT(spec.ideal_hours, 0.0);
    EXPECT_NEAR(spec.estimated_hours, spec.ideal_hours * 1.2, 1e-12);
    last = spec.arrival_hours;
  }
  // Three 4-hour pulses at 10x the base rate roughly double the expected
  // 500 arrivals; well over the homogeneous count even at 3 sigma.
  util::Rng rng_c(9);
  JobTraceOptions homogeneous = options;
  homogeneous.burst_count = 0;
  homogeneous.burst_rate_multiplier = 0.0;
  const std::vector<FacilityJobSpec> base =
      generate_job_trace(rng_c, homogeneous);
  EXPECT_GT(first.size(), base.size() + 50);
}

}  // namespace
}  // namespace ps::facility
