// Multi-tenant facility runs end to end: admission rejections recorded
// per job and in the obs counters, per-class SLA accounting, shed-watts
// bookkeeping under a brownout, and the measured-draw basis admitting
// concurrency the worst-case-TDP basis refuses.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "facility/facility_io.hpp"
#include "facility/facility_manager.hpp"
#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

using sim::SlaClass;

FacilityJobSpec spec(const std::string& name, double arrival,
                     std::size_t nodes, std::size_t iterations,
                     SlaClass sla_class = SlaClass::kStandard) {
  FacilityJobSpec job;
  job.arrival_hours = arrival;
  job.request.name = name;
  job.request.node_count = nodes;
  job.request.sla_class = sla_class;
  job.iterations = iterations;
  // 0.05 s nominal iterations: hours = iterations / 72000.
  job.ideal_hours = static_cast<double>(iterations) / 72000.0;
  job.estimated_hours = job.ideal_hours * 1.2;
  return job;
}

TEST(MultiTenantFacilityTest, RejectionsAreCountedPerJobAndInObs) {
  sim::Cluster cluster(4);
  obs::MetricsRegistry metrics;
  FacilityOptions options;
  options.step_hours = 0.1;
  options.horizon_hours = 6.0;
  options.characterization_iterations = 2;
  options.admission.best_effort_queue_limit = 1;
  options.obs.metrics = &metrics;
  FacilityManager manager(cluster, options);

  // One job owns the whole cluster past the horizon; three best_effort
  // jobs arrive behind it. The first queues, the other two trip the
  // queue limit and are refused — and a refused job is a violated SLA.
  const std::vector<FacilityJobSpec> trace = {
      spec("hog", 0.0, 4, 50'000'000),
      spec("be-1", 0.2, 1, 72'000, SlaClass::kBestEffort),
      spec("be-2", 0.3, 1, 72'000, SlaClass::kBestEffort),
      spec("be-3", 0.4, 1, 72'000, SlaClass::kBestEffort),
  };
  const FacilityResult result = manager.run(trace);

  EXPECT_EQ(result.admission_rejections, 2u);
  EXPECT_FALSE(result.jobs[1].rejected);
  EXPECT_TRUE(result.jobs[2].rejected);
  EXPECT_TRUE(result.jobs[3].rejected);
  EXPECT_EQ(result.jobs_by_class[sim::sla_rank(SlaClass::kStandard)], 1u);
  EXPECT_EQ(result.jobs_by_class[sim::sla_rank(SlaClass::kBestEffort)], 3u);
  // The rejected jobs violate by definition; the queued one is still
  // inside its generous best_effort slowdown bound at the horizon.
  EXPECT_EQ(result.sla_violations_by_class[sim::sla_rank(
                SlaClass::kBestEffort)],
            2u);
  EXPECT_EQ(result.sla_violations(),
            result.sla_violations_by_class[0] +
                result.sla_violations_by_class[1] +
                result.sla_violations_by_class[2]);

  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  std::uint64_t rejections = 0;
  std::uint64_t best_effort_violations = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "facility.admission_rejections") {
      rejections = value;
    }
    if (name == "facility.sla_violations.best_effort") {
      best_effort_violations = value;
    }
  }
  EXPECT_EQ(rejections, 2u);
  EXPECT_EQ(best_effort_violations,
            result.sla_violations_by_class[sim::sla_rank(
                SlaClass::kBestEffort)]);

  // Multi-tenant state forces the extended CSV form.
  std::ostringstream out;
  write_jobs_csv(out, result);
  EXPECT_NE(out.str().find(",sla_class,sla_violated"), std::string::npos);
}

TEST(MultiTenantFacilityTest, SingleClassRunLeavesNoMultiTenantResidue) {
  sim::Cluster cluster(4);
  obs::MetricsRegistry metrics;
  FacilityOptions options;
  options.step_hours = 0.1;
  options.horizon_hours = 4.0;
  options.characterization_iterations = 2;
  options.obs.metrics = &metrics;
  FacilityManager manager(cluster, options);
  const std::vector<FacilityJobSpec> trace = {
      spec("a", 0.0, 2, 72'000), spec("b", 0.5, 2, 72'000)};
  const FacilityResult result = manager.run(trace);

  EXPECT_EQ(result.admission_rejections, 0u);
  EXPECT_EQ(result.sla_violations(), 0u);
  EXPECT_DOUBLE_EQ(result.shed_watts_total, 0.0);
  // No rejection, no violation, no shed: the registry never even saw
  // the multi-tenant metric names.
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  // And the jobs CSV keeps the legacy 7-column bytes.
  std::ostringstream out;
  write_jobs_csv(out, result);
  EXPECT_EQ(out.str().find("sla_class"), std::string::npos);
}

TEST(MultiTenantFacilityTest, BrownoutShedsAndFillsTheHistogram) {
  sim::Cluster cluster(8);
  obs::MetricsRegistry metrics;
  const double tdp = cluster.node(0).tdp();
  FacilityOptions options;
  options.step_hours = 0.1;
  options.horizon_hours = 8.0;
  options.characterization_iterations = 2;
  options.system_budget_watts = 8.0 * tdp;
  // Brownout to 70% of nominal after two hours — scarce enough to force
  // class-ordered shedding, but above the running floors so watts exist
  // to move between classes.
  options.budget_signal_watts.assign(80, 8.0 * tdp);
  for (std::size_t step = 20; step < 80; ++step) {
    options.budget_signal_watts[step] = 0.7 * 8.0 * tdp;
  }
  options.obs.metrics = &metrics;
  FacilityManager manager(cluster, options);
  const std::vector<FacilityJobSpec> trace = {
      spec("lc", 0.0, 3, 2'000'000, SlaClass::kLatencyCritical),
      spec("std", 0.0, 3, 2'000'000),
      spec("be", 0.0, 2, 2'000'000, SlaClass::kBestEffort),
  };
  const FacilityResult result = manager.run(trace);

  EXPECT_GT(result.budget_revisions, 0u);
  EXPECT_GT(result.shed_watts_total, 0.0);
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  bool saw_shed_histogram = false;
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (name == "facility.shed_watts") {
      saw_shed_histogram = true;
      EXPECT_GT(histogram.total(), 0u);
    }
  }
  EXPECT_TRUE(saw_shed_histogram);
}

TEST(MultiTenantFacilityTest, MeasuredDrawAdmitsWhatWorstCaseCannot) {
  // A 3-TDP power budget: the worst-case basis reserves full TDP per
  // node and can never run more than 3 nodes at once. The measured-draw
  // gate at a 1.4 oversubscription ratio admits a 4th node up front
  // (4 x TDP < 1.4 x budget), the power policy then divides the *real*
  // budget across the running nodes — capping each below TDP — and the
  // EWMA learns the capped draw, packing still more nodes. Actual
  // facility draw stays pinned by the policy; only reservations stretch.
  const auto run_with = [](rm::AdmissionBasis basis, double ratio) {
    sim::Cluster cluster(8);
    FacilityOptions options;
    options.step_hours = 0.1;
    options.horizon_hours = 16.0;
    options.characterization_iterations = 2;
    options.system_budget_watts = 3.0 * cluster.node(0).tdp();
    options.admission.basis = basis;
    options.admission.oversubscription_ratio = ratio;
    FacilityManager manager(cluster, options);
    // 24 one-node jobs, 2 nominal hours each, arriving every 6 minutes:
    // enough overlapping demand to keep the admission gate the binding
    // constraint for the whole first half of the run.
    std::vector<FacilityJobSpec> trace;
    for (std::size_t j = 0; j < 24; ++j) {
      trace.push_back(spec("j" + std::to_string(j), 0.1 * j, 1, 144'000));
    }
    return manager.run(trace);
  };
  const FacilityResult worst =
      run_with(rm::AdmissionBasis::kWorstCaseTdp, 1.0);
  const FacilityResult measured =
      run_with(rm::AdmissionBasis::kMeasuredDraw, 1.4);

  // The TDP gate is a hard 3-node ceiling.
  for (const double utilization : worst.utilization) {
    EXPECT_LE(utilization, 3.0 / 8.0 + 1e-9);
  }
  double measured_peak = 0.0;
  for (const double utilization : measured.utilization) {
    measured_peak = std::max(measured_peak, utilization);
  }
  EXPECT_GT(measured_peak, 3.0 / 8.0);
  EXPECT_GE(measured.completed_jobs, worst.completed_jobs);
  EXPECT_LE(measured.mean_wait_hours(), worst.mean_wait_hours());
  // Oversubscription stretches reservations, not watts: the facility
  // never draws more than the (3-TDP) budget plus the idle baseline of
  // the unallocated nodes.
  const double idle_baseline = 8.0 * 119.0;
  for (const double watts : measured.power_watts) {
    EXPECT_LE(watts, 3.0 * 230.0 + idle_baseline + 16.0);
  }
}

}  // namespace
}  // namespace ps::facility
