#include "facility/facility_manager.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

JobTraceOptions small_trace_options() {
  JobTraceOptions options;
  options.horizon_hours = 24.0;
  options.arrivals_per_hour = 1.0;
  options.min_nodes = 2;
  options.max_nodes = 6;
  options.min_duration_hours = 0.5;
  options.max_duration_hours = 4.0;
  return options;
}

FacilityOptions small_facility_options() {
  FacilityOptions options;
  options.step_hours = 0.25;
  options.horizon_hours = 48.0;
  options.policy = core::PolicyKind::kStaticCaps;
  options.characterization_iterations = 2;
  return options;
}

TEST(JobTraceTest, ArrivalsSortedWithinHorizonAndRanges) {
  util::Rng rng(1);
  const JobTraceOptions options = small_trace_options();
  const std::vector<FacilityJobSpec> trace =
      generate_job_trace(rng, options);
  ASSERT_FALSE(trace.empty());
  double previous = 0.0;
  for (const auto& spec : trace) {
    EXPECT_GE(spec.arrival_hours, previous);
    EXPECT_LT(spec.arrival_hours, options.horizon_hours);
    EXPECT_GE(spec.request.node_count, options.min_nodes);
    EXPECT_LE(spec.request.node_count, options.max_nodes);
    // Durations 0.5-4 h at 50 ms/iteration => 36k-288k iterations.
    EXPECT_GE(spec.iterations, 30000u);
    EXPECT_LE(spec.iterations, 300000u);
    EXPECT_NO_THROW(spec.request.validate());
    previous = spec.arrival_hours;
  }
}

TEST(JobTraceTest, ArrivalRateApproximatelyPoisson) {
  util::Rng rng(2);
  JobTraceOptions options = small_trace_options();
  options.horizon_hours = 500.0;
  options.arrivals_per_hour = 2.0;
  const auto trace = generate_job_trace(rng, options);
  EXPECT_NEAR(static_cast<double>(trace.size()), 1000.0, 120.0);
}

TEST(JobTraceTest, DeterministicPerSeed) {
  util::Rng rng1(3);
  util::Rng rng2(3);
  const auto a = generate_job_trace(rng1, small_trace_options());
  const auto b = generate_job_trace(rng2, small_trace_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_hours, b[i].arrival_hours);
    EXPECT_EQ(a[i].request.workload, b[i].request.workload);
  }
}

TEST(FacilityManagerTest, RunsTraceToCompletion) {
  sim::Cluster cluster(12);
  util::Rng rng(5);
  const auto trace = generate_job_trace(rng, small_trace_options());
  FacilityManager manager(cluster, small_facility_options());
  const FacilityResult result = manager.run(trace);
  EXPECT_EQ(result.jobs.size(), trace.size());
  EXPECT_GT(result.completed_jobs, 0u);
  EXPECT_EQ(result.power_watts.size(), result.utilization.size());
  EXPECT_GT(result.total_energy_joules, 0.0);
  // Short jobs on a 48 h horizon: the vast majority complete.
  EXPECT_GE(result.completed_jobs, trace.size() / 2);
}

TEST(FacilityManagerTest, PowerTraceBracketedByIdleAndBudget) {
  sim::Cluster cluster(12);
  util::Rng rng(7);
  const auto trace = generate_job_trace(rng, small_trace_options());
  const FacilityOptions options = small_facility_options();
  FacilityManager manager(cluster, options);
  const FacilityResult result = manager.run(trace);
  const double idle_floor =
      static_cast<double>(cluster.size()) * options.idle_node_watts;
  const double ceiling =
      static_cast<double>(cluster.size()) * cluster.node(0).tdp();
  for (double sample : result.power_watts) {
    EXPECT_GE(sample, idle_floor * 0.99);
    EXPECT_LE(sample, ceiling * 1.01);
  }
}

TEST(FacilityManagerTest, JobRecordsAreCausal) {
  sim::Cluster cluster(12);
  util::Rng rng(9);
  const auto trace = generate_job_trace(rng, small_trace_options());
  FacilityManager manager(cluster, small_facility_options());
  const FacilityResult result = manager.run(trace);
  for (const auto& job : result.jobs) {
    if (job.started()) {
      EXPECT_GE(job.start_hours, job.arrival_hours - 0.26);
      EXPECT_GE(job.wait_hours(), -0.26);
    }
    if (job.finished()) {
      EXPECT_TRUE(job.started());
      EXPECT_GT(job.finish_hours, job.start_hours);
      EXPECT_GT(job.energy_joules, 0.0);
    }
  }
  EXPECT_GE(result.mean_wait_hours(), 0.0);
}

TEST(FacilityManagerTest, UtilizationReflectsLoad) {
  sim::Cluster cluster(12);
  util::Rng rng(11);
  JobTraceOptions heavy = small_trace_options();
  heavy.arrivals_per_hour = 4.0;
  const auto trace = generate_job_trace(rng, heavy);
  FacilityManager manager(cluster, small_facility_options());
  const FacilityResult result = manager.run(trace);
  EXPECT_GT(result.mean_utilization(), 0.3);
  EXPECT_LE(result.mean_utilization(), 1.0);
}

TEST(FacilityManagerTest, TightBudgetLowersPowerCeiling) {
  util::Rng rng(13);
  const auto trace = generate_job_trace(rng, small_trace_options());

  sim::Cluster generous_cluster(12);
  FacilityOptions generous = small_facility_options();
  FacilityManager generous_manager(generous_cluster, generous);
  const FacilityResult generous_result = generous_manager.run(trace);

  sim::Cluster tight_cluster(12);
  FacilityOptions tight = small_facility_options();
  tight.system_budget_watts = 170.0 * 12.0;
  FacilityManager tight_manager(tight_cluster, tight);
  const FacilityResult tight_result = tight_manager.run(trace);

  EXPECT_LT(tight_result.peak_power_watts(),
            generous_result.peak_power_watts());
}

TEST(FacilityManagerTest, UnsortedTraceRejected) {
  sim::Cluster cluster(4);
  FacilityManager manager(cluster, small_facility_options());
  std::vector<FacilityJobSpec> trace(2);
  trace[0].arrival_hours = 5.0;
  trace[0].request = {"a", {}, 2};
  trace[1].arrival_hours = 1.0;
  trace[1].request = {"b", {}, 2};
  EXPECT_THROW(static_cast<void>(manager.run(trace)), ps::InvalidArgument);
}

TEST(FacilityManagerTest, InvalidOptionsRejected) {
  sim::Cluster cluster(4);
  FacilityOptions bad = small_facility_options();
  bad.step_hours = 0.0;
  EXPECT_THROW(FacilityManager(cluster, bad), ps::InvalidArgument);
  bad = small_facility_options();
  bad.horizon_hours = 0.01;
  EXPECT_THROW(FacilityManager(cluster, bad), ps::InvalidArgument);
  util::Rng rng(1);
  // A zero rate is a valid empty trace (trace_hardening_test.cpp); only
  // a genuinely malformed rate is refused.
  JobTraceOptions bad_trace = small_trace_options();
  bad_trace.arrivals_per_hour = -1.0;
  EXPECT_THROW(static_cast<void>(generate_job_trace(rng, bad_trace)),
               ps::InvalidArgument);
  bad_trace = small_trace_options();
  bad_trace.min_duration_hours = 0.0;
  EXPECT_THROW(static_cast<void>(generate_job_trace(rng, bad_trace)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::facility
