// CSV round-trip of the SLA columns: legacy 7-column files parse
// unchanged and re-emit byte-identical; multi-tenant records ride the
// extended 9-column form and survive a full write -> read -> write loop.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "facility/facility_io.hpp"
#include "util/error.hpp"

namespace ps::facility {
namespace {

FacilityJobRecord record(const std::string& name, double arrival,
                         double start, double finish,
                         sim::SlaClass sla_class = sim::SlaClass::kStandard,
                         bool violated = false) {
  FacilityJobRecord job;
  job.name = name;
  job.arrival_hours = arrival;
  job.start_hours = start;
  job.finish_hours = finish;
  job.energy_joules = 1234.5;
  job.restarts = 1;
  job.sla_class = sla_class;
  job.sla_violated = violated;
  return job;
}

std::string to_csv(const std::vector<FacilityJobRecord>& jobs) {
  std::ostringstream out;
  write_jobs_csv(out, jobs);
  return out.str();
}

TEST(FacilityIoSlaTest, LegacyCsvParsesAndReEmitsByteIdentical) {
  // Bytes a pre-SLA writer produced: must parse into all-standard
  // records and serialize back without a byte of drift.
  const std::string legacy =
      "job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,"
      "energy_joules\n"
      "trace-job-0,0.250,0.500,2.000,0.250,0,5000.0\n"
      "trace-job-1,1.125,,,,1,0.0\n";
  std::istringstream in(legacy);
  const std::vector<FacilityJobRecord> jobs = read_jobs_csv(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].sla_class, sim::SlaClass::kStandard);
  EXPECT_FALSE(jobs[0].sla_violated);
  EXPECT_FALSE(jobs[1].started());
  EXPECT_EQ(to_csv(jobs), legacy);
}

TEST(FacilityIoSlaTest, SingleClassRecordsStayOnTheLegacyForm) {
  const std::string csv = to_csv({record("a", 0.0, 1.0, 2.0)});
  EXPECT_EQ(csv.find("sla_class"), std::string::npos);
}

TEST(FacilityIoSlaTest, MultiTenantRecordsRoundTripTheExtendedForm) {
  std::vector<FacilityJobRecord> jobs = {
      record("lc", 0.0, 0.5, 3.0, sim::SlaClass::kLatencyCritical, true),
      record("std", 0.25, 1.0, 4.0),
      record("be", 0.5, -1.0, -1.0, sim::SlaClass::kBestEffort, true),
  };
  jobs[2].rejected = true;
  const std::string first = to_csv(jobs);
  EXPECT_NE(first.find(",sla_class,sla_violated"), std::string::npos);
  EXPECT_NE(first.find("latency_critical,1"), std::string::npos);

  std::istringstream in(first);
  const std::vector<FacilityJobRecord> parsed = read_jobs_csv(in);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].sla_class, sim::SlaClass::kLatencyCritical);
  EXPECT_TRUE(parsed[0].sla_violated);
  EXPECT_EQ(parsed[1].sla_class, sim::SlaClass::kStandard);
  EXPECT_FALSE(parsed[1].sla_violated);
  EXPECT_EQ(parsed[2].sla_class, sim::SlaClass::kBestEffort);
  EXPECT_FALSE(parsed[2].started());
  // Second trip is byte-identical to the first.
  EXPECT_EQ(to_csv(parsed), first);
}

TEST(FacilityIoSlaTest, AViolationAloneForcesTheExtendedForm) {
  // A standard-class job that violated its SLA still needs the columns:
  // dropping the flag silently would lie about the run.
  const std::string csv = to_csv(
      {record("std", 0.0, 1.0, 20.0, sim::SlaClass::kStandard, true)});
  EXPECT_NE(csv.find(",standard,1\n"), std::string::npos);
}

TEST(FacilityIoSlaTest, MalformedRowsThrow) {
  const std::string header_legacy =
      "job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,"
      "energy_joules\n";
  const std::string header_sla =
      "job,arrival_hours,start_hours,finish_hours,wait_hours,restarts,"
      "energy_joules,sla_class,sla_violated\n";
  const std::vector<std::string> bad = {
      "nonsense header\nx,0,0,0,0,0,0\n",
      // Wrong arity for the declared header.
      header_legacy + "a,0.0,0.5,1.0,0.5,0,10.0,standard,0\n",
      header_sla + "a,0.0,0.5,1.0,0.5,0,10.0\n",
      // wait_hours present without start_hours (and vice versa).
      header_legacy + "a,0.0,,1.0,0.5,0,10.0\n",
      header_legacy + "a,0.0,0.5,1.0,,0,10.0\n",
      // Unknown class name / non-boolean violation flag.
      header_sla + "a,0.0,0.5,1.0,0.5,0,10.0,gold,0\n",
      header_sla + "a,0.0,0.5,1.0,0.5,0,10.0,standard,2\n",
      // Non-numeric numerics.
      header_legacy + "a,zero,0.5,1.0,0.5,0,10.0\n",
      header_legacy + "a,0.0,0.5,1.0,0.5,-1,10.0\n",
  };
  for (const std::string& csv : bad) {
    std::istringstream in(csv);
    EXPECT_THROW(static_cast<void>(read_jobs_csv(in)), ps::InvalidArgument)
        << csv;
  }
}

}  // namespace
}  // namespace ps::facility
