#include "facility/facility_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

FacilityResult run_small() {
  util::Rng rng(3);
  JobTraceOptions traffic;
  traffic.horizon_hours = 12.0;
  traffic.arrivals_per_hour = 1.0;
  traffic.min_nodes = 2;
  traffic.max_nodes = 4;
  traffic.min_duration_hours = 0.5;
  traffic.max_duration_hours = 2.0;
  static sim::Cluster cluster(8);
  FacilityOptions options;
  options.step_hours = 0.5;
  options.horizon_hours = 24.0;
  options.characterization_iterations = 2;
  FacilityManager manager(cluster, options);
  return manager.run(generate_job_trace(rng, traffic));
}

TEST(FacilityIoTest, PowerCsvHasOneRowPerStep) {
  const FacilityResult result = run_small();
  std::ostringstream out;
  write_power_csv(out, result);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, result.power_watts.size() + 1);
  EXPECT_NE(csv.find("hours,power_watts,utilization"), std::string::npos);
  // Second sample's timestamp reflects the step size.
  EXPECT_NE(csv.find("\n0.500,"), std::string::npos);
}

TEST(FacilityIoTest, JobsCsvCoversEveryJob) {
  const FacilityResult result = run_small();
  std::ostringstream out;
  write_jobs_csv(out, result);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, result.jobs.size() + 1);
  EXPECT_NE(csv.find("job,arrival_hours,start_hours"), std::string::npos);
  EXPECT_NE(csv.find("trace-job-0,"), std::string::npos);
}

TEST(FacilityIoTest, EmptyResultRejected) {
  const FacilityResult empty;
  std::ostringstream out;
  EXPECT_THROW(write_power_csv(out, empty), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::facility
