#include <gtest/gtest.h>

#include "facility/facility_manager.hpp"
#include "util/rng.hpp"

namespace ps::facility {
namespace {

FacilityOptions base_options() {
  FacilityOptions options;
  options.step_hours = 0.25;
  options.horizon_hours = 72.0;
  options.policy = core::PolicyKind::kStaticCaps;
  options.characterization_iterations = 2;
  return options;
}

/// Traffic that frequently blocks the head: a mix of wide and narrow
/// jobs on a small cluster.
std::vector<FacilityJobSpec> blocking_trace() {
  util::Rng rng(0xbf11);
  JobTraceOptions traffic;
  traffic.horizon_hours = 48.0;
  traffic.arrivals_per_hour = 2.0;
  traffic.min_nodes = 2;
  traffic.max_nodes = 10;
  traffic.min_duration_hours = 0.5;
  traffic.max_duration_hours = 6.0;
  return generate_job_trace(rng, traffic);
}

TEST(BackfillFacilityTest, BackfillImprovesUtilizationAndWaits) {
  const auto trace = blocking_trace();

  sim::Cluster fifo_cluster(12);
  FacilityManager fifo_manager(fifo_cluster, base_options());
  const FacilityResult fifo = fifo_manager.run(trace);

  sim::Cluster backfill_cluster(12);
  FacilityOptions with_backfill = base_options();
  with_backfill.backfill = true;
  FacilityManager backfill_manager(backfill_cluster, with_backfill);
  const FacilityResult backfilled = backfill_manager.run(trace);

  EXPECT_GE(backfilled.mean_utilization(),
            fifo.mean_utilization() - 1e-9);
  EXPECT_GE(backfilled.completed_jobs, fifo.completed_jobs);
  // With this blocking-heavy traffic the gain is strictly positive.
  EXPECT_GT(backfilled.mean_utilization(), fifo.mean_utilization() + 0.01);
}

TEST(BackfillFacilityTest, BackfilledJobsStartBeforeTheHead) {
  const auto trace = blocking_trace();
  sim::Cluster cluster(12);
  FacilityOptions options = base_options();
  options.backfill = true;
  FacilityManager manager(cluster, options);
  const FacilityResult result = manager.run(trace);

  // Out-of-arrival-order starts exist (the signature of backfill).
  bool out_of_order = false;
  for (std::size_t i = 0; i + 1 < result.jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < result.jobs.size(); ++j) {
      if (result.jobs[i].started() && result.jobs[j].started() &&
          result.jobs[j].start_hours < result.jobs[i].start_hours - 1e-9) {
        out_of_order = true;
      }
    }
  }
  EXPECT_TRUE(out_of_order);
}

TEST(BackfillFacilityTest, FifoNeverStartsOutOfOrder) {
  const auto trace = blocking_trace();
  sim::Cluster cluster(12);
  FacilityManager manager(cluster, base_options());
  const FacilityResult result = manager.run(trace);
  for (std::size_t i = 0; i + 1 < result.jobs.size(); ++i) {
    if (result.jobs[i].started() && result.jobs[i + 1].started()) {
      EXPECT_LE(result.jobs[i].start_hours,
                result.jobs[i + 1].start_hours + 1e-9);
    }
  }
}

}  // namespace
}  // namespace ps::facility
