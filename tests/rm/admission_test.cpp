// Power-admission gate: worst-case-TDP vs measured-draw reservations,
// oversubscription ratios, best_effort rejections, and the class-major
// drain order. The default (kNodes) options must behave exactly like the
// pre-multi-tenant FIFO scheduler.
#include <gtest/gtest.h>

#include "rm/job.hpp"
#include "rm/scheduler.hpp"
#include "sim/sla.hpp"
#include "util/error.hpp"

namespace ps::rm {
namespace {

using sim::SlaClass;

JobRequest job(const std::string& name, std::size_t nodes,
               SlaClass sla_class = SlaClass::kStandard) {
  JobRequest request;
  request.name = name;
  request.node_count = nodes;
  request.sla_class = sla_class;
  return request;
}

AdmissionOptions power_gate(AdmissionBasis basis, double budget,
                            double ratio = 1.0, double tdp = 250.0) {
  AdmissionOptions admission;
  admission.basis = basis;
  admission.budget_watts = budget;
  admission.oversubscription_ratio = ratio;
  admission.node_tdp_watts = tdp;
  return admission;
}

TEST(AdmissionTest, NodesBasisIgnoresPowerEntirely) {
  Scheduler scheduler(4);  // Default options: legacy node-count gate.
  scheduler.submit(job("a", 4));
  const auto grants = scheduler.start_pending();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(scheduler.reserved_watts(), 0.0);
  EXPECT_EQ(scheduler.admission_rejections(), 0u);
}

TEST(AdmissionTest, PowerBasisRequiresBudgetAndTdp) {
  AdmissionOptions admission;
  admission.basis = AdmissionBasis::kWorstCaseTdp;
  EXPECT_THROW(Scheduler(4, admission), InvalidArgument);
  admission.budget_watts = 1000.0;
  EXPECT_THROW(Scheduler(4, admission), InvalidArgument);
  admission.node_tdp_watts = 250.0;
  admission.oversubscription_ratio = 0.5;
  EXPECT_THROW(Scheduler(4, admission), InvalidArgument);
}

TEST(AdmissionTest, WorstCaseTdpGateHoldsJobsAtTheBudget) {
  // Budget 1000 W at 250 W/node admits exactly four nodes' worth.
  Scheduler scheduler(8, power_gate(AdmissionBasis::kWorstCaseTdp, 1000.0));
  scheduler.submit(job("a", 2));
  scheduler.submit(job("b", 2));
  scheduler.submit(job("c", 1));
  EXPECT_EQ(scheduler.start_pending().size(), 2u);
  EXPECT_DOUBLE_EQ(scheduler.reserved_watts(), 1000.0);
  // Nodes are free (8 - 4 = 4) but the power gate blocks "c".
  EXPECT_EQ(scheduler.queued_count(), 1u);
  EXPECT_EQ(scheduler.free_node_count(), 4u);

  scheduler.complete("a");
  EXPECT_DOUBLE_EQ(scheduler.reserved_watts(), 500.0);
  EXPECT_EQ(scheduler.start_pending().size(), 1u);
  EXPECT_TRUE(scheduler.is_running("c"));
  EXPECT_DOUBLE_EQ(scheduler.reserved_watts(), 750.0);
}

TEST(AdmissionTest, MeasuredDrawFallsBackToTdpUntilTelemetryArrives) {
  Scheduler scheduler(8, power_gate(AdmissionBasis::kMeasuredDraw, 1000.0));
  EXPECT_DOUBLE_EQ(scheduler.estimated_node_watts(), 250.0);
  scheduler.submit(job("a", 5));
  EXPECT_EQ(scheduler.start_pending().size(), 0u);  // 1250 > 1000.
}

TEST(AdmissionTest, MeasuredDrawAdmitsWhatWorstCaseRefuses) {
  // Five 1-node jobs against a 1000 W budget: worst-case TDP (250 W) fits
  // four; the measured 200 W/node draw fits all five.
  Scheduler worst(8, power_gate(AdmissionBasis::kWorstCaseTdp, 1000.0));
  Scheduler measured(8, power_gate(AdmissionBasis::kMeasuredDraw, 1000.0));
  measured.observe_draw(400.0, 2);  // 200 W per busy node.
  EXPECT_DOUBLE_EQ(measured.estimated_node_watts(), 200.0);
  for (const auto* name : {"a", "b", "c", "d", "e"}) {
    worst.submit(job(name, 1));
    measured.submit(job(name, 1));
  }
  EXPECT_EQ(worst.start_pending().size(), 4u);
  EXPECT_EQ(measured.start_pending().size(), 5u);
  EXPECT_DOUBLE_EQ(measured.reserved_watts(), 1000.0);
}

TEST(AdmissionTest, ObservedDrawIsSmoothedByTheEwma) {
  Scheduler scheduler(8, power_gate(AdmissionBasis::kMeasuredDraw, 1000.0));
  scheduler.observe_draw(200.0, 1);  // First sample seeds the estimate.
  scheduler.observe_draw(300.0, 1);  // alpha = 0.3.
  EXPECT_DOUBLE_EQ(scheduler.estimated_node_watts(),
                   0.3 * 300.0 + 0.7 * 200.0);
  scheduler.observe_draw(123.0, 0);  // No busy nodes: ignored.
  EXPECT_DOUBLE_EQ(scheduler.estimated_node_watts(), 230.0);
  EXPECT_THROW(scheduler.observe_draw(-1.0, 1), InvalidArgument);
}

TEST(AdmissionTest, OversubscriptionRatioStretchesTheBudget) {
  // ratio 1.3 admits 1300 W of worst-case reservations on a 1000 W budget.
  Scheduler scheduler(8,
                      power_gate(AdmissionBasis::kWorstCaseTdp, 1000.0, 1.3));
  for (const auto* name : {"a", "b", "c", "d", "e", "f"}) {
    scheduler.submit(job(name, 1));
  }
  EXPECT_EQ(scheduler.start_pending().size(), 5u);  // 1250 <= 1300 < 1500.
  EXPECT_DOUBLE_EQ(scheduler.reserved_watts(), 1250.0);
}

TEST(AdmissionTest, BestEffortQueueLimitRejects) {
  AdmissionOptions admission;  // kNodes: the limit applies on every basis.
  admission.best_effort_queue_limit = 2;
  Scheduler scheduler(2, admission);
  scheduler.submit(job("running", 2));
  ASSERT_EQ(scheduler.start_pending().size(), 1u);
  EXPECT_TRUE(scheduler.try_submit(job("be1", 1, SlaClass::kBestEffort)));
  EXPECT_TRUE(scheduler.try_submit(job("be2", 1, SlaClass::kBestEffort)));
  EXPECT_FALSE(scheduler.try_submit(job("be3", 1, SlaClass::kBestEffort)));
  EXPECT_EQ(scheduler.admission_rejections(), 1u);
  // Higher classes always queue: they paid for the wait.
  EXPECT_TRUE(scheduler.try_submit(job("std", 1)));
  EXPECT_TRUE(
      scheduler.try_submit(job("lc", 1, SlaClass::kLatencyCritical)));
  EXPECT_EQ(scheduler.queued_count(), 4u);
}

TEST(AdmissionTest, BestEffortThatCanNeverFitIsRejectedNotQueued) {
  // 6 nodes at 250 W worst case = 1500 W > 1.0 × 1000 W: this job can
  // never pass the gate, so queueing it would starve it forever.
  Scheduler scheduler(8, power_gate(AdmissionBasis::kWorstCaseTdp, 1000.0));
  EXPECT_FALSE(scheduler.try_submit(job("be", 6, SlaClass::kBestEffort)));
  EXPECT_EQ(scheduler.admission_rejections(), 1u);
  EXPECT_EQ(scheduler.queued_count(), 0u);
  // The same job at a higher class queues (and waits on the gate).
  EXPECT_TRUE(scheduler.try_submit(job("std", 6)));
  EXPECT_EQ(scheduler.queued_count(), 1u);
}

TEST(AdmissionTest, SubmitThrowsWhereTrySubmitReturnsFalse) {
  AdmissionOptions admission;
  admission.best_effort_queue_limit = 1;
  Scheduler scheduler(1, admission);
  scheduler.submit(job("running", 1));
  ASSERT_EQ(scheduler.start_pending().size(), 1u);
  scheduler.submit(job("be1", 1, SlaClass::kBestEffort));
  EXPECT_THROW(scheduler.submit(job("be2", 1, SlaClass::kBestEffort)),
               InvalidArgument);
}

TEST(AdmissionTest, QueueDrainsInClassMajorOrder) {
  Scheduler scheduler(2);
  scheduler.submit(job("running", 2));
  ASSERT_EQ(scheduler.start_pending().size(), 1u);
  scheduler.submit(job("be", 1, SlaClass::kBestEffort));
  scheduler.submit(job("std", 1));
  scheduler.submit(job("lc", 1, SlaClass::kLatencyCritical));
  ASSERT_NE(scheduler.queued_head(), nullptr);
  EXPECT_EQ(scheduler.queued_head()->name, "lc");

  scheduler.complete("running");
  // Both free nodes go to the two highest classes; best_effort waits.
  EXPECT_EQ(scheduler.start_pending().size(), 2u);
  EXPECT_TRUE(scheduler.is_running("lc"));
  EXPECT_TRUE(scheduler.is_running("std"));
  ASSERT_NE(scheduler.queued_head(), nullptr);
  EXPECT_EQ(scheduler.queued_head()->name, "be");
}

TEST(AdmissionTest, FifoPreservedWithinAClass) {
  Scheduler scheduler(1);
  scheduler.submit(job("running", 1));
  ASSERT_EQ(scheduler.start_pending().size(), 1u);
  scheduler.submit(job("first", 1));
  scheduler.submit(job("second", 1));
  scheduler.complete("running");
  ASSERT_EQ(scheduler.start_pending().size(), 1u);
  EXPECT_TRUE(scheduler.is_running("first"));
}

}  // namespace
}  // namespace ps::rm
