#include <gtest/gtest.h>

#include "rm/scheduler.hpp"
#include "util/error.hpp"

namespace ps::rm {
namespace {

JobRequest job(const std::string& name, std::size_t nodes) {
  JobRequest request;
  request.name = name;
  request.node_count = nodes;
  return request;
}

TEST(BackfillTest, WithoutCallbackHeadBlocksQueue) {
  Scheduler scheduler(8);
  scheduler.submit(job("running", 6));
  static_cast<void>(scheduler.start_pending());
  scheduler.submit(job("big-head", 4));   // does not fit (2 free)
  scheduler.submit(job("small", 2));      // would fit
  const auto grants = scheduler.start_pending();
  EXPECT_TRUE(grants.empty());
  EXPECT_EQ(scheduler.queued_count(), 2u);
}

TEST(BackfillTest, CallbackLetsShortJobsJumpAhead) {
  Scheduler scheduler(8);
  scheduler.submit(job("running", 6));
  static_cast<void>(scheduler.start_pending());
  scheduler.submit(job("big-head", 4));
  scheduler.submit(job("small", 2));
  const auto grants = scheduler.start_pending(
      [](const JobRequest&) { return true; });
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].job_name, "small");
  EXPECT_EQ(scheduler.queued_count(), 1u);  // head still waits
  EXPECT_EQ(scheduler.free_node_count(), 0u);
}

TEST(BackfillTest, CallbackCanVetoBackfill) {
  Scheduler scheduler(8);
  scheduler.submit(job("running", 6));
  static_cast<void>(scheduler.start_pending());
  scheduler.submit(job("big-head", 4));
  scheduler.submit(job("long-small", 2));
  const auto grants = scheduler.start_pending(
      [](const JobRequest&) { return false; });
  EXPECT_TRUE(grants.empty());
  EXPECT_EQ(scheduler.queued_count(), 2u);
}

TEST(BackfillTest, HeadNeverSkipped) {
  // When the head fits, it starts in FIFO order even with a callback.
  Scheduler scheduler(8);
  scheduler.submit(job("head", 3));
  scheduler.submit(job("second", 3));
  const auto grants = scheduler.start_pending(
      [](const JobRequest&) { return true; });
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].job_name, "head");
  EXPECT_EQ(grants[1].job_name, "second");
}

TEST(BackfillTest, MultipleBackfillsInOnePass) {
  Scheduler scheduler(10);
  scheduler.submit(job("running", 7));
  static_cast<void>(scheduler.start_pending());
  scheduler.submit(job("big-head", 6));
  scheduler.submit(job("a", 2));
  scheduler.submit(job("b", 1));
  scheduler.submit(job("c", 2));  // no longer fits after a and b
  const auto grants = scheduler.start_pending(
      [](const JobRequest&) { return true; });
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].job_name, "a");
  EXPECT_EQ(grants[1].job_name, "b");
  EXPECT_EQ(scheduler.free_node_count(), 0u);
  EXPECT_EQ(scheduler.queued_count(), 2u);
}

TEST(BackfillTest, QueuedHeadAccessor) {
  Scheduler scheduler(4);
  EXPECT_EQ(scheduler.queued_head(), nullptr);
  scheduler.submit(job("running", 4));
  static_cast<void>(scheduler.start_pending());
  scheduler.submit(job("waiting", 2));
  ASSERT_NE(scheduler.queued_head(), nullptr);
  EXPECT_EQ(scheduler.queued_head()->name, "waiting");
}

}  // namespace
}  // namespace ps::rm
