// Class-ordered graceful degradation: shed_allocation_by_class re-divides
// a policy allocation so best_effort sheds toward its floors before
// standard, and latency_critical last — identity under abundance, never
// below floors, never above the input total.
#include "rm/degradation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rm/allocation.hpp"
#include "sim/sla.hpp"

namespace ps::rm {
namespace {

using sim::SlaClass;

ClassDemand demand(SlaClass sla_class, std::vector<double> floors,
                   std::vector<double> needed) {
  ClassDemand d;
  d.sla_class = sla_class;
  d.host_floors = std::move(floors);
  d.host_needed = std::move(needed);
  return d;
}

TEST(ShedByClassTest, IdentityUnderAbundance) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0, 210.0}, {180.0, 190.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kLatencyCritical, {152.0, 152.0}, {190.0, 195.0}),
      demand(SlaClass::kBestEffort, {152.0, 152.0}, {170.0, 180.0}),
  };
  // Budget covers the allocation and every cap covers its need: the pass
  // must return the input bit-for-bit.
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 1000.0);
  ASSERT_EQ(shed.job_host_caps, allocation.job_host_caps);
  EXPECT_TRUE(shed.job_host_gpu_caps.empty());
}

TEST(ShedByClassTest, BestEffortShedsToFloorsFirst) {
  // Two jobs, one host each. Needs: LC 220, BE 220; floors 152 each.
  // Budget 400: after floors (304), 96 W remain — LC's need (68 above
  // floor) is fully granted, BE gets the remaining 28 above floor.
  PowerAllocation allocation;
  allocation.job_host_caps = {{220.0}, {220.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kLatencyCritical, {152.0}, {220.0}),
      demand(SlaClass::kBestEffort, {152.0}, {220.0}),
  };
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 400.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[0][0], 220.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[1][0], 180.0);
  EXPECT_DOUBLE_EQ(shed.total_watts(), 400.0);
}

TEST(ShedByClassTest, LowerClassesPinnedAtFloorsWhenHigherClassStarved) {
  // Budget covers floors plus only part of the latency_critical need:
  // standard and best_effort must sit exactly on their floors.
  PowerAllocation allocation;
  allocation.job_host_caps = {{240.0}, {240.0}, {240.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kLatencyCritical, {152.0}, {240.0}),
      demand(SlaClass::kStandard, {152.0}, {240.0}),
      demand(SlaClass::kBestEffort, {152.0}, {240.0}),
  };
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 500.0);
  // Floors: 456. Remaining 44 all flow to the latency_critical job.
  EXPECT_DOUBLE_EQ(shed.job_host_caps[0][0], 196.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[1][0], 152.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[2][0], 152.0);
}

TEST(ShedByClassTest, ProportionalWithinStarvedClass) {
  // Two standard jobs with different needs share a partial grant at the
  // same fraction of (needed - floor).
  PowerAllocation allocation;
  allocation.job_host_caps = {{252.0}, {202.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kStandard, {152.0}, {252.0}),  // need above floor 100
      demand(SlaClass::kStandard, {152.0}, {202.0}),  // need above floor 50
  };
  // Floors 304; budget leaves 75 of the 150 needed above floors: half.
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 379.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[0][0], 202.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[1][0], 177.0);
}

TEST(ShedByClassTest, NeverBelowFloorsEvenWhenBudgetIsBelowFloors) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0}, {200.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kLatencyCritical, {152.0}, {200.0}),
      demand(SlaClass::kBestEffort, {152.0}, {200.0}),
  };
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 100.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[0][0], 152.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[1][0], 152.0);
}

TEST(ShedByClassTest, SurplusRestoredHighestClassFirst) {
  // Budget covers all needs plus 30 W of the 40 W surplus in the input.
  // The latency_critical job's 20 W surplus is restored in full; the
  // best_effort job gets the remaining 10 of its 20.
  PowerAllocation allocation;
  allocation.job_host_caps = {{220.0}, {220.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kLatencyCritical, {152.0}, {200.0}),
      demand(SlaClass::kBestEffort, {152.0}, {200.0}),
  };
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 430.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[0][0], 220.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[1][0], 210.0);
}

TEST(ShedByClassTest, TotalNeverExceedsInputTotalOrBudget) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{230.0, 230.0}, {230.0}};
  const std::vector<ClassDemand> demands = {
      demand(SlaClass::kLatencyCritical, {152.0, 152.0}, {250.0, 250.0}),
      demand(SlaClass::kBestEffort, {152.0}, {250.0}),
  };
  // Floors are never violated, so the reachable total is the target
  // clamped from below by the summed floors (456 W here): a 100 W
  // budget still leaves every host at its floor.
  const double floors = 3 * 152.0;
  for (const double budget : {100.0, 500.0, 600.0, 690.0, 10000.0}) {
    const PowerAllocation shed =
        shed_allocation_by_class(allocation, demands, budget);
    EXPECT_LE(shed.total_watts(),
              std::max(std::min(budget, allocation.total_watts()), floors) +
                  1e-9)
        << "budget " << budget;
    EXPECT_LE(shed.total_watts(), allocation.total_watts() + 1e-9);
  }
}

TEST(ShedByClassTest, GpuDomainShedsWithItsJobClass) {
  // A heterogeneous best_effort job must shed its GPU lane to the GPU
  // floor while a latency_critical CPU-only job keeps its need.
  PowerAllocation allocation;
  allocation.job_host_caps = {{220.0}, {200.0}};
  allocation.job_host_gpu_caps = {{}, {300.0}};
  ClassDemand lc = demand(SlaClass::kLatencyCritical, {152.0}, {220.0});
  ClassDemand be = demand(SlaClass::kBestEffort, {152.0}, {200.0});
  be.gpu_floors = {100.0};
  be.gpu_needed = {300.0};
  const std::vector<ClassDemand> demands = {lc, be};
  // Floors: 152 + 152 + 100 = 404. Budget 480 leaves 76: LC's 68 is
  // satisfied first; BE's CPU+GPU lanes split the remaining 8
  // proportionally to need-above-floor (48 and 200 → ratio 8/248).
  const PowerAllocation shed =
      shed_allocation_by_class(allocation, demands, 480.0);
  EXPECT_DOUBLE_EQ(shed.job_host_caps[0][0], 220.0);
  const double scale = 8.0 / 248.0;
  EXPECT_NEAR(shed.job_host_caps[1][0], 152.0 + scale * 48.0, 1e-9);
  EXPECT_NEAR(shed.job_host_gpu_caps[1][0], 100.0 + scale * 200.0, 1e-9);
}

}  // namespace
}  // namespace ps::rm
