#include "rm/allocation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::rm {
namespace {

PowerAllocation sample() {
  PowerAllocation allocation;
  allocation.job_host_caps = {{100.0, 150.0}, {200.0}};
  return allocation;
}

TEST(AllocationTest, TotalsSumEverything) {
  const PowerAllocation allocation = sample();
  EXPECT_DOUBLE_EQ(allocation.total_watts(), 450.0);
  EXPECT_DOUBLE_EQ(allocation.job_total_watts(0), 250.0);
  EXPECT_DOUBLE_EQ(allocation.job_total_watts(1), 200.0);
  EXPECT_EQ(allocation.host_count(), 3u);
}

TEST(AllocationTest, JobIndexValidated) {
  const PowerAllocation allocation = sample();
  EXPECT_THROW(static_cast<void>(allocation.job_total_watts(2)),
               ps::InvalidArgument);
}

TEST(AllocationTest, WithinBudgetUsesTolerance) {
  const PowerAllocation allocation = sample();
  EXPECT_TRUE(allocation.within_budget(450.0));
  EXPECT_TRUE(allocation.within_budget(449.5));  // within 1 W tolerance
  EXPECT_FALSE(allocation.within_budget(440.0));
  EXPECT_TRUE(allocation.within_budget(440.0, 20.0));
}

TEST(AllocationTest, EmptyAllocationIsZero) {
  const PowerAllocation allocation;
  EXPECT_DOUBLE_EQ(allocation.total_watts(), 0.0);
  EXPECT_EQ(allocation.host_count(), 0u);
  EXPECT_TRUE(allocation.within_budget(0.0));
}

}  // namespace
}  // namespace ps::rm
