#include <gtest/gtest.h>

#include "../core/context_builder.hpp"
#include "rm/power_manager.hpp"
#include "util/error.hpp"

namespace ps::rm {
namespace {

double total(const PowerAllocation& allocation) {
  return allocation.total_watts();
}

// Satellite regression for the latent single-domain assumptions found
// while generalizing to per-domain caps: the emergency clamp must
// floor-preserve each domain separately, and the PolicyContext TDP
// fallback must never invert a clamp range.

TEST(MultiDomainClampTest, SingleScaleSpansBothDomains) {
  // One 2-host job: CPU caps 200/240, GPU caps 250/290, floors 152/100.
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0, 240.0}};
  allocation.job_host_gpu_caps = {{250.0, 290.0}};
  const std::vector<std::vector<double>> floors = {{152.0, 152.0}};
  const std::vector<std::vector<double>> gpu_floors = {{100.0, 100.0}};

  // Σcaps = 980, Σfloors = 504. A 742 W budget leaves s = 0.5.
  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 742.0, gpu_floors);
  EXPECT_NEAR(total(clamped), 742.0, 1e-9);
  // Every cap moves toward its own domain's floor by the same fraction.
  EXPECT_NEAR(clamped.job_host_caps[0][0], 152.0 + 0.5 * 48.0, 1e-9);
  EXPECT_NEAR(clamped.job_host_caps[0][1], 152.0 + 0.5 * 88.0, 1e-9);
  EXPECT_NEAR(clamped.job_host_gpu_caps[0][0], 100.0 + 0.5 * 150.0, 1e-9);
  EXPECT_NEAR(clamped.job_host_gpu_caps[0][1], 100.0 + 0.5 * 190.0, 1e-9);
}

TEST(MultiDomainClampTest, BrownoutPreservesEachDomainsFloor) {
  // A GPU-heavy job under a brownout far below its allocation: no cap —
  // in either domain — may land below its own settable floor.
  PowerAllocation allocation;
  allocation.job_host_caps = {{180.0, 180.0}};
  allocation.job_host_gpu_caps = {{280.0, 280.0}};
  const std::vector<std::vector<double>> floors = {{152.0, 152.0}};
  const std::vector<std::vector<double>> gpu_floors = {{100.0, 100.0}};

  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 100.0, gpu_floors);
  // Even though the budget is unservable, the stack never programs below
  // a settable minimum: both domains land exactly on their floors.
  EXPECT_EQ(clamped.job_host_caps[0], floors[0]);
  EXPECT_EQ(clamped.job_host_gpu_caps[0], gpu_floors[0]);
}

TEST(MultiDomainClampTest, MixedClusterClampsOnlyTheHeteroJobsGpuRow) {
  // Hetero job + CPU-only job. The CPU-only job's GPU row is empty and
  // must stay empty through the clamp.
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0}, {240.0}};
  allocation.job_host_gpu_caps = {{280.0}, {}};
  const std::vector<std::vector<double>> floors = {{152.0}, {152.0}};
  const std::vector<std::vector<double>> gpu_floors = {{100.0}, {}};

  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 600.0, gpu_floors);
  EXPECT_NEAR(total(clamped), 600.0, 1e-9);
  EXPECT_TRUE(clamped.job_host_gpu_caps[1].empty());
  EXPECT_GE(clamped.job_host_gpu_caps[0][0], 100.0);
  EXPECT_GE(clamped.job_host_caps[0][0], 152.0);
  EXPECT_GE(clamped.job_host_caps[1][0], 152.0);
}

TEST(MultiDomainClampTest, GpuFloorShapeMismatchIsRejected) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0}};
  allocation.job_host_gpu_caps = {{280.0}};
  const std::vector<std::vector<double>> floors = {{152.0}};
  // Missing GPU floors for a GPU-bearing allocation.
  EXPECT_THROW(static_cast<void>(clamp_allocation_to_budget(
                   allocation, floors, 400.0, {{100.0, 100.0}})),
               ps::Error);
}

TEST(MultiDomainClampTest, JobTdpFallbackNeverInvertsTheClampRange) {
  // The regression this satellite exists for: a job whose settable floor
  // exceeds the context-wide TDP guess. validate() rejects it outright —
  // the saturating job_tdp_watts() fallback must not mask that.
  core::PolicyContext context = core::testing::make_context(
      700.0, {core::testing::make_job(2, 214.0, 190.0, 500.0)});
  EXPECT_THROW(context.validate(), ps::Error);

  // But on the unvalidated emergency path the fallback saturates at the
  // floor instead of handing downstream an inverted [min, TDP] range.
  EXPECT_GE(context.job_tdp_watts(0), context.jobs[0].min_settable_cap_watts);

  // A per-job TDP wins over the context guess.
  context.jobs[0].node_tdp_watts = 520.0;
  EXPECT_DOUBLE_EQ(context.job_tdp_watts(0), 520.0);
  EXPECT_NO_THROW(context.validate());
}

}  // namespace
}  // namespace ps::rm
