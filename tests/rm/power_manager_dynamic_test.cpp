// Dynamic-budget behavior of the RM power arm: epoch-guarded budget
// renegotiation, the proportional emergency clamp, excursion telemetry,
// and the RAPL quantization-tolerance boundary.
#include <gtest/gtest.h>

#include <string>

#include "rm/power_manager.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::rm {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t begin, std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = begin; i < begin + count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

class DynamicPowerManagerTest : public ::testing::Test {
 protected:
  DynamicPowerManagerTest()
      : cluster_(4),
        job_a_("a", hosts_of(cluster_, 0, 2), kernel::WorkloadConfig{}),
        job_b_("b", hosts_of(cluster_, 2, 2), kernel::WorkloadConfig{}) {}

  sim::Cluster cluster_;
  sim::JobSimulation job_a_;
  sim::JobSimulation job_b_;
  std::vector<sim::JobSimulation*> jobs_{&job_a_, &job_b_};
};

TEST_F(DynamicPowerManagerTest, SetBudgetAdvancesOnlyWithNewerEpoch) {
  SystemPowerManager manager(800.0);
  EXPECT_EQ(manager.budget_epoch(), 0u);
  EXPECT_TRUE(manager.set_budget(700.0, 1));
  EXPECT_DOUBLE_EQ(manager.budget_watts(), 700.0);
  EXPECT_EQ(manager.budget_epoch(), 1u);
  // Stale and duplicate epochs change nothing.
  EXPECT_FALSE(manager.set_budget(900.0, 1));
  EXPECT_FALSE(manager.set_budget(900.0, 0));
  EXPECT_DOUBLE_EQ(manager.budget_watts(), 700.0);
  EXPECT_TRUE(manager.set_budget(650.0, 5));  // epochs may skip
  EXPECT_EQ(manager.budget_epoch(), 5u);
  EXPECT_THROW(static_cast<void>(manager.set_budget(0.0, 9)),
               InvalidArgument);
}

TEST(ClampAllocationTest, NoopWhenAllocationFits) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};  // 780 W
  const std::vector<std::vector<double>> floors = {{150.0, 150.0},
                                                   {150.0, 150.0}};
  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 800.0);
  EXPECT_EQ(clamped.job_host_caps, allocation.job_host_caps);
}

TEST(ClampAllocationTest, ScalesProportionallyAboveTheFloors) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0, 250.0}};  // 450 W
  const std::vector<std::vector<double>> floors = {{150.0, 150.0}};
  // Budget 375 W: Σf = 300, s = (375-300)/(450-300) = 0.5.
  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 375.0);
  EXPECT_DOUBLE_EQ(clamped.job_host_caps[0][0], 175.0);
  EXPECT_DOUBLE_EQ(clamped.job_host_caps[0][1], 200.0);
  EXPECT_DOUBLE_EQ(clamped.total_watts(), 375.0);  // watt-exact on budget
}

TEST(ClampAllocationTest, FloorsWinWhenBudgetIsBelowThem) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0, 250.0}};
  const std::vector<std::vector<double>> floors = {{150.0, 160.0}};
  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 100.0);
  // Never below a settable minimum, even when that overshoots the budget.
  EXPECT_DOUBLE_EQ(clamped.job_host_caps[0][0], 150.0);
  EXPECT_DOUBLE_EQ(clamped.job_host_caps[0][1], 160.0);
}

TEST(ClampAllocationTest, PreservesShapeOrdering) {
  // The policy's relative preferences survive the clamp: a host that got
  // more above its floor keeps more.
  PowerAllocation allocation;
  allocation.job_host_caps = {{160.0, 240.0, 200.0}};
  const std::vector<std::vector<double>> floors = {{150.0, 150.0, 150.0}};
  const PowerAllocation clamped =
      clamp_allocation_to_budget(allocation, floors, 500.0);
  EXPECT_LT(clamped.job_host_caps[0][0], clamped.job_host_caps[0][2]);
  EXPECT_LT(clamped.job_host_caps[0][2], clamped.job_host_caps[0][1]);
  EXPECT_NEAR(clamped.total_watts(), 500.0, 1e-9);
}

TEST(ClampAllocationTest, ShapeMismatchMessagesNameTheAxis) {
  PowerAllocation allocation;
  allocation.job_host_caps = {{200.0, 250.0}};
  try {
    static_cast<void>(clamp_allocation_to_budget(
        allocation, {{150.0, 150.0}, {150.0}}, 400.0));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("number of jobs"),
              std::string::npos);
  }
  try {
    static_cast<void>(
        clamp_allocation_to_budget(allocation, {{150.0}}, 400.0));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("number of hosts"),
              std::string::npos);
  }
  EXPECT_THROW(static_cast<void>(clamp_allocation_to_budget(
                   allocation, {{150.0, -1.0}}, 400.0)),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(clamp_allocation_to_budget(
                   allocation, {{150.0, 150.0}}, 0.0)),
               InvalidArgument);
}

TEST_F(DynamicPowerManagerTest, EmergencyClampProgramsClampedCaps) {
  SystemPowerManager manager(800.0);
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};
  manager.apply(jobs_, allocation);
  // A brownout to just above the settable floors, so the proportional
  // scale (not the floor fallback) decides the caps.
  double floors = 0.0;
  for (const auto* job : jobs_) {
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      floors += job->host(h).min_cap();
    }
  }
  const double brownout = floors + 40.0;
  ASSERT_LT(brownout, allocation.total_watts());
  ASSERT_TRUE(manager.set_budget(brownout, 1));
  const PowerAllocation clamped = manager.emergency_clamp(jobs_, allocation);
  EXPECT_NEAR(clamped.total_watts(), brownout, 1e-9);
  // The programmed caps track the clamped allocation (RAPL quantization
  // slack only).
  EXPECT_NEAR(SystemPowerManager::total_allocated_watts(jobs_),
              clamped.total_watts(), 0.5 * 4);
  for (std::size_t j = 0; j < clamped.job_host_caps.size(); ++j) {
    for (std::size_t h = 0; h < clamped.job_host_caps[j].size(); ++h) {
      EXPECT_GE(clamped.job_host_caps[j][h],
                jobs_[j]->host(h).min_cap() - 1e-9);
    }
  }
}

TEST_F(DynamicPowerManagerTest, ApplyToleranceBoundaryIsPerHost) {
  // 4 hosts -> 2 W of RAPL quantization slack. 780 W of caps on a 778.5 W
  // budget is 1.5 W over: accepted. On a 777.5 W budget it is 2.5 W over:
  // rejected. The boundary itself (exactly tolerance over) is accepted.
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};  // 780 W
  EXPECT_NO_THROW(SystemPowerManager(778.5).apply(jobs_, allocation));
  EXPECT_THROW(SystemPowerManager(777.5).apply(jobs_, allocation),
               InvalidArgument);
  EXPECT_NO_THROW(SystemPowerManager(778.0).apply(jobs_, allocation));
}

TEST_F(DynamicPowerManagerTest, ApplyShapeMismatchMessagesNameTheAxis) {
  const SystemPowerManager manager(800.0);
  PowerAllocation wrong_jobs;
  wrong_jobs.job_host_caps = {{190.0, 200.0}};
  try {
    manager.apply(jobs_, wrong_jobs);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("number of jobs"),
              std::string::npos);
  }
  PowerAllocation wrong_hosts;
  wrong_hosts.job_host_caps = {{190.0}, {180.0, 210.0}};
  try {
    manager.apply(jobs_, wrong_hosts);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("number of hosts"),
              std::string::npos);
  }
}

TEST(ExcursionTelemetryTest, IntegratesOverBudgetTime) {
  SystemPowerManager manager(1'000.0);
  // 2 hosts -> 1 W tolerance. 1'100 W programmed for 2 s: 100 W over.
  manager.observe_programmed(1'100.0, 2, 2.0);
  EXPECT_TRUE(manager.excursions().in_excursion);
  EXPECT_DOUBLE_EQ(manager.excursions().over_budget_watt_seconds, 200.0);
  EXPECT_DOUBLE_EQ(manager.excursions().worst_over_watts, 100.0);
  manager.observe_programmed(1'050.0, 2, 1.0);  // still 50 W over
  EXPECT_DOUBLE_EQ(manager.excursions().over_budget_watt_seconds, 250.0);
  EXPECT_DOUBLE_EQ(manager.excursions().current_excursion_seconds, 3.0);
  // Reprogrammed under budget: the episode closes at this instant.
  manager.observe_programmed(900.0, 2, 0.0);
  const ExcursionTelemetry& telemetry = manager.excursions();
  EXPECT_FALSE(telemetry.in_excursion);
  EXPECT_EQ(telemetry.excursions, 1u);
  EXPECT_DOUBLE_EQ(telemetry.last_time_to_safe_seconds, 3.0);
  EXPECT_DOUBLE_EQ(telemetry.max_time_to_safe_seconds, 3.0);
  EXPECT_DOUBLE_EQ(telemetry.worst_over_watts, 100.0);
}

TEST(ExcursionTelemetryTest, ToleranceKeepsQuantizationOutOfTelemetry) {
  SystemPowerManager manager(1'000.0);
  manager.observe_programmed(1'000.9, 2, 5.0);  // within 1 W tolerance
  EXPECT_FALSE(manager.excursions().in_excursion);
  EXPECT_DOUBLE_EQ(manager.excursions().over_budget_watt_seconds, 0.0);
}

TEST(ExcursionTelemetryTest, BudgetDropOpensExcursionOnOldCaps) {
  SystemPowerManager manager(1'000.0);
  manager.observe_programmed(950.0, 2, 1.0);
  EXPECT_FALSE(manager.excursions().in_excursion);
  ASSERT_TRUE(manager.set_budget(700.0, 1));  // brownout under live caps
  manager.observe_programmed(950.0, 2, 0.5);
  EXPECT_TRUE(manager.excursions().in_excursion);
  EXPECT_DOUBLE_EQ(manager.excursions().worst_over_watts, 250.0);
  manager.observe_programmed(690.0, 2, 0.0);
  EXPECT_EQ(manager.excursions().excursions, 1u);
  EXPECT_DOUBLE_EQ(manager.excursions().last_time_to_safe_seconds, 0.5);
}

TEST(ExcursionTelemetryTest, RejectsNegativeElapsed) {
  SystemPowerManager manager(1'000.0);
  EXPECT_THROW(manager.observe_programmed(900.0, 2, -1.0),
               InvalidArgument);
}

}  // namespace
}  // namespace ps::rm
