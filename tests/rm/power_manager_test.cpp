#include "rm/power_manager.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "util/error.hpp"

namespace ps::rm {
namespace {

std::vector<hw::NodeModel*> hosts_of(sim::Cluster& cluster,
                                     std::size_t begin, std::size_t count) {
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = begin; i < begin + count; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  return hosts;
}

class PowerManagerTest : public ::testing::Test {
 protected:
  PowerManagerTest()
      : cluster_(4),
        job_a_("a", hosts_of(cluster_, 0, 2), kernel::WorkloadConfig{}),
        job_b_("b", hosts_of(cluster_, 2, 2), kernel::WorkloadConfig{}) {}

  sim::Cluster cluster_;
  sim::JobSimulation job_a_;
  sim::JobSimulation job_b_;
  std::vector<sim::JobSimulation*> jobs_{&job_a_, &job_b_};
};

TEST_F(PowerManagerTest, AppliesCapsToHosts) {
  const SystemPowerManager manager(800.0);
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};
  manager.apply(jobs_, allocation);
  EXPECT_NEAR(job_a_.host_cap(0), 190.0, 0.5);
  EXPECT_NEAR(job_a_.host_cap(1), 200.0, 0.5);
  EXPECT_NEAR(job_b_.host_cap(0), 180.0, 0.5);
  EXPECT_NEAR(job_b_.host_cap(1), 210.0, 0.5);
}

TEST_F(PowerManagerTest, RejectsOverBudgetAllocation) {
  const SystemPowerManager manager(700.0);
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};  // 780 W
  EXPECT_THROW(manager.apply(jobs_, allocation), ps::InvalidArgument);
}

TEST_F(PowerManagerTest, EnforcementCanBeDisabled) {
  const SystemPowerManager manager(700.0);
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};
  EXPECT_NO_THROW(manager.apply(jobs_, allocation, false));
  EXPECT_FALSE(manager.allocation_fits(jobs_));
}

TEST_F(PowerManagerTest, ShapeMismatchRejected) {
  const SystemPowerManager manager(800.0);
  PowerAllocation wrong_jobs;
  wrong_jobs.job_host_caps = {{190.0, 200.0}};
  EXPECT_THROW(manager.apply(jobs_, wrong_jobs), ps::InvalidArgument);
  PowerAllocation wrong_hosts;
  wrong_hosts.job_host_caps = {{190.0}, {180.0, 210.0}};
  EXPECT_THROW(manager.apply(jobs_, wrong_hosts), ps::InvalidArgument);
}

TEST_F(PowerManagerTest, TotalAllocatedReflectsProgrammedCaps) {
  const SystemPowerManager manager(900.0);
  PowerAllocation allocation;
  allocation.job_host_caps = {{190.0, 200.0}, {180.0, 210.0}};
  manager.apply(jobs_, allocation);
  EXPECT_NEAR(SystemPowerManager::total_allocated_watts(jobs_), 780.0, 1.0);
  EXPECT_TRUE(manager.allocation_fits(jobs_));
}

TEST_F(PowerManagerTest, QuantizationToleranceAccepted) {
  // Caps at exactly the budget must survive RAPL 1/8-W quantization.
  const SystemPowerManager manager(780.0);
  PowerAllocation allocation;
  allocation.job_host_caps = {{195.03, 195.03}, {195.03, 194.91}};
  EXPECT_NO_THROW(manager.apply(jobs_, allocation));
}

TEST(PowerManagerStandaloneTest, RejectsNonPositiveBudget) {
  EXPECT_THROW(SystemPowerManager(0.0), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::rm
