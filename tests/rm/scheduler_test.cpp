#include "rm/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace ps::rm {
namespace {

JobRequest job(const std::string& name, std::size_t nodes) {
  JobRequest request;
  request.name = name;
  request.node_count = nodes;
  return request;
}

TEST(SchedulerTest, StartsJobsInFifoOrder) {
  Scheduler scheduler(10);
  scheduler.submit(job("a", 4));
  scheduler.submit(job("b", 4));
  scheduler.submit(job("c", 4));  // does not fit with a and b
  const std::vector<NodeGrant> grants = scheduler.start_pending();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].job_name, "a");
  EXPECT_EQ(grants[1].job_name, "b");
  EXPECT_EQ(scheduler.queued_count(), 1u);
  EXPECT_EQ(scheduler.running_count(), 2u);
  EXPECT_EQ(scheduler.free_node_count(), 2u);
}

TEST(SchedulerTest, GrantsDistinctNodes) {
  Scheduler scheduler(9);
  scheduler.submit(job("a", 4));
  scheduler.submit(job("b", 5));
  const std::vector<NodeGrant> grants = scheduler.start_pending();
  std::set<std::size_t> seen;
  for (const auto& grant : grants) {
    for (std::size_t node : grant.node_indices) {
      EXPECT_TRUE(seen.insert(node).second) << "node granted twice";
      EXPECT_LT(node, 9u);
    }
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(SchedulerTest, CompleteReleasesNodes) {
  Scheduler scheduler(6);
  scheduler.submit(job("a", 6));
  scheduler.submit(job("b", 3));
  static_cast<void>(scheduler.start_pending());
  EXPECT_EQ(scheduler.running_count(), 1u);
  scheduler.complete("a");
  EXPECT_EQ(scheduler.free_node_count(), 6u);
  const std::vector<NodeGrant> grants = scheduler.start_pending();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].job_name, "b");
}

TEST(SchedulerTest, HeadOfQueueBlocksLaterJobs) {
  Scheduler scheduler(4);
  scheduler.submit(job("big", 4));
  scheduler.submit(job("small", 1));
  static_cast<void>(scheduler.start_pending());
  // "big" is running; "small" fits nowhere.
  scheduler.submit(job("big2", 3));
  const std::vector<NodeGrant> grants = scheduler.start_pending();
  // No backfill: big2 blocks behind small... actually small starts? No:
  // small requires 1 node but 0 are free while big runs.
  EXPECT_TRUE(grants.empty());
  EXPECT_EQ(scheduler.queued_count(), 2u);
}

TEST(SchedulerTest, NodesOfRunningJobAccessible) {
  Scheduler scheduler(5);
  scheduler.submit(job("a", 3));
  static_cast<void>(scheduler.start_pending());
  EXPECT_TRUE(scheduler.is_running("a"));
  EXPECT_EQ(scheduler.nodes_of("a").size(), 3u);
  EXPECT_THROW(static_cast<void>(scheduler.nodes_of("b")), ps::NotFound);
}

TEST(SchedulerTest, CompleteUnknownJobThrows) {
  Scheduler scheduler(2);
  EXPECT_THROW(scheduler.complete("ghost"), ps::NotFound);
}

TEST(SchedulerTest, OversizedJobRejectedAtSubmit) {
  Scheduler scheduler(4);
  EXPECT_THROW(scheduler.submit(job("too-big", 5)), ps::InvalidArgument);
}

TEST(SchedulerTest, DuplicateNamesRejected) {
  Scheduler scheduler(8);
  scheduler.submit(job("a", 2));
  EXPECT_THROW(scheduler.submit(job("a", 2)), ps::InvalidArgument);
  static_cast<void>(scheduler.start_pending());
  EXPECT_THROW(scheduler.submit(job("a", 2)), ps::InvalidArgument);
}

TEST(SchedulerTest, ExplicitPoolIndicesUsed) {
  Scheduler scheduler(std::vector<std::size_t>{10, 20, 30});
  scheduler.submit(job("a", 3));
  const std::vector<NodeGrant> grants = scheduler.start_pending();
  ASSERT_EQ(grants.size(), 1u);
  std::set<std::size_t> nodes(grants[0].node_indices.begin(),
                              grants[0].node_indices.end());
  EXPECT_EQ(nodes, (std::set<std::size_t>{10, 20, 30}));
}

TEST(SchedulerTest, DuplicatePoolIndicesRejected) {
  EXPECT_THROW(Scheduler(std::vector<std::size_t>{1, 1, 2}),
               ps::InvalidArgument);
  EXPECT_THROW(Scheduler(std::vector<std::size_t>{}), ps::InvalidArgument);
}

TEST(SchedulerTest, InvalidJobRequestRejected) {
  Scheduler scheduler(4);
  EXPECT_THROW(scheduler.submit(job("", 2)), ps::InvalidArgument);
  EXPECT_THROW(scheduler.submit(job("a", 0)), ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::rm
