#include "analysis/validation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ps::analysis {
namespace {

TEST(ValidationTest, AllClaimsHoldAtReducedScale) {
  ExperimentOptions options;
  options.nodes_per_job = 8;
  options.iterations = 16;
  options.characterization_iterations = 3;
  options.hardware_variation = false;
  options.noise_time_sigma = 0.002;
  const ValidationReport report = validate_paper_claims(options);
  EXPECT_EQ(report.claims.size(), 12u);
  for (const auto& claim : report.claims) {
    EXPECT_TRUE(claim.passed)
        << claim.id << ": " << claim.description << " (" << claim.detail
        << ")";
  }
  EXPECT_TRUE(report.all_passed());
  EXPECT_EQ(report.passed_count(), report.claims.size());
}

TEST(ValidationTest, ClaimIdsAreUniqueAndDescribed) {
  ExperimentOptions options;
  options.nodes_per_job = 4;
  options.iterations = 8;
  options.characterization_iterations = 2;
  options.hardware_variation = false;
  const ValidationReport report = validate_paper_claims(options);
  std::set<std::string> ids;
  for (const auto& claim : report.claims) {
    EXPECT_TRUE(ids.insert(claim.id).second)
        << "duplicate claim id " << claim.id;
    EXPECT_FALSE(claim.description.empty());
  }
}

}  // namespace
}  // namespace ps::analysis
