#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

namespace ps::analysis {
namespace {

TEST(SensitivityTest, OrderingsSurviveEveryPerturbation) {
  SensitivityOptions options;
  options.nodes_per_job = 4;
  options.iterations = 8;
  options.bandwidth_floors = {0.6, 0.8};
  options.dram_watts = {8.0, 24.0};
  options.poll_activities = {0.8, 0.9};
  options.tolerated_slowdowns = {0.02, 0.05};
  const std::vector<SensitivityCase> cases = run_sensitivity(options);
  ASSERT_EQ(cases.size(), 8u);
  for (const auto& test_case : cases) {
    EXPECT_TRUE(test_case.marker_d_holds)
        << test_case.parameter << "=" << test_case.value;
    EXPECT_TRUE(test_case.time_ordering_holds)
        << test_case.parameter << "=" << test_case.value;
    EXPECT_GT(test_case.energy_savings_max, 0.0);
  }
}

TEST(SensitivityTest, MagnitudesRespondToTheModel) {
  SensitivityOptions options;
  options.nodes_per_job = 4;
  options.iterations = 8;
  options.bandwidth_floors = {};
  options.dram_watts = {8.0, 24.0};
  options.poll_activities = {};
  options.tolerated_slowdowns = {};
  const std::vector<SensitivityCase> cases = run_sensitivity(options);
  ASSERT_EQ(cases.size(), 2u);
  // More uncappable DRAM power leaves less for the policies to move:
  // energy savings shrink as dram_watts grows.
  EXPECT_GT(cases[0].energy_savings_max, cases[1].energy_savings_max);
}

}  // namespace
}  // namespace ps::analysis
