#include "analysis/heatmap.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::analysis {
namespace {

class HeatmapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new sim::Cluster(4);
    result_ = new HeatmapResult(run_power_heatmap(
        *cluster_, {0, 1, 2, 3}, hw::VectorWidth::kYmm256, 3));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete cluster_;
    result_ = nullptr;
    cluster_ = nullptr;
  }

  static sim::Cluster* cluster_;
  static HeatmapResult* result_;
};

sim::Cluster* HeatmapTest::cluster_ = nullptr;
HeatmapResult* HeatmapTest::result_ = nullptr;

TEST_F(HeatmapTest, GridShapeMatchesFig4) {
  EXPECT_EQ(result_->intensities.size(), 8u);
  EXPECT_EQ(result_->column_labels.size(), 7u);
  EXPECT_EQ(result_->monitor_power.size(), 8u);
  EXPECT_EQ(result_->monitor_power[0].size(), 7u);
  EXPECT_EQ(result_->column_labels[0], "0%");
  EXPECT_EQ(result_->column_labels[6], "75% at 3x");
}

TEST_F(HeatmapTest, MonitorPowerInPaperBand) {
  // Fig. 4: uncapped node power between ~209 and ~232 W.
  EXPECT_GE(result_->monitor_min(), 205.0);
  EXPECT_LE(result_->monitor_max(), 235.0);
}

TEST_F(HeatmapTest, MonitorPowerInsensitiveToImbalance) {
  // Within every intensity row, the spread across imbalance columns is
  // small (Fig. 4's observation).
  for (std::size_t row = 0; row < result_->intensities.size(); ++row) {
    double row_min = result_->monitor_power[row][0];
    double row_max = row_min;
    for (double value : result_->monitor_power[row]) {
      row_min = std::min(row_min, value);
      row_max = std::max(row_max, value);
    }
    EXPECT_LT(row_max - row_min, 10.0) << "row " << row;
  }
}

TEST_F(HeatmapTest, MonitorPowerPeaksMidIntensity) {
  double peak_power = 0.0;
  double peak_intensity = 0.0;
  for (std::size_t row = 0; row < result_->intensities.size(); ++row) {
    if (result_->monitor_power[row][0] > peak_power) {
      peak_power = result_->monitor_power[row][0];
      peak_intensity = result_->intensities[row];
    }
  }
  EXPECT_GE(peak_intensity, 4.0);
  EXPECT_LE(peak_intensity, 16.0);
}

TEST_F(HeatmapTest, BalancerReducesPowerEverywhere) {
  for (std::size_t row = 0; row < result_->intensities.size(); ++row) {
    for (std::size_t col = 0; col < result_->column_labels.size(); ++col) {
      EXPECT_LE(result_->balancer_power[row][col],
                result_->monitor_power[row][col] + 0.5)
          << "row " << row << " col " << col;
    }
  }
  EXPECT_LT(result_->balancer_min(), result_->monitor_min());
}

TEST_F(HeatmapTest, BalancerSavingsGrowWithWaitingFraction) {
  // Fig. 5's vertical bands: more waiting ranks, deeper cuts.
  for (std::size_t row = 0; row < result_->intensities.size(); ++row) {
    const double cut25 = result_->monitor_power[row][1] -
                         result_->balancer_power[row][1];
    const double cut75 = result_->monitor_power[row][5] -
                         result_->balancer_power[row][5];
    EXPECT_GT(cut75, cut25) << "row " << row;
  }
}

TEST_F(HeatmapTest, TablesRenderBothGrids) {
  const std::string monitor_table = result_->to_table(false);
  const std::string balancer_table = result_->to_table(true);
  EXPECT_NE(monitor_table.find("FLOPs/byte"), std::string::npos);
  EXPECT_NE(monitor_table.find("75% at 3x"), std::string::npos);
  EXPECT_NE(balancer_table.find("0.25"), std::string::npos);
  EXPECT_NE(monitor_table, balancer_table);
}

TEST(HeatmapValidationTest, RejectsBadArguments) {
  sim::Cluster cluster(2);
  EXPECT_THROW(static_cast<void>(run_power_heatmap(
                   cluster, {}, hw::VectorWidth::kYmm256, 1)),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(run_power_heatmap(
                   cluster, {0}, hw::VectorWidth::kYmm256, 0)),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::analysis
