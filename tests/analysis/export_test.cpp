#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ps::analysis {
namespace {

MixRunResult sample_run() {
  MixRunResult run;
  run.mix_name = "WastefulPower";
  run.policy = core::PolicyKind::kMixedAdaptive;
  run.level = core::BudgetLevel::kMax;
  run.budget_watts = 1000.0;
  run.allocated_watts = 950.0;
  run.within_budget = true;
  JobRunMetrics job;
  job.job_name = "j0";
  job.elapsed_seconds = 2.0;
  job.energy_joules = 1600.0;
  job.gflop = 40.0;
  run.jobs.push_back(job);
  return run;
}

TEST(ExportTest, GridCsvHasHeaderAndRow) {
  std::ostringstream out;
  write_grid_csv(out, {sample_run()});
  const std::string csv = out.str();
  EXPECT_NE(csv.find("mix,policy,budget,budget_watts"), std::string::npos);
  EXPECT_NE(csv.find("WastefulPower,MixedAdaptive,max,1000.0,950.0,1"),
            std::string::npos);
  // power fraction = (1600/2)/1000 = 0.8
  EXPECT_NE(csv.find("0.8000"), std::string::npos);
}

TEST(ExportTest, GridCsvOneLinePerRun) {
  std::ostringstream out;
  write_grid_csv(out, {sample_run(), sample_run(), sample_run()});
  std::size_t lines = 0;
  for (char ch : out.str()) {
    if (ch == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 4u);
}

TEST(ExportTest, SavingsCsvHasFourMetricsPerRow) {
  SavingsRow row;
  row.mix_name = "HighPower";
  row.policy = core::PolicyKind::kJobAdaptive;
  row.level = core::BudgetLevel::kIdeal;
  row.savings.time = {0.05, 0.01};
  row.savings.energy = {0.03, 0.005};
  row.savings.edp = {0.08, 0.012};
  row.savings.flops_per_watt = {0.031, 0.004};
  std::ostringstream out;
  write_savings_csv(out, {row});
  const std::string csv = out.str();
  EXPECT_NE(csv.find("mix,policy,budget,metric,mean,ci_lo,ci_hi"),
            std::string::npos);
  EXPECT_NE(csv.find("HighPower,JobAdaptive,ideal,time_savings,0.050000"),
            std::string::npos);
  EXPECT_NE(csv.find("energy_savings"), std::string::npos);
  EXPECT_NE(csv.find("edp_savings"), std::string::npos);
  EXPECT_NE(csv.find("flops_per_watt_increase"), std::string::npos);
  // CI bounds: 0.05 - 0.01 = 0.04.
  EXPECT_NE(csv.find("0.040000,0.060000"), std::string::npos);
}

TEST(ExportTest, EmptyInputsProduceHeaderOnly) {
  std::ostringstream grid;
  write_grid_csv(grid, {});
  EXPECT_EQ(grid.str().find('\n'), grid.str().size() - 1);
  std::ostringstream savings;
  write_savings_csv(savings, {});
  EXPECT_EQ(savings.str().find('\n'), savings.str().size() - 1);
}

}  // namespace
}  // namespace ps::analysis
