#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ps::bench {
namespace {

analysis::ExperimentOptions parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_options(static_cast<int>(argv.size()),
                       const_cast<char**>(argv.data()));
}

TEST(BenchOptionsTest, DefaultsMatchThePaperScale) {
  const analysis::ExperimentOptions options = parse({});
  EXPECT_EQ(options.nodes_per_job, 100u);
  EXPECT_EQ(options.iterations, 100u);
  EXPECT_TRUE(options.hardware_variation);
  EXPECT_EQ(options.sweep_workers, 0u);
}

TEST(BenchOptionsTest, QuickReducesScale) {
  const analysis::ExperimentOptions options = parse({"--quick"});
  EXPECT_EQ(options.nodes_per_job, 12u);
  EXPECT_EQ(options.iterations, 20u);
}

// Regression: --quick used to discard explicit --nodes/--iterations.
TEST(BenchOptionsTest, ExplicitValuesOverrideQuickDefaults) {
  const analysis::ExperimentOptions options =
      parse({"--quick", "--nodes", "8"});
  EXPECT_EQ(options.nodes_per_job, 8u);
  EXPECT_EQ(options.iterations, 20u);  // still the quick default

  const analysis::ExperimentOptions both =
      parse({"--quick", "--iterations", "5", "--nodes", "6"});
  EXPECT_EQ(both.nodes_per_job, 6u);
  EXPECT_EQ(both.iterations, 5u);
}

TEST(BenchOptionsTest, JobsFlagSetsSweepWorkers) {
  EXPECT_EQ(parse({"--jobs", "4"}).sweep_workers, 4u);
  EXPECT_EQ(parse({"--quick", "--jobs", "1"}).sweep_workers, 1u);
}

TEST(BenchOptionsTest, NoVariationDisablesHardwareVariation) {
  EXPECT_FALSE(parse({"--no-variation"}).hardware_variation);
}

}  // namespace
}  // namespace ps::bench
