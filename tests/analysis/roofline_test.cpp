#include "analysis/roofline_analysis.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ps::analysis {
namespace {

TEST(RooflineAnalysisTest, CeilingsOrderedByVectorWidth) {
  const hw::NodeModel node(0, 1.0);
  const RooflineAnalysis analysis =
      analyze_roofline(node, fig3_intensities());
  EXPECT_LT(analysis.scalar_peak_gflops, analysis.xmm_peak_gflops);
  EXPECT_LT(analysis.xmm_peak_gflops, analysis.ymm_peak_gflops);
  EXPECT_GT(analysis.memory_bandwidth_gbs, 0.0);
  EXPECT_GT(analysis.ridge_intensity_ymm, 4.0);
  EXPECT_LT(analysis.ridge_intensity_ymm, 16.0);
}

TEST(RooflineAnalysisTest, PointsCoverAllWidthsAndIntensities) {
  const hw::NodeModel node(0, 1.0);
  const std::vector<double> intensities = {0.1, 1.0, 10.0};
  const RooflineAnalysis analysis = analyze_roofline(node, intensities);
  EXPECT_EQ(analysis.points.size(), 9u);
}

TEST(RooflineAnalysisTest, KernelTouchesTheRoofline) {
  // Fig. 3's claim: the kernel reaches the platform envelope at every
  // configuration (memory-bound and compute-bound ends alike).
  const hw::NodeModel node(0, 1.0);
  const RooflineAnalysis analysis =
      analyze_roofline(node, fig3_intensities());
  for (const auto& point : analysis.points) {
    if (point.intensity <= 0.0) {
      continue;
    }
    EXPECT_GT(point.efficiency(), 0.95)
        << "I=" << point.intensity << " width=" << hw::to_string(point.width);
    EXPECT_LE(point.achieved_gflops, point.envelope_gflops * 1.0001);
  }
}

TEST(RooflineAnalysisTest, MemoryBoundPointsScaleWithIntensity) {
  const hw::NodeModel node(0, 1.0);
  const RooflineAnalysis analysis = analyze_roofline(node, {0.1, 0.2});
  // Both are memory-bound: achieved GFLOPS doubles with intensity.
  const auto& a = analysis.points[0];
  const auto& b = analysis.points[1];
  EXPECT_NEAR(b.achieved_gflops, 2.0 * a.achieved_gflops,
              a.achieved_gflops * 0.01);
}

TEST(RooflineAnalysisTest, ComputeBoundPointsFlatten) {
  const hw::NodeModel node(0, 1.0);
  const RooflineAnalysis analysis = analyze_roofline(node, {20.0, 40.0});
  const auto ymm_points = [&] {
    std::vector<RooflinePoint> points;
    for (const auto& point : analysis.points) {
      if (point.width == hw::VectorWidth::kYmm256) {
        points.push_back(point);
      }
    }
    return points;
  }();
  ASSERT_EQ(ymm_points.size(), 2u);
  EXPECT_NEAR(ymm_points[0].achieved_gflops, ymm_points[1].achieved_gflops,
              ymm_points[0].achieved_gflops * 0.01);
}

TEST(RooflineAnalysisTest, Fig3SweepSpansPaperRange) {
  const std::vector<double> intensities = fig3_intensities();
  EXPECT_NEAR(intensities.front(), 0.007, 1e-9);
  EXPECT_NEAR(intensities.back(), 40.0, 1e-9);
}

TEST(RooflineAnalysisTest, EmptySweepRejected) {
  const hw::NodeModel node(0, 1.0);
  EXPECT_THROW(static_cast<void>(analyze_roofline(node, {})),
               ps::InvalidArgument);
}

}  // namespace
}  // namespace ps::analysis
