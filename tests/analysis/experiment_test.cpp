#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"
#include "util/error.hpp"

namespace ps::analysis {
namespace {

ExperimentOptions small_options() {
  ExperimentOptions options;
  options.nodes_per_job = 4;
  options.iterations = 10;
  options.characterization_iterations = 3;
  options.hardware_variation = false;
  options.noise_time_sigma = 0.002;
  return options;
}

TEST(ExperimentDriverTest, HomogeneousPoolSizedForNineJobs) {
  ExperimentDriver driver(small_options());
  EXPECT_EQ(driver.experiment_nodes().size(), 36u);
  EXPECT_EQ(driver.cluster().size(), 36u);
}

TEST(ExperimentDriverTest, VariationPoolUsesMediumCluster) {
  ExperimentOptions options = small_options();
  options.hardware_variation = true;
  ExperimentDriver driver(options);
  EXPECT_EQ(driver.experiment_nodes().size(), 36u);
  for (std::size_t index : driver.experiment_nodes()) {
    EXPECT_NEAR(driver.cluster().node(index).eta(), 1.0, 0.1);
  }
}

TEST(ExperimentDriverTest, PrepareProducesBudgetsAndCharacterizations) {
  ExperimentDriver driver(small_options());
  const core::WorkloadMix mix =
      core::make_mix(core::MixKind::kWastefulPower, 4);
  MixExperiment experiment = driver.prepare(mix);
  EXPECT_EQ(experiment.mix_name(), "WastefulPower");
  EXPECT_EQ(experiment.characterizations().size(), 9u);
  EXPECT_EQ(experiment.total_hosts(), 36u);
  const core::PowerBudgets& budgets = experiment.budgets();
  EXPECT_LT(budgets.min_watts, budgets.ideal_watts);
  EXPECT_LT(budgets.ideal_watts, budgets.max_watts);
}

TEST(ExperimentDriverTest, RunProducesPerJobIterationSeries) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kHighPower, 4));
  const MixRunResult result =
      experiment.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  ASSERT_EQ(result.jobs.size(), 9u);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.iteration_seconds.size(), 10u);
    EXPECT_EQ(job.iteration_energy_joules.size(), 10u);
    EXPECT_GT(job.elapsed_seconds, 0.0);
    EXPECT_GT(job.energy_joules, 0.0);
    EXPECT_GT(job.allocated_watts, 0.0);
  }
  EXPECT_GT(result.power_fraction_of_budget(), 0.5);
  EXPECT_LT(result.power_fraction_of_budget(), 1.05);
}

TEST(ExperimentDriverTest, SystemAwarePoliciesStayWithinBudget) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  for (core::BudgetLevel level : core::all_budget_levels()) {
    for (core::PolicyKind kind :
         {core::PolicyKind::kStaticCaps, core::PolicyKind::kMinimizeWaste,
          core::PolicyKind::kJobAdaptive,
          core::PolicyKind::kMixedAdaptive}) {
      const MixRunResult result = experiment.run(level, kind);
      EXPECT_TRUE(result.within_budget)
          << core::to_string(kind) << " at " << core::to_string(level);
    }
  }
}

TEST(ExperimentDriverTest, PrecharacterizedViolatesTightBudgets) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixRunResult min_run = experiment.run(
      core::BudgetLevel::kMin, core::PolicyKind::kPrecharacterized);
  EXPECT_FALSE(min_run.within_budget);
  const MixRunResult max_run = experiment.run(
      core::BudgetLevel::kMax, core::PolicyKind::kPrecharacterized);
  EXPECT_TRUE(max_run.within_budget);
}

TEST(ExperimentDriverTest, SavingsCarrySignificance) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixRunResult baseline =
      experiment.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const SavingsSummary real = compute_savings(
      experiment.run(core::BudgetLevel::kMax,
                     core::PolicyKind::kMixedAdaptive),
      baseline);
  // Substantial energy savings: overwhelmingly significant.
  EXPECT_LT(real.energy_pvalue, 0.01);
  // Self-comparison: all-zero differences, p-value pinned at 1.
  const SavingsSummary null = compute_savings(baseline, baseline);
  EXPECT_DOUBLE_EQ(null.time_pvalue, 1.0);
  EXPECT_DOUBLE_EQ(null.energy_pvalue, 1.0);
}

TEST(ExperimentDriverTest, IntervalsOnlySkipsPValuesButKeepsTheCIs) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixRunResult baseline =
      experiment.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const MixRunResult run = experiment.run(
      core::BudgetLevel::kMax, core::PolicyKind::kMixedAdaptive);
  const SavingsSummary full = compute_savings(run, baseline);
  const SavingsSummary quick =
      compute_savings(run, baseline, SavingsStatistics::kIntervalsOnly);
  // The intervals are the same computation either way (bit-identical);
  // only the permutation test is skipped, leaving the defaults.
  EXPECT_EQ(full.time.mean, quick.time.mean);
  EXPECT_EQ(full.time.half_width, quick.time.half_width);
  EXPECT_EQ(full.energy.mean, quick.energy.mean);
  EXPECT_EQ(full.edp.mean, quick.edp.mean);
  EXPECT_EQ(full.flops_per_watt.mean, quick.flops_per_watt.mean);
  EXPECT_DOUBLE_EQ(quick.time_pvalue, 1.0);
  EXPECT_DOUBLE_EQ(quick.energy_pvalue, 1.0);
  EXPECT_LT(full.energy_pvalue, 0.01);
}

TEST(ExperimentDriverTest, SavingsAgainstSelfAreZero) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kLowPower, 4));
  const MixRunResult a =
      experiment.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  const SavingsSummary self = compute_savings(a, a);
  EXPECT_NEAR(self.time.mean, 0.0, 1e-12);
  EXPECT_NEAR(self.energy.mean, 0.0, 1e-12);
  EXPECT_NEAR(self.edp.mean, 0.0, 1e-12);
  EXPECT_NEAR(self.flops_per_watt.mean, 0.0, 1e-12);
}

TEST(ExperimentDriverTest, MixedAdaptiveSavesEnergyAtMaxBudget) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixRunResult baseline =
      experiment.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const MixRunResult mixed = experiment.run(
      core::BudgetLevel::kMax, core::PolicyKind::kMixedAdaptive);
  const SavingsSummary savings = compute_savings(mixed, baseline);
  EXPECT_GT(savings.energy.mean, 0.03);
  EXPECT_GT(savings.flops_per_watt.mean, 0.03);
}

TEST(ExperimentDriverTest, SavingsMismatchedRunsRejected) {
  ExperimentDriver driver(small_options());
  MixExperiment low =
      driver.prepare(core::make_mix(core::MixKind::kLowPower, 4));
  MixExperiment imbalance =
      driver.prepare(core::make_mix(core::MixKind::kHighImbalance, 4));
  const MixRunResult a =
      low.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  const MixRunResult b = imbalance.run(core::BudgetLevel::kIdeal,
                                       core::PolicyKind::kStaticCaps);
  EXPECT_THROW(static_cast<void>(compute_savings(a, b)),
               ps::InvalidArgument);
}

TEST(ExperimentDriverTest, AblationVariantRunsThroughRunWith) {
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  core::MixedAdaptiveOptions options;
  options.distribute_surplus = false;
  const core::MixedAdaptivePolicy ablated(options);
  const MixRunResult result = experiment.run_with(
      core::BudgetLevel::kMax, ablated, core::PolicyKind::kMixedAdaptive);
  EXPECT_TRUE(result.within_budget);
  // Without step 4, allocation is exactly the needed power: less than
  // the full MixedAdaptive allocates.
  const MixRunResult full = experiment.run(
      core::BudgetLevel::kMax, core::PolicyKind::kMixedAdaptive);
  EXPECT_LT(result.allocated_watts, full.allocated_watts);
}

TEST(ExperimentDriverTest, InvalidOptionsRejected) {
  ExperimentOptions options = small_options();
  options.nodes_per_job = 0;
  EXPECT_THROW(ExperimentDriver{options}, ps::InvalidArgument);
  options = small_options();
  options.iterations = 0;
  EXPECT_THROW(ExperimentDriver{options}, ps::InvalidArgument);
}

TEST(ExperimentDriverTest, CellResultsAreRunOrderIndependent) {
  // A cell is a pure function of (options, mix, level, policy): running
  // other cells first, or the same cell twice, must not perturb it.
  ExperimentDriver driver(small_options());
  MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixRunResult fresh = experiment.run(
      core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive);
  static_cast<void>(experiment.run(core::BudgetLevel::kMax,
                                   core::PolicyKind::kMixedAdaptive));
  static_cast<void>(experiment.run(core::BudgetLevel::kMin,
                                   core::PolicyKind::kStaticCaps));
  const MixRunResult again = experiment.run(
      core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive);
  ASSERT_EQ(fresh.jobs.size(), again.jobs.size());
  EXPECT_EQ(fresh.allocated_watts, again.allocated_watts);
  for (std::size_t j = 0; j < fresh.jobs.size(); ++j) {
    EXPECT_EQ(fresh.jobs[j].iteration_seconds,
              again.jobs[j].iteration_seconds);
    EXPECT_EQ(fresh.jobs[j].iteration_energy_joules,
              again.jobs[j].iteration_energy_joules);
  }
}

/// One-job run with explicit per-iteration samples, for exercising the
/// compute_savings math without a simulation.
MixRunResult synthetic_run(std::vector<double> seconds,
                           std::vector<double> joules) {
  MixRunResult result;
  JobRunMetrics job;
  job.job_name = "synthetic";
  job.iteration_seconds = std::move(seconds);
  job.iteration_energy_joules = std::move(joules);
  result.jobs.push_back(std::move(job));
  return result;
}

TEST(ComputeSavingsTest, PairedMathMatchesHandComputation) {
  // Policy iterations at 90% time / 80% energy of the baseline's.
  const MixRunResult baseline =
      synthetic_run({2.0, 4.0}, {100.0, 200.0});
  const MixRunResult run = synthetic_run({1.8, 3.6}, {80.0, 160.0});
  const SavingsSummary savings = compute_savings(run, baseline);
  EXPECT_NEAR(savings.time.mean, 0.10, 1e-12);
  EXPECT_NEAR(savings.energy.mean, 0.20, 1e-12);
  // EDP savings: 1 - (0.9 * 0.8) per pair.
  EXPECT_NEAR(savings.edp.mean, 1.0 - 0.9 * 0.8, 1e-12);
  // FLOPS/W: inverse energy ratio minus one.
  EXPECT_NEAR(savings.flops_per_watt.mean, 1.0 / 0.8 - 1.0, 1e-12);
  // Identical ratios in every pair: zero variance, zero half-width.
  EXPECT_NEAR(savings.time.half_width, 0.0, 1e-12);
  EXPECT_NEAR(savings.energy.half_width, 0.0, 1e-12);
}

TEST(ComputeSavingsTest, MismatchedIterationCountsRejected) {
  const MixRunResult baseline =
      synthetic_run({2.0, 4.0}, {100.0, 200.0});
  const MixRunResult short_run = synthetic_run({1.8}, {80.0});
  EXPECT_THROW(static_cast<void>(compute_savings(short_run, baseline)),
               ps::InvalidArgument);
}

TEST(ComputeSavingsTest, DegenerateBaselineIterationRejected) {
  const MixRunResult run = synthetic_run({1.8, 3.6}, {80.0, 160.0});
  EXPECT_THROW(static_cast<void>(compute_savings(
                   run, synthetic_run({2.0, 0.0}, {100.0, 200.0}))),
               ps::InvalidArgument);
  EXPECT_THROW(static_cast<void>(compute_savings(
                   run, synthetic_run({2.0, 4.0}, {100.0, 0.0}))),
               ps::InvalidArgument);
}

TEST(MixRunResultTest, AggregatesAreConsistent) {
  MixRunResult result;
  result.budget_watts = 1000.0;
  JobRunMetrics job;
  job.elapsed_seconds = 2.0;
  job.energy_joules = 800.0;
  job.gflop = 10.0;
  result.jobs.push_back(job);
  job.energy_joules = 1200.0;
  result.jobs.push_back(job);
  EXPECT_DOUBLE_EQ(result.system_power_watts(), 400.0 + 600.0);
  EXPECT_DOUBLE_EQ(result.power_fraction_of_budget(), 1.0);
  EXPECT_DOUBLE_EQ(result.total_energy_joules(), 2000.0);
  EXPECT_DOUBLE_EQ(result.total_gflop(), 20.0);
  EXPECT_DOUBLE_EQ(result.mean_elapsed_seconds(), 2.0);
}

}  // namespace
}  // namespace ps::analysis
