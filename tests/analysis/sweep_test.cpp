#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/export.hpp"
#include "util/error.hpp"

namespace ps::analysis {
namespace {

ExperimentOptions small_options() {
  ExperimentOptions options;
  options.nodes_per_job = 4;
  options.iterations = 10;
  options.characterization_iterations = 3;
  options.hardware_variation = false;
  options.noise_time_sigma = 0.002;
  return options;
}

TEST(SweepExecutorTest, ZeroPicksHardwareConcurrency) {
  const SweepExecutor executor(0);
  EXPECT_GE(executor.worker_count(), 1u);
  const SweepExecutor fixed(3);
  EXPECT_EQ(fixed.worker_count(), 3u);
}

TEST(SweepExecutorTest, ForEachRunsEveryIndexExactlyOnce) {
  const SweepExecutor executor(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  executor.for_each(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepExecutorTest, SerialModeRunsInlineInIndexOrder) {
  const SweepExecutor executor(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  executor.for_each(5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepExecutorTest, SingleTaskRunsInlineEvenWithWorkers) {
  const SweepExecutor executor(8);
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  executor.for_each(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(SweepExecutorTest, EmptyWorkListIsANoop) {
  const SweepExecutor executor(4);
  executor.for_each(0, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(SweepExecutorTest, FirstExceptionPropagatesAfterDraining) {
  const SweepExecutor executor(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      executor.for_each(64,
                        [&](std::size_t i) {
                          if (i == 17) {
                            throw ps::InvalidArgument("cell 17 failed");
                          }
                          completed.fetch_add(1,
                                              std::memory_order_relaxed);
                        }),
      ps::InvalidArgument);
  // The pool joined cleanly: no task is still in flight after the throw.
  EXPECT_LE(completed.load(), 63);
}

TEST(SweepExecutorTest, WorkerThreadsAreReusedAcrossBatches) {
  const SweepExecutor executor(4);
  EXPECT_FALSE(executor.pool_started());

  // Run many batches and collect every thread id that ever executed a
  // task. A pool that spawned fresh threads per for_each (the old
  // behavior) would accumulate new ids every batch; the persistent pool
  // can only ever show its fixed set of at most 4 workers.
  std::mutex mutex;
  std::set<std::thread::id> ids;
  constexpr int kBatches = 8;
  for (int batch = 0; batch < kBatches; ++batch) {
    executor.for_each(64, [&](std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  EXPECT_TRUE(executor.pool_started());
  EXPECT_FALSE(ids.empty());
  EXPECT_LE(ids.size(), 4u)
      << "more distinct worker threads than the pool size across "
      << kBatches << " batches — threads are not being reused";
  // The caller never runs tasks in pool mode.
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(SweepExecutorTest, SerialExecutorNeverStartsThePool) {
  const SweepExecutor executor(1);
  executor.for_each(16, [](std::size_t) {});
  EXPECT_FALSE(executor.pool_started());
  // A parallel-capable executor stays pool-free while every batch fits
  // inline (count <= 1 runs on the caller).
  const SweepExecutor wide(4);
  wide.for_each(1, [](std::size_t) {});
  EXPECT_FALSE(wide.pool_started());
}

TEST(SweepExecutorTest, MidGridExceptionCancelsWithoutDeadlock) {
  // The regression this guards: a mid-grid throw must cancel the
  // remaining cells (the atomic flag) while the queues drain to empty,
  // at every worker count, and the executor must stay usable.
  for (const std::size_t workers : {2u, 3u, 4u, 8u}) {
    const SweepExecutor executor(workers);
    constexpr std::size_t kCount = 96;
    std::atomic<int> executed{0};
    EXPECT_THROW(
        executor.for_each(kCount,
                          [&](std::size_t i) {
                            if (i == 13) {
                              throw ps::InvalidArgument("cell 13 failed");
                            }
                            executed.fetch_add(1,
                                               std::memory_order_relaxed);
                          }),
        ps::InvalidArgument)
        << "workers=" << workers;
    EXPECT_LT(executed.load(), static_cast<int>(kCount))
        << "workers=" << workers;

    // The pool survived the failed batch: a follow-up batch runs every
    // index exactly once on the same executor.
    std::vector<std::atomic<int>> hits(kCount);
    executor.for_each(kCount, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "workers=" << workers << " index=" << i;
    }
  }
}

TEST(SweepExecutorTest, EveryFailingCellStillDrainsDeterministically) {
  // Even when every task throws, the batch terminates and reports the
  // first failure by completion time.
  const SweepExecutor executor(4);
  EXPECT_THROW(executor.for_each(
                   32, [](std::size_t) { throw ps::Error("all cells die"); }),
               ps::Error);
  // Reusable afterwards.
  std::atomic<int> ran{0};
  executor.for_each(
      8, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(SweepExecutorTest, SerialExceptionPropagatesToo) {
  const SweepExecutor executor(1);
  EXPECT_THROW(executor.for_each(3,
                                 [](std::size_t i) {
                                   if (i == 1) {
                                     throw ps::Error("boom");
                                   }
                                 }),
               ps::Error);
}

TEST(SweepGridResultTest, AtRejectsPairsOutsideTheSweep) {
  SweepGridResult grid(
      1, {core::BudgetLevel::kIdeal},
      {core::PolicyKind::kStaticCaps, core::PolicyKind::kJobAdaptive});
  EXPECT_EQ(grid.mix_count(), 1u);
  EXPECT_EQ(grid.cell_count(), 2u);
  static_cast<void>(
      grid.at(0, core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps));
  EXPECT_THROW(static_cast<void>(grid.at(0, core::BudgetLevel::kMax,
                                         core::PolicyKind::kStaticCaps)),
               ps::NotFound);
  EXPECT_THROW(static_cast<void>(grid.at(0, core::BudgetLevel::kIdeal,
                                         core::PolicyKind::kMixedAdaptive)),
               ps::NotFound);
}

TEST(SweepGridResultTest, AtRejectsMixIndexOutOfRange) {
  SweepGridResult grid(2, {core::BudgetLevel::kIdeal},
                       {core::PolicyKind::kStaticCaps});
  static_cast<void>(
      grid.at(1, core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps));
  EXPECT_THROW(static_cast<void>(grid.at(2, core::BudgetLevel::kIdeal,
                                         core::PolicyKind::kStaticCaps)),
               ps::InvalidArgument);
}

TEST(SweepGridResultTest, DuplicateLevelsOrPoliciesAreRejected) {
  // A duplicate coordinate would alias two cells onto one slot and let
  // the sweep silently overwrite results; the index tables built at
  // construction detect it instead.
  EXPECT_THROW(
      SweepGridResult(1,
                      {core::BudgetLevel::kIdeal, core::BudgetLevel::kIdeal},
                      {core::PolicyKind::kStaticCaps}),
      ps::InvalidArgument);
  EXPECT_THROW(
      SweepGridResult(
          1, {core::BudgetLevel::kIdeal},
          {core::PolicyKind::kStaticCaps, core::PolicyKind::kJobAdaptive,
           core::PolicyKind::kStaticCaps}),
      ps::InvalidArgument);
}

/// Exact (bit-for-bit) equality between two cell results — the sweep's
/// determinism contract, so EXPECT_EQ on doubles is deliberate.
void expect_identical(const MixRunResult& a, const MixRunResult& b) {
  EXPECT_EQ(a.mix_name, b.mix_name);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.budget_watts, b.budget_watts);
  EXPECT_EQ(a.allocated_watts, b.allocated_watts);
  EXPECT_EQ(a.within_budget, b.within_budget);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const JobRunMetrics& ja = a.jobs[j];
    const JobRunMetrics& jb = b.jobs[j];
    EXPECT_EQ(ja.job_name, jb.job_name);
    EXPECT_EQ(ja.elapsed_seconds, jb.elapsed_seconds);
    EXPECT_EQ(ja.energy_joules, jb.energy_joules);
    EXPECT_EQ(ja.gflop, jb.gflop);
    EXPECT_EQ(ja.average_node_power_watts, jb.average_node_power_watts);
    EXPECT_EQ(ja.allocated_watts, jb.allocated_watts);
    EXPECT_EQ(ja.iteration_seconds, jb.iteration_seconds);
    EXPECT_EQ(ja.iteration_energy_joules, jb.iteration_energy_joules);
  }
}

TEST(SweepGridTest, ParallelGridMatchesSerialBitForBit) {
  const ExperimentDriver driver(small_options());
  const MixExperiment wasteful =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixExperiment imbalance =
      driver.prepare(core::make_mix(core::MixKind::kHighImbalance, 4));
  const MixExperiment* experiments[] = {&wasteful, &imbalance};
  const std::vector<core::BudgetLevel> levels = {core::BudgetLevel::kIdeal,
                                                 core::BudgetLevel::kMax};
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kStaticCaps, core::PolicyKind::kMixedAdaptive};

  const SweepGridResult serial =
      run_grid(SweepExecutor(1), experiments, levels, policies);
  const SweepGridResult parallel =
      run_grid(SweepExecutor(4), experiments, levels, policies);

  for (std::size_t m = 0; m < 2; ++m) {
    for (core::BudgetLevel level : levels) {
      for (core::PolicyKind policy : policies) {
        expect_identical(serial.at(m, level, policy),
                         parallel.at(m, level, policy));
      }
    }
  }
}

TEST(SweepGridTest, GoldenSavingsCsvIdenticalAcrossWorkerCounts) {
  const ExperimentDriver driver(small_options());
  const MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixExperiment* experiments[] = {&experiment};
  const std::vector<core::BudgetLevel> levels = {core::BudgetLevel::kIdeal,
                                                 core::BudgetLevel::kMax};
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kStaticCaps, core::PolicyKind::kJobAdaptive,
      core::PolicyKind::kMixedAdaptive};

  const auto savings_csv = [&](std::size_t workers) {
    const SweepGridResult grid =
        run_grid(SweepExecutor(workers), experiments, levels, policies);
    std::vector<SavingsRow> rows;
    for (core::BudgetLevel level : levels) {
      const MixRunResult& baseline =
          grid.at(0, level, core::PolicyKind::kStaticCaps);
      for (core::PolicyKind policy :
           {core::PolicyKind::kJobAdaptive,
            core::PolicyKind::kMixedAdaptive}) {
        rows.push_back(SavingsRow{
            experiment.mix_name(), policy, level,
            compute_savings(grid.at(0, level, policy), baseline)});
      }
    }
    std::ostringstream csv;
    write_savings_csv(csv, rows);
    return csv.str();
  };

  const std::string serial = savings_csv(1);
  EXPECT_EQ(serial, savings_csv(4));
  EXPECT_EQ(serial, savings_csv(3));
  EXPECT_EQ(serial, savings_csv(0));  // hardware_concurrency workers
  EXPECT_FALSE(serial.empty());
}

TEST(SweepGridTest, RepeatedCellRunsAreBitIdentical) {
  // A cell is a pure function of its coordinates: re-running it — which
  // reuses the thread's cell arena and the nodes' memoized solves — must
  // reproduce every bit. This is the regression net for state leaking
  // across cells through the reused buffers.
  const ExperimentDriver driver(small_options());
  const MixExperiment experiment =
      driver.prepare(core::make_mix(core::MixKind::kWastefulPower, 4));
  const MixRunResult first =
      experiment.run(core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive);
  // Interleave a different cell so the arena is dirtied in between.
  static_cast<void>(
      experiment.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps));
  const MixRunResult again =
      experiment.run(core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive);
  expect_identical(first, again);
}

}  // namespace
}  // namespace ps::analysis
