// Heterogeneous golden traces: a CPU+GPU run under HeteroAdaptive emits
// per-domain cap events ("c<h>" and "g<h>" keys on the same "caps"
// event), the JSONL round-trips byte-for-byte, and replay_allocations()
// reconstructs the GPU caps watt-for-watt against the live devices.
// CPU-only runs must keep emitting g-free events so the pre-hetero
// golden traces stay byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/coordination.hpp"
#include "obs/obs.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"

namespace ps::obs {
namespace {

kernel::WorkloadConfig gpu_heavy_config() {
  kernel::WorkloadConfig config;
  config.intensity = 4.0;
  config.gigabytes_per_iteration = 1.0;
  config.gpu_gigabytes_per_iteration = 60.0;
  config.gpu_intensity = 40.0;
  return config;
}

kernel::WorkloadConfig cpu_heavy_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  config.gpu_gigabytes_per_iteration = 4.0;
  return config;
}

/// Two hetero jobs on an 8-node GPU cluster — the brownout mix, traced.
struct HeteroMix {
  explicit HeteroMix(std::size_t hosts_per_job = 4) {
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * 2);
    std::vector<hw::NodeModel*> a;
    std::vector<hw::NodeModel*> b;
    for (std::size_t h = 0; h < hosts_per_job; ++h) {
      cluster->node(h).attach_gpu();
      cluster->node(h + hosts_per_job).attach_gpu();
      a.push_back(&cluster->node(h));
      b.push_back(&cluster->node(h + hosts_per_job));
    }
    jobs.push_back(std::make_unique<sim::JobSimulation>(
        "a-gpu-heavy", std::move(a), gpu_heavy_config()));
    jobs.push_back(std::make_unique<sim::JobSimulation>(
        "b-cpu-heavy", std::move(b), cpu_heavy_config()));
    ptrs = {jobs[0].get(), jobs[1].get()};
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
  std::vector<sim::JobSimulation*> ptrs;
};

constexpr double kBudgetWatts = 8.0 * 370.0;
constexpr std::size_t kIterations = 20;  // 4 coordination epochs

std::string deterministic_jsonl(const TraceSink& sink) {
  std::ostringstream out;
  write_jsonl(out, sink.events(deterministic_categories()));
  return out.str();
}

struct TracedHeteroRun {
  std::string jsonl;
  std::vector<core::EpochRecord> epochs;
  std::vector<std::string> job_names;
  std::vector<std::vector<double>> final_caps;      ///< [job][host]
  std::vector<std::vector<double>> final_gpu_caps;  ///< [job][host]
};

TracedHeteroRun run_hetero_traced() {
  HeteroMix mix;
  TraceSink sink;
  core::CoordinationOptions options;
  options.policy = core::PolicyKind::kHeteroAdaptive;
  options.obs.trace = &sink;
  core::CoordinationLoop loop(kBudgetWatts, options);
  const core::CoordinationResult result = loop.run(mix.ptrs, kIterations);

  TracedHeteroRun run;
  run.jsonl = deterministic_jsonl(sink);
  run.epochs = result.epochs;
  for (const sim::JobSimulation* job : mix.ptrs) {
    run.job_names.push_back(job->name());
    std::vector<double> caps;
    std::vector<double> gpu_caps;
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      caps.push_back(job->host_cap(h));
      gpu_caps.push_back(job->host_gpu_cap(h));
    }
    run.final_caps.push_back(std::move(caps));
    run.final_gpu_caps.push_back(std::move(gpu_caps));
  }
  return run;
}

TEST(HeteroTrace, CapsEventsCarryBothDomains) {
  const TracedHeteroRun run = run_hetero_traced();
  ASSERT_FALSE(run.jsonl.empty());
  // Both domains ride the same "caps" events: c-keys and g-keys.
  EXPECT_NE(run.jsonl.find("\"" + cap_key(0) + "\""), std::string::npos);
  EXPECT_NE(run.jsonl.find("\"" + gpu_cap_key(0) + "\""),
            std::string::npos);
  EXPECT_NE(run.jsonl.find("\"" + gpu_cap_key(3) + "\""),
            std::string::npos);
}

TEST(HeteroTrace, TraceIsByteIdenticalAcrossRuns) {
  const TracedHeteroRun first = run_hetero_traced();
  const TracedHeteroRun second = run_hetero_traced();
  EXPECT_EQ(first.jsonl, second.jsonl) << "hetero trace diverged";
}

TEST(HeteroTrace, JsonlRoundTripsByteForByte) {
  // encode -> parse -> encode identity: the serialized events survive a
  // read_jsonl/write_jsonl cycle unchanged, g-keys included.
  const TracedHeteroRun run = run_hetero_traced();
  std::istringstream in(run.jsonl);
  const std::vector<TraceEvent> events = read_jsonl(in);
  ASSERT_FALSE(events.empty());
  std::ostringstream out;
  write_jsonl(out, events);
  EXPECT_EQ(out.str(), run.jsonl);
}

TEST(HeteroTrace, ReplayReconstructsGpuCapsWattForWatt) {
  const TracedHeteroRun run = run_hetero_traced();
  std::istringstream in(run.jsonl);
  const std::vector<ReplayedAllocation> steps =
      replay_allocations(read_jsonl(in));
  ASSERT_EQ(steps.size(), run.epochs.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].tick, run.epochs[i].epoch);
    // total_watts() spans both domains, same as the live accounting.
    EXPECT_DOUBLE_EQ(steps[i].total_watts(),
                     run.epochs[i].allocated_watts);
    ASSERT_EQ(steps[i].jobs.size(), run.job_names.size());
    for (const ReplayedJobCaps& job : steps[i].jobs) {
      ASSERT_EQ(job.gpu_caps_watts.size(), job.caps_watts.size())
          << "hetero job lost its GPU row in step " << i;
    }
  }
  // The last step's caps equal what the live run left programmed on the
  // packages *and* the devices.
  const ReplayedAllocation& last = steps.back();
  for (std::size_t j = 0; j < run.job_names.size(); ++j) {
    EXPECT_EQ(last.jobs[j].job, run.job_names[j]);
    ASSERT_EQ(last.jobs[j].caps_watts.size(), run.final_caps[j].size());
    for (std::size_t h = 0; h < run.final_caps[j].size(); ++h) {
      EXPECT_DOUBLE_EQ(last.jobs[j].caps_watts[h], run.final_caps[j][h]);
      EXPECT_DOUBLE_EQ(last.jobs[j].gpu_caps_watts[h],
                       run.final_gpu_caps[j][h])
          << "job " << run.job_names[j] << " gpu host " << h;
    }
  }
}

TEST(HeteroTrace, CpuOnlyTraceStaysFreeOfGpuKeys) {
  // The byte-compatibility contract: a CPU-only run through the very
  // same loop emits no g-keys, so pre-hetero golden traces still match.
  sim::Cluster cluster(4);
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t h = 0; h < 4; ++h) {
    hosts.push_back(&cluster.node(h));
  }
  sim::JobSimulation job("cpu-only", std::move(hosts), config);
  std::vector<sim::JobSimulation*> jobs = {&job};

  TraceSink sink;
  core::CoordinationOptions options;
  options.obs.trace = &sink;
  core::CoordinationLoop loop(4.0 * 230.0, options);
  static_cast<void>(loop.run(jobs, kIterations));

  const std::string jsonl = deterministic_jsonl(sink);
  ASSERT_FALSE(jsonl.empty());
  EXPECT_NE(jsonl.find("\"" + cap_key(0) + "\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"" + gpu_cap_key(0) + "\""), std::string::npos);

  // And the replay of a single-domain trace keeps the GPU rows empty.
  std::istringstream in(jsonl);
  const std::vector<ReplayedAllocation> steps =
      replay_allocations(read_jsonl(in));
  ASSERT_FALSE(steps.empty());
  for (const ReplayedAllocation& step : steps) {
    for (const ReplayedJobCaps& caps : step.jobs) {
      EXPECT_TRUE(caps.gpu_caps_watts.empty());
    }
  }
}

}  // namespace
}  // namespace ps::obs
