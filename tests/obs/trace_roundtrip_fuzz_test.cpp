// Property tests for the trace wire format: encode→parse→encode identity
// over randomized events, strict-parser rejection of malformed lines, and
// the TraceSink ring/filter semantics. Seeded via the PS_FAULT_SEED
// convention so CI can sweep seeds and failures replay locally.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ps::obs {
namespace {

std::uint64_t scenario_seed() {
  if (const char* env = std::getenv("PS_FAULT_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 11;
}

/// Characters the serializer must escape plus plain text, so random
/// strings exercise \uXXXX control escapes, quotes, and backslashes.
std::string random_string(util::Rng& rng, std::size_t max_len) {
  static const std::string alphabet =
      "abcXYZ 0189_.-/\\\"\t\n\r\x01\x1f";
  std::string out;
  const std::size_t len = rng.uniform_index(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[static_cast<std::size_t>(
        rng.uniform_index(alphabet.size()))]);
  }
  return out;
}

TraceValue random_value(util::Rng& rng) {
  switch (rng.uniform_index(6)) {
    case 0:
      return rng.next();  // full-range uint64
    case 1:
      return rng.uniform(-1e6, 1e6);  // fractional double
    case 2:
      // Integral-valued double: serializes as digits, re-parses as uint64.
      return static_cast<double>(rng.uniform_index(1u << 20));
    case 3:
      return rng.uniform() < 0.5;
    case 4:
      return random_string(rng, 24);
    default:
      return std::uint64_t{0};
  }
}

TraceEvent random_event(util::Rng& rng) {
  TraceEvent event;
  event.tick = rng.next();
  event.category = rng.uniform() < 0.5 ? "coord" : random_string(rng, 8);
  event.name = random_string(rng, 12);
  const std::size_t args = rng.uniform_index(6);
  event.args.reserve(args);
  for (std::size_t i = 0; i < args; ++i) {
    // Keys must be unique within one event (the strict parser rejects
    // duplicates), so suffix the index.
    event.args.push_back(
        {random_string(rng, 6) + "_" + std::to_string(i), random_value(rng)});
  }
  return event;
}

/// encode→parse→encode is the identity on bytes. Full event equality after
/// one parse is NOT guaranteed (an integral-valued double re-parses as
/// uint64), but a second parse must be a fixed point.
TEST(TraceRoundTripFuzz, EncodeParseEncodeIsByteIdentity) {
  const std::uint64_t seed = scenario_seed();
  std::cout << "[ PS_FAULT_SEED ] " << seed << "\n";
  util::Rng rng(seed);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const TraceEvent event = random_event(rng);
    const std::string line = to_jsonl(event);
    TraceEvent parsed;
    ASSERT_NO_THROW(parsed = parse_jsonl(line)) << line;
    EXPECT_EQ(to_jsonl(parsed), line) << "iteration " << iteration;
    // Idempotence: once through the parser, the event is a fixed point.
    EXPECT_EQ(parse_jsonl(to_jsonl(parsed)), parsed);
  }
}

TEST(TraceRoundTripFuzz, StreamRoundTripPreservesEveryLine) {
  util::Rng rng(scenario_seed() ^ 0xABCDEF);
  TraceSink sink;
  for (int i = 0; i < 64; ++i) {
    sink.emit(random_event(rng));
  }
  std::ostringstream encoded;
  write_jsonl(encoded, sink.events());
  std::istringstream decoded_in(encoded.str());
  const std::vector<TraceEvent> decoded = read_jsonl(decoded_in);
  ASSERT_EQ(decoded.size(), sink.events().size());
  std::ostringstream re_encoded;
  write_jsonl(re_encoded, decoded);
  EXPECT_EQ(re_encoded.str(), encoded.str());
}

TEST(TraceParseTest, AcceptsCanonicalLine) {
  const TraceEvent event = parse_jsonl(
      R"({"tick":7,"cat":"coord","name":"epoch","args":{"budget_watts":2432.5,"emergency":false,"job":"a"}})");
  EXPECT_EQ(event.tick, 7u);
  EXPECT_EQ(event.category, "coord");
  EXPECT_EQ(event.name, "epoch");
  EXPECT_DOUBLE_EQ(arg_as_double(event, "budget_watts"), 2432.5);
  EXPECT_FALSE(arg_as_bool(event, "emergency"));
  EXPECT_EQ(arg_as_string(event, "job"), "a");
  EXPECT_TRUE(has_arg(event, "job"));
  EXPECT_FALSE(has_arg(event, "missing"));
  EXPECT_THROW((void)arg_as_uint(event, "budget_watts"), InvalidArgument);
  EXPECT_THROW((void)arg_as_double(event, "missing"), NotFound);
}

TEST(TraceParseTest, RejectsMalformedLines) {
  const char* const bad_lines[] = {
      "",                                                      // empty
      "not json",                                              //
      R"({"tick":1,"cat":"c","name":"n"})",                    // missing args
      R"({"cat":"c","tick":1,"name":"n","args":{}})",          // key order
      R"({"tick":1,"cat":"c","name":"n","args":{},"x":1})",    // unknown key
      R"({"tick":1,"cat":"c","name":"n","args":{"a":1,"a":2}})",  // dup key
      R"({"tick":1,"cat":"c","name":"n","args":{"a":nan}})",   // non-finite
      R"({"tick":-1,"cat":"c","name":"n","args":{}})",         // negative tick
      R"({"tick":1,"cat":"c","name":"n","args":{}} trailing)", // junk
      R"({"tick":1,"cat":"c","name":"n","args":{"a":"\q"}})",  // bad escape
  };
  for (const char* line : bad_lines) {
    EXPECT_THROW((void)parse_jsonl(line), InvalidArgument) << line;
  }
}

TEST(TraceParseTest, ControlCharactersRoundTripAsUnicodeEscapes) {
  TraceEvent event;
  event.tick = 1;
  event.category = "c";
  event.name = "ctrl";
  event.args.push_back({"s", std::string("a\x01\t\"\\\n")});
  const std::string line = to_jsonl(event);
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  EXPECT_NE(line.find("\\t"), std::string::npos);
  EXPECT_NE(line.find("\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_EQ(parse_jsonl(line), event);
}

TEST(TraceSinkTest, RingCapacityKeepsNewestEvents) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.emit(i, "c", "tick", {});
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_emitted(), 10u);
  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().tick, 6u);
  EXPECT_EQ(events.back().tick, 9u);
}

TEST(TraceSinkTest, CategoryFilterSelectsDeterministicStreams) {
  TraceSink sink;
  sink.emit(0, "coord", "epoch", {});
  sink.emit(1, "netio", "session_accepted", {});
  sink.emit(2, "daemon", "round", {});
  const std::string_view categories[] = {"coord", "daemon"};
  const std::vector<TraceEvent> filtered = sink.events(categories);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].name, "epoch");
  EXPECT_EQ(filtered[1].name, "round");
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_emitted(), 3u);  // clear drops events, not the count
}

}  // namespace
}  // namespace ps::obs
