// Concurrency contract of the metrics hot path: many writer threads
// hammer counters/gauges/histograms while a scraper thread snapshots and
// renders concurrently. Run under TSan in CI (ObsMetricsConcurrency is in
// the sanitizer job's filter); the assertions here pin down exact final
// totals — relaxed atomics may reorder, but no increment is ever lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ps::obs {
namespace {

TEST(ObsMetricsConcurrency, WritersNeverLoseIncrementsUnderScrape) {
  constexpr std::size_t kWriters = 8;
  constexpr std::uint64_t kPerWriter = 20'000;
  MetricsRegistry registry;
  static constexpr double kBounds[] = {1.0, 10.0, 100.0};
  // Register up front so writers only touch instrument atomics; also
  // exercises concurrent get-or-create below with per-thread lookups.
  registry.counter("stress.events");
  registry.histogram("stress.latency", kBounds);

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.snapshot();
      // Monotone reads only — a mid-flight scrape sees some prefix of
      // the increments, never garbage.
      for (const auto& [name, value] : snap.counters) {
        EXPECT_LE(value, kWriters * kPerWriter) << name;
      }
      std::ostringstream text;
      registry.render_text(text);
      EXPECT_FALSE(text.str().empty());
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      // Concurrent get-or-create is part of the contract.
      Counter& events = registry.counter("stress.events");
      Gauge& level = registry.gauge("stress.level");
      static constexpr double kThreadBounds[] = {1.0, 10.0, 100.0};
      Histogram& latency =
          registry.histogram("stress.latency", kThreadBounds);
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        events.add();
        level.set(static_cast<double>(w * kPerWriter + i));
        latency.observe(static_cast<double>(i % 128));
      }
    });
  }
  for (auto& thread : writers) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, kWriters * kPerWriter);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& latency = snap.histograms[0].second;
  EXPECT_EQ(latency.total(), kWriters * kPerWriter);
  EXPECT_EQ(latency.invalid, 0u);
  // Each writer observed i % 128 for i in [0, kPerWriter): reproduce the
  // exact per-bucket counts serially and require the concurrent run to
  // have lost nothing.
  std::vector<std::uint64_t> expected(4, 0);
  for (std::uint64_t i = 0; i < kPerWriter; ++i) {
    const std::uint64_t v = i % 128;
    const std::size_t bucket = v < 1 ? 0 : v < 10 ? 1 : v < 100 ? 2 : 3;
    expected[bucket] += kWriters;
  }
  EXPECT_EQ(latency.counts[0], expected[0]);
  EXPECT_EQ(latency.counts[1], expected[1]);
  EXPECT_EQ(latency.counts[2], expected[2]);
  EXPECT_EQ(latency.counts[3], expected[3]);
  // The gauge holds whatever write landed last; it must be one of the
  // values actually written, read without tearing.
  const double level = snap.gauges[0].second;
  EXPECT_GE(level, 0.0);
  EXPECT_LT(level, static_cast<double>(kWriters * kPerWriter));
  EXPECT_EQ(level, static_cast<double>(static_cast<std::uint64_t>(level)));
}

TEST(ObsMetricsConcurrency, TraceSinkAcceptsConcurrentEmitters) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 2'000;
  TraceSink sink;
  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&sink, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        sink.emit(i, "netio", "stress", {{"thread", std::uint64_t{t}}});
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_LE(sink.events().size(), kThreads * kPerThread);
    }
  });
  for (auto& thread : emitters) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(sink.size(), kThreads * kPerThread);
  EXPECT_EQ(sink.total_emitted(), kThreads * kPerThread);
}

}  // namespace
}  // namespace ps::obs
