// Metrics-registry semantics: get-or-create identity, kind collisions,
// name validation — and the histogram's bucket-edge contract (underflow,
// overflow, values exactly on an edge, non-finite observations).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ps::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2432.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2432.5);
  gauge.set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
}

TEST(HistogramTest, BucketEdgesAreLowerBounds) {
  Histogram histogram({1.0, 10.0, 100.0});
  // Underflow: strictly below the first edge.
  histogram.observe(0.0);
  histogram.observe(0.999999);
  // A value exactly on an edge opens that edge's bucket.
  histogram.observe(1.0);
  histogram.observe(9.999999);
  histogram.observe(10.0);
  // Overflow: at or above the last edge.
  histogram.observe(100.0);
  histogram.observe(1e12);

  const HistogramSnapshot snapshot = histogram.snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // bounds.size() + 1
  EXPECT_EQ(snapshot.counts[0], 2u);      // underflow
  EXPECT_EQ(snapshot.counts[1], 2u);      // [1, 10)
  EXPECT_EQ(snapshot.counts[2], 1u);      // [10, 100)
  EXPECT_EQ(snapshot.counts[3], 2u);      // [100, inf)
  EXPECT_EQ(snapshot.invalid, 0u);
  EXPECT_EQ(snapshot.total(), 7u);
}

TEST(HistogramTest, NegativeValuesLandInUnderflow) {
  Histogram histogram({0.0, 1.0});
  histogram.observe(-1e9);
  histogram.observe(-0.0001);
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_DOUBLE_EQ(snapshot.sum, -1e9 - 0.0001);
}

TEST(HistogramTest, NonFiniteObservationsAreCountedInvalid) {
  Histogram histogram({1.0});
  histogram.observe(std::numeric_limits<double>::quiet_NaN());
  histogram.observe(std::numeric_limits<double>::infinity());
  histogram.observe(-std::numeric_limits<double>::infinity());
  histogram.observe(0.5);
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.invalid, 3u);
  EXPECT_EQ(snapshot.total(), 1u);  // only the finite observation
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5);  // NaN/inf never poison the sum
}

TEST(HistogramTest, RejectsMalformedBounds) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);       // not increasing
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);       // decreasing
  EXPECT_THROW(Histogram({0.0, std::numeric_limits<double>::infinity()}),
               InvalidArgument);                              // non-finite
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableInstrument) {
  MetricsRegistry registry;
  Counter& first = registry.counter("stack.events");
  first.add(3);
  Counter& second = registry.counter("stack.events");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.value(), 3u);

  Gauge& gauge = registry.gauge("stack.level");
  gauge.set(7.0);
  EXPECT_EQ(&registry.gauge("stack.level"), &gauge);

  const double bounds[] = {1.0, 2.0};
  Histogram& histogram = registry.histogram("stack.latency", bounds);
  EXPECT_EQ(&registry.histogram("stack.latency", bounds), &histogram);
}

TEST(MetricsRegistryTest, CrossKindNamesCollide) {
  MetricsRegistry registry;
  registry.counter("metric.a");
  EXPECT_THROW(registry.gauge("metric.a"), InvalidArgument);
  const double bounds[] = {1.0};
  EXPECT_THROW(registry.histogram("metric.a", bounds), InvalidArgument);
  registry.gauge("metric.b");
  EXPECT_THROW(registry.counter("metric.b"), InvalidArgument);
}

TEST(MetricsRegistryTest, HistogramBoundsMustMatchOnReRegistration) {
  MetricsRegistry registry;
  const double bounds[] = {1.0, 2.0};
  registry.histogram("metric.h", bounds);
  const double other[] = {1.0, 3.0};
  EXPECT_THROW(registry.histogram("metric.h", other), InvalidArgument);
  const double fewer[] = {1.0};
  EXPECT_THROW(registry.histogram("metric.h", fewer), InvalidArgument);
}

TEST(MetricsRegistryTest, RejectsMalformedNames) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), InvalidArgument);
  EXPECT_THROW(registry.counter("has space"), InvalidArgument);
  EXPECT_THROW(registry.counter("has-dash"), InvalidArgument);
  EXPECT_THROW(registry.counter("quote\"name"), InvalidArgument);
  registry.counter("Fine_name.v2");  // the allowed alphabet
}

TEST(MetricsRegistryTest, SnapshotAndTextAreNameSorted) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("m.mid").set(3.5);
  const double bounds[] = {1.0};
  registry.histogram("h.lat", bounds).observe(0.5);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[1].first, "z.last");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 3.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.counts[0], 1u);

  std::ostringstream first;
  registry.render_text(first);
  std::ostringstream second;
  registry.render_text(second);
  EXPECT_EQ(first.str(), second.str());  // scrape is deterministic
  EXPECT_NE(first.str().find("a.first 2"), std::string::npos);
  EXPECT_NE(first.str().find("m.mid 3.500"), std::string::npos);
  EXPECT_NE(first.str().find("h.lat{bucket=underflow} 1"), std::string::npos);
}

}  // namespace
}  // namespace ps::obs
