// Golden-trace differential tests: the deterministic trace streams
// ("coord", "rm", "daemon") of a seeded run are byte-identical across
// repeated runs — including the daemon serving four real socket clients —
// and replay_allocations() rebuilds the watt-allocation sequence from the
// events alone, watt-for-watt against the live run. The nondeterministic
// "netio" stream is excluded by construction (obs::deterministic_categories).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sweep.hpp"
#include "core/coordination.hpp"
#include "net/agent.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"

namespace ps::obs {
namespace {

using std::chrono::milliseconds;

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-golden-" + tag + "-" + std::to_string(::getpid()) + ".sock";
}

kernel::WorkloadConfig wasteful_config() {
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  return config;
}

kernel::WorkloadConfig hungry_config() {
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  return config;
}

/// The standard four-job mix on its own 16-node cluster (same shape as
/// the brownout scenario, fault-free: this harness pins the *trace* down,
/// not the healing).
struct Mix {
  explicit Mix(std::size_t hosts_per_job = 4) {
    const std::vector<std::pair<std::string, kernel::WorkloadConfig>> spec =
        {{"a-wasteful", wasteful_config()},
         {"b-hungry", hungry_config()},
         {"c-wasteful", wasteful_config()},
         {"d-hungry", hungry_config()}};
    cluster = std::make_unique<sim::Cluster>(hosts_per_job * spec.size());
    for (std::size_t j = 0; j < spec.size(); ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t h = 0; h < hosts_per_job; ++h) {
        hosts.push_back(&cluster->node(j * hosts_per_job + h));
      }
      jobs.push_back(std::make_unique<sim::JobSimulation>(
          spec[j].first, std::move(hosts), spec[j].second));
    }
  }

  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
};

constexpr double kBudgetWatts = 16.0 * 230.0;  // 3680 W
constexpr std::size_t kIterations = 20;        // 4 coordination epochs

/// The brownout budget schedule: a drift at epoch 1, the 30% drop at 2.
std::vector<core::BudgetRevision> budget_schedule() {
  std::vector<core::BudgetRevision> schedule(2);
  schedule[0].epoch = 1;
  schedule[0].budget_watts = 0.9 * kBudgetWatts;
  schedule[0].at_epoch = 1;
  schedule[1].epoch = 2;
  schedule[1].budget_watts = 0.7 * kBudgetWatts;
  schedule[1].at_epoch = 2;
  schedule[1].emergency = true;
  return schedule;
}

std::string deterministic_jsonl(const TraceSink& sink) {
  std::ostringstream out;
  write_jsonl(out, sink.events(deterministic_categories()));
  return out.str();
}

struct TracedRun {
  std::string jsonl;
  std::vector<core::EpochRecord> epochs;
  std::vector<std::string> job_names;
  std::vector<std::vector<double>> final_caps;  ///< [job][host], live.
  std::size_t client_exchanges = 0;             ///< Daemon runs only.
};

TracedRun run_dynamic_traced(MetricsRegistry* registry) {
  Mix mix;
  std::vector<sim::JobSimulation*> jobs;
  for (const auto& job : mix.jobs) {
    jobs.push_back(job.get());
  }
  TraceSink sink;
  core::CoordinationOptions options;
  options.obs.trace = &sink;
  options.obs.metrics = registry;
  core::CoordinationLoop loop(kBudgetWatts, options);
  const core::CoordinationResult result =
      loop.run_dynamic(jobs, kIterations, {}, budget_schedule());

  TracedRun run;
  run.jsonl = deterministic_jsonl(sink);
  run.epochs = result.epochs;
  for (const sim::JobSimulation* job : jobs) {
    run.job_names.push_back(job->name());
    std::vector<double> caps;
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      caps.push_back(job->host_cap(h));
    }
    run.final_caps.push_back(std::move(caps));
  }
  return run;
}

/// Replays a serialized trace and checks the reconstruction against the
/// live outcome: every step's caps sum to the step's recorded total, and
/// the last step's caps equal the caps the live run left programmed.
void expect_replay_matches(const TracedRun& run,
                           std::uint64_t expected_final_epoch) {
  std::istringstream in(run.jsonl);
  const std::vector<TraceEvent> events = read_jsonl(in);
  const std::vector<ReplayedAllocation> steps = replay_allocations(events);
  ASSERT_FALSE(steps.empty());
  for (const ReplayedAllocation& step : steps) {
    ASSERT_EQ(step.jobs.size(), run.job_names.size());
    double total = 0.0;
    for (const ReplayedJobCaps& job : step.jobs) {
      for (const double cap : job.caps_watts) {
        total += cap;
      }
    }
    EXPECT_DOUBLE_EQ(total, step.total_watts());
  }
  const ReplayedAllocation& last = steps.back();
  EXPECT_DOUBLE_EQ(last.budget_watts, 0.7 * kBudgetWatts);
  EXPECT_EQ(last.budget_epoch, expected_final_epoch);
  for (std::size_t j = 0; j < run.job_names.size(); ++j) {
    EXPECT_EQ(last.jobs[j].job, run.job_names[j]);
    ASSERT_EQ(last.jobs[j].caps_watts.size(), run.final_caps[j].size());
    for (std::size_t h = 0; h < run.final_caps[j].size(); ++h) {
      EXPECT_DOUBLE_EQ(last.jobs[j].caps_watts[h], run.final_caps[j][h])
          << "job " << run.job_names[j] << " host " << h;
    }
  }
}

TEST(GoldenTrace, DynamicLoopTraceIsByteIdenticalAcrossRuns) {
  MetricsRegistry registry;
  const TracedRun first = run_dynamic_traced(&registry);
  const TracedRun second = run_dynamic_traced(nullptr);
  ASSERT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl) << "seeded coord trace diverged";

  // The RM instruments registered and observed the run.
  EXPECT_GT(registry.counter("rm.applies").value(), 0u);
  EXPECT_EQ(registry.counter("rm.budget_adopted").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("rm.budget_watts").value(),
                   0.7 * kBudgetWatts);
}

TEST(GoldenTrace, DynamicLoopReplayReconstructsAllocationsWattForWatt) {
  const TracedRun run = run_dynamic_traced(nullptr);
  // Per-epoch cross-check against the live telemetry first: one replayed
  // step per epoch, on the epoch clock, with the recorded watt totals.
  std::istringstream in(run.jsonl);
  const std::vector<ReplayedAllocation> steps =
      replay_allocations(read_jsonl(in));
  ASSERT_EQ(steps.size(), run.epochs.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].tick, run.epochs[i].epoch);
    EXPECT_DOUBLE_EQ(steps[i].total_watts(), run.epochs[i].allocated_watts);
    EXPECT_DOUBLE_EQ(steps[i].budget_watts, run.epochs[i].budget_watts);
    EXPECT_EQ(steps[i].budget_epoch, run.epochs[i].budget_epoch);
    EXPECT_EQ(steps[i].emergency, run.epochs[i].emergency_clamped);
  }
  expect_replay_matches(run, /*expected_final_epoch=*/2);
}

TracedRun run_daemon_traced(MetricsRegistry* registry,
                            const std::string& tag) {
  Mix mix;
  const std::string socket_path = unique_path(tag);
  TraceSink sink;
  net::DaemonOptions options;
  options.system_budget_watts = kBudgetWatts;
  options.node_tdp_watts = mix.cluster->node(0).tdp();
  options.uncappable_watts = mix.cluster->node(0).params().dram_watts;
  options.min_jobs = mix.jobs.size();
  options.tick_interval = milliseconds(20);
  options.budget_revisions = budget_schedule();
  options.reclaim_timeout = milliseconds(30'000);
  options.heartbeat_timeout = milliseconds(60'000);
  options.obs.trace = &sink;
  options.obs.metrics = registry;

  net::ClientOptions client_options;
  client_options.request_timeout = milliseconds(20'000);
  client_options.obs.metrics = registry;  // one registry, four clients

  std::vector<std::unique_ptr<net::RuntimeClient>> clients;
  std::vector<std::unique_ptr<net::CoordinatedAgent>> agents;
  for (std::size_t j = 0; j < mix.jobs.size(); ++j) {
    net::RuntimeClient::Connector connector = [socket_path] {
      return net::connect_unix(socket_path);
    };
    clients.push_back(std::make_unique<net::RuntimeClient>(
        std::move(connector), client_options));
    agents.push_back(std::make_unique<net::CoordinatedAgent>(
        *mix.jobs[j], *clients[j]));
  }

  net::PowerDaemon daemon(options);
  daemon.listen_unix(socket_path);
  std::thread serving([&daemon] { daemon.run(); });
  std::vector<std::thread> workers;
  for (auto& agent : agents) {
    workers.emplace_back([&agent] {
      const net::AgentResult result = agent->run(kIterations);
      EXPECT_EQ(result.iterations, kIterations);
      EXPECT_EQ(result.fallback_epochs, 0u);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  daemon.stop();
  serving.join();
  std::remove(socket_path.c_str());

  TracedRun run;
  run.jsonl = deterministic_jsonl(sink);
  for (const auto& job : mix.jobs) {
    run.job_names.push_back(job->name());
    std::vector<double> caps;
    for (std::size_t h = 0; h < job->host_count(); ++h) {
      caps.push_back(job->host_cap(h));
    }
    run.final_caps.push_back(std::move(caps));
  }
  for (const auto& client : clients) {
    run.client_exchanges += client->stats().exchanges;
  }
  return run;
}

TEST(GoldenTrace, DaemonTraceIsByteIdenticalAcrossRuns) {
  MetricsRegistry registry;
  const TracedRun first = run_daemon_traced(&registry, "a");
  const TracedRun second = run_daemon_traced(nullptr, "b");
  ASSERT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl) << "seeded daemon trace diverged";

  // Replay the socket run from its serialized trace alone.
  expect_replay_matches(first, /*expected_final_epoch=*/2);

  std::istringstream in(first.jsonl);
  const std::vector<TraceEvent> events = read_jsonl(in);
  // Both scheduled revisions were applied and traced.
  std::size_t revisions_applied = 0;
  for (const TraceEvent& event : events) {
    if (event.category == cat::kDaemon && event.name == "revision" &&
        arg_as_bool(event, "applied")) {
      ++revisions_applied;
    }
  }
  EXPECT_EQ(revisions_applied, 2u);

  // The shared registry saw every layer: one allocation count per
  // replayed round, and the clients' exchange counter matches the sum of
  // their own per-client stats.
  const std::vector<ReplayedAllocation> steps = replay_allocations(events);
  EXPECT_EQ(registry.counter("net.daemon.allocations").value(),
            steps.size());
  EXPECT_EQ(registry.counter("net.client.exchanges").value(),
            first.client_exchanges);
  EXPECT_EQ(registry.counter("net.client.exchange_failures").value(), 0u);
}

TEST(GoldenTrace, SweepMetricsCountCellsWithoutPerturbingResults) {
  constexpr std::size_t kCells = 64;
  const auto cell_value = [](std::size_t i) {
    return std::sqrt(1.5 * static_cast<double>(i)) +
           static_cast<double>(i % 7);
  };
  std::vector<double> serial_out(kCells, 0.0);
  analysis::SweepExecutor serial(1);
  serial.for_each(kCells,
                  [&](std::size_t i) { serial_out[i] = cell_value(i); });

  MetricsRegistry registry;
  Observability obs;
  obs.metrics = &registry;
  std::vector<double> parallel_out(kCells, 0.0);
  const analysis::SweepExecutor pool(4, obs);
  pool.for_each(kCells,
                [&](std::size_t i) { parallel_out[i] = cell_value(i); });

  EXPECT_EQ(serial_out, parallel_out);  // instrumentation never perturbs
  EXPECT_EQ(registry.counter("analysis.sweep.cells").value(), kCells);
  const MetricsSnapshot snap = registry.snapshot();
  bool found = false;
  for (const auto& [name, histogram] : snap.histograms) {
    if (name == "analysis.sweep.cell_seconds") {
      found = true;
      EXPECT_EQ(histogram.total(), kCells);
      EXPECT_EQ(histogram.invalid, 0u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ps::obs
