// End-to-end integration: scheduler -> characterization -> policy ->
// power manager -> measured runs, across the whole stack.
#include <gtest/gtest.h>

#include "core/budget.hpp"
#include "core/policies.hpp"
#include "rm/power_manager.hpp"
#include "rm/scheduler.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/characterization.hpp"
#include "runtime/controller.hpp"
#include "sim/cluster.hpp"

namespace ps {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<sim::Cluster>(8);

    rm::JobRequest wasteful;
    wasteful.name = "wasteful";
    wasteful.workload.intensity = 8.0;
    wasteful.workload.waiting_fraction = 0.5;
    wasteful.workload.imbalance = 3.0;
    wasteful.node_count = 4;

    rm::JobRequest compute;
    compute.name = "compute";
    compute.workload.intensity = 32.0;
    compute.node_count = 4;

    rm::Scheduler scheduler(8);
    scheduler.submit(wasteful);
    scheduler.submit(compute);
    const auto grants = scheduler.start_pending();
    ASSERT_EQ(grants.size(), 2u);

    for (std::size_t j = 0; j < 2; ++j) {
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t index : grants[j].node_indices) {
        hosts.push_back(&cluster_->node(index));
      }
      const rm::JobRequest& request = j == 0 ? wasteful : compute;
      jobs_.push_back(std::make_unique<sim::JobSimulation>(
          request.name, std::move(hosts), request.workload));
    }
    for (auto& job : jobs_) {
      characterizations_.push_back(runtime::characterize_job(*job, 4));
      job->reset_totals();
    }
  }

  core::PolicyContext context(double budget) const {
    core::PolicyContext context;
    context.system_budget_watts = budget;
    context.node_tdp_watts = cluster_->node(0).tdp();
    context.jobs = characterizations_;
    return context;
  }

  std::vector<sim::JobSimulation*> job_ptrs() {
    return {jobs_[0].get(), jobs_[1].get()};
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs_;
  std::vector<runtime::JobCharacterization> characterizations_;
};

TEST_F(EndToEndTest, FullPipelineAllocatesAndRuns) {
  const core::PowerBudgets budgets = core::select_budgets(characterizations_);
  const core::MixedAdaptivePolicy policy;
  const rm::PowerAllocation allocation =
      policy.allocate(context(budgets.ideal_watts));
  const rm::SystemPowerManager manager(budgets.ideal_watts);
  auto jobs = job_ptrs();
  manager.apply(jobs, allocation);
  EXPECT_TRUE(manager.allocation_fits(jobs));

  runtime::MonitorAgent monitor;
  const runtime::Controller controller(10);
  for (auto* job : jobs) {
    const runtime::JobReport report = controller.run(*job, monitor);
    EXPECT_EQ(report.iterations, 10u);
    EXPECT_GT(report.total_energy_joules, 0.0);
  }
}

TEST_F(EndToEndTest, RaplCountersAgreeWithReportedEnergy) {
  const core::MixedAdaptivePolicy policy;
  const core::PowerBudgets budgets = core::select_budgets(characterizations_);
  const rm::PowerAllocation allocation =
      policy.allocate(context(budgets.ideal_watts));
  auto jobs = job_ptrs();
  rm::SystemPowerManager(budgets.ideal_watts).apply(jobs, allocation);

  // read_energy_joules() is cumulative: snapshot before, diff after.
  double before = 0.0;
  for (std::size_t h = 0; h < jobs[0]->host_count(); ++h) {
    before += jobs[0]->host(h).read_energy_joules();
  }
  runtime::MonitorAgent monitor;
  const runtime::JobReport report =
      runtime::Controller(5).run(*jobs[0], monitor);
  double after = 0.0;
  for (std::size_t h = 0; h < jobs[0]->host_count(); ++h) {
    after += jobs[0]->host(h).read_energy_joules();
  }
  const double rapl_energy = after - before;
  // The simulator's noise jitters reported time (and hence energy)
  // slightly relative to the hardware counters; they agree closely.
  EXPECT_NEAR(rapl_energy, report.total_energy_joules,
              report.total_energy_joules * 0.02);
}

TEST_F(EndToEndTest, MixedBeatsStaticOnWastefulJob) {
  const core::PowerBudgets budgets = core::select_budgets(characterizations_);
  auto jobs = job_ptrs();
  runtime::MonitorAgent monitor;
  const runtime::Controller controller(10);

  const auto run_policy = [&](const core::Policy& policy) {
    const rm::PowerAllocation allocation =
        policy.allocate(context(budgets.ideal_watts));
    rm::SystemPowerManager(budgets.ideal_watts).apply(jobs, allocation);
    double elapsed = 0.0;
    for (auto* job : jobs) {
      job->reset_totals();
      elapsed += controller.run(*job, monitor).elapsed_seconds;
    }
    return elapsed;
  };

  const double static_time = run_policy(core::StaticCapsPolicy{});
  const double mixed_time = run_policy(core::MixedAdaptivePolicy{});
  EXPECT_LT(mixed_time, static_time);
}

TEST_F(EndToEndTest, BudgetLevelsProduceOrderedPerformance) {
  const core::PowerBudgets budgets = core::select_budgets(characterizations_);
  auto jobs = job_ptrs();
  runtime::MonitorAgent monitor;
  const runtime::Controller controller(8);
  const core::MixedAdaptivePolicy policy;

  std::vector<double> elapsed_by_level;
  for (const double budget :
       {budgets.min_watts, budgets.ideal_watts, budgets.max_watts}) {
    const rm::PowerAllocation allocation = policy.allocate(context(budget));
    rm::SystemPowerManager(budget).apply(jobs, allocation);
    double elapsed = 0.0;
    for (auto* job : jobs) {
      job->reset_totals();
      elapsed += controller.run(*job, monitor).elapsed_seconds;
    }
    elapsed_by_level.push_back(elapsed);
  }
  // More budget, same or better time.
  EXPECT_GE(elapsed_by_level[0], elapsed_by_level[1] - 1e-9);
  EXPECT_GE(elapsed_by_level[1], elapsed_by_level[2] - 1e-9);
}

}  // namespace
}  // namespace ps
