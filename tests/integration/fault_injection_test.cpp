// Failure-injection integration tests: stragglers, degraded parts, and
// stale characterizations — conditions a production deployment must
// absorb gracefully.
#include <gtest/gtest.h>

#include "core/coordination.hpp"
#include "runtime/characterization.hpp"
#include "runtime/controller.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"

namespace ps {
namespace {

/// A cluster where one node is a pathological straggler (very leaky part
/// that throttles hard under any cap).
std::vector<std::unique_ptr<hw::NodeModel>> straggler_nodes(
    std::size_t count, std::size_t straggler, double straggler_eta) {
  std::vector<std::unique_ptr<hw::NodeModel>> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    nodes.push_back(std::make_unique<hw::NodeModel>(
        static_cast<hw::NodeId>(i), i == straggler ? straggler_eta : 1.0));
  }
  return nodes;
}

std::vector<hw::NodeModel*> raw(
    const std::vector<std::unique_ptr<hw::NodeModel>>& nodes) {
  std::vector<hw::NodeModel*> pointers;
  for (const auto& node : nodes) {
    pointers.push_back(node.get());
  }
  return pointers;
}

TEST(FaultInjectionTest, BalancerFundsTheStraggler) {
  // A balanced job with one leaky node: the straggler IS the critical
  // path, so the balancer must move power toward it.
  auto nodes = straggler_nodes(8, 3, 1.6);
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  sim::JobSimulation job("straggler", raw(nodes), config);
  const double budget = 8.0 * 195.0;

  for (std::size_t h = 0; h < 8; ++h) {
    job.set_host_cap(h, 195.0);
  }
  const double uniform_time = job.run_iteration().iteration_seconds;

  runtime::PowerBalancerAgent agent(budget);
  static_cast<void>(runtime::Controller(5, 2).run(job, agent));
  const double balanced_time = job.run_iteration().iteration_seconds;

  EXPECT_GT(job.host_cap(3), 195.0 + 10.0);  // straggler funded
  EXPECT_LT(balanced_time, uniform_time);
  EXPECT_LE(job.total_allocated_power(), budget + 8.0 * 0.5);
}

TEST(FaultInjectionTest, CoordinationAbsorbsMidRunDegradation) {
  // A critical-path node degrades mid-run (e.g. thermal problem =>
  // leakier silicon, emulated by swapping in a degraded node set on the
  // same coordination loop). The waiting hosts' slack funds the degraded
  // node's higher power need after re-convergence.
  kernel::WorkloadConfig config;
  config.intensity = 32.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  auto healthy = straggler_nodes(8, 7, 1.0);  // all nominal
  sim::JobSimulation job("job", raw(healthy), config);
  std::vector<sim::JobSimulation*> jobs{&job};

  const double budget = 8.0 * 195.0;
  core::CoordinationLoop loop(budget);
  static_cast<void>(loop.run(jobs, 20));
  const double healthy_cap = job.host_cap(7);  // critical host

  // Degrade critical node 7 and keep coordinating.
  auto degraded = straggler_nodes(8, 7, 1.4);
  sim::JobSimulation degraded_job("job", raw(degraded), config);
  std::vector<sim::JobSimulation*> degraded_jobs{&degraded_job};
  const core::CoordinationResult after = loop.run(degraded_jobs, 20);
  EXPECT_TRUE(after.converged);
  EXPECT_GT(degraded_job.host_cap(7), healthy_cap + 8.0);
  EXPECT_LE(after.epochs.back().allocated_watts, budget + 8.0 * 0.5);
}

TEST(FaultInjectionTest, StaleCharacterizationStillRespectsBudget) {
  // Characterize one workload, then run a very different one under the
  // stale allocation: performance assumptions break, but the budget
  // invariant must hold regardless.
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  kernel::WorkloadConfig characterized;
  characterized.intensity = 8.0;
  characterized.waiting_fraction = 0.5;
  characterized.imbalance = 3.0;
  sim::JobSimulation job("job", hosts, characterized);
  const runtime::JobCharacterization data =
      runtime::characterize_job(job, 3);

  // Apply balancer-needed caps, then switch the workload underneath.
  for (std::size_t h = 0; h < 4; ++h) {
    job.set_host_cap(h, data.balancer.host_needed_power_watts[h]);
  }
  kernel::WorkloadConfig different;
  different.intensity = 32.0;  // every host now compute-bound
  job.set_workload(different);
  const sim::IterationResult result = job.run_iteration();
  double drawn = 0.0;
  for (const auto& host : result.hosts) {
    drawn += host.average_power_watts;
  }
  // Caps keep holding: total draw stays within the stale allocation.
  EXPECT_LE(drawn, job.total_allocated_power() + 1.0);
}

TEST(FaultInjectionTest, BudgetBelowFloorDegradesGracefully) {
  sim::Cluster cluster(4);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job("job", hosts, kernel::WorkloadConfig{});
  // A budget no hardware can honor: everything lands on the floor and
  // the run still completes.
  runtime::PowerBalancerAgent agent(4.0 * 100.0);
  const runtime::JobReport report =
      runtime::Controller(3, 2).run(job, agent);
  EXPECT_EQ(report.iterations, 3u);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_DOUBLE_EQ(job.host_cap(h), cluster.node(h).min_cap());
  }
}

}  // namespace
}  // namespace ps
