// Scale-invariance properties: the reproduction's conclusions must not
// depend on how many nodes per job the harness runs — per-node budgets
// and policy orderings stay put from 4 to 16 nodes per job (the paper
// uses 100; the benches verify that scale).
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/mixes.hpp"

namespace ps {
namespace {

class ScaleInvarianceTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  analysis::ExperimentOptions options() const {
    analysis::ExperimentOptions options;
    options.nodes_per_job = GetParam();
    options.iterations = 12;
    options.characterization_iterations = 3;
    options.hardware_variation = false;
    options.noise_time_sigma = 0.002;
    return options;
  }
};

TEST_P(ScaleInvarianceTest, PerNodeBudgetsAreScaleFree) {
  analysis::ExperimentDriver driver(options());
  analysis::MixExperiment experiment = driver.prepare(
      core::make_mix(core::MixKind::kWastefulPower, GetParam()));
  const double hosts = static_cast<double>(experiment.total_hosts());
  const core::PowerBudgets& budgets = experiment.budgets();
  // Homogeneous nodes: the per-node budget levels are scale-independent
  // constants of the workload mix (within search tolerance).
  EXPECT_NEAR(budgets.min_watts / hosts, 155.8, 2.0);
  EXPECT_NEAR(budgets.max_watts / hosts, 227.5, 3.0);
  EXPECT_GT(budgets.ideal_watts / hosts, 165.0);
  EXPECT_LT(budgets.ideal_watts / hosts, 195.0);
}

TEST_P(ScaleInvarianceTest, MarkerDHoldsAtEveryScale) {
  analysis::ExperimentDriver driver(options());
  analysis::MixExperiment experiment = driver.prepare(
      core::make_mix(core::MixKind::kWastefulPower, GetParam()));
  const analysis::MixRunResult baseline =
      experiment.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const analysis::SavingsSummary mixed = analysis::compute_savings(
      experiment.run(core::BudgetLevel::kMax,
                     core::PolicyKind::kMixedAdaptive),
      baseline);
  const analysis::SavingsSummary job_adaptive = analysis::compute_savings(
      experiment.run(core::BudgetLevel::kMax,
                     core::PolicyKind::kJobAdaptive),
      baseline);
  EXPECT_GT(mixed.energy.mean, job_adaptive.energy.mean);
  EXPECT_GT(mixed.energy.mean, 0.05);
  EXPECT_LT(mixed.energy.mean, 0.14);
}

TEST_P(ScaleInvarianceTest, SystemAwarePoliciesFitEveryBudget) {
  analysis::ExperimentDriver driver(options());
  analysis::MixExperiment experiment = driver.prepare(
      core::make_mix(core::MixKind::kRandomLarge, GetParam()));
  for (core::BudgetLevel level : core::all_budget_levels()) {
    for (core::PolicyKind policy :
         {core::PolicyKind::kStaticCaps, core::PolicyKind::kMinimizeWaste,
          core::PolicyKind::kMixedAdaptive}) {
      EXPECT_TRUE(experiment.run(level, policy).within_budget)
          << core::to_string(policy) << " at " << core::to_string(level)
          << " with " << GetParam() << " nodes/job";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NodesPerJob, ScaleInvarianceTest,
                         ::testing::Values(4, 8, 16),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ps
