// Reproduction checks for the paper's headline claims and annotated
// markers, at reduced scale (the bench harnesses rerun them at full
// scale). Shapes, orderings, and crossovers are asserted — not the
// authors' absolute testbed numbers.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/mixes.hpp"
#include "hw/quartz_spec.hpp"

namespace ps {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  static analysis::ExperimentDriver& driver() {
    static analysis::ExperimentDriver instance([] {
      analysis::ExperimentOptions options;
      options.nodes_per_job = 8;
      options.iterations = 20;
      options.characterization_iterations = 3;
      options.hardware_variation = false;
      options.noise_time_sigma = 0.002;
      return options;
    }());
    return instance;
  }

  static analysis::MixExperiment& experiment(core::MixKind kind) {
    static std::map<core::MixKind, analysis::MixExperiment> cache;
    auto it = cache.find(kind);
    if (it == cache.end()) {
      it = cache.emplace(kind, driver().prepare(core::make_mix(kind, 8)))
               .first;
    }
    return it->second;
  }
};

TEST_F(PaperClaimsTest, TableIIIBudgetBandsPerNode) {
  // Scaled per-node: min ~152-195, ideal ~158-200, max ~220-235 (the
  // paper's 900-node values divided by 900: 151-186 / 160-197 / 232).
  for (core::MixKind kind : core::all_mix_kinds()) {
    const auto& budgets = experiment(kind).budgets();
    const double hosts =
        static_cast<double>(experiment(kind).total_hosts());
    const double min_node = budgets.min_watts / hosts;
    const double ideal_node = budgets.ideal_watts / hosts;
    const double max_node = budgets.max_watts / hosts;
    EXPECT_GE(min_node, 150.0) << core::to_string(kind);
    EXPECT_LE(min_node, 196.0) << core::to_string(kind);
    EXPECT_GE(ideal_node, min_node * 0.99) << core::to_string(kind);
    EXPECT_GE(max_node, 215.0) << core::to_string(kind);
    EXPECT_LE(max_node, 240.0) << core::to_string(kind);
  }
}

TEST_F(PaperClaimsTest, NeedUsedPowerHasHighestMinBudget) {
  // Only NeedUsedPower is composed entirely of jobs that need what they
  // use; its min budget per node (~186 W) towers over the others (~156).
  const double need_used =
      experiment(core::MixKind::kNeedUsedPower).budgets().min_watts /
      static_cast<double>(
          experiment(core::MixKind::kNeedUsedPower).total_hosts());
  for (core::MixKind kind :
       {core::MixKind::kHighImbalance, core::MixKind::kWastefulPower,
        core::MixKind::kHighPower}) {
    const double other =
        experiment(kind).budgets().min_watts /
        static_cast<double>(experiment(kind).total_hosts());
    EXPECT_GT(need_used, other + 15.0) << core::to_string(kind);
  }
}

TEST_F(PaperClaimsTest, MarkerA_AdaptivePoliciesDrawLessAtMaxBudget) {
  auto& exp = experiment(core::MixKind::kWastefulPower);
  const auto baseline =
      exp.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const auto mixed =
      exp.run(core::BudgetLevel::kMax, core::PolicyKind::kMixedAdaptive);
  EXPECT_LT(mixed.power_fraction_of_budget(),
            baseline.power_fraction_of_budget() - 0.02);
}

TEST_F(PaperClaimsTest, MarkerB_JobAdaptiveUnderUtilizesAtIdeal) {
  auto& exp = experiment(core::MixKind::kWastefulPower);
  const auto job_adaptive =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive);
  const auto mixed =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kMixedAdaptive);
  // JobAdaptive strands budget in jobs that cannot use it; MixedAdaptive
  // shares it across jobs and so draws closer to the full budget.
  EXPECT_LT(job_adaptive.power_fraction_of_budget(),
            mixed.power_fraction_of_budget() - 0.003);
}

TEST_F(PaperClaimsTest, MarkerC_MinimizeWasteBeatsJobAdaptiveOnNeedUsed) {
  auto& exp = experiment(core::MixKind::kNeedUsedPower);
  const auto baseline =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  const auto waste =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kMinimizeWaste);
  const auto job_adaptive =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive);
  const auto waste_savings = analysis::compute_savings(waste, baseline);
  const auto ja_savings = analysis::compute_savings(job_adaptive, baseline);
  EXPECT_GT(waste_savings.time.mean, ja_savings.time.mean);
}

TEST_F(PaperClaimsTest, MarkerD_MixedBeatsJobAdaptiveEnergyAtMax) {
  auto& exp = experiment(core::MixKind::kWastefulPower);
  const auto baseline =
      exp.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);
  const auto mixed = analysis::compute_savings(
      exp.run(core::BudgetLevel::kMax, core::PolicyKind::kMixedAdaptive),
      baseline);
  const auto job_adaptive = analysis::compute_savings(
      exp.run(core::BudgetLevel::kMax, core::PolicyKind::kJobAdaptive),
      baseline);
  EXPECT_GT(mixed.energy.mean, job_adaptive.energy.mean + 0.01);
  // Headline: "up to 11% savings in compute energy" — at reduced scale
  // the same cell shows substantial (>5%) savings.
  EXPECT_GT(mixed.energy.mean, 0.05);
}

TEST_F(PaperClaimsTest, HeadlineTimeSavingsOnImbalancedMixes) {
  // "Up to 7% reduction in system time dedicated to jobs": the largest
  // time savings appear where application awareness pays off.
  auto& exp = experiment(core::MixKind::kHighImbalance);
  const auto baseline =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  const auto mixed = analysis::compute_savings(
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kMixedAdaptive),
      baseline);
  EXPECT_GT(mixed.time.mean, 0.03);
  EXPECT_LT(mixed.time.mean, 0.15);
}

TEST_F(PaperClaimsTest, NeedUsedPowerShowsNoEnergyOpportunity) {
  // Section VI-D: the NeedUsedPower mix has no energy savings to offer —
  // every watt is needed.
  auto& exp = experiment(core::MixKind::kNeedUsedPower);
  const auto baseline =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  const auto mixed = analysis::compute_savings(
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kMixedAdaptive),
      baseline);
  EXPECT_LT(mixed.energy.mean, 0.03);
  EXPECT_GT(mixed.energy.mean, -0.03);
}

TEST_F(PaperClaimsTest, JobAdaptiveEqualsMixedOnSingleJobMix) {
  // HighImbalance has one job, so cross-job sharing cannot matter:
  // JobAdaptive and MixedAdaptive allocate nearly identically.
  auto& exp = experiment(core::MixKind::kHighImbalance);
  const auto baseline =
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kStaticCaps);
  const auto ja = analysis::compute_savings(
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kJobAdaptive),
      baseline);
  const auto ma = analysis::compute_savings(
      exp.run(core::BudgetLevel::kIdeal, core::PolicyKind::kMixedAdaptive),
      baseline);
  EXPECT_NEAR(ja.time.mean, ma.time.mean, 0.01);
}

TEST_F(PaperClaimsTest, EnergySavingsGrowWithBudget) {
  // Takeaway 1: savings increase with the amount of surplus power.
  auto& exp = experiment(core::MixKind::kWastefulPower);
  double previous = -1.0;
  for (core::BudgetLevel level :
       {core::BudgetLevel::kMin, core::BudgetLevel::kMax}) {
    const auto baseline =
        exp.run(level, core::PolicyKind::kStaticCaps);
    const auto mixed = analysis::compute_savings(
        exp.run(level, core::PolicyKind::kMixedAdaptive), baseline);
    EXPECT_GT(mixed.energy.mean, previous);
    previous = mixed.energy.mean;
  }
}

TEST_F(PaperClaimsTest, ExperimentTdpFootnoteMatches) {
  // Table III footnote: "TDP of all CPUs is 216 kW" (900 x 2 x 120 W).
  EXPECT_DOUBLE_EQ(hw::QuartzSpec::kExperimentTdpW, 216000.0);
}

}  // namespace
}  // namespace ps
