// A day in the life of a cluster operator: run a week of Poisson job
// traffic through the event-driven facility under an aggressive power
// budget, archive one job's GEOPM-style report and the site's
// characterization store, and print the facility dashboard.
//
//   ./cluster_operator [--nodes N]
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "facility/facility_manager.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/characterization_io.hpp"
#include "runtime/controller.hpp"
#include "runtime/report_writer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  std::size_t nodes = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--nodes" && i + 1 < argc) {
      nodes = std::strtoul(argv[++i], nullptr, 10);
    }
  }

  // --- The facility week ---
  sim::Cluster cluster(nodes);
  facility::JobTraceOptions traffic;
  traffic.horizon_hours = 24.0 * 7.0;
  traffic.arrivals_per_hour = 0.5;
  traffic.min_nodes = nodes / 8;
  traffic.max_nodes = nodes / 2;
  util::Rng rng(0x0b5);
  const auto trace = facility::generate_job_trace(rng, traffic);

  facility::FacilityOptions options;
  options.horizon_hours = traffic.horizon_hours;
  options.policy = core::PolicyKind::kMixedAdaptive;
  options.system_budget_watts =
      0.75 * cluster.node(0).tdp() * static_cast<double>(nodes);
  facility::FacilityManager manager(cluster, options);
  const facility::FacilityResult week = manager.run(trace);

  std::printf("Facility dashboard (%zu nodes, 1 week, MixedAdaptive, "
              "budget %s):\n", nodes,
              util::format_watts(options.system_budget_watts).c_str());
  std::printf("  jobs submitted / completed: %zu / %zu\n", trace.size(),
              week.completed_jobs);
  std::printf("  mean queue wait:            %.2f h\n",
              week.mean_wait_hours());
  std::printf("  mean / peak power:          %s / %s\n",
              util::format_watts(week.mean_power_watts()).c_str(),
              util::format_watts(week.peak_power_watts()).c_str());
  std::printf("  node utilization:           %.0f%%\n",
              week.mean_utilization() * 100.0);
  std::printf("  energy consumed:            %.1f MJ\n\n",
              week.total_energy_joules / 1e6);

  // --- Archive a characterization, as a site would between runs ---
  kernel::WorkloadConfig workload;
  workload.intensity = 8.0;
  workload.waiting_fraction = 0.5;
  workload.imbalance = 2.0;
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job("nightly-characterization", hosts, workload);
  runtime::CharacterizationStore store;
  store.put(workload.name(), runtime::characterize_job(job, 5));
  std::ostringstream archive;
  runtime::write_store_csv(archive, store, {workload.name()});
  std::printf("Characterization archive (%s):\n%s\n",
              workload.name().c_str(), archive.str().c_str());

  // --- And one job report, GEOPM style ---
  job.reset_totals();
  runtime::MonitorAgent monitor;
  const runtime::JobReport report =
      runtime::Controller(10).run(job, monitor);
  std::printf("%s\n", runtime::to_text_report(report).c_str());
  return 0;
}
