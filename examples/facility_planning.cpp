// Facility planning scenario (the paper's introduction): a site procured
// 1.35 MW but its cluster averages ~0.83 MW. How aggressively can the
// power budget be shrunk — freeing procurement for more nodes — before
// quality of service collapses, and how much does policy choice move
// that frontier?
//
//   ./facility_planning [--nodes N]
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "analysis/experiment.hpp"
#include "sim/facility_trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;

  std::size_t nodes_per_job = 12;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--nodes" && i + 1 < argc) {
      nodes_per_job =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }

  // Step 1: the facility's historical draw, as in Fig. 1.
  util::Rng rng(0xfac);
  const sim::FacilityTrace trace =
      sim::generate_facility_trace(sim::FacilityTraceParams{}, rng);
  std::printf("Historical facility draw: mean %.2f MW of %.2f MW procured "
              "(%.0f%% headroom)\n\n",
              trace.mean_mw(), trace.params.peak_rating_mw,
              (1.0 - trace.mean_mw() / trace.params.peak_rating_mw) * 100.0);

  // Step 2: sweep system budgets from aggressive to conservative on a
  // representative mixed workload and quantify the QoS cost per policy.
  analysis::ExperimentOptions options;
  options.nodes_per_job = nodes_per_job;
  options.iterations = 30;
  options.characterization_iterations = 4;
  analysis::ExperimentDriver driver(options);
  analysis::MixExperiment experiment = driver.prepare(
      core::make_mix(core::MixKind::kRandomLarge, nodes_per_job));

  const double max_budget = experiment.budgets().max_watts;
  std::printf("Sweeping budgets on the RandomLarge mix "
              "(%zu hosts; 100%% = conservative max of %.1f kW):\n\n",
              experiment.total_hosts(), max_budget / 1000.0);

  // Baseline: the conservative budget under StaticCaps.
  const analysis::MixRunResult reference =
      experiment.run(core::BudgetLevel::kMax, core::PolicyKind::kStaticCaps);

  util::TextTable table;
  table.add_column("Budget", util::Align::kRight, 0);
  table.add_column("Policy", util::Align::kLeft);
  table.add_column("slowdown vs max", util::Align::kRight, 2);
  table.add_column("energy vs max", util::Align::kRight, 2);
  table.add_column("nodes fundable*", util::Align::kRight, 0);

  const core::PowerBudgets budgets = experiment.budgets();
  struct Level {
    const char* label;
    core::BudgetLevel level;
    double watts;
  };
  const Level levels[] = {
      {"min", core::BudgetLevel::kMin, budgets.min_watts},
      {"ideal", core::BudgetLevel::kIdeal, budgets.ideal_watts},
      {"max", core::BudgetLevel::kMax, budgets.max_watts},
  };
  for (const Level& level : levels) {
    for (core::PolicyKind kind : {core::PolicyKind::kStaticCaps,
                                  core::PolicyKind::kMixedAdaptive}) {
      const analysis::MixRunResult run = experiment.run(level.level, kind);
      const double slowdown =
          run.mean_elapsed_seconds() / reference.mean_elapsed_seconds() -
          1.0;
      const double energy_ratio =
          run.total_energy_joules() / reference.total_energy_joules() - 1.0;
      // Power freed relative to the conservative budget buys extra nodes
      // at the per-node max characterized draw.
      const double freed = max_budget - level.watts;
      const double extra_nodes =
          freed / (max_budget / static_cast<double>(experiment.total_hosts()));
      table.begin_row();
      table.add_cell(util::format_fixed(level.watts / 1000.0, 1) + " kW");
      table.add_cell(std::string(core::to_string(kind)));
      table.add_percent(slowdown);
      table.add_percent(energy_ratio);
      table.add_cell(util::format_fixed(extra_nodes, 0));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("* nodes fundable: extra nodes the freed procurement could "
              "power at the\n  conservative per-node budget.\n\n");
  std::printf("Reading: at the ideal budget, MixedAdaptive gives up far "
              "less performance\nthan StaticCaps for the same freed "
              "procurement — the paper's case for\ncoordinated, "
              "application-aware power management.\n");
  return 0;
}
