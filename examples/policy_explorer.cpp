// Interactive-ish CLI for exploring the experiment grid: pick a workload
// mix, a budget level, and a policy; see the allocation and measured
// outcome next to the StaticCaps baseline.
//
//   ./policy_explorer <mix> <budget> <policy> [--nodes N]
//   ./policy_explorer WastefulPower max MixedAdaptive
//   ./policy_explorer --list
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "analysis/experiment.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace ps;

std::optional<core::MixKind> parse_mix(std::string_view name) {
  for (core::MixKind kind : core::all_mix_kinds()) {
    if (util::iequals(name, core::to_string(kind))) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<core::BudgetLevel> parse_budget(std::string_view name) {
  for (core::BudgetLevel level : core::all_budget_levels()) {
    if (util::iequals(name, core::to_string(level))) {
      return level;
    }
  }
  return std::nullopt;
}

std::optional<core::PolicyKind> parse_policy(std::string_view name) {
  for (core::PolicyKind kind : core::all_policy_kinds()) {
    if (util::iequals(name, core::to_string(kind))) {
      return kind;
    }
  }
  return std::nullopt;
}

void print_usage() {
  std::printf("usage: policy_explorer <mix> <budget> <policy> [--nodes N]\n");
  std::printf("  mixes:   ");
  for (core::MixKind kind : core::all_mix_kinds()) {
    std::printf("%s ", core::to_string(kind).data());
  }
  std::printf("\n  budgets: min ideal max\n  policies: ");
  for (core::PolicyKind kind : core::all_policy_kinds()) {
    std::printf("%s ", core::to_string(kind).data());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string_view(argv[1]) == "--list") {
    print_usage();
    return 0;
  }
  if (argc < 4) {
    print_usage();
    return 1;
  }
  const auto mix = parse_mix(argv[1]);
  const auto budget = parse_budget(argv[2]);
  const auto policy = parse_policy(argv[3]);
  if (!mix || !budget || !policy) {
    print_usage();
    return 1;
  }
  std::size_t nodes = 12;
  for (int i = 4; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--nodes" && i + 1 < argc) {
      nodes = std::strtoul(argv[++i], nullptr, 10);
    }
  }

  analysis::ExperimentOptions options;
  options.nodes_per_job = nodes;
  options.iterations = 30;
  options.characterization_iterations = 4;
  analysis::ExperimentDriver driver(options);
  analysis::MixExperiment experiment =
      driver.prepare(core::make_mix(*mix, nodes));

  const analysis::MixRunResult baseline =
      experiment.run(*budget, core::PolicyKind::kStaticCaps);
  const analysis::MixRunResult run = experiment.run(*budget, *policy);

  std::printf("%s @ %s budget (%.1f kW for %zu hosts), policy %s\n\n",
              core::to_string(*mix).data(), core::to_string(*budget).data(),
              run.budget_watts / 1000.0, experiment.total_hosts(),
              core::to_string(*policy).data());

  util::TextTable table;
  table.add_column("Job", util::Align::kLeft);
  table.add_column("alloc W/node", util::Align::kRight, 1);
  table.add_column("drawn W/node", util::Align::kRight, 1);
  table.add_column("time vs static", util::Align::kRight, 2);
  table.add_column("energy vs static", util::Align::kRight, 2);
  for (std::size_t j = 0; j < run.jobs.size(); ++j) {
    const auto& job = run.jobs[j];
    const auto& base = baseline.jobs[j];
    const double hosts =
        job.allocated_watts > 0.0
            ? static_cast<double>(
                  experiment.characterizations()[j].host_count)
            : 1.0;
    table.begin_row();
    table.add_cell(job.job_name);
    table.add_number(job.allocated_watts / hosts);
    table.add_number(job.average_node_power_watts);
    table.add_percent(job.elapsed_seconds / base.elapsed_seconds - 1.0);
    table.add_percent(job.energy_joules / base.energy_joules - 1.0);
  }
  std::printf("%s\n", table.to_string().c_str());

  const analysis::SavingsSummary savings =
      analysis::compute_savings(run, baseline);
  std::printf("Mix-level vs StaticCaps:  time %+.2f%%, energy %+.2f%%, "
              "EDP %+.2f%%, FLOPS/W %+.2f%%\n",
              -savings.time.mean * 100.0, -savings.energy.mean * 100.0,
              -savings.edp.mean * 100.0,
              savings.flops_per_watt.mean * 100.0);
  std::printf("Power: %.1f%% of budget%s\n",
              run.power_fraction_of_budget() * 100.0,
              run.within_budget ? "" : "  (EXCEEDS BUDGET)");
  return 0;
}
