// Quickstart: the whole stack in one file.
//
// Builds a small simulated cluster, schedules two jobs, characterizes
// them with the GEOPM-style runtime, lets the paper's MixedAdaptive
// policy distribute a system-wide power budget, and measures the result
// against the StaticCaps baseline.
//
//   ./quickstart
#include <cstdio>

#include "core/budget.hpp"
#include "core/policies.hpp"
#include "rm/power_manager.hpp"
#include "rm/scheduler.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/characterization.hpp"
#include "runtime/controller.hpp"
#include "sim/cluster.hpp"
#include "util/strings.hpp"

int main() {
  using namespace ps;

  // 1. A cluster of 8 identical nodes (pass a VariationModel for
  //    Quartz-like manufacturing spread).
  sim::Cluster cluster(8);

  // 2. Two jobs: one imbalanced (half its hosts idle at a barrier most of
  //    each iteration) and one compute-hungry.
  rm::JobRequest wasteful;
  wasteful.name = "wasteful";
  wasteful.workload.intensity = 8.0;        // FLOPs/byte
  wasteful.workload.waiting_fraction = 0.5; // half the hosts wait
  wasteful.workload.imbalance = 3.0;        // critical path does 3x work
  wasteful.node_count = 4;

  rm::JobRequest hungry;
  hungry.name = "hungry";
  hungry.workload.intensity = 32.0;  // compute-bound
  hungry.node_count = 4;

  // 3. The resource manager grants nodes FIFO.
  rm::Scheduler scheduler(cluster.size());
  scheduler.submit(wasteful);
  scheduler.submit(hungry);
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
  for (const auto& grant : scheduler.start_pending()) {
    std::vector<hw::NodeModel*> hosts;
    for (std::size_t index : grant.node_indices) {
      hosts.push_back(&cluster.node(index));
    }
    const auto& request =
        grant.job_name == "wasteful" ? wasteful : hungry;
    jobs.push_back(std::make_unique<sim::JobSimulation>(
        grant.job_name, std::move(hosts), request.workload));
  }

  // 4. Pre-characterize each job: a monitor run (uncapped power) and a
  //    power-balancer run (minimum power that preserves performance).
  std::vector<runtime::JobCharacterization> characterizations;
  for (auto& job : jobs) {
    characterizations.push_back(runtime::characterize_job(*job, 5));
    job->reset_totals();
    std::printf("%-8s  uncapped %s/node, needed %s/node\n",
                job->name().c_str(),
                util::format_watts(
                    characterizations.back().monitor.average_node_power_watts)
                    .c_str(),
                util::format_watts(characterizations.back()
                                       .balancer.average_node_power_watts)
                    .c_str());
  }

  // 5. Derive the paper's budget levels and pick the "ideal" one.
  const core::PowerBudgets budgets = core::select_budgets(characterizations);
  std::printf("\nBudgets: min %s, ideal %s, max %s\n",
              util::format_watts(budgets.min_watts).c_str(),
              util::format_watts(budgets.ideal_watts).c_str(),
              util::format_watts(budgets.max_watts).c_str());

  core::PolicyContext context;
  context.system_budget_watts = budgets.ideal_watts;
  context.node_tdp_watts = cluster.node(0).tdp();
  context.jobs = characterizations;

  // 6. Run under StaticCaps, then under the paper's MixedAdaptive.
  std::vector<sim::JobSimulation*> job_ptrs{jobs[0].get(), jobs[1].get()};
  const rm::SystemPowerManager manager(budgets.ideal_watts);
  runtime::MonitorAgent monitor;
  const runtime::Controller controller(50);

  for (core::PolicyKind kind :
       {core::PolicyKind::kStaticCaps, core::PolicyKind::kMixedAdaptive}) {
    manager.apply(job_ptrs, core::make_policy(kind)->allocate(context));
    double elapsed = 0.0;
    double energy = 0.0;
    for (auto* job : job_ptrs) {
      job->reset_totals();
      const runtime::JobReport report = controller.run(*job, monitor);
      elapsed += report.elapsed_seconds;
      energy += report.total_energy_joules;
    }
    std::printf("%-14s total job time %s, energy %.1f kJ\n",
                core::to_string(kind).data(),
                util::format_seconds(elapsed).c_str(), energy / 1000.0);
  }
  std::printf("\nMixedAdaptive moves the wasteful job's unneeded watts to "
              "the hungry job:\nsame budget, less time, less energy.\n");
  return 0;
}
