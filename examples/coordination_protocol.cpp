// The RM <-> runtime coordination protocol, end to end: two "job
// runtimes" and one "resource manager" exchange versioned messages over
// an endpoint (stand-in for a socket or shared memory), repeating the
// sample -> allocate -> apply cycle the paper's conclusion proposes.
//
//   ./coordination_protocol
#include <cstdio>

#include "core/endpoint.hpp"
#include "core/policies.hpp"
#include "sim/cluster.hpp"
#include "util/strings.hpp"

int main() {
  using namespace ps;

  sim::Cluster cluster(8);
  kernel::WorkloadConfig wasteful;
  wasteful.intensity = 8.0;
  wasteful.waiting_fraction = 0.5;
  wasteful.imbalance = 3.0;
  kernel::WorkloadConfig hungry;
  hungry.intensity = 32.0;
  std::vector<hw::NodeModel*> a;
  std::vector<hw::NodeModel*> b;
  for (std::size_t i = 0; i < 4; ++i) {
    a.push_back(&cluster.node(i));
    b.push_back(&cluster.node(i + 4));
  }
  sim::JobSimulation job_a("wasteful", a, wasteful);
  sim::JobSimulation job_b("hungry", b, hungry);
  const double budget = 8.0 * 195.0;

  core::Endpoint endpoint;
  const core::MixedAdaptivePolicy policy;

  std::printf("RM <-> runtime protocol demo, budget %s, 3 epochs\n\n",
              util::format_watts(budget).c_str());
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    // --- Runtime side: measure and post samples. ---
    endpoint.post_sample(core::make_sample(job_a, epoch));
    endpoint.post_sample(core::make_sample(job_b, epoch));

    // --- RM side: drain samples, allocate, post policies. ---
    std::vector<core::SampleMessage> samples;
    while (auto sample = endpoint.receive_sample()) {
      samples.push_back(std::move(*sample));
    }
    const core::PolicyContext context = core::context_from_samples(
        budget, cluster.node(0).tdp(),
        cluster.node(0).params().dram_watts, samples);
    const rm::PowerAllocation allocation = policy.allocate(context);
    for (const core::PolicyMessage& message :
         core::make_policy_messages(allocation, samples, epoch)) {
      endpoint.post_policy(message);
    }

    // --- Runtime side: apply the received caps. ---
    while (auto message = endpoint.receive_policy()) {
      sim::JobSimulation& job =
          message->job_name == "wasteful" ? job_a : job_b;
      core::apply_policy_message(job, *message);
    }

    std::printf("epoch %llu: wasteful %s  (waiting host cap %s), hungry "
                "%s\n",
                static_cast<unsigned long long>(epoch),
                util::format_watts(job_a.total_allocated_power()).c_str(),
                util::format_watts(job_a.host_cap(0)).c_str(),
                util::format_watts(job_b.total_allocated_power()).c_str());
  }

  std::printf("\nOne sample message on the wire:\n\n%s\n",
              core::serialize(core::make_sample(job_a, 4)).c_str());
  std::printf("Everything the MixedAdaptive policy needs crosses the "
              "endpoint in two small,\nversioned messages per job per "
              "epoch — the protocol the paper's conclusion\ncalls for.\n");
  return 0;
}
