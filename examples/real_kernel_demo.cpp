// Runs the *real* arithmetic-intensity microbenchmark (the paper's
// synthetic kernel, Section IV / Fig. 2) natively on this machine:
// threads stand in for MPI ranks, a spin barrier for MPI_Barrier.
// Sweeps computational intensity and vector width, then demonstrates the
// waiting-rank slack the power balancer exploits.
//
//   ./real_kernel_demo [threads]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "kernel/arithmetic_kernel.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const std::size_t cores =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  const std::size_t threads = argc > 1
                                  ? std::strtoul(argv[1], nullptr, 10)
                                  : std::clamp<std::size_t>(cores, 1, 4);

  std::printf("Arithmetic-intensity kernel, %zu threads, native "
              "execution (%zu hardware threads)\n\n", threads, cores);

  // Sweep 1: intensity x width throughput (the kernel behind Fig. 3).
  util::TextTable sweep;
  sweep.add_column("FLOPs/byte", util::Align::kRight, 2);
  sweep.add_column("width", util::Align::kLeft);
  sweep.add_column("GFLOPS", util::Align::kRight, 2);
  sweep.add_column("GB/s", util::Align::kRight, 2);
  for (double intensity : {0.25, 1.0, 4.0, 16.0}) {
    for (hw::VectorWidth width :
         {hw::VectorWidth::kScalar, hw::VectorWidth::kYmm256}) {
      kernel::KernelOptions options;
      options.threads = threads;
      options.elements_per_thread = 1 << 16;
      options.iterations = 8;
      options.config.intensity = intensity;
      options.config.vector_width = width;
      const kernel::KernelReport report =
          kernel::run_arithmetic_kernel(options);
      sweep.begin_row();
      sweep.add_number(intensity);
      sweep.add_cell(std::string(hw::to_string(width)));
      sweep.add_number(report.achieved_gflops);
      sweep.add_number(report.total_gigabytes / report.elapsed_seconds);
    }
  }
  std::printf("%s\n", sweep.to_string().c_str());

  // Sweep 2: waiting-rank slack (Fig. 2's structure, measured).
  std::printf("Waiting-rank slack (fraction of each iteration waiting "
              "ranks spend\npolling at the barrier — the headroom the "
              "power balancer harvests):\n\n");
  util::TextTable slack;
  slack.add_column("waiting ranks", util::Align::kRight, 0);
  slack.add_column("imbalance", util::Align::kRight, 0);
  slack.add_column("slack", util::Align::kRight, 1);
  for (double waiting : {0.25, 0.5}) {
    for (double imbalance : {2.0, 3.0}) {
      kernel::KernelOptions options;
      // At least 4 ranks so a 25% waiting fraction rounds to >= 1 rank.
      options.threads = std::max<std::size_t>(threads, 4);
      options.elements_per_thread = 1 << 15;
      options.iterations = 12;
      options.config.intensity = 8.0;
      options.config.waiting_fraction = waiting;
      options.config.imbalance = imbalance;
      const kernel::KernelReport report =
          kernel::run_arithmetic_kernel(options);
      slack.begin_row();
      slack.add_percent(waiting);
      slack.add_cell(util::format_fixed(imbalance, 0) + "x");
      slack.add_percent(report.waiting_slack_fraction());
    }
  }
  std::printf("%s\n", slack.to_string().c_str());
  std::printf("With m-fold imbalance, waiting ranks idle ~ (m-1)/m of the "
              "iteration —\nenergy burned polling that an application-aware"
              " policy reclaims.\n");
  if (cores < 4) {
    std::printf("(Note: this host has only %zu hardware thread(s); "
                "oversubscription inflates\nthe measured slack.)\n", cores);
  }
  return 0;
}
