#!/usr/bin/env python3
"""Enforce the committed line-coverage ratchet for src/core and src/net.

CI builds with --coverage, runs ctest, and collects line coverage; this
script then fails the job if any tracked group fell below its committed
floor in tools/coverage_baseline.txt.  The floor only moves up: when a
PR raises coverage, re-measure and bump the baseline in the same PR.

Two input modes, same aggregation:

    # CI: gcovr's JSON summary (per-file line_covered/line_total)
    python3 tools/check_coverage.py --summary coverage.json \
        --baseline tools/coverage_baseline.txt

    # Local (no gcovr needed): raw `gcov --json-format` output
    gcov --json-format --object-directory <dir> <objects...>
    python3 tools/check_coverage.py --gcov-glob '*.gcov.json.gz' \
        --baseline tools/coverage_baseline.txt

The gcov mode unions line hits across translation units (a header line
is covered if ANY including TU executed it), which matches how gcovr
merges, so the two modes agree on the committed numbers.

Baseline format: `<group-prefix> <min-line-percent>` per line, '#'
comments allowed.  Group prefixes are repo-relative directory prefixes
such as `src/core`.  Exits non-zero on any group below its floor, on a
group with no measured lines (a filter typo would otherwise pass
vacuously), and prints every group either way.
"""

from __future__ import annotations

import argparse
import glob
import gzip
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def parse_baseline(path: Path) -> dict[str, float]:
    groups: dict[str, float] = {}
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            sys.exit(f"{path}: malformed baseline line: {raw!r}")
        groups[parts[0].rstrip("/")] = float(parts[1])
    if not groups:
        sys.exit(f"{path}: no baseline groups")
    return groups


def normalize(filename: str) -> str | None:
    """Repo-relative path for a measured file, or None if external."""
    path = Path(filename)
    if path.is_absolute():
        try:
            path = path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            return None  # system header or generated file outside the repo
    return str(path)


def group_of(filename: str, groups: dict[str, float]) -> str | None:
    for prefix in groups:
        if filename == prefix or filename.startswith(prefix + "/"):
            return prefix
    return None


def totals_from_summary(summary_path: Path,
                        groups: dict[str, float]) -> dict[str, list[int]]:
    """Aggregate gcovr --json-summary per-file counts into groups."""
    totals = {g: [0, 0] for g in groups}  # group -> [covered, total]
    data = json.loads(summary_path.read_text())
    for entry in data.get("files", []):
        name = normalize(entry["filename"])
        if name is None:
            continue
        group = group_of(name, groups)
        if group is None:
            continue
        totals[group][0] += int(entry["line_covered"])
        totals[group][1] += int(entry["line_total"])
    return totals


def totals_from_gcov(pattern: str,
                     groups: dict[str, float]) -> dict[str, list[int]]:
    """Union per-line hit counts across gcov JSON files, then aggregate."""
    # file -> line_number -> hit (True once any TU executed it)
    lines: dict[str, dict[int, bool]] = {}
    paths = sorted(glob.glob(pattern, recursive=True))
    if not paths:
        sys.exit(f"no gcov JSON files match {pattern!r}")
    for gcov_path in paths:
        opener = gzip.open if gcov_path.endswith(".gz") else open
        with opener(gcov_path, "rt") as handle:
            data = json.load(handle)
        for entry in data.get("files", []):
            name = normalize(entry["file"])
            if name is None or group_of(name, groups) is None:
                continue
            per_file = lines.setdefault(name, {})
            for line in entry.get("lines", []):
                number = int(line["line_number"])
                per_file[number] = per_file.get(number, False) or \
                    int(line["count"]) > 0
    totals = {g: [0, 0] for g in groups}
    for name, per_file in lines.items():
        group = group_of(name, groups)
        assert group is not None
        totals[group][0] += sum(1 for hit in per_file.values() if hit)
        totals[group][1] += len(per_file)
    return totals


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--summary", type=Path,
                        help="gcovr --json-summary output")
    source.add_argument("--gcov-glob",
                        help="glob for gcov --json-format *.gcov.json[.gz]")
    parser.add_argument("--baseline", type=Path, required=True)
    args = parser.parse_args()

    groups = parse_baseline(args.baseline)
    if args.summary is not None:
        totals = totals_from_summary(args.summary, groups)
    else:
        totals = totals_from_gcov(args.gcov_glob, groups)

    failed = False
    for group, floor in sorted(groups.items()):
        covered, total = totals[group]
        if total == 0:
            print(f"FAIL {group}: no measured lines (filter mismatch?)")
            failed = True
            continue
        percent = 100.0 * covered / total
        status = "ok  " if percent >= floor else "FAIL"
        if percent < floor:
            failed = True
        print(f"{status} {group}: {percent:.1f}% line coverage "
              f"({covered}/{total} lines, floor {floor:.1f}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
