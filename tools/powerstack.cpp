// The `powerstack` command-line tool: one front door to the stack.
//
//   powerstack signals
//       List the PlatformIO signals and controls.
//   powerstack characterize --workload ymm-i8-w50-x2 [--nodes N]
//       Run monitor + balancer characterization; print the CSV a site
//       would archive.
//   powerstack budgets --mix WastefulPower [--nodes N]
//       Derive the Table III budget levels for a mix.
//   powerstack balance --workload NAME --agent power_balancer [--nodes N]
//       Run a job under any runtime agent; show caps and speedup.
//   powerstack facility [--nodes N] [--hours H] [--policy P]
//       Run the event-driven facility over a Poisson job trace.
//   powerstack daemon --budget W [--socket PATH | --tcp PORT] [--root]
//       Serve the RM power daemon until interrupted (or --duration S);
//       --root additionally accepts per-rack aggregator sessions.
//   powerstack aggregator --parent PATH --rack NAME [--socket PATH]
//       Serve one rack's aggregation tier of the daemon tree.
//   powerstack agent --workload NAME [--socket PATH | --tcp PORT]
//       Run a job under daemon coordination over a real socket.
//   powerstack trace FILE [--replay] [--chrome OUT]
//       Summarize a JSONL trace; --replay reconstructs the allocation
//       sequence from events alone, --chrome exports trace_event JSON.
//   powerstack validate [--quick]
//       Run the reproduction self-check (exit 0 iff all claims hold).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>
#include <thread>

#include "analysis/validation.hpp"
#include "obs/obs.hpp"
#include "obs/replay.hpp"
#include "core/budget_governor.hpp"
#include "core/mixes.hpp"
#include "ha/replicator.hpp"
#include "ha/standby.hpp"
#include "net/agent.hpp"
#include "net/aggregator.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "kernel/proxies.hpp"
#include "facility/facility_manager.hpp"
#include "runtime/agent_registry.hpp"
#include "runtime/characterization_io.hpp"
#include "runtime/controller.hpp"
#include "runtime/platform_io.hpp"
#include "sim/facility_trace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace ps;

struct Args {
  std::string command;
  std::string workload = "ymm-i8-w50-x2";
  std::string mix = "WastefulPower";
  std::string policy = "MixedAdaptive";
  std::string agent = "power_balancer";
  std::size_t nodes = 8;
  double hours = 72.0;
  bool quick = false;
  bool backfill = false;
  // daemon / agent options
  std::string socket_path = "/tmp/powerstack-daemon.sock";
  int tcp_port = -1;  ///< -1: use the Unix socket.
  double budget_watts = 0.0;
  std::size_t min_jobs = 1;
  std::size_t iterations = 50;
  double duration_seconds = 0.0;  ///< daemon only; 0 = serve forever.
  std::string snapshot_path;  ///< daemon only; empty = no write-ahead.
  std::string job_name;
  /// facility: fraction of facility headroom granted to the cluster per
  /// step (a dynamic budget from a synthetic metering trace). 0 = fixed.
  double budget_share = 0.0;
  /// daemon: serve under a scheduled brownout (budget revisions derived
  /// from the synthetic facility trace, scaled to --budget).
  bool brownout = false;
  /// daemon: serve as the HA primary — replicate state to a standby
  /// over this listener (separate from the client-facing socket).
  std::string ha_socket;
  /// daemon: run as a hot standby replicating from this primary
  /// replication socket; promote and serve if its lease lapses.
  std::string standby_of;
  /// daemon: failover lease in milliseconds (shared by both HA roles).
  std::size_t lease_ms = 1000;
  /// agent: comma-separated failover endpoint list (unix paths, or bare
  /// port numbers for 127.0.0.1 TCP), primary first.
  std::string endpoints;
  /// daemon/agent: write the run's trace (JSONL, all streams) here.
  std::string trace_path;
  /// daemon/agent: dump the metrics registry to stdout on exit.
  bool metrics = false;
  /// daemon: also accept rack-aggregate frames (the tree root).
  bool root = false;
  /// aggregator: upstream daemon endpoint (unix path, or a bare port
  /// number for 127.0.0.1 TCP) and the rack this tier speaks for.
  std::string parent;
  std::string rack = "rack0";
  /// daemon/aggregator: event-loop readiness backend (poll | epoll);
  /// empty = PS_EVENT_BACKEND / platform default.
  std::string backend;
  /// trace: the file to inspect, plus report options.
  std::string trace_file;
  bool replay = false;
  std::string chrome_path;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      args.workload = argv[++i];
    } else if (arg == "--mix" && i + 1 < argc) {
      args.mix = argv[++i];
    } else if (arg == "--policy" && i + 1 < argc) {
      args.policy = argv[++i];
    } else if (arg == "--agent" && i + 1 < argc) {
      args.agent = argv[++i];
    } else if (arg == "--nodes" && i + 1 < argc) {
      args.nodes = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--hours" && i + 1 < argc) {
      args.hours = std::strtod(argv[++i], nullptr);
    } else if (arg == "--backfill") {
      args.backfill = true;
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--socket" && i + 1 < argc) {
      args.socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      args.tcp_port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--budget" && i + 1 < argc) {
      args.budget_watts = std::strtod(argv[++i], nullptr);
    } else if (arg == "--min-jobs" && i + 1 < argc) {
      args.min_jobs = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--iterations" && i + 1 < argc) {
      args.iterations = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--duration" && i + 1 < argc) {
      args.duration_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      args.snapshot_path = argv[++i];
    } else if (arg == "--job" && i + 1 < argc) {
      args.job_name = argv[++i];
    } else if (arg == "--budget-share" && i + 1 < argc) {
      args.budget_share = std::strtod(argv[++i], nullptr);
    } else if (arg == "--brownout") {
      args.brownout = true;
    } else if (arg == "--ha-socket" && i + 1 < argc) {
      args.ha_socket = argv[++i];
    } else if (arg == "--standby-of" && i + 1 < argc) {
      args.standby_of = argv[++i];
    } else if (arg == "--lease" && i + 1 < argc) {
      args.lease_ms = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--endpoints" && i + 1 < argc) {
      args.endpoints = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (arg == "--metrics") {
      args.metrics = true;
    } else if (arg == "--root") {
      args.root = true;
    } else if (arg == "--parent" && i + 1 < argc) {
      args.parent = argv[++i];
    } else if (arg == "--rack" && i + 1 < argc) {
      args.rack = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      args.backend = argv[++i];
    } else if (arg == "--replay") {
      args.replay = true;
    } else if (arg == "--chrome" && i + 1 < argc) {
      args.chrome_path = argv[++i];
    } else if (!arg.starts_with("--") && args.trace_file.empty()) {
      args.trace_file = arg;  // positional: the trace command's FILE
    }
  }
  return args;
}

int usage() {
  std::printf(
      "usage: powerstack <command> [options]\n"
      "  signals                         list PlatformIO signals/controls\n"
      "  characterize --workload NAME    monitor+balancer characterization\n"
      "                                  (NAME: ymm-i8-w50-x2 or a proxy: stream,\n"
      "                                   dgemm, spmv, stencil, graph, mc)\n"
      "  budgets --mix NAME              Table III budget levels for a mix\n"
      "  balance --agent NAME            run a job under any runtime agent\n"
      "  facility [--hours H] [--backfill] [--budget-share F]\n"
      "                                  event-driven facility run; with\n"
      "                                  --budget-share, the cluster budget\n"
      "                                  tracks F of facility headroom\n"
      "                                  (~0.003 suits 8 nodes)\n"
      "  daemon --budget W [--min-jobs N] [--duration S] [--snapshot PATH]\n"
      "         [--root]\n"
      "                                  serve the RM power daemon; with\n"
      "                                  --snapshot, restarts rehydrate jobs;\n"
      "                                  --brownout schedules budget drops\n"
      "                                  --ha-socket PATH replicates state\n"
      "                                  to a standby; --standby-of PATH\n"
      "                                  runs AS the standby (promotes when\n"
      "                                  the --lease MS lease lapses)\n"
      "  aggregator --parent ENDPOINT --rack NAME [--min-jobs N]\n"
      "                                  serve one rack of the daemon tree:\n"
      "                                  batch local samples upward, fan the\n"
      "                                  rack budget back out as per-job caps\n"
      "  agent --workload NAME [--job NAME] [--iterations N]\n"
      "                                  run a job under daemon coordination;\n"
      "                                  --endpoints A,B,... fails over down\n"
      "                                  an ordered endpoint list\n"
      "  trace FILE [--replay] [--chrome OUT]\n"
      "                                  summarize a JSONL trace; --replay\n"
      "                                  reconstructs the watt allocations\n"
      "                                  from the events alone\n"
      "  validate [--quick]              reproduction self-check\n"
      "common options: --nodes N --policy NAME\n"
      "transport options (daemon/agent): --socket PATH | --tcp PORT\n"
      "event loop (daemon/aggregator): --backend poll|epoll\n"
      "observability (daemon/agent): --trace PATH --metrics\n");
  return 2;
}

std::optional<net::EventBackend> parse_backend(const std::string& name) {
  if (name.empty()) {
    return net::default_event_backend();
  }
  if (util::iequals(name, "poll")) {
    return net::EventBackend::kPoll;
  }
  if (util::iequals(name, "epoll")) {
    return net::EventBackend::kEpoll;
  }
  return std::nullopt;
}

/// An endpoint operand: a bare port number dials 127.0.0.1 TCP, anything
/// else is a Unix socket path.
net::RuntimeClient::TransportConnector endpoint_connector(
    const std::string& endpoint) {
  if (endpoint.find_first_not_of("0123456789") == std::string::npos &&
      !endpoint.empty()) {
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(endpoint.c_str(), nullptr, 10));
    return [port] { return net::make_transport(net::connect_tcp(port)); };
  }
  return [path = endpoint] {
    return net::make_transport(net::connect_unix(path));
  };
}

std::optional<core::PolicyKind> parse_policy(std::string_view name) {
  for (core::PolicyKind kind : core::all_policy_kinds()) {
    if (util::iequals(name, core::to_string(kind))) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<core::MixKind> parse_mix(std::string_view name) {
  for (core::MixKind kind : core::all_mix_kinds()) {
    if (util::iequals(name, core::to_string(kind))) {
      return kind;
    }
  }
  return std::nullopt;
}

/// Workload names accept proxy handles ("stream", "dgemm", ...) as well
/// as raw configuration names ("ymm-i8-w50-x2").
kernel::WorkloadConfig resolve_workload(const std::string& name) {
  for (const kernel::WorkloadProxy& proxy : kernel::workload_proxies()) {
    if (util::iequals(proxy.name, name)) {
      return proxy.config;
    }
  }
  return kernel::parse_workload(name);
}

int cmd_signals() {
  std::printf("signals:\n");
  for (const std::string& name : runtime::PlatformIO::signal_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("controls:\n");
  for (const std::string& name : runtime::PlatformIO::control_names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int cmd_characterize(const Args& args) {
  const kernel::WorkloadConfig config = resolve_workload(args.workload);
  sim::Cluster cluster(args.nodes);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < args.nodes; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job(args.workload, std::move(hosts), config);
  const runtime::JobCharacterization data =
      runtime::characterize_job(job, 5);
  std::ostringstream out;
  runtime::write_characterization_csv(out, args.workload, data);
  std::fputs(out.str().c_str(), stdout);
  std::printf("# uncapped %.1f W/node, needed %.1f W/node\n",
              data.monitor.average_node_power_watts,
              data.balancer.average_node_power_watts);
  return 0;
}

int cmd_budgets(const Args& args) {
  const auto mix_kind = parse_mix(args.mix);
  if (!mix_kind) {
    std::fprintf(stderr, "unknown mix '%s'\n", args.mix.c_str());
    return 2;
  }
  analysis::ExperimentOptions options;
  options.nodes_per_job = args.nodes;
  options.iterations = 10;
  options.characterization_iterations = 3;
  options.hardware_variation = false;
  analysis::ExperimentDriver driver(options);
  analysis::MixExperiment experiment =
      driver.prepare(core::make_mix(*mix_kind, args.nodes));
  const core::PowerBudgets& budgets = experiment.budgets();
  const double hosts = static_cast<double>(experiment.total_hosts());
  std::printf("%s (%zu hosts):\n", args.mix.c_str(),
              experiment.total_hosts());
  std::printf("  min:   %s (%.1f W/node)\n",
              util::format_watts(budgets.min_watts).c_str(),
              budgets.min_watts / hosts);
  std::printf("  ideal: %s (%.1f W/node)\n",
              util::format_watts(budgets.ideal_watts).c_str(),
              budgets.ideal_watts / hosts);
  std::printf("  max:   %s (%.1f W/node)\n",
              util::format_watts(budgets.max_watts).c_str(),
              budgets.max_watts / hosts);
  return 0;
}

int cmd_balance(const Args& args) {
  const kernel::WorkloadConfig config = resolve_workload(args.workload);
  const runtime::AgentKind kind =
      runtime::agent_kind_from_name(args.agent);
  sim::Cluster cluster(args.nodes);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < args.nodes; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job(args.workload, std::move(hosts), config);
  const double budget = 195.0 * static_cast<double>(args.nodes);

  // Uniform reference first.
  for (std::size_t h = 0; h < args.nodes; ++h) {
    job.set_host_cap(h, budget / static_cast<double>(args.nodes));
  }
  const double uniform_time = job.run_iteration().iteration_seconds;

  const auto agent = runtime::make_agent(kind, budget);
  const runtime::JobReport report =
      runtime::Controller(10, 3).run(job, *agent);
  const double agent_time =
      report.elapsed_seconds / static_cast<double>(report.iterations);

  std::printf("%s on %s, %zu hosts, budget %s:\n", args.agent.c_str(),
              args.workload.c_str(), args.nodes,
              util::format_watts(budget).c_str());
  util::TextTable table;
  table.add_column("host", util::Align::kRight, 0);
  table.add_column("cap (W)", util::Align::kRight, 1);
  table.add_column("freq cap (GHz)", util::Align::kRight, 2);
  table.add_column("role", util::Align::kLeft);
  for (std::size_t h = 0; h < args.nodes; ++h) {
    table.begin_row();
    table.add_cell(std::to_string(h));
    table.add_number(job.host_cap(h));
    table.add_number(job.host(h).frequency_cap());
    table.add_cell(job.is_waiting_host(h) ? "waiting" : "critical");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("iteration time: uniform %s -> %s (%+.1f%%)\n",
              util::format_seconds(uniform_time).c_str(),
              util::format_seconds(agent_time).c_str(),
              (agent_time / uniform_time - 1.0) * 100.0);
  return 0;
}

int cmd_facility(const Args& args) {
  const auto policy = parse_policy(args.policy);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", args.policy.c_str());
    return 2;
  }
  sim::Cluster cluster(args.nodes);
  facility::JobTraceOptions traffic;
  traffic.horizon_hours = args.hours;
  traffic.arrivals_per_hour = 0.5;
  traffic.min_nodes = std::max<std::size_t>(1, args.nodes / 8);
  traffic.max_nodes = std::max<std::size_t>(1, args.nodes / 2);
  util::Rng rng(0xC11);
  facility::FacilityOptions options;
  options.horizon_hours = args.hours;
  options.policy = *policy;
  options.backfill = args.backfill;
  if (args.budget_share > 0.0) {
    util::Rng trace_rng(0xFAC);
    const sim::FacilityTrace trace =
        sim::generate_facility_trace({}, trace_rng);
    const auto steps =
        static_cast<std::size_t>(args.hours / options.step_hours);
    const double floor_watts =
        cluster.node(0).min_cap() * static_cast<double>(args.nodes);
    options.budget_signal_watts = core::budget_signal_from_trace(
        trace, args.budget_share, std::max<std::size_t>(steps, 2),
        floor_watts);
    options.governor.floor_watts = floor_watts;
  }
  facility::FacilityManager manager(cluster, options);
  const facility::FacilityResult result =
      manager.run(facility::generate_job_trace(rng, traffic));
  std::printf("%zu nodes, %.0f h, policy %s:\n", args.nodes, args.hours,
              args.policy.c_str());
  std::printf("  completed jobs: %zu\n", result.completed_jobs);
  std::printf("  mean wait:      %.2f h\n", result.mean_wait_hours());
  std::printf("  mean power:     %s\n",
              util::format_watts(result.mean_power_watts()).c_str());
  std::printf("  peak power:     %s\n",
              util::format_watts(result.peak_power_watts()).c_str());
  std::printf("  utilization:    %.0f%%\n",
              result.mean_utilization() * 100.0);
  if (args.budget_share > 0.0) {
    std::printf("  budget revisions: %zu (%zu emergency clamps)\n",
                result.budget_revisions, result.emergency_clamps);
    std::printf("  final budget:   %s (epoch %llu)\n",
                util::format_watts(result.budget_watts.back()).c_str(),
                static_cast<unsigned long long>(result.final_budget_epoch));
    std::printf(
        "  excursions:     %zu (worst %.1f W over, max time-to-safe %.1f "
        "s)\n",
        result.excursions.excursions, result.excursions.worst_over_watts,
        result.excursions.max_time_to_safe_seconds);
  }
  return 0;
}

int cmd_daemon(const Args& args) {
  const auto policy = parse_policy(args.policy);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", args.policy.c_str());
    return 2;
  }
  net::DaemonOptions options;
  options.system_budget_watts =
      args.budget_watts > 0.0
          ? args.budget_watts
          : 195.0 * static_cast<double>(args.nodes * args.min_jobs);
  options.policy = *policy;
  options.min_jobs = args.min_jobs;
  options.root_mode = args.root;
  const auto backend = parse_backend(args.backend);
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s'\n", args.backend.c_str());
    return 2;
  }
  options.event_backend = *backend;
  options.snapshot_path = args.snapshot_path;
  if (args.brownout) {
    // A budget schedule shaped like the facility trace, scaled so it
    // wanders around the configured budget: share * mean headroom ==
    // budget. One revision opportunity per allocation round.
    util::Rng trace_rng(0xFAC);
    const sim::FacilityTrace trace =
        sim::generate_facility_trace({}, trace_rng);
    const double mean_headroom_watts =
        (trace.params.peak_rating_mw - trace.mean_mw()) * 1e6;
    const double share = options.system_budget_watts / mean_headroom_watts;
    core::BudgetGovernorOptions governor;
    governor.floor_watts = 0.25 * options.system_budget_watts;
    const std::vector<double> signal = core::budget_signal_from_trace(
        trace, share, /*samples=*/64, governor.floor_watts);
    options.budget_revisions = core::make_budget_schedule(
        options.system_budget_watts, signal, governor);
    std::printf("daemon: brownout schedule, %zu revisions\n",
                options.budget_revisions.size());
  }
  obs::MetricsRegistry registry;
  obs::TraceSink sink;
  if (!args.trace_path.empty()) {
    options.obs.trace = &sink;
  }
  if (args.metrics || !args.trace_path.empty()) {
    options.obs.metrics = &registry;
  }
  if (!args.standby_of.empty()) {
    // Hot-standby role: replicate from the primary's --ha-socket; the
    // DaemonOptions built above become the promotion template, and the
    // client-facing listener binds only at promotion time.
    ha::StandbyOptions standby_options;
    const std::string primary_path = args.standby_of;
    standby_options.primary = [primary_path] {
      return net::make_transport(net::connect_unix(primary_path));
    };
    standby_options.daemon = options;
    standby_options.lease = std::chrono::milliseconds(args.lease_ms);
    standby_options.obs = options.obs;
    if (args.tcp_port >= 0) {
      const auto port = static_cast<std::uint16_t>(args.tcp_port);
      standby_options.bind = [port](net::PowerDaemon& daemon) {
        daemon.listen_tcp(port);
      };
    } else {
      const std::string path = args.socket_path;
      standby_options.bind = [path](net::PowerDaemon& daemon) {
        daemon.listen_unix(path);
      };
    }
    ha::StandbyDaemon standby(standby_options);
    std::printf("standby: replicating from %s, lease %zu ms\n",
                args.standby_of.c_str(), args.lease_ms);
    std::fflush(stdout);
    std::thread stopper;
    if (args.duration_seconds > 0.0) {
      stopper = std::thread([&standby, seconds = args.duration_seconds] {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
        standby.stop();
      });
    }
    standby.run();
    if (stopper.joinable()) {
      stopper.join();
    }
    const ha::StandbyStats stats = standby.stats();
    std::printf(
        "standby: %s, %zu updates applied (%zu rejected), %llu rounds "
        "replicated, fence epoch %llu\n",
        stats.promoted ? "promoted" : (stats.synced ? "synced" : "never synced"),
        stats.updates_applied, stats.updates_rejected,
        static_cast<unsigned long long>(stats.rounds),
        static_cast<unsigned long long>(stats.fence_epoch));
    if (const net::PowerDaemon* promoted = standby.daemon()) {
      const net::DaemonStats daemon_stats = promoted->stats();
      std::printf(
          "standby: served %zu sessions, %zu allocations, %zu jobs "
          "restored after takeover\n",
          daemon_stats.sessions_accepted, daemon_stats.allocations,
          daemon_stats.jobs_restored);
    }
    return 0;
  }

  std::unique_ptr<ha::Replicator> replicator;
  if (!args.ha_socket.empty()) {
    ha::ReplicatorOptions replicator_options;
    replicator_options.lease = std::chrono::milliseconds(args.lease_ms);
    replicator_options.obs = options.obs;
    replicator = std::make_unique<ha::Replicator>(replicator_options);
    replicator->listen_unix(args.ha_socket);
    replicator->start();
    options.replication_sink = replicator->sink();
    options.fence_check = replicator->fence_check();
    std::printf("daemon: replicating to standby at %s, lease %zu ms\n",
                args.ha_socket.c_str(), args.lease_ms);
  }
  net::PowerDaemon daemon(options);
  if (!args.snapshot_path.empty()) {
    std::printf("daemon: snapshot %s, %zu jobs restored\n",
                args.snapshot_path.c_str(), daemon.stats().jobs_restored);
  }
  if (args.tcp_port >= 0) {
    daemon.listen_tcp(static_cast<std::uint16_t>(args.tcp_port));
    std::printf("daemon%s: tcp 127.0.0.1:%u, budget %.1f W, policy %s\n",
                args.root ? " (root)" : "", daemon.tcp_port(),
                options.system_budget_watts, args.policy.c_str());
  } else {
    daemon.listen_unix(args.socket_path);
    std::printf("daemon%s: unix %s, budget %.1f W, policy %s\n",
                args.root ? " (root)" : "", args.socket_path.c_str(),
                options.system_budget_watts, args.policy.c_str());
  }
  std::fflush(stdout);

  std::thread stopper;
  if (args.duration_seconds > 0.0) {
    stopper = std::thread([&daemon, seconds = args.duration_seconds] {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      daemon.stop();
    });
  }
  daemon.run();
  if (stopper.joinable()) {
    stopper.join();
  }
  const net::DaemonStats stats = daemon.stats();
  std::printf(
      "daemon: %zu sessions, %zu samples, %zu allocations, "
      "%zu policies sent\n",
      stats.sessions_accepted, stats.samples_received, stats.allocations,
      stats.policies_sent);
  if (args.root) {
    std::printf(
        "daemon: %zu rack frames in, %zu rack policies out "
        "(%zu resent)\n",
        stats.rack_frames_received, stats.rack_policies_sent,
        stats.rack_policies_resent);
  }
  if (args.brownout) {
    std::printf(
        "daemon: budget %.1f W at epoch %llu, %zu revisions applied, "
        "%zu pushes, %zu emergency clamps\n",
        stats.budget_watts,
        static_cast<unsigned long long>(stats.budget_epoch),
        stats.budget_revisions_applied, stats.budget_pushes,
        stats.emergency_clamps);
  }
  if (replicator) {
    const ha::ReplicatorStats repl_stats = replicator->stats();
    replicator->stop();
    std::printf(
        "daemon: replication %zu updates, %zu heartbeats, %zu acks%s\n",
        repl_stats.updates_sent, repl_stats.heartbeats_sent,
        repl_stats.acks_received,
        repl_stats.fenced ? " (fenced: superseded by the standby)" : "");
  }
  if (!args.trace_path.empty()) {
    std::ofstream out(args.trace_path);
    obs::write_jsonl(out, sink.events());
    std::printf("daemon: trace %s, %zu events\n", args.trace_path.c_str(),
                sink.size());
  }
  if (args.metrics) {
    std::ostringstream text;
    registry.render_text(text);
    std::fputs(text.str().c_str(), stdout);
  }
  return 0;
}

int cmd_aggregator(const Args& args) {
  if (args.parent.empty()) {
    std::fprintf(stderr, "aggregator: need --parent ENDPOINT\n");
    return 2;
  }
  const auto backend = parse_backend(args.backend);
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s'\n", args.backend.c_str());
    return 2;
  }
  net::AggregatorOptions options;
  options.rack = args.rack;
  options.min_jobs = args.min_jobs;
  options.event_backend = *backend;
  const auto connect_parent = endpoint_connector(args.parent);
  options.parent_connector = [connect_parent]()
      -> std::unique_ptr<net::Transport> {
    try {
      return connect_parent();
    } catch (const std::exception&) {
      return nullptr;  // parent down: retried on the next tick
    }
  };
  obs::MetricsRegistry registry;
  if (args.metrics) {
    options.obs.metrics = &registry;
  }
  net::AggregatorDaemon aggregator(options);
  if (args.tcp_port >= 0) {
    aggregator.listen_tcp(static_cast<std::uint16_t>(args.tcp_port));
    std::printf("aggregator %s: tcp 127.0.0.1:%u -> parent %s\n",
                args.rack.c_str(), aggregator.tcp_port(),
                args.parent.c_str());
  } else {
    aggregator.listen_unix(args.socket_path);
    std::printf("aggregator %s: unix %s -> parent %s\n", args.rack.c_str(),
                args.socket_path.c_str(), args.parent.c_str());
  }
  std::fflush(stdout);

  std::thread stopper;
  if (args.duration_seconds > 0.0) {
    stopper = std::thread([&aggregator, seconds = args.duration_seconds] {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      aggregator.stop();
    });
  }
  aggregator.run();
  if (stopper.joinable()) {
    stopper.join();
  }
  const net::AggregatorStats stats = aggregator.stats();
  std::printf(
      "aggregator: %zu sessions, %zu samples, %zu rounds forwarded, "
      "%zu policies fanned out, rack budget %.1f W\n",
      stats.sessions_accepted, stats.samples_received,
      stats.rounds_forwarded, stats.policies_fanned_out,
      stats.rack_budget_watts);
  if (args.metrics) {
    std::ostringstream text;
    registry.render_text(text);
    std::fputs(text.str().c_str(), stdout);
  }
  return 0;
}

int cmd_agent(const Args& args) {
  const kernel::WorkloadConfig config = resolve_workload(args.workload);
  sim::Cluster cluster(args.nodes);
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < args.nodes; ++i) {
    hosts.push_back(&cluster.node(i));
  }
  const std::string job_name =
      args.job_name.empty() ? args.workload : args.job_name;
  sim::JobSimulation job(job_name, std::move(hosts), config);

  obs::MetricsRegistry registry;
  net::ClientOptions client_options;
  if (args.metrics) {
    client_options.obs.metrics = &registry;
  }
  const auto make_client = [&args, &client_options]() -> net::RuntimeClient {
    if (!args.endpoints.empty()) {
      // Ordered failover list: a bare port number dials 127.0.0.1 TCP,
      // anything else is a Unix socket path.
      std::vector<net::RuntimeClient::TransportConnector> connectors;
      std::stringstream list(args.endpoints);
      std::string entry;
      while (std::getline(list, entry, ',')) {
        if (entry.empty()) {
          continue;
        }
        if (entry.find_first_not_of("0123456789") == std::string::npos) {
          const auto port = static_cast<std::uint16_t>(
              std::strtoul(entry.c_str(), nullptr, 10));
          connectors.push_back([port] {
            return net::make_transport(net::connect_tcp(port));
          });
        } else {
          connectors.push_back([path = entry] {
            return net::make_transport(net::connect_unix(path));
          });
        }
      }
      return net::RuntimeClient(std::move(connectors), client_options);
    }
    net::RuntimeClient::Connector connector;
    if (args.tcp_port >= 0) {
      const auto port = static_cast<std::uint16_t>(args.tcp_port);
      connector = [port] { return net::connect_tcp(port); };
    } else {
      const std::string path = args.socket_path;
      connector = [path] { return net::connect_unix(path); };
    }
    return net::RuntimeClient(std::move(connector), client_options);
  };
  net::RuntimeClient client = make_client();
  net::CoordinatedAgent agent(job, client);
  const net::AgentResult result = agent.run(args.iterations);

  std::printf("agent %s: %zu iterations in %zu epochs\n", job_name.c_str(),
              result.iterations, result.epochs);
  std::printf("  policies applied: %zu (fallback epochs: %zu)\n",
              result.policies_applied, result.fallback_epochs);
  if (!args.endpoints.empty()) {
    const net::ClientStats stats = client.stats();
    std::printf(
        "  failover: endpoint %zu of %zu, %zu rotations, fence epoch "
        "%llu\n",
        client.endpoint_index() + 1, client.endpoint_count(),
        stats.endpoint_rotations,
        static_cast<unsigned long long>(client.fence_epoch()));
  }
  std::printf("  caps:");
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    std::printf(" %.1f", job.host_cap(h));
  }
  std::printf(" W\n");
  std::printf("  energy: %.1f J over %.2f s (%.3f GF/W)\n",
              result.energy_joules, result.elapsed_seconds,
              result.energy_joules > 0.0
                  ? result.total_gflop / result.energy_joules
                  : 0.0);
  if (args.metrics) {
    std::ostringstream text;
    registry.render_text(text);
    std::fputs(text.str().c_str(), stdout);
  }
  return result.policies_applied > 0 ? 0 : 1;
}

int cmd_trace(const Args& args) {
  if (args.trace_file.empty()) {
    std::fprintf(stderr, "trace: need a FILE operand\n");
    return 2;
  }
  std::ifstream in(args.trace_file);
  if (!in) {
    std::fprintf(stderr, "trace: cannot open '%s'\n",
                 args.trace_file.c_str());
    return 1;
  }
  const std::vector<obs::TraceEvent> events = obs::read_jsonl(in);
  obs::print_trace_report(std::cout, events, args.replay);
  if (!args.chrome_path.empty()) {
    std::ofstream out(args.chrome_path);
    obs::write_chrome_trace(out, events);
    std::printf("chrome trace written to %s\n", args.chrome_path.c_str());
  }
  return 0;
}

int cmd_validate(const Args& args) {
  analysis::ExperimentOptions options;
  options.nodes_per_job = args.quick ? 8 : 100;
  options.iterations = args.quick ? 16 : 100;
  options.characterization_iterations = args.quick ? 3 : 5;
  const analysis::ValidationReport report =
      analysis::validate_paper_claims(options);
  for (const auto& claim : report.claims) {
    std::printf("[%s] %-18s %s\n", claim.passed ? "PASS" : "FAIL",
                claim.id.c_str(), claim.description.c_str());
  }
  std::printf("%zu / %zu claims hold.\n", report.passed_count(),
              report.claims.size());
  return report.all_passed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "signals") {
      return cmd_signals();
    }
    if (args.command == "characterize") {
      return cmd_characterize(args);
    }
    if (args.command == "budgets") {
      return cmd_budgets(args);
    }
    if (args.command == "balance") {
      return cmd_balance(args);
    }
    if (args.command == "facility") {
      return cmd_facility(args);
    }
    if (args.command == "daemon") {
      return cmd_daemon(args);
    }
    if (args.command == "aggregator") {
      return cmd_aggregator(args);
    }
    if (args.command == "agent") {
      return cmd_agent(args);
    }
    if (args.command == "trace") {
      return cmd_trace(args);
    }
    if (args.command == "validate") {
      return cmd_validate(args);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
