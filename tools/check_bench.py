#!/usr/bin/env python3
"""Benchmark baseline: wall time + output checksum for a sweep harness.

The committed baseline (BENCH_fig08.json) pins three things about a
bench binary's --quick run:

  * the number of CSV data rows (the sweep covered every cell),
  * a SHA-256 of the CSV bytes (the numbers themselves -- any model or
    policy change that moves a figure shows up as checksum drift and
    must regenerate the baseline in the same PR),
  * the wall time of the serial and --jobs 4 runs (a >10% regression
    of either fails CI; each is the best of --repeats runs so scheduler
    noise does not gate),
  * the serial/--jobs 4 speedup ratio: on a multi-core runner the
    parallel sweep must actually pay (--min-speedup, default 1.0 --
    i.e. --jobs 4 may never be slower than serial).  On a single-core
    runner threads can only timeshare, so the gate degrades to "--jobs 4
    costs no more than the tolerance band over serial".

Two modes:

    # refresh the committed baseline after an intentional change
    python3 tools/check_bench.py --bench ./build/bench/fig08_savings_grid \
        --baseline BENCH_fig08.json --generate

    # CI: verify the current build against the committed baseline
    python3 tools/check_bench.py --bench ./build/bench/fig08_savings_grid \
        --baseline BENCH_fig08.json [--tolerance 0.10]

Wall times are machine-dependent; CI runners are sized close enough to
the baseline machine that the 10% band holds, and --tolerance widens it
where it does not.  The checksum and cell count are machine-independent:
the sweep executor guarantees bit-identical CSVs at any worker count,
which this script also re-verifies (serial vs --jobs 4) on every run.

--mode failover gates the HA time-to-takeover bench instead.  The
committed BENCH_failover.json pins the episode count and lease (config
drift fails loudly) plus the p50/p99 takeover seconds, which may not
regress past the baseline by more than --tolerance (default 0.25 in
this mode: takeover is lease-dominated, so the band only has to absorb
scheduler jitter around a fixed offset):

    python3 tools/check_bench.py --mode failover \
        --bench ./build/bench/ext_ha_failover \
        --baseline BENCH_failover.json [--generate]

--mode sla gates the multi-tenant oversubscription frontier
(ext_multitenant_sla).  It is the sweep gate (cells + CSV checksum +
wall bands + jobs4 determinism) plus the frontier verdict re-derived
from the CSV itself: some measured-draw row must dominate the
worst_case_tdp row (>= completed jobs, <= SLA violations, strictly
better on one axis), and the dominating point is pinned in
BENCH_sla.json so silent frontier drift fails loudly:

    python3 tools/check_bench.py --mode sla \
        --bench ./build/bench/ext_multitenant_sla \
        --baseline BENCH_sla.json [--generate]

--mode hierarchy gates the two-level daemon-tree soak
(ext_hierarchy_scale) at its CI-bounded --quick scale.  The committed
BENCH_hierarchy.json pins the fleet shape (clients/racks/rounds --
config drift fails loudly), the SHA-256 of the per-round CSV (which the
bench guarantees is --jobs invariant; this script re-verifies the
serial vs --jobs 4 byte-equality on every run), the zero-leak verdict
for the mass-disconnect reclamation, and the per-level round-latency
p50/p99, which may not regress past the baseline by more than
--tolerance (default 1.0 here: quick-scale rounds complete in a few
loop ticks, so the band mostly absorbs tick-quantization jitter):

    python3 tools/check_bench.py --mode hierarchy \
        --bench ./build/bench/ext_hierarchy_scale \
        --baseline BENCH_hierarchy.json [--generate]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_bench(bench: Path, jobs: int, out_csv: Path) -> float:
    """Runs one --quick sweep; returns its wall time in seconds."""
    cmd = [str(bench), "--quick", "--jobs", str(jobs), "--out", str(out_csv)]
    start = time.monotonic()
    result = subprocess.run(cmd, capture_output=True, text=True)
    elapsed = time.monotonic() - start
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        sys.stderr.write(result.stderr)
        sys.exit(f"{' '.join(cmd)}: exit {result.returncode}")
    return elapsed


def measure(bench: Path, repeats: int = 3, extract=None) -> dict:
    with tempfile.TemporaryDirectory(prefix="ps-bench-") as tmp:
        serial_csv = Path(tmp) / "serial.csv"
        jobs4_csv = Path(tmp) / "jobs4.csv"
        # Best-of-N wall times: the quick sweep runs tens of
        # milliseconds, so a single sample would gate on scheduler noise.
        wall_serial = min(run_bench(bench, 1, serial_csv)
                          for _ in range(repeats))
        wall_jobs4 = min(run_bench(bench, 4, jobs4_csv)
                         for _ in range(repeats))
        serial_bytes = serial_csv.read_bytes()
        if serial_bytes != jobs4_csv.read_bytes():
            sys.exit(f"{bench.name}: --jobs 4 CSV differs from the serial "
                     "one -- the sweep executor lost determinism")
        rows = serial_bytes.decode().strip().splitlines()
    payload = {
        "bench": bench.name,
        "args": ["--quick"],
        "cells": len(rows) - 1,  # minus the header
        "savings_sha256": hashlib.sha256(serial_bytes).hexdigest(),
        "wall_seconds_serial": round(wall_serial, 3),
        "wall_seconds_jobs4": round(wall_jobs4, 3),
        "speedup_jobs4": round(wall_serial / max(wall_jobs4, 1e-9), 3),
    }
    if extract is not None:
        payload.update(extract(serial_bytes.decode()))
    return payload


def sla_frontier(csv_text: str) -> dict:
    """Re-derives the oversubscription verdict from the frontier CSV.

    The bench already exits nonzero when no measured-draw point
    dominates, but gating on its exit code alone would let the frontier
    drift silently; this parses the CSV the checksum pins and records
    *which* point dominates.
    """
    rows = [line.split(",") for line in csv_text.strip().splitlines()]
    index = {name: i for i, name in enumerate(rows[0])}
    for key in ("admission", "ratio", "completed", "violations_total"):
        if key not in index:
            sys.exit(f"sla CSV is missing the '{key}' column")

    def point(row: list[str]) -> dict:
        return {
            "admission": row[index["admission"]],
            "ratio": float(row[index["ratio"]]),
            "completed": int(row[index["completed"]]),
            "violations": int(row[index["violations_total"]]),
        }

    worst = None
    candidates = []
    for row in rows[1:]:
        entry = point(row)
        if entry["admission"] == "worst_case_tdp":
            worst = entry
        else:
            candidates.append(entry)
    if worst is None:
        sys.exit("sla CSV has no worst_case_tdp baseline row")
    dominant = next(
        (c for c in candidates
         if c["completed"] >= worst["completed"]
         and c["violations"] <= worst["violations"]
         and (c["completed"] > worst["completed"]
              or c["violations"] < worst["violations"])),
        None)
    if dominant is None:
        sys.exit("no measured-draw point dominates worst-case admission "
                 "on the SLA frontier")
    return {"worst_case": worst, "dominant": dominant}


FAILOVER_EPISODES = 7
FAILOVER_LEASE_MS = 300


def measure_failover(bench: Path) -> dict:
    with tempfile.TemporaryDirectory(prefix="ps-bench-") as tmp:
        out_json = Path(tmp) / "failover.json"
        cmd = [str(bench), "--episodes", str(FAILOVER_EPISODES),
               "--lease", str(FAILOVER_LEASE_MS), "--out", str(out_json)]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            sys.stderr.write(result.stdout)
            sys.stderr.write(result.stderr)
            sys.exit(f"{' '.join(cmd)}: exit {result.returncode}")
        return json.loads(out_json.read_text())


def check_failover(current: dict, baseline: dict,
                   tolerance: float) -> list[str]:
    failures: list[str] = []
    for key in ("episodes", "lease_ms"):
        if current[key] != baseline[key]:
            failures.append(f"{key} changed: {baseline[key]} -> "
                            f"{current[key]} -- regenerate the baseline "
                            "if the bench config moved intentionally")
    for key in ("takeover_p50_seconds", "takeover_p99_seconds"):
        limit = baseline[key] * (1.0 + tolerance)
        if current[key] > limit:
            failures.append(
                f"{key} regressed >{tolerance:.0%}: {baseline[key]:.3f}s "
                f"baseline vs {current[key]:.3f}s now (limit {limit:.3f}s)")
    return failures


def measure_hierarchy(bench: Path) -> dict:
    """Runs the quick soak serially and with --jobs 4.

    The summary JSON comes from the serial run; the --jobs 4 run exists
    to re-prove the CSV determinism contract (and must also pass the
    bench's own zero-leak gate to exit 0).
    """
    with tempfile.TemporaryDirectory(prefix="ps-bench-") as tmp:
        payload = None
        csv_bytes = {}
        for jobs in (1, 4):
            out_csv = Path(tmp) / f"jobs{jobs}.csv"
            out_json = Path(tmp) / f"jobs{jobs}.json"
            cmd = [str(bench), "--quick", "--jobs", str(jobs),
                   "--out", str(out_csv), "--json", str(out_json)]
            result = subprocess.run(cmd, capture_output=True, text=True)
            if result.returncode != 0:
                sys.stderr.write(result.stdout)
                sys.stderr.write(result.stderr)
                sys.exit(f"{' '.join(cmd)}: exit {result.returncode}")
            csv_bytes[jobs] = out_csv.read_bytes()
            if jobs == 1:
                payload = json.loads(out_json.read_text())
        if csv_bytes[1] != csv_bytes[4]:
            sys.exit(f"{bench.name}: --jobs 4 CSV differs from the serial "
                     "one -- the round summaries lost determinism")
        payload["csv_sha256"] = hashlib.sha256(csv_bytes[1]).hexdigest()
        return payload


def check_hierarchy(current: dict, baseline: dict,
                    tolerance: float, abs_slack: float) -> list[str]:
    failures: list[str] = []
    for key in ("clients", "racks", "rounds", "evicted_jobs"):
        if current[key] != baseline[key]:
            failures.append(f"{key} changed: {baseline[key]} -> "
                            f"{current[key]} -- regenerate the baseline "
                            "if the fleet shape moved intentionally")
    if current["csv_sha256"] != baseline["csv_sha256"]:
        failures.append(
            "round-summary checksum drift: the allocation numbers "
            f"changed ({baseline['csv_sha256'][:12]} -> "
            f"{current['csv_sha256'][:12]}); if intentional, regenerate "
            "the baseline with --generate in this PR")
    if current["leak_watts"] > 1e-6:
        failures.append(f"mass-disconnect watt leak: "
                        f"{current['leak_watts']} W unreclaimed")
    for key in ("root_round_p99_seconds", "rack_round_p99_seconds"):
        limit = baseline[key] * (1.0 + tolerance) + abs_slack
        if current[key] > limit:
            failures.append(
                f"{key} regressed >{tolerance:.0%}+{abs_slack:.3f}s: "
                f"{baseline[key]:.4f}s baseline vs {current[key]:.4f}s "
                f"now (limit {limit:.4f}s)")
    return failures


def check(current: dict, baseline: dict, tolerance: float,
          min_speedup: float, abs_slack: float) -> list[str]:
    failures: list[str] = []
    if current["savings_sha256"] != baseline["savings_sha256"]:
        failures.append(
            "savings checksum drift: the CSV numbers changed "
            f"({baseline['savings_sha256'][:12]} -> "
            f"{current['savings_sha256'][:12]}); if intentional, "
            "regenerate the baseline with --generate in this PR")
    if current["cells"] != baseline["cells"]:
        failures.append(f"cell count changed: {baseline['cells']} -> "
                        f"{current['cells']}")
    # Every wall-time band carries an absolute slack on top of the
    # relative tolerance: the quick sweep finishes in tens of
    # milliseconds, where scheduler jitter alone exceeds 10%.
    for key in ("wall_seconds_serial", "wall_seconds_jobs4"):
        limit = baseline[key] * (1.0 + tolerance) + abs_slack
        if current[key] > limit:
            failures.append(
                f"{key} regressed >{tolerance:.0%}+{abs_slack:.3f}s: "
                f"{baseline[key]:.3f}s baseline vs {current[key]:.3f}s "
                f"now (limit {limit:.3f}s)")
    # Parallelism must pay: the committed slowdown this gate exists for
    # was --jobs 4 losing to serial on a multi-core machine.
    serial = current["wall_seconds_serial"]
    jobs4 = current["wall_seconds_jobs4"]
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        limit = serial / min_speedup + abs_slack
        if jobs4 > limit:
            failures.append(
                f"parallel sweep does not pay on {cpus} CPUs: --jobs 4 "
                f"took {jobs4:.3f}s vs {serial:.3f}s serial (required "
                f"speedup {min_speedup:.2f}x, limit {limit:.3f}s)")
    elif jobs4 > serial * (1.0 + tolerance) + abs_slack:
        failures.append(
            f"--jobs 4 overhead on a single CPU exceeds the tolerance "
            f"band: {jobs4:.3f}s vs {serial:.3f}s serial "
            f"(limit {serial * (1.0 + tolerance) + abs_slack:.3f}s)")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path, required=True,
                        help="path to the sweep bench binary")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON")
    parser.add_argument("--generate", action="store_true",
                        help="write the baseline instead of checking it")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed relative regression (default 0.10 "
                             "for sweep mode, 0.25 for failover)")
    parser.add_argument("--mode",
                        choices=("sweep", "failover", "sla", "hierarchy"),
                        default="sweep",
                        help="sweep: CSV checksum + wall time; failover: "
                             "time-to-takeover quantiles; sla: sweep gate "
                             "plus the oversubscription dominance verdict; "
                             "hierarchy: daemon-tree soak (CSV determinism "
                             "+ round latency + zero-leak reclamation)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required serial/--jobs 4 wall-time ratio on "
                             "multi-core runners (default 1.0: parallel "
                             "may never be slower than serial)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing samples per configuration; the best "
                             "one gates (default 3)")
    parser.add_argument("--abs-slack", type=float, default=0.05,
                        help="absolute seconds added to every wall-time "
                             "band (default 0.05: the quick sweep is so "
                             "fast that jitter dwarfs the relative band)")
    args = parser.parse_args()
    if args.tolerance is None:
        args.tolerance = {"failover": 0.25, "hierarchy": 1.0}.get(
            args.mode, 0.10)

    if args.mode == "hierarchy":
        current = measure_hierarchy(args.bench)
        if args.generate:
            args.baseline.write_text(json.dumps(current, indent=2) + "\n")
            print(f"wrote {args.baseline}: {current['clients']} clients / "
                  f"{current['racks']} racks / {current['rounds']} rounds, "
                  f"root p99 {current['root_round_p99_seconds']}s, rack "
                  f"p99 {current['rack_round_p99_seconds']}s, leak "
                  f"{current['leak_watts']} W")
            return
        baseline = json.loads(args.baseline.read_text())
        failures = check_hierarchy(current, baseline, args.tolerance,
                                   args.abs_slack)
        print(f"{current['bench']}: {current['clients']} clients over "
              f"{current['racks']} racks, checksum "
              f"{current['csv_sha256'][:12]}, root round p99 "
              f"{current['root_round_p99_seconds']}s (baseline "
              f"{baseline['root_round_p99_seconds']}s), rack round p99 "
              f"{current['rack_round_p99_seconds']}s (baseline "
              f"{baseline['rack_round_p99_seconds']}s), leak "
              f"{current['leak_watts']} W")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            sys.exit(1)
        print("OK")
        return

    if args.mode == "failover":
        current = measure_failover(args.bench)
        if args.generate:
            args.baseline.write_text(json.dumps(current, indent=2) + "\n")
            print(f"wrote {args.baseline}: p50 "
                  f"{current['takeover_p50_seconds']}s, p99 "
                  f"{current['takeover_p99_seconds']}s over "
                  f"{current['episodes']} episodes")
            return
        baseline = json.loads(args.baseline.read_text())
        failures = check_failover(current, baseline, args.tolerance)
        print(f"{current['bench']}: {current['episodes']} episodes, lease "
              f"{current['lease_ms']} ms, p50 "
              f"{current['takeover_p50_seconds']}s (baseline "
              f"{baseline['takeover_p50_seconds']}s), p99 "
              f"{current['takeover_p99_seconds']}s (baseline "
              f"{baseline['takeover_p99_seconds']}s)")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            sys.exit(1)
        print("OK")
        return

    extract = sla_frontier if args.mode == "sla" else None
    current = measure(args.bench, args.repeats, extract)
    if args.mode == "sla":
        dominant = current["dominant"]
        worst = current["worst_case"]
        print(f"sla frontier: {dominant['admission']} ratio "
              f"{dominant['ratio']:.2f} dominates worst_case_tdp "
              f"(completed {dominant['completed']} vs "
              f"{worst['completed']}, violations "
              f"{dominant['violations']} vs {worst['violations']})")
    if args.generate:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {args.baseline}: {current['cells']} cells, "
              f"serial {current['wall_seconds_serial']}s, "
              f"--jobs 4 {current['wall_seconds_jobs4']}s "
              f"(speedup {current['speedup_jobs4']}x)")
        return

    baseline = json.loads(args.baseline.read_text())
    failures = check(current, baseline, args.tolerance, args.min_speedup,
                     args.abs_slack)
    if args.mode == "sla" and current["dominant"] != baseline.get("dominant"):
        failures.append(
            f"dominant frontier point moved: {baseline.get('dominant')} "
            f"-> {current['dominant']}; regenerate BENCH_sla.json if "
            "the frontier shifted intentionally")
    print(f"{current['bench']}: {current['cells']} cells, checksum "
          f"{current['savings_sha256'][:12]}, serial "
          f"{current['wall_seconds_serial']}s (baseline "
          f"{baseline['wall_seconds_serial']}s), --jobs 4 "
          f"{current['wall_seconds_jobs4']}s (baseline "
          f"{baseline['wall_seconds_jobs4']}s)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print("OK")


if __name__ == "__main__":
    main()
