#!/usr/bin/env python3
"""Fail when a translation unit #includes the same header twice.

A duplicated include is harmless to the compiler (header guards) but it
is always an editing accident, and it has slipped through review here
before (a doubled <map> in the daemon).  This lint keeps the tree clean:

    python3 tools/check_duplicate_includes.py [ROOT...]

With no arguments it scans src/, tests/, bench/, and tools/ under the
repository root (the directory containing this script's parent).  Exits
non-zero and prints file:line for every repeated include.

Only exact repeats of the include *target* count — <vector> vs
"vector" are (deliberately) treated as distinct, and includes inside
block comments or #if 0 regions are not parsed; the scanner is a plain
line matcher, which is the right trade for a lint that must never
false-negative on the common case.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^>"]+[>"])')
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h", ".ipp"}
DEFAULT_ROOTS = ("src", "tests", "bench", "tools")


def duplicates_in(path: Path) -> list[tuple[int, str]]:
    """Returns (line, include-target) for the second and later sightings."""
    seen: dict[str, int] = {}
    repeats: list[tuple[int, str]] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as error:
        print(f"warning: unreadable {path}: {error}", file=sys.stderr)
        return []
    for number, line in enumerate(text.splitlines(), start=1):
        match = INCLUDE_RE.match(line)
        if not match:
            continue
        target = match.group(1)
        if target in seen:
            repeats.append((number, target))
        else:
            seen[target] = number
    return repeats


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        roots = [Path(argument) for argument in argv]
    else:
        roots = [repo_root / name for name in DEFAULT_ROOTS]

    failures = 0
    scanned = 0
    for root in roots:
        if not root.exists():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            scanned += 1
            for number, target in duplicates_in(path):
                print(f"{path}:{number}: duplicate #include {target}")
                failures += 1
    if failures:
        print(f"{failures} duplicate include(s) across {scanned} files",
              file=sys.stderr)
        return 1
    print(f"ok: no duplicate includes in {scanned} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
