file(REMOVE_RECURSE
  "CMakeFiles/cluster_operator.dir/cluster_operator.cpp.o"
  "CMakeFiles/cluster_operator.dir/cluster_operator.cpp.o.d"
  "cluster_operator"
  "cluster_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
