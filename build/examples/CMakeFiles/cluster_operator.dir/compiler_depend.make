# Empty compiler generated dependencies file for cluster_operator.
# This may be replaced when dependencies are built.
