# Empty dependencies file for coordination_protocol.
# This may be replaced when dependencies are built.
