file(REMOVE_RECURSE
  "CMakeFiles/coordination_protocol.dir/coordination_protocol.cpp.o"
  "CMakeFiles/coordination_protocol.dir/coordination_protocol.cpp.o.d"
  "coordination_protocol"
  "coordination_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordination_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
