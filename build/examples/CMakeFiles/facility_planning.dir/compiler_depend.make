# Empty compiler generated dependencies file for facility_planning.
# This may be replaced when dependencies are built.
