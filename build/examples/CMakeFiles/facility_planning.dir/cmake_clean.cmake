file(REMOVE_RECURSE
  "CMakeFiles/facility_planning.dir/facility_planning.cpp.o"
  "CMakeFiles/facility_planning.dir/facility_planning.cpp.o.d"
  "facility_planning"
  "facility_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
