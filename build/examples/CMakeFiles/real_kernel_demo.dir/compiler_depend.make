# Empty compiler generated dependencies file for real_kernel_demo.
# This may be replaced when dependencies are built.
