file(REMOVE_RECURSE
  "CMakeFiles/real_kernel_demo.dir/real_kernel_demo.cpp.o"
  "CMakeFiles/real_kernel_demo.dir/real_kernel_demo.cpp.o.d"
  "real_kernel_demo"
  "real_kernel_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_kernel_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
