file(REMOVE_RECURSE
  "CMakeFiles/ps_hw.dir/msr.cpp.o"
  "CMakeFiles/ps_hw.dir/msr.cpp.o.d"
  "CMakeFiles/ps_hw.dir/node.cpp.o"
  "CMakeFiles/ps_hw.dir/node.cpp.o.d"
  "CMakeFiles/ps_hw.dir/perf_model.cpp.o"
  "CMakeFiles/ps_hw.dir/perf_model.cpp.o.d"
  "CMakeFiles/ps_hw.dir/power_model.cpp.o"
  "CMakeFiles/ps_hw.dir/power_model.cpp.o.d"
  "CMakeFiles/ps_hw.dir/rapl.cpp.o"
  "CMakeFiles/ps_hw.dir/rapl.cpp.o.d"
  "CMakeFiles/ps_hw.dir/variation.cpp.o"
  "CMakeFiles/ps_hw.dir/variation.cpp.o.d"
  "libps_hw.a"
  "libps_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
