# Empty dependencies file for ps_hw.
# This may be replaced when dependencies are built.
