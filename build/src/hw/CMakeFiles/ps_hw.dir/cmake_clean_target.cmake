file(REMOVE_RECURSE
  "libps_hw.a"
)
