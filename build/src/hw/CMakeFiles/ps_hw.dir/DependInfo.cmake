
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/msr.cpp" "src/hw/CMakeFiles/ps_hw.dir/msr.cpp.o" "gcc" "src/hw/CMakeFiles/ps_hw.dir/msr.cpp.o.d"
  "/root/repo/src/hw/node.cpp" "src/hw/CMakeFiles/ps_hw.dir/node.cpp.o" "gcc" "src/hw/CMakeFiles/ps_hw.dir/node.cpp.o.d"
  "/root/repo/src/hw/perf_model.cpp" "src/hw/CMakeFiles/ps_hw.dir/perf_model.cpp.o" "gcc" "src/hw/CMakeFiles/ps_hw.dir/perf_model.cpp.o.d"
  "/root/repo/src/hw/power_model.cpp" "src/hw/CMakeFiles/ps_hw.dir/power_model.cpp.o" "gcc" "src/hw/CMakeFiles/ps_hw.dir/power_model.cpp.o.d"
  "/root/repo/src/hw/rapl.cpp" "src/hw/CMakeFiles/ps_hw.dir/rapl.cpp.o" "gcc" "src/hw/CMakeFiles/ps_hw.dir/rapl.cpp.o.d"
  "/root/repo/src/hw/variation.cpp" "src/hw/CMakeFiles/ps_hw.dir/variation.cpp.o" "gcc" "src/hw/CMakeFiles/ps_hw.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
