file(REMOVE_RECURSE
  "CMakeFiles/ps_sim.dir/cluster.cpp.o"
  "CMakeFiles/ps_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/ps_sim.dir/facility_trace.cpp.o"
  "CMakeFiles/ps_sim.dir/facility_trace.cpp.o.d"
  "CMakeFiles/ps_sim.dir/job_sim.cpp.o"
  "CMakeFiles/ps_sim.dir/job_sim.cpp.o.d"
  "CMakeFiles/ps_sim.dir/telemetry.cpp.o"
  "CMakeFiles/ps_sim.dir/telemetry.cpp.o.d"
  "libps_sim.a"
  "libps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
