
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/ps_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/ps_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/facility_trace.cpp" "src/sim/CMakeFiles/ps_sim.dir/facility_trace.cpp.o" "gcc" "src/sim/CMakeFiles/ps_sim.dir/facility_trace.cpp.o.d"
  "/root/repo/src/sim/job_sim.cpp" "src/sim/CMakeFiles/ps_sim.dir/job_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ps_sim.dir/job_sim.cpp.o.d"
  "/root/repo/src/sim/telemetry.cpp" "src/sim/CMakeFiles/ps_sim.dir/telemetry.cpp.o" "gcc" "src/sim/CMakeFiles/ps_sim.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
