# Empty dependencies file for ps_runtime.
# This may be replaced when dependencies are built.
