file(REMOVE_RECURSE
  "CMakeFiles/ps_runtime.dir/agent_registry.cpp.o"
  "CMakeFiles/ps_runtime.dir/agent_registry.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/agent_tree.cpp.o"
  "CMakeFiles/ps_runtime.dir/agent_tree.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/basic_agents.cpp.o"
  "CMakeFiles/ps_runtime.dir/basic_agents.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/characterization.cpp.o"
  "CMakeFiles/ps_runtime.dir/characterization.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/characterization_io.cpp.o"
  "CMakeFiles/ps_runtime.dir/characterization_io.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/controller.cpp.o"
  "CMakeFiles/ps_runtime.dir/controller.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/energy_efficient_agent.cpp.o"
  "CMakeFiles/ps_runtime.dir/energy_efficient_agent.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/feedback_agent.cpp.o"
  "CMakeFiles/ps_runtime.dir/feedback_agent.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/platform_io.cpp.o"
  "CMakeFiles/ps_runtime.dir/platform_io.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/power_balancer_agent.cpp.o"
  "CMakeFiles/ps_runtime.dir/power_balancer_agent.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/recording_agent.cpp.o"
  "CMakeFiles/ps_runtime.dir/recording_agent.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/report.cpp.o"
  "CMakeFiles/ps_runtime.dir/report.cpp.o.d"
  "CMakeFiles/ps_runtime.dir/report_writer.cpp.o"
  "CMakeFiles/ps_runtime.dir/report_writer.cpp.o.d"
  "libps_runtime.a"
  "libps_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
