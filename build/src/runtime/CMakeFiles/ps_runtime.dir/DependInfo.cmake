
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/agent_registry.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/agent_registry.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/agent_registry.cpp.o.d"
  "/root/repo/src/runtime/agent_tree.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/agent_tree.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/agent_tree.cpp.o.d"
  "/root/repo/src/runtime/basic_agents.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/basic_agents.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/basic_agents.cpp.o.d"
  "/root/repo/src/runtime/characterization.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/characterization.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/characterization.cpp.o.d"
  "/root/repo/src/runtime/characterization_io.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/characterization_io.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/characterization_io.cpp.o.d"
  "/root/repo/src/runtime/controller.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/controller.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/controller.cpp.o.d"
  "/root/repo/src/runtime/energy_efficient_agent.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/energy_efficient_agent.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/energy_efficient_agent.cpp.o.d"
  "/root/repo/src/runtime/feedback_agent.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/feedback_agent.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/feedback_agent.cpp.o.d"
  "/root/repo/src/runtime/platform_io.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/platform_io.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/platform_io.cpp.o.d"
  "/root/repo/src/runtime/power_balancer_agent.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/power_balancer_agent.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/power_balancer_agent.cpp.o.d"
  "/root/repo/src/runtime/recording_agent.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/recording_agent.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/recording_agent.cpp.o.d"
  "/root/repo/src/runtime/report.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/report.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/report.cpp.o.d"
  "/root/repo/src/runtime/report_writer.cpp" "src/runtime/CMakeFiles/ps_runtime.dir/report_writer.cpp.o" "gcc" "src/runtime/CMakeFiles/ps_runtime.dir/report_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
