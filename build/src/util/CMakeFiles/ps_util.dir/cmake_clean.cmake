file(REMOVE_RECURSE
  "CMakeFiles/ps_util.dir/args.cpp.o"
  "CMakeFiles/ps_util.dir/args.cpp.o.d"
  "CMakeFiles/ps_util.dir/error.cpp.o"
  "CMakeFiles/ps_util.dir/error.cpp.o.d"
  "CMakeFiles/ps_util.dir/kmeans.cpp.o"
  "CMakeFiles/ps_util.dir/kmeans.cpp.o.d"
  "CMakeFiles/ps_util.dir/logging.cpp.o"
  "CMakeFiles/ps_util.dir/logging.cpp.o.d"
  "CMakeFiles/ps_util.dir/rng.cpp.o"
  "CMakeFiles/ps_util.dir/rng.cpp.o.d"
  "CMakeFiles/ps_util.dir/stats.cpp.o"
  "CMakeFiles/ps_util.dir/stats.cpp.o.d"
  "CMakeFiles/ps_util.dir/strings.cpp.o"
  "CMakeFiles/ps_util.dir/strings.cpp.o.d"
  "CMakeFiles/ps_util.dir/table.cpp.o"
  "CMakeFiles/ps_util.dir/table.cpp.o.d"
  "libps_util.a"
  "libps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
