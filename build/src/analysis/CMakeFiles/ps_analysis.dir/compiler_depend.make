# Empty compiler generated dependencies file for ps_analysis.
# This may be replaced when dependencies are built.
