file(REMOVE_RECURSE
  "CMakeFiles/ps_analysis.dir/experiment.cpp.o"
  "CMakeFiles/ps_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/export.cpp.o"
  "CMakeFiles/ps_analysis.dir/export.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/heatmap.cpp.o"
  "CMakeFiles/ps_analysis.dir/heatmap.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/roofline_analysis.cpp.o"
  "CMakeFiles/ps_analysis.dir/roofline_analysis.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/sensitivity.cpp.o"
  "CMakeFiles/ps_analysis.dir/sensitivity.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/validation.cpp.o"
  "CMakeFiles/ps_analysis.dir/validation.cpp.o.d"
  "libps_analysis.a"
  "libps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
