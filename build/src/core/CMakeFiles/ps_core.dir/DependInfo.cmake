
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/ps_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/coordination.cpp" "src/core/CMakeFiles/ps_core.dir/coordination.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/coordination.cpp.o.d"
  "/root/repo/src/core/endpoint.cpp" "src/core/CMakeFiles/ps_core.dir/endpoint.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/endpoint.cpp.o.d"
  "/root/repo/src/core/mixes.cpp" "src/core/CMakeFiles/ps_core.dir/mixes.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/mixes.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/ps_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/ps_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/policy_util.cpp" "src/core/CMakeFiles/ps_core.dir/policy_util.cpp.o" "gcc" "src/core/CMakeFiles/ps_core.dir/policy_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rm/CMakeFiles/ps_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ps_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
