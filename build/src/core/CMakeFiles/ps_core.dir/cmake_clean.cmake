file(REMOVE_RECURSE
  "CMakeFiles/ps_core.dir/budget.cpp.o"
  "CMakeFiles/ps_core.dir/budget.cpp.o.d"
  "CMakeFiles/ps_core.dir/coordination.cpp.o"
  "CMakeFiles/ps_core.dir/coordination.cpp.o.d"
  "CMakeFiles/ps_core.dir/endpoint.cpp.o"
  "CMakeFiles/ps_core.dir/endpoint.cpp.o.d"
  "CMakeFiles/ps_core.dir/mixes.cpp.o"
  "CMakeFiles/ps_core.dir/mixes.cpp.o.d"
  "CMakeFiles/ps_core.dir/policies.cpp.o"
  "CMakeFiles/ps_core.dir/policies.cpp.o.d"
  "CMakeFiles/ps_core.dir/policy.cpp.o"
  "CMakeFiles/ps_core.dir/policy.cpp.o.d"
  "CMakeFiles/ps_core.dir/policy_util.cpp.o"
  "CMakeFiles/ps_core.dir/policy_util.cpp.o.d"
  "libps_core.a"
  "libps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
