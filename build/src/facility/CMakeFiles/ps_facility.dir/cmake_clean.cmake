file(REMOVE_RECURSE
  "CMakeFiles/ps_facility.dir/facility_io.cpp.o"
  "CMakeFiles/ps_facility.dir/facility_io.cpp.o.d"
  "CMakeFiles/ps_facility.dir/facility_manager.cpp.o"
  "CMakeFiles/ps_facility.dir/facility_manager.cpp.o.d"
  "libps_facility.a"
  "libps_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
