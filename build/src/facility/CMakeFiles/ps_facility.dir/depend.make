# Empty dependencies file for ps_facility.
# This may be replaced when dependencies are built.
