file(REMOVE_RECURSE
  "libps_facility.a"
)
