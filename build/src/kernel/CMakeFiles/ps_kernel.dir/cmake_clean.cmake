file(REMOVE_RECURSE
  "CMakeFiles/ps_kernel.dir/arithmetic_kernel.cpp.o"
  "CMakeFiles/ps_kernel.dir/arithmetic_kernel.cpp.o.d"
  "CMakeFiles/ps_kernel.dir/phased.cpp.o"
  "CMakeFiles/ps_kernel.dir/phased.cpp.o.d"
  "CMakeFiles/ps_kernel.dir/proxies.cpp.o"
  "CMakeFiles/ps_kernel.dir/proxies.cpp.o.d"
  "CMakeFiles/ps_kernel.dir/spin_barrier.cpp.o"
  "CMakeFiles/ps_kernel.dir/spin_barrier.cpp.o.d"
  "CMakeFiles/ps_kernel.dir/workload.cpp.o"
  "CMakeFiles/ps_kernel.dir/workload.cpp.o.d"
  "libps_kernel.a"
  "libps_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
