
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/arithmetic_kernel.cpp" "src/kernel/CMakeFiles/ps_kernel.dir/arithmetic_kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/ps_kernel.dir/arithmetic_kernel.cpp.o.d"
  "/root/repo/src/kernel/phased.cpp" "src/kernel/CMakeFiles/ps_kernel.dir/phased.cpp.o" "gcc" "src/kernel/CMakeFiles/ps_kernel.dir/phased.cpp.o.d"
  "/root/repo/src/kernel/proxies.cpp" "src/kernel/CMakeFiles/ps_kernel.dir/proxies.cpp.o" "gcc" "src/kernel/CMakeFiles/ps_kernel.dir/proxies.cpp.o.d"
  "/root/repo/src/kernel/spin_barrier.cpp" "src/kernel/CMakeFiles/ps_kernel.dir/spin_barrier.cpp.o" "gcc" "src/kernel/CMakeFiles/ps_kernel.dir/spin_barrier.cpp.o.d"
  "/root/repo/src/kernel/workload.cpp" "src/kernel/CMakeFiles/ps_kernel.dir/workload.cpp.o" "gcc" "src/kernel/CMakeFiles/ps_kernel.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
