# Empty compiler generated dependencies file for ps_kernel.
# This may be replaced when dependencies are built.
