file(REMOVE_RECURSE
  "libps_kernel.a"
)
