file(REMOVE_RECURSE
  "libps_rm.a"
)
