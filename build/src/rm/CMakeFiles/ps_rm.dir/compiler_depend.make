# Empty compiler generated dependencies file for ps_rm.
# This may be replaced when dependencies are built.
