
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rm/allocation.cpp" "src/rm/CMakeFiles/ps_rm.dir/allocation.cpp.o" "gcc" "src/rm/CMakeFiles/ps_rm.dir/allocation.cpp.o.d"
  "/root/repo/src/rm/job.cpp" "src/rm/CMakeFiles/ps_rm.dir/job.cpp.o" "gcc" "src/rm/CMakeFiles/ps_rm.dir/job.cpp.o.d"
  "/root/repo/src/rm/power_manager.cpp" "src/rm/CMakeFiles/ps_rm.dir/power_manager.cpp.o" "gcc" "src/rm/CMakeFiles/ps_rm.dir/power_manager.cpp.o.d"
  "/root/repo/src/rm/scheduler.cpp" "src/rm/CMakeFiles/ps_rm.dir/scheduler.cpp.o" "gcc" "src/rm/CMakeFiles/ps_rm.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
