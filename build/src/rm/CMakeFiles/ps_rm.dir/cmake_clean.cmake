file(REMOVE_RECURSE
  "CMakeFiles/ps_rm.dir/allocation.cpp.o"
  "CMakeFiles/ps_rm.dir/allocation.cpp.o.d"
  "CMakeFiles/ps_rm.dir/job.cpp.o"
  "CMakeFiles/ps_rm.dir/job.cpp.o.d"
  "CMakeFiles/ps_rm.dir/power_manager.cpp.o"
  "CMakeFiles/ps_rm.dir/power_manager.cpp.o.d"
  "CMakeFiles/ps_rm.dir/scheduler.cpp.o"
  "CMakeFiles/ps_rm.dir/scheduler.cpp.o.d"
  "libps_rm.a"
  "libps_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
