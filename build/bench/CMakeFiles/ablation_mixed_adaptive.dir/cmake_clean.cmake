file(REMOVE_RECURSE
  "CMakeFiles/ablation_mixed_adaptive.dir/ablation_mixed_adaptive.cpp.o"
  "CMakeFiles/ablation_mixed_adaptive.dir/ablation_mixed_adaptive.cpp.o.d"
  "ablation_mixed_adaptive"
  "ablation_mixed_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixed_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
