# Empty dependencies file for ablation_mixed_adaptive.
# This may be replaced when dependencies are built.
