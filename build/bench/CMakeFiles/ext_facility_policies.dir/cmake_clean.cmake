file(REMOVE_RECURSE
  "CMakeFiles/ext_facility_policies.dir/ext_facility_policies.cpp.o"
  "CMakeFiles/ext_facility_policies.dir/ext_facility_policies.cpp.o.d"
  "ext_facility_policies"
  "ext_facility_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_facility_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
