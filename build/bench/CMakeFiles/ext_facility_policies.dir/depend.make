# Empty dependencies file for ext_facility_policies.
# This may be replaced when dependencies are built.
