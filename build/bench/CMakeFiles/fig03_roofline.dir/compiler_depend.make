# Empty compiler generated dependencies file for fig03_roofline.
# This may be replaced when dependencies are built.
