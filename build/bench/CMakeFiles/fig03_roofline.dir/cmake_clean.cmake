file(REMOVE_RECURSE
  "CMakeFiles/fig03_roofline.dir/fig03_roofline.cpp.o"
  "CMakeFiles/fig03_roofline.dir/fig03_roofline.cpp.o.d"
  "fig03_roofline"
  "fig03_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
