# Empty dependencies file for ext_socket_asymmetry.
# This may be replaced when dependencies are built.
