file(REMOVE_RECURSE
  "CMakeFiles/ext_socket_asymmetry.dir/ext_socket_asymmetry.cpp.o"
  "CMakeFiles/ext_socket_asymmetry.dir/ext_socket_asymmetry.cpp.o.d"
  "ext_socket_asymmetry"
  "ext_socket_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_socket_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
