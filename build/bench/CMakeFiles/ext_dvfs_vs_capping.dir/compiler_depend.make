# Empty compiler generated dependencies file for ext_dvfs_vs_capping.
# This may be replaced when dependencies are built.
