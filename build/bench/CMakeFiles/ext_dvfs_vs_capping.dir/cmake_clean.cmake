file(REMOVE_RECURSE
  "CMakeFiles/ext_dvfs_vs_capping.dir/ext_dvfs_vs_capping.cpp.o"
  "CMakeFiles/ext_dvfs_vs_capping.dir/ext_dvfs_vs_capping.cpp.o.d"
  "ext_dvfs_vs_capping"
  "ext_dvfs_vs_capping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dvfs_vs_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
