# Empty compiler generated dependencies file for fig08_savings_grid.
# This may be replaced when dependencies are built.
