file(REMOVE_RECURSE
  "CMakeFiles/fig08_savings_grid.dir/fig08_savings_grid.cpp.o"
  "CMakeFiles/fig08_savings_grid.dir/fig08_savings_grid.cpp.o.d"
  "fig08_savings_grid"
  "fig08_savings_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_savings_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
