file(REMOVE_RECURSE
  "CMakeFiles/fig06_variation_clusters.dir/fig06_variation_clusters.cpp.o"
  "CMakeFiles/fig06_variation_clusters.dir/fig06_variation_clusters.cpp.o.d"
  "fig06_variation_clusters"
  "fig06_variation_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_variation_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
