# Empty compiler generated dependencies file for fig06_variation_clusters.
# This may be replaced when dependencies are built.
