file(REMOVE_RECURSE
  "CMakeFiles/ext_multiphase.dir/ext_multiphase.cpp.o"
  "CMakeFiles/ext_multiphase.dir/ext_multiphase.cpp.o.d"
  "ext_multiphase"
  "ext_multiphase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
