# Empty dependencies file for ext_multiphase.
# This may be replaced when dependencies are built.
