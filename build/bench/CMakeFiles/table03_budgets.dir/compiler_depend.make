# Empty compiler generated dependencies file for table03_budgets.
# This may be replaced when dependencies are built.
