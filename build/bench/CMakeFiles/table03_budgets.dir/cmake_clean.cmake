file(REMOVE_RECURSE
  "CMakeFiles/table03_budgets.dir/table03_budgets.cpp.o"
  "CMakeFiles/table03_budgets.dir/table03_budgets.cpp.o.d"
  "table03_budgets"
  "table03_budgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_budgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
