file(REMOVE_RECURSE
  "CMakeFiles/validate_claims.dir/validate_claims.cpp.o"
  "CMakeFiles/validate_claims.dir/validate_claims.cpp.o.d"
  "validate_claims"
  "validate_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
