# Empty dependencies file for validate_claims.
# This may be replaced when dependencies are built.
