# Empty dependencies file for table01_system.
# This may be replaced when dependencies are built.
