file(REMOVE_RECURSE
  "CMakeFiles/table01_system.dir/table01_system.cpp.o"
  "CMakeFiles/table01_system.dir/table01_system.cpp.o.d"
  "table01_system"
  "table01_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
