# Empty dependencies file for ext_model_sensitivity.
# This may be replaced when dependencies are built.
