file(REMOVE_RECURSE
  "CMakeFiles/ext_model_sensitivity.dir/ext_model_sensitivity.cpp.o"
  "CMakeFiles/ext_model_sensitivity.dir/ext_model_sensitivity.cpp.o.d"
  "ext_model_sensitivity"
  "ext_model_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_model_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
