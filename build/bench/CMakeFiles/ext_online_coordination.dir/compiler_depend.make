# Empty compiler generated dependencies file for ext_online_coordination.
# This may be replaced when dependencies are built.
