file(REMOVE_RECURSE
  "CMakeFiles/ext_online_coordination.dir/ext_online_coordination.cpp.o"
  "CMakeFiles/ext_online_coordination.dir/ext_online_coordination.cpp.o.d"
  "ext_online_coordination"
  "ext_online_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_online_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
