# Empty dependencies file for fig07_power_utilization.
# This may be replaced when dependencies are built.
