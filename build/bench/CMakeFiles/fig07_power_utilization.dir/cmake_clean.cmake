file(REMOVE_RECURSE
  "CMakeFiles/fig07_power_utilization.dir/fig07_power_utilization.cpp.o"
  "CMakeFiles/fig07_power_utilization.dir/fig07_power_utilization.cpp.o.d"
  "fig07_power_utilization"
  "fig07_power_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_power_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
