file(REMOVE_RECURSE
  "CMakeFiles/fig01_facility_trace.dir/fig01_facility_trace.cpp.o"
  "CMakeFiles/fig01_facility_trace.dir/fig01_facility_trace.cpp.o.d"
  "fig01_facility_trace"
  "fig01_facility_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_facility_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
