# Empty compiler generated dependencies file for ext_feedback_control.
# This may be replaced when dependencies are built.
