file(REMOVE_RECURSE
  "CMakeFiles/ext_feedback_control.dir/ext_feedback_control.cpp.o"
  "CMakeFiles/ext_feedback_control.dir/ext_feedback_control.cpp.o.d"
  "ext_feedback_control"
  "ext_feedback_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_feedback_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
