# Empty dependencies file for fig05_balancer_power.
# This may be replaced when dependencies are built.
