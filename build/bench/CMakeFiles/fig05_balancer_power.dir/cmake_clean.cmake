file(REMOVE_RECURSE
  "CMakeFiles/fig05_balancer_power.dir/fig05_balancer_power.cpp.o"
  "CMakeFiles/fig05_balancer_power.dir/fig05_balancer_power.cpp.o.d"
  "fig05_balancer_power"
  "fig05_balancer_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_balancer_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
