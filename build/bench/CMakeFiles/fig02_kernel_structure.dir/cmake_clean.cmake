file(REMOVE_RECURSE
  "CMakeFiles/fig02_kernel_structure.dir/fig02_kernel_structure.cpp.o"
  "CMakeFiles/fig02_kernel_structure.dir/fig02_kernel_structure.cpp.o.d"
  "fig02_kernel_structure"
  "fig02_kernel_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_kernel_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
