# Empty compiler generated dependencies file for fig02_kernel_structure.
# This may be replaced when dependencies are built.
