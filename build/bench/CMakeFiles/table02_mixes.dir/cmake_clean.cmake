file(REMOVE_RECURSE
  "CMakeFiles/table02_mixes.dir/table02_mixes.cpp.o"
  "CMakeFiles/table02_mixes.dir/table02_mixes.cpp.o.d"
  "table02_mixes"
  "table02_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
