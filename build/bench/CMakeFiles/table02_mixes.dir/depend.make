# Empty dependencies file for table02_mixes.
# This may be replaced when dependencies are built.
