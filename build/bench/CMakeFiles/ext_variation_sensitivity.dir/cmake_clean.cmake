file(REMOVE_RECURSE
  "CMakeFiles/ext_variation_sensitivity.dir/ext_variation_sensitivity.cpp.o"
  "CMakeFiles/ext_variation_sensitivity.dir/ext_variation_sensitivity.cpp.o.d"
  "ext_variation_sensitivity"
  "ext_variation_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_variation_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
