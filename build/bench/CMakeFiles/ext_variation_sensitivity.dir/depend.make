# Empty dependencies file for ext_variation_sensitivity.
# This may be replaced when dependencies are built.
