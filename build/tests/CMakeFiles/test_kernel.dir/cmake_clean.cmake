file(REMOVE_RECURSE
  "CMakeFiles/test_kernel.dir/kernel/arithmetic_kernel_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/arithmetic_kernel_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/phased_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/phased_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/proxies_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/proxies_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/spin_barrier_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/spin_barrier_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/workload_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/workload_test.cpp.o.d"
  "test_kernel"
  "test_kernel.pdb"
  "test_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
