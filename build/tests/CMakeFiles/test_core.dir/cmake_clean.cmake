file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/budget_test.cpp.o"
  "CMakeFiles/test_core.dir/core/budget_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/coordination_test.cpp.o"
  "CMakeFiles/test_core.dir/core/coordination_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/endpoint_test.cpp.o"
  "CMakeFiles/test_core.dir/core/endpoint_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/golden_allocation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/golden_allocation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mixes_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mixes_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/policy_fuzz_test.cpp.o"
  "CMakeFiles/test_core.dir/core/policy_fuzz_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/policy_properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/policy_properties_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/policy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/policy_util_test.cpp.o"
  "CMakeFiles/test_core.dir/core/policy_util_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
