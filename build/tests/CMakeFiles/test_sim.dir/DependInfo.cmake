
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cluster_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/cluster_test.cpp.o.d"
  "/root/repo/tests/sim/facility_trace_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/facility_trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/facility_trace_test.cpp.o.d"
  "/root/repo/tests/sim/job_sim_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/job_sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/job_sim_test.cpp.o.d"
  "/root/repo/tests/sim/telemetry_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/telemetry_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/telemetry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/ps_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/ps_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ps_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
