file(REMOVE_RECURSE
  "CMakeFiles/test_facility.dir/facility/backfill_facility_test.cpp.o"
  "CMakeFiles/test_facility.dir/facility/backfill_facility_test.cpp.o.d"
  "CMakeFiles/test_facility.dir/facility/facility_io_test.cpp.o"
  "CMakeFiles/test_facility.dir/facility/facility_io_test.cpp.o.d"
  "CMakeFiles/test_facility.dir/facility/facility_test.cpp.o"
  "CMakeFiles/test_facility.dir/facility/facility_test.cpp.o.d"
  "CMakeFiles/test_facility.dir/facility/failure_test.cpp.o"
  "CMakeFiles/test_facility.dir/facility/failure_test.cpp.o.d"
  "test_facility"
  "test_facility.pdb"
  "test_facility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
