file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/agent_registry_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/agent_registry_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/agent_tree_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/agent_tree_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/agents_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/agents_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/balancer_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/balancer_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/characterization_io_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/characterization_io_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/characterization_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/characterization_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/controller_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/controller_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/energy_efficient_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/energy_efficient_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/feedback_agent_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/feedback_agent_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/phased_controller_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/phased_controller_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/platform_io_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/platform_io_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/recording_agent_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/recording_agent_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/report_writer_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/report_writer_test.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
