
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/agent_registry_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/agent_registry_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/agent_registry_test.cpp.o.d"
  "/root/repo/tests/runtime/agent_tree_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/agent_tree_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/agent_tree_test.cpp.o.d"
  "/root/repo/tests/runtime/agents_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/agents_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/agents_test.cpp.o.d"
  "/root/repo/tests/runtime/balancer_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/balancer_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/balancer_test.cpp.o.d"
  "/root/repo/tests/runtime/characterization_io_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/characterization_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/characterization_io_test.cpp.o.d"
  "/root/repo/tests/runtime/characterization_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/characterization_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/characterization_test.cpp.o.d"
  "/root/repo/tests/runtime/controller_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/controller_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/controller_test.cpp.o.d"
  "/root/repo/tests/runtime/energy_efficient_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/energy_efficient_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/energy_efficient_test.cpp.o.d"
  "/root/repo/tests/runtime/feedback_agent_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/feedback_agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/feedback_agent_test.cpp.o.d"
  "/root/repo/tests/runtime/phased_controller_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/phased_controller_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/phased_controller_test.cpp.o.d"
  "/root/repo/tests/runtime/platform_io_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/platform_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/platform_io_test.cpp.o.d"
  "/root/repo/tests/runtime/recording_agent_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/recording_agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/recording_agent_test.cpp.o.d"
  "/root/repo/tests/runtime/report_writer_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/report_writer_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/report_writer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/ps_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/ps_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ps_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
