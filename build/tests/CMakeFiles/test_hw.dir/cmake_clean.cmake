file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/hw_properties_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/hw_properties_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/msr_allowlist_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/msr_allowlist_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/msr_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/msr_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/node_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/node_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/perf_model_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/perf_model_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/power_model_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/power_model_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/rapl_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/rapl_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/socket_asymmetry_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/socket_asymmetry_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/variation_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/variation_test.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
