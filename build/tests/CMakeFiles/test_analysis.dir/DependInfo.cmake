
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/experiment_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/experiment_test.cpp.o.d"
  "/root/repo/tests/analysis/export_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/export_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/export_test.cpp.o.d"
  "/root/repo/tests/analysis/heatmap_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/heatmap_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/heatmap_test.cpp.o.d"
  "/root/repo/tests/analysis/roofline_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/roofline_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/roofline_test.cpp.o.d"
  "/root/repo/tests/analysis/sensitivity_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/sensitivity_test.cpp.o.d"
  "/root/repo/tests/analysis/validation_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/ps_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/ps_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ps_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ps_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ps_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
