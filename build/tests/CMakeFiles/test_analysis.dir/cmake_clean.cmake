file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/experiment_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/experiment_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/export_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/export_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/heatmap_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/heatmap_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/roofline_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/roofline_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/sensitivity_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/sensitivity_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/validation_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/validation_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
