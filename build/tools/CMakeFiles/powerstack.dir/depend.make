# Empty dependencies file for powerstack.
# This may be replaced when dependencies are built.
