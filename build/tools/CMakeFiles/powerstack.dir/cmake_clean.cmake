file(REMOVE_RECURSE
  "CMakeFiles/powerstack.dir/powerstack.cpp.o"
  "CMakeFiles/powerstack.dir/powerstack.cpp.o.d"
  "powerstack"
  "powerstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
