# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(powerstack_signals "/root/repo/build/tools/powerstack" "signals")
set_tests_properties(powerstack_signals PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(powerstack_characterize "/root/repo/build/tools/powerstack" "characterize" "--workload" "ymm-i8-w50-x2" "--nodes" "4")
set_tests_properties(powerstack_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(powerstack_budgets "/root/repo/build/tools/powerstack" "budgets" "--mix" "HighPower" "--nodes" "4")
set_tests_properties(powerstack_budgets PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(powerstack_facility "/root/repo/build/tools/powerstack" "facility" "--nodes" "8" "--hours" "24")
set_tests_properties(powerstack_facility PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(powerstack_usage_error "/root/repo/build/tools/powerstack" "bogus")
set_tests_properties(powerstack_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(powerstack_balance "/root/repo/build/tools/powerstack" "balance" "--agent" "tree_balancer" "--nodes" "4")
set_tests_properties(powerstack_balance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
