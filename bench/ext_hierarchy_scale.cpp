// Hierarchy scale soak: one root daemon + 8 rack aggregators driven by
// thousands of lightweight scripted clients (raw sockets + the frame
// codec — no thread-per-client; --jobs driver threads share the fleet).
//
//   ./ext_hierarchy_scale                      # 10k clients, 5 rounds
//   ./ext_hierarchy_scale --quick --jobs 4     # the CI-bounded variant
//
// Reports per-level round-latency quantiles (p50/p99 from the same
// "net.daemon.round_seconds" / "net.aggregator.round_seconds" obs
// histograms a production scrape would read) and proves zero watt
// leakage across a mass disconnect of 7/8 of the fleet: the root's
// reclaimed watts must equal, to the double, the sum of the caps the
// dead clients last read off the wire.
//
// The --out CSV carries one row per completed round — round index, job
// count, budget, granted watts, min/max per-job grant — all derived
// from the deterministic allocation, never from timing, so a --jobs 4
// run byte-matches a --jobs 1 run (CI diffs them; check_bench.py
// --mode hierarchy re-verifies and pins the checksum, the latency
// bands, and the leak in BENCH_hierarchy.json).
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/endpoint.hpp"
#include "net/aggregator.hpp"
#include "net/daemon.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/args.hpp"
#include "util/error.hpp"

namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRacks = 8;

std::string unique_path(const std::string& tag) {
  return "/tmp/ps-hscale-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

std::string job_name(std::size_t index) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "job-%06zu", index);
  return buffer;
}

ps::core::SampleMessage make_sample(const std::string& job,
                                    std::uint64_t sequence) {
  ps::core::SampleMessage sample;
  sample.sequence = sequence;
  sample.job_name = job;
  sample.min_settable_cap_watts = 80.0;
  sample.host_observed_watts = {205.0};
  sample.host_needed_watts = {225.0};
  return sample;
}

struct ScriptedClient {
  ps::net::Socket socket;
  ps::net::FrameDecoder decoder;
  std::string job;
  double last_caps_sum = 0.0;
};

void send_payload(ps::net::Socket& socket, const std::string& payload) {
  const std::string frame = ps::net::encode_frame(payload);
  std::string_view rest = frame;
  while (!rest.empty()) {
    const ps::net::IoResult result = socket.write_some(rest);
    if (result.status == ps::net::IoStatus::kOk) {
      rest.remove_prefix(result.bytes);
      continue;
    }
    if (result.status != ps::net::IoStatus::kWouldBlock ||
        !socket.wait_writable(milliseconds(10'000))) {
      throw ps::Error("scripted client write failed");
    }
  }
}

std::optional<std::string> read_payload(ps::net::Socket& socket,
                                        ps::net::FrameDecoder& decoder,
                                        milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  while (true) {
    if (std::optional<std::string> frame = decoder.next()) {
      return frame;
    }
    const auto remaining =
        std::chrono::duration_cast<milliseconds>(deadline - Clock::now());
    if (remaining <= milliseconds(0) ||
        !socket.wait_readable(remaining)) {
      return std::nullopt;
    }
    char buffer[8192];
    const ps::net::IoResult result =
        socket.read_some(buffer, sizeof(buffer));
    if (result.status == ps::net::IoStatus::kClosed) {
      return std::nullopt;
    }
    if (result.status == ps::net::IoStatus::kOk) {
      decoder.feed({buffer, result.bytes});
    }
  }
}

/// Raises RLIMIT_NOFILE to its hard limit and returns how many clients
/// fit (two fds per client — the client socket and the aggregator-side
/// session — plus headroom for listeners, pipes, and epoll instances).
std::size_t fd_capacity_clients() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return 1024;
  }
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
    ::getrlimit(RLIMIT_NOFILE, &limit);
  }
  const auto usable = static_cast<std::size_t>(limit.rlim_cur);
  return usable > 512 ? (usable - 256) / 2 : 128;
}

/// Runs fn(i) for every i in [0, count) across `jobs` driver threads
/// (contiguous ranges). Rethrows the first failure after joining.
void parallel_over(std::size_t count, std::size_t jobs,
                   const std::function<void(std::size_t)>& fn) {
  jobs = std::max<std::size_t>(1, std::min(jobs, count));
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  const std::size_t chunk = (count + jobs - 1) / jobs;
  for (std::size_t t = 0; t < jobs; ++t) {
    const std::size_t first = t * chunk;
    const std::size_t last = std::min(count, first + chunk);
    if (first >= last) {
      break;
    }
    threads.emplace_back([&, first, last] {
      try {
        for (std::size_t i = first; i < last; ++i) {
          fn(i);
        }
      } catch (const std::exception& error) {
        if (!failed.exchange(true)) {
          std::cerr << "driver thread failed: " << error.what() << "\n";
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (failed.load()) {
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ps::util::ArgParser parser;
  parser.add_flag("--quick", "CI-bounded scale (512 clients, 3 rounds)")
      .add_option("--clients", "10000", "scripted clients (multiple of 8)")
      .add_option("--rounds", "5", "full-tree rounds before the disconnect")
      .add_option("--jobs", "1", "driver threads sharing the client fleet")
      .add_option("--out", "ext_hierarchy_scale.csv",
                  "per-round CSV (deterministic; --jobs invariant)")
      .add_option("--json", "", "latency/leak summary JSON path");
  parser.parse(argc, argv);

  std::size_t total_clients = parser.flag("--quick")
                                  ? 512
                                  : parser.option_size("--clients");
  const std::size_t rounds =
      parser.flag("--quick") ? 3 : parser.option_size("--rounds");
  const std::size_t driver_jobs = parser.option_size("--jobs");

  const std::size_t capacity = fd_capacity_clients();
  if (total_clients > capacity) {
    std::fprintf(stderr,
                 "fd limit caps the fleet at %zu clients (wanted %zu)\n",
                 capacity, total_clients);
    total_clients = capacity;
  }
  total_clients -= total_clients % kRacks;
  const std::size_t per_rack = total_clients / kRacks;
  const double budget = static_cast<double>(total_clients) * 210.0;

  ps::obs::MetricsRegistry root_metrics;
  ps::obs::MetricsRegistry rack_metrics;

  ps::net::DaemonOptions root_options;
  root_options.system_budget_watts = budget;
  root_options.node_tdp_watts = 256.0;
  root_options.uncappable_watts = 16.0;
  root_options.min_jobs = total_clients;
  root_options.tick_interval = milliseconds(10);
  root_options.reclaim_timeout = milliseconds(60'000);
  // The heartbeat must comfortably exceed one full-tree round, which
  // grows with the fleet: a live job mid-round looks "silent" exactly
  // as long as the round takes.
  root_options.heartbeat_timeout =
      milliseconds(500 + 2 * static_cast<long>(total_clients));
  root_options.root_mode = true;
  root_options.obs.metrics = &root_metrics;
  ps::net::PowerDaemon root(root_options);
  const std::string root_path = unique_path("root");
  root.listen_unix(root_path);
  std::thread root_thread([&root] { root.run(); });

  std::vector<std::unique_ptr<ps::net::AggregatorDaemon>> aggregators;
  std::vector<std::thread> aggregator_threads;
  std::vector<std::string> rack_paths;
  for (std::size_t r = 0; r < kRacks; ++r) {
    ps::net::AggregatorOptions options;
    options.rack = "rack" + std::to_string(r);
    options.min_jobs = per_rack;
    options.tick_interval = milliseconds(10);
    options.reclaim_timeout = milliseconds(60'000);
    options.parent_connector =
        [root_path]() -> std::unique_ptr<ps::net::Transport> {
      try {
        return ps::net::make_transport(ps::net::connect_unix(root_path));
      } catch (const ps::Error&) {
        return nullptr;
      }
    };
    options.obs.metrics = &rack_metrics;
    aggregators.push_back(
        std::make_unique<ps::net::AggregatorDaemon>(options));
    rack_paths.push_back(unique_path("rack" + std::to_string(r)));
    aggregators.back()->listen_unix(rack_paths.back());
    aggregator_threads.emplace_back(
        [&aggregator = *aggregators.back()] { aggregator.run(); });
  }

  std::vector<ScriptedClient> clients(total_clients);
  parallel_over(total_clients, driver_jobs, [&](std::size_t i) {
    clients[i].job = job_name(i);
    clients[i].socket = ps::net::connect_unix(rack_paths[i / per_rack]);
  });

  // One lockstep tree round for clients [first, first+count): parallel
  // send phase, then parallel read phase. The grant bookkeeping each
  // driver thread writes is per-client; every cross-client reduction
  // below runs sequentially in index order so the CSV is --jobs
  // invariant to the last bit.
  const auto drive_round = [&](std::size_t first, std::size_t count,
                               std::uint64_t sequence) {
    parallel_over(count, driver_jobs, [&](std::size_t offset) {
      ScriptedClient& client = clients[first + offset];
      send_payload(client.socket,
                   serialize(make_sample(client.job, sequence),
                             ps::core::WireFidelity::kExact));
    });
    parallel_over(count, driver_jobs, [&](std::size_t offset) {
      ScriptedClient& client = clients[first + offset];
      const std::optional<std::string> reply =
          read_payload(client.socket, client.decoder, milliseconds(60'000));
      if (!reply.has_value()) {
        throw ps::Error(client.job + ": no reply to sequence " +
                        std::to_string(sequence));
      }
      const ps::core::PolicyMessage policy =
          ps::core::parse_policy_message(*reply);
      if (policy.job_name != client.job || policy.sequence != sequence) {
        throw ps::Error(client.job + ": mismatched policy reply");
      }
      client.last_caps_sum = 0.0;
      for (const double cap : policy.host_caps_watts) {
        client.last_caps_sum += cap;
      }
    });
  };

  std::ostringstream csv;
  csv << "round,jobs,budget_watts,granted_watts,min_grant,max_grant\n";
  const auto emit_row = [&](std::uint64_t round, std::size_t first,
                            std::size_t count) {
    double granted = 0.0;
    double lo = clients[first].last_caps_sum;
    double hi = lo;
    for (std::size_t i = first; i < first + count; ++i) {
      granted += clients[i].last_caps_sum;
      lo = std::min(lo, clients[i].last_caps_sum);
      hi = std::max(hi, clients[i].last_caps_sum);
    }
    char row[160];
    std::snprintf(row, sizeof(row), "%llu,%zu,%.6f,%.6f,%.6f,%.6f\n",
                  static_cast<unsigned long long>(round), count, budget,
                  granted, lo, hi);
    csv << row;
    return granted;
  };

  std::printf("hierarchy scale: %zu clients over %zu racks, %zu rounds, "
              "%zu driver threads, budget %.0f W\n",
              total_clients, kRacks, rounds, driver_jobs, budget);

  const auto soak_start = Clock::now();
  for (std::uint64_t sequence = 0; sequence < rounds; ++sequence) {
    drive_round(0, total_clients, sequence);
    const double granted = emit_row(sequence, 0, total_clients);
    if (granted > budget + 1e-6) {
      std::cerr << "round " << sequence << " granted " << granted
                << " W over the " << budget << " W budget\n";
      std::exit(1);
    }
  }
  const double soak_seconds =
      std::chrono::duration<double>(Clock::now() - soak_start).count();

  // Mass disconnect: racks 1..7 vanish at once; rack 0 keeps sampling so
  // the root's heartbeat scan can prove the silent jobs dead.
  double dead_caps_sum = 0.0;
  for (std::size_t i = per_rack; i < total_clients; ++i) {
    dead_caps_sum += clients[i].last_caps_sum;
  }
  parallel_over(total_clients - per_rack, driver_jobs,
                [&](std::size_t offset) {
                  clients[per_rack + offset].socket.close();
                });
  drive_round(0, per_rack, rounds);

  const std::size_t dead_jobs = total_clients - per_rack;
  const auto evict_deadline = Clock::now() + std::chrono::seconds(60);
  while (root.stats().jobs_evicted < dead_jobs &&
         Clock::now() < evict_deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  const ps::net::DaemonStats after = root.stats();
  if (after.jobs_evicted != dead_jobs) {
    std::cerr << "only " << after.jobs_evicted << " of " << dead_jobs
              << " dead jobs were evicted\n";
    std::exit(1);
  }
  const double leak = std::abs(after.watts_reclaimed - dead_caps_sum);
  if (leak > 1e-6) {
    std::cerr << "watt leak on mass disconnect: reclaimed "
              << after.watts_reclaimed << " W, the dead fleet held "
              << dead_caps_sum << " W (leak " << leak << " W)\n";
    std::exit(1);
  }
  if (after.budget_violations != 0) {
    std::cerr << after.budget_violations << " budget violations\n";
    std::exit(1);
  }

  // The freed watts are re-allocatable by the surviving rack.
  drive_round(0, per_rack, rounds + 1);
  emit_row(rounds + 1, 0, per_rack);

  parallel_over(per_rack, driver_jobs, [&](std::size_t i) {
    clients[i].socket.close();
  });
  for (auto& aggregator : aggregators) {
    aggregator->stop();
  }
  for (std::thread& thread : aggregator_threads) {
    thread.join();
  }
  root.stop();
  root_thread.join();
  std::remove(root_path.c_str());
  for (const std::string& path : rack_paths) {
    std::remove(path.c_str());
  }

  // Per-level latency quantiles off the obs histograms.
  double root_p50 = 0.0;
  double root_p99 = 0.0;
  double rack_p50 = 0.0;
  double rack_p99 = 0.0;
  for (const auto& [name, histogram] : root_metrics.snapshot().histograms) {
    if (name == "net.daemon.round_seconds") {
      root_p50 = ps::obs::histogram_quantile(histogram, 0.50);
      root_p99 = ps::obs::histogram_quantile(histogram, 0.99);
    }
  }
  for (const auto& [name, histogram] : rack_metrics.snapshot().histograms) {
    if (name == "net.aggregator.round_seconds") {
      rack_p50 = ps::obs::histogram_quantile(histogram, 0.50);
      rack_p99 = ps::obs::histogram_quantile(histogram, 0.99);
    }
  }
  std::printf("soak: %zu full rounds in %.3f s; root round p50 %.4f s "
              "p99 %.4f s; rack round p50 %.4f s p99 %.4f s\n",
              rounds, soak_seconds, root_p50, root_p99, rack_p50, rack_p99);
  std::printf("mass disconnect: %zu jobs evicted, %.6f W reclaimed, "
              "leak %.9f W\n",
              dead_jobs, after.watts_reclaimed, leak);

  const std::string out = parser.option("--out");
  if (!out.empty()) {
    std::ofstream file(out, std::ios::trunc);
    file << csv.str();
  }
  const std::string json = parser.option("--json");
  if (!json.empty()) {
    std::ofstream file(json, std::ios::trunc);
    file << "{\n"
         << "  \"bench\": \"ext_hierarchy_scale\",\n"
         << "  \"clients\": " << total_clients << ",\n"
         << "  \"racks\": " << kRacks << ",\n"
         << "  \"rounds\": " << rounds << ",\n"
         << "  \"root_round_p50_seconds\": " << root_p50 << ",\n"
         << "  \"root_round_p99_seconds\": " << root_p99 << ",\n"
         << "  \"rack_round_p50_seconds\": " << rack_p50 << ",\n"
         << "  \"rack_round_p99_seconds\": " << rack_p99 << ",\n"
         << "  \"leak_watts\": " << leak << ",\n"
         << "  \"evicted_jobs\": " << dead_jobs << "\n"
         << "}\n";
  }
  return 0;
}
