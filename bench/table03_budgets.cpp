// Table III reproduction: the min / ideal / max system-wide power budgets
// derived from each mix's characterization runs, printed at the paper's
// 900-node scale alongside the paper's own values.
#include <cstdio>

#include <optional>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  analysis::ExperimentOptions options = bench::parse_options(argc, argv);
  analysis::ExperimentDriver driver(options);
  const analysis::SweepExecutor executor(options.sweep_workers);

  std::printf("Table III: Power budgets for each workload mix "
              "(%zu nodes/job, scaled to 900 nodes)\n\n",
              options.nodes_per_job);

  struct PaperRow {
    core::MixKind kind;
    double min_kw, ideal_kw, max_kw;
  };
  const PaperRow paper[] = {
      {core::MixKind::kNeedUsedPower, 167, 171, 209},
      {core::MixKind::kHighImbalance, 141, 163, 209},
      {core::MixKind::kWastefulPower, 136, 144, 209},
      {core::MixKind::kLowPower, 138, 152, 209},
      {core::MixKind::kHighPower, 140, 177, 209},
      {core::MixKind::kRandomLarge, 139, 164, 209},
  };

  // Table III is pure characterization: the executor parallelizes the
  // per-mix characterization runs themselves.
  constexpr std::size_t kMixCount = sizeof(paper) / sizeof(paper[0]);
  std::vector<std::optional<analysis::MixExperiment>> experiments(kMixCount);
  executor.for_each(kMixCount, [&](std::size_t m) {
    experiments[m].emplace(
        driver.prepare(core::make_mix(paper[m].kind, options.nodes_per_job)));
  });

  util::TextTable table;
  table.add_column("Workload Mix", util::Align::kLeft);
  table.add_column("min (kW)", util::Align::kRight, 0);
  table.add_column("ideal (kW)", util::Align::kRight, 0);
  table.add_column("max (kW)", util::Align::kRight, 0);
  table.add_column("paper min", util::Align::kRight, 0);
  table.add_column("paper ideal", util::Align::kRight, 0);
  table.add_column("paper max", util::Align::kRight, 0);
  for (std::size_t m = 0; m < kMixCount; ++m) {
    const PaperRow& row = paper[m];
    const analysis::MixExperiment& experiment = *experiments[m];
    const core::PowerBudgets& budgets = experiment.budgets();
    const std::size_t hosts = experiment.total_hosts();
    table.begin_row();
    table.add_cell(std::string(core::to_string(row.kind)));
    table.add_number(bench::to_paper_scale_kw(budgets.min_watts, hosts));
    table.add_number(bench::to_paper_scale_kw(budgets.ideal_watts, hosts));
    table.add_number(bench::to_paper_scale_kw(budgets.max_watts, hosts));
    table.add_number(row.min_kw);
    table.add_number(row.ideal_kw);
    table.add_number(row.max_kw);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("TDP of all CPUs is %.0f kW (packages only; the DRAM plane "
              "adds %.1f kW).\n",
              hw::QuartzSpec::kExperimentTdpW / 1000.0,
              hw::QuartzSpec::kDramPowerPerNodeW * 900.0 / 1000.0);
  return 0;
}
