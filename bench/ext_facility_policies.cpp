// Extension experiment (DESIGN.md Section 5): policy choice at facility
// scale. The paper evaluates fixed 9-job mixes; here a week-long Poisson
// job trace runs through the event-driven facility manager under an
// aggressive system budget, once per policy. Application awareness at
// the facility level shows up as throughput (more jobs finished) and
// science-per-watt, not just per-mix savings.
#include <cstdio>

#include "facility/facility_manager.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const std::size_t nodes = argc > 1 ? 24 : 64;
  const double horizon = argc > 1 ? 72.0 : 24.0 * 7.0;

  facility::JobTraceOptions trace_options;
  trace_options.horizon_hours = horizon;
  trace_options.arrivals_per_hour = nodes == 64 ? 1.0 : 0.6;
  trace_options.min_nodes = nodes / 8;
  trace_options.max_nodes = nodes / 2;
  trace_options.min_duration_hours = 1.0;
  trace_options.max_duration_hours = 12.0;
  util::Rng rng(0xfac71);
  const auto trace = facility::generate_job_trace(rng, trace_options);

  std::printf("Facility-scale policy comparison: %zu nodes, %.0f h "
              "horizon, %zu submitted jobs,\naggressive budget (72%% of "
              "TDP)\n\n", nodes, horizon, trace.size());

  util::TextTable table;
  table.add_column("policy", util::Align::kLeft);
  table.add_column("completed", util::Align::kRight, 0);
  table.add_column("mean wait (h)", util::Align::kRight, 2);
  table.add_column("mean power (kW)", util::Align::kRight, 2);
  table.add_column("peak power (kW)", util::Align::kRight, 2);
  table.add_column("energy (MJ)", util::Align::kRight, 1);
  table.add_column("utilization", util::Align::kRight, 1);

  struct Case {
    core::PolicyKind policy;
    bool backfill;
  };
  const Case cases[] = {
      {core::PolicyKind::kStaticCaps, false},
      {core::PolicyKind::kMinimizeWaste, false},
      {core::PolicyKind::kJobAdaptive, false},
      {core::PolicyKind::kMixedAdaptive, false},
      {core::PolicyKind::kStaticCaps, true},
      {core::PolicyKind::kMixedAdaptive, true},
  };
  for (const Case& test_case : cases) {
    const core::PolicyKind kind = test_case.policy;
    sim::Cluster cluster(nodes);
    facility::FacilityOptions options;
    options.horizon_hours = horizon;
    options.step_hours = 0.1;
    options.policy = kind;
    options.backfill = test_case.backfill;
    options.system_budget_watts =
        0.72 * cluster.node(0).tdp() * static_cast<double>(nodes);
    facility::FacilityManager manager(cluster, options);
    const facility::FacilityResult result = manager.run(trace);
    table.begin_row();
    table.add_cell(std::string(core::to_string(kind)) +
                   (test_case.backfill ? " + backfill" : ""));
    table.add_cell(std::to_string(result.completed_jobs));
    table.add_number(result.mean_wait_hours());
    table.add_number(result.mean_power_watts() / 1000.0);
    table.add_number(result.peak_power_watts() / 1000.0);
    table.add_number(result.total_energy_joules / 1e6);
    table.add_percent(result.mean_utilization());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Under the same aggressive budget, application-aware "
              "policies finish jobs\nsooner (shorter critical paths), "
              "which drains the queue faster and lifts\nthroughput — the "
              "facility-level version of the paper's takeaways. EASY\n"
              "backfill composes with any power policy and attacks queue "
              "waits directly.\n");
  return 0;
}
