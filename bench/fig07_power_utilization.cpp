// Fig. 7 reproduction: mean power used by each policy as a percentage of
// the system-wide budget, across workload mixes and budget levels.
// Paper markers: (a) at the max budget, performance-aware policies draw
// less power; (b) at the ideal budget, system-power-aware policies
// utilize more of the budget than JobAdaptive.
#include <cstdio>
#include <fstream>
#include <optional>

#include "analysis/export.hpp"
#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const analysis::ExperimentOptions options =
      bench::parse_options(argc, argv);
  analysis::ExperimentDriver driver(options);
  const analysis::SweepExecutor executor(options.sweep_workers);

  std::printf("Fig. 7: Mean power as %% of system budget "
              "(%zu nodes/job, %zu iterations, %zu workers)\n",
              options.nodes_per_job, options.iterations,
              executor.worker_count());
  std::printf("Values > 100%% exceed the budget ('!'). Paper markers: (a) "
              "max-budget columns,\n(b) ideal-budget columns.\n\n");

  // Characterize every mix once (in parallel — each experiment works on
  // private node clones), then fan the full grid out over the executor.
  const std::vector<core::MixKind> kinds = core::all_mix_kinds();
  std::vector<std::optional<analysis::MixExperiment>> experiments(
      kinds.size());
  executor.for_each(kinds.size(), [&](std::size_t m) {
    experiments[m].emplace(
        driver.prepare(core::make_mix(kinds[m], options.nodes_per_job)));
  });
  std::vector<const analysis::MixExperiment*> prepared;
  for (const auto& experiment : experiments) {
    prepared.push_back(&*experiment);
  }
  const std::vector<core::BudgetLevel> levels = core::all_budget_levels();
  const std::vector<core::PolicyKind> policies = core::all_policy_kinds();
  const analysis::SweepGridResult grid =
      analysis::run_grid(executor, prepared, levels, policies);

  std::vector<analysis::MixRunResult> csv_runs;
  for (std::size_t m = 0; m < kinds.size(); ++m) {
    util::TextTable table;
    table.add_column(std::string(core::to_string(kinds[m])),
                     util::Align::kLeft);
    for (core::BudgetLevel level : levels) {
      table.add_column(std::string(core::to_string(level)),
                       util::Align::kRight, 1);
    }
    for (core::PolicyKind policy : policies) {
      table.begin_row();
      table.add_cell(std::string(core::to_string(policy)));
      for (core::BudgetLevel level : levels) {
        const analysis::MixRunResult& result = grid.at(m, level, policy);
        csv_runs.push_back(result);
        std::string cell = util::format_fixed(
            result.power_fraction_of_budget() * 100.0, 1);
        cell += result.within_budget ? "%" : "%!";
        table.add_cell(std::move(cell));
      }
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  const std::string out =
      bench::output_path(argc, argv, "fig07_grid.csv");
  std::ofstream csv(out);
  analysis::write_grid_csv(csv, csv_runs);
  std::printf("Wrote %s (%zu runs)\n", out.c_str(), csv_runs.size());
  return 0;
}
