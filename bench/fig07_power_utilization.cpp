// Fig. 7 reproduction: mean power used by each policy as a percentage of
// the system-wide budget, across workload mixes and budget levels.
// Paper markers: (a) at the max budget, performance-aware policies draw
// less power; (b) at the ideal budget, system-power-aware policies
// utilize more of the budget than JobAdaptive.
#include <cstdio>
#include <fstream>

#include "analysis/export.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const analysis::ExperimentOptions options =
      bench::parse_options(argc, argv);
  analysis::ExperimentDriver driver(options);

  std::printf("Fig. 7: Mean power as %% of system budget "
              "(%zu nodes/job, %zu iterations)\n",
              options.nodes_per_job, options.iterations);
  std::printf("Values > 100%% exceed the budget ('!'). Paper markers: (a) "
              "max-budget columns,\n(b) ideal-budget columns.\n\n");

  std::vector<analysis::MixRunResult> csv_runs;
  for (core::MixKind kind : core::all_mix_kinds()) {
    analysis::MixExperiment experiment =
        driver.prepare(core::make_mix(kind, options.nodes_per_job));
    util::TextTable table;
    table.add_column(std::string(core::to_string(kind)),
                     util::Align::kLeft);
    for (core::BudgetLevel level : core::all_budget_levels()) {
      table.add_column(std::string(core::to_string(level)),
                       util::Align::kRight, 1);
    }
    for (core::PolicyKind policy : core::all_policy_kinds()) {
      table.begin_row();
      table.add_cell(std::string(core::to_string(policy)));
      for (core::BudgetLevel level : core::all_budget_levels()) {
        const analysis::MixRunResult result =
            experiment.run(level, policy);
        csv_runs.push_back(result);
        std::string cell = util::format_fixed(
            result.power_fraction_of_budget() * 100.0, 1);
        cell += result.within_budget ? "%" : "%!";
        table.add_cell(std::move(cell));
      }
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::ofstream csv("fig07_grid.csv");
  analysis::write_grid_csv(csv, csv_runs);
  std::printf("Wrote fig07_grid.csv (%zu runs)\n", csv_runs.size());
  return 0;
}
