// Fig. 3 reproduction: roofline of the synthetic kernel on the modeled
// platform. Prints the ceiling lines (memory bandwidth, per-width compute
// peaks) and the kernel's achieved throughput across the intensity sweep,
// verifying the kernel reaches the envelope everywhere — the paper's
// validation that the kernel "covers the full spectrum of achievable
// throughput of the platform".
#include <cstdio>

#include "analysis/roofline_analysis.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  const hw::NodeModel node(0, 1.0);
  const analysis::RooflineAnalysis analysis =
      analysis::analyze_roofline(node, analysis::fig3_intensities());

  std::printf("Fig. 3: Roofline of the synthetic kernel (node level, "
              "uncapped)\n\n");
  std::printf("Ceilings:\n");
  std::printf("  DRAM bandwidth:        %7.2f GB/s\n",
              analysis.memory_bandwidth_gbs);
  std::printf("  Scalar FMA peak:       %7.1f GFLOPS\n",
              analysis.scalar_peak_gflops);
  std::printf("  Vector FMA peak (xmm): %7.1f GFLOPS\n",
              analysis.xmm_peak_gflops);
  std::printf("  Vector FMA peak (ymm): %7.1f GFLOPS\n",
              analysis.ymm_peak_gflops);
  std::printf("  Ridge point (ymm):     %7.2f FLOPs/byte\n\n",
              analysis.ridge_intensity_ymm);

  util::TextTable table;
  table.add_column("FLOP/Byte", util::Align::kRight, 3);
  table.add_column("width", util::Align::kLeft);
  table.add_column("achieved GFLOPS", util::Align::kRight, 1);
  table.add_column("envelope GFLOPS", util::Align::kRight, 1);
  table.add_column("efficiency", util::Align::kRight, 1);
  for (const auto& point : analysis.points) {
    table.begin_row();
    table.add_number(point.intensity);
    table.add_cell(std::string(hw::to_string(point.width)));
    table.add_number(point.achieved_gflops);
    table.add_number(point.envelope_gflops);
    table.add_percent(point.efficiency());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Every configuration reaches the platform envelope, bounded\n"
              "by DRAM bandwidth on the left and the vector FMA peak on\n"
              "the right (paper Fig. 3).\n");
  return 0;
}
