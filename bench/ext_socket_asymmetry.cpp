// Extension experiment: intra-node package asymmetry. The paper controls
// for *inter-node* variation by binning nodes (Fig. 6); within a node,
// the two packages also differ, and a node-level cap split evenly lets
// the leakier package pace the whole node. An efficiency-aware split
// (leakier package gets proportionally more budget) recovers the loss —
// a knob below even the paper's per-host granularity.
#include <cstdio>

#include "hw/node.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  std::printf("Intra-node package asymmetry: compute-bound phase (I=32, "
              "ymm) under a\n190 W node cap, by eta spread and split "
              "policy\n\n");

  util::TextTable table;
  table.add_column("eta spread", util::Align::kLeft);
  table.add_column("split", util::Align::kLeft);
  table.add_column("freq (GHz)", util::Align::kRight, 3);
  table.add_column("time (ms)", util::Align::kRight, 2);
  table.add_column("power (W)", util::Align::kRight, 1);
  table.add_column("vs even", util::Align::kRight, 2);

  const double spreads[] = {0.0, 0.1, 0.2, 0.3};
  for (double spread : spreads) {
    double even_seconds = 0.0;
    for (int which = 0; which < 2; ++which) {
      hw::NodeParams params;
      params.cap_split = which == 0 ? hw::CapSplitPolicy::kEven
                                    : hw::CapSplitPolicy::kEfficiencyAware;
      hw::NodeModel node(0, 1.0 - spread / 2.0, 1.0 + spread / 2.0,
                         params);
      const hw::PhaseResult result = node.preview_compute(
          1.0, 32.0, hw::VectorWidth::kYmm256, 190.0);
      if (which == 0) {
        even_seconds = result.seconds;
      }
      table.begin_row();
      table.add_cell(which == 0
                         ? "+/-" + util::format_fixed(spread / 2.0, 2)
                         : "");
      table.add_cell(which == 0 ? "even" : "efficiency-aware");
      table.add_number(result.frequency_ghz);
      table.add_number(result.seconds * 1000.0);
      table.add_number(result.power_watts);
      table.add_percent(result.seconds / even_seconds - 1.0);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The even split loses several percent of compute-bound "
              "performance per 10%%\nof intra-node eta spread; the "
              "efficiency-aware split recovers nearly all of\nit at the "
              "same node cap.\n");
  return 0;
}
