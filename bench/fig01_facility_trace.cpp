// Fig. 1 reproduction: facility power of a Quartz-like system over one
// year — instantaneous draw, 1-day moving average, and the 1.35 MW rating
// line. Prints a monthly summary series plus the headline statistics the
// paper's motivation rests on (mean ~0.83 MW versus 1.35 MW procured).
// A second section regenerates the same under-utilization shape from the
// event-driven facility simulation (real scheduler + policy + nodes)
// instead of the statistical trace model.
#include <cstdio>

#include "facility/facility_manager.hpp"
#include "sim/facility_trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  util::Rng rng(0xf1a);
  const sim::FacilityTraceParams params;
  const sim::FacilityTrace trace =
      sim::generate_facility_trace(params, rng);

  std::printf("Fig. 1: Total power consumption, synthetic Quartz-like "
              "facility trace\n");
  std::printf("Rating (dashed line): %.2f MW\n\n", params.peak_rating_mw);

  util::TextTable table;
  table.add_column("Month", util::Align::kLeft);
  table.add_column("Mean (MW)", util::Align::kRight, 3);
  table.add_column("Min (MW)", util::Align::kRight, 3);
  table.add_column("Max (MW)", util::Align::kRight, 3);
  table.add_column("1-day avg end (MW)", util::Align::kRight, 3);

  const char* months[] = {"Nov '17", "Dec '17", "Jan '18", "Feb '18",
                          "Mar '18", "Apr '18", "May '18", "Jun '18",
                          "Jul '18", "Aug '18"};
  const std::size_t per_month = trace.instantaneous_mw.size() / 10;
  for (std::size_t m = 0; m < 10; ++m) {
    util::RunningStats stats;
    for (std::size_t s = m * per_month; s < (m + 1) * per_month; ++s) {
      stats.add(trace.instantaneous_mw[s]);
    }
    table.begin_row();
    table.add_cell(months[m]);
    table.add_number(stats.mean());
    table.add_number(stats.min());
    table.add_number(stats.max());
    table.add_number(trace.moving_average_mw[(m + 1) * per_month - 1]);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Trace mean:  %.3f MW (paper: ~0.83 MW)\n", trace.mean_mw());
  std::printf("Trace peak:  %.3f MW (rating %.2f MW never exceeded)\n",
              trace.peak_mw(), params.peak_rating_mw);
  std::printf("Headroom:    %.0f%% of procured power unused on average\n",
              (1.0 - trace.mean_mw() / params.peak_rating_mw) * 100.0);
  std::printf("Time above 90%% of rating: %.2f%% of samples\n",
              trace.fraction_above(0.9 * params.peak_rating_mw) * 100.0);

  // --- Same shape from the actual stack: scheduler + policy + nodes ---
  std::printf("\nCross-check from the event-driven facility simulation "
              "(48 nodes, 1 week):\n");
  sim::Cluster cluster(48);
  facility::JobTraceOptions jobs;
  jobs.horizon_hours = 24.0 * 7.0;
  jobs.arrivals_per_hour = 0.8;
  jobs.min_nodes = 4;
  jobs.max_nodes = 24;
  util::Rng trace_rng(0xf01);
  facility::FacilityOptions options;
  options.horizon_hours = jobs.horizon_hours;
  options.policy = core::PolicyKind::kMixedAdaptive;
  facility::FacilityManager manager(cluster, options);
  const facility::FacilityResult simulated =
      manager.run(facility::generate_job_trace(trace_rng, jobs));
  const double rating_w = 48.0 * cluster.node(0).tdp();
  std::printf("  Rated (all nodes at TDP): %.1f kW\n", rating_w / 1000.0);
  std::printf("  Simulated mean draw:      %.1f kW (%.0f%% of rating)\n",
              simulated.mean_power_watts() / 1000.0,
              simulated.mean_power_watts() / rating_w * 100.0);
  std::printf("  Simulated peak draw:      %.1f kW\n",
              simulated.peak_power_watts() / 1000.0);
  std::printf("  Node utilization:         %.0f%%\n",
              simulated.mean_utilization() * 100.0);
  std::printf("The same headroom appears: scheduling gaps, queue droughts"
              " and\nmemory-bound phases keep the mean draw far below the"
              " procured rating.\n");
  return 0;
}
