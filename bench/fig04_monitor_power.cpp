// Fig. 4 reproduction: total CPU power per node for each workload
// configuration (intensity x imbalance column, ymm variant), uncapped
// under the monitor agent. The paper's observations: values span
// ~209-232 W, peak in the mid-intensity range, and are largely
// insensitive to imbalance.
#include <cstdio>

#include "analysis/heatmap.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const std::size_t test_nodes = argc > 1 ? 8 : 16;  // any arg = quicker
  util::Rng rng(0xf16);
  sim::Cluster cluster(hw::VariationModel::quartz_default(), rng);
  const double bin_cap = 2.0 * 70.0 + hw::QuartzSpec::kDramPowerPerNodeW;
  std::vector<std::size_t> nodes =
      cluster.frequency_cluster_members(bin_cap, 3, 1);
  nodes.resize(test_nodes);

  const analysis::HeatmapResult result = analysis::run_power_heatmap(
      cluster, nodes, hw::VectorWidth::kYmm256, 5);

  std::printf("Fig. 4: Total CPU power per node (W), ymm variant, no power"
              " limit,\nGEOPM monitor agent, %zu medium-cluster test"
              " nodes\n\n", nodes.size());
  std::printf("%s\n", result.to_table(/*balancer=*/false).c_str());
  std::printf("Range: %.0f - %.0f W (paper: 209 - 232 W)\n",
              result.monitor_min(), result.monitor_max());
  std::printf("Uncapped power is largely insensitive to imbalance: busy-"
              "polling\nat MPI_Barrier draws near-streaming power.\n");
  return 0;
}
