// Extension experiment (paper Section VIII / DESIGN.md Section 5): the
// execution-time RM <-> runtime coordination protocol the paper proposes
// but emulates statically. Three questions:
//   1. Does the online loop converge to the pre-characterized
//      MixedAdaptive steady state, and how fast?
//   2. How much does it cost versus the offline (oracle) allocation?
//   3. What happens on a multi-phase application, where static
//      pre-characterization goes stale?
#include <cstdio>

#include "core/budget.hpp"
#include "core/coordination.hpp"
#include "core/policies.hpp"
#include "rm/power_manager.hpp"
#include "runtime/characterization.hpp"
#include "sim/cluster.hpp"
#include "util/table.hpp"

namespace {

using namespace ps;

struct Scenario {
  std::unique_ptr<sim::Cluster> cluster;
  std::vector<std::unique_ptr<sim::JobSimulation>> jobs;
  std::vector<sim::JobSimulation*> ptrs;
};

Scenario make_scenario(std::size_t hosts_per_job) {
  Scenario scenario;
  scenario.cluster = std::make_unique<sim::Cluster>(hosts_per_job * 2);
  kernel::WorkloadConfig wasteful;
  wasteful.intensity = 8.0;
  wasteful.waiting_fraction = 0.5;
  wasteful.imbalance = 3.0;
  kernel::WorkloadConfig hungry;
  hungry.intensity = 32.0;
  std::vector<hw::NodeModel*> a;
  std::vector<hw::NodeModel*> b;
  for (std::size_t i = 0; i < hosts_per_job; ++i) {
    a.push_back(&scenario.cluster->node(i));
    b.push_back(&scenario.cluster->node(i + hosts_per_job));
  }
  scenario.jobs.push_back(
      std::make_unique<sim::JobSimulation>("wasteful", a, wasteful));
  scenario.jobs.push_back(
      std::make_unique<sim::JobSimulation>("hungry", b, hungry));
  scenario.ptrs = {scenario.jobs[0].get(), scenario.jobs[1].get()};
  return scenario;
}

double run_static(Scenario& scenario, double budget,
                  const core::Policy& policy,
                  const std::vector<runtime::JobCharacterization>& chars,
                  std::size_t iterations) {
  core::PolicyContext context;
  context.system_budget_watts = budget;
  context.node_tdp_watts = scenario.cluster->node(0).tdp();
  context.jobs = chars;
  rm::SystemPowerManager(budget).apply(scenario.ptrs,
                                       policy.allocate(context));
  double elapsed = 0.0;
  for (auto* job : scenario.ptrs) {
    job->reset_totals();
    for (std::size_t i = 0; i < iterations; ++i) {
      elapsed += job->run_iteration().iteration_seconds;
    }
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t hosts = argc > 1 ? 8 : 24;
  const std::size_t iterations = 60;

  Scenario scenario = make_scenario(hosts);
  std::vector<runtime::JobCharacterization> chars;
  for (auto& job : scenario.jobs) {
    chars.push_back(runtime::characterize_job(*job, 5));
    job->reset_totals();
  }
  const double budget = core::select_budgets(chars).ideal_watts;

  std::printf("Online coordination vs static allocation "
              "(2 jobs x %zu hosts, ideal budget %.1f kW)\n\n",
              hosts, budget / 1000.0);

  // 1/2: convergence trace and cost vs the offline oracle.
  const double static_time = run_static(
      scenario, budget, core::MixedAdaptivePolicy{}, chars, iterations);
  const double uniform_time = run_static(
      scenario, budget, core::StaticCapsPolicy{}, chars, iterations);

  core::CoordinationLoop loop(budget);
  for (auto* job : scenario.ptrs) {
    job->reset_totals();
  }
  const core::CoordinationResult online =
      loop.run(scenario.ptrs, iterations);
  double online_time = 0.0;
  for (auto* job : scenario.ptrs) {
    online_time += job->totals().elapsed_seconds;
  }

  util::TextTable table;
  table.add_column("allocation", util::Align::kLeft);
  table.add_column("job time (s)", util::Align::kRight, 3);
  table.add_column("vs oracle", util::Align::kRight, 2);
  const auto row = [&](const char* name, double seconds) {
    table.begin_row();
    table.add_cell(name);
    table.add_number(seconds);
    table.add_percent(seconds / static_time - 1.0);
  };
  row("StaticCaps (uniform)", uniform_time);
  row("MixedAdaptive (pre-characterized oracle)", static_time);
  row("online coordination (no oracle)", online_time);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Converged after epoch %zu (of %zu); per-epoch max cap "
              "moves:\n", online.convergence_epoch, online.epochs.size());
  for (const auto& epoch : online.epochs) {
    std::printf("  epoch %2zu: max cap change %7.2f W, allocated %.2f kW\n",
                epoch.epoch, epoch.max_cap_change_watts,
                epoch.allocated_watts / 1000.0);
  }

  // 3: multi-phase application. The wasteful job flips to balanced
  // compute; the stale pre-characterized caps starve it.
  std::printf("\nPhase change: the imbalanced job becomes balanced "
              "compute-bound.\n");
  kernel::WorkloadConfig balanced;
  balanced.intensity = 32.0;

  // Stale static allocation.
  run_static(scenario, budget, core::MixedAdaptivePolicy{}, chars, 1);
  scenario.jobs[0]->set_workload(balanced);
  double stale_time = 0.0;
  for (auto* job : scenario.ptrs) {
    job->reset_totals();
    for (std::size_t i = 0; i < iterations; ++i) {
      stale_time += job->run_iteration().iteration_seconds;
    }
  }

  // Online loop re-converges after the change.
  for (auto* job : scenario.ptrs) {
    job->reset_totals();
  }
  const core::CoordinationResult adapted =
      loop.run(scenario.ptrs, iterations);
  double adapted_time = 0.0;
  for (auto* job : scenario.ptrs) {
    adapted_time += job->totals().elapsed_seconds;
  }

  std::printf("  stale pre-characterized caps: %.3f s\n", stale_time);
  std::printf("  online coordination:          %.3f s  (%.1f%% faster)\n",
              adapted_time, (1.0 - adapted_time / stale_time) * 100.0);
  std::printf("\nThe protocol delivers the MixedAdaptive steady state "
              "without offline\ncharacterization and keeps it valid across"
              " phase changes.\n");
  return 0;
}
