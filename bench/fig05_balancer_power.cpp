// Fig. 5 reproduction: total CPU power per node under the GEOPM power
// balancer agent at a TDP budget. The paper's observations: clear
// vertical bands (the waiting-rank fraction strongly determines needed
// power) and the largest monitor-vs-balancer reductions in the
// mid-intensity range.
#include <cstdio>

#include "analysis/heatmap.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const std::size_t test_nodes = argc > 1 ? 8 : 16;
  util::Rng rng(0xf16);  // same seed as fig04: same node sample
  sim::Cluster cluster(hw::VariationModel::quartz_default(), rng);
  const double bin_cap = 2.0 * 70.0 + hw::QuartzSpec::kDramPowerPerNodeW;
  std::vector<std::size_t> nodes =
      cluster.frequency_cluster_members(bin_cap, 3, 1);
  nodes.resize(test_nodes);

  const analysis::HeatmapResult result = analysis::run_power_heatmap(
      cluster, nodes, hw::VectorWidth::kYmm256, 5);

  std::printf("Fig. 5: Total CPU power per node (W), ymm variant, GEOPM "
              "power balancer\nagent at a TDP budget, %zu medium-cluster "
              "test nodes\n\n", nodes.size());
  std::printf("%s\n", result.to_table(/*balancer=*/true).c_str());
  std::printf("Range: %.0f - %.0f W\n", result.balancer_min(),
              result.balancer_max());

  // Quantify the two observations the paper calls out.
  double max_cut = 0.0;
  double max_cut_intensity = 0.0;
  for (std::size_t row = 0; row < result.intensities.size(); ++row) {
    const double cut =
        result.monitor_power[row][0] - result.balancer_power[row][0];
    if (cut > max_cut) {
      max_cut = cut;
      max_cut_intensity = result.intensities[row];
    }
  }
  std::printf("\nVertical bands: the waiting-rank fraction dominates needed"
              " power\n(columns differ far more than rows within a "
              "column).\n");
  std::printf("Largest balanced-column reduction: %.0f W at %.2g FLOPs/byte"
              " (mid-intensity,\nas the paper observes).\n",
              max_cut, max_cut_intensity);
  return 0;
}
