// google-benchmark micro-benchmarks for the stack's hot paths: the policy
// allocators, the balancer search, the node fixed-point solve, the
// bulk-synchronous simulator, k-means, and the real arithmetic kernel.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "analysis/experiment.hpp"
#include "analysis/sweep.hpp"
#include "core/budget_governor.hpp"
#include "core/coordination.hpp"
#include "core/endpoint.hpp"
#include "core/policies.hpp"
#include "kernel/arithmetic_kernel.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/framing.hpp"
#include "net/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rm/power_manager.hpp"
#include "runtime/agent_tree.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/error.hpp"
#include "util/kmeans.hpp"
#include "util/rng.hpp"

namespace {

using namespace ps;

core::PolicyContext make_context(std::size_t jobs, std::size_t hosts) {
  core::PolicyContext context;
  context.system_budget_watts =
      190.0 * static_cast<double>(jobs * hosts);
  context.node_tdp_watts = 256.0;
  for (std::size_t j = 0; j < jobs; ++j) {
    runtime::JobCharacterization job;
    job.host_count = hosts;
    job.min_settable_cap_watts = 152.0;
    for (std::size_t h = 0; h < hosts; ++h) {
      const bool waiting = h < hosts / 2;
      job.monitor.host_average_power_watts.push_back(214.0 +
                                                     (j % 3) * 5.0);
      job.balancer.host_needed_power_watts.push_back(waiting ? 152.0
                                                             : 219.0);
    }
    job.monitor.max_host_power_watts = 228.0;
    job.monitor.min_host_power_watts = 209.0;
    job.balancer.max_host_needed_watts = 219.0;
    job.balancer.min_host_needed_watts = 152.0;
    context.jobs.push_back(std::move(job));
  }
  return context;
}

void BM_PolicyAllocate(benchmark::State& state,
                       core::PolicyKind kind) {
  const core::PolicyContext context =
      make_context(9, static_cast<std::size_t>(state.range(0)));
  const auto policy = core::make_policy(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->allocate(context));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(9 * state.range(0)));
}

BENCHMARK_CAPTURE(BM_PolicyAllocate, StaticCaps,
                  core::PolicyKind::kStaticCaps)
    ->Arg(100);
BENCHMARK_CAPTURE(BM_PolicyAllocate, MinimizeWaste,
                  core::PolicyKind::kMinimizeWaste)
    ->Arg(100);
BENCHMARK_CAPTURE(BM_PolicyAllocate, JobAdaptive,
                  core::PolicyKind::kJobAdaptive)
    ->Arg(100);
BENCHMARK_CAPTURE(BM_PolicyAllocate, MixedAdaptive,
                  core::PolicyKind::kMixedAdaptive)
    ->Arg(100)
    ->Arg(1000);

void BM_NodeFixedPointSolve(benchmark::State& state) {
  const hw::NodeModel node(0, 1.0);
  double cap = 160.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        node.preview_compute(2.0, 8.0, hw::VectorWidth::kYmm256, cap));
    cap = cap >= 250.0 ? 160.0 : cap + 1.0;  // defeat memoization
  }
}
BENCHMARK(BM_NodeFixedPointSolve);

void BM_BalancePowerSearch(benchmark::State& state) {
  sim::Cluster cluster(static_cast<std::size_t>(state.range(0)));
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job("bench", hosts, config);
  const double budget = 200.0 * static_cast<double>(cluster.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::balance_power(job, budget));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BalancePowerSearch)->Arg(10)->Arg(100);

void BM_SimulatorIteration(benchmark::State& state) {
  sim::Cluster cluster(static_cast<std::size_t>(state.range(0)));
  kernel::WorkloadConfig config;
  config.intensity = 8.0;
  config.waiting_fraction = 0.25;
  config.imbalance = 2.0;
  std::vector<hw::NodeModel*> hosts;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    hosts.push_back(&cluster.node(i));
  }
  sim::JobSimulation job("bench", hosts, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(job.run_iteration());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorIteration)->Arg(100)->Arg(900);

void BM_TreeAggregate(benchmark::State& state) {
  const runtime::TreeTopology tree = runtime::TreeTopology::balanced(
      static_cast<std::size_t>(state.range(0)), 8);
  std::vector<double> leaves(static_cast<std::size_t>(state.range(0)),
                             200.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.aggregate_sum(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeAggregate)->Arg(900);

void BM_EndpointRoundTrip(benchmark::State& state) {
  core::SampleMessage message;
  message.sequence = 1;
  message.job_name = "bench-job";
  message.min_settable_cap_watts = 152.0;
  message.host_observed_watts.assign(
      static_cast<std::size_t>(state.range(0)), 214.125);
  message.host_needed_watts.assign(
      static_cast<std::size_t>(state.range(0)), 186.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::parse_sample_message(core::serialize(message)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndpointRoundTrip)->Arg(100);

core::SampleMessage wire_bench_sample(std::size_t hosts) {
  core::SampleMessage message;
  message.sequence = 1;
  message.job_name = "bench-job";
  message.min_settable_cap_watts = 152.0;
  message.host_observed_watts.assign(hosts, 214.125);
  message.host_needed_watts.assign(hosts, 186.5);
  return message;
}

void BM_MessageSerialize(benchmark::State& state) {
  const core::SampleMessage message =
      wire_bench_sample(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string wire =
        core::serialize(message, core::WireFidelity::kExact);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MessageSerialize)->Arg(100)->Arg(1000);

void BM_MessageParse(benchmark::State& state) {
  const std::string wire = core::serialize(
      wire_bench_sample(static_cast<std::size_t>(state.range(0))),
      core::WireFidelity::kExact);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::parse_sample_message(wire));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_MessageParse)->Arg(100)->Arg(1000);

/// Full daemon round-trip latency over the in-process loopback transport:
/// framed sample up, policy allocation, framed caps back.
void BM_DaemonRoundTrip(benchmark::State& state) {
  const auto hosts = static_cast<std::size_t>(state.range(0));
  net::DaemonOptions options;
  options.system_budget_watts = 190.0 * static_cast<double>(hosts);
  net::PowerDaemon daemon(options);
  auto [client_end, daemon_end] = net::loopback_pair();
  daemon.adopt(std::move(daemon_end));
  std::thread serving([&daemon] { daemon.run(); });

  net::Socket socket = std::move(client_end);
  bool moved = false;
  net::RuntimeClient client([&socket, &moved]() -> net::Socket {
    if (moved) {
      throw Error("loopback exhausted");
    }
    moved = true;
    return std::move(socket);
  });
  core::SampleMessage message = wire_bench_sample(hosts);
  message.sequence = 0;
  for (auto _ : state) {
    ++message.sequence;
    benchmark::DoNotOptimize(client.exchange(message));
  }
  daemon.stop();
  serving.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonRoundTrip)->Arg(8)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

net::DaemonSnapshot bench_snapshot(std::size_t jobs, std::size_t hosts) {
  net::DaemonSnapshot snapshot;
  snapshot.system_budget_watts =
      190.0 * static_cast<double>(jobs * hosts);
  snapshot.launch_barrier_met = true;
  snapshot.allocations = 12;
  for (std::size_t j = 0; j < jobs; ++j) {
    net::SnapshotJob job;
    job.name = "bench-job-" + std::to_string(j);
    job.sequence = 12;
    for (std::size_t h = 0; h < hosts; ++h) {
      job.caps_watts.push_back(181.25 + 0.125 * static_cast<double>(h));
    }
    snapshot.jobs.push_back(std::move(job));
  }
  return snapshot;
}

/// The write-ahead snapshot's CPU cost per allocation round: serialize
/// (checksummed text) plus the restart-side parse/validate, in memory.
void BM_SnapshotSerializeRestore(benchmark::State& state) {
  const net::DaemonSnapshot snapshot =
      bench_snapshot(static_cast<std::size_t>(state.range(0)), 100);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = net::serialize(snapshot);
    bytes = text.size();
    benchmark::DoNotOptimize(net::parse_snapshot(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SnapshotSerializeRestore)->Arg(4)->Arg(9);

/// The durable write-ahead cost (tmp file + fsync + rename) the daemon
/// pays before answering a round, plus the restart-side load.
void BM_SnapshotWriteAheadDisk(benchmark::State& state) {
  const net::DaemonSnapshot snapshot =
      bench_snapshot(static_cast<std::size_t>(state.range(0)), 100);
  const std::string path =
      "/tmp/ps-bench-" + std::to_string(::getpid()) + ".snap";
  for (auto _ : state) {
    net::save_snapshot(path, snapshot);
    benchmark::DoNotOptimize(net::load_snapshot(path));
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotWriteAheadDisk)->Arg(9)
    ->Unit(benchmark::kMicrosecond);

/// Reclaim-on-disconnect round trip: a registered client's connection
/// dies, and the benchmark measures until the daemon has evicted the
/// job and returned its watts to the pool (grace zero, 1 ms ticks — the
/// floor of the daemon's detection latency).
void BM_ReclaimOnDisconnect(benchmark::State& state) {
  net::DaemonOptions options;
  options.system_budget_watts = 400.0;
  options.min_jobs = 1;
  options.tick_interval = std::chrono::milliseconds(1);
  options.reclaim_timeout = std::chrono::milliseconds(0);
  net::PowerDaemon daemon(options);
  std::thread serving([&daemon] { daemon.run(); });

  const std::string frame = net::encode_frame(
      core::serialize(wire_bench_sample(2), core::WireFidelity::kExact));
  std::uint64_t evicted = 0;
  for (auto _ : state) {
    auto [client_end, daemon_end] = net::loopback_pair();
    daemon.adopt(std::move(daemon_end));
    {
      net::Socket socket = std::move(client_end);
      std::string_view rest = frame;
      while (!rest.empty()) {
        const net::IoResult result = socket.write_some(rest);
        if (result.status == net::IoStatus::kOk) {
          rest.remove_prefix(result.bytes);
        } else {
          static_cast<void>(
              socket.wait_writable(std::chrono::milliseconds(1'000)));
        }
      }
      net::FrameDecoder decoder;
      char buffer[4096];
      while (!decoder.next().has_value()) {
        static_cast<void>(
            socket.wait_readable(std::chrono::milliseconds(1'000)));
        const net::IoResult result =
            socket.read_some(buffer, sizeof(buffer));
        if (result.status == net::IoStatus::kOk) {
          decoder.feed(std::string_view(buffer, result.bytes));
        }
      }
    }  // the socket closes here: the disconnect the daemon must detect
    ++evicted;
    while (daemon.stats().jobs_evicted < evicted) {
      std::this_thread::yield();
    }
  }
  daemon.stop();
  serving.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReclaimOnDisconnect)->Unit(benchmark::kMicrosecond);

/// Serial-vs-parallel wall time for a reduced Fig. 8 style sweep: three
/// mixes by every (budget level, policy) cell through the SweepExecutor.
/// Arg = worker count; characterization happens once, outside the timed
/// region, mirroring the harnesses' shared prepare step. Compare Arg(1)
/// against Arg(4) for the speedup the --jobs flag buys.
void BM_SweepFig08Grid(benchmark::State& state) {
  analysis::ExperimentOptions options;
  options.nodes_per_job = 6;
  options.iterations = 10;
  options.characterization_iterations = 3;
  options.hardware_variation = false;
  const analysis::ExperimentDriver driver(options);
  const core::MixKind kinds[] = {core::MixKind::kNeedUsedPower,
                                 core::MixKind::kHighImbalance,
                                 core::MixKind::kWastefulPower};
  std::vector<analysis::MixExperiment> experiments;
  std::vector<const analysis::MixExperiment*> prepared;
  for (core::MixKind kind : kinds) {
    experiments.push_back(
        driver.prepare(core::make_mix(kind, options.nodes_per_job)));
  }
  for (const analysis::MixExperiment& experiment : experiments) {
    prepared.push_back(&experiment);
  }
  const std::vector<core::BudgetLevel> levels = core::all_budget_levels();
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kStaticCaps, core::PolicyKind::kMinimizeWaste,
      core::PolicyKind::kJobAdaptive, core::PolicyKind::kMixedAdaptive};
  const analysis::SweepExecutor executor(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::run_grid(executor, prepared, levels, policies));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(prepared.size() * levels.size() *
                                policies.size()));
}
BENCHMARK(BM_SweepFig08Grid)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The budget governor on a noisy signal: one observe() per iteration —
/// the per-control-period cost of dynamic budgets in the loop and the
/// facility sim. Arg = signal length.
void BM_BudgetGovernorObserve(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<double> signal;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    signal.push_back(1'500.0 + rng.normal(0.0, 120.0));
  }
  core::BudgetGovernor governor(1'560.0);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        governor.observe(signal[index], index));
    index = (index + 1) % signal.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BudgetGovernorObserve)->Arg(256);

/// The emergency clamp's allocation math (shape-preserving, floor-first
/// proportional scaling) at brownout time. Arg = total host count.
void BM_ClampAllocationToBudget(benchmark::State& state) {
  const auto hosts = static_cast<std::size_t>(state.range(0));
  const std::size_t jobs = 4;
  rm::PowerAllocation allocation;
  std::vector<std::vector<double>> floors;
  for (std::size_t j = 0; j < jobs; ++j) {
    allocation.job_host_caps.emplace_back(hosts / jobs,
                                          200.0 + 5.0 * (j % 3));
    floors.emplace_back(hosts / jobs, 152.0);
  }
  const double budget = 0.7 * allocation.total_watts();  // a 30% brownout
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rm::clamp_allocation_to_budget(allocation, floors, budget));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(hosts));
}
BENCHMARK(BM_ClampAllocationToBudget)->Arg(16)->Arg(256);

/// Observability overhead on the coordination loop's epoch path: the
/// same mix run uninstrumented (Arg 0) and with a metrics registry plus
/// ring-buffered trace sink attached (Arg 1). The docs' epoch-overhead
/// number is the Arg(1)/Arg(0) wall-time ratio; the emits are
/// epoch-grained, so the target is <= 5%.
void BM_ObsOverhead(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  sim::Cluster cluster(8);
  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;
  std::vector<std::unique_ptr<sim::JobSimulation>> owned;
  std::vector<sim::JobSimulation*> jobs;
  for (std::size_t j = 0; j < 2; ++j) {
    std::vector<hw::NodeModel*> hosts;
    for (std::size_t h = 0; h < 4; ++h) {
      hosts.push_back(&cluster.node(j * 4 + h));
    }
    owned.push_back(std::make_unique<sim::JobSimulation>(
        "bench-" + std::to_string(j), std::move(hosts), config));
    jobs.push_back(owned.back().get());
  }
  obs::MetricsRegistry registry;
  obs::TraceSink sink(4096);  // ring-bounded, as a daemon would run it
  core::CoordinationOptions options;
  if (instrumented) {
    options.obs.metrics = &registry;
    options.obs.trace = &sink;
  }
  core::CoordinationLoop loop(8.0 * 200.0, options);
  constexpr std::size_t kIterations = 10;  // two epochs per run
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.run(jobs, kIterations));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kIterations / options.epoch_iterations));
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_KMeans1d(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<double> values;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    values.push_back(rng.normal(1.8, 0.1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::kmeans_1d(values, 3));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans1d)->Arg(2000);

void BM_ArithmeticKernel(benchmark::State& state, hw::VectorWidth width,
                         double intensity) {
  kernel::KernelOptions options;
  options.threads = 2;
  options.elements_per_thread = 1 << 13;
  options.iterations = 1;
  options.config.intensity = intensity;
  options.config.vector_width = width;
  double gflops = 0.0;
  for (auto _ : state) {
    const kernel::KernelReport report =
        kernel::run_arithmetic_kernel(options);
    gflops = report.achieved_gflops;
    benchmark::DoNotOptimize(report.total_gflop);
  }
  state.counters["GFLOPS"] = gflops;
}
BENCHMARK_CAPTURE(BM_ArithmeticKernel, scalar_i8, hw::VectorWidth::kScalar,
                  8.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ArithmeticKernel, ymm_i8, hw::VectorWidth::kYmm256,
                  8.0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ArithmeticKernel, ymm_i0p25, hw::VectorWidth::kYmm256,
                  0.25)
    ->Unit(benchmark::kMillisecond);

}  // namespace
