// Extension experiment: model-driven search vs measurement-only feedback
// control as the balancer implementation. The paper's GEOPM balancer
// searches during execution; related systems (PShifter, POW) shift power
// with closed-loop controllers instead. This bench shows the convergence
// trajectories and the steady states of the three balancers — flat
// (global search), tree (hierarchical, O(log N) information), and
// feedback (no model at all).
#include <cstdio>

#include "runtime/agent_tree.hpp"
#include "runtime/controller.hpp"
#include "runtime/feedback_agent.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "runtime/recording_agent.hpp"
#include "sim/cluster.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  constexpr std::size_t kHosts = 16;
  constexpr std::size_t kIterations = 40;
  const double budget = static_cast<double>(kHosts) * 195.0;

  kernel::WorkloadConfig config;
  config.intensity = 16.0;
  config.waiting_fraction = 0.5;
  config.imbalance = 3.0;

  std::printf("Balancer comparison: %zu hosts, imbalanced job, budget "
              "%.1f kW\n\n", kHosts, budget / 1000.0);

  util::TextTable table;
  table.add_column("balancer", util::Align::kLeft);
  table.add_column("iters to 1% of final", util::Align::kRight, 0);
  table.add_column("steady iter (ms)", util::Align::kRight, 2);
  table.add_column("energy (kJ)", util::Align::kRight, 2);

  const auto run_balancer = [&](const char* label, runtime::Agent& agent) {
    sim::Cluster cluster(kHosts);
    std::vector<hw::NodeModel*> hosts;
    for (std::size_t i = 0; i < kHosts; ++i) {
      hosts.push_back(&cluster.node(i));
    }
    sim::JobSimulation job("job", std::move(hosts), config);
    runtime::RecordingAgent recorder(&agent);
    const runtime::JobReport report =
        runtime::Controller(kIterations).run(job, recorder);

    const sim::TraceRecorder& trace = recorder.trace();
    const double final_time = trace.value(trace.size() - 1, 0);
    std::size_t settled = kIterations;
    for (std::size_t row = 0; row < trace.size(); ++row) {
      if (trace.value(row, 0) <= final_time * 1.01) {
        settled = row;
        break;
      }
    }
    table.begin_row();
    table.add_cell(label);
    table.add_cell(std::to_string(settled));
    table.add_number(final_time * 1000.0);
    table.add_number(report.total_energy_joules / 1000.0);
  };

  runtime::PowerBalancerAgent flat(budget);
  run_balancer("flat search (GEOPM-like)", flat);
  runtime::TreeBalancerAgent tree(budget);
  run_balancer("tree search (hierarchical)", tree);
  runtime::FeedbackPowerAgent feedback(budget);
  run_balancer("feedback shifter (PShifter-like)", feedback);
  runtime::FeedbackPowerAgent cautious(budget, {0.25, 4.0, 0.02});
  run_balancer("feedback shifter (cautious gain)", cautious);

  std::printf("%s\n", table.to_string().c_str());
  std::printf("The model-driven searches land in one re-allocation; the "
              "measurement-only\ncontroller takes several iterations (more "
              "with a cautious gain), but\nreaches the same steady state "
              "without any platform model — the trade the\nrelated work "
              "accepts.\n");
  return 0;
}
