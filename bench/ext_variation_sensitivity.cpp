// Extension experiment (DESIGN.md Section 5): hardware-variation
// sensitivity. The paper runs everything on the medium-frequency k-means
// bin; here the Fig. 8 headline cells are re-run on the low / medium /
// high bins to check that the policy ordering is not an artifact of bin
// choice (leakier parts are deeper in the power-limited regime, so the
// savings magnitudes shift, but the winners should not).
#include <cstdio>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  analysis::ExperimentOptions base = bench::parse_options(argc, argv);
  if (base.nodes_per_job > 24) {
    base.nodes_per_job = 24;  // three full grids; keep the run bounded
    base.iterations = 40;
  }

  std::printf("Hardware-variation sensitivity: WastefulPower savings per "
              "frequency bin\n(%zu nodes/job, %zu iterations)\n\n",
              base.nodes_per_job, base.iterations);

  util::TextTable table;
  table.add_column("bin", util::Align::kLeft);
  table.add_column("budget", util::Align::kLeft);
  table.add_column("JA time", util::Align::kRight, 2);
  table.add_column("MA time", util::Align::kRight, 2);
  table.add_column("JA energy", util::Align::kRight, 2);
  table.add_column("MA energy", util::Align::kRight, 2);

  const analysis::SweepExecutor executor(base.sweep_workers);
  const std::vector<core::BudgetLevel> levels = {core::BudgetLevel::kIdeal,
                                                 core::BudgetLevel::kMax};
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kStaticCaps, core::PolicyKind::kJobAdaptive,
      core::PolicyKind::kMixedAdaptive};

  const char* bin_names[] = {"low", "medium", "high"};
  for (std::size_t bin = 0; bin < 3; ++bin) {
    analysis::ExperimentOptions options = base;
    options.frequency_bin = bin;
    analysis::ExperimentDriver driver(options);
    analysis::MixExperiment experiment = driver.prepare(core::make_mix(
        core::MixKind::kWastefulPower, options.nodes_per_job));
    const analysis::MixExperiment* experiments[] = {&experiment};
    const analysis::SweepGridResult grid =
        analysis::run_grid(executor, experiments, levels, policies);
    for (core::BudgetLevel level : levels) {
      const analysis::MixRunResult& baseline =
          grid.at(0, level, core::PolicyKind::kStaticCaps);
      const analysis::SavingsSummary ja = analysis::compute_savings(
          grid.at(0, level, core::PolicyKind::kJobAdaptive), baseline);
      const analysis::SavingsSummary ma = analysis::compute_savings(
          grid.at(0, level, core::PolicyKind::kMixedAdaptive), baseline);
      table.begin_row();
      table.add_cell(bin_names[bin]);
      table.add_cell(std::string(core::to_string(level)));
      table.add_percent(ja.time.mean);
      table.add_percent(ma.time.mean);
      table.add_percent(ja.energy.mean);
      table.add_percent(ma.energy.mean);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("MixedAdaptive's advantage survives across bins: the paper's"
              " choice of the\nmedium bin controls variance, not the "
              "conclusion.\n");
  return 0;
}
