// Extension experiment (DESIGN.md Section 5): RAPL power capping versus
// DVFS frequency capping as the enforcement mechanism. The paper manages
// CPU power through RAPL; GEOPM also ships frequency-domain agents. Both
// should land in similar steady states on steady workloads — this bench
// quantifies energy/time for the monitor baseline, the power balancer,
// and the energy-efficient (DVFS) agent across workload classes.
#include <cstdio>

#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "runtime/energy_efficient_agent.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  constexpr std::size_t kHosts = 8;
  constexpr std::size_t kIterations = 40;

  struct Case {
    const char* label;
    kernel::WorkloadConfig config;
  };
  Case cases[3];
  cases[0].label = "memory-bound (I=0.25)";
  cases[0].config.intensity = 0.25;
  cases[1].label = "compute-bound (I=32)";
  cases[1].config.intensity = 32.0;
  cases[2].label = "imbalanced (I=16, 50% waiting, 3x)";
  cases[2].config.intensity = 16.0;
  cases[2].config.waiting_fraction = 0.5;
  cases[2].config.imbalance = 3.0;

  std::printf("Power capping vs DVFS, %zu hosts, %zu iterations\n\n",
              kHosts, kIterations);
  util::TextTable table;
  table.add_column("workload", util::Align::kLeft);
  table.add_column("agent", util::Align::kLeft);
  table.add_column("time vs monitor", util::Align::kRight, 2);
  table.add_column("energy vs monitor", util::Align::kRight, 2);
  table.add_column("W/node", util::Align::kRight, 1);

  for (const Case& test_case : cases) {
    double base_time = 0.0;
    double base_energy = 0.0;
    for (int which = 0; which < 3; ++which) {
      sim::Cluster cluster(kHosts);
      std::vector<hw::NodeModel*> hosts;
      for (std::size_t i = 0; i < kHosts; ++i) {
        hosts.push_back(&cluster.node(i));
      }
      sim::JobSimulation job("job", std::move(hosts), test_case.config);

      runtime::MonitorAgent monitor;
      runtime::PowerBalancerAgent balancer(
          static_cast<double>(kHosts) * cluster.node(0).tdp());
      runtime::EnergyEfficientAgent dvfs;
      runtime::Agent* agent = &monitor;
      const char* agent_name = "monitor (uncapped)";
      if (which == 1) {
        agent = &balancer;
        agent_name = "power_balancer (RAPL)";
      } else if (which == 2) {
        agent = &dvfs;
        agent_name = "energy_efficient (DVFS)";
      }
      const runtime::Controller controller(kIterations, 2);
      const runtime::JobReport report = controller.run(job, *agent);
      if (which == 0) {
        base_time = report.elapsed_seconds;
        base_energy = report.total_energy_joules;
      }
      table.begin_row();
      table.add_cell(which == 0 ? test_case.label : "");
      table.add_cell(agent_name);
      table.add_percent(report.elapsed_seconds / base_time - 1.0);
      table.add_percent(report.total_energy_joules / base_energy - 1.0);
      table.add_number(report.average_node_power_watts());
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Both mechanisms harvest the same slack (memory-boundedness"
              " and barrier\nwaits) at a few percent time cost; power "
              "capping additionally enforces a\nhard watt ceiling, which "
              "is why the paper's site-level stack uses RAPL.\n");
  return 0;
}
