// Fig. 2 reproduction: the paper's Fig. 2 is a diagram of the synthetic
// microbenchmark's iteration structure — common work on every rank,
// imbalance work on the critical path, and a slack/polling phase at
// MPI_Barrier for the waiting ranks. This binary measures that structure
// from the *real* threaded kernel, so the diagram becomes data.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "kernel/arithmetic_kernel.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  const std::size_t cores =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);

  kernel::KernelOptions options;
  options.threads = 4;
  options.elements_per_thread = 1 << 15;
  options.iterations = 12;
  options.config.intensity = 8.0;
  options.config.waiting_fraction = 0.5;
  options.config.imbalance = 3.0;

  std::printf("Fig. 2: measured iteration structure of the synthetic "
              "kernel\n(%zu ranks, %s, %zu iterations, native run)\n\n",
              options.threads, options.config.description().c_str(),
              options.iterations);

  const kernel::KernelReport report =
      kernel::run_arithmetic_kernel(options);

  util::TextTable table;
  table.add_column("rank", util::Align::kRight, 0);
  table.add_column("role", util::Align::kLeft);
  table.add_column("compute (s)", util::Align::kRight, 4);
  table.add_column("barrier wait (s)", util::Align::kRight, 4);
  table.add_column("wait share", util::Align::kRight, 1);
  table.add_column("GFLOP", util::Align::kRight, 2);
  for (std::size_t t = 0; t < report.threads.size(); ++t) {
    const auto& thread = report.threads[t];
    table.begin_row();
    table.add_cell(std::to_string(t));
    table.add_cell(thread.waiting_rank ? "waiting (common work only)"
                                       : "critical (3x work)");
    table.add_number(thread.busy_seconds);
    table.add_number(thread.wait_seconds);
    table.add_percent(thread.wait_seconds /
                      (thread.busy_seconds + thread.wait_seconds));
    table.add_number(thread.gflop);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Waiting ranks spend ~%.0f%% of each iteration polling at "
              "the barrier while\nconsuming near-full power — the energy "
              "sink the paper's application-aware\npolicies harvest "
              "(expected (m-1)/m = 67%% for 3x imbalance).\n",
              report.waiting_slack_fraction() * 100.0);
  if (cores < options.threads) {
    std::printf("(Note: only %zu hardware thread(s); oversubscription "
                "inflates measured waits.)\n", cores);
  }
  return 0;
}
