// Extension experiment: multi-tenant oversubscription frontiers. One
// flash-crowd + diurnal job trace with a latency_critical / standard /
// best_effort mix runs through the facility manager under a tight
// budget, once per admission policy: the worst-case-TDP gate (the
// batch-HPC default the paper assumes) against the measured-draw gate
// at increasing oversubscription ratios. The deliverable is the
// SLA-violation vs work-completed frontier per policy — measured-draw
// admission must dominate the worst-case gate on it (verdict enforced
// by exit code) — written as a CSV that is byte-identical at any
// --jobs worker count.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "facility/facility_manager.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct AdmissionCase {
  std::string label;
  ps::rm::AdmissionBasis basis;
  double ratio;
};

struct CaseResult {
  ps::facility::FacilityResult facility;
  std::size_t submitted = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ps;
  bool quick = false;
  std::size_t workers = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoull(argv[i + 1],
                                                       nullptr, 10));
    }
  }

  const std::size_t nodes = quick ? 16 : 32;
  const double horizon = quick ? 36.0 : 96.0;

  // The demand side: a diurnal arrival curve with two seeded flash
  // crowds, 25% latency_critical / 35% best_effort.
  facility::JobTraceOptions traffic;
  traffic.horizon_hours = horizon;
  traffic.arrivals_per_hour = quick ? 1.2 : 1.0;
  traffic.min_nodes = nodes / 8;
  traffic.max_nodes = nodes / 4;
  traffic.min_duration_hours = 0.5;
  traffic.max_duration_hours = 4.0;
  traffic.latency_critical_fraction = 0.25;
  traffic.best_effort_fraction = 0.35;
  traffic.diurnal_amplitude = 0.5;
  traffic.burst_count = 2;
  traffic.burst_rate_multiplier = 5.0;
  traffic.burst_duration_hours = 3.0;
  util::Rng rng(0x51a);
  const std::vector<facility::FacilityJobSpec> trace =
      facility::generate_job_trace(rng, traffic);

  const std::vector<AdmissionCase> cases = {
      {"worst_case_tdp", rm::AdmissionBasis::kWorstCaseTdp, 1.0},
      {"measured_draw", rm::AdmissionBasis::kMeasuredDraw, 1.0},
      {"measured_draw", rm::AdmissionBasis::kMeasuredDraw, 1.15},
      {"measured_draw", rm::AdmissionBasis::kMeasuredDraw, 1.3},
      {"measured_draw", rm::AdmissionBasis::kMeasuredDraw, 1.5},
  };

  std::printf(
      "Multi-tenant oversubscription frontier: %zu nodes, %.0f h "
      "horizon,\n%zu submitted jobs (25%%/40%%/35%% lc/std/be), budget "
      "55%% of TDP,\nflash crowds + diurnal demand\n\n",
      nodes, horizon, trace.size());

  // Each case is a self-contained deterministic simulation; the worker
  // pool only changes who runs it, never what it computes, so the CSV
  // below is byte-identical at any --jobs count.
  std::vector<CaseResult> results(cases.size());
  std::atomic<std::size_t> next{0};
  const auto run_case = [&](std::size_t index) {
    sim::Cluster cluster(nodes);
    facility::FacilityOptions options;
    options.step_hours = 0.1;
    options.horizon_hours = horizon + 12.0;  // drain tail of the queue
    options.characterization_iterations = 2;
    options.policy = core::PolicyKind::kMixedAdaptive;
    options.system_budget_watts =
        0.55 * cluster.node(0).tdp() * static_cast<double>(nodes);
    options.admission.basis = cases[index].basis;
    options.admission.oversubscription_ratio = cases[index].ratio;
    facility::FacilityManager manager(cluster, options);
    results[index].facility = manager.run(trace);
    results[index].submitted = trace.size();
  };
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
  }
  workers = std::max<std::size_t>(1, std::min(workers, cases.size()));
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < cases.size();
           i = next.fetch_add(1)) {
        run_case(i);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }

  util::TextTable table;
  table.add_column("admission", util::Align::kLeft);
  table.add_column("ratio", util::Align::kRight, 2);
  table.add_column("completed", util::Align::kRight, 0);
  table.add_column("rejected", util::Align::kRight, 0);
  table.add_column("SLA viol (lc/std/be)", util::Align::kLeft);
  table.add_column("energy (MJ)", util::Align::kRight, 1);
  table.add_column("shed (kWh)", util::Align::kRight, 2);
  table.add_column("mean wait (h)", util::Align::kRight, 2);

  const auto violations = [](const facility::FacilityResult& result,
                             sim::SlaClass sla_class) {
    return result.sla_violations_by_class[sim::sla_rank(sla_class)];
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const facility::FacilityResult& result = results[i].facility;
    table.begin_row();
    table.add_cell(cases[i].label);
    table.add_number(cases[i].ratio);
    table.add_cell(std::to_string(result.completed_jobs));
    table.add_cell(std::to_string(result.admission_rejections));
    table.add_cell(
        std::to_string(violations(result, sim::SlaClass::kLatencyCritical)) +
        "/" + std::to_string(violations(result, sim::SlaClass::kStandard)) +
        "/" + std::to_string(violations(result, sim::SlaClass::kBestEffort)));
    table.add_number(result.total_energy_joules / 1e6);
    table.add_number(result.shed_watts_total / 1000.0);
    table.add_number(result.mean_wait_hours());
  }
  std::printf("%s\n", table.to_string().c_str());

  const std::string csv_path =
      ps::bench::output_path(argc, argv, "ext_multitenant_sla.csv");
  {
    std::ofstream out(csv_path);
    util::CsvWriter csv(out);
    csv.write_row({"admission", "ratio", "submitted", "completed",
                   "rejected", "violations_lc", "violations_std",
                   "violations_be", "violations_total", "energy_mj",
                   "shed_kwh", "mean_wait_hours"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const facility::FacilityResult& result = results[i].facility;
      csv.write_row(
          {cases[i].label, util::format_fixed(cases[i].ratio, 2),
           std::to_string(results[i].submitted),
           std::to_string(result.completed_jobs),
           std::to_string(result.admission_rejections),
           std::to_string(
               violations(result, sim::SlaClass::kLatencyCritical)),
           std::to_string(violations(result, sim::SlaClass::kStandard)),
           std::to_string(violations(result, sim::SlaClass::kBestEffort)),
           std::to_string(result.sla_violations()),
           util::format_fixed(result.total_energy_joules / 1e6, 1),
           util::format_fixed(result.shed_watts_total / 1000.0, 2),
           util::format_fixed(result.mean_wait_hours(), 3)});
    }
  }
  std::printf("Wrote %s\n", csv_path.c_str());

  // The frontier verdict: some measured-draw point must dominate the
  // worst-case gate — at least as much work completed, no more SLA
  // violations, and strictly better on one of the two axes. This is the
  // paper's oversubscription bet stated as an invariant: admitting
  // against observed draw (with class-ordered degradation covering the
  // tail) beats reserving worst-case TDP.
  const facility::FacilityResult& worst = results[0].facility;
  bool dominated = false;
  for (std::size_t i = 1; i < cases.size(); ++i) {
    const facility::FacilityResult& measured = results[i].facility;
    const bool no_worse =
        measured.completed_jobs >= worst.completed_jobs &&
        measured.sla_violations() <= worst.sla_violations();
    const bool strictly_better =
        measured.completed_jobs > worst.completed_jobs ||
        measured.sla_violations() < worst.sla_violations();
    if (no_worse && strictly_better) {
      std::printf(
          "VERDICT: measured-draw (ratio %.2f) dominates worst-case "
          "admission:\n  completed %zu vs %zu, SLA violations %zu vs "
          "%zu\n",
          cases[i].ratio, measured.completed_jobs, worst.completed_jobs,
          measured.sla_violations(), worst.sla_violations());
      dominated = true;
      break;
    }
  }
  if (!dominated) {
    std::printf(
        "VERDICT: FAIL — no measured-draw point dominates the "
        "worst-case gate\n");
    return 1;
  }
  return 0;
}
