// Fig. 8 reproduction: time / energy / EDP / FLOPS-per-watt savings of
// the three dynamic policies versus the StaticCaps baseline, per workload
// mix and budget level, with 95% confidence intervals over the measured
// iterations. Paper markers: (c) MinimizeWaste beats JobAdaptive on time
// at NeedUsedPower/ideal; (d) MixedAdaptive beats JobAdaptive on energy
// at WastefulPower/max; (e) the largest time savings sit in the min-
// budget column. Headlines: up to ~7% time and ~11% energy savings.
#include <cstdio>
#include <fstream>
#include <map>

#include "analysis/export.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const analysis::ExperimentOptions options =
      bench::parse_options(argc, argv);
  analysis::ExperimentDriver driver(options);

  std::printf("Fig. 8: Savings vs the StaticCaps baseline "
              "(%zu nodes/job, %zu iterations, 95%% CI)\n\n",
              options.nodes_per_job, options.iterations);

  const core::PolicyKind policies[] = {core::PolicyKind::kMinimizeWaste,
                                       core::PolicyKind::kJobAdaptive,
                                       core::PolicyKind::kMixedAdaptive};
  struct Row {
    const char* metric;
    util::ConfidenceInterval analysis::SavingsSummary::* field;
  };
  const Row rows[] = {
      {"Time Savings", &analysis::SavingsSummary::time},
      {"Energy Savings", &analysis::SavingsSummary::energy},
      {"EDP Savings", &analysis::SavingsSummary::edp},
      {"FLOPS/W Increase", &analysis::SavingsSummary::flops_per_watt},
  };

  double best_time = 0.0;
  double best_energy = 0.0;
  std::string best_time_at;
  std::string best_energy_at;
  std::vector<analysis::SavingsRow> csv_rows;

  for (core::MixKind kind : core::all_mix_kinds()) {
    analysis::MixExperiment experiment =
        driver.prepare(core::make_mix(kind, options.nodes_per_job));

    // Baselines per budget level, reused across policies.
    std::map<core::BudgetLevel, analysis::MixRunResult> baselines;
    std::map<std::pair<core::BudgetLevel, core::PolicyKind>,
             analysis::SavingsSummary>
        savings;
    for (core::BudgetLevel level : core::all_budget_levels()) {
      baselines.emplace(
          level, experiment.run(level, core::PolicyKind::kStaticCaps));
      for (core::PolicyKind policy : policies) {
        const analysis::SavingsSummary summary = analysis::compute_savings(
            experiment.run(level, policy), baselines.at(level));
        savings.emplace(std::make_pair(level, policy), summary);
        csv_rows.push_back(analysis::SavingsRow{
            std::string(core::to_string(kind)), policy, level, summary});
        const std::string where =
            std::string(core::to_string(kind)) + "/" +
            std::string(core::to_string(level)) + "/" +
            std::string(core::to_string(policy));
        if (summary.time.mean > best_time) {
          best_time = summary.time.mean;
          best_time_at = where;
        }
        if (summary.energy.mean > best_energy) {
          best_energy = summary.energy.mean;
          best_energy_at = where;
        }
      }
    }

    std::printf("=== %s ===\n", core::to_string(kind).data());
    for (const Row& row : rows) {
      util::TextTable table;
      table.add_column(row.metric, util::Align::kLeft);
      for (core::BudgetLevel level : core::all_budget_levels()) {
        table.add_column(std::string(core::to_string(level)),
                         util::Align::kRight, 2);
      }
      for (core::PolicyKind policy : policies) {
        table.begin_row();
        table.add_cell(std::string(core::to_string(policy)));
        for (core::BudgetLevel level : core::all_budget_levels()) {
          const util::ConfidenceInterval& ci =
              savings.at(std::make_pair(level, policy)).*row.field;
          table.add_cell(util::format_fixed(ci.mean * 100.0, 2) + "% +/-" +
                         util::format_fixed(ci.half_width * 100.0, 2));
        }
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }

  // Machine-readable companion output for plotting tools.
  std::ofstream csv("fig08_savings.csv");
  analysis::write_savings_csv(csv, csv_rows);
  std::printf("Wrote fig08_savings.csv (%zu rows x 4 metrics)\n\n",
              csv_rows.size());

  std::printf("Max time savings:   %5.2f%% at %s (paper: ~7%%)\n",
              best_time * 100.0, best_time_at.c_str());
  std::printf("Max energy savings: %5.2f%% at %s (paper: ~11%%)\n",
              best_energy * 100.0, best_energy_at.c_str());
  return 0;
}
