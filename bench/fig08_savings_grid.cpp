// Fig. 8 reproduction: time / energy / EDP / FLOPS-per-watt savings of
// the three dynamic policies versus the StaticCaps baseline, per workload
// mix and budget level, with 95% confidence intervals over the measured
// iterations. Paper markers: (c) MinimizeWaste beats JobAdaptive on time
// at NeedUsedPower/ideal; (d) MixedAdaptive beats JobAdaptive on energy
// at WastefulPower/max; (e) the largest time savings sit in the min-
// budget column. Headlines: up to ~7% time and ~11% energy savings.
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <optional>

#include "analysis/export.hpp"
#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const analysis::ExperimentOptions options =
      bench::parse_options(argc, argv);
  analysis::ExperimentDriver driver(options);
  const analysis::SweepExecutor executor(options.sweep_workers);

  std::printf("Fig. 8: Savings vs the StaticCaps baseline "
              "(%zu nodes/job, %zu iterations, 95%% CI, %zu workers)\n\n",
              options.nodes_per_job, options.iterations,
              executor.worker_count());

  const core::PolicyKind policies[] = {core::PolicyKind::kMinimizeWaste,
                                       core::PolicyKind::kJobAdaptive,
                                       core::PolicyKind::kMixedAdaptive};
  struct Row {
    const char* metric;
    util::ConfidenceInterval analysis::SavingsSummary::* field;
  };
  const Row rows[] = {
      {"Time Savings", &analysis::SavingsSummary::time},
      {"Energy Savings", &analysis::SavingsSummary::energy},
      {"EDP Savings", &analysis::SavingsSummary::edp},
      {"FLOPS/W Increase", &analysis::SavingsSummary::flops_per_watt},
  };

  // Characterize every mix once, in parallel, then fan the
  // (mix, level, policy) grid — baseline included — out over the pool.
  const std::vector<core::MixKind> kinds = core::all_mix_kinds();
  std::vector<std::optional<analysis::MixExperiment>> experiments(
      kinds.size());
  executor.for_each(kinds.size(), [&](std::size_t m) {
    experiments[m].emplace(
        driver.prepare(core::make_mix(kinds[m], options.nodes_per_job)));
  });
  std::vector<const analysis::MixExperiment*> prepared;
  for (const auto& experiment : experiments) {
    prepared.push_back(&*experiment);
  }
  const std::vector<core::BudgetLevel> levels = core::all_budget_levels();
  const std::vector<core::PolicyKind> grid_policies = {
      core::PolicyKind::kStaticCaps, core::PolicyKind::kMinimizeWaste,
      core::PolicyKind::kJobAdaptive, core::PolicyKind::kMixedAdaptive};
  const analysis::SweepGridResult grid =
      analysis::run_grid(executor, prepared, levels, grid_policies);

  // All savings may be negative, so start below any real mean and track
  // whether anything beat the baseline at all.
  double best_time = -std::numeric_limits<double>::infinity();
  double best_energy = -std::numeric_limits<double>::infinity();
  bool best_time_found = false;
  bool best_energy_found = false;
  std::string best_time_at;
  std::string best_energy_at;
  std::vector<analysis::SavingsRow> csv_rows;

  for (std::size_t m = 0; m < kinds.size(); ++m) {
    const core::MixKind kind = kinds[m];
    std::map<std::pair<core::BudgetLevel, core::PolicyKind>,
             analysis::SavingsSummary>
        savings;
    for (core::BudgetLevel level : levels) {
      const analysis::MixRunResult& baseline =
          grid.at(m, level, core::PolicyKind::kStaticCaps);
      for (core::PolicyKind policy : policies) {
        // Intervals only: the tables and CSV report means and CIs, so
        // the (much more expensive) permutation p-values are skipped.
        const analysis::SavingsSummary summary = analysis::compute_savings(
            grid.at(m, level, policy), baseline,
            analysis::SavingsStatistics::kIntervalsOnly);
        savings.emplace(std::make_pair(level, policy), summary);
        csv_rows.push_back(analysis::SavingsRow{
            std::string(core::to_string(kind)), policy, level, summary});
        const std::string where =
            std::string(core::to_string(kind)) + "/" +
            std::string(core::to_string(level)) + "/" +
            std::string(core::to_string(policy));
        if (summary.time.mean > best_time) {
          best_time = summary.time.mean;
          best_time_at = where;
          best_time_found = summary.time.mean > 0.0;
        }
        if (summary.energy.mean > best_energy) {
          best_energy = summary.energy.mean;
          best_energy_at = where;
          best_energy_found = summary.energy.mean > 0.0;
        }
      }
    }

    std::printf("=== %s ===\n", core::to_string(kind).data());
    for (const Row& row : rows) {
      util::TextTable table;
      table.add_column(row.metric, util::Align::kLeft);
      for (core::BudgetLevel level : levels) {
        table.add_column(std::string(core::to_string(level)),
                         util::Align::kRight, 2);
      }
      for (core::PolicyKind policy : policies) {
        table.begin_row();
        table.add_cell(std::string(core::to_string(policy)));
        for (core::BudgetLevel level : levels) {
          const util::ConfidenceInterval& ci =
              savings.at(std::make_pair(level, policy)).*row.field;
          table.add_cell(util::format_fixed(ci.mean * 100.0, 2) + "% +/-" +
                         util::format_fixed(ci.half_width * 100.0, 2));
        }
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }

  // Machine-readable companion output for plotting tools.
  const std::string out =
      bench::output_path(argc, argv, "fig08_savings.csv");
  std::ofstream csv(out);
  analysis::write_savings_csv(csv, csv_rows);
  std::printf("Wrote %s (%zu rows x 4 metrics)\n\n", out.c_str(),
              csv_rows.size());

  if (best_time_found) {
    std::printf("Max time savings:   %5.2f%% at %s (paper: ~7%%)\n",
                best_time * 100.0, best_time_at.c_str());
  } else {
    std::printf("Max time savings:   n/a — no policy beat the baseline "
                "(closest: %.2f%% at %s)\n",
                best_time * 100.0, best_time_at.c_str());
  }
  if (best_energy_found) {
    std::printf("Max energy savings: %5.2f%% at %s (paper: ~11%%)\n",
                best_energy * 100.0, best_energy_at.c_str());
  } else {
    std::printf("Max energy savings: n/a — no policy beat the baseline "
                "(closest: %.2f%% at %s)\n",
                best_energy * 100.0, best_energy_at.c_str());
  }
  return 0;
}
