// The reproduction self-check: runs the full experiment grid and
// programmatically evaluates every annotated marker and headline from
// the paper. Exit code 0 iff every claim holds — wire it into CI to
// guard the reproduction against regressions.
#include <cstdio>

#include "analysis/validation.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const analysis::ExperimentOptions options =
      bench::parse_options(argc, argv);
  std::printf("Validating the paper's claims against a fresh grid run "
              "(%zu nodes/job, %zu iterations)...\n\n",
              options.nodes_per_job, options.iterations);
  const analysis::ValidationReport report =
      analysis::validate_paper_claims(options);

  util::TextTable table;
  table.add_column("claim", util::Align::kLeft);
  table.add_column("verdict", util::Align::kLeft);
  table.add_column("measured", util::Align::kLeft);
  table.add_column("description", util::Align::kLeft);
  for (const auto& claim : report.claims) {
    table.begin_row();
    table.add_cell(claim.id);
    table.add_cell(claim.passed ? "PASS" : "FAIL");
    table.add_cell(claim.detail);
    table.add_cell(claim.description);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%zu / %zu claims hold.\n", report.passed_count(),
              report.claims.size());
  return report.all_passed() ? 0 : 1;
}
