// Table I reproduction: properties of the modeled system (the paper's
// LLNL Quartz), plus the calibrated model constants derived from them.
#include <cstdio>

#include "hw/node.hpp"
#include "hw/quartz_spec.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  using Spec = hw::QuartzSpec;

  std::printf("Table I: Quartz system properties (modeled)\n\n");
  util::TextTable table;
  table.add_column("Property", util::Align::kLeft);
  table.add_column("Value", util::Align::kLeft);
  const auto row = [&](const char* property, const std::string& value) {
    table.begin_row();
    table.add_cell(property);
    table.add_cell(value);
  };
  row("CPU", "Intel Xeon E5-2695 (modeled), dual-socket");
  row("Cores Per Node", std::to_string(Spec::kCoresPerNode));
  row("Benchmark Cores Per Node",
      std::to_string(Spec::kBenchmarkCoresPerNode));
  row("Thermal Design Power",
      util::format_fixed(Spec::kTdpPerSocketW, 0) + " W per CPU socket");
  row("Minimum RAPL Limit",
      util::format_fixed(Spec::kMinRaplPerSocketW, 0) + " W per CPU socket");
  row("Base Frequency",
      util::format_fixed(Spec::kBaseFrequencyGHz, 1) + " GHz");
  row("Max (all-core turbo) Frequency",
      util::format_fixed(Spec::kMaxFrequencyGHz, 1) + " GHz");
  row("Node Memory Bandwidth",
      util::format_fixed(Spec::kNodeMemoryBandwidthGBs, 0) + " GB/s");
  row("DRAM Plane Power (uncappable)",
      util::format_fixed(Spec::kDramPowerPerNodeW, 0) + " W per node");
  row("Cluster Size", std::to_string(Spec::kClusterNodeCount) + " nodes");
  row("Experiment Nodes",
      std::to_string(Spec::kExperimentNodeCount) + " (medium bin)");
  row("TDP of all experiment CPUs",
      util::format_fixed(Spec::kExperimentTdpW / 1000.0, 0) +
          " kW (Table III footnote)");
  std::printf("%s\n", table.to_string().c_str());

  const hw::NodeModel node(0, 1.0);
  std::printf("Derived node-level limits (package caps + DRAM plane):\n");
  std::printf("  Max settable node cap: %.0f W\n", node.tdp());
  std::printf("  Min settable node cap: %.0f W\n", node.min_cap());
  return 0;
}
