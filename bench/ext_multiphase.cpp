// Extension experiment (paper future work, Section VIII): applications
// with multiple phases of differing design characteristics. A job
// alternates between a memory-bound streaming phase and an imbalanced
// compute phase; single-phase pre-characterization necessarily targets
// one of them (or their average). Compares per-phase oracle caps against
// stale single-phase caps and the online coordination loop.
#include <cstdio>

#include "core/coordination.hpp"
#include "kernel/phased.hpp"
#include "runtime/basic_agents.hpp"
#include "runtime/controller.hpp"
#include "runtime/power_balancer_agent.hpp"
#include "sim/cluster.hpp"
#include "util/table.hpp"

namespace {
using namespace ps;

/// Applies the balancer's steady caps for `config` to the job's hosts.
void apply_phase_caps(sim::JobSimulation& job,
                      const kernel::WorkloadConfig& config, double budget) {
  const kernel::WorkloadConfig saved = job.workload();
  job.set_workload(config);
  const std::vector<double> caps = runtime::balance_power(job, budget);
  for (std::size_t h = 0; h < job.host_count(); ++h) {
    job.set_host_cap(h, caps[h]);
  }
  job.set_workload(saved);
}
}  // namespace

int main() {
  constexpr std::size_t kHosts = 8;
  constexpr std::size_t kIterations = 60;
  const kernel::PhasedWorkload phased = kernel::PhasedWorkload::example();

  std::printf("Multi-phase workload '%s' on %zu hosts, %zu iterations "
              "(phases: %zu+%zu per cycle)\n\n",
              phased.name.c_str(), kHosts, kIterations,
              phased.phases[0].iterations, phased.phases[1].iterations);

  util::TextTable table;
  table.add_column("cap strategy", util::Align::kLeft);
  table.add_column("time (s)", util::Align::kRight, 3);
  table.add_column("energy (kJ)", util::Align::kRight, 2);
  table.add_column("GFLOPS/W", util::Align::kRight, 3);

  const auto run_strategy = [&](const char* label, auto&& prepare,
                                bool online) {
    sim::Cluster cluster(kHosts);
    std::vector<hw::NodeModel*> hosts;
    for (std::size_t i = 0; i < kHosts; ++i) {
      hosts.push_back(&cluster.node(i));
    }
    sim::JobSimulation job("phased", std::move(hosts),
                           phased.phases[0].config);
    const double budget = 200.0 * static_cast<double>(kHosts);
    prepare(job, budget);

    double elapsed = 0.0;
    double energy = 0.0;
    double gflop = 0.0;
    if (online) {
      core::CoordinationOptions options;
      options.epoch_iterations = 2;
      core::CoordinationLoop loop(budget, options);
      std::size_t done = 0;
      while (done < kIterations) {
        const kernel::WorkloadPhase& phase = phased.phase_at(done);
        job.set_workload(phase.config);
        const std::size_t chunk =
            std::min(phase.iterations, kIterations - done);
        sim::JobSimulation* jobs[] = {&job};
        const core::CoordinationResult result = loop.run(jobs, chunk);
        elapsed += result.elapsed_seconds;
        energy += result.energy_joules;
        gflop += result.total_gflop;
        done += chunk;
      }
    } else {
      runtime::MonitorAgent agent;
      const runtime::JobReport report =
          runtime::Controller(kIterations).run_phases(job, agent, phased);
      elapsed = report.elapsed_seconds;
      energy = report.total_energy_joules;
      gflop = report.total_gflop;
    }
    table.begin_row();
    table.add_cell(label);
    table.add_number(elapsed);
    table.add_number(energy / 1000.0);
    table.add_number(gflop / energy);
  };

  run_strategy("uniform share (no awareness)",
               [&](sim::JobSimulation& job, double budget) {
                 for (std::size_t h = 0; h < job.host_count(); ++h) {
                   job.set_host_cap(h, budget /
                                           static_cast<double>(kHosts));
                 }
               },
               false);
  run_strategy("stale: characterized on stream phase",
               [&](sim::JobSimulation& job, double budget) {
                 apply_phase_caps(job, phased.phases[0].config, budget);
               },
               false);
  run_strategy("stale: characterized on solve phase",
               [&](sim::JobSimulation& job, double budget) {
                 apply_phase_caps(job, phased.phases[1].config, budget);
               },
               false);
  run_strategy("online coordination (re-converges per phase)",
               [&](sim::JobSimulation&, double) {}, true);

  std::printf("%s\n", table.to_string().c_str());
  std::printf("A cap distribution tuned to either phase misfits the other;"
              " the online\nloop re-balances at phase boundaries — the "
              "execution-time protocol the\npaper's future work calls "
              "for.\n");
  return 0;
}
