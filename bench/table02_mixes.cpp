// Table II reproduction: the workloads composing each of the six mixes.
// The paper's exact per-mix check-marks are not fully recoverable from
// its text, so these are the reconstructions documented in DESIGN.md,
// each matching its mix's stated intent.
#include <cstdio>

#include "core/mixes.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  std::printf("Table II: Workloads in each workload mix "
              "(reconstruction)\n\n");
  for (core::MixKind kind : core::all_mix_kinds()) {
    const core::WorkloadMix mix = core::make_mix(kind, 100);
    std::printf("%s (%zu jobs, %zu nodes):\n", mix.name.c_str(),
                mix.jobs.size(), mix.total_nodes());
    util::TextTable table;
    table.add_column("Job", util::Align::kLeft);
    table.add_column("Nodes", util::Align::kRight, 0);
    table.add_column("Workload", util::Align::kLeft);
    for (const auto& job : mix.jobs) {
      table.begin_row();
      table.add_cell(job.name);
      table.add_cell(std::to_string(job.node_count));
      table.add_cell(job.workload.description());
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
