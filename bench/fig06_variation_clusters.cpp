// Fig. 6 reproduction: achieved frequencies of 2000 cluster nodes under
// 70 W package power limits, k-means clustered into low / medium / high
// frequency bins. The paper finds 522 / 918 / 560 nodes and uses the
// medium cluster for its experiments.
#include <cstdio>

#include "hw/quartz_spec.hpp"
#include "sim/cluster.hpp"
#include "util/kmeans.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ps;
  util::Rng rng(7);
  sim::Cluster cluster(hw::VariationModel::quartz_default(), rng);
  const double cap = 2.0 * 70.0 + hw::QuartzSpec::kDramPowerPerNodeW;
  const std::vector<double> frequencies =
      cluster.achieved_frequencies(cap);
  const util::KMeansResult bins = util::kmeans_1d(frequencies, 3);

  std::printf("Fig. 6: Achieved frequencies of %zu nodes under 70 W package"
              " caps,\nk-means into 3 clusters\n\n",
              frequencies.size());

  util::TextTable table;
  table.add_column("Cluster", util::Align::kLeft);
  table.add_column("n", util::Align::kRight, 0);
  table.add_column("paper n", util::Align::kRight, 0);
  table.add_column("centroid (GHz)", util::Align::kRight, 3);
  table.add_column("min (GHz)", util::Align::kRight, 3);
  table.add_column("max (GHz)", util::Align::kRight, 3);
  const char* names[] = {"low", "medium", "high"};
  const int paper_sizes[] = {522, 918, 560};
  for (std::size_t c = 0; c < 3; ++c) {
    util::RunningStats stats;
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
      if (bins.assignments[i] == c) {
        stats.add(frequencies[i]);
      }
    }
    table.begin_row();
    table.add_cell(names[c]);
    table.add_cell(std::to_string(bins.cluster_sizes[c]));
    table.add_cell(std::to_string(paper_sizes[c]));
    table.add_number(bins.centroids[c]);
    table.add_number(stats.min());
    table.add_number(stats.max());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The paper runs its experiments on the %zu medium-frequency"
              " nodes\n(900 of them host the 9-job mixes).\n",
              bins.cluster_sizes[1]);
  return 0;
}
