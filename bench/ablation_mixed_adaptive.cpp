// Ablation bench (DESIGN.md Section 5): quantifies each step of the
// MixedAdaptive allocation by disabling them independently —
//   step 3 (re-fill under-provisioned hosts from the deallocated pool)
//   step 4 (distribute the remaining surplus by headroom weights)
// — and comparing time/energy savings versus StaticCaps on the
// WastefulPower mix, where the full policy shines.
#include <cstdio>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "core/policies.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ps;
  const analysis::ExperimentOptions options =
      bench::parse_options(argc, argv);
  analysis::ExperimentDriver driver(options);
  analysis::MixExperiment experiment = driver.prepare(
      core::make_mix(core::MixKind::kWastefulPower, options.nodes_per_job));

  struct Variant {
    const char* name;
    core::MixedAdaptiveOptions options;
  };
  const Variant variants[] = {
      {"full (steps 1-4)", {true, true}},
      {"no surplus step 4", {true, false}},
      {"no refill step 3", {false, true}},
      {"trim only (no 3, no 4)", {false, false}},
  };

  std::printf("MixedAdaptive ablation on WastefulPower "
              "(%zu nodes/job, %zu iterations)\n\n",
              options.nodes_per_job, options.iterations);

  // Fan every (level, variant) cell — baselines included — out over the
  // sweep pool; cells are pure functions of their coordinates, so the
  // tables below come out the same at any worker count.
  const analysis::SweepExecutor executor(options.sweep_workers);
  const core::BudgetLevel levels[] = {core::BudgetLevel::kIdeal,
                                      core::BudgetLevel::kMax};
  constexpr std::size_t kVariants = sizeof(variants) / sizeof(variants[0]);
  constexpr std::size_t kPerLevel = kVariants + 1;  // + StaticCaps baseline
  std::vector<analysis::MixRunResult> cells(2 * kPerLevel);
  executor.for_each(cells.size(), [&](std::size_t index) {
    const core::BudgetLevel level = levels[index / kPerLevel];
    const std::size_t v = index % kPerLevel;
    if (v == 0) {
      cells[index] = experiment.run(level, core::PolicyKind::kStaticCaps);
    } else {
      const core::MixedAdaptivePolicy policy(variants[v - 1].options);
      cells[index] = experiment.run_with(level, policy,
                                         core::PolicyKind::kMixedAdaptive);
    }
  });

  for (std::size_t l = 0; l < 2; ++l) {
    const core::BudgetLevel level = levels[l];
    const analysis::MixRunResult& baseline = cells[l * kPerLevel];
    util::TextTable table;
    table.add_column(std::string("variant @ ") +
                         std::string(core::to_string(level)),
                     util::Align::kLeft);
    table.add_column("time savings", util::Align::kRight, 2);
    table.add_column("energy savings", util::Align::kRight, 2);
    table.add_column("power util", util::Align::kRight, 1);
    for (std::size_t v = 0; v < kVariants; ++v) {
      const analysis::MixRunResult& result = cells[l * kPerLevel + 1 + v];
      const analysis::SavingsSummary savings =
          analysis::compute_savings(result, baseline);
      table.begin_row();
      table.add_cell(variants[v].name);
      table.add_percent(savings.time.mean);
      table.add_percent(savings.energy.mean);
      table.add_percent(result.power_fraction_of_budget());
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("Step 3 supplies the time savings (power reaches starving\n"
              "hosts); omitting step 4 keeps caps at needed power, which\n"
              "maximizes energy savings at generous budgets.\n");
  return 0;
}
